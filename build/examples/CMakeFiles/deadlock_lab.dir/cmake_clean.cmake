file(REMOVE_RECURSE
  "CMakeFiles/deadlock_lab.dir/deadlock_lab.cpp.o"
  "CMakeFiles/deadlock_lab.dir/deadlock_lab.cpp.o.d"
  "deadlock_lab"
  "deadlock_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadlock_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
