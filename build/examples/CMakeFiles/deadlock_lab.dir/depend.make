# Empty dependencies file for deadlock_lab.
# This may be replaced when dependencies are built.
