# Empty compiler generated dependencies file for msim_cli.
# This may be replaced when dependencies are built.
