file(REMOVE_RECURSE
  "libmsim_bpred.a"
)
