file(REMOVE_RECURSE
  "CMakeFiles/msim_bpred.dir/btb.cpp.o"
  "CMakeFiles/msim_bpred.dir/btb.cpp.o.d"
  "CMakeFiles/msim_bpred.dir/gshare.cpp.o"
  "CMakeFiles/msim_bpred.dir/gshare.cpp.o.d"
  "CMakeFiles/msim_bpred.dir/predictor.cpp.o"
  "CMakeFiles/msim_bpred.dir/predictor.cpp.o.d"
  "libmsim_bpred.a"
  "libmsim_bpred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim_bpred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
