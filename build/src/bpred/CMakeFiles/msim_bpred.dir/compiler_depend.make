# Empty compiler generated dependencies file for msim_bpred.
# This may be replaced when dependencies are built.
