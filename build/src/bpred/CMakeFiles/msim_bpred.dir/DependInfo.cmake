
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bpred/btb.cpp" "src/bpred/CMakeFiles/msim_bpred.dir/btb.cpp.o" "gcc" "src/bpred/CMakeFiles/msim_bpred.dir/btb.cpp.o.d"
  "/root/repo/src/bpred/gshare.cpp" "src/bpred/CMakeFiles/msim_bpred.dir/gshare.cpp.o" "gcc" "src/bpred/CMakeFiles/msim_bpred.dir/gshare.cpp.o.d"
  "/root/repo/src/bpred/predictor.cpp" "src/bpred/CMakeFiles/msim_bpred.dir/predictor.cpp.o" "gcc" "src/bpred/CMakeFiles/msim_bpred.dir/predictor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/msim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
