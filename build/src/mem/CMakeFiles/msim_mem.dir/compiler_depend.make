# Empty compiler generated dependencies file for msim_mem.
# This may be replaced when dependencies are built.
