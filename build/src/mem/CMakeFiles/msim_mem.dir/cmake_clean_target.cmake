file(REMOVE_RECURSE
  "libmsim_mem.a"
)
