file(REMOVE_RECURSE
  "CMakeFiles/msim_mem.dir/cache.cpp.o"
  "CMakeFiles/msim_mem.dir/cache.cpp.o.d"
  "CMakeFiles/msim_mem.dir/hierarchy.cpp.o"
  "CMakeFiles/msim_mem.dir/hierarchy.cpp.o.d"
  "libmsim_mem.a"
  "libmsim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
