file(REMOVE_RECURSE
  "libmsim_isa.a"
)
