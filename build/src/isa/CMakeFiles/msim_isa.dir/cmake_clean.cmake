file(REMOVE_RECURSE
  "CMakeFiles/msim_isa.dir/opclass.cpp.o"
  "CMakeFiles/msim_isa.dir/opclass.cpp.o.d"
  "libmsim_isa.a"
  "libmsim_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
