# Empty dependencies file for msim_isa.
# This may be replaced when dependencies are built.
