file(REMOVE_RECURSE
  "CMakeFiles/msim_common.dir/config.cpp.o"
  "CMakeFiles/msim_common.dir/config.cpp.o.d"
  "CMakeFiles/msim_common.dir/rng.cpp.o"
  "CMakeFiles/msim_common.dir/rng.cpp.o.d"
  "CMakeFiles/msim_common.dir/stats.cpp.o"
  "CMakeFiles/msim_common.dir/stats.cpp.o.d"
  "CMakeFiles/msim_common.dir/table.cpp.o"
  "CMakeFiles/msim_common.dir/table.cpp.o.d"
  "libmsim_common.a"
  "libmsim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
