file(REMOVE_RECURSE
  "libmsim_common.a"
)
