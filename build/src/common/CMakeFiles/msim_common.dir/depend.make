# Empty dependencies file for msim_common.
# This may be replaced when dependencies are built.
