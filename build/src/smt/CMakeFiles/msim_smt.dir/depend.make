# Empty dependencies file for msim_smt.
# This may be replaced when dependencies are built.
