file(REMOVE_RECURSE
  "libmsim_smt.a"
)
