file(REMOVE_RECURSE
  "CMakeFiles/msim_smt.dir/pipeline.cpp.o"
  "CMakeFiles/msim_smt.dir/pipeline.cpp.o.d"
  "CMakeFiles/msim_smt.dir/rename.cpp.o"
  "CMakeFiles/msim_smt.dir/rename.cpp.o.d"
  "libmsim_smt.a"
  "libmsim_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
