file(REMOVE_RECURSE
  "libmsim_trace.a"
)
