# Empty dependencies file for msim_trace.
# This may be replaced when dependencies are built.
