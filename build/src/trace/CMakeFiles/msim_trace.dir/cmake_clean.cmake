file(REMOVE_RECURSE
  "CMakeFiles/msim_trace.dir/generator.cpp.o"
  "CMakeFiles/msim_trace.dir/generator.cpp.o.d"
  "CMakeFiles/msim_trace.dir/mixes.cpp.o"
  "CMakeFiles/msim_trace.dir/mixes.cpp.o.d"
  "CMakeFiles/msim_trace.dir/profile.cpp.o"
  "CMakeFiles/msim_trace.dir/profile.cpp.o.d"
  "CMakeFiles/msim_trace.dir/trace_io.cpp.o"
  "CMakeFiles/msim_trace.dir/trace_io.cpp.o.d"
  "libmsim_trace.a"
  "libmsim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
