
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/issue_queue.cpp" "src/core/CMakeFiles/msim_core.dir/issue_queue.cpp.o" "gcc" "src/core/CMakeFiles/msim_core.dir/issue_queue.cpp.o.d"
  "/root/repo/src/core/sched_types.cpp" "src/core/CMakeFiles/msim_core.dir/sched_types.cpp.o" "gcc" "src/core/CMakeFiles/msim_core.dir/sched_types.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/msim_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/msim_core.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/msim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/msim_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
