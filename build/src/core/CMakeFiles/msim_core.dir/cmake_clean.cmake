file(REMOVE_RECURSE
  "CMakeFiles/msim_core.dir/issue_queue.cpp.o"
  "CMakeFiles/msim_core.dir/issue_queue.cpp.o.d"
  "CMakeFiles/msim_core.dir/sched_types.cpp.o"
  "CMakeFiles/msim_core.dir/sched_types.cpp.o.d"
  "CMakeFiles/msim_core.dir/scheduler.cpp.o"
  "CMakeFiles/msim_core.dir/scheduler.cpp.o.d"
  "libmsim_core.a"
  "libmsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
