file(REMOVE_RECURSE
  "CMakeFiles/msim_sim.dir/experiment.cpp.o"
  "CMakeFiles/msim_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/msim_sim.dir/report.cpp.o"
  "CMakeFiles/msim_sim.dir/report.cpp.o.d"
  "CMakeFiles/msim_sim.dir/run.cpp.o"
  "CMakeFiles/msim_sim.dir/run.cpp.o.d"
  "libmsim_sim.a"
  "libmsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
