file(REMOVE_RECURSE
  "CMakeFiles/test_fu.dir/test_fu.cpp.o"
  "CMakeFiles/test_fu.dir/test_fu.cpp.o.d"
  "test_fu"
  "test_fu.pdb"
  "test_fu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
