# Empty dependencies file for test_fu.
# This may be replaced when dependencies are built.
