file(REMOVE_RECURSE
  "CMakeFiles/test_rob.dir/test_rob.cpp.o"
  "CMakeFiles/test_rob.dir/test_rob.cpp.o.d"
  "test_rob"
  "test_rob.pdb"
  "test_rob[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
