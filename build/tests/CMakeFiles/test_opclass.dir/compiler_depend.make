# Empty compiler generated dependencies file for test_opclass.
# This may be replaced when dependencies are built.
