file(REMOVE_RECURSE
  "CMakeFiles/test_opclass.dir/test_opclass.cpp.o"
  "CMakeFiles/test_opclass.dir/test_opclass.cpp.o.d"
  "test_opclass"
  "test_opclass.pdb"
  "test_opclass[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opclass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
