# Empty dependencies file for test_mixes.
# This may be replaced when dependencies are built.
