file(REMOVE_RECURSE
  "CMakeFiles/test_mixes.dir/test_mixes.cpp.o"
  "CMakeFiles/test_mixes.dir/test_mixes.cpp.o.d"
  "test_mixes"
  "test_mixes.pdb"
  "test_mixes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mixes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
