
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/test_rng.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/test_rng.dir/test_rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/msim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/msim_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/msim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/msim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/bpred/CMakeFiles/msim_bpred.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/msim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/msim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/msim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
