# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_table[1]_include.cmake")
include("/root/repo/build/tests/test_config[1]_include.cmake")
include("/root/repo/build/tests/test_opclass[1]_include.cmake")
include("/root/repo/build/tests/test_profile[1]_include.cmake")
include("/root/repo/build/tests/test_mixes[1]_include.cmake")
include("/root/repo/build/tests/test_generator[1]_include.cmake")
include("/root/repo/build/tests/test_trace_io[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_hierarchy[1]_include.cmake")
include("/root/repo/build/tests/test_gshare[1]_include.cmake")
include("/root/repo/build/tests/test_btb[1]_include.cmake")
include("/root/repo/build/tests/test_predictor[1]_include.cmake")
include("/root/repo/build/tests/test_issue_queue[1]_include.cmake")
include("/root/repo/build/tests/test_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_rename[1]_include.cmake")
include("/root/repo/build/tests/test_rob[1]_include.cmake")
include("/root/repo/build/tests/test_lsq[1]_include.cmake")
include("/root/repo/build/tests/test_fu[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_run[1]_include.cmake")
include("/root/repo/build/tests/test_experiment[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_paper_shapes[1]_include.cmake")
