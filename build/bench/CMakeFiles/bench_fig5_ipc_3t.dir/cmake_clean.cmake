file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_ipc_3t.dir/bench_fig5_ipc_3t.cpp.o"
  "CMakeFiles/bench_fig5_ipc_3t.dir/bench_fig5_ipc_3t.cpp.o.d"
  "bench_fig5_ipc_3t"
  "bench_fig5_ipc_3t.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_ipc_3t.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
