# Empty compiler generated dependencies file for bench_fig5_ipc_3t.
# This may be replaced when dependencies are built.
