# Empty dependencies file for bench_fig7_ipc_4t.
# This may be replaced when dependencies are built.
