file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_ipc_4t.dir/bench_fig7_ipc_4t.cpp.o"
  "CMakeFiles/bench_fig7_ipc_4t.dir/bench_fig7_ipc_4t.cpp.o.d"
  "bench_fig7_ipc_4t"
  "bench_fig7_ipc_4t.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_ipc_4t.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
