# Empty dependencies file for bench_fig8_fairness_4t.
# This may be replaced when dependencies are built.
