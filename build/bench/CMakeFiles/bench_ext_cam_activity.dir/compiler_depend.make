# Empty compiler generated dependencies file for bench_ext_cam_activity.
# This may be replaced when dependencies are built.
