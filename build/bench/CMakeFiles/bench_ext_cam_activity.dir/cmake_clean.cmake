file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_cam_activity.dir/bench_ext_cam_activity.cpp.o"
  "CMakeFiles/bench_ext_cam_activity.dir/bench_ext_cam_activity.cpp.o.d"
  "bench_ext_cam_activity"
  "bench_ext_cam_activity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_cam_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
