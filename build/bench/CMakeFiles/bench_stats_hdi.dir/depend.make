# Empty dependencies file for bench_stats_hdi.
# This may be replaced when dependencies are built.
