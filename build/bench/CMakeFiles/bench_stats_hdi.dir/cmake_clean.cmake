file(REMOVE_RECURSE
  "CMakeFiles/bench_stats_hdi.dir/bench_stats_hdi.cpp.o"
  "CMakeFiles/bench_stats_hdi.dir/bench_stats_hdi.cpp.o.d"
  "bench_stats_hdi"
  "bench_stats_hdi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stats_hdi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
