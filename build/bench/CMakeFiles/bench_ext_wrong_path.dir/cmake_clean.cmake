file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_wrong_path.dir/bench_ext_wrong_path.cpp.o"
  "CMakeFiles/bench_ext_wrong_path.dir/bench_ext_wrong_path.cpp.o.d"
  "bench_ext_wrong_path"
  "bench_ext_wrong_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_wrong_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
