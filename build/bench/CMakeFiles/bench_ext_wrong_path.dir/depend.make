# Empty dependencies file for bench_ext_wrong_path.
# This may be replaced when dependencies are built.
