file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_deadlock.dir/bench_ablate_deadlock.cpp.o"
  "CMakeFiles/bench_ablate_deadlock.dir/bench_ablate_deadlock.cpp.o.d"
  "bench_ablate_deadlock"
  "bench_ablate_deadlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_deadlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
