# Empty dependencies file for bench_ablate_deadlock.
# This may be replaced when dependencies are built.
