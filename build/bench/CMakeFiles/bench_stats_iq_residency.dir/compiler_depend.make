# Empty compiler generated dependencies file for bench_stats_iq_residency.
# This may be replaced when dependencies are built.
