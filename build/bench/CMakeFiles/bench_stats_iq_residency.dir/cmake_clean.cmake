file(REMOVE_RECURSE
  "CMakeFiles/bench_stats_iq_residency.dir/bench_stats_iq_residency.cpp.o"
  "CMakeFiles/bench_stats_iq_residency.dir/bench_stats_iq_residency.cpp.o.d"
  "bench_stats_iq_residency"
  "bench_stats_iq_residency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stats_iq_residency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
