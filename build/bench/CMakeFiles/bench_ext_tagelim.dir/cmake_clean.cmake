file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_tagelim.dir/bench_ext_tagelim.cpp.o"
  "CMakeFiles/bench_ext_tagelim.dir/bench_ext_tagelim.cpp.o.d"
  "bench_ext_tagelim"
  "bench_ext_tagelim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_tagelim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
