# Empty compiler generated dependencies file for bench_ext_tagelim.
# This may be replaced when dependencies are built.
