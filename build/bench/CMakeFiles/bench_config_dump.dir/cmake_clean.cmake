file(REMOVE_RECURSE
  "CMakeFiles/bench_config_dump.dir/bench_config_dump.cpp.o"
  "CMakeFiles/bench_config_dump.dir/bench_config_dump.cpp.o.d"
  "bench_config_dump"
  "bench_config_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_config_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
