# Empty dependencies file for bench_config_dump.
# This may be replaced when dependencies are built.
