# Empty compiler generated dependencies file for bench_fig4_fairness_2t.
# This may be replaced when dependencies are built.
