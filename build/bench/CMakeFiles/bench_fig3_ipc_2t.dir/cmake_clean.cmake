file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_ipc_2t.dir/bench_fig3_ipc_2t.cpp.o"
  "CMakeFiles/bench_fig3_ipc_2t.dir/bench_fig3_ipc_2t.cpp.o.d"
  "bench_fig3_ipc_2t"
  "bench_fig3_ipc_2t.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_ipc_2t.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
