# Empty compiler generated dependencies file for bench_fig3_ipc_2t.
# This may be replaced when dependencies are built.
