# Empty compiler generated dependencies file for bench_stats_dispatch_stall.
# This may be replaced when dependencies are built.
