file(REMOVE_RECURSE
  "CMakeFiles/bench_stats_dispatch_stall.dir/bench_stats_dispatch_stall.cpp.o"
  "CMakeFiles/bench_stats_dispatch_stall.dir/bench_stats_dispatch_stall.cpp.o.d"
  "bench_stats_dispatch_stall"
  "bench_stats_dispatch_stall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stats_dispatch_stall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
