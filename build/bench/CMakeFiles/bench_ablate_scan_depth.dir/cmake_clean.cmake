file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_scan_depth.dir/bench_ablate_scan_depth.cpp.o"
  "CMakeFiles/bench_ablate_scan_depth.dir/bench_ablate_scan_depth.cpp.o.d"
  "bench_ablate_scan_depth"
  "bench_ablate_scan_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_scan_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
