# Empty dependencies file for bench_ablate_scan_depth.
# This may be replaced when dependencies are built.
