# Empty dependencies file for bench_fig1_2opblock_scaling.
# This may be replaced when dependencies are built.
