# Empty compiler generated dependencies file for bench_ablate_disambiguation.
# This may be replaced when dependencies are built.
