file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_disambiguation.dir/bench_ablate_disambiguation.cpp.o"
  "CMakeFiles/bench_ablate_disambiguation.dir/bench_ablate_disambiguation.cpp.o.d"
  "bench_ablate_disambiguation"
  "bench_ablate_disambiguation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_disambiguation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
