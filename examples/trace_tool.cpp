// trace_tool: record synthetic instruction traces to disk and inspect them.
//
//   ./trace_tool mode=record bench=gcc n=100000 out=/tmp/gcc.trc [seed=1]
//   ./trace_tool mode=inspect in=/tmp/gcc.trc
//
// Recorded traces use the self-contained binary format in
// src/trace/trace_io.hpp -- handy for diffing generator changes, feeding
// external analysis scripts, or regression-pinning a workload.
#include <iostream>
#include <stdexcept>

#include "common/config.hpp"
#include "common/table.hpp"
#include "trace/generator.hpp"
#include "trace/profile.hpp"
#include "trace/trace_io.hpp"

namespace {

using namespace msim;

int record(const KvConfig& cli) {
  const std::string bench = cli.get_string("bench", "gcc");
  const std::string out = cli.get_string("out", "");
  if (out.empty()) throw std::invalid_argument("record mode needs out=<path>");
  const std::uint64_t n = cli.get_uint("n", 100'000);
  const std::uint64_t seed = cli.get_uint("seed", 1);

  trace::TraceGenerator gen(trace::profile_or_throw(bench), seed);
  std::vector<isa::DynInst> insts;
  insts.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) insts.push_back(gen.next());
  trace::write_trace(out, insts);
  std::cout << "recorded " << n << " instructions of '" << bench << "' (seed "
            << seed << ") to " << out << "\n";
  return 0;
}

int inspect(const KvConfig& cli) {
  const std::string in = cli.get_string("in", "");
  if (in.empty()) throw std::invalid_argument("inspect mode needs in=<path>");
  const std::vector<isa::DynInst> insts = trace::read_trace(in);
  const trace::TraceSummary s = trace::summarize_trace(insts);

  TextTable t({"metric", "value"});
  auto row = [&t](std::string_view k, double v, int prec = 3) {
    t.begin_row();
    t.add_cell(k);
    t.add_cell(v, prec);
  };
  row("instructions", static_cast<double>(s.instructions), 0);
  row("unique pcs", static_cast<double>(s.unique_pcs), 0);
  row("branch fraction",
      static_cast<double>(s.branches) / static_cast<double>(s.instructions));
  row("taken fraction of branches",
      s.branches ? static_cast<double>(s.taken_branches) /
                       static_cast<double>(s.branches)
                 : 0.0);
  row("load fraction",
      static_cast<double>(s.loads) / static_cast<double>(s.instructions));
  row("store fraction",
      static_cast<double>(s.stores) / static_cast<double>(s.instructions));
  row("two-register-source fraction",
      static_cast<double>(s.with_two_sources) / static_cast<double>(s.instructions));
  row("mean basic-block length", s.mean_block_length, 1);
  t.print(std::cout, "trace summary: " + in);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const KvConfig cli = KvConfig::parse({argv + 1, static_cast<std::size_t>(argc - 1)});
  const std::string mode = cli.get_string("mode", "record");
  if (mode == "record") return record(cli);
  if (mode == "inspect") return inspect(cli);
  std::cerr << "unknown mode '" << mode << "' (record | inspect)\n";
  return 1;
}
