// msim_serve: the sweep-as-a-service experiment daemon.  Accepts
// simulation jobs as JSON over a minimal HTTP/1.1 API and serves results
// byte-identical to the offline msim_cli engine (docs/SERVICE.md is the
// wire reference; docs/ARCHITECTURE.md shows where the daemon sits in the
// stack).
//
//   ./msim_serve --port 8080 --max-inflight 4 --journal-dir /tmp/jobs
//   curl -s localhost:8080/healthz
//   curl -s -X POST localhost:8080/v1/jobs
//        -d '{"config":{"sweep":2,"horizon":20000}}'
//   curl -s localhost:8080/v1/jobs/1/result > sweep.json
//
// Knobs come from sim::serve_known_keys() (single source of truth shared
// with the --help text); the simulation knobs accepted inside a job's
// "config" are exactly sim::serve_request_keys().
//
// Exit codes: 0 clean shutdown (POST /v1/shutdown); 2 bad usage or bind
// failure; 128+N killed by signal N after a graceful drain (SIGINT=130,
// SIGTERM=143; a second signal cancels running jobs instead of waiting).
#include <chrono>
#include <filesystem>
#include <iostream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "persist/signal.hpp"
#include "serve/server.hpp"
#include "sim/cli_spec.hpp"
#include "sim/config_build.hpp"

int main(int argc, char** argv) {
  using namespace msim;
  // First signal: graceful drain (finish running jobs, journals flushed).
  // Second signal: cancel running jobs too.  Exit 128+N either way.
  const persist::SignalGuard signals;
  try {
    const std::vector<std::string> args =
        sim::normalize_cli_args(argc, argv, sim::serve_value_flags());
    const KvConfig cli = KvConfig::parse_strings(args);
    if (cli.get_bool("help", false)) {
      std::cout << sim::serve_usage();
      return 0;
    }
    if (const auto unknown = cli.unknown_keys(sim::serve_known_keys());
        !unknown.empty()) {
      std::string msg = "unknown option(s):";
      for (const std::string& k : unknown) msg += " " + k;
      msg += " (run msim_serve --help, or see docs/SERVICE.md)";
      throw std::invalid_argument(msg);
    }

    serve::ServerConfig config;
    config.host = cli.get_string("host", config.host);
    config.port = static_cast<std::uint16_t>(cli.get_uint("port", 0));
    config.queue_depth = cli.get_uint("queue_depth", config.queue_depth);
    config.max_inflight =
        static_cast<unsigned>(cli.get_uint("max_inflight", 2));
    if (config.max_inflight == 0) {
      throw std::invalid_argument(
          "max_inflight=0 would never run a job; use 1 or more executors");
    }
    config.journal_dir = cli.get_string("journal_dir", "");
    if (!config.journal_dir.empty()) {
      // Fail at startup, not on the first sweep job's journal write.
      std::error_code ec;
      std::filesystem::create_directories(config.journal_dir, ec);
      if (ec) {
        throw std::invalid_argument("cannot create journal_dir '" +
                                    config.journal_dir + "': " + ec.message());
      }
    }
    config.io_timeout_ms =
        static_cast<int>(cli.get_uint("io_timeout_ms", 10'000));

    serve::ExperimentServer server(config);
    server.start();
    std::cout << "listening on " << config.host << ":" << server.port()
              << "\n";
    std::cout << "msim_serve: queue_depth=" << config.queue_depth
              << " max_inflight=" << config.max_inflight << " journal_dir="
              << (config.journal_dir.empty() ? "(off)" : config.journal_dir)
              << "\n"
              << std::flush;

    int signum = 0;
    while (true) {
      if (const int s = persist::signal_pending(); s != 0) {
        persist::clear_pending_signal();
        if (signum == 0) {
          signum = s;
          std::cerr << "signal " << s
                    << ": draining (running jobs finish; signal again to "
                       "cancel them)\n";
          server.request_shutdown(/*cancel_running=*/false);
        } else {
          std::cerr << "second signal: cancelling running jobs\n";
          server.request_shutdown(/*cancel_running=*/true);
        }
      }
      if (server.shutdown_requested() && server.finished()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    server.stop();
    std::cout << "drained; exiting\n";
    return signum == 0 ? 0 : 128 + signum;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
