// msim_cli: a full command-line driver for the simulator, in the spirit of
// SimpleScalar's sim-outorder.  Runs one configuration and prints a complete
// statistics report from every component.
//
//   ./msim_cli benchmarks=equake,gzip sched=2op_block_ooo iq=64 \
//              fetch=icount deadlock=dab horizon=200000
//
// Keys:
//   benchmarks  comma-separated profile names (1-8 threads)  [gcc]
//   sched       traditional | 2op_block | 2op_block_ooo |
//               2op_block_ooo_filtered | tag_elimination     [traditional]
//   fetch       icount | round_robin | stall | flush          [icount]
//   deadlock    dab | dab_shared | watchdog                   [dab]
//   iq, scan_depth, watchdog_timeout, oracle_disambiguation, wrong_path,
//   warmup, horizon, seed, max_cycles
#include <iostream>
#include <stdexcept>

#include "common/config.hpp"
#include "common/table.hpp"
#include "sim/run.hpp"
#include "trace/profile.hpp"

namespace {

using namespace msim;

core::SchedulerKind parse_sched(const std::string& name) {
  for (const auto kind :
       {core::SchedulerKind::kTraditional, core::SchedulerKind::kTwoOpBlock,
        core::SchedulerKind::kTwoOpBlockOoo,
        core::SchedulerKind::kTwoOpBlockOooFiltered,
        core::SchedulerKind::kTagElimination}) {
    if (name == core::scheduler_kind_name(kind)) return kind;
  }
  throw std::invalid_argument("unknown sched: '" + name + "'");
}

smt::FetchPolicy parse_fetch(const std::string& name) {
  for (const auto policy :
       {smt::FetchPolicy::kIcount, smt::FetchPolicy::kRoundRobin,
        smt::FetchPolicy::kStall, smt::FetchPolicy::kFlush}) {
    if (name == smt::fetch_policy_name(policy)) return policy;
  }
  throw std::invalid_argument("unknown fetch: '" + name + "'");
}

std::vector<std::string> split_names(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const auto comma = csv.find(',', start);
    const auto end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const KvConfig cli = KvConfig::parse({argv + 1, static_cast<std::size_t>(argc - 1)});

  sim::RunConfig cfg;
  cfg.benchmarks = split_names(cli.get_string("benchmarks", "gcc"));
  cfg.kind = parse_sched(cli.get_string("sched", "traditional"));
  cfg.fetch_policy = parse_fetch(cli.get_string("fetch", "icount"));
  cfg.iq_entries = static_cast<std::uint32_t>(cli.get_uint("iq", 64));
  cfg.scan_depth = static_cast<std::uint32_t>(cli.get_uint("scan_depth", 0));
  cfg.watchdog_timeout =
      static_cast<std::uint32_t>(cli.get_uint("watchdog_timeout", 450));
  cfg.oracle_disambiguation = cli.get_bool("oracle_disambiguation", true);
  cfg.model_wrong_path = cli.get_bool("wrong_path", false);
  cfg.warmup = cli.get_uint("warmup", 20'000);
  cfg.horizon = cli.get_uint("horizon", 100'000);
  cfg.seed = cli.get_uint("seed", 1);
  cfg.max_cycles = cli.get_uint("max_cycles", 0);
  const std::string deadlock = cli.get_string("deadlock", "dab");
  if (deadlock == "dab") {
    cfg.deadlock = core::DeadlockMode::kAvoidanceBuffer;
  } else if (deadlock == "dab_shared") {
    cfg.deadlock = core::DeadlockMode::kAvoidanceBuffer;
    cfg.dab_exclusive = false;
  } else if (deadlock == "watchdog") {
    cfg.deadlock = core::DeadlockMode::kWatchdog;
  } else {
    throw std::invalid_argument("unknown deadlock: '" + deadlock + "'");
  }

  std::cout << "msim-ooo: " << core::scheduler_kind_name(cfg.kind) << ", "
            << cfg.iq_entries << "-entry IQ, fetch "
            << smt::fetch_policy_name(cfg.fetch_policy) << ", "
            << cfg.benchmarks.size() << " thread(s)\n";
  for (std::size_t t = 0; t < cfg.benchmarks.size(); ++t) {
    const auto& p = trace::profile_or_throw(cfg.benchmarks[t]);
    std::cout << "  thread " << t << ": " << p.name << " ("
              << trace::ilp_class_name(p.ilp) << " ILP)\n";
  }
  std::cout << "\n";

  const sim::RunResult r = sim::run_simulation(cfg);

  TextTable perf({"thread", "benchmark", "committed", "ipc"});
  for (std::size_t t = 0; t < cfg.benchmarks.size(); ++t) {
    perf.begin_row();
    perf.add_cell(std::to_string(t));
    perf.add_cell(cfg.benchmarks[t]);
    perf.add_cell(r.per_thread_committed[t]);
    perf.add_cell(r.per_thread_ipc[t], 3);
  }
  perf.print(std::cout, "performance");
  std::cout << "cycles " << r.cycles << ", throughput IPC " << r.throughput_ipc
            << (r.truncated ? "  [TRUNCATED at max_cycles]" : "") << "\n\n";

  TextTable sched({"metric", "value"});
  auto row = [&sched](std::string_view k, double v, int prec = 3) {
    sched.begin_row();
    sched.add_cell(k);
    sched.add_cell(v, prec);
  };
  auto rowu = [&sched](std::string_view k, std::uint64_t v) {
    sched.begin_row();
    sched.add_cell(k);
    sched.add_cell(v);
  };
  rowu("instructions dispatched", r.dispatch.dispatched);
  rowu("  with 0 non-ready sources", r.dispatch.dispatched_by_nonready[0]);
  rowu("  with 1 non-ready source", r.dispatch.dispatched_by_nonready[1]);
  rowu("  with 2 non-ready sources", r.dispatch.dispatched_by_nonready[2]);
  row("all-thread NDI stall fraction", r.dispatch.all_stall_fraction());
  row("HDI fraction behind NDIs", r.dispatch.hdi_fraction_behind_ndi());
  rowu("out-of-order dispatches", r.dispatch.ooo_dispatches);
  row("  fraction dependent on an NDI", r.dispatch.ooo_dependent_fraction());
  rowu("DAB inserts", r.dispatch.dab_inserts);
  rowu("watchdog flushes", r.dispatch.watchdog_flushes);
  row("IQ mean occupancy", r.iq_mean_occupancy, 1);
  row("IQ mean residency (cycles)", r.iq.mean_residency(), 1);
  rowu("IQ comparator operations", r.iq.comparator_ops);
  sched.print(std::cout, "scheduler");

  TextTable mem({"structure", "accesses", "misses", "miss_rate"});
  auto cache_row = [&mem](std::string_view name, const mem::CacheStats& s) {
    mem.begin_row();
    mem.add_cell(name);
    mem.add_cell(s.accesses);
    mem.add_cell(s.misses);
    mem.add_cell(s.miss_rate(), 3);
  };
  cache_row("L1I", r.memory.l1i);
  cache_row("L1D", r.memory.l1d);
  cache_row("L2", r.memory.l2);
  mem.print(std::cout, "memory hierarchy");
  std::cout << "main-memory accesses: " << r.memory.memory_accesses << "\n\n";

  TextTable front({"metric", "value"});
  front.begin_row();
  front.add_cell("branches");
  front.add_cell(r.bpred.branches);
  front.begin_row();
  front.add_cell("mispredict rate");
  front.add_cell(r.bpred.mispredict_rate(), 4);
  front.begin_row();
  front.add_cell("fetch cycles lost to I-cache misses");
  front.add_cell(r.pipeline.fetch_icache_stall_cycles);
  front.begin_row();
  front.add_cell("fetch opportunities gated by L2 misses");
  front.add_cell(r.pipeline.fetch_l2_gated);
  front.begin_row();
  front.add_cell("FLUSH-policy squashes");
  front.add_cell(r.pipeline.policy_flushes);
  front.begin_row();
  front.add_cell("wrong-path instructions fetched");
  front.add_cell(r.pipeline.wrong_path_fetched);
  front.begin_row();
  front.add_cell("wrong-path squashes");
  front.add_cell(r.pipeline.wrong_path_squashes);
  front.print(std::cout, "front end");
  return 0;
}
