// msim_cli: a full command-line driver for the simulator, in the spirit of
// SimpleScalar's sim-outorder.  Runs one configuration and prints a complete
// statistics report from every component.
//
//   ./msim_cli benchmarks=equake,gzip sched=2op_block_ooo iq=64
//              fetch=icount deadlock=dab horizon=200000
//
// The accepted knobs, the --help text and the set of GNU-style value flags
// all come from sim/cli_spec.hpp -- a single source of truth that the test
// suite cross-checks against EXPERIMENTS.md's knob table.  Highlights:
//
//   benchmarks=, sched=, fetch=, deadlock=, iq=, warmup=, horizon=, seed=
//   mode=sampled with region=, detail_warmup=, pilot=, --sampled-json PATH
//   sweep=2|3|4 with --jobs N and --sweep-json PATH
//   --stats-json, --trace-out, trace_format=, trace_capacity=
//   interval=N, --interval-json PATH      interval telemetry (JSONL stream,
//                                         schema msim.intervals.v1)
//   --progress, --progress-json PATH      live progress event stream
//   --chrome-trace PATH                   host-time spans for chrome://tracing
//   verify=, hang_cycles=, fault_* knobs, isolate=, retries=, --diag
//   isolation=process, workers=, cell_timeout_ms=, chaos=   supervised
//                                         sweep worker processes
//   --checkpoint, --checkpoint-every, --resume, checkpoint_exit=
//
// Exit codes: 0 success; 2 bad usage / configuration error (one-line
// message); 3 simulation aborted (hang watchdog or invariant violation;
// diagnostic bundle written); 128+N killed by signal N after saving the
// checkpoint / flushing the journal (SIGINT=130, SIGTERM=143).
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/config.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/progress.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "persist/atomic_file.hpp"
#include "persist/interval_stream.hpp"
#include "persist/signal.hpp"
#include "robust/diagnostic.hpp"
#include "sim/cli_spec.hpp"
#include "sim/config_build.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/run.hpp"
#include "sim/sampled.hpp"
#include "trace/profile.hpp"

namespace {

using namespace msim;

void cache_config_json(JsonWriter& w, const mem::CacheConfig& c) {
  w.begin_object();
  w.kv("size_bytes", c.size_bytes);
  w.kv("assoc", c.assoc);
  w.kv("line_bytes", c.line_bytes);
  w.kv("sets", c.set_count());
  w.kv("hit_extra", c.hit_extra);
  w.kv("mshr_count", c.mshr_count);
  w.end_object();
}

/// JSON echo of the fully resolved machine: what the run would simulate
/// after every default and override is applied.
void dump_machine_config_json(std::ostream& os, const smt::MachineConfig& mc) {
  JsonWriter w(os, 2);
  w.begin_object();
  w.kv("thread_count", mc.thread_count);
  w.kv("fetch_width", mc.fetch_width);
  w.kv("fetch_threads_per_cycle", mc.fetch_threads_per_cycle);
  w.kv("rename_width", mc.rename_width);
  w.kv("dispatch_width", mc.dispatch_width);
  w.kv("issue_width", mc.issue_width);
  w.kv("commit_width", mc.commit_width);
  w.kv("rob_entries_per_thread", mc.rob_entries_per_thread);
  w.kv("lsq_entries_per_thread", mc.lsq_entries_per_thread);
  w.kv("oracle_disambiguation", mc.oracle_disambiguation);
  w.kv("int_phys_regs", mc.int_phys_regs);
  w.kv("fp_phys_regs", mc.fp_phys_regs);
  w.kv("front_end_stages", mc.front_end_stages);
  w.kv("fetch_queue_entries", mc.fetch_queue_entries);
  w.kv("fetch_policy", smt::fetch_policy_name(mc.fetch_policy));
  w.kv("model_wrong_path", mc.model_wrong_path);
  w.kv("trace_capacity", static_cast<std::uint64_t>(mc.trace_capacity));
  w.kv("interval_cycles", mc.interval_cycles);
  w.kv("interval_ring_capacity",
       static_cast<std::uint64_t>(mc.interval_ring_capacity));

  w.key("scheduler");
  w.begin_object();
  w.kv("kind", core::scheduler_kind_name(mc.scheduler.kind));
  w.kv("iq_entries", mc.scheduler.iq_entries);
  w.kv("rename_buffer_entries", mc.scheduler.rename_buffer_entries);
  w.kv("scan_depth", mc.scheduler.scan_depth);
  w.kv("effective_scan_depth", mc.scheduler.effective_scan_depth());
  w.kv("deadlock", core::deadlock_mode_name(mc.scheduler.deadlock));
  w.kv("watchdog_timeout", mc.scheduler.watchdog_timeout);
  w.kv("dab_exclusive", mc.scheduler.dab_exclusive);
  w.end_object();

  w.key("memory");
  w.begin_object();
  w.key("l1i");
  cache_config_json(w, mc.memory.l1i);
  w.key("l1d");
  cache_config_json(w, mc.memory.l1d);
  w.key("l2");
  cache_config_json(w, mc.memory.l2);
  w.kv("memory_latency", mc.memory.memory_latency);
  w.end_object();

  w.key("predictor");
  w.begin_object();
  w.key("gshare");
  w.begin_object();
  w.kv("table_entries", mc.predictor.gshare.table_entries);
  w.kv("history_bits", mc.predictor.gshare.history_bits);
  w.end_object();
  w.key("btb");
  w.begin_object();
  w.kv("entries", mc.predictor.btb.entries);
  w.kv("assoc", mc.predictor.btb.assoc);
  w.end_object();
  w.end_object();

  w.end_object();
  os << '\n';
}

/// Serializes the registry's recorded spans as Chrome trace-event JSON
/// (chrome://tracing, Perfetto) if --chrome-trace was given.
void maybe_write_chrome_trace(const std::string& path,
                              const obs::TimerRegistry& timers) {
  if (path.empty()) return;
  persist::write_text_atomic(path, obs::format_chrome_trace(timers));
  std::cout << "wrote " << timers.spans().size() << " span(s) to " << path
            << " [chrome trace]\n";
}

/// Replays a paper figure's (kind, iq, mix) grid through the parallel sweep
/// engine and prints the figure tables; `base` supplies everything except
/// benchmarks, kind and IQ size.  `bus` (optional) receives sweep/cell
/// progress events; cells are timed as "cell:<key>" scopes in `timers`.
int run_sweep_mode(const KvConfig& cli, sim::RunConfig base, unsigned threads,
                   unsigned jobs, obs::ProgressBus* bus,
                   obs::TimerRegistry& timers) {
  sim::SweepRequest req = sim::build_sweep_request(cli, base, threads, jobs);
  // In sweep mode --checkpoint/--resume name the write-ahead cell journal:
  // a killed sweep (exit 128+N) resumes from it, replaying completed cells.
  req.journal_path = cli.get_string("checkpoint", "");
  const std::string resume_journal = cli.get_string("resume", "");
  if (!resume_journal.empty()) {
    req.journal_path = resume_journal;
    req.resume = true;
  }
  req.progress = [](std::string_view msg) { std::cerr << "  " << msg << "\n"; };
  req.progress_bus = bus;
  req.timers = &timers;

  std::cout << "msim-ooo sweep: " << threads << " threads, " << req.kinds.size()
            << " scheduler kind(s), " << req.iq_sizes.size()
            << " IQ size(s), jobs=" << jobs;
  if (req.isolation == sim::SweepIsolation::kProcess) {
    std::cout << ", isolation=process workers="
              << (req.workers == 0 ? jobs : req.workers);
  }
  std::cout << "\n\n";

  sim::BaselineCache baselines(req.base);
  std::vector<sim::SweepCell> cells;
  {
    const obs::ScopeTimer timer(timers, "sweep");
    cells = sim::run_sweep(req, baselines);
  }

  sim::figure_table(cells, req.kinds, req.iq_sizes, sim::FigureMetric::kIpcSpeedup)
      .print(std::cout, "throughput-IPC speedup vs traditional (%)");
  sim::figure_table(cells, req.kinds, req.iq_sizes,
                    sim::FigureMetric::kFairnessGain)
      .print(std::cout, "fairness improvement vs traditional (%)");
  sim::figure_table(cells, req.kinds, req.iq_sizes,
                    sim::FigureMetric::kThroughputIpc)
      .print(std::cout, "raw harmonic-mean throughput IPC");

  const std::vector<sim::FailedCell> failures = sim::sweep_failures(cells);
  for (const sim::FailedCell& f : failures) {
    std::cerr << "FAILED cell: " << core::scheduler_kind_name(f.kind) << " iq="
              << f.iq_entries << " " << f.mix_name << " after " << f.attempts
              << " attempt(s): " << f.error << "\n";
    if (!f.diag.empty()) std::cerr << "  diag: " << f.diag << "\n";
  }

  const std::string sweep_json = cli.get_string("sweep_json", "");
  if (!sweep_json.empty()) {
    std::ostringstream out;
    sim::write_sweep_json(out, cells);
    persist::write_text_atomic(sweep_json, out.str());
    std::cout << "wrote " << cells.size() << " sweep cells to " << sweep_json
              << "\n";
  }

  timers.print(std::cout);
  std::cout << "sweep wall-clock " << timers.seconds("sweep") << " s at jobs="
            << jobs << " (same seed => same numbers at any job count)\n";
  return failures.empty() ? 0 : 1;
}

/// mode=sampled (docs/SAMPLING.md): runs the phase-guided sampled engine
/// and prints the reconstituted whole-run estimates instead of the full
/// per-component report (only the detailed regions were ever simulated at
/// cycle level, so exact-mode counters do not exist).
int run_sampled_mode(const KvConfig& cli, const sim::RunConfig& cfg,
                     unsigned jobs, obs::TimerRegistry& timers) {
  if (!cli.get_string("stats_json", "").empty()) {
    throw std::invalid_argument(
        "--stats-json reports the full metric registry of an exact run; "
        "mode=sampled produces estimates -- use --sampled-json instead");
  }
  sim::SampledConfig scfg;
  scfg.region_length = cli.get_uint("region", scfg.region_length);
  scfg.detail_warmup = cli.get_uint("detail_warmup", scfg.detail_warmup);
  scfg.pilot = cli.get_uint("pilot", scfg.pilot);
  scfg.jobs = jobs;

  std::cout << "msim-ooo sampled: " << core::scheduler_kind_name(cfg.kind)
            << ", " << cfg.iq_entries << "-entry IQ, "
            << cfg.benchmarks.size() << " thread(s), region="
            << scfg.region_length << " detail_warmup=" << scfg.detail_warmup
            << " pilot=" << scfg.pilot << "\n\n";

  std::optional<sim::SampledResult> result;
  {
    const obs::ScopeTimer run_timer(timers, "run");
    result = sim::run_sampled(cfg, scfg);
  }
  const sim::SampledResult& r = *result;

  TextTable est({"estimate", "value"});
  auto row = [&est](std::string_view k, double v, int prec = 3) {
    est.begin_row();
    est.add_cell(k);
    est.add_cell(v, prec);
  };
  row("throughput IPC", r.est_ipc);
  row("  +/- 95% band", r.ipc_ci95);
  for (std::size_t t = 0; t < r.per_thread_ipc.size(); ++t) {
    row("thread " + std::to_string(t) + " (" + cfg.benchmarks[t] + ") IPC",
        r.per_thread_ipc[t]);
  }
  row("L1D MPKI", r.est_l1d_mpki, 2);
  row("L2 MPKI", r.est_l2_mpki, 2);
  row("branch mispredict rate", r.est_mispredict_rate, 4);
  est.print(std::cout, "whole-run estimates (sampled)");

  std::cout << "coverage: " << r.regions_detailed << " of " << r.regions_total
            << " region(s) simulated in detail (" << r.clusters
            << " phase cluster(s)); " << r.detailed_committed
            << " detailed instructions stand in for "
            << r.exact_equivalent_instructions << "\n";

  if (cfg.interval_cycles != 0) {
    if (!cfg.interval_json.empty()) {
      persist::IntervalStreamWriter writer(
          cfg.interval_json,
          obs::IntervalConfig{.interval_cycles = cfg.interval_cycles},
          static_cast<unsigned>(cfg.benchmarks.size()),
          /*already_streamed=*/0);
      for (const obs::IntervalRecord& rec : r.intervals) writer.append(rec);
      writer.finalize();
    }
    std::cout << "interval telemetry: " << r.intervals.size()
              << " record(s) from the detailed regions ("
              << r.intervals_dropped << " dropped from rings)";
    if (!cfg.interval_json.empty()) {
      std::cout << ", streamed to " << cfg.interval_json;
    }
    std::cout << "\n";
  }

  const std::string sampled_json = cli.get_string("sampled_json", "");
  if (!sampled_json.empty()) {
    std::ostringstream out;
    sim::write_sampled_json(out, cfg, scfg, r);
    persist::write_text_atomic(sampled_json, out.str());
    std::cout << "wrote sampled report (" << r.regions_total << " regions) to "
              << sampled_json << "\n";
  }
  return 0;
}

int run_cli(const KvConfig& cli) {
  const unsigned sweep = static_cast<unsigned>(cli.get_uint("sweep", 0));
  const std::uint64_t jobs =
      cli.get_uint("jobs", ThreadPool::default_parallelism());
  if (jobs == 0) {
    throw std::invalid_argument(
        "jobs=0 is invalid: use jobs=1 for the serial path or jobs=N for N "
        "workers (default: hardware concurrency)");
  }

  // Machine, horizon, robustness and fault knobs are built by the same
  // sim::build_run_config both front ends share (sim/config_build.hpp), so
  // msim_cli and msim_serve cannot drift.  `built` owns the fault injector
  // cfg.faults may point at, so it must outlive the run.
  sim::BuiltRun built = sim::build_run_config(cli);
  sim::RunConfig& cfg = built.config;
  if (!built.fault_note.empty()) {
    std::cerr << "fault injection: " << built.fault_note << "\n";
  }
  // Checkpoint / restore (docs/CHECKPOINT.md).  A SignalGuard is installed
  // in main, so every run and sweep cell polls for SIGINT/SIGTERM.
  cfg.watch_signals = true;

  // Observability surfaces shared by single-run and sweep mode: the
  // progress bus fans events out to the terminal and/or a JSONL log, the
  // timer registry feeds --chrome-trace (docs/OBSERVABILITY.md).
  obs::TimerRegistry timers;
  const std::string chrome_trace = cli.get_string("chrome_trace", "");
  if (!chrome_trace.empty()) timers.enable_spans();
  obs::ProgressBus bus;
  std::optional<obs::TerminalProgressSink> term_sink;
  std::ofstream progress_os;
  std::optional<obs::JsonlProgressSink> jsonl_sink;
  if (cli.get_bool("progress", false)) {
    term_sink.emplace(std::cerr);
    bus.subscribe(&*term_sink);
  }
  const std::string progress_json = cli.get_string("progress_json", "");
  if (!progress_json.empty()) {
    progress_os.open(progress_json, std::ios::trunc);
    if (!progress_os) {
      throw std::runtime_error("cannot open '" + progress_json + "'");
    }
    jsonl_sink.emplace(progress_os);
    bus.subscribe(&*jsonl_sink);
  }
  const bool want_bus = term_sink.has_value() || jsonl_sink.has_value();

  // Interval telemetry (schema msim.intervals.v1): --interval-json without
  // an explicit interval= turns sampling on at the default period.
  std::uint64_t interval = cli.get_uint("interval", 0);
  const std::string interval_json = cli.get_string("interval_json", "");
  if (!interval_json.empty() && interval == 0) interval = 10'000;
  cfg.interval_cycles = interval;
  if (want_bus) cfg.progress_bus = &bus;

  const std::string mode = cli.get_string("mode", "exact");
  if (mode != "exact" && mode != "sampled") {
    throw std::invalid_argument("unknown mode: '" + mode +
                                "' (exact | sampled)");
  }

  if (sweep != 0) {
    if (mode == "sampled") {
      throw std::invalid_argument(
          "mode=sampled is single-run only; sweep cells are exact "
          "simulations (sample one configuration at a time)");
    }
    if (!interval_json.empty()) {
      throw std::invalid_argument(
          "--interval-json is single-run only (sweep cells keep their "
          "interval rings in the journal; use interval=N with --sweep-json "
          "or --checkpoint instead)");
    }
    const int rc = run_sweep_mode(cli, cfg, sweep, static_cast<unsigned>(jobs),
                                  want_bus ? &bus : nullptr, timers);
    maybe_write_chrome_trace(chrome_trace, timers);
    return rc;
  }
  cfg.interval_json = interval_json;

  // Single-run checkpointing (sweep mode interprets these knobs as the
  // cell journal instead, above).
  cfg.checkpoint_path = cli.get_string("checkpoint", "");
  cfg.checkpoint_every = cli.get_uint("checkpoint_every", 0);
  cfg.checkpoint_exit_cycles = cli.get_uint("checkpoint_exit", 0);
  cfg.resume_path = cli.get_string("resume", "");

  const std::string stats_json = cli.get_string("stats_json", "");
  const std::string trace_out = cli.get_string("trace_out", "");
  const std::string trace_format = cli.get_string("trace_format", "konata");
  if (trace_format != "konata" && trace_format != "gantt") {
    throw std::invalid_argument("unknown trace_format: '" + trace_format + "'");
  }
  cfg.trace_capacity = cli.get_uint("trace_capacity", 0);
  if (!trace_out.empty() && cfg.trace_capacity == 0) {
    cfg.trace_capacity = std::size_t{1} << 20;
  }

  if (cli.get_bool("dump_config", false)) {
    dump_machine_config_json(std::cout, cfg.machine());
    return 0;
  }

  if (mode == "sampled") {
    const int rc =
        run_sampled_mode(cli, cfg, static_cast<unsigned>(jobs), timers);
    maybe_write_chrome_trace(chrome_trace, timers);
    return rc;
  }

  std::cout << "msim-ooo: " << core::scheduler_kind_name(cfg.kind) << ", "
            << cfg.iq_entries << "-entry IQ, fetch "
            << smt::fetch_policy_name(cfg.fetch_policy) << ", "
            << cfg.benchmarks.size() << " thread(s)\n";
  for (std::size_t t = 0; t < cfg.benchmarks.size(); ++t) {
    const auto& p = trace::profile_or_throw(cfg.benchmarks[t]);
    std::cout << "  thread " << t << ": " << p.name << " ("
              << trace::ilp_class_name(p.ilp) << " ILP)\n";
  }
  std::cout << "\n";

  std::optional<sim::RunResult> result;
  {
    const obs::ScopeTimer run_timer(timers, "run");
    result = sim::run_simulation(cfg);
  }
  const sim::RunResult& r = *result;

  TextTable perf({"thread", "benchmark", "committed", "ipc"});
  for (std::size_t t = 0; t < cfg.benchmarks.size(); ++t) {
    perf.begin_row();
    perf.add_cell(std::to_string(t));
    perf.add_cell(cfg.benchmarks[t]);
    perf.add_cell(r.per_thread_committed[t]);
    perf.add_cell(r.per_thread_ipc[t], 3);
  }
  perf.print(std::cout, "performance");
  std::cout << "cycles " << r.cycles << ", throughput IPC " << r.throughput_ipc
            << (r.truncated ? "  [TRUNCATED at max_cycles]" : "") << "\n\n";

  TextTable sched({"metric", "value"});
  auto row = [&sched](std::string_view k, double v, int prec = 3) {
    sched.begin_row();
    sched.add_cell(k);
    sched.add_cell(v, prec);
  };
  auto rowu = [&sched](std::string_view k, std::uint64_t v) {
    sched.begin_row();
    sched.add_cell(k);
    sched.add_cell(v);
  };
  rowu("instructions dispatched", r.dispatch.dispatched);
  rowu("  with 0 non-ready sources", r.dispatch.dispatched_by_nonready[0]);
  rowu("  with 1 non-ready source", r.dispatch.dispatched_by_nonready[1]);
  rowu("  with 2 non-ready sources", r.dispatch.dispatched_by_nonready[2]);
  row("all-thread NDI stall fraction", r.dispatch.all_stall_fraction());
  row("HDI fraction behind NDIs", r.dispatch.hdi_fraction_behind_ndi());
  rowu("out-of-order dispatches", r.dispatch.ooo_dispatches);
  row("  fraction dependent on an NDI", r.dispatch.ooo_dependent_fraction());
  rowu("DAB inserts", r.dispatch.dab_inserts);
  rowu("watchdog flushes", r.dispatch.watchdog_flushes);
  row("IQ mean occupancy", r.iq_mean_occupancy, 1);
  row("IQ mean residency (cycles)", r.iq.mean_residency(), 1);
  rowu("IQ comparator operations", r.iq.comparator_ops);
  sched.print(std::cout, "scheduler");

  TextTable mem({"structure", "accesses", "misses", "miss_rate"});
  auto cache_row = [&mem](std::string_view name, const mem::CacheStats& s) {
    mem.begin_row();
    mem.add_cell(name);
    mem.add_cell(s.accesses);
    mem.add_cell(s.misses);
    mem.add_cell(s.miss_rate(), 3);
  };
  cache_row("L1I", r.memory.l1i);
  cache_row("L1D", r.memory.l1d);
  cache_row("L2", r.memory.l2);
  mem.print(std::cout, "memory hierarchy");
  std::cout << "main-memory accesses: " << r.memory.memory_accesses << "\n\n";

  TextTable front({"metric", "value"});
  front.begin_row();
  front.add_cell("branches");
  front.add_cell(r.bpred.branches);
  front.begin_row();
  front.add_cell("mispredict rate");
  front.add_cell(r.bpred.mispredict_rate(), 4);
  front.begin_row();
  front.add_cell("fetch cycles lost to I-cache misses");
  front.add_cell(r.pipeline.fetch_icache_stall_cycles);
  front.begin_row();
  front.add_cell("fetch opportunities gated by L2 misses");
  front.add_cell(r.pipeline.fetch_l2_gated);
  front.begin_row();
  front.add_cell("FLUSH-policy squashes");
  front.add_cell(r.pipeline.policy_flushes);
  front.begin_row();
  front.add_cell("wrong-path instructions fetched");
  front.add_cell(r.pipeline.wrong_path_fetched);
  front.begin_row();
  front.add_cell("wrong-path squashes");
  front.add_cell(r.pipeline.wrong_path_squashes);
  front.print(std::cout, "front end");

  if (cfg.interval_cycles != 0) {
    std::cout << "interval telemetry: " << r.intervals.size()
              << " record(s) every " << cfg.interval_cycles << " cycles ("
              << r.intervals_dropped << " dropped from ring)";
    if (!cfg.interval_json.empty()) {
      std::cout << ", streamed to " << cfg.interval_json;
    }
    std::cout << "\n";
  }

  if (!stats_json.empty()) {
    std::ostringstream out;
    sim::write_run_json(out, cfg, r);
    persist::write_text_atomic(stats_json, out.str());
    std::cout << "\nwrote " << r.metrics.size() << " metrics to " << stats_json
              << "\n";
  }
  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (!out) throw std::runtime_error("cannot open '" + trace_out + "'");
    if (trace_format == "konata") {
      obs::write_konata(out, r.trace);
    } else {
      obs::write_gantt(out, r.trace);
    }
    std::cout << "wrote " << r.trace.size() << " trace events ("
              << r.trace_dropped << " dropped) to " << trace_out << " ["
              << trace_format << "]\n";
  }
  maybe_write_chrome_trace(chrome_trace, timers);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Convert SIGINT/SIGTERM into a polled flag: runs save a final checkpoint
  // (and sweeps flush their journal) before exiting 128+signum.
  const persist::SignalGuard signals;
  std::string diag_path = "msim-diagnostic.json";
  try {
    const std::vector<std::string> args =
        sim::normalize_cli_args(argc, argv, sim::cli_value_flags());
    const KvConfig cli = KvConfig::parse_strings(args);
    if (cli.get_bool("help", false)) {
      std::cout << sim::cli_usage();
      return 0;
    }
    if (const auto unknown = cli.unknown_keys(sim::cli_known_keys());
        !unknown.empty()) {
      std::string msg = "unknown option(s):";
      for (const std::string& k : unknown) msg += " " + k;
      msg += " (run msim_cli --help, or see the knob table in EXPERIMENTS.md)";
      throw std::invalid_argument(msg);
    }
    diag_path = cli.get_string("diag", diag_path);
    return run_cli(cli);
  } catch (const persist::Interrupted& e) {
    std::cerr << "interrupted: " << e.what()
              << " (resumable state saved where configured; rerun with "
                 "--resume)\n";
    return e.exit_code();
  } catch (const robust::SimulationAborted& e) {
    // The machine hung or violated an invariant: preserve its final state
    // for post-mortem analysis instead of dying with a bare message.
    try {
      persist::write_text_atomic(diag_path, e.bundle());
      std::cerr << "fatal: " << e.what() << "\ndiagnostic bundle: "
                << diag_path << "\n";
    } catch (const std::exception& io) {
      std::cerr << "fatal: " << e.what() << "\n(could not write diagnostic "
                << "bundle to '" << diag_path << "': " << io.what() << ")\n";
    }
    return 3;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
