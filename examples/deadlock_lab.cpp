// Deadlock laboratory: out-of-order dispatch can deadlock (Section 4 of the
// paper) -- younger dependent instructions fill the IQ while the oldest
// instruction waits for an entry.  This example squeezes a memory-bound
// 2-thread mix through a deliberately tiny IQ and shows both remedies
// keeping the machine live:
//   * the deadlock-avoidance buffer (DAB), the paper's preferred design;
//   * the watchdog timer with full pipeline flush & replay.
//
//   ./deadlock_lab [iq=6] [horizon=30000] [watchdog=200]
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "sim/run.hpp"

int main(int argc, char** argv) {
  using namespace msim;
  const KvConfig cli = KvConfig::parse({argv + 1, static_cast<std::size_t>(argc - 1)});

  sim::RunConfig base;
  base.benchmarks = {"art", "lucas"};
  base.kind = core::SchedulerKind::kTwoOpBlockOoo;
  base.iq_entries = static_cast<std::uint32_t>(cli.get_uint("iq", 6));
  base.warmup = cli.get_uint("warmup", 5'000);
  base.horizon = cli.get_uint("horizon", 30'000);
  base.max_cycles = 20'000'000;  // a deadlock would otherwise hang forever

  std::cout << "2OP_BLOCK + out-of-order dispatch, art+lucas, "
            << base.iq_entries << "-entry IQ\n\n";

  TextTable table({"deadlock handling", "ipc", "dab_inserts", "dab_issues",
                   "watchdog_flushes", "flushed_instructions", "completed"});
  auto report = [&table](std::string_view name, const sim::RunResult& r) {
    table.begin_row();
    table.add_cell(name);
    table.add_cell(r.throughput_ipc, 3);
    table.add_cell(r.dispatch.dab_inserts);
    table.add_cell(r.dispatch.dab_issues);
    table.add_cell(r.dispatch.watchdog_flushes);
    table.add_cell(r.pipeline.watchdog_flushed_instructions);
    table.add_cell(r.truncated ? "TIMED OUT" : "yes");
  };

  {
    sim::RunConfig cfg = base;
    cfg.deadlock = core::DeadlockMode::kAvoidanceBuffer;
    report("avoidance buffer", sim::run_simulation(cfg));
  }
  {
    sim::RunConfig cfg = base;
    cfg.deadlock = core::DeadlockMode::kWatchdog;
    cfg.watchdog_timeout = static_cast<std::uint32_t>(cli.get_uint("watchdog", 200));
    report("watchdog timer", sim::run_simulation(cfg));
  }

  table.print(std::cout, "forward progress under a deliberately starved IQ");
  std::cout << "Both designs complete the run; the DAB does it without ever\n"
               "flushing, which is why the paper prefers it (Section 4).\n";
  return 0;
}
