// Capacity planning: the design question the paper motivates.  A reduced-tag
// scheduler (one comparator per IQ entry) is smaller, faster and cooler --
// but how many entries does each scheduler design need to reach a target
// fraction of peak throughput on a given workload?
//
//   ./capacity_planning [mix=4T-mix6] [target=0.95] [horizon=80000]
//
// Prints the throughput of every (design, size) point and the smallest IQ
// each design needs to hit the target, taking the best observed throughput
// across all points as "peak".
#include <iostream>
#include <optional>

#include "common/config.hpp"
#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "trace/mixes.hpp"

int main(int argc, char** argv) {
  using namespace msim;
  const KvConfig cli = KvConfig::parse({argv + 1, static_cast<std::size_t>(argc - 1)});

  sim::RunConfig base;
  base.warmup = cli.get_uint("warmup", 15'000);
  base.horizon = cli.get_uint("horizon", 80'000);
  base.seed = cli.get_uint("seed", 1);
  const double target = cli.get_double("target", 0.95);
  const trace::WorkloadMix& mix = trace::mix_or_throw(cli.get_string("mix", "4T-mix6"));

  constexpr core::SchedulerKind kKinds[] = {core::SchedulerKind::kTraditional,
                                            core::SchedulerKind::kTwoOpBlock,
                                            core::SchedulerKind::kTwoOpBlockOoo};
  constexpr std::uint32_t kSizes[] = {16, 24, 32, 48, 64, 96, 128};

  std::cout << "workload " << mix.name << " (" << trace::describe_mix(mix)
            << "), target = " << target << " of peak throughput\n\n";

  sim::BaselineCache baselines(base);
  double ipc[3][std::size(kSizes)] = {};
  double peak = 0.0;
  TextTable sweep({"iq_entries", "traditional", "2op_block", "2op_block_ooo"});
  for (std::size_t s = 0; s < std::size(kSizes); ++s) {
    sweep.begin_row();
    sweep.add_cell(std::uint64_t{kSizes[s]});
    for (std::size_t k = 0; k < 3; ++k) {
      const sim::MixResult r = sim::run_mix(mix, kKinds[k], kSizes[s], base, baselines);
      ipc[k][s] = r.throughput_ipc;
      peak = std::max(peak, r.throughput_ipc);
      sweep.add_cell(r.throughput_ipc, 3);
    }
  }
  sweep.print(std::cout, "throughput IPC by scheduler design and IQ size");

  TextTable plan({"scheduler", "comparators/entry", "smallest IQ for target",
                  "throughput there"});
  for (std::size_t k = 0; k < 3; ++k) {
    std::optional<std::size_t> chosen;
    for (std::size_t s = 0; s < std::size(kSizes) && !chosen; ++s) {
      if (ipc[k][s] >= target * peak) chosen = s;
    }
    plan.begin_row();
    plan.add_cell(core::scheduler_kind_name(kKinds[k]));
    plan.add_cell(core::reduced_tag(kKinds[k]) ? "1" : "2");
    if (chosen) {
      plan.add_cell(std::uint64_t{kSizes[*chosen]});
      plan.add_cell(ipc[k][*chosen], 3);
    } else {
      plan.add_cell("unreached");
      plan.add_cell(ipc[k][std::size(kSizes) - 1], 3);
    }
  }
  plan.print(std::cout, "capacity plan");
  std::cout << "peak throughput observed: " << peak << " IPC\n";
  return 0;
}
