// Benchmark characterization report: runs every synthetic SPEC2000 stand-in
// single-threaded on the traditional scheduler and prints the properties
// that drive the paper's experiments -- exactly the data Section 2 uses to
// classify benchmarks into low / medium / high ILP.
//
//   ./profile_report [iq=64] [horizon=100000] [bench=gcc]
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "sim/run.hpp"
#include "trace/profile.hpp"

int main(int argc, char** argv) {
  using namespace msim;
  const KvConfig cli = KvConfig::parse({argv + 1, static_cast<std::size_t>(argc - 1)});

  sim::RunConfig base;
  base.iq_entries = static_cast<std::uint32_t>(cli.get_uint("iq", 64));
  base.warmup = cli.get_uint("warmup", 20'000);
  base.horizon = cli.get_uint("horizon", 100'000);
  base.seed = cli.get_uint("seed", 1);
  const std::string only = cli.get_string("bench", "");

  TextTable table({"benchmark", "class", "ipc", "l1d_miss", "l2_miss",
                   "bpred_misp", "2src_nonready_frac", "iq_residency"});
  for (const trace::BenchmarkProfile& p : trace::all_profiles()) {
    if (!only.empty() && p.name != only) continue;
    sim::RunConfig cfg = base;
    cfg.benchmarks = {std::string(p.name)};
    cfg.kind = core::SchedulerKind::kTraditional;
    const sim::RunResult r = sim::run_simulation(cfg);

    const auto& d = r.dispatch;
    const double total_dispatched =
        static_cast<double>(d.dispatched_by_nonready[0] + d.dispatched_by_nonready[1] +
                            d.dispatched_by_nonready[2]);
    table.begin_row();
    table.add_cell(p.name);
    table.add_cell(trace::ilp_class_name(p.ilp));
    table.add_cell(r.throughput_ipc, 2);
    table.add_cell(r.memory.l1d.miss_rate(), 3);
    table.add_cell(r.memory.l2.miss_rate(), 3);
    table.add_cell(r.bpred.mispredict_rate(), 3);
    table.add_cell(total_dispatched > 0
                       ? static_cast<double>(d.dispatched_by_nonready[2]) / total_dispatched
                       : 0.0,
                   3);
    table.add_cell(r.iq.mean_residency(), 1);
  }
  table.print(std::cout, "single-thread benchmark characterization");
  return 0;
}
