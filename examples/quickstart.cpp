// Quickstart: simulate one 2-thread SPEC-style mix under all three
// scheduler designs at a 64-entry issue queue and print the headline
// numbers the paper is about.
//
//   ./quickstart [key=value ...]   e.g. ./quickstart iq=96 horizon=500000
#include <iostream>
#include <span>

#include "common/config.hpp"
#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "trace/mixes.hpp"

int main(int argc, char** argv) {
  using namespace msim;
  const KvConfig cli = KvConfig::parse({argv + 1, static_cast<std::size_t>(argc - 1)});

  sim::RunConfig base;
  base.iq_entries = static_cast<std::uint32_t>(cli.get_uint("iq", 64));
  base.warmup = cli.get_uint("warmup", 20'000);
  base.horizon = cli.get_uint("horizon", 100'000);
  base.seed = cli.get_uint("seed", 1);
  const std::string mix_name = cli.get_string("mix", "2T-mix1");

  const trace::WorkloadMix& mix = trace::mix_or_throw(mix_name);
  std::cout << "workload " << mix.name << " (" << trace::describe_mix(mix) << "):";
  for (const auto bench : mix.threads()) std::cout << ' ' << bench;
  std::cout << "\niq_entries=" << base.iq_entries << " horizon=" << base.horizon
            << "\n\n";

  sim::BaselineCache baselines(base);
  TextTable table({"scheduler", "throughput_ipc", "fairness", "all_stall_frac",
                   "iq_residency", "cycles"});
  for (const core::SchedulerKind kind :
       {core::SchedulerKind::kTraditional, core::SchedulerKind::kTwoOpBlock,
        core::SchedulerKind::kTwoOpBlockOoo}) {
    const sim::MixResult r =
        sim::run_mix(mix, kind, base.iq_entries, base, baselines);
    table.begin_row();
    table.add_cell(core::scheduler_kind_name(kind));
    table.add_cell(r.throughput_ipc, 3);
    table.add_cell(r.fairness, 3);
    table.add_cell(r.raw.dispatch.all_stall_fraction(), 3);
    table.add_cell(r.raw.iq.mean_residency(), 1);
    table.add_cell(r.raw.cycles);
  }
  table.print(std::cout, "quickstart: scheduler face-off on " + mix_name);
  return 0;
}
