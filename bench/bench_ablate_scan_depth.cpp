// Ablation (extension): how deep may the out-of-order dispatch scan look
// each cycle?  The paper dispatches "all HDIs piled up behind" a blocked
// NDI; a hardware implementation would bound the scan ports.  The depth
// counts every entry the scan examines -- skipped NDIs AND dispatched HDIs
// -- so it bounds both the bypass distance and the per-thread dispatch
// throughput (depth 1 is stricter than plain in-order 2OP_BLOCK, which can
// dispatch several head instructions per cycle).  The full rename buffer
// (32) is the paper's design point.
#include "bench_common.hpp"

#include "trace/mixes.hpp"

int main(int argc, char** argv) {
  return msim::bench::guarded_main([&]() -> int {
  using namespace msim;
  bench::BenchOptions opts = bench::parse_options(argc, argv);
  bench::print_run_parameters(opts);

  sim::BaselineCache baselines(opts.base);
  for (unsigned threads : {2u, 4u}) {
    TextTable table({"scan_depth", "hmean_ipc", "all_stall_frac", "ooo_dispatch_frac"});
    for (const std::uint32_t depth : {1u, 2u, 4u, 8u, 16u, 32u}) {
      sim::RunConfig base = opts.base;
      base.scan_depth = depth;
      std::vector<double> ipcs;
      StreamingStat stall;
      std::uint64_t ooo = 0, dispatched = 0;
      for (const trace::WorkloadMix& mix : trace::mixes_for(threads)) {
        if (opts.verbose) std::cerr << "  depth=" << depth << " " << mix.name << "\n";
        const sim::MixResult r = sim::run_mix(
            mix, core::SchedulerKind::kTwoOpBlockOoo, 64, base, baselines);
        ipcs.push_back(r.throughput_ipc);
        stall.add(r.raw.dispatch.all_stall_fraction());
        ooo += r.raw.dispatch.ooo_dispatches;
        dispatched += r.raw.dispatch.dispatched;
      }
      table.begin_row();
      table.add_cell(std::uint64_t{depth});
      table.add_cell(harmonic_mean(ipcs), 3);
      table.add_cell(stall.mean(), 3);
      table.add_cell(dispatched ? static_cast<double>(ooo) /
                                      static_cast<double>(dispatched)
                                : 0.0,
                     3);
    }
    table.print(std::cout, "OOO dispatch scan-depth ablation, " +
                               std::to_string(threads) +
                               "-threaded mixes, 64-entry IQ");
  }
  return 0;
  });
}
