// Figure 5: throughput IPC speedup for 3-threaded workloads.
//
// Paper shape: OOO dispatch above 2OP_BLOCK at all sizes (up to +21% at 64)
// and above traditional up to 64 entries, roughly even at 96.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return msim::bench::run_figure_bench(
      argc, argv, "Figure 5: throughput IPC speedup, 3-threaded workloads", 3,
      msim::sim::FigureMetric::kIpcSpeedup);
}
