// Figure 8: improvement in the fairness metric for 4-threaded workloads.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return msim::bench::run_figure_bench(
      argc, argv, "Figure 8: fairness-metric improvement, 4-threaded workloads", 4,
      msim::sim::FigureMetric::kFairnessGain);
}
