// Figure 3: throughput IPC speedup for 2-threaded workloads -- traditional,
// 2OP_BLOCK and 2OP_BLOCK + out-of-order dispatch, relative to the
// traditional scheduler of the same capacity.
//
// Paper shape: OOO dispatch beats 2OP_BLOCK at every size (by 12/19/22% at
// 32/48/64) and beats traditional up to 64 entries.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return msim::bench::run_figure_bench(
      argc, argv, "Figure 3: throughput IPC speedup, 2-threaded workloads", 2,
      msim::sim::FigureMetric::kIpcSpeedup);
}
