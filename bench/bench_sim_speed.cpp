// Microbenchmark (google-benchmark): simulator throughput in simulated
// instructions per wall-clock second, per scheduler design and thread
// count.  Useful for sizing experiment horizons.
#include <benchmark/benchmark.h>

#include "smt/pipeline.hpp"
#include "trace/profile.hpp"

namespace {

using msim::core::SchedulerKind;

void run_pipeline(benchmark::State& state, SchedulerKind kind,
                  std::initializer_list<const char*> benchmarks) {
  std::vector<msim::trace::BenchmarkProfile> workload;
  for (const char* name : benchmarks) {
    workload.push_back(msim::trace::profile_or_throw(name));
  }
  msim::smt::MachineConfig mc;
  mc.thread_count = static_cast<unsigned>(workload.size());
  mc.scheduler.kind = kind;
  mc.scheduler.iq_entries = 64;

  std::uint64_t committed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    msim::smt::Pipeline pipe(mc, workload, 1);
    state.ResumeTiming();
    pipe.run(20'000);
    committed += pipe.total_committed();
  }
  state.counters["sim_instructions_per_second"] = benchmark::Counter(
      static_cast<double>(committed), benchmark::Counter::kIsRate);
}

void BM_Traditional1T(benchmark::State& state) {
  run_pipeline(state, SchedulerKind::kTraditional, {"gzip"});
}
void BM_Traditional4T(benchmark::State& state) {
  run_pipeline(state, SchedulerKind::kTraditional,
               {"gzip", "equake", "gcc", "mesa"});
}
void BM_TwoOpBlock4T(benchmark::State& state) {
  run_pipeline(state, SchedulerKind::kTwoOpBlock,
               {"gzip", "equake", "gcc", "mesa"});
}
void BM_TwoOpBlockOoo4T(benchmark::State& state) {
  run_pipeline(state, SchedulerKind::kTwoOpBlockOoo,
               {"gzip", "equake", "gcc", "mesa"});
}

BENCHMARK(BM_Traditional1T)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Traditional4T)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TwoOpBlock4T)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TwoOpBlockOoo4T)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
