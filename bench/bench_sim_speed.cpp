// Microbenchmark (google-benchmark): simulator throughput in simulated
// instructions per wall-clock second, per scheduler design and thread
// count.  Useful for sizing experiment horizons.
//
// Each benchmark self-profiles with obs::ScopeTimer and reports, besides
// google-benchmark's own timing, host seconds per stage (construct vs run)
// and simulated KIPS (thousands of simulated instructions per host second).
#include <benchmark/benchmark.h>

#include "obs/timer.hpp"
#include "smt/pipeline.hpp"
#include "trace/profile.hpp"

namespace {

using msim::core::SchedulerKind;

void run_pipeline(benchmark::State& state, SchedulerKind kind,
                  std::initializer_list<const char*> benchmarks,
                  std::size_t trace_capacity = 0) {
  std::vector<msim::trace::BenchmarkProfile> workload;
  for (const char* name : benchmarks) {
    workload.push_back(msim::trace::profile_or_throw(name));
  }
  msim::smt::MachineConfig mc;
  mc.thread_count = static_cast<unsigned>(workload.size());
  mc.scheduler.kind = kind;
  mc.scheduler.iq_entries = 64;
  mc.trace_capacity = trace_capacity;

  msim::obs::TimerRegistry timers;
  std::uint64_t committed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::unique_ptr<msim::smt::Pipeline> pipe;
    {
      msim::obs::ScopeTimer t(timers, "construct");
      pipe = std::make_unique<msim::smt::Pipeline>(mc, workload, 1);
    }
    state.ResumeTiming();
    {
      msim::obs::ScopeTimer t(timers, "run");
      pipe->run(20'000);
    }
    committed += pipe->total_committed();
  }
  state.counters["sim_instructions_per_second"] = benchmark::Counter(
      static_cast<double>(committed), benchmark::Counter::kIsRate);
  state.counters["simulated_kips"] =
      msim::obs::simulated_kips(committed, timers.seconds("run"));
  state.counters["construct_seconds"] = timers.seconds("construct");
  state.counters["run_seconds"] = timers.seconds("run");
}

void BM_Traditional1T(benchmark::State& state) {
  run_pipeline(state, SchedulerKind::kTraditional, {"gzip"});
}
void BM_Traditional4T(benchmark::State& state) {
  run_pipeline(state, SchedulerKind::kTraditional,
               {"gzip", "equake", "gcc", "mesa"});
}
void BM_TwoOpBlock4T(benchmark::State& state) {
  run_pipeline(state, SchedulerKind::kTwoOpBlock,
               {"gzip", "equake", "gcc", "mesa"});
}
void BM_TwoOpBlockOoo4T(benchmark::State& state) {
  run_pipeline(state, SchedulerKind::kTwoOpBlockOoo,
               {"gzip", "equake", "gcc", "mesa"});
}
// Overhead check: the same machine with lifecycle tracing enabled.  Compare
// against BM_TwoOpBlockOoo4T to bound the cost of the observability layer.
void BM_TwoOpBlockOoo4T_Traced(benchmark::State& state) {
  run_pipeline(state, SchedulerKind::kTwoOpBlockOoo,
               {"gzip", "equake", "gcc", "mesa"},
               /*trace_capacity=*/std::size_t{1} << 20);
}

BENCHMARK(BM_Traditional1T)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Traditional4T)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TwoOpBlock4T)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TwoOpBlockOoo4T)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TwoOpBlockOoo4T_Traced)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
