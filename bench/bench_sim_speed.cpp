// Microbenchmark (google-benchmark): simulator throughput in simulated
// instructions per wall-clock second, per scheduler design and thread
// count.  Useful for sizing experiment horizons and for tracking the
// hot-path optimizations documented in docs/PERFORMANCE.md.
//
// Each benchmark self-profiles with obs::ScopeTimer and reports, besides
// google-benchmark's own timing, host seconds per stage (construct vs run)
// and simulated KIPS (thousands of simulated instructions per host second).
//
// Besides the usual --benchmark_* flags, accepts `json=PATH` in the
// repo-wide key=value style: the per-benchmark simulated_kips counters are
// then written to PATH in the BENCH_sim_speed.json schema that
// tools/check_speed.py gates CI on.
#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/timer.hpp"
#include "sim/sampled.hpp"
#include "smt/pipeline.hpp"
#include "trace/profile.hpp"

namespace {

using msim::core::SchedulerKind;

void run_pipeline(benchmark::State& state, SchedulerKind kind,
                  std::initializer_list<const char*> benchmarks,
                  std::size_t trace_capacity = 0,
                  std::uint64_t interval_cycles = 0) {
  std::vector<msim::trace::BenchmarkProfile> workload;
  for (const char* name : benchmarks) {
    workload.push_back(msim::trace::profile_or_throw(name));
  }
  msim::smt::MachineConfig mc;
  mc.thread_count = static_cast<unsigned>(workload.size());
  mc.scheduler.kind = kind;
  mc.scheduler.iq_entries = 64;
  mc.trace_capacity = trace_capacity;
  mc.interval_cycles = interval_cycles;

  msim::obs::TimerRegistry timers;
  std::uint64_t committed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::unique_ptr<msim::smt::Pipeline> pipe;
    {
      msim::obs::ScopeTimer t(timers, "construct");
      pipe = std::make_unique<msim::smt::Pipeline>(mc, workload, 1);
    }
    state.ResumeTiming();
    {
      msim::obs::ScopeTimer t(timers, "run");
      pipe->run(20'000);
    }
    committed += pipe->total_committed();
  }
  state.counters["sim_instructions_per_second"] = benchmark::Counter(
      static_cast<double>(committed), benchmark::Counter::kIsRate);
  state.counters["simulated_kips"] =
      msim::obs::simulated_kips(committed, timers.seconds("run"));
  state.counters["construct_seconds"] = timers.seconds("construct");
  state.counters["run_seconds"] = timers.seconds("run");
}

void BM_Traditional1T(benchmark::State& state) {
  run_pipeline(state, SchedulerKind::kTraditional, {"gzip"});
}
void BM_Traditional4T(benchmark::State& state) {
  run_pipeline(state, SchedulerKind::kTraditional,
               {"gzip", "equake", "gcc", "mesa"});
}
void BM_TwoOpBlock4T(benchmark::State& state) {
  run_pipeline(state, SchedulerKind::kTwoOpBlock,
               {"gzip", "equake", "gcc", "mesa"});
}
void BM_TwoOpBlockOoo4T(benchmark::State& state) {
  run_pipeline(state, SchedulerKind::kTwoOpBlockOoo,
               {"gzip", "equake", "gcc", "mesa"});
}
// Overhead check: the same machine with lifecycle tracing enabled.  Compare
// against BM_TwoOpBlockOoo4T to bound the cost of the observability layer.
void BM_TwoOpBlockOoo4T_Traced(benchmark::State& state) {
  run_pipeline(state, SchedulerKind::kTwoOpBlockOoo,
               {"gzip", "equake", "gcc", "mesa"},
               /*trace_capacity=*/std::size_t{1} << 20);
}
// Overhead check: interval telemetry sampling every 5k cycles (ring only,
// no JSONL sink).  Compare against BM_TwoOpBlockOoo4T to bound the cost of
// the interval engine's boundary captures.
void BM_TwoOpBlockOoo4T_Intervals(benchmark::State& state) {
  run_pipeline(state, SchedulerKind::kTwoOpBlockOoo,
               {"gzip", "equake", "gcc", "mesa"},
               /*trace_capacity=*/0, /*interval_cycles=*/5'000);
}
// Sampled-mode effective throughput (mode=sampled, docs/SAMPLING.md) over a
// span long enough for real phase clustering to pay off.  simulated_kips
// here is *effective*: exact_equivalent_instructions (what an exact run of
// this config would commit, warm-up included) over wall seconds -- the
// apples-to-apples speedup versus simulating the same span exactly.  The
// sampling contract targets >= 5x over this config's exact-mode rate (the
// long-run figure in docs/SAMPLING.md; the cold 20k-instruction
// BM_TwoOpBlockOoo4T row underestimates exact-mode KIPS slightly because
// construction-adjacent warm-up dominates its short runs).
void BM_TwoOpBlockOoo4T_Sampled(benchmark::State& state) {
  msim::sim::RunConfig cfg;
  cfg.benchmarks = {"gzip", "equake", "gcc", "mesa"};
  cfg.kind = SchedulerKind::kTwoOpBlockOoo;
  cfg.iq_entries = 64;
  cfg.seed = 1;
  cfg.warmup = 100'000;
  cfg.horizon = 30'000'000;

  msim::sim::SampledConfig scfg;
  scfg.region_length = 20'000;
  scfg.detail_warmup = 2'000;
  scfg.pilot = 5'000;

  msim::obs::TimerRegistry timers;
  std::uint64_t equivalent = 0;
  for (auto _ : state) {
    msim::sim::SampledResult result;
    {
      msim::obs::ScopeTimer t(timers, "run");
      result = msim::sim::run_sampled(cfg, scfg);
    }
    equivalent += result.exact_equivalent_instructions;
  }
  state.counters["sim_instructions_per_second"] = benchmark::Counter(
      static_cast<double>(equivalent), benchmark::Counter::kIsRate);
  state.counters["simulated_kips"] =
      msim::obs::simulated_kips(equivalent, timers.seconds("run"));
  state.counters["run_seconds"] = timers.seconds("run");
}

BENCHMARK(BM_Traditional1T)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Traditional4T)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TwoOpBlock4T)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TwoOpBlockOoo4T)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TwoOpBlockOoo4T_Traced)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TwoOpBlockOoo4T_Intervals)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TwoOpBlockOoo4T_Sampled)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);  // one ~9 s sampled pass is a stable measurement

/// Console reporting as usual, plus capture of each run's counters so main
/// can export the machine-readable speed baseline.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;
    double simulated_kips = 0.0;
    double sim_instructions_per_second = 0.0;
    double real_ms_per_iteration = 0.0;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      Row row;
      row.name = run.benchmark_name();
      if (const auto it = run.counters.find("simulated_kips");
          it != run.counters.end()) {
        row.simulated_kips = it->second.value;
      }
      if (const auto it = run.counters.find("sim_instructions_per_second");
          it != run.counters.end()) {
        row.sim_instructions_per_second = it->second.value;
      }
      if (run.iterations > 0) {
        row.real_ms_per_iteration =
            run.real_accumulated_time * 1e3 / static_cast<double>(run.iterations);
      }
      rows.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::vector<Row> rows;
};

void write_speed_json(const std::string& path,
                      const std::vector<CapturingReporter::Row>& rows) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "error: cannot open '" << path << "'\n";
    std::exit(2);
  }
  out << "{\n  \"schema\": \"msim.bench_sim_speed.v1\",\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const CapturingReporter::Row& r = rows[i];
    out << "    {\"name\": \"" << r.name << "\", \"simulated_kips\": "
        << r.simulated_kips << ", \"sim_instructions_per_second\": "
        << r.sim_instructions_per_second << ", \"real_ms_per_iteration\": "
        << r.real_ms_per_iteration << "}" << (i + 1 < rows.size() ? "," : "")
        << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << rows.size() << " benchmark rows to " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off the repo-style json=PATH key before google-benchmark sees the
  // command line; everything else passes through to its flag parser.
  std::string json_path;
  std::vector<char*> passthrough;
  passthrough.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "json=", 5) == 0) {
      json_path = argv[i] + 5;
      continue;
    }
    passthrough.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&filtered_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, passthrough.data())) {
    std::cerr << "error: unknown option(s); this bench takes --benchmark_* "
                 "flags plus json=PATH (see the knob table in "
                 "EXPERIMENTS.md)\n";
    return 2;
  }
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (!json_path.empty()) write_speed_json(json_path, reporter.rows);
  return 0;
}
