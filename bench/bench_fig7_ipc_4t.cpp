// Figure 7: throughput IPC speedup for 4-threaded workloads.
//
// Paper shape: OOO dispatch above 2OP_BLOCK for every size larger than 32
// entries (slightly below it at 32, where TLP alone fills the small queue),
// and above traditional at every size.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return msim::bench::run_figure_bench(
      argc, argv, "Figure 7: throughput IPC speedup, 4-threaded workloads", 4,
      msim::sim::FigureMetric::kIpcSpeedup);
}
