// Extension: the statically partitioned tag-elimination queue (Ernst &
// Austin, ISCA 2002 -- the paper's reference [5]) against the designs the
// paper evaluates, across IQ sizes.  Tag elimination admits two-non-ready
// instructions (into its limited pool of 2-comparator entries) while still
// saving half the comparators, so it sits between the traditional and
// 2OP_BLOCK designs.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return msim::bench::guarded_main([&]() -> int {
  using namespace msim;
  const bench::BenchOptions opts = bench::parse_options(argc, argv);
  bench::print_run_parameters(opts);

  for (unsigned threads : {2u, 4u}) {
    sim::SweepRequest req;
    req.thread_count = threads;
    req.kinds = {core::SchedulerKind::kTraditional, core::SchedulerKind::kTwoOpBlock,
                 core::SchedulerKind::kTwoOpBlockOoo,
                 core::SchedulerKind::kTagElimination};
    req.iq_sizes.assign(opts.iq_sizes.begin(), opts.iq_sizes.end());
    req.base = opts.base;
    if (opts.verbose) {
      req.progress = [](std::string_view m) { std::cerr << "  " << m << "\n"; };
    }
    sim::BaselineCache baselines(opts.base);
    const auto cells = sim::run_sweep(req, baselines);
    bench::print_figure("tag elimination vs the paper's designs, IPC speedup, " +
                            std::to_string(threads) + "-threaded mixes",
                        cells, req.kinds, opts, sim::FigureMetric::kIpcSpeedup);
  }
  return 0;
  });
}
