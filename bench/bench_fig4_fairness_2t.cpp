// Figure 4: improvement in the fairness metric (harmonic mean of weighted
// IPCs) for 2-threaded workloads, relative to the traditional scheduler of
// the same capacity.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return msim::bench::run_figure_bench(
      argc, argv, "Figure 4: fairness-metric improvement, 2-threaded workloads", 2,
      msim::sim::FigureMetric::kFairnessGain);
}
