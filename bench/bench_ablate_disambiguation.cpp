// Ablation (extension): memory disambiguation policy in the LSQ.  The
// default models the SimpleScalar-era perfect-disambiguation configuration
// (a load is blocked only by a same-address older store); the conservative
// variant blocks loads behind any unresolved older store address.  The
// out-of-order dispatch mechanism's benefit on memory-bound mixes depends
// on loads actually issuing early, so the conservative LSQ compresses it.
#include "bench_common.hpp"

#include "trace/mixes.hpp"

int main(int argc, char** argv) {
  return msim::bench::guarded_main([&]() -> int {
  using namespace msim;
  bench::BenchOptions opts = bench::parse_options(argc, argv);
  bench::print_run_parameters(opts);

  for (const bool oracle : {true, false}) {
    sim::RunConfig base = opts.base;
    base.oracle_disambiguation = oracle;
    sim::BaselineCache baselines(base);
    TextTable table({"scheduler", "hmean_ipc_2T", "hmean_ipc_4T"});
    for (const core::SchedulerKind kind :
         {core::SchedulerKind::kTraditional, core::SchedulerKind::kTwoOpBlock,
          core::SchedulerKind::kTwoOpBlockOoo}) {
      table.begin_row();
      table.add_cell(core::scheduler_kind_name(kind));
      for (unsigned threads : {2u, 4u}) {
        std::vector<double> ipcs;
        for (const trace::WorkloadMix& mix : trace::mixes_for(threads)) {
          if (opts.verbose) {
            std::cerr << "  oracle=" << oracle << " "
                      << core::scheduler_kind_name(kind) << " " << mix.name << "\n";
          }
          ipcs.push_back(
              sim::run_mix(mix, kind, 64, base, baselines).throughput_ipc);
        }
        table.add_cell(harmonic_mean(ipcs), 3);
      }
    }
    table.print(std::cout, std::string("LSQ disambiguation ablation: ") +
                               (oracle ? "oracle (default)" : "conservative") +
                               ", 64-entry IQ");
  }
  return 0;
  });
}
