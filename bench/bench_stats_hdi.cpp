// Section 4 text statistics about Hidden Dispatchable Instructions:
//   * ~90% of the instructions piled up behind a blocking NDI are HDIs;
//   * only ~10% of HDIs dispatched out of program order depend (directly or
//     transitively) on a bypassed NDI;
//   * idealized zero-overhead filtering of NDI-dependent HDIs buys only
//     ~1.2% IPC on average, so blind out-of-order dispatch loses little.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return msim::bench::guarded_main([&]() -> int {
  using namespace msim;
  bench::BenchOptions opts = bench::parse_options(argc, argv);
  bench::print_run_parameters(opts);

  sim::BaselineCache baselines(opts.base);
  sim::SweepRequest req;
  req.thread_count = 2;
  req.kinds = {core::SchedulerKind::kTwoOpBlock, core::SchedulerKind::kTwoOpBlockOoo,
               core::SchedulerKind::kTwoOpBlockOooFiltered};
  req.iq_sizes = {64};
  req.base = opts.base;
  if (opts.verbose) {
    req.progress = [](std::string_view m) { std::cerr << "  " << m << "\n"; };
  }
  const auto cells = sim::run_sweep(req, baselines);
  const sim::SweepCell& block =
      sim::cell_for(cells, core::SchedulerKind::kTwoOpBlock, 64);
  const sim::SweepCell& ooo =
      sim::cell_for(cells, core::SchedulerKind::kTwoOpBlockOoo, 64);
  const sim::SweepCell& filtered =
      sim::cell_for(cells, core::SchedulerKind::kTwoOpBlockOooFiltered, 64);

  // Aggregate the HDI counters across the 12 mixes.
  auto hdi_fraction = [](const sim::SweepCell& cell) {
    std::uint64_t hdis = 0, examined = 0;
    for (const sim::MixResult& m : cell.mixes) {
      hdis += m.raw.dispatch.behind_ndi_hdis;
      examined += m.raw.dispatch.behind_ndi_examined;
    }
    return examined ? static_cast<double>(hdis) / static_cast<double>(examined) : 0.0;
  };
  auto dependent_fraction = [](const sim::SweepCell& cell) {
    std::uint64_t dep = 0, total = 0;
    for (const sim::MixResult& m : cell.mixes) {
      dep += m.raw.dispatch.ooo_dispatches_dependent;
      total += m.raw.dispatch.ooo_dispatches;
    }
    return total ? static_cast<double>(dep) / static_cast<double>(total) : 0.0;
  };

  TextTable table({"statistic", "paper", "measured"});
  auto row = [&table](std::string_view what, std::string_view paper, double v) {
    table.begin_row();
    table.add_cell(what);
    table.add_cell(paper);
    table.add_cell(v, 3);
  };
  row("HDI fraction of instructions piled behind an NDI (2OP_BLOCK)", "~0.90",
      hdi_fraction(block));
  row("fraction of OOO-dispatched HDIs dependent on a bypassed NDI", "~0.10",
      dependent_fraction(ooo));
  row("IPC gain of idealized filtering over blind OOO dispatch", "~0.012",
      filtered.hmean_ipc / ooo.hmean_ipc - 1.0);
  table.print(std::cout,
              "Section 4: Hidden Dispatchable Instruction statistics "
              "(2-threaded mixes, 64-entry IQ)");
  return 0;
  });
}
