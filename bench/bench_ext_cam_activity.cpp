// Extension: the complexity/power side of the paper's argument.  The
// 2OP_BLOCK family halves the wakeup CAM (one comparator per entry); this
// bench reports the comparator hardware of each design and the measured
// CAM activity -- comparator operations per committed instruction -- on the
// paper's 2-threaded mixes.  (The paper defers circuit-level numbers to
// [13]; this is the corresponding activity model.)
#include "bench_common.hpp"

#include "trace/mixes.hpp"

int main(int argc, char** argv) {
  return msim::bench::guarded_main([&]() -> int {
  using namespace msim;
  bench::BenchOptions opts = bench::parse_options(argc, argv);
  bench::print_run_parameters(opts);

  constexpr core::SchedulerKind kKinds[] = {
      core::SchedulerKind::kTraditional, core::SchedulerKind::kTwoOpBlock,
      core::SchedulerKind::kTwoOpBlockOoo, core::SchedulerKind::kTagElimination};

  sim::BaselineCache baselines(opts.base);
  TextTable table({"scheduler", "comparators@64", "hmean_ipc", "broadcasts/instr",
                   "cam_ops/instr", "wakeups/instr"});
  for (const core::SchedulerKind kind : kKinds) {
    std::vector<double> ipcs;
    std::uint64_t broadcasts = 0, cam_ops = 0, wakeups = 0, committed = 0;
    for (const trace::WorkloadMix& mix : trace::mixes_for(2)) {
      if (opts.verbose) {
        std::cerr << "  " << core::scheduler_kind_name(kind) << " " << mix.name << "\n";
      }
      const sim::MixResult r = sim::run_mix(mix, kind, 64, opts.base, baselines);
      ipcs.push_back(r.throughput_ipc);
      broadcasts += r.raw.iq.broadcasts;
      cam_ops += r.raw.iq.comparator_ops;
      wakeups += r.raw.iq.wakeups;
      for (const std::uint64_t c : r.raw.per_thread_committed) committed += c;
    }
    const core::IqLayout layout =
        kind == core::SchedulerKind::kTagElimination
            ? core::IqLayout::tag_eliminated(64)
            : core::IqLayout::uniform(64, core::reduced_tag(kind) ? 1 : 2);
    const auto per_instr = [committed](std::uint64_t x) {
      return committed ? static_cast<double>(x) / static_cast<double>(committed) : 0.0;
    };
    table.begin_row();
    table.add_cell(core::scheduler_kind_name(kind));
    table.add_cell(std::uint64_t{layout.comparators()});
    table.add_cell(harmonic_mean(ipcs), 3);
    table.add_cell(per_instr(broadcasts), 3);
    table.add_cell(per_instr(cam_ops), 3);
    table.add_cell(per_instr(wakeups), 3);
  }
  table.print(std::cout,
              "wakeup CAM hardware and activity, 2-threaded mixes, 64-entry IQ");
  return 0;
  });
}
