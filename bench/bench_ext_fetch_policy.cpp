// Extension: fetch-policy interaction with the scheduler designs.  The
// paper's introduction surveys ICOUNT [16], STALL and FLUSH [15] as the
// traditional (fetch-side) way of managing shared-resource clogging; its
// own mechanism works at dispatch instead.  This bench crosses the two
// axes.  Note the known STALL/FLUSH pathology (the paper's reference [2]):
// gating fetch on an L2 miss destroys the gated thread's memory-level
// parallelism.
#include "bench_common.hpp"

#include "smt/machine_config.hpp"
#include "trace/mixes.hpp"

int main(int argc, char** argv) {
  return msim::bench::guarded_main([&]() -> int {
  using namespace msim;
  bench::BenchOptions opts = bench::parse_options(argc, argv);
  bench::print_run_parameters(opts);

  constexpr smt::FetchPolicy kPolicies[] = {
      smt::FetchPolicy::kIcount, smt::FetchPolicy::kRoundRobin,
      smt::FetchPolicy::kStall, smt::FetchPolicy::kFlush};
  constexpr core::SchedulerKind kKinds[] = {core::SchedulerKind::kTraditional,
                                            core::SchedulerKind::kTwoOpBlock,
                                            core::SchedulerKind::kTwoOpBlockOoo};

  for (unsigned threads : {2u, 4u}) {
    TextTable table({"fetch_policy", "traditional", "2op_block", "2op_block_ooo"});
    for (const smt::FetchPolicy policy : kPolicies) {
      sim::RunConfig base = opts.base;
      base.fetch_policy = policy;
      // Baselines must use the same fetch policy for a fair fairness metric.
      sim::BaselineCache baselines(base);
      table.begin_row();
      table.add_cell(smt::fetch_policy_name(policy));
      for (const core::SchedulerKind kind : kKinds) {
        std::vector<double> ipcs;
        for (const trace::WorkloadMix& mix : trace::mixes_for(threads)) {
          if (opts.verbose) {
            std::cerr << "  " << smt::fetch_policy_name(policy) << " "
                      << core::scheduler_kind_name(kind) << " " << mix.name << "\n";
          }
          ipcs.push_back(
              sim::run_mix(mix, kind, 64, base, baselines).throughput_ipc);
        }
        table.add_cell(harmonic_mean(ipcs), 3);
      }
    }
    table.print(std::cout, "fetch policy x scheduler design, hmean throughput IPC, " +
                               std::to_string(threads) +
                               "-threaded mixes, 64-entry IQ");
  }
  return 0;
  });
}
