// Figure 6: improvement in the fairness metric for 3-threaded workloads.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return msim::bench::run_figure_bench(
      argc, argv, "Figure 6: fairness-metric improvement, 3-threaded workloads", 3,
      msim::sim::FigureMetric::kFairnessGain);
}
