// Tables 1-4 of the paper: the simulated machine configuration and the
// multithreaded workload mixes, as encoded in this reproduction.
#include <iostream>

#include "bench_common.hpp"
#include "smt/machine_config.hpp"
#include "trace/mixes.hpp"
#include "trace/profile.hpp"

int main() {
  using namespace msim;
  const smt::MachineConfig mc;

  TextTable t1({"parameter", "configuration"});
  auto row = [&t1](std::string_view k, const std::string& v) {
    t1.begin_row();
    t1.add_cell(k);
    t1.add_cell(v);
  };
  row("machine width", std::to_string(mc.fetch_width) + "-wide fetch, " +
                           std::to_string(mc.issue_width) + "-wide issue, " +
                           std::to_string(mc.commit_width) + "-wide commit");
  row("window", "issue queue as specified; " +
                    std::to_string(mc.lsq_entries_per_thread) + "-entry LSQ and " +
                    std::to_string(mc.rob_entries_per_thread) +
                    "-entry ROB per thread");
  row("function units",
      "8 int add (1/1), 4 int mult (3/1) / div (20/19), 4 load/store (2/1), "
      "8 FP add (2/1), 4 FP mult (4/1) / div (12/12) / sqrt (24/24)");
  row("physical registers", std::to_string(mc.int_phys_regs) + " integer + " +
                                std::to_string(mc.fp_phys_regs) + " floating-point");
  row("L1 I-cache", "64 KB, 2-way, 128-byte lines");
  row("L1 D-cache", "32 KB, 4-way, 256-byte lines");
  row("L2 unified", "2 MB, 8-way, 512-byte lines, 10-cycle hit");
  row("BTB", "2048-entry, 2-way");
  row("branch predictor", "per-thread 2K-entry gshare, 10-bit global history");
  row("pipeline", std::to_string(mc.front_end_stages) +
                      "-stage front end (fetch-dispatch), then schedule / "
                      "register read / execute / writeback / commit");
  row("memory", std::to_string(mc.memory.memory_latency) + "-cycle access");
  row("fetch policy", "ICOUNT, up to " +
                          std::to_string(mc.fetch_threads_per_cycle) +
                          " threads per cycle");
  t1.print(std::cout, "Table 1: configuration of the simulated processor");

  for (unsigned threads : {4u, 3u, 2u}) {
    TextTable t({"mix", "classification", "benchmarks"});
    for (const trace::WorkloadMix& mix : trace::mixes_for(threads)) {
      t.begin_row();
      t.add_cell(mix.name);
      t.add_cell(trace::describe_mix(mix));
      std::string benches;
      for (const auto b : mix.threads()) {
        if (!benches.empty()) benches += ", ";
        benches += b;
      }
      t.add_cell(benches);
    }
    const std::string title = "Table " + std::to_string(threads == 4 ? 2 : threads == 3 ? 4 : 3) +
                              ": simulated " + std::to_string(threads) +
                              "-threaded workloads";
    t.print(std::cout, title);
  }

  TextTable tp({"benchmark", "ilp_class", "data_footprint_kb", "code_kb",
                "branch_frac"});
  for (const trace::BenchmarkProfile& p : trace::all_profiles()) {
    tp.begin_row();
    tp.add_cell(p.name);
    tp.add_cell(trace::ilp_class_name(p.ilp));
    tp.add_cell(p.data_footprint / 1024);
    tp.add_cell(p.code_footprint / 1024);
    tp.add_cell(p.branch_weight(), 3);
  }
  tp.print(std::cout, "synthetic benchmark profiles (SPEC CPU2000 stand-ins)");
  return 0;
}
