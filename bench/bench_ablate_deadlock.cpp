// Ablation (Section 4): the two deadlock-handling designs for out-of-order
// dispatch -- the deadlock-avoidance buffer (with and without its
// "takes precedence over the IQ" exclusivity) versus the watchdog timer
// with full pipeline flush & replay.
//
// The paper argues the DAB is the more elegant choice because watchdog
// flushes carry a non-negligible performance penalty; this bench quantifies
// that on this substrate.
#include "bench_common.hpp"

#include "trace/mixes.hpp"

namespace {

struct Variant {
  const char* name;
  msim::core::DeadlockMode mode;
  bool dab_exclusive;
  std::uint32_t watchdog_timeout;
};

}  // namespace

int main(int argc, char** argv) {
  return msim::bench::guarded_main([&]() -> int {
  using namespace msim;
  bench::BenchOptions opts = bench::parse_options(argc, argv);
  bench::print_run_parameters(opts);

  constexpr Variant kVariants[] = {
      {"dab_exclusive", core::DeadlockMode::kAvoidanceBuffer, true, 450},
      {"dab_shared", core::DeadlockMode::kAvoidanceBuffer, false, 450},
      {"watchdog_450", core::DeadlockMode::kWatchdog, true, 450},
      {"watchdog_64", core::DeadlockMode::kWatchdog, true, 64},
  };

  sim::BaselineCache baselines(opts.base);
  for (unsigned threads : {2u, 4u}) {
    TextTable table({"variant", "hmean_ipc", "hmean_fairness", "dab_inserts",
                     "watchdog_flushes"});
    for (const Variant& v : kVariants) {
      sim::RunConfig base = opts.base;
      base.deadlock = v.mode;
      base.dab_exclusive = v.dab_exclusive;
      base.watchdog_timeout = v.watchdog_timeout;
      std::vector<double> ipcs, fairs;
      std::uint64_t dab_inserts = 0, flushes = 0;
      for (const trace::WorkloadMix& mix : trace::mixes_for(threads)) {
        if (opts.verbose) std::cerr << "  " << v.name << " " << mix.name << "\n";
        const sim::MixResult r = sim::run_mix(
            mix, core::SchedulerKind::kTwoOpBlockOoo, 64, base, baselines);
        ipcs.push_back(r.throughput_ipc);
        fairs.push_back(r.fairness);
        dab_inserts += r.raw.dispatch.dab_inserts;
        flushes += r.raw.dispatch.watchdog_flushes;
      }
      table.begin_row();
      table.add_cell(v.name);
      table.add_cell(harmonic_mean(ipcs), 3);
      table.add_cell(harmonic_mean(fairs), 3);
      table.add_cell(dab_inserts);
      table.add_cell(flushes);
    }
    table.print(std::cout, "deadlock-handling ablation, " +
                               std::to_string(threads) +
                               "-threaded mixes, 64-entry IQ, OOO dispatch");
  }
  return 0;
  });
}
