// Fault-injection campaign: the forward-progress acceptance bench.
//
// Part 1 (resilience): runs >= `plans` randomized fault plans
// (robust::FaultPlan::random — NDI storms, transient IQ/ROB/LSQ exhaustion,
// latency perturbation) against the out-of-order dispatch scheduler with
// cycle-level invariant checking and the hang watchdog armed, across
// {2T, 4T} x {DAB, WATCHDOG} deadlock-remedy combinations.  The machine
// must absorb every plan: zero invariant violations and zero hang-watchdog
// firings, in both modes — DAB always rescues the oldest instruction, and
// watchdog flush/replay restores progress.
//
// Part 2 (sabotage self-tests): manufactures guaranteed failures to prove
// the detectors detect.  A commit blockade must trip the hang watchdog in
// every combination and yield a parseable JSON diagnostic bundle; dropped
// dispatches must trip the invariant checker; a sabotage plan targeted
// at exactly one sweep cell's RNG stream must be isolated by run_sweep —
// partial results, the victim reported, every surviving cell bit-identical
// to a fault-free serial sweep; and a journaled sweep killed mid-grid by a
// deterministic fault-hook abort must resume from its write-ahead journal
// with byte-identical aggregate JSON (docs/CHECKPOINT.md).
//
// Options: plans=N intensity=P seed=N quick=1 jobs=N sabotage=0|1
//          warmup=N horizon=N diag_dir=PATH
// Exit codes: 0 all checks passed; 1 a resilience or self-test expectation
// failed; 2 bad usage.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench_common.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "robust/fault.hpp"
#include "robust/invariant.hpp"

namespace {

using namespace msim;

struct Combo {
  unsigned threads;
  core::DeadlockMode deadlock;
  const char* name;
};

constexpr Combo kCombos[] = {
    {2, core::DeadlockMode::kAvoidanceBuffer, "2T/dab"},
    {4, core::DeadlockMode::kAvoidanceBuffer, "4T/dab"},
    {2, core::DeadlockMode::kWatchdog, "2T/watchdog"},
    {4, core::DeadlockMode::kWatchdog, "4T/watchdog"},
};

struct CampaignOptions {
  std::uint64_t plans = 200;
  double intensity = 0.35;
  std::uint64_t seed = 1;
  unsigned jobs = 1;
  bool sabotage = true;
  std::string diag_dir;
  sim::RunConfig base;
};

/// One fault-plan run: which combo it used and how it ended.
struct PlanOutcome {
  std::size_t combo = 0;
  bool aborted = false;  ///< hang watchdog or invariant violation
  std::string error;
  std::string bundle;
  std::uint64_t dab_inserts = 0;
  std::uint64_t watchdog_flushes = 0;
  std::uint64_t forced_ndis = 0;
  std::uint64_t iq_denials = 0;
};

sim::RunConfig plan_config(const CampaignOptions& opts, const Combo& combo,
                           std::uint64_t index) {
  const auto mixes = trace::mixes_for(combo.threads);
  const trace::WorkloadMix& mix = mixes[index % mixes.size()];
  sim::RunConfig cfg = opts.base;
  cfg.benchmarks.clear();
  for (const std::string_view b : mix.threads()) cfg.benchmarks.emplace_back(b);
  cfg.kind = core::SchedulerKind::kTwoOpBlockOoo;
  cfg.iq_entries = 64;
  cfg.deadlock = combo.deadlock;
  cfg.watchdog_timeout = 200;
  cfg.verify = true;
  cfg.hang_cycles = 100'000;
  cfg.seed = derive_stream_seed(opts.seed, "robust-bench", index,
                                static_cast<std::uint64_t>(&combo - kCombos));
  return cfg;
}

PlanOutcome run_plan(const CampaignOptions& opts, std::uint64_t index) {
  PlanOutcome out;
  out.combo = static_cast<std::size_t>(index % std::size(kCombos));
  const Combo& combo = kCombos[out.combo];
  const robust::FaultPlan plan =
      robust::FaultPlan::random(opts.seed, index, opts.intensity);
  const robust::FaultInjector injector(plan);
  sim::RunConfig cfg = plan_config(opts, combo, index);
  cfg.faults = &injector;
  try {
    const sim::RunResult r = sim::run_simulation(cfg);
    out.dab_inserts = r.dispatch.dab_inserts;
    out.watchdog_flushes = r.dispatch.watchdog_flushes;
    out.forced_ndis = r.dispatch.fault_forced_ndis;
    out.iq_denials = r.dispatch.fault_iq_denials;
  } catch (const robust::SimulationAborted& e) {
    out.aborted = true;
    out.error = e.what();
    out.bundle = e.bundle();
  }
  return out;
}

void write_diag(const CampaignOptions& opts, const std::string& stem,
                const std::string& bundle) {
  if (opts.diag_dir.empty() || bundle.empty()) return;
  std::filesystem::create_directories(opts.diag_dir);
  const std::string path = opts.diag_dir + "/" + stem + ".json";
  std::ofstream out(path);
  if (out) {
    out << bundle;
    std::cerr << "  wrote diagnostic bundle: " << path << "\n";
  }
}

/// Part 1: the machine must survive every randomized (non-sabotage) plan.
int run_resilience(const CampaignOptions& opts) {
  std::cout << "== resilience: " << opts.plans << " fault plans, intensity "
            << opts.intensity << ", jobs=" << opts.jobs << "\n";
  std::vector<PlanOutcome> outcomes(opts.plans);
  {
    ThreadPool pool(opts.jobs);
    std::vector<std::future<void>> pending;
    pending.reserve(opts.plans);
    for (std::uint64_t i = 0; i < opts.plans; ++i) {
      pending.push_back(
          pool.submit([&, i] { outcomes[i] = run_plan(opts, i); }));
    }
    for (auto& f : pending) f.get();
  }

  int failures = 0;
  struct Tally {
    std::uint64_t runs = 0, aborts = 0, dab_inserts = 0, watchdog_flushes = 0,
                  forced_ndis = 0, iq_denials = 0;
  };
  Tally tally[std::size(kCombos)];
  for (std::uint64_t i = 0; i < opts.plans; ++i) {
    const PlanOutcome& o = outcomes[i];
    Tally& t = tally[o.combo];
    ++t.runs;
    t.dab_inserts += o.dab_inserts;
    t.watchdog_flushes += o.watchdog_flushes;
    t.forced_ndis += o.forced_ndis;
    t.iq_denials += o.iq_denials;
    if (o.aborted) {
      ++t.aborts;
      ++failures;
      std::cerr << "FAIL plan " << i << " (" << kCombos[o.combo].name
                << "): " << o.error << "\n";
      write_diag(opts, "resilience-plan-" + std::to_string(i), o.bundle);
    }
  }

  TextTable table({"combo", "runs", "aborts", "dab_inserts",
                   "watchdog_flushes", "forced_ndis", "iq_denials"});
  for (std::size_t c = 0; c < std::size(kCombos); ++c) {
    table.begin_row();
    table.add_cell(kCombos[c].name);
    table.add_cell(tally[c].runs);
    table.add_cell(tally[c].aborts);
    table.add_cell(tally[c].dab_inserts);
    table.add_cell(tally[c].watchdog_flushes);
    table.add_cell(tally[c].forced_ndis);
    table.add_cell(tally[c].iq_denials);
  }
  table.print(std::cout, "fault-plan outcomes (aborts must be 0)");
  return failures;
}

/// Self-test 1: a commit blockade must trip the hang watchdog in every
/// combination, with a parseable diagnostic bundle.
int test_hang_detection(const CampaignOptions& opts) {
  std::cout << "== sabotage: commit blockade must trip the hang watchdog\n";
  int failures = 0;
  robust::FaultPlan plan;
  plan.commit_block_from = 0;  // commit never proceeds
  const robust::FaultInjector injector(plan);
  for (std::size_t c = 0; c < std::size(kCombos); ++c) {
    sim::RunConfig cfg = plan_config(opts, kCombos[c], c);
    cfg.faults = &injector;
    cfg.hang_cycles = 3'000;  // small: every hang costs this many cycles
    cfg.watchdog_timeout = 200;
    bool detected = false;
    std::string note = "completed without detecting the blockade";
    try {
      (void)sim::run_simulation(cfg);
    } catch (const robust::SimulationAborted& e) {
      detected = true;
      write_diag(opts, std::string("sabotage-hang-") + std::to_string(c),
                 e.bundle());
      try {
        const JsonValue doc = JsonValue::parse(e.bundle());
        const double cycle = doc.at("cycle").as_number();
        note = "detected: " + doc.at("reason").as_string().substr(0, 60) +
               "... at cycle " + std::to_string(static_cast<std::uint64_t>(cycle));
        if (!doc.contains("occupancy") || !doc.contains("stats")) {
          detected = false;
          note = "bundle is missing occupancy/stats sections";
        }
      } catch (const std::exception& parse_error) {
        detected = false;
        note = std::string("bundle is not parseable JSON: ") + parse_error.what();
      }
    }
    std::cout << "  " << kCombos[c].name << ": " << note << "\n";
    if (!detected) {
      ++failures;
      std::cerr << "FAIL hang self-test (" << kCombos[c].name << ")\n";
    }
  }
  return failures;
}

/// Self-test 2: dropped dispatches leak IQ/ROB accounting; the cycle-level
/// invariant checker must catch it.
int test_invariant_detection(const CampaignOptions& opts) {
  std::cout << "== sabotage: dropped dispatches must trip the invariant checker\n";
  robust::FaultPlan plan;
  plan.drop_dispatch_p = 0.05;
  plan.seed = opts.seed;
  const robust::FaultInjector injector(plan);
  sim::RunConfig cfg = plan_config(opts, kCombos[0], 0);
  cfg.faults = &injector;
  cfg.hang_cycles = 3'000;  // the leak may also starve commit; either detector may fire
  try {
    (void)sim::run_simulation(cfg);
  } catch (const robust::SimulationAborted& e) {
    std::cout << "  detected: " << std::string(e.what()).substr(0, 100) << "\n";
    write_diag(opts, "sabotage-invariant", e.bundle());
    return 0;
  }
  std::cerr << "FAIL invariant self-test: run completed despite dropped "
               "dispatches\n";
  return 1;
}

/// Self-test 3: a sabotage plan aimed at one sweep cell's RNG stream must
/// be isolated — partial results, the victim reported, survivors
/// bit-identical to a fault-free serial sweep.
int test_sweep_isolation(const CampaignOptions& opts) {
  std::cout << "== sabotage: run_sweep must isolate a single poisoned cell\n";
  sim::SweepRequest req;
  req.thread_count = 2;
  req.kinds = {core::SchedulerKind::kTraditional,
               core::SchedulerKind::kTwoOpBlockOoo};
  req.iq_sizes = {32, 48};
  req.base = opts.base;
  req.base.verify = true;
  req.base.hang_cycles = 3'000;

  // Reference: fault-free, serial.
  sim::BaselineCache clean_baselines(req.base);
  const std::vector<sim::SweepCell> clean = run_sweep(req, clean_baselines);

  // Poison exactly the (iq=48, first mix) stream; both scheduler kinds
  // share that stream by design (paired comparison), so both cells fail.
  const std::string victim(trace::mixes_for(2).front().name);
  robust::FaultPlan plan;
  plan.commit_block_from = 0;
  plan.target_stream = derive_stream_seed(req.base.seed, "mix:" + victim, 48);
  const robust::FaultInjector injector(plan);
  req.base.faults = &injector;
  req.jobs = opts.jobs;
  req.retries = 1;

  sim::BaselineCache baselines(req.base);
  const std::vector<sim::SweepCell> cells = run_sweep(req, baselines);

  int failures = 0;
  const std::vector<sim::FailedCell> failed = sim::sweep_failures(cells);
  if (failed.size() != req.kinds.size()) {
    ++failures;
    std::cerr << "FAIL sweep isolation: expected " << req.kinds.size()
              << " failed cells (one per kind), got " << failed.size() << "\n";
  }
  for (const sim::FailedCell& f : failed) {
    std::cout << "  failed as expected: " << core::scheduler_kind_name(f.kind)
              << " iq=" << f.iq_entries << " " << f.mix_name << " ("
              << f.attempts << " attempts)\n";
    if (f.mix_name != victim || f.iq_entries != 48) {
      ++failures;
      std::cerr << "FAIL sweep isolation: non-victim cell died: " << f.mix_name
                << " iq=" << f.iq_entries << ": " << f.error << "\n";
    }
  }

  // Survivors must be bit-identical to the fault-free serial sweep.
  std::uint64_t compared = 0;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    for (std::size_t m = 0; m < cells[c].mixes.size(); ++m) {
      const sim::MixResult& got = cells[c].mixes[m];
      const sim::MixResult& want = clean[c].mixes[m];
      if (!got.ok) continue;
      ++compared;
      if (got.raw.cycles != want.raw.cycles ||
          got.throughput_ipc != want.throughput_ipc ||
          got.fairness != want.fairness) {
        ++failures;
        std::cerr << "FAIL sweep isolation: surviving cell diverged: "
                  << core::scheduler_kind_name(cells[c].kind) << " iq="
                  << cells[c].iq_entries << " " << got.mix_name << "\n";
      }
    }
  }
  std::cout << "  " << compared << " surviving cells bit-identical to the "
            << "fault-free serial sweep\n";
  if (compared == 0) ++failures;
  return failures;
}

/// Self-test 4: a journaled sweep killed mid-grid by a deterministic
/// fault-hook abort must resume from its write-ahead journal and emit
/// byte-identical aggregate JSON.
int test_kill_resume(const CampaignOptions& opts) {
  std::cout << "== recovery: killed sweep must resume from its journal "
               "byte-identically\n";
  sim::SweepRequest req;
  req.thread_count = 2;
  req.kinds = {core::SchedulerKind::kTraditional,
               core::SchedulerKind::kTwoOpBlockOoo};
  req.iq_sizes = {32, 48};
  req.base = opts.base;
  req.base.verify = true;
  req.base.hang_cycles = 3'000;

  // The same commit-blockade sabotage as the isolation self-test: the
  // poisoned (iq=48, first mix) stream hangs both scheduler kinds.
  const std::string victim(trace::mixes_for(2).front().name);
  robust::FaultPlan plan;
  plan.commit_block_from = 0;
  plan.target_stream = derive_stream_seed(req.base.seed, "mix:" + victim, 48);
  const robust::FaultInjector injector(plan);
  req.base.faults = &injector;

  const auto sweep_json = [](const std::vector<sim::SweepCell>& cells) {
    std::ostringstream os;
    sim::write_sweep_json(os, cells);
    return os.str();
  };

  // Reference: one uninterrupted crash-isolated sweep — the victim cells
  // are recorded as failures, everything else completes.
  std::string want;
  {
    sim::SweepRequest ref = req;
    ref.jobs = opts.jobs;
    sim::BaselineCache baselines(ref.base);
    want = sweep_json(run_sweep(ref, baselines));
  }

  const std::string journal =
      (std::filesystem::temp_directory_path() /
       ("msim-robust-journal-" + std::to_string(::getpid()) + ".jsonl"))
          .string();

  int failures = 0;
  // Phase 1: serial, crash isolation off, journaling on.  The victim's
  // hang-watchdog abort kills the sweep mid-grid at a deterministic cell,
  // leaving exactly the completed cells in the journal.
  std::size_t journaled = 0;
  {
    sim::SweepRequest killed = req;
    killed.jobs = 1;
    killed.isolate_failures = false;
    killed.journal_path = journal;
    sim::BaselineCache baselines(killed.base);
    bool died = false;
    try {
      (void)run_sweep(killed, baselines);
    } catch (const robust::SimulationAborted&) {
      died = true;
    }
    if (!died) {
      ++failures;
      std::cerr << "FAIL kill/resume: un-isolated sweep survived the "
                   "poisoned cell\n";
    }
  }

  // Phase 2: resume the same grid with isolation back on, at the requested
  // job count — journaled cells replay, the rest (victim included) run
  // fresh.  The aggregate JSON must match the uninterrupted sweep exactly.
  {
    sim::SweepRequest resumed = req;
    resumed.jobs = opts.jobs;
    resumed.journal_path = journal;
    resumed.resume = true;
    resumed.progress = [&journaled](std::string_view msg) {
      if (msg.find("journal: replaying") != std::string_view::npos) {
        ++journaled;
      }
    };
    sim::BaselineCache baselines(resumed.base);
    const std::string got = sweep_json(run_sweep(resumed, baselines));
    if (journaled == 0) {
      ++failures;
      std::cerr << "FAIL kill/resume: the killed sweep journaled no "
                   "completed cells to replay\n";
    }
    if (got != want) {
      ++failures;
      std::cerr << "FAIL kill/resume: resumed sweep JSON differs from the "
                   "uninterrupted sweep (" << got.size() << " vs "
                << want.size() << " bytes)\n";
    } else {
      std::cout << "  resumed sweep JSON byte-identical to the uninterrupted "
                   "sweep (" << got.size() << " bytes) at jobs=" << opts.jobs
                << "\n";
    }
  }
  std::filesystem::remove(journal);
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::guarded_main([&]() -> int {
    const KvConfig cli =
        KvConfig::parse({argv + 1, static_cast<std::size_t>(argc - 1)});
    static constexpr std::string_view kKnown[] = {
        "plans", "intensity", "seed", "quick", "jobs", "sabotage",
        "warmup", "horizon", "diag_dir"};
    const auto unknown = cli.unknown_keys(kKnown);
    if (!unknown.empty()) {
      std::string msg = "unknown option(s):";
      for (const std::string& k : unknown) msg += " " + k;
      msg += " (known: plans intensity seed quick jobs sabotage warmup "
             "horizon diag_dir; see the knob table in EXPERIMENTS.md)";
      throw std::invalid_argument(msg);
    }

    CampaignOptions opts;
    opts.plans = cli.get_uint("plans", 200);
    opts.intensity = cli.get_double("intensity", 0.35);
    opts.seed = cli.get_uint("seed", 1);
    opts.sabotage = cli.get_bool("sabotage", true);
    opts.diag_dir = cli.get_string("diag_dir", "");
    opts.base.warmup = cli.get_uint("warmup", 2'000);
    opts.base.horizon = cli.get_uint("horizon", 10'000);
    opts.base.seed = opts.seed;
    if (cli.get_bool("quick", false)) {
      opts.plans = std::max<std::uint64_t>(opts.plans / 4, 40);
      opts.base.warmup /= 4;
      opts.base.horizon /= 4;
    }
    const std::uint64_t jobs =
        cli.get_uint("jobs", ThreadPool::default_parallelism());
    if (jobs == 0) throw std::invalid_argument("jobs=0 is invalid");
    opts.jobs = static_cast<unsigned>(jobs);
    if (opts.intensity < 0.0 || opts.intensity > 1.0) {
      throw std::invalid_argument("intensity must be in [0, 1]");
    }

    int failures = run_resilience(opts);
    if (opts.sabotage) {
      failures += test_hang_detection(opts);
      failures += test_invariant_detection(opts);
      failures += test_sweep_isolation(opts);
      failures += test_kill_resume(opts);
    }
    if (failures != 0) {
      std::cerr << "\nbench_robust_faults: " << failures << " check(s) FAILED\n";
      return 1;
    }
    std::cout << "\nbench_robust_faults: all checks passed\n";
    return 0;
  });
}
