// Load generator for the msim_serve experiment daemon (docs/SERVICE.md).
//
// Starts an in-process ExperimentServer, fans `clients` concurrent client
// threads out against it over real TCP sockets -- each submits a small
// sweep job, polls it to completion, and fetches the result -- and reports
// submit-to-result latency percentiles plus throughput.  Every fetched
// result is compared against the offline engine's bytes for the same
// config, so the run doubles as a byte-identity check under load.
//
//   ./bench_serve                         # 100 concurrent sweep clients
//   ./bench_serve clients=32 quick=1
//   ./bench_serve json=bench_serve.json   # machine-readable summary
//
// With restart=1 the load runs against a --journal-dir-backed daemon,
// which is then torn down and restarted: the scenario times the recovery
// (ledger replay + result reload) and byte-checks a re-served result, so
// regressions in startup recovery show up in the latency JSON.
//
// Knobs: clients=N requests=N (per client) sweep=2|3|4 iq=LIST warmup=N
// horizon=N max_inflight=N queue_depth=N restart=1 quick=1 json=PATH.
// Exit codes follow the bench protocol (bench_common.hpp): 0 ok, 2 bad
// usage; any failed or non-identical request makes the bench exit 1.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_common.hpp"
#include "common/json.hpp"
#include "common/thread_pool.hpp"
#include "serve/http.hpp"
#include "serve/server.hpp"
#include "sim/config_build.hpp"

namespace {

using msim::serve::Listener;
using msim::serve::Socket;

struct Options {
  unsigned clients = 100;
  unsigned requests = 1;  ///< jobs submitted per client, sequentially
  unsigned sweep = 2;
  std::string iq = "32";
  std::uint64_t warmup = 200;
  std::uint64_t horizon = 800;
  unsigned max_inflight = 0;  ///< 0 = hardware concurrency
  std::size_t queue_depth = 0;  ///< 0 = clients * requests (never 429)
  bool restart = false;  ///< measure ledger-replay recovery after the load
  std::string json_path;
};

Options parse(int argc, char** argv) {
  const msim::KvConfig cli =
      msim::KvConfig::parse({argv + 1, static_cast<std::size_t>(argc - 1)});
  static constexpr std::string_view kKnown[] = {
      "clients", "requests",     "sweep",       "iq",      "warmup",
      "horizon", "max_inflight", "queue_depth", "restart", "json",
      "quick"};
  if (const auto unknown = cli.unknown_keys(kKnown); !unknown.empty()) {
    std::string msg = "unknown option(s):";
    for (const std::string& k : unknown) msg += " " + k;
    msg += " (known: clients requests sweep iq warmup horizon max_inflight "
           "queue_depth restart json quick; see EXPERIMENTS.md)";
    throw std::invalid_argument(msg);
  }
  Options opts;
  opts.clients = static_cast<unsigned>(cli.get_uint("clients", 100));
  opts.requests = static_cast<unsigned>(cli.get_uint("requests", 1));
  opts.sweep = static_cast<unsigned>(cli.get_uint("sweep", 2));
  opts.iq = cli.get_string("iq", "32");
  opts.warmup = cli.get_uint("warmup", 200);
  opts.horizon = cli.get_uint("horizon", 800);
  opts.max_inflight =
      static_cast<unsigned>(cli.get_uint("max_inflight", 0));
  opts.queue_depth = cli.get_uint("queue_depth", 0);
  opts.restart = cli.get_bool("restart", false);
  opts.json_path = cli.get_string("json", "");
  if (cli.get_bool("quick", false)) {
    opts.clients = std::max(1u, opts.clients / 4);
    opts.warmup /= 2;
    opts.horizon /= 2;
  }
  if (opts.clients == 0 || opts.requests == 0) {
    throw std::invalid_argument("clients= and requests= must be >= 1");
  }
  return opts;
}

/// One request/response over a fresh connection; reads to EOF.
struct Reply {
  int status = 0;
  std::string body;
};

Reply http(std::uint16_t port, const std::string& method,
           const std::string& target, const std::string& body = "") {
  Reply out;
  Socket sock = Listener::connect("127.0.0.1", port, 5000);
  if (!sock.valid()) return out;
  std::string req = method + " " + target + " HTTP/1.1\r\n";
  req += "Host: localhost\r\nConnection: close\r\n";
  if (!body.empty()) {
    req += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  req += "\r\n" + body;
  if (!sock.write_all(req, 5000)) return out;
  std::string raw;
  while (sock.read_some(raw, 65536, 1000) != msim::serve::IoStatus::kEof) {
    if (raw.size() > (64u << 20)) break;  // runaway guard
  }
  if (raw.size() > 12) out.status = std::stoi(raw.substr(9, 3));
  const std::size_t split = raw.find("\r\n\r\n");
  if (split != std::string::npos) out.body = raw.substr(split + 4);
  return out;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto n = static_cast<double>(sorted.size());
  const auto idx = static_cast<std::size_t>(
      std::min(n - 1.0, std::max(0.0, p * n - 1.0)));
  return sorted[idx];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace msim;
  return bench::guarded_main([&]() -> int {
    const Options opts = parse(argc, argv);

    std::ostringstream cfg;
    cfg << "{\"sweep\":" << opts.sweep << ",\"sched\":\"2op_block_ooo\","
        << "\"iq\":\"" << opts.iq << "\",\"warmup\":" << opts.warmup
        << ",\"horizon\":" << opts.horizon << "}";
    const std::string config_json = cfg.str();

    // The offline reference bytes every served result must equal.
    KvConfig kv;
    kv.set("sweep", std::to_string(opts.sweep));
    kv.set("sched", "2op_block_ooo");
    kv.set("iq", opts.iq);
    kv.set("warmup", std::to_string(opts.warmup));
    kv.set("horizon", std::to_string(opts.horizon));
    sim::BuiltRun built = sim::build_run_config(kv);
    sim::SweepRequest ref_req =
        sim::build_sweep_request(kv, built.config, opts.sweep, /*jobs=*/1);
    sim::BaselineCache ref_baselines(built.config);
    std::ostringstream ref_os;
    sim::write_sweep_json(ref_os, sim::run_sweep(ref_req, ref_baselines));
    const std::string reference = ref_os.str();

    serve::ServerConfig server_config;
    server_config.max_inflight =
        opts.max_inflight != 0 ? opts.max_inflight
                               : ThreadPool::default_parallelism();
    server_config.queue_depth =
        opts.queue_depth != 0
            ? opts.queue_depth
            : static_cast<std::size_t>(opts.clients) * opts.requests;
    if (opts.restart) {
      // restart=1: journal every job so the post-load restart has a real
      // ledger (one record chain + result file per request) to replay.
      server_config.journal_dir =
          (std::filesystem::temp_directory_path() /
           ("msim-bench-serve-" + std::to_string(::getpid())))
              .string();
      std::filesystem::remove_all(server_config.journal_dir);
      std::filesystem::create_directories(server_config.journal_dir);
    }
    auto server = std::make_unique<serve::ExperimentServer>(server_config);
    server->start();
    const std::uint16_t port = server->port();

    std::cout << "# clients=" << opts.clients << " requests=" << opts.requests
              << " sweep=" << opts.sweep << " iq=" << opts.iq
              << " warmup=" << opts.warmup << " horizon=" << opts.horizon
              << " max_inflight=" << server_config.max_inflight
              << " queue_depth=" << server_config.queue_depth
              << " restart=" << (opts.restart ? 1 : 0) << "\n";

    std::mutex mu;
    std::vector<double> latencies_ms;
    std::atomic<std::uint64_t> failed{0};
    std::atomic<std::uint64_t> mismatched{0};
    std::atomic<std::uint64_t> last_done_id{0};  ///< re-served after restart

    const auto wall_start = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    clients.reserve(opts.clients);
    for (unsigned c = 0; c < opts.clients; ++c) {
      clients.emplace_back([&] {
        for (unsigned r = 0; r < opts.requests; ++r) {
          const auto start = std::chrono::steady_clock::now();
          const Reply submitted = http(port, "POST", "/v1/jobs",
                                       "{\"config\":" + config_json + "}");
          if (submitted.status != 202) {
            failed.fetch_add(1);
            continue;
          }
          const std::string id =
              std::to_string(static_cast<std::uint64_t>(
                  JsonValue::parse(submitted.body).at("id").as_number()));
          std::string state = "queued";
          for (int spins = 0; spins < 6000; ++spins) {
            const Reply status = http(port, "GET", "/v1/jobs/" + id);
            if (status.status != 200) break;
            state = JsonValue::parse(status.body).at("state").as_string();
            if (state == "done" || state == "failed" || state == "cancelled")
              break;
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
          }
          if (state != "done") {
            failed.fetch_add(1);
            continue;
          }
          const Reply result =
              http(port, "GET", "/v1/jobs/" + id + "/result");
          if (result.status != 200) {
            failed.fetch_add(1);
            continue;
          }
          if (result.body != reference) mismatched.fetch_add(1);
          last_done_id.store(std::stoull(id));
          const double ms =
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
          const std::lock_guard<std::mutex> lock(mu);
          latencies_ms.push_back(ms);
        }
      });
    }
    for (std::thread& t : clients) t.join();
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();
    server->stop();

    // restart=1: tear the daemon down and time a fresh incarnation's
    // recovery -- ledger replay, result reload, queue rebuild -- then
    // byte-check one re-served result against the reference.
    double recovery_ms = 0.0;
    std::uint64_t recovered_jobs = 0;
    bool reserved_identical = true;
    if (opts.restart) {
      server.reset();  // only the --journal-dir ledger survives
      const auto recover_start = std::chrono::steady_clock::now();
      server = std::make_unique<serve::ExperimentServer>(server_config);
      server->start();
      recovery_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - recover_start)
                        .count();
      recovered_jobs = server->recovery().replayed;
      const std::uint64_t id = last_done_id.load();
      if (id != 0) {
        const Reply reserved = http(
            server->port(), "GET",
            "/v1/jobs/" + std::to_string(id) + "/result");
        reserved_identical =
            reserved.status == 200 && reserved.body == reference;
      }
      server->stop();
      server.reset();
      std::error_code ec;
      std::filesystem::remove_all(server_config.journal_dir, ec);
      std::cout << "restart: recovered " << recovered_jobs << " job(s) in "
                << recovery_ms << " ms, re-served result "
                << (reserved_identical ? "byte-identical" : "MISMATCHED")
                << "\n";
    }

    std::sort(latencies_ms.begin(), latencies_ms.end());
    const std::uint64_t total =
        std::uint64_t{opts.clients} * opts.requests;
    const std::uint64_t completed = latencies_ms.size();
    double mean = 0.0;
    for (const double ms : latencies_ms) mean += ms;
    if (completed != 0) mean /= static_cast<double>(completed);
    const double p50 = percentile(latencies_ms, 0.50);
    const double p95 = percentile(latencies_ms, 0.95);
    const double p99 = percentile(latencies_ms, 0.99);
    const double max_ms =
        latencies_ms.empty() ? 0.0 : latencies_ms.back();
    const double rps = wall_s > 0.0
                           ? static_cast<double>(completed) / wall_s
                           : 0.0;

    std::cout << "completed " << completed << "/" << total << " requests in "
              << wall_s << " s (" << rps << " req/s), " << failed.load()
              << " failed, " << mismatched.load() << " byte-mismatched\n";
    std::cout << "latency ms: p50=" << p50 << " p95=" << p95 << " p99=" << p99
              << " mean=" << mean << " max=" << max_ms << "\n";

    if (!opts.json_path.empty()) {
      std::ostringstream os;
      JsonWriter w(os, 2);
      w.begin_object();
      w.kv("schema", "msim.bench_serve.v1");
      w.kv("clients", std::uint64_t{opts.clients});
      w.kv("requests_per_client", std::uint64_t{opts.requests});
      w.kv("total_requests", total);
      w.kv("completed", completed);
      w.kv("failed", failed.load());
      w.kv("byte_mismatched", mismatched.load());
      w.kv("wall_seconds", wall_s);
      w.kv("throughput_rps", rps);
      w.key("latency_ms");
      w.begin_object();
      w.kv("p50", p50);
      w.kv("p95", p95);
      w.kv("p99", p99);
      w.kv("mean", mean);
      w.kv("max", max_ms);
      w.end_object();
      w.key("server");
      w.begin_object();
      w.kv("max_inflight", std::uint64_t{server_config.max_inflight});
      w.kv("queue_depth",
           static_cast<std::uint64_t>(server_config.queue_depth));
      w.end_object();
      if (opts.restart) {
        w.key("restart");
        w.begin_object();
        w.kv("recovery_ms", recovery_ms);
        w.kv("recovered_jobs", recovered_jobs);
        w.kv("reserved_identical", reserved_identical);
        w.end_object();
      }
      w.end_object();
      os << '\n';
      persist::write_text_atomic(opts.json_path, os.str());
      std::cout << "wrote " << opts.json_path << "\n";
    }
    return (failed.load() == 0 && mismatched.load() == 0 &&
            reserved_identical)
               ? 0
               : 1;
  });
}
