// Shared scaffolding for the reproduction benches.
//
// Every bench binary accepts `key=value` overrides:
//   warmup=N horizon=N seed=N iq=32,48,64,96,128 quick=1 jobs=N json=PATH
//   checkpoint=PATH resume=0|1 isolation=thread|process workers=N
// `quick=1` shrinks the horizons by 4x for smoke runs.  `jobs=N` fans the
// sweep grid out across N worker threads (default: hardware concurrency;
// `jobs=1` is the serial path) — results are bit-identical at any job
// count because every simulation owns a deterministically derived RNG
// stream.  The paper used 100M-instruction runs, which
// `horizon=100000000` reproduces given patience (see DESIGN.md on why
// short synthetic runs converge).
#pragma once

#include <cstdio>
#include <fstream>
#include <iostream>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/config.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "obs/timer.hpp"
#include "persist/atomic_file.hpp"
#include "persist/signal.hpp"
#include "robust/diagnostic.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"

namespace msim::bench {

struct BenchOptions {
  sim::RunConfig base;
  std::vector<std::uint32_t> iq_sizes{32, 48, 64, 96, 128};
  /// Worker threads for sweep grids (sim::SweepRequest::jobs).
  unsigned jobs = 1;
  bool verbose = false;
  /// When non-empty, the sweep grid is also written there as JSON
  /// (sim::write_sweep_json).
  std::string json_path;
  /// Write-ahead journal of completed sweep cells (checkpoint=PATH); with
  /// resume=1 an existing journal's cells are replayed instead of re-run.
  /// See docs/CHECKPOINT.md.
  std::string journal_path;
  bool resume = false;
  /// Sweep execution backend (docs/ROBUSTNESS.md): isolation=process runs
  /// cells in supervised worker processes; workers= implies it.
  sim::SweepIsolation isolation = sim::SweepIsolation::kThread;
  unsigned workers = 0;  ///< worker processes (0 = jobs)
};

inline BenchOptions parse_options(int argc, char** argv) {
  const KvConfig cli =
      KvConfig::parse({argv + 1, static_cast<std::size_t>(argc - 1)});
  static constexpr std::string_view kKnown[] = {
      "warmup", "horizon", "seed", "iq", "quick", "jobs", "verbose", "json",
      "verify", "hang_cycles", "checkpoint", "resume", "isolation", "workers"};
  const auto unknown = cli.unknown_keys(kKnown);
  if (!unknown.empty()) {
    std::string msg = "unknown option(s):";
    for (const std::string& k : unknown) msg += " " + k;
    msg += " (known: warmup horizon seed iq quick jobs verbose json verify "
           "hang_cycles checkpoint resume isolation workers; see the knob "
           "table in EXPERIMENTS.md)";
    throw std::invalid_argument(msg);
  }
  BenchOptions opts;
  opts.base.warmup = cli.get_uint("warmup", 15'000);
  opts.base.horizon = cli.get_uint("horizon", 80'000);
  opts.base.seed = cli.get_uint("seed", 1);
  const auto iq64 = cli.get_uint_list("iq", {32, 48, 64, 96, 128});
  opts.iq_sizes.assign(iq64.begin(), iq64.end());
  if (cli.get_bool("quick", false)) {
    opts.base.warmup /= 4;
    opts.base.horizon /= 4;
  }
  const std::uint64_t jobs = cli.get_uint("jobs", ThreadPool::default_parallelism());
  if (jobs == 0) {
    throw std::invalid_argument(
        "jobs=0 is invalid: use jobs=1 for the serial path or jobs=N for N "
        "workers (default: hardware concurrency)");
  }
  opts.jobs = static_cast<unsigned>(jobs);
  opts.verbose = cli.get_bool("verbose", false);
  opts.json_path = cli.get_string("json", "");
  opts.base.verify = cli.get_bool("verify", false);
  opts.base.hang_cycles = cli.get_uint("hang_cycles", 500'000);
  opts.journal_path = cli.get_string("checkpoint", "");
  opts.resume = cli.get_bool("resume", false);
  const std::string isolation = cli.get_string("isolation", "");
  const std::uint64_t workers = cli.get_uint("workers", 0);
  if (isolation == "process" || (isolation.empty() && workers != 0)) {
    opts.isolation = sim::SweepIsolation::kProcess;
    opts.workers = static_cast<unsigned>(workers);
  } else if (!isolation.empty() && isolation != "thread") {
    throw std::invalid_argument("unknown isolation: '" + isolation +
                                "' (thread | process)");
  } else if (workers != 0) {
    throw std::invalid_argument("workers= requires isolation=process");
  }
  if (opts.resume && opts.journal_path.empty()) {
    throw std::invalid_argument(
        "resume=1 needs checkpoint=PATH naming the journal to resume");
  }
  // guarded_main installs persist::SignalGuard, so every cell polls for
  // SIGINT/SIGTERM and a killed sweep exits 128+signum with its journal
  // flushed.
  opts.base.watch_signals = true;

  // Reject unrunnable configurations here, before any sweep starts.  The
  // mixes supply the real benchmarks later; a placeholder stands in so
  // RunConfig::validate can exercise the structural checks.
  sim::RunConfig probe = opts.base;
  probe.benchmarks = {"gcc"};
  probe.validate();
  return opts;
}

/// Wraps a bench body in the standard error protocol: configuration errors
/// exit 2 with a one-line message, simulation aborts (hang watchdog or
/// invariant violation) exit 3, interrupts exit 128+signum after the cell
/// journal is flushed — never an uncaught-exception stack dump.
template <typename F>
inline int guarded_main(F&& body) {
  const persist::SignalGuard signals;
  try {
    return body();
  } catch (const persist::Interrupted& e) {
    std::cerr << "interrupted: " << e.what()
              << " (journaled cells are resumable with checkpoint=PATH "
                 "resume=1)\n";
    return e.exit_code();
  } catch (const robust::SimulationAborted& e) {
    std::cerr << "fatal: " << e.what() << "\n";
    return 3;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}

/// Writes the sweep grid to opts.json_path when requested (json=PATH).
/// Atomic (temp + rename): readers never observe a half-written report.
inline void maybe_write_sweep_json(const BenchOptions& opts,
                                   const std::vector<sim::SweepCell>& cells) {
  if (opts.json_path.empty()) return;
  std::ostringstream out;
  sim::write_sweep_json(out, cells);
  persist::write_text_atomic(opts.json_path, out.str());
  std::cout << "wrote " << cells.size() << " sweep cells to " << opts.json_path
            << "\n";
}

inline std::vector<std::uint32_t> to_u32(const std::vector<std::uint64_t>& xs) {
  return {xs.begin(), xs.end()};
}

/// Runs the standard three-way sweep (traditional / 2OP_BLOCK / OOO) used
/// by Figures 3-8.
inline std::vector<sim::SweepCell> figure_sweep(unsigned thread_count,
                                                const BenchOptions& opts,
                                                sim::BaselineCache& baselines) {
  sim::SweepRequest req;
  req.thread_count = thread_count;
  req.kinds = {core::SchedulerKind::kTraditional, core::SchedulerKind::kTwoOpBlock,
               core::SchedulerKind::kTwoOpBlockOoo};
  req.iq_sizes.assign(opts.iq_sizes.begin(), opts.iq_sizes.end());
  req.base = opts.base;
  req.jobs = opts.jobs;
  req.isolation = opts.isolation;
  req.workers = opts.workers;
  req.journal_path = opts.journal_path;
  req.resume = opts.resume;
  if (opts.verbose) {
    req.progress = [](std::string_view msg) { std::cerr << "  " << msg << "\n"; };
  }
  return run_sweep(req, baselines);
}

inline void print_figure(std::string_view title,
                         const std::vector<sim::SweepCell>& cells,
                         std::span<const core::SchedulerKind> kinds,
                         const BenchOptions& opts, sim::FigureMetric metric) {
  std::vector<std::uint32_t> sizes(opts.iq_sizes.begin(), opts.iq_sizes.end());
  const TextTable table = sim::figure_table(cells, kinds, sizes, metric);
  table.print(std::cout, title);
}

inline void print_run_parameters(const BenchOptions& opts) {
  std::cout << "# warmup=" << opts.base.warmup << " horizon=" << opts.base.horizon
            << " seed=" << opts.base.seed << " jobs=" << opts.jobs
            << " (override with key=value args)\n\n";
}

/// Prints the sweep's wall-clock profile; the "sweep" stage is the number
/// to compare across job counts (same seed => same simulated results, so
/// the ratio is pure host speedup).
inline void print_sweep_timing(const obs::TimerRegistry& timers,
                               const BenchOptions& opts) {
  std::cout << "\n";
  timers.print(std::cout);
  std::cout << "# sweep wall-clock " << timers.seconds("sweep") << " s at jobs="
            << opts.jobs << "\n";
}

/// Standard figure-bench body: sweep one thread count, print one metric.
inline int run_figure_bench(int argc, char** argv, std::string_view title,
                            unsigned thread_count, sim::FigureMetric metric) {
  return guarded_main([&]() -> int {
  const BenchOptions opts = parse_options(argc, argv);
  print_run_parameters(opts);
  sim::BaselineCache baselines(opts.base);
  obs::TimerRegistry timers;
  std::vector<sim::SweepCell> cells;
  {
    const obs::ScopeTimer timer(timers, "sweep");
    cells = figure_sweep(thread_count, opts, baselines);
  }
  static constexpr core::SchedulerKind kKinds[] = {
      core::SchedulerKind::kTraditional, core::SchedulerKind::kTwoOpBlock,
      core::SchedulerKind::kTwoOpBlockOoo};
  print_figure(title, cells, kKinds, opts, metric);
  // Context for the reader: the raw harmonic-mean IPCs behind the speedups.
  print_figure(std::string(title) + " -- raw harmonic-mean throughput IPC",
               cells, kKinds, opts, sim::FigureMetric::kThroughputIpc);
  maybe_write_sweep_json(opts, cells);
  print_sweep_timing(timers, opts);
  return 0;
  });
}

}  // namespace msim::bench
