// Section 3 text statistic: the percentage of cycles in which the dispatch
// of ALL threads stalls because every thread's next instruction has two
// non-ready sources (the 2OP_BLOCK pathology), and how out-of-order
// dispatch changes it.
//
// Paper (64-entry IQ, 2OP_BLOCK): 43% for 2 threads, 17% for 3, 7% for 4;
// with out-of-order dispatch the 2-thread figure collapses (to ~0.2%).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return msim::bench::guarded_main([&]() -> int {
  using namespace msim;
  bench::BenchOptions opts = bench::parse_options(argc, argv);
  bench::print_run_parameters(opts);

  TextTable table({"threads", "2op_block", "2op_block_ooo", "ratio"});
  sim::BaselineCache baselines(opts.base);
  for (unsigned threads : {2u, 3u, 4u}) {
    sim::SweepRequest req;
    req.thread_count = threads;
    req.kinds = {core::SchedulerKind::kTwoOpBlock,
                 core::SchedulerKind::kTwoOpBlockOoo};
    req.iq_sizes = {64};
    req.base = opts.base;
    const auto cells = sim::run_sweep(req, baselines);
    const double block =
        sim::cell_for(cells, core::SchedulerKind::kTwoOpBlock, 64)
            .mean_all_stall_fraction;
    const double ooo =
        sim::cell_for(cells, core::SchedulerKind::kTwoOpBlockOoo, 64)
            .mean_all_stall_fraction;
    table.begin_row();
    table.add_cell(std::to_string(threads));
    table.add_cell(block, 4);
    table.add_cell(ooo, 4);
    table.add_cell(ooo > 0 ? block / ooo : 0.0, 1);
  }
  table.print(std::cout,
              "Section 3/5: fraction of cycles with ALL threads dispatch-stalled "
              "by two-non-ready instructions (64-entry IQ)");
  return 0;
  });
}
