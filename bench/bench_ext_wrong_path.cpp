// Extension: wrong-path execution modeling.  The baseline trace-driven
// model charges a branch misprediction as a fetch stall until resolution;
// with `model_wrong_path` the front end instead runs down the predicted
// path, consuming fetch bandwidth, rename registers, IQ entries and cache
// bandwidth until the resolution squash.  This bench quantifies the
// difference for the three scheduler designs -- a robustness check that the
// paper's ordering is not an artifact of the stall approximation.
#include "bench_common.hpp"

#include "trace/mixes.hpp"

int main(int argc, char** argv) {
  return msim::bench::guarded_main([&]() -> int {
  using namespace msim;
  bench::BenchOptions opts = bench::parse_options(argc, argv);
  bench::print_run_parameters(opts);

  for (const bool wrong_path : {false, true}) {
    sim::RunConfig base = opts.base;
    base.model_wrong_path = wrong_path;
    sim::BaselineCache baselines(base);
    TextTable table({"scheduler", "hmean_ipc_2T", "hmean_fairness_2T",
                     "wp_fetched/instr"});
    for (const core::SchedulerKind kind :
         {core::SchedulerKind::kTraditional, core::SchedulerKind::kTwoOpBlock,
          core::SchedulerKind::kTwoOpBlockOoo}) {
      std::vector<double> ipcs, fairs;
      std::uint64_t wp_fetched = 0, committed = 0;
      for (const trace::WorkloadMix& mix : trace::mixes_for(2)) {
        if (opts.verbose) {
          std::cerr << "  wp=" << wrong_path << " "
                    << core::scheduler_kind_name(kind) << " " << mix.name << "\n";
        }
        const sim::MixResult r = sim::run_mix(mix, kind, 64, base, baselines);
        ipcs.push_back(r.throughput_ipc);
        fairs.push_back(r.fairness);
        wp_fetched += r.raw.pipeline.wrong_path_fetched;
        for (const std::uint64_t c : r.raw.per_thread_committed) committed += c;
      }
      table.begin_row();
      table.add_cell(core::scheduler_kind_name(kind));
      table.add_cell(harmonic_mean(ipcs), 3);
      table.add_cell(harmonic_mean(fairs), 3);
      table.add_cell(committed ? static_cast<double>(wp_fetched) /
                                     static_cast<double>(committed)
                               : 0.0,
                     3);
    }
    table.print(std::cout, std::string("wrong-path modeling ") +
                               (wrong_path ? "ON" : "OFF (stall model)") +
                               ", 2-threaded mixes, 64-entry IQ");
  }
  return 0;
  });
}
