// Figure 1: IPC speedup (harmonic mean across all mixes) of the 2OP_BLOCK
// scheduler compared to the traditional IQ of the same capacity, for 2-, 3-
// and 4-threaded workloads across IQ sizes.
//
// Paper shape: 4T positive up to 64 entries then negative; 3T positive at
// 32, break-even near 48, negative after; 2T negative everywhere.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return msim::bench::guarded_main([&]() -> int {
  using namespace msim;
  const bench::BenchOptions opts = bench::parse_options(argc, argv);
  bench::print_run_parameters(opts);

  TextTable table([&] {
    std::vector<std::string> headers{"iq_entries"};
    for (unsigned t : {2u, 3u, 4u}) {
      headers.push_back(std::to_string(t) + "-threaded");
    }
    return headers;
  }());

  std::vector<std::vector<sim::SweepCell>> per_threads;
  sim::BaselineCache baselines(opts.base);
  for (unsigned threads : {2u, 3u, 4u}) {
    sim::SweepRequest req;
    req.thread_count = threads;
    req.kinds = {core::SchedulerKind::kTraditional,
                 core::SchedulerKind::kTwoOpBlock};
    req.iq_sizes.assign(opts.iq_sizes.begin(), opts.iq_sizes.end());
    req.base = opts.base;
    if (opts.verbose) {
      req.progress = [threads](std::string_view msg) {
        std::cerr << "  [" << threads << "T] " << msg << "\n";
      };
    }
    per_threads.push_back(sim::run_sweep(req, baselines));
  }

  for (const std::uint32_t iq : opts.iq_sizes) {
    table.begin_row();
    table.add_cell(std::uint64_t{iq});
    for (const auto& cells : per_threads) {
      const sim::SweepCell& cell =
          sim::cell_for(cells, core::SchedulerKind::kTwoOpBlock, iq);
      table.add_cell(format_percent(cell.ipc_speedup_vs_trad - 1.0));
    }
  }
  table.print(std::cout,
              "Figure 1: 2OP_BLOCK IPC speedup vs traditional IQ of same capacity");
  return 0;
  });
}
