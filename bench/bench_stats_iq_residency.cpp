// Section 5 text statistic: for 64-entry schedulers on 2-threaded mixes,
// the average number of cycles an instruction spends in the IQ drops from
// 21 (traditional) to 15 (2OP_BLOCK with out-of-order dispatch) -- the
// mechanism behind the efficiency gain: entries are recycled faster.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return msim::bench::guarded_main([&]() -> int {
  using namespace msim;
  bench::BenchOptions opts = bench::parse_options(argc, argv);
  bench::print_run_parameters(opts);

  sim::BaselineCache baselines(opts.base);
  sim::SweepRequest req;
  req.thread_count = 2;
  req.kinds = {core::SchedulerKind::kTraditional, core::SchedulerKind::kTwoOpBlock,
               core::SchedulerKind::kTwoOpBlockOoo};
  req.iq_sizes.assign(opts.iq_sizes.begin(), opts.iq_sizes.end());
  req.base = opts.base;
  if (opts.verbose) {
    req.progress = [](std::string_view m) { std::cerr << "  " << m << "\n"; };
  }
  const auto cells = sim::run_sweep(req, baselines);

  static constexpr core::SchedulerKind kKinds[] = {
      core::SchedulerKind::kTraditional, core::SchedulerKind::kTwoOpBlock,
      core::SchedulerKind::kTwoOpBlockOoo};
  bench::print_figure(
      "Section 5: mean IQ residency in cycles, 2-threaded workloads "
      "(paper @64: traditional 21 -> OOO dispatch 15)",
      cells, kKinds, opts, sim::FigureMetric::kIqResidency);

  bench::print_figure("mean IQ occupancy context: Section-3 all-stall fraction",
                      cells, kKinds, opts, sim::FigureMetric::kAllStallFraction);
  return 0;
  });
}
