#include "smt/rename.hpp"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace msim::smt {
namespace {

isa::DynInst alu(ArchReg dest, ArchReg s0 = kNoArchReg, ArchReg s1 = kNoArchReg) {
  isa::DynInst inst;
  inst.op = isa::OpClass::kIntAlu;
  inst.dest = dest;
  inst.src[0] = s0;
  inst.src[1] = s1;
  return inst;
}

TEST(Rename, InitialMappingsAreReady) {
  RenameUnit r(2, 256, 256);
  for (ThreadId t = 0; t < 2; ++t) {
    for (ArchReg a = 0; a < isa::kArchRegCount; ++a) {
      const PhysReg p = r.committed_mapping(t, a);
      ASSERT_NE(p, kNoPhysReg);
      EXPECT_TRUE(r.is_ready(p));
    }
  }
}

TEST(Rename, InitialMappingsAreDisjointAcrossThreads) {
  RenameUnit r(4, 256, 256);
  std::set<PhysReg> seen;
  for (ThreadId t = 0; t < 4; ++t) {
    for (ArchReg a = 0; a < isa::kArchRegCount; ++a) {
      EXPECT_TRUE(seen.insert(r.committed_mapping(t, a)).second);
    }
  }
}

TEST(Rename, FreeListAccounting) {
  RenameUnit r(2, 256, 256);
  EXPECT_EQ(r.free_int_regs(), 256u - 2 * isa::kIntArchRegs);
  EXPECT_EQ(r.free_fp_regs(), 256u - 2 * isa::kFpArchRegs);
}

TEST(Rename, AllocatesFreshDestAndClearsReady) {
  RenameUnit r(1, 256, 256);
  const RenameResult rr = r.rename(0, alu(/*dest=*/5));
  EXPECT_NE(rr.dest, kNoPhysReg);
  EXPECT_NE(rr.prev_dest, kNoPhysReg);
  EXPECT_NE(rr.dest, rr.prev_dest);
  EXPECT_FALSE(r.is_ready(rr.dest));
  EXPECT_EQ(r.free_int_regs(), 256u - isa::kIntArchRegs - 1);
}

TEST(Rename, SourcesResolveToLatestMapping) {
  RenameUnit r(1, 256, 256);
  const RenameResult producer = r.rename(0, alu(/*dest=*/5));
  const RenameResult consumer = r.rename(0, alu(/*dest=*/6, /*s0=*/5));
  EXPECT_EQ(consumer.src[0], producer.dest);
  EXPECT_EQ(consumer.src[1], kNoPhysReg);
}

TEST(Rename, FpAndIntUseSeparateFreeLists) {
  RenameUnit r(1, 256, 256);
  const ArchReg fp_reg = isa::kIntArchRegs + 3;
  isa::DynInst inst = alu(fp_reg);
  inst.op = isa::OpClass::kFpAdd;
  const unsigned int_before = r.free_int_regs();
  (void)r.rename(0, inst);
  EXPECT_EQ(r.free_int_regs(), int_before);
  EXPECT_EQ(r.free_fp_regs(), 256u - isa::kFpArchRegs - 1);
}

TEST(Rename, CommitRecyclesPreviousMapping) {
  RenameUnit r(1, 256, 256);
  const RenameResult rr = r.rename(0, alu(5));
  const unsigned free_before = r.free_int_regs();
  r.set_ready(rr.dest);
  r.commit(0, 5, rr.dest, rr.prev_dest);
  EXPECT_EQ(r.free_int_regs(), free_before + 1);
  EXPECT_EQ(r.committed_mapping(0, 5), rr.dest);
}

TEST(Rename, CanAllocateReflectsExhaustion) {
  // Minimum viable file: 32 arch + 1 spare.
  RenameUnit r(1, isa::kIntArchRegs + 1, isa::kFpArchRegs + 1);
  EXPECT_TRUE(r.can_allocate(3));
  (void)r.rename(0, alu(3));
  EXPECT_FALSE(r.can_allocate(3));                     // int exhausted
  EXPECT_TRUE(r.can_allocate(isa::kIntArchRegs + 2));  // fp still free
  EXPECT_TRUE(r.can_allocate(kNoArchReg));             // no dest needed
}

TEST(Rename, RoundTripRenameCommitNeverLeaks) {
  RenameUnit r(1, 64, 64);
  const unsigned free0 = r.free_int_regs();
  for (int i = 0; i < 1000; ++i) {
    const auto dest = static_cast<ArchReg>(i % isa::kIntArchRegs);
    const RenameResult rr = r.rename(0, alu(dest));
    r.set_ready(rr.dest);
    r.commit(0, dest, rr.dest, rr.prev_dest);
  }
  EXPECT_EQ(r.free_int_regs(), free0);
}

TEST(Rename, FlushRestoresCommittedMapAndRecycles) {
  RenameUnit r(1, 256, 256);
  const PhysReg committed5 = r.committed_mapping(0, 5);
  const RenameResult a = r.rename(0, alu(5));
  const RenameResult b = r.rename(0, alu(5));
  // In-flight chain: committed5 -> a.dest -> b.dest; nothing committed.
  const unsigned free_before = r.free_int_regs();
  r.flush_thread(0, {a.dest, b.dest});
  EXPECT_EQ(r.free_int_regs(), free_before + 2);
  // The speculative map is rewound: renaming a reader of r5 sees the
  // committed mapping again.
  const RenameResult reader = r.rename(0, alu(/*dest=*/6, /*s0=*/5));
  EXPECT_EQ(reader.src[0], committed5);
}

TEST(Rename, FlushThenReplayReachesSameMappingsState) {
  RenameUnit r(1, 256, 256);
  const RenameResult first = r.rename(0, alu(7));
  r.flush_thread(0, {first.dest});
  const RenameResult replayed = r.rename(0, alu(7));
  // The same (only) free register comes back.
  EXPECT_EQ(replayed.dest, first.dest);
  EXPECT_EQ(replayed.prev_dest, first.prev_dest);
}


TEST(Rename, RewindMappingUndoesOneRename) {
  RenameUnit r(1, 256, 256);
  const PhysReg committed = r.committed_mapping(0, 4);
  const RenameResult a = r.rename(0, alu(4));
  const RenameResult b = r.rename(0, alu(4));
  const unsigned free_before = r.free_int_regs();
  // Undo youngest-first: b then a.
  r.rewind_mapping(0, 4, b.dest, b.prev_dest);
  r.rewind_mapping(0, 4, a.dest, a.prev_dest);
  EXPECT_EQ(r.free_int_regs(), free_before + 2);
  const RenameResult reader = r.rename(0, alu(5, /*s0=*/4));
  EXPECT_EQ(reader.src[0], committed);
}

TEST(Rename, RewindOutOfOrderDies) {
  RenameUnit r(1, 256, 256);
  const RenameResult a = r.rename(0, alu(4));
  (void)r.rename(0, alu(4));
  // a is no longer the current mapping; rewinding it first is a bug.
  EXPECT_DEATH(r.rewind_mapping(0, 4, a.dest, a.prev_dest), "MSIM_CHECK");
}

}  // namespace
}  // namespace msim::smt
