#include "bpred/gshare.hpp"

#include <gtest/gtest.h>

namespace msim::bpred {
namespace {

TEST(Gshare, LearnsAlwaysTaken) {
  Gshare g;
  const Addr pc = 0x4000;
  for (int i = 0; i < 4; ++i) g.update(pc, true);
  EXPECT_TRUE(g.predict(pc));
}

TEST(Gshare, LearnsAlwaysNotTaken) {
  Gshare g;
  const Addr pc = 0x4000;
  for (int i = 0; i < 4; ++i) g.update(pc, false);
  EXPECT_FALSE(g.predict(pc));
}

TEST(Gshare, CountersSaturate) {
  Gshare g;
  const Addr pc = 0x4000;
  for (int i = 0; i < 100; ++i) g.update(pc, true);
  // One contrary outcome must not flip a saturated counter.
  g.update(pc, false);
  // Re-create the same history state so the same counter is read: after the
  // updates the history changed, so check via accuracy over a biased stream
  // instead.
  Gshare g2;
  int correct = 0;
  for (int i = 0; i < 1000; ++i) {
    const bool taken = i % 10 != 9;  // 90% taken
    if (g2.predict(pc) == taken) ++correct;
    g2.update(pc, taken);
  }
  EXPECT_GT(correct, 700);
}

TEST(Gshare, LearnsShortLoopPatternViaHistory) {
  // taken, taken, not-taken repeating: global history disambiguates the
  // three positions, so accuracy approaches 100% after warm-up.
  Gshare g;
  const Addr pc = 0x1234;
  int correct_tail = 0;
  for (int i = 0; i < 3000; ++i) {
    const bool taken = (i % 3) != 2;
    const bool predicted = g.predict(pc);
    g.update(pc, taken);
    if (i >= 2000 && predicted == taken) ++correct_tail;
  }
  EXPECT_GT(correct_tail, 950);
}

TEST(Gshare, HistoryShiftsInOutcomes) {
  Gshare g;
  EXPECT_EQ(g.history(), 0u);
  g.update(0x10, true);
  EXPECT_EQ(g.history(), 1u);
  g.update(0x10, false);
  EXPECT_EQ(g.history(), 2u);
  g.update(0x10, true);
  EXPECT_EQ(g.history(), 5u);
}

TEST(Gshare, HistoryIsMasked) {
  Gshare g({.table_entries = 2048, .history_bits = 4});
  for (int i = 0; i < 100; ++i) g.update(0x10, true);
  EXPECT_LT(g.history(), 16u);
}

TEST(Gshare, StatsTrackAccuracy) {
  Gshare g;
  for (int i = 0; i < 100; ++i) g.update(0x77, true);
  EXPECT_EQ(g.stats().lookups, 100u);
  // Initialized weakly-taken, so every prediction of this stream is correct.
  EXPECT_EQ(g.stats().correct, 100u);
  EXPECT_DOUBLE_EQ(g.stats().accuracy(), 1.0);
  g.reset_stats();
  EXPECT_EQ(g.stats().lookups, 0u);
}

TEST(Gshare, UpdateReturnsCorrectness) {
  Gshare g;
  EXPECT_TRUE(g.update(0x20, true));    // weakly taken predicts taken
  EXPECT_TRUE(g.update(0x20, true));
}

class GshareTableSizes : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(GshareTableSizes, BiasedStreamsPredictWellAtAnySize) {
  Gshare g({.table_entries = GetParam(), .history_bits = 8});
  int correct = 0;
  constexpr int kTrials = 2000;
  for (int i = 0; i < kTrials; ++i) {
    const Addr pc = 0x1000 + static_cast<Addr>((i % 7) * 4);
    const bool taken = (i % 7) < 5;  // per-pc constant direction
    if (g.predict(pc) == taken) ++correct;
    g.update(pc, taken);
  }
  EXPECT_GT(correct, kTrials * 7 / 10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GshareTableSizes,
                         ::testing::Values(256u, 2048u, 16384u));

}  // namespace
}  // namespace msim::bpred
