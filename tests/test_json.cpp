#include "common/json.hpp"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

namespace msim {
namespace {

TEST(JsonWriter, ObjectWithScalars) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.begin_object();
  w.kv("a", std::uint64_t{1});
  w.kv("b", true);
  w.kv("c", "text");
  w.kv("d", 1.5);
  w.end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(os.str(), R"({"a":1,"b":true,"c":"text","d":1.5})");
}

TEST(JsonWriter, NestedArraysAndObjects) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.begin_object();
  w.key("xs");
  w.begin_array();
  w.value(std::int64_t{-3});
  w.begin_object();
  w.kv("k", "v");
  w.end_object();
  w.null();
  w.end_array();
  w.end_object();
  EXPECT_EQ(os.str(), R"({"xs":[-3,{"k":"v"},null]})");
}

TEST(JsonWriter, EscapesControlAndSpecialCharacters) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.begin_array();
  w.value("a\"b\\c\n\t\x01");
  w.end_array();
  EXPECT_EQ(os.str(), "[\"a\\\"b\\\\c\\n\\t\\u0001\"]");
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.end_array();
  EXPECT_EQ(os.str(), "[null,null]");
}

TEST(JsonWriter, IndentedOutputIsStable) {
  std::ostringstream os;
  JsonWriter w(os, 2);
  w.begin_object();
  w.kv("n", std::uint64_t{7});
  w.end_object();
  EXPECT_EQ(os.str(), "{\n  \"n\": 7\n}");
}

TEST(JsonValue, ParsesScalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_TRUE(JsonValue::parse("true").as_bool());
  EXPECT_FALSE(JsonValue::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(JsonValue::parse("-12.25e1").as_number(), -122.5);
  EXPECT_EQ(JsonValue::parse(R"("hi\nthere")").as_string(), "hi\nthere");
}

TEST(JsonValue, ParsesUnicodeEscapes) {
  EXPECT_EQ(JsonValue::parse(R"("Aé")").as_string(), "A\xc3\xa9");
}

TEST(JsonValue, ParsesNestedDocument) {
  const auto v = JsonValue::parse(R"({"a": [1, 2, {"b": true}], "c": "x"})");
  ASSERT_TRUE(v.is_object());
  const auto& xs = v.at("a").as_array();
  ASSERT_EQ(xs.size(), 3u);
  EXPECT_DOUBLE_EQ(xs[1].as_number(), 2.0);
  EXPECT_TRUE(xs[2].at("b").as_bool());
  EXPECT_TRUE(v.contains("c"));
  EXPECT_FALSE(v.contains("missing"));
  EXPECT_THROW((void)v.at("missing"), std::invalid_argument);
}

TEST(JsonValue, RejectsMalformedInput) {
  EXPECT_THROW((void)JsonValue::parse("{"), std::invalid_argument);
  EXPECT_THROW((void)JsonValue::parse("[1,]"), std::invalid_argument);
  EXPECT_THROW((void)JsonValue::parse("nul"), std::invalid_argument);
  EXPECT_THROW((void)JsonValue::parse("{} junk"), std::invalid_argument);
  EXPECT_THROW((void)JsonValue::parse("\"unterminated"), std::invalid_argument);
}

TEST(JsonValue, TypeMismatchThrows) {
  const auto v = JsonValue::parse("[1]");
  EXPECT_THROW((void)v.as_object(), std::invalid_argument);
  EXPECT_THROW((void)v.as_number(), std::invalid_argument);
}

TEST(JsonRoundTrip, WriterOutputParsesBack) {
  std::ostringstream os;
  JsonWriter w(os, 2);
  w.begin_object();
  w.kv("count", std::uint64_t{42});
  w.key("values");
  w.begin_array();
  for (int i = 0; i < 4; ++i) w.value(static_cast<double>(i) * 0.5);
  w.end_array();
  w.kv("label", "sweep \"A\"");
  w.end_object();
  ASSERT_TRUE(w.complete());

  const auto v = JsonValue::parse(os.str());
  EXPECT_DOUBLE_EQ(v.at("count").as_number(), 42.0);
  EXPECT_EQ(v.at("values").as_array().size(), 4u);
  EXPECT_DOUBLE_EQ(v.at("values").as_array()[3].as_number(), 1.5);
  EXPECT_EQ(v.at("label").as_string(), "sweep \"A\"");
}

TEST(JsonEscape, QuotesString) {
  EXPECT_EQ(json_escape("a\"b"), "\"a\\\"b\"");
}

}  // namespace
}  // namespace msim
