#include "core/issue_queue.hpp"

#include <array>
#include <vector>

#include <gtest/gtest.h>

namespace msim::core {
namespace {

SchedInst make_inst(ThreadId tid, SeqNum seq, PhysReg dest = kNoPhysReg) {
  SchedInst si;
  si.tid = tid;
  si.seq = seq;
  si.dest = dest;
  return si;
}

TEST(IssueQueue, ComparatorCountPerDesign) {
  IssueQueue trad(8, 2), reduced(8, 1);
  EXPECT_EQ(trad.max_comparators(), 2);
  EXPECT_EQ(reduced.max_comparators(), 1);
  EXPECT_EQ(trad.layout().comparators(), 16u);
  EXPECT_EQ(reduced.layout().comparators(), 8u);
}

TEST(IssueQueue, DispatchWithoutWaitingTagsIsImmediatelyReady) {
  IssueQueue iq(4, 2);
  iq.dispatch(make_inst(0, 0), {}, 5);
  std::vector<std::uint32_t> ready;
  iq.collect_ready(ready);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_TRUE(iq.ready(ready[0]));
  EXPECT_EQ(iq.at(ready[0]).seq, 0u);
}

TEST(IssueQueue, EntryWaitsForBroadcast) {
  IssueQueue iq(4, 2);
  const std::array<PhysReg, 1> tags{7};
  iq.dispatch(make_inst(0, 0), {tags.data(), 1}, 0);
  std::vector<std::uint32_t> ready;
  iq.collect_ready(ready);
  EXPECT_TRUE(ready.empty());
  iq.broadcast(7);
  iq.collect_ready(ready);
  EXPECT_EQ(ready.size(), 1u);
}

TEST(IssueQueue, TwoTagsNeedTwoBroadcasts) {
  IssueQueue iq(4, 2);
  const std::array<PhysReg, 2> tags{7, 9};
  iq.dispatch(make_inst(0, 0), {tags.data(), 2}, 0);
  std::vector<std::uint32_t> ready;
  iq.broadcast(7);
  iq.collect_ready(ready);
  EXPECT_TRUE(ready.empty());
  iq.broadcast(9);
  iq.collect_ready(ready);
  EXPECT_EQ(ready.size(), 1u);
}

TEST(IssueQueue, UnrelatedBroadcastIsIgnored) {
  IssueQueue iq(4, 1);
  const std::array<PhysReg, 1> tags{7};
  iq.dispatch(make_inst(0, 0), {tags.data(), 1}, 0);
  iq.broadcast(8);
  std::vector<std::uint32_t> ready;
  iq.collect_ready(ready);
  EXPECT_TRUE(ready.empty());
  EXPECT_EQ(iq.stats().wakeups, 0u);
}

TEST(IssueQueue, ReadyOrderIsOldestDispatchFirst) {
  IssueQueue iq(8, 2);
  iq.dispatch(make_inst(1, 50), {}, 0);  // dispatched first (older in queue)
  iq.dispatch(make_inst(0, 10), {}, 1);
  iq.dispatch(make_inst(2, 99), {}, 2);
  std::vector<std::uint32_t> ready;
  iq.collect_ready(ready);
  ASSERT_EQ(ready.size(), 3u);
  EXPECT_EQ(iq.at(ready[0]).seq, 50u);
  EXPECT_EQ(iq.at(ready[1]).seq, 10u);
  EXPECT_EQ(iq.at(ready[2]).seq, 99u);
}

TEST(IssueQueue, IssueFreesEntryAndRecordsResidency) {
  IssueQueue iq(2, 2);
  iq.dispatch(make_inst(0, 0), {}, 10);
  std::vector<std::uint32_t> ready;
  iq.collect_ready(ready);
  iq.issue(ready[0], 25);
  EXPECT_EQ(iq.size(), 0u);
  EXPECT_EQ(iq.free_entries(), 2u);
  EXPECT_EQ(iq.stats().issued, 1u);
  EXPECT_NEAR(iq.stats().mean_residency(), 15.0, 4.0);  // histogram bucketing
}

TEST(IssueQueue, FillsToCapacity) {
  IssueQueue iq(3, 1);
  for (SeqNum s = 0; s < 3; ++s) {
    EXPECT_FALSE(iq.full());
    iq.dispatch(make_inst(0, s), {}, 0);
  }
  EXPECT_TRUE(iq.full());
  EXPECT_EQ(iq.free_entries(), 0u);
}

TEST(IssueQueue, PerThreadOccupancy) {
  IssueQueue iq(8, 2);
  iq.dispatch(make_inst(0, 0), {}, 0);
  iq.dispatch(make_inst(0, 1), {}, 0);
  iq.dispatch(make_inst(3, 0), {}, 0);
  EXPECT_EQ(iq.size_for(0), 2u);
  EXPECT_EQ(iq.size_for(3), 1u);
  EXPECT_EQ(iq.size_for(1), 0u);
  std::vector<std::uint32_t> ready;
  iq.collect_ready(ready);
  iq.issue(ready[0], 1);
  EXPECT_EQ(iq.size_for(0), 1u);
}

TEST(IssueQueue, ClearEmptiesEverything) {
  IssueQueue iq(4, 2);
  const std::array<PhysReg, 1> tags{3};
  iq.dispatch(make_inst(0, 0), {tags.data(), 1}, 0);
  iq.dispatch(make_inst(1, 0), {}, 0);
  iq.clear();
  EXPECT_EQ(iq.size(), 0u);
  EXPECT_EQ(iq.size_for(0), 0u);
  EXPECT_EQ(iq.size_for(1), 0u);
  std::vector<std::uint32_t> ready;
  iq.collect_ready(ready);
  EXPECT_TRUE(ready.empty());
  // Capacity is fully reusable after the flush.
  for (SeqNum s = 0; s < 4; ++s) iq.dispatch(make_inst(0, s), {}, 1);
  EXPECT_TRUE(iq.full());
}

TEST(IssueQueue, OccupancyStatsAccumulatePerTick) {
  IssueQueue iq(4, 2);
  iq.dispatch(make_inst(0, 0), {}, 0);
  iq.tick_stats();
  iq.dispatch(make_inst(0, 1), {}, 1);
  iq.tick_stats();
  EXPECT_EQ(iq.stats().occupancy_samples, 2u);
  EXPECT_EQ(iq.stats().occupancy_integral, 3u);
  EXPECT_DOUBLE_EQ(iq.stats().mean_occupancy(), 1.5);
}

TEST(IssueQueue, WakeupsCounted) {
  IssueQueue iq(4, 2);
  const std::array<PhysReg, 2> tags{3, 4};
  iq.dispatch(make_inst(0, 0), {tags.data(), 2}, 0);
  const std::array<PhysReg, 1> one{3};
  iq.dispatch(make_inst(0, 1), {one.data(), 1}, 0);
  iq.broadcast(3);  // wakes one source in each entry
  EXPECT_EQ(iq.stats().wakeups, 2u);
}


// ---- heterogeneous layouts (tag elimination, Ernst & Austin) -----------------

TEST(IqLayout, UniformAndPartitionedAccounting) {
  const IqLayout uniform = IqLayout::uniform(64, 2);
  EXPECT_EQ(uniform.total(), 64u);
  EXPECT_EQ(uniform.comparators(), 128u);
  const IqLayout reduced = IqLayout::uniform(64, 1);
  EXPECT_EQ(reduced.comparators(), 64u);  // the 2OP_BLOCK halving
  const IqLayout elim = IqLayout::tag_eliminated(64);
  EXPECT_EQ(elim.total(), 64u);
  EXPECT_EQ(elim.entries_by_comparators[0], 16u);
  EXPECT_EQ(elim.entries_by_comparators[1], 32u);
  EXPECT_EQ(elim.entries_by_comparators[2], 16u);
  EXPECT_EQ(elim.comparators(), 64u);
}

TEST(IssueQueueHetero, SmallestAdequateEntryIsChosen) {
  // 1 zero-cmp + 1 one-cmp + 1 two-cmp entry.
  IqLayout layout;
  layout.entries_by_comparators = {1, 1, 1};
  IssueQueue iq(layout);
  EXPECT_EQ(iq.max_comparators(), 2);
  // A ready instruction takes the 0-cmp entry, leaving both CAM entries.
  iq.dispatch(make_inst(0, 0), {}, 0);
  EXPECT_TRUE(iq.has_entry_for(1));
  EXPECT_TRUE(iq.has_entry_for(2));
  // One non-ready source takes the 1-cmp entry; the 2-cmp entry remains
  // adequate for any need.
  const std::array<PhysReg, 1> one{5};
  iq.dispatch(make_inst(0, 1), {one.data(), 1}, 0);
  EXPECT_TRUE(iq.has_entry_for(1));
  EXPECT_TRUE(iq.has_entry_for(2));
  // Two non-ready sources take the 2-cmp entry.
  const std::array<PhysReg, 2> two{6, 7};
  iq.dispatch(make_inst(0, 2), {two.data(), 2}, 0);
  EXPECT_TRUE(iq.full());
  EXPECT_FALSE(iq.has_entry_for(0));
}

TEST(IssueQueueHetero, BigEntriesServeSmallNeedsWhenNecessary) {
  IqLayout layout;
  layout.entries_by_comparators = {0, 0, 2};  // only 2-cmp entries
  IssueQueue iq(layout);
  iq.dispatch(make_inst(0, 0), {}, 0);  // ready instruction in a 2-cmp slot
  EXPECT_TRUE(iq.has_entry_for(2));
  iq.dispatch(make_inst(0, 1), {}, 0);
  EXPECT_FALSE(iq.has_entry_for(0));
}

TEST(IssueQueueHetero, TwoCmpExhaustionBlocksTwoNonReadyOnly) {
  IqLayout layout;
  layout.entries_by_comparators = {0, 2, 1};
  IssueQueue iq(layout);
  const std::array<PhysReg, 2> two{6, 7};
  iq.dispatch(make_inst(0, 0), {two.data(), 2}, 0);  // consumes the 2-cmp slot
  EXPECT_FALSE(iq.has_entry_for(2));
  EXPECT_TRUE(iq.has_entry_for(1));
  EXPECT_TRUE(iq.has_entry_for(0));
}

TEST(IssueQueue, SquashYoungerRemovesOnlyThatThreadsSuffix) {
  IssueQueue iq(8, 2);
  iq.dispatch(make_inst(0, 5), {}, 0);
  iq.dispatch(make_inst(0, 9), {}, 0);
  iq.dispatch(make_inst(1, 7), {}, 0);
  iq.squash_younger(0, 5);
  EXPECT_EQ(iq.size_for(0), 1u);
  EXPECT_EQ(iq.size_for(1), 1u);
  std::vector<std::uint32_t> ready;
  iq.collect_ready(ready);
  ASSERT_EQ(ready.size(), 2u);
  EXPECT_EQ(iq.at(ready[0]).seq, 5u);
  EXPECT_EQ(iq.at(ready[1]).seq, 7u);
}

TEST(IssueQueue, ComparatorActivityAccounting) {
  IssueQueue iq(4, 2);
  const std::array<PhysReg, 1> one{5};
  iq.dispatch(make_inst(0, 0), {one.data(), 1}, 0);  // 2-cmp entry occupied
  iq.dispatch(make_inst(0, 1), {}, 0);               // another 2-cmp entry
  iq.broadcast(5);
  // Both occupied entries drive both comparators per broadcast.
  EXPECT_EQ(iq.stats().broadcasts, 1u);
  EXPECT_EQ(iq.stats().comparator_ops, 4u);
  EXPECT_EQ(iq.stats().wakeups, 1u);
  IssueQueue reduced(4, 1);
  reduced.dispatch(make_inst(0, 0), {one.data(), 1}, 0);
  reduced.dispatch(make_inst(0, 1), {}, 0);
  reduced.broadcast(5);
  EXPECT_EQ(reduced.stats().comparator_ops, 2u);  // half the CAM activity
}

}  // namespace
}  // namespace msim::core
