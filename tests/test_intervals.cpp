// Interval telemetry engine, progress bus and streaming export
// (docs/OBSERVABILITY.md, "Interval telemetry & progress").
//
// The contracts under test:
//
//   1. IntervalEngine delta math: a record is exactly the difference of two
//      cumulative boundary samples, with well-defined rates and means.
//   2. The record ring is bounded (oldest evicted, counted as dropped) and
//      reset_stats clears everything except the captured_total stream
//      cursor.
//   3. Phase fingerprints are pure functions of the quantized features;
//      the first-seen table assigns stable ids and the change detector
//      fires only on real feature changes.
//   4. Engine state round-trips through persist::Archive bit-identically.
//   5. persist::IntervalStreamWriter: fresh streams, torn-tail truncation
//      on resume, and refusal of mismatched or missing .part files.
//   6. ProgressBus fan-out/counters and the JSONL event line format.
//   7. Chrome trace export parses back as trace-event JSON.
//   8. End to end through run_simulation: records appear in RunResult, an
//      interrupted+resumed run's JSONL equals the straight run's byte for
//      byte, fingerprints hit pinned goldens across seeds, and sweep
//      results carry identical interval data at any job count.
//   9. The CLI spec is self-consistent (every known key documented).
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <unistd.h>

#include "common/archive.hpp"
#include "common/json.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/interval.hpp"
#include "obs/progress.hpp"
#include "obs/timer.hpp"
#include "persist/interval_stream.hpp"
#include "persist/signal.hpp"
#include "sim/cli_spec.hpp"
#include "sim/experiment.hpp"
#include "sim/run.hpp"
#include "smt/pipeline.hpp"

namespace msim {
namespace {

std::string temp_path(const std::string& stem) {
  return (std::filesystem::temp_directory_path() /
          (stem + "-" + std::to_string(::getpid())))
      .string();
}

/// Removes a temp file (and its .part sibling) even when an assertion
/// bails out of the test early.
class TempFile {
 public:
  explicit TempFile(const std::string& stem) : path_(temp_path(stem)) {}
  ~TempFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
    std::filesystem::remove(path_ + ".part", ec);
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

// ---- 1/2/3. engine unit behavior -------------------------------------------

/// A synthetic boundary sample: totals scale linearly so consecutive
/// boundaries have known deltas.
obs::CumulativeSample boundary(std::uint64_t cycle, unsigned threads,
                               std::uint64_t committed_per_thread) {
  obs::CumulativeSample c;
  c.cycle = cycle;
  c.fetched = threads * committed_per_thread + cycle / 10;
  c.dispatched = threads * committed_per_thread;
  c.issued = threads * committed_per_thread;
  c.iq_occ_sum = 24.0 * static_cast<double>(cycle);
  c.iq_occ_count = cycle;
  c.dab_occ_sum = 0.5 * static_cast<double>(cycle);
  c.dab_occ_count = cycle;
  c.l1d_misses = cycle / 4;
  c.l2_misses = cycle / 16;
  c.branches = cycle / 5;
  c.mispredicts = cycle / 50;
  for (unsigned t = 0; t < threads; ++t) {
    obs::CumulativeSample::Thread th;
    th.committed = committed_per_thread + t;
    th.fetched = committed_per_thread + 2 * t;
    // Denominators divide the 100-cycle boundary grid evenly, so repeated
    // intervals have byte-identical stall fractions (the phase tests rely
    // on "same behavior => same fingerprint").
    th.ndi_blocked_cycles = cycle / 2;
    th.iq_full_cycles = cycle / 4;
    th.rob_full_cycles = cycle / 20;
    th.lsq_full_cycles = 0;
    th.fetch_starved_cycles = cycle / 3;
    th.rob_occ_sum = 40.0 * static_cast<double>(cycle);
    th.rob_occ_count = cycle;
    th.lsq_occ_sum = 10.0 * static_cast<double>(cycle);
    th.lsq_occ_count = cycle;
    th.loads = committed_per_thread / 4;
    c.threads.push_back(th);
    c.committed += th.committed;
  }
  return c;
}

TEST(IntervalEngine, RecordIsTheDeltaOfTwoBoundaries) {
  obs::IntervalEngine engine;
  engine.configure({1'000, 16}, 2);
  ASSERT_TRUE(engine.enabled());

  engine.capture(boundary(1'000, 2, 400));
  engine.capture(boundary(2'000, 2, 1'000));
  ASSERT_EQ(engine.records().size(), 2u);

  const obs::IntervalRecord& r = engine.records().back();
  EXPECT_EQ(r.index, 1u);
  EXPECT_EQ(r.start_cycle, 1'000u);
  EXPECT_EQ(r.end_cycle, 2'000u);
  // committed: two threads go 400+t -> 1000+t, so delta is 2*600.
  EXPECT_EQ(r.committed, 1'200u);
  EXPECT_DOUBLE_EQ(r.ipc, 1.2);
  // Occupancy integrals are linear in cycle, so interval means are flat.
  EXPECT_DOUBLE_EQ(r.iq_occupancy, 24.0);
  EXPECT_DOUBLE_EQ(r.dab_occupancy, 0.5);
  // 250 extra L1D misses over 1200 committed = 208.33 MPKI.
  EXPECT_NEAR(r.l1d_mpki, 1000.0 * 250.0 / 1200.0, 1e-9);
  EXPECT_NEAR(r.l2_mpki, 1000.0 * (125.0 - 62.0) / 1200.0, 1e-9);
  // 200 branches, 20 mispredicts in the window.
  EXPECT_NEAR(r.mispredict_rate, (40.0 - 20.0) / (400.0 - 200.0), 1e-9);

  ASSERT_EQ(r.threads.size(), 2u);
  EXPECT_EQ(r.threads[0].committed, 600u);
  EXPECT_DOUBLE_EQ(r.threads[0].ipc, 0.6);
  EXPECT_DOUBLE_EQ(r.threads[0].rob_occupancy, 40.0);
  EXPECT_DOUBLE_EQ(r.threads[0].lsq_occupancy, 10.0);
  EXPECT_EQ(r.threads[0].loads, 250u - 100u);
  EXPECT_NE(r.threads[0].phase_fingerprint, 0u);
}

TEST(IntervalEngine, RingIsBoundedAndCountsDrops) {
  obs::IntervalEngine engine;
  engine.configure({100, 2}, 1);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    engine.capture(boundary(100 * i, 1, 50 * i));
  }
  EXPECT_EQ(engine.records().size(), 2u);
  EXPECT_EQ(engine.captured(), 5u);
  EXPECT_EQ(engine.captured_total(), 5u);
  EXPECT_EQ(engine.dropped(), 3u);
  EXPECT_EQ(engine.records().front().index, 3u);
  EXPECT_EQ(engine.records().back().index, 4u);
}

TEST(IntervalEngine, ResetClearsEverythingButTheStreamCursor) {
  obs::IntervalEngine engine;
  engine.configure({100, 8}, 1);
  engine.capture(boundary(100, 1, 10));
  engine.capture(boundary(200, 1, 500));  // different phase
  ASSERT_EQ(engine.captured_total(), 2u);
  ASSERT_GE(engine.unique_phases(0), 2u);

  engine.reset_stats(boundary(250, 1, 600));
  EXPECT_TRUE(engine.records().empty());
  EXPECT_EQ(engine.captured(), 0u);
  EXPECT_EQ(engine.dropped(), 0u);
  EXPECT_EQ(engine.captured_total(), 2u) << "stream cursor must survive";
  EXPECT_EQ(engine.unique_phases(0), 0u);
  EXPECT_EQ(engine.phase_changes(0), 0u);

  // The next capture diffs against the reset baseline, restarts indices,
  // and reports no phase change (there is no previous fingerprint).
  engine.capture(boundary(300, 1, 650));
  const obs::IntervalRecord& r = engine.records().front();
  EXPECT_EQ(r.index, 0u);
  EXPECT_EQ(r.start_cycle, 250u);
  EXPECT_EQ(r.end_cycle, 300u);
  EXPECT_EQ(r.committed, 50u);
  EXPECT_FALSE(r.threads[0].phase_changed);
  EXPECT_EQ(engine.captured_total(), 3u);
}

TEST(IntervalEngine, PhaseIdsAreFirstSeenAndChangesFireOnRealChanges) {
  obs::IntervalEngine engine;
  engine.configure({100, 16}, 1);
  // A-A-B-A: two distinct behaviors; the return to A must reuse id 0.
  engine.capture(boundary(100, 1, 100));    // A (delta 100)
  engine.capture(boundary(200, 1, 200));    // A (delta 100)
  engine.capture(boundary(300, 1, 1'000));  // B (delta 800)
  engine.capture(boundary(400, 1, 1'100));  // A (delta 100)

  const auto& ring = engine.records();
  ASSERT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring[0].threads[0].phase_id, 0u);
  EXPECT_FALSE(ring[0].threads[0].phase_changed) << "no previous fingerprint";
  EXPECT_EQ(ring[1].threads[0].phase_id, 0u);
  EXPECT_FALSE(ring[1].threads[0].phase_changed);
  EXPECT_EQ(ring[2].threads[0].phase_id, 1u);
  EXPECT_TRUE(ring[2].threads[0].phase_changed);
  EXPECT_EQ(ring[3].threads[0].phase_id, 0u);
  EXPECT_TRUE(ring[3].threads[0].phase_changed);
  EXPECT_EQ(ring[1].threads[0].phase_fingerprint,
            ring[3].threads[0].phase_fingerprint);
  EXPECT_EQ(engine.unique_phases(0), 2u);
  EXPECT_EQ(engine.phase_changes(0), 2u);
  EXPECT_EQ(engine.phase_id(0), 0u);
}

TEST(PhaseFingerprint, PureAndQuantized) {
  obs::ThreadIntervalSample s;
  s.committed = 500;
  s.ipc = 0.5;
  s.fetch_rate = 0.6;
  s.ndi_blocked_cycles = 300;
  s.iq_full_cycles = 100;
  s.rob_full_cycles = 50;
  s.lsq_full_cycles = 0;
  s.fetch_starved_cycles = 200;
  s.rob_occupancy = 40.25;
  s.lsq_occupancy = 10.75;
  s.loads = 125;

  const std::uint64_t fp = obs::phase_fingerprint(s, 1'000);
  EXPECT_EQ(obs::phase_fingerprint(s, 1'000), fp) << "must be deterministic";

  // A perturbation inside one quantization bucket (1/16 IPC steps) does
  // not move the hash; a whole-bucket jump does.
  obs::ThreadIntervalSample nudged = s;
  nudged.ipc = 0.51;
  EXPECT_EQ(obs::phase_fingerprint(nudged, 1'000), fp);
  obs::ThreadIntervalSample jumped = s;
  jumped.ipc = 1.5;
  EXPECT_NE(obs::phase_fingerprint(jumped, 1'000), fp);
  obs::ThreadIntervalSample occ = s;
  occ.rob_occupancy = 80.0;
  EXPECT_NE(obs::phase_fingerprint(occ, 1'000), fp);
}

// ---- 4. archive round-trip -------------------------------------------------

std::vector<std::string> formatted_ring(const obs::IntervalEngine& engine) {
  std::vector<std::string> out;
  for (const obs::IntervalRecord& r : engine.records()) {
    out.push_back(obs::format_interval_record(r));
  }
  return out;
}

TEST(IntervalEngine, StateRoundTripsThroughArchive) {
  obs::IntervalEngine engine;
  engine.configure({100, 4}, 2);
  for (std::uint64_t i = 1; i <= 6; ++i) {  // overflows the 4-deep ring
    engine.capture(boundary(100 * i, 2, 80 * i));
  }

  persist::Archive save = persist::Archive::saver();
  engine.save_state(save);

  obs::IntervalEngine restored;
  restored.configure({100, 4}, 2);
  persist::Archive load = persist::Archive::loader(save.bytes());
  restored.load_state(load);
  load.expect_end();

  EXPECT_EQ(formatted_ring(restored), formatted_ring(engine));
  EXPECT_EQ(restored.captured(), engine.captured());
  EXPECT_EQ(restored.dropped(), engine.dropped());
  EXPECT_EQ(restored.captured_total(), engine.captured_total());
  EXPECT_EQ(restored.unique_phases(0), engine.unique_phases(0));
  EXPECT_EQ(restored.phase_changes(1), engine.phase_changes(1));

  // Capturing after the restore is indistinguishable from never pausing.
  engine.capture(boundary(700, 2, 700));
  restored.capture(boundary(700, 2, 700));
  EXPECT_EQ(formatted_ring(restored), formatted_ring(engine));

  // A config mismatch is refused, not silently absorbed.
  obs::IntervalEngine wrong;
  wrong.configure({200, 4}, 2);
  persist::Archive reload = persist::Archive::loader(save.bytes());
  EXPECT_THROW(wrong.load_state(reload), persist::PersistError);
}

// ---- 5. the streaming writer ----------------------------------------------

obs::IntervalRecord nth_record(std::uint64_t i) {
  obs::IntervalEngine engine;
  engine.configure({100, 16}, 1);
  for (std::uint64_t k = 1; k <= i + 1; ++k) {
    engine.capture(boundary(100 * k, 1, 60 * k));
  }
  return engine.records().back();
}

TEST(IntervalStreamWriter, FreshStreamFinalizesAtomically) {
  const TempFile file("msim-test-ivstream");
  const obs::IntervalConfig config{100, 16};
  std::string want = obs::format_interval_header(config, 1) + "\n";
  {
    persist::IntervalStreamWriter writer(file.path(), config, 1, 0);
    for (std::uint64_t i = 0; i < 3; ++i) {
      const obs::IntervalRecord r = nth_record(i);
      writer.append(r);
      want += obs::format_interval_record(r) + "\n";
    }
    EXPECT_EQ(writer.written(), 3u);
    // Until finalize, only the .part exists.
    EXPECT_FALSE(std::filesystem::exists(file.path()));
    EXPECT_TRUE(std::filesystem::exists(file.path() + ".part"));
    writer.finalize();
  }
  EXPECT_TRUE(std::filesystem::exists(file.path()));
  EXPECT_FALSE(std::filesystem::exists(file.path() + ".part"));
  EXPECT_EQ(slurp(file.path()), want);
}

TEST(IntervalStreamWriter, ResumeTruncatesTornTailAndContinues) {
  const TempFile file("msim-test-ivresume");
  const obs::IntervalConfig config{100, 16};

  // An interrupted run: three records appended, never finalized, plus a
  // torn half-line from the moment the process died.
  {
    persist::IntervalStreamWriter writer(file.path(), config, 1, 0);
    for (std::uint64_t i = 0; i < 3; ++i) writer.append(nth_record(i));
  }
  {
    std::ofstream os(file.path() + ".part", std::ios::app | std::ios::binary);
    os << "{\"i\":3,\"start\":300,\"en";  // torn mid-write
  }

  // The checkpoint said only 2 records were captured: the resume keeps the
  // first 2 complete lines, drops record 3 and the torn tail, appends.
  std::string want = obs::format_interval_header(config, 1) + "\n";
  want += obs::format_interval_record(nth_record(0)) + "\n";
  want += obs::format_interval_record(nth_record(1)) + "\n";
  {
    persist::IntervalStreamWriter writer(file.path(), config, 1, 2);
    const obs::IntervalRecord r = nth_record(2);
    writer.append(r);
    want += obs::format_interval_record(r) + "\n";
    writer.finalize();
  }
  EXPECT_EQ(slurp(file.path()), want);
}

TEST(IntervalStreamWriter, ResumeRefusesMismatchedStreams) {
  const TempFile file("msim-test-ivrefuse");
  const obs::IntervalConfig config{100, 16};

  // No .part at all: the stream cannot be resumed.
  EXPECT_THROW(persist::IntervalStreamWriter(file.path(), config, 1, 1),
               persist::PersistError);

  {
    persist::IntervalStreamWriter writer(file.path(), config, 1, 0);
    writer.append(nth_record(0));
  }
  // Fewer complete records than the checkpoint cursor: refused.
  EXPECT_THROW(persist::IntervalStreamWriter(file.path(), config, 1, 5),
               persist::PersistError);
  // A different configuration writes a different header: refused.
  EXPECT_THROW(
      persist::IntervalStreamWriter(file.path(), {200, 16}, 1, 1),
      persist::PersistError);
  EXPECT_THROW(persist::IntervalStreamWriter(file.path(), config, 2, 1),
               persist::PersistError);
  // The matching resume still works.
  persist::IntervalStreamWriter ok(file.path(), config, 1, 1);
  ok.finalize();
}

// ---- 6. progress bus -------------------------------------------------------

class CollectingSink final : public obs::ProgressSink {
 public:
  void on_event(const obs::ProgressEvent& event) override {
    events.push_back(event);
  }
  std::vector<obs::ProgressEvent> events;
};

TEST(ProgressBus, FansOutAndCountsPerKind) {
  obs::ProgressBus bus;
  CollectingSink a;
  CollectingSink b;
  bus.subscribe(&a);
  bus.subscribe(&b);

  obs::ProgressEvent start(obs::ProgressKind::kRunStart);
  start.label = "gzip,equake";
  bus.publish(start);
  obs::ProgressEvent tick(obs::ProgressKind::kIntervalTick);
  tick.cycle = 5'000;
  tick.committed = 4'000;
  tick.ipc = 0.8;
  bus.publish(tick);
  bus.publish(tick);

  EXPECT_EQ(bus.published(), 3u);
  EXPECT_EQ(bus.published(obs::ProgressKind::kRunStart), 1u);
  EXPECT_EQ(bus.published(obs::ProgressKind::kIntervalTick), 2u);
  EXPECT_EQ(bus.published(obs::ProgressKind::kRunFinish), 0u);
  ASSERT_EQ(a.events.size(), 3u);
  ASSERT_EQ(b.events.size(), 3u);
  EXPECT_EQ(a.events[0].label, "gzip,equake");
  EXPECT_EQ(b.events[1].cycle, 5'000u);

  bus.reset_counters();
  EXPECT_EQ(bus.published(), 0u);
}

TEST(JsonlProgressSink, FormatsEventsAsStableSingleLines) {
  obs::ProgressEvent start(obs::ProgressKind::kRunStart);
  start.label = "gzip,equake";
  EXPECT_EQ(obs::JsonlProgressSink::format(start),
            R"({"event":"run_start","label":"gzip,equake"})");

  obs::ProgressEvent finish(obs::ProgressKind::kCellFinish);
  finish.label = "traditional iq=32 2T-mix1";
  finish.done = 3;
  finish.total = 24;
  finish.ok = false;
  finish.detail = "hang watchdog";
  const JsonValue v =
      JsonValue::parse(obs::JsonlProgressSink::format(finish));
  EXPECT_EQ(v.at("event").as_string(), "cell_finish");
  EXPECT_EQ(v.at("done").as_number(), 3.0);
  EXPECT_EQ(v.at("total").as_number(), 24.0);
  EXPECT_FALSE(v.at("ok").as_bool());
  EXPECT_EQ(v.at("detail").as_string(), "hang watchdog");

  // Successful events omit ok/detail and zero-valued fields entirely.
  obs::ProgressEvent tick(obs::ProgressKind::kIntervalTick);
  tick.cycle = 1'000;
  const JsonValue t = JsonValue::parse(obs::JsonlProgressSink::format(tick));
  EXPECT_FALSE(t.contains("ok"));
  EXPECT_FALSE(t.contains("detail"));
  EXPECT_FALSE(t.contains("committed"));
  EXPECT_EQ(t.at("cycle").as_number(), 1'000.0);
}

// ---- 7. chrome trace -------------------------------------------------------

TEST(ChromeTrace, SpansParseBackAsTraceEventJson) {
  obs::TimerRegistry timers;
  timers.enable_spans();
  {
    const obs::ScopeTimer outer(timers, "sweep");
    const obs::ScopeTimer inner(timers, "cell:traditional iq=32");
  }
  ASSERT_EQ(timers.spans().size(), 2u);

  const JsonValue doc = JsonValue::parse(obs::format_chrome_trace(timers));
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2u);
  for (const JsonValue& e : events) {
    EXPECT_EQ(e.at("cat").as_string(), "msim");
    EXPECT_EQ(e.at("ph").as_string(), "X");
    EXPECT_GE(e.at("dur").as_number(), 1.0) << "zero-width spans vanish";
    EXPECT_EQ(e.at("pid").as_number(), 1.0);
  }
  // ScopeTimer destruction order: inner closes first.
  EXPECT_EQ(events[0].at("name").as_string(), "cell:traditional iq=32");
  EXPECT_EQ(events[1].at("name").as_string(), "sweep");
}

TEST(ChromeTrace, DisabledRegistryRecordsNothing) {
  obs::TimerRegistry timers;
  {
    const obs::ScopeTimer t(timers, "run");
  }
  EXPECT_TRUE(timers.spans().empty());
  EXPECT_GT(timers.seconds("run"), 0.0) << "stage totals still accumulate";
}

// ---- 8. end to end through run_simulation / run_sweep ----------------------

sim::RunConfig small_run_config() {
  sim::RunConfig cfg;
  cfg.benchmarks = {"gzip", "equake"};
  cfg.kind = core::SchedulerKind::kTwoOpBlockOoo;
  cfg.iq_entries = 64;
  cfg.seed = 1;
  cfg.warmup = 5'000;
  cfg.horizon = 20'000;
  cfg.interval_cycles = 1'000;
  return cfg;
}

TEST(RunSimulationIntervals, RecordsLandInTheResultDeterministically) {
  const sim::RunConfig cfg = small_run_config();
  const sim::RunResult a = sim::run_simulation(cfg);
  ASSERT_FALSE(a.intervals.empty());
  for (const obs::IntervalRecord& r : a.intervals) {
    EXPECT_EQ(r.end_cycle % cfg.interval_cycles, 0u);
    EXPECT_GT(r.end_cycle, r.start_cycle);
    EXPECT_LE(r.end_cycle - r.start_cycle, cfg.interval_cycles);
    std::uint64_t committed = 0;
    for (const obs::ThreadIntervalSample& t : r.threads) {
      committed += t.committed;
    }
    EXPECT_EQ(committed, r.committed);
  }

  const sim::RunResult b = sim::run_simulation(cfg);
  ASSERT_EQ(b.intervals.size(), a.intervals.size());
  for (std::size_t i = 0; i < a.intervals.size(); ++i) {
    EXPECT_EQ(obs::format_interval_record(b.intervals[i]),
              obs::format_interval_record(a.intervals[i]));
  }
  EXPECT_EQ(b.intervals_dropped, a.intervals_dropped);
}

TEST(RunSimulationIntervals, ProgressBusSeesTheWholeRun) {
  sim::RunConfig cfg = small_run_config();
  obs::ProgressBus bus;
  CollectingSink sink;
  bus.subscribe(&sink);
  cfg.progress_bus = &bus;

  const sim::RunResult r = sim::run_simulation(cfg);
  EXPECT_EQ(bus.published(obs::ProgressKind::kRunStart), 1u);
  EXPECT_EQ(bus.published(obs::ProgressKind::kRunFinish), 1u);
  std::uint64_t ticks = 0;
  for (const obs::ProgressEvent& e : sink.events) {
    if (e.kind == obs::ProgressKind::kIntervalTick) ++ticks;
  }
  EXPECT_EQ(bus.published(obs::ProgressKind::kIntervalTick), ticks);
  // The bus saw every capture, including warm-up intervals that the
  // post-warm-up reset later cleared from the result's ring.
  EXPECT_GE(ticks, r.intervals.size() + r.intervals_dropped);
  EXPECT_GT(ticks, 0u);
  ASSERT_FALSE(sink.events.empty());
  EXPECT_EQ(sink.events.front().kind, obs::ProgressKind::kRunStart);
  EXPECT_EQ(sink.events.back().kind, obs::ProgressKind::kRunFinish);
  EXPECT_TRUE(sink.events.back().ok);
  EXPECT_GT(sink.events.back().cycle, 0u);
}

TEST(RunSimulationIntervals, InterruptedJsonlMatchesStraightRunByteForByte) {
  const sim::RunConfig base = small_run_config();

  const TempFile straight_file("msim-test-ivjson-straight");
  sim::RunConfig straight = base;
  straight.interval_json = straight_file.path();
  (void)sim::run_simulation(straight);
  const std::string want = slurp(straight_file.path());
  ASSERT_FALSE(want.empty());

  const TempFile chained_file("msim-test-ivjson-chained");
  const TempFile ckpt("msim-test-ivjson-ckpt");

  // Leg 1: interrupt mid-warm-up; the .part stays behind.
  sim::RunConfig leg1 = base;
  leg1.interval_json = chained_file.path();
  leg1.checkpoint_path = ckpt.path();
  leg1.checkpoint_exit_cycles = 3'000;
  EXPECT_THROW((void)sim::run_simulation(leg1), persist::Interrupted);
  EXPECT_TRUE(std::filesystem::exists(chained_file.path() + ".part"));
  EXPECT_FALSE(std::filesystem::exists(chained_file.path()));

  // Leg 2: resume, interrupt again mid-measurement.
  sim::RunConfig leg2 = base;
  leg2.interval_json = chained_file.path();
  leg2.resume_path = ckpt.path();
  leg2.checkpoint_path = ckpt.path();
  leg2.checkpoint_exit_cycles = 11'000;
  EXPECT_THROW((void)sim::run_simulation(leg2), persist::Interrupted);

  // Leg 3: resume to completion; finalize renames .part into place.
  sim::RunConfig leg3 = base;
  leg3.interval_json = chained_file.path();
  leg3.resume_path = ckpt.path();
  (void)sim::run_simulation(leg3);

  EXPECT_FALSE(std::filesystem::exists(chained_file.path() + ".part"));
  EXPECT_EQ(slurp(chained_file.path()), want)
      << "resumed interval stream differs from the uninterrupted run's";
}

TEST(RunConfigValidate, IntervalJsonNeedsIntervalCycles) {
  sim::RunConfig cfg = small_run_config();
  cfg.interval_cycles = 0;
  cfg.interval_json = "somewhere.jsonl";
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.interval_cycles = 1'000;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(MachineConfigValidate, IntervalRingNeedsASlot) {
  smt::MachineConfig mc;
  mc.interval_cycles = 1'000;
  mc.interval_ring_capacity = 0;
  EXPECT_THROW(mc.validate(), std::invalid_argument);
  mc.interval_ring_capacity = 1;
  EXPECT_NO_THROW(mc.validate());
  mc.interval_cycles = 0;
  mc.interval_ring_capacity = 0;  // fine while telemetry is off
  EXPECT_NO_THROW(mc.validate());
}

/// Per-thread fingerprints of the final interval record of a run: the
/// quantity pinned below.  Changing the fingerprint feature vector, the
/// quantizers or the interval math shows up here first.
std::vector<std::uint64_t> final_fingerprints(
    std::initializer_list<const char*> benchmarks, std::uint64_t seed) {
  sim::RunConfig cfg;
  cfg.benchmarks.assign(benchmarks.begin(), benchmarks.end());
  cfg.kind = core::SchedulerKind::kTwoOpBlockOoo;
  cfg.iq_entries = 64;
  cfg.seed = seed;
  cfg.warmup = 5'000;
  cfg.horizon = 20'000;
  cfg.interval_cycles = 2'000;
  const sim::RunResult r = sim::run_simulation(cfg);
  std::vector<std::uint64_t> out;
  for (const obs::ThreadIntervalSample& t : r.intervals.back().threads) {
    out.push_back(t.phase_fingerprint);
  }
  return out;
}

std::string hex_list(const std::vector<std::uint64_t>& v) {
  std::ostringstream os;
  os << std::hex;
  for (const std::uint64_t x : v) os << "0x" << x << "ULL, ";
  return os.str();
}

TEST(GoldenPhaseFingerprints, TwoThreadAcrossSeeds) {
  const std::vector<std::vector<std::uint64_t>> want = {
      {0x1d5da5adc14baca2ULL, 0xa25726c623c70506ULL},
      {0xb29abbdc36e98426ULL, 0x3c493d66a299cbbdULL},
      {0x1245725aaa5a84e2ULL, 0x3ca3dca772d6291cULL},
  };
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto got = final_fingerprints({"gzip", "equake"}, seed);
    EXPECT_EQ(got, want[seed - 1])
        << "seed " << seed << " actual: " << hex_list(got);
  }
}

TEST(GoldenPhaseFingerprints, FourThreadAcrossSeeds) {
  const std::vector<std::vector<std::uint64_t>> want = {
      {0x4977065dfca134adULL, 0x7782aeed2c9b30f8ULL, 0x26975786aceeb8ffULL,
       0x83f504e46f18651bULL},
      {0xff9835e1c05897e9ULL, 0x90282cf2f9af3c7cULL, 0x6634fcfe679cd47dULL,
       0x44619673995ecc81ULL},
      {0xc0b52c9a69d69d03ULL, 0x346941182a68c3b4ULL, 0xb35847d1a2071153ULL,
       0x2a5be56444c9cbbaULL},
  };
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto got = final_fingerprints({"gzip", "equake", "gcc", "mesa"},
                                        seed);
    EXPECT_EQ(got, want[seed - 1])
        << "seed " << seed << " actual: " << hex_list(got);
  }
}

TEST(SweepIntervals, IdenticalAtAnyJobCountAndCountedOnTheBus) {
  sim::SweepRequest req;
  req.thread_count = 2;
  req.kinds = {core::SchedulerKind::kTraditional,
               core::SchedulerKind::kTwoOpBlockOoo};
  req.iq_sizes = {32};
  req.base.warmup = 3'000;
  req.base.horizon = 8'000;
  req.base.seed = 1;
  req.base.interval_cycles = 2'000;

  auto all_interval_lines = [](const std::vector<sim::SweepCell>& cells) {
    std::vector<std::string> out;
    for (const sim::SweepCell& cell : cells) {
      for (const sim::MixResult& mix : cell.mixes) {
        for (const obs::IntervalRecord& r : mix.raw.intervals) {
          out.push_back(obs::format_interval_record(r));
        }
      }
    }
    return out;
  };

  obs::ProgressBus bus;
  sim::SweepRequest serial = req;
  serial.jobs = 1;
  serial.progress_bus = &bus;
  sim::BaselineCache serial_baselines(serial.base);
  const auto serial_cells = run_sweep(serial, serial_baselines);
  const auto want = all_interval_lines(serial_cells);
  ASSERT_FALSE(want.empty());

  const std::uint64_t total_cells =
      bus.published(obs::ProgressKind::kCellFinish);
  EXPECT_EQ(bus.published(obs::ProgressKind::kSweepStart), 1u);
  EXPECT_EQ(bus.published(obs::ProgressKind::kSweepFinish), 1u);
  EXPECT_EQ(total_cells, 24u) << "12 mixes x 2 kinds";

  sim::SweepRequest wide = req;
  wide.jobs = 4;
  sim::BaselineCache wide_baselines(wide.base);
  EXPECT_EQ(all_interval_lines(run_sweep(wide, wide_baselines)), want);
}

// ---- 9. the CLI spec is self-consistent ------------------------------------

TEST(CliSpec, EveryKnownKeyIsDocumentedInTheUsageText) {
  const std::string usage(sim::cli_usage());
  for (const std::string_view key : sim::cli_known_keys()) {
    std::string flag = "--" + std::string(key);
    for (char& c : flag) {
      if (c == '_') c = '-';
    }
    const bool documented =
        usage.find(std::string(key) + "=") != std::string::npos ||
        usage.find(flag) != std::string::npos;
    EXPECT_TRUE(documented) << "knob '" << key
                            << "' is accepted but absent from --help";
  }
}

TEST(CliSpec, ValueFlagsAreKnownKeysAndKeysAreUnique) {
  const auto keys = sim::cli_known_keys();
  for (const std::string_view flag : sim::cli_value_flags()) {
    EXPECT_NE(std::find(keys.begin(), keys.end(), flag), keys.end())
        << "value flag '" << flag << "' is not an accepted key";
  }
  std::vector<std::string_view> sorted(keys.begin(), keys.end());
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end())
      << "duplicate known key";
  for (const std::string_view knob :
       {"interval", "interval_json", "progress", "progress_json",
        "chrome_trace"}) {
    EXPECT_NE(std::find(keys.begin(), keys.end(), knob), keys.end())
        << "observability knob '" << knob << "' missing from the CLI";
  }
}

}  // namespace
}  // namespace msim
