#include "common/stats.hpp"

#include <array>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace msim {
namespace {

TEST(StreamingStat, EmptyIsZero) {
  StreamingStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(StreamingStat, SingleValue) {
  StreamingStat s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 5.0);
}

TEST(StreamingStat, MatchesDirectComputation) {
  const std::vector<double> xs{3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  StreamingStat s;
  for (double x : xs) s.add(x);
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
}

TEST(StreamingStat, MergeEqualsSequential) {
  StreamingStat all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StreamingStat, MergeWithEmptyIsIdentity) {
  StreamingStat a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  StreamingStat c;
  c.merge(a);
  EXPECT_DOUBLE_EQ(c.mean(), mean);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(4, 10.0);  // [0,10) [10,20) [20,30) [30,inf)
  h.add(0.0);
  h.add(9.99);
  h.add(10.0);
  h.add(25.0);
  h.add(1000.0);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(2, 1.0);
  h.add(0.5, 7);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.bucket(0), 7u);
}

TEST(Histogram, ApproximateMeanUsesMidpoints) {
  Histogram h(10, 2.0);
  h.add(1.0);  // bucket 0, midpoint 1.0
  h.add(3.0);  // bucket 1, midpoint 3.0
  EXPECT_NEAR(h.approximate_mean(), 2.0, 1e-12);
}

TEST(Histogram, ApproximateQuantile) {
  Histogram h(10, 1.0);
  for (int i = 0; i < 9; ++i) h.add(0.5);
  h.add(8.5);
  EXPECT_DOUBLE_EQ(h.approximate_quantile(0.5), 1.0);   // first bucket edge
  EXPECT_DOUBLE_EQ(h.approximate_quantile(1.0), 9.0);   // up to the outlier
}

TEST(Histogram, EmptyQuantileAndMeanAreZero) {
  Histogram h(4, 1.0);
  EXPECT_DOUBLE_EQ(h.approximate_mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.approximate_quantile(0.9), 0.0);
}

TEST(RatioStat, TracksEventsOverOpportunities) {
  RatioStat r;
  EXPECT_DOUBLE_EQ(r.value(), 0.0);
  r.add(true);
  r.add(false);
  r.add(false);
  r.add(true);
  EXPECT_DOUBLE_EQ(r.value(), 0.5);
  r.add_events(2, 4);
  EXPECT_EQ(r.events(), 4u);
  EXPECT_EQ(r.opportunities(), 8u);
  EXPECT_DOUBLE_EQ(r.value(), 0.5);
}

TEST(Means, ArithmeticGeometricHarmonicOrdering) {
  const std::array<double, 3> xs{1.0, 2.0, 4.0};
  const double a = arithmetic_mean({xs.data(), xs.size()});
  const double g = geometric_mean({xs.data(), xs.size()});
  const double h = harmonic_mean({xs.data(), xs.size()});
  EXPECT_NEAR(a, 7.0 / 3.0, 1e-12);
  EXPECT_NEAR(g, 2.0, 1e-12);
  EXPECT_NEAR(h, 3.0 / (1.0 + 0.5 + 0.25), 1e-12);
  EXPECT_GT(a, g);
  EXPECT_GT(g, h);
}

TEST(Means, EqualValuesAllMeansAgree) {
  const std::array<double, 4> xs{3.0, 3.0, 3.0, 3.0};
  EXPECT_NEAR(arithmetic_mean({xs.data(), xs.size()}), 3.0, 1e-12);
  EXPECT_NEAR(geometric_mean({xs.data(), xs.size()}), 3.0, 1e-12);
  EXPECT_NEAR(harmonic_mean({xs.data(), xs.size()}), 3.0, 1e-12);
}

TEST(Means, EmptySpansAreZero) {
  EXPECT_DOUBLE_EQ(arithmetic_mean({}), 0.0);
  EXPECT_DOUBLE_EQ(geometric_mean({}), 0.0);
  EXPECT_DOUBLE_EQ(harmonic_mean({}), 0.0);
}

TEST(Fairness, HmeanWeightedIpcMatchesHandComputation) {
  // Two threads: weighted IPCs 0.5 and 0.25 -> hmean = 2/(2+4) = 1/3.
  const std::array<double, 2> smt{1.0, 0.5};
  const std::array<double, 2> alone{2.0, 2.0};
  EXPECT_NEAR(hmean_weighted_ipc({smt.data(), 2}, {alone.data(), 2}), 1.0 / 3.0, 1e-12);
}

TEST(Fairness, PenalizesImbalance) {
  // Same total weighted throughput, but imbalanced -> lower fairness.
  const std::array<double, 2> balanced{0.5, 0.5};
  const std::array<double, 2> skewed{0.9, 0.1};
  const std::array<double, 2> alone{1.0, 1.0};
  EXPECT_GT(hmean_weighted_ipc({balanced.data(), 2}, {alone.data(), 2}),
            hmean_weighted_ipc({skewed.data(), 2}, {alone.data(), 2}));
}

TEST(Histogram, QuantileEdgesZeroAndOne) {
  Histogram h(8, 2.0);
  h.add(3.0);  // bucket 1
  h.add(5.0);  // bucket 2
  // q=0 resolves to the first bucket's upper edge even when it is empty.
  EXPECT_DOUBLE_EQ(h.approximate_quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(h.approximate_quantile(1.0), 6.0);
  // Out-of-range q clamps to the nearest valid quantile.
  EXPECT_DOUBLE_EQ(h.approximate_quantile(-0.5), h.approximate_quantile(0.0));
  EXPECT_DOUBLE_EQ(h.approximate_quantile(1.5), h.approximate_quantile(1.0));
}

TEST(Histogram, EmptyQuantileEdgesAreZero) {
  Histogram h(4, 1.0);
  EXPECT_DOUBLE_EQ(h.approximate_quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.approximate_quantile(1.0), 0.0);
}

TEST(Histogram, AllMassInOverflowBucket) {
  Histogram h(4, 1.0);
  h.add(100.0, 7);
  EXPECT_EQ(h.bucket(3), 7u);
  EXPECT_DOUBLE_EQ(h.approximate_quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.approximate_quantile(0.5), 4.0);
  EXPECT_DOUBLE_EQ(h.approximate_quantile(1.0), 4.0);
  // The overflow bucket represents values by its lower edge in the mean.
  EXPECT_DOUBLE_EQ(h.approximate_mean(), 3.0);
}

TEST(StreamingStat, MergeManyPartitionsMatchesSinglePass) {
  std::vector<double> xs;
  for (int i = 0; i < 101; ++i) xs.push_back(std::cos(i) * 50.0 + i * 0.25);
  StreamingStat reference;
  std::array<StreamingStat, 4> shards;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    reference.add(xs[i]);
    shards[i % 4].add(xs[i]);
  }
  StreamingStat merged;  // also covers merging into an empty stat
  for (const StreamingStat& s : shards) merged.merge(s);
  EXPECT_EQ(merged.count(), reference.count());
  EXPECT_NEAR(merged.sum(), reference.sum(), 1e-9);
  EXPECT_NEAR(merged.mean(), reference.mean(), 1e-10);
  EXPECT_NEAR(merged.stddev(), reference.stddev(), 1e-10);
  EXPECT_DOUBLE_EQ(merged.min(), reference.min());
  EXPECT_DOUBLE_EQ(merged.max(), reference.max());
}

}  // namespace
}  // namespace msim
