#include "common/table.hpp"

#include <sstream>

#include <gtest/gtest.h>

namespace msim {
namespace {

TEST(TextTable, AsciiAlignsColumns) {
  TextTable t({"name", "value"});
  t.begin_row();
  t.add_cell("short");
  t.add_cell(std::uint64_t{1});
  t.begin_row();
  t.add_cell("much-longer-name");
  t.add_cell(std::uint64_t{22});
  const std::string out = t.to_ascii();
  // Every line has the same length when aligned.
  std::istringstream in(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(in, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << out;
  }
  EXPECT_NE(out.find("much-longer-name"), std::string::npos);
}

TEST(TextTable, DoubleFormattingRespectsPrecision) {
  TextTable t({"x"});
  t.begin_row();
  t.add_cell(3.14159, 2);
  EXPECT_NE(t.to_csv().find("3.14"), std::string::npos);
  EXPECT_EQ(t.to_csv().find("3.142"), std::string::npos);
}

TEST(TextTable, CsvEscapesSpecialCharacters) {
  TextTable t({"a", "b"});
  t.begin_row();
  t.add_cell("has,comma");
  t.add_cell("has\"quote");
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(TextTable, CsvHasHeaderAndRows) {
  TextTable t({"h1", "h2"});
  t.begin_row();
  t.add_cell(1);
  t.add_cell(2);
  EXPECT_EQ(t.to_csv(), "h1,h2\n1,2\n");
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_EQ(t.column_count(), 2u);
}

TEST(TextTable, PrintEmitsTitleTableAndCsv) {
  TextTable t({"c"});
  t.begin_row();
  t.add_cell("v");
  std::ostringstream os;
  t.print(os, "my title");
  const std::string out = os.str();
  EXPECT_NE(out.find("== my title =="), std::string::npos);
  EXPECT_NE(out.find("# CSV"), std::string::npos);
}

TEST(FormatPercent, SignedWithPrecision) {
  EXPECT_EQ(format_percent(0.152), "+15.2%");
  EXPECT_EQ(format_percent(-0.04), "-4.0%");
  EXPECT_EQ(format_percent(0.0), "+0.0%");
  EXPECT_EQ(format_percent(0.1234, 2), "+12.34%");
}

}  // namespace
}  // namespace msim
