#include "common/rng.hpp"

#include <array>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace msim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(1234), b(1234);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(42);
  const std::uint64_t first = a.next_u64();
  a.next_u64();
  a.reseed(42);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBuckets = 8;
  constexpr int kSamples = 80000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.next_below(kBuckets)];
  }
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, expected * 0.08);
  }
}

TEST(Rng, NextInInclusiveRange) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(17);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(Rng, ChanceFrequencyMatchesProbability) {
  Rng rng(23);
  int hits = 0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.015);
}

TEST(Rng, GeometricMeanMatchesTheory) {
  Rng rng(29);
  for (double p : {0.2, 0.5, 0.8}) {
    double sum = 0.0;
    constexpr int kSamples = 50000;
    for (int i = 0; i < kSamples; ++i) {
      sum += static_cast<double>(rng.next_geometric(p));
    }
    const double expected = (1.0 - p) / p;
    EXPECT_NEAR(sum / kSamples, expected, expected * 0.08 + 0.02) << "p=" << p;
  }
}

TEST(Rng, GeometricWithPOneIsZero) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_geometric(1.0), 0u);
}

TEST(Rng, NextIndexFollowsCumulativeWeights) {
  Rng rng(37);
  const std::array<double, 3> cum{1.0, 1.5, 2.0};  // weights 1.0, 0.5, 0.5
  std::array<int, 3> counts{};
  constexpr int kSamples = 60000;
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.next_index({cum.data(), cum.size()})];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(kSamples), 0.50, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(kSamples), 0.25, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(kSamples), 0.25, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.split();
  // The child must differ from a fresh continuation of the parent.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(43), b(43);
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ca.next_u64(), cb.next_u64());
  }
}

TEST(CumulativeFromWeights, BuildsRunningSum) {
  const std::array<double, 3> w{2.0, 1.0, 1.0};
  const auto cum = cumulative_from_weights({w.data(), w.size()});
  EXPECT_DOUBLE_EQ(cum[0], 2.0);
  EXPECT_DOUBLE_EQ(cum[1], 3.0);
  EXPECT_DOUBLE_EQ(cum[2], 4.0);
  // Padding keeps the tail flat.
  EXPECT_DOUBLE_EQ(cum[7], 4.0);
}

}  // namespace
}  // namespace msim
