#include "trace/mixes.hpp"

#include <set>
#include <stdexcept>

#include <gtest/gtest.h>

#include "trace/profile.hpp"

namespace msim::trace {
namespace {

TEST(Mixes, TwelvePerThreadCount) {
  EXPECT_EQ(mixes_for(2).size(), 12u);
  EXPECT_EQ(mixes_for(3).size(), 12u);
  EXPECT_EQ(mixes_for(4).size(), 12u);
  EXPECT_EQ(all_mixes().size(), 36u);
}

TEST(Mixes, InvalidThreadCountThrows) {
  EXPECT_THROW((void)mixes_for(1), std::invalid_argument);
  EXPECT_THROW((void)mixes_for(5), std::invalid_argument);
}

TEST(Mixes, ThreadCountsMatchBenchmarkLists) {
  for (const WorkloadMix& mix : all_mixes()) {
    EXPECT_EQ(mix.threads().size(), mix.thread_count);
    for (const auto bench : mix.threads()) {
      EXPECT_FALSE(bench.empty()) << mix.name;
    }
  }
}

TEST(Mixes, EveryBenchmarkNameResolvesToAProfile) {
  for (const WorkloadMix& mix : all_mixes()) {
    for (const auto bench : mix.threads()) {
      EXPECT_TRUE(find_profile(bench).has_value())
          << mix.name << " references unknown benchmark " << bench;
    }
  }
}

TEST(Mixes, NamesAreUnique) {
  std::set<std::string_view> names;
  for (const WorkloadMix& mix : all_mixes()) names.insert(mix.name);
  EXPECT_EQ(names.size(), all_mixes().size());
}

TEST(Mixes, LookupByName) {
  const WorkloadMix& mix = mix_or_throw("4T-mix5");
  EXPECT_EQ(mix.thread_count, 4u);
  EXPECT_EQ(mix.benchmarks[0], "facerec");
  EXPECT_THROW((void)mix_or_throw("bogus"), std::invalid_argument);
}

// Spot-check exact composition against the paper's tables.
TEST(Mixes, PaperTable3Composition2T) {
  EXPECT_EQ(mix_or_throw("2T-mix1").benchmarks[0], "equake");
  EXPECT_EQ(mix_or_throw("2T-mix1").benchmarks[1], "lucas");
  EXPECT_EQ(mix_or_throw("2T-mix7").benchmarks[0], "parser");
  EXPECT_EQ(mix_or_throw("2T-mix7").benchmarks[1], "vortex");
  EXPECT_EQ(mix_or_throw("2T-mix12").benchmarks[0], "ammp");
  EXPECT_EQ(mix_or_throw("2T-mix12").benchmarks[1], "gzip");
}

TEST(Mixes, PaperTable4Composition3T) {
  const WorkloadMix& m9 = mix_or_throw("3T-mix9");
  EXPECT_EQ(m9.benchmarks[0], "art");
  EXPECT_EQ(m9.benchmarks[1], "lucas");
  EXPECT_EQ(m9.benchmarks[2], "galgel");
}

TEST(Mixes, PaperTable2Composition4T) {
  const WorkloadMix& m1 = mix_or_throw("4T-mix1");
  EXPECT_EQ(m1.benchmarks[0], "mgrid");
  EXPECT_EQ(m1.benchmarks[1], "equake");
  EXPECT_EQ(m1.benchmarks[2], "art");
  EXPECT_EQ(m1.benchmarks[3], "lucas");
  const WorkloadMix& m11 = mix_or_throw("4T-mix11");
  EXPECT_EQ(m11.benchmarks[0], "gzip");
  EXPECT_EQ(m11.benchmarks[3], "apsi");
}

TEST(Mixes, ClassifiedCompositionExamples) {
  // Table 3's "1 LOW + 1 HIGH" pairs.
  EXPECT_EQ(describe_mix(mix_or_throw("2T-mix7")), "1 LOW + 1 HIGH");
  EXPECT_EQ(describe_mix(mix_or_throw("2T-mix8")), "1 LOW + 1 HIGH");
  // Table 3's "1 LOW + 1 MED" pairs.
  EXPECT_EQ(describe_mix(mix_or_throw("2T-mix9")), "1 LOW + 1 MED");
  EXPECT_EQ(describe_mix(mix_or_throw("2T-mix10")), "1 LOW + 1 MED");
  // Table 3's "1 MED + 1 HIGH" pairs.
  EXPECT_EQ(describe_mix(mix_or_throw("2T-mix11")), "1 MED + 1 HIGH");
  EXPECT_EQ(describe_mix(mix_or_throw("2T-mix12")), "1 MED + 1 HIGH");
  // Pure-LOW pairs.
  EXPECT_EQ(describe_mix(mix_or_throw("2T-mix1")), "2 LOW");
  EXPECT_EQ(describe_mix(mix_or_throw("2T-mix2")), "2 LOW");
}

}  // namespace
}  // namespace msim::trace
