// Tests for the robustness subsystem (src/robust/): fault injection,
// deadlock-recovery paths under injected pressure, the cycle-level
// invariant checker, the simulator hang watchdog with its diagnostic
// bundle, crash-isolating sweeps, and configuration validation.
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "robust/diagnostic.hpp"
#include "robust/fault.hpp"
#include "robust/invariant.hpp"
#include "sim/experiment.hpp"
#include "sim/run.hpp"
#include "smt/machine_config.hpp"
#include "smt/pipeline.hpp"
#include "trace/mixes.hpp"
#include "trace/profile.hpp"

namespace msim {
namespace {

// ---- check-handler semantics (common/check.hpp) ---------------------------

TEST(CheckHandler, ScopedCheckThrowConvertsFailuresToExceptions) {
  const ScopedCheckThrow guard;
  EXPECT_THROW(detail::check_failed("1 == 2", "test_robust.cpp", 1), CheckError);
  try {
    detail::check_failed("x > 0", "some_file.cpp", 42);
    FAIL() << "check_failed returned";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("x > 0"), std::string::npos);
    EXPECT_NE(what.find("some_file.cpp:42"), std::string::npos);
  }
}

TEST(CheckHandler, ScopedGuardRestoresPreviousHandler) {
  ASSERT_EQ(set_check_handler(nullptr), nullptr);  // default: abort path
  {
    const ScopedCheckThrow guard;
    // Install-over: the guard owns the slot for its lifetime.
    EXPECT_THROW(detail::check_failed("a", "f", 1), CheckError);
  }
  // Restored to the abort path (nullptr), observable via set/get.
  EXPECT_EQ(set_check_handler(nullptr), nullptr);
}

TEST(CheckHandler, MsimCheckMacroRoutesThroughHandler) {
  const ScopedCheckThrow guard;
  const int three = 3;
  EXPECT_THROW(MSIM_CHECK(three == 4), CheckError);
  EXPECT_NO_THROW(MSIM_CHECK(three == 3));
}

// ---- fault plans -----------------------------------------------------------

TEST(FaultPlan, RandomPlansAreDeterministicPerIndex) {
  const robust::FaultPlan a = robust::FaultPlan::random(7, 3, 0.5);
  const robust::FaultPlan b = robust::FaultPlan::random(7, 3, 0.5);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.window, b.window);
  EXPECT_DOUBLE_EQ(a.ndi_storm_p, b.ndi_storm_p);
  EXPECT_DOUBLE_EQ(a.iq_exhaust_p, b.iq_exhaust_p);

  const robust::FaultPlan c = robust::FaultPlan::random(7, 4, 0.5);
  EXPECT_NE(a.seed, c.seed);
  // Randomized resilience plans never include sabotage faults.
  EXPECT_FALSE(a.sabotage());
  EXPECT_FALSE(c.sabotage());
}

TEST(FaultPlan, IntensityScalesProbabilities) {
  const robust::FaultPlan weak = robust::FaultPlan::random(7, 3, 0.1);
  const robust::FaultPlan strong = robust::FaultPlan::random(7, 3, 1.0);
  EXPECT_LT(weak.ndi_storm_p, strong.ndi_storm_p);
  EXPECT_GE(weak.ndi_storm_p, 0.0);
  EXPECT_LE(strong.ndi_storm_p, 1.0);
}

TEST(FaultPlan, TargetStreamGatesSessions) {
  robust::FaultPlan plan;
  plan.ndi_storm_p = 1.0;
  plan.target_stream = 1234;
  EXPECT_TRUE(plan.applies_to(1234));
  EXPECT_FALSE(plan.applies_to(1235));

  const robust::FaultInjector injector(plan);
  EXPECT_NE(injector.session(1234), nullptr);
  EXPECT_EQ(injector.session(1235), nullptr);

  robust::FaultPlan open = plan;
  open.target_stream = 0;  // applies to every run
  const robust::FaultInjector open_injector(open);
  EXPECT_NE(open_injector.session(99), nullptr);
}

TEST(FaultPlan, SessionsAreStatelessAndRepeatable) {
  robust::FaultPlan plan;
  plan.seed = 42;
  plan.ndi_storm_p = 0.5;
  plan.latency_p = 0.5;
  plan.latency_max = 8;
  const robust::FaultInjector injector(plan);
  const auto s1 = injector.session(0);
  const auto s2 = injector.session(0);
  ASSERT_NE(s1, nullptr);
  for (Cycle now = 0; now < 512; ++now) {
    EXPECT_EQ(s1->force_ndi(0, now, now), s2->force_ndi(0, now, now));
    EXPECT_EQ(s1->extra_issue_latency(1, now, now),
              s2->extra_issue_latency(1, now, now));
  }
}

// ---- deadlock recovery under injected pressure -----------------------------

sim::RunConfig faulted_config(core::DeadlockMode deadlock) {
  sim::RunConfig cfg;
  cfg.benchmarks = {"gzip", "equake"};
  cfg.kind = core::SchedulerKind::kTwoOpBlockOoo;
  cfg.deadlock = deadlock;
  cfg.watchdog_timeout = 200;
  cfg.warmup = 1000;
  cfg.horizon = 6000;
  cfg.verify = true;
  cfg.hang_cycles = 50'000;
  return cfg;
}

TEST(DeadlockRecovery, DabRescuesThroughForcedIqExhaustion) {
  robust::FaultPlan plan;
  plan.seed = 9;
  plan.iq_exhaust_p = 0.6;  // the IQ pretends full in most windows
  plan.ndi_storm_p = 0.4;
  plan.window = 32;
  const robust::FaultInjector injector(plan);
  sim::RunConfig cfg = faulted_config(core::DeadlockMode::kAvoidanceBuffer);
  cfg.faults = &injector;
  const sim::RunResult r = sim::run_simulation(cfg);  // must not hang or abort
  EXPECT_GT(r.dispatch.fault_iq_denials, 0u);
  EXPECT_GT(r.dispatch.dab_inserts, 0u);  // the DAB actually rescued
  EXPECT_GT(r.throughput_ipc, 0.0);
}

TEST(DeadlockRecovery, WatchdogFlushReplayRestoresProgress) {
  robust::FaultPlan plan;
  plan.seed = 9;
  plan.ndi_storm_p = 0.8;  // storms that deadlock OOO dispatch without a DAB
  plan.iq_exhaust_p = 0.3;
  plan.window = 64;
  const robust::FaultInjector injector(plan);
  sim::RunConfig cfg = faulted_config(core::DeadlockMode::kWatchdog);
  cfg.faults = &injector;
  const sim::RunResult r = sim::run_simulation(cfg);
  EXPECT_GT(r.dispatch.watchdog_flushes, 0u);  // it fired...
  std::uint64_t committed = 0;
  for (const std::uint64_t c : r.per_thread_committed) committed += c;
  EXPECT_GE(committed, cfg.horizon);  // ...and the machine still got there
}

TEST(DeadlockRecovery, LatencyPerturbationIsHarmless) {
  robust::FaultPlan plan;
  plan.seed = 11;
  plan.latency_p = 0.5;
  plan.latency_max = 24;
  plan.rob_exhaust_p = 0.2;
  plan.lsq_exhaust_p = 0.2;
  const robust::FaultInjector injector(plan);
  sim::RunConfig cfg = faulted_config(core::DeadlockMode::kAvoidanceBuffer);
  cfg.faults = &injector;
  const sim::RunResult r = sim::run_simulation(cfg);
  EXPECT_GT(r.pipeline.fault_extra_latency_cycles, 0u);
  EXPECT_GT(r.pipeline.fault_rob_denials, 0u);
  EXPECT_GT(r.pipeline.fault_lsq_denials, 0u);
  EXPECT_GT(r.throughput_ipc, 0.0);
}

TEST(DeadlockRecovery, FaultedRunsAreDeterministic) {
  robust::FaultPlan plan;
  plan.seed = 13;
  plan.ndi_storm_p = 0.5;
  plan.iq_exhaust_p = 0.3;
  plan.latency_p = 0.2;
  plan.latency_max = 8;
  const robust::FaultInjector injector(plan);
  sim::RunConfig cfg = faulted_config(core::DeadlockMode::kWatchdog);
  cfg.faults = &injector;
  const sim::RunResult a = sim::run_simulation(cfg);
  const sim::RunResult b = sim::run_simulation(cfg);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.per_thread_committed, b.per_thread_committed);
  EXPECT_EQ(a.dispatch.fault_forced_ndis, b.dispatch.fault_forced_ndis);
}

// ---- invariant checker -----------------------------------------------------

TEST(InvariantChecker, CleanRunsPassUnderEveryScheduler) {
  for (const core::SchedulerKind kind :
       {core::SchedulerKind::kTraditional, core::SchedulerKind::kTwoOpBlock,
        core::SchedulerKind::kTwoOpBlockOoo,
        core::SchedulerKind::kTagElimination}) {
    sim::RunConfig cfg;
    cfg.benchmarks = {"gzip", "equake"};
    cfg.kind = kind;
    cfg.warmup = 500;
    cfg.horizon = 4000;
    cfg.verify = true;
    EXPECT_NO_THROW((void)sim::run_simulation(cfg))
        << core::scheduler_kind_name(kind);
  }
}

TEST(InvariantChecker, VerifiedRunMatchesUnverifiedRun) {
  sim::RunConfig cfg = faulted_config(core::DeadlockMode::kAvoidanceBuffer);
  cfg.verify = false;
  const sim::RunResult plain = sim::run_simulation(cfg);
  cfg.verify = true;
  const sim::RunResult checked = sim::run_simulation(cfg);
  EXPECT_EQ(plain.cycles, checked.cycles);
  EXPECT_EQ(plain.per_thread_committed, checked.per_thread_committed);
}

TEST(InvariantChecker, CatchesDroppedDispatches) {
  robust::FaultPlan plan;
  plan.seed = 3;
  plan.drop_dispatch_p = 0.05;  // sabotage: instructions silently vanish
  const robust::FaultInjector injector(plan);
  sim::RunConfig cfg = faulted_config(core::DeadlockMode::kAvoidanceBuffer);
  cfg.faults = &injector;
  cfg.hang_cycles = 3000;  // a leak can also starve commit; cap the wait
  try {
    (void)sim::run_simulation(cfg);
    FAIL() << "dropped dispatches went undetected";
  } catch (const robust::SimulationAborted& e) {
    EXPECT_FALSE(e.bundle().empty());
    EXPECT_NO_THROW((void)JsonValue::parse(e.bundle()));
  }
}

// ---- hang watchdog + diagnostic bundle -------------------------------------

TEST(HangWatchdog, CommitBlockadeAbortsWithParseableBundle) {
  robust::FaultPlan plan;
  plan.commit_block_from = 0;
  const robust::FaultInjector injector(plan);
  sim::RunConfig cfg = faulted_config(core::DeadlockMode::kAvoidanceBuffer);
  cfg.verify = false;
  cfg.faults = &injector;
  cfg.hang_cycles = 2000;
  try {
    (void)sim::run_simulation(cfg);
    FAIL() << "commit blockade went undetected";
  } catch (const robust::SimulationAborted& e) {
    EXPECT_NE(std::string(e.what()).find("hang watchdog"), std::string::npos);
    const JsonValue doc = JsonValue::parse(e.bundle());
    EXPECT_EQ(doc.at("report").as_string(), "msim-diagnostic-bundle");
    EXPECT_GE(doc.at("cycle").as_number(), 2000.0);
    EXPECT_NE(doc.at("reason").as_string().find("no thread committed"),
              std::string::npos);
    // Occupancy snapshot: one record per hardware thread.
    const auto& threads = doc.at("occupancy").at("threads").as_array();
    ASSERT_EQ(threads.size(), 2u);
    EXPECT_TRUE(threads[0].contains("rob"));
    EXPECT_TRUE(threads[0].contains("block_reason"));
    EXPECT_TRUE(doc.at("config").contains("scheduler_kind"));
    EXPECT_TRUE(doc.contains("stats"));
  }
}

TEST(HangWatchdog, ZeroDisablesIt) {
  // hang_cycles=0 turns the watchdog off; max_cycles then truncates the run.
  robust::FaultPlan plan;
  plan.commit_block_from = 0;
  const robust::FaultInjector injector(plan);
  sim::RunConfig cfg = faulted_config(core::DeadlockMode::kAvoidanceBuffer);
  cfg.verify = false;
  cfg.faults = &injector;
  cfg.hang_cycles = 0;
  cfg.max_cycles = 3000;
  const sim::RunResult r = sim::run_simulation(cfg);
  EXPECT_TRUE(r.truncated);
}

TEST(HangWatchdog, DiagnosticBundleIncludesTraceTailWhenTracing) {
  robust::FaultPlan plan;
  plan.commit_block_from = 0;
  const robust::FaultInjector injector(plan);
  sim::RunConfig cfg = faulted_config(core::DeadlockMode::kAvoidanceBuffer);
  cfg.verify = false;
  cfg.faults = &injector;
  cfg.hang_cycles = 2000;
  cfg.trace_capacity = 1024;
  try {
    (void)sim::run_simulation(cfg);
    FAIL() << "commit blockade went undetected";
  } catch (const robust::SimulationAborted& e) {
    const JsonValue doc = JsonValue::parse(e.bundle());
    ASSERT_TRUE(doc.contains("trace_tail"));
    EXPECT_GT(doc.at("trace_tail").as_array().size(), 0u);
    EXPECT_LE(doc.at("trace_tail").as_array().size(), 256u);
  }
}

// ---- crash-isolating sweeps ------------------------------------------------

sim::SweepRequest small_sweep() {
  sim::SweepRequest req;
  req.thread_count = 2;
  req.kinds = {core::SchedulerKind::kTraditional,
               core::SchedulerKind::kTwoOpBlockOoo};
  req.iq_sizes = {32};
  req.base.warmup = 500;
  req.base.horizon = 3000;
  req.base.hang_cycles = 2000;
  return req;
}

TEST(CrashIsolation, SweepSurvivesOnePoisonedCell) {
  sim::SweepRequest req = small_sweep();

  // Reference: fault-free serial sweep.
  sim::BaselineCache clean_baselines(req.base);
  const auto clean = run_sweep(req, clean_baselines);
  ASSERT_TRUE(sim::sweep_failures(clean).empty());

  // Poison the (first mix, iq=32) stream — shared by both kinds.
  const std::string victim(trace::mixes_for(2).front().name);
  robust::FaultPlan plan;
  plan.commit_block_from = 0;
  plan.target_stream = derive_stream_seed(req.base.seed, "mix:" + victim, 32);
  const robust::FaultInjector injector(plan);
  req.base.faults = &injector;
  req.retries = 1;
  sim::BaselineCache baselines(req.base);
  const auto cells = run_sweep(req, baselines);

  const auto failed = sim::sweep_failures(cells);
  ASSERT_EQ(failed.size(), 2u);  // one per scheduler kind
  for (const sim::FailedCell& f : failed) {
    EXPECT_EQ(f.mix_name, victim);
    EXPECT_EQ(f.attempts, 2u);  // original + one retry
    EXPECT_NE(f.error.find("hang watchdog"), std::string::npos) << f.error;
  }

  // Survivors are bit-identical to the fault-free sweep.
  ASSERT_EQ(cells.size(), clean.size());
  unsigned survivors = 0;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    ASSERT_EQ(cells[c].mixes.size(), clean[c].mixes.size());
    for (std::size_t m = 0; m < cells[c].mixes.size(); ++m) {
      if (!cells[c].mixes[m].ok) continue;
      ++survivors;
      EXPECT_EQ(cells[c].mixes[m].raw.cycles, clean[c].mixes[m].raw.cycles);
      EXPECT_DOUBLE_EQ(cells[c].mixes[m].throughput_ipc,
                       clean[c].mixes[m].throughput_ipc);
      EXPECT_DOUBLE_EQ(cells[c].mixes[m].fairness, clean[c].mixes[m].fairness);
    }
  }
  EXPECT_GT(survivors, 0u);

  // Aggregates exclude the victim but stay well-defined.
  for (const sim::SweepCell& cell : cells) {
    EXPECT_GT(cell.hmean_ipc, 0.0);
    EXPECT_GT(cell.ipc_speedup_vs_trad, 0.0);
  }
}

TEST(CrashIsolation, ParallelIsolatedSweepMatchesSerial) {
  sim::SweepRequest req = small_sweep();
  const std::string victim(trace::mixes_for(2).front().name);
  robust::FaultPlan plan;
  plan.commit_block_from = 0;
  plan.target_stream = derive_stream_seed(req.base.seed, "mix:" + victim, 32);
  const robust::FaultInjector injector(plan);
  req.base.faults = &injector;

  sim::BaselineCache serial_baselines(req.base);
  req.jobs = 1;
  const auto serial = run_sweep(req, serial_baselines);
  sim::BaselineCache parallel_baselines(req.base);
  req.jobs = 4;
  const auto parallel = run_sweep(req, parallel_baselines);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t c = 0; c < serial.size(); ++c) {
    ASSERT_EQ(serial[c].mixes.size(), parallel[c].mixes.size());
    for (std::size_t m = 0; m < serial[c].mixes.size(); ++m) {
      EXPECT_EQ(serial[c].mixes[m].ok, parallel[c].mixes[m].ok);
      EXPECT_EQ(serial[c].mixes[m].raw.cycles, parallel[c].mixes[m].raw.cycles);
      EXPECT_DOUBLE_EQ(serial[c].mixes[m].throughput_ipc,
                       parallel[c].mixes[m].throughput_ipc);
    }
  }
}

TEST(CrashIsolation, IsolationOffPropagatesTheFailure) {
  sim::SweepRequest req = small_sweep();
  const std::string victim(trace::mixes_for(2).front().name);
  robust::FaultPlan plan;
  plan.commit_block_from = 0;
  plan.target_stream = derive_stream_seed(req.base.seed, "mix:" + victim, 32);
  const robust::FaultInjector injector(plan);
  req.base.faults = &injector;
  req.isolate_failures = false;
  sim::BaselineCache baselines(req.base);
  EXPECT_THROW((void)run_sweep(req, baselines), robust::SimulationAborted);
}

// ---- configuration validation ----------------------------------------------

TEST(Validation, RejectsEmptyBenchmarks) {
  sim::RunConfig cfg;
  cfg.benchmarks.clear();
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  EXPECT_THROW((void)sim::run_simulation(cfg), std::invalid_argument);
}

TEST(Validation, RejectsZeroHorizon) {
  sim::RunConfig cfg;
  cfg.benchmarks = {"gcc"};
  cfg.horizon = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Validation, RejectsUnarmableWatchdog) {
  sim::RunConfig cfg;
  cfg.benchmarks = {"gcc", "gzip"};
  cfg.kind = core::SchedulerKind::kTwoOpBlockOoo;
  cfg.deadlock = core::DeadlockMode::kWatchdog;
  cfg.watchdog_timeout = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Validation, RejectsHangThresholdBelowWatchdogTimeout) {
  sim::RunConfig cfg;
  cfg.benchmarks = {"gcc"};
  cfg.hang_cycles = 100;  // would fire before the scheduler watchdog could act
  cfg.watchdog_timeout = 450;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Validation, RejectsStructurallyBrokenMachine) {
  smt::MachineConfig mc;
  mc.thread_count = 2;
  mc.int_phys_regs = 48;  // < 2 threads x 32 architectural registers
  EXPECT_THROW(mc.validate(), std::invalid_argument);

  smt::MachineConfig zero_iq;
  zero_iq.thread_count = 1;
  zero_iq.scheduler.iq_entries = 0;
  EXPECT_THROW(zero_iq.validate(), std::invalid_argument);

  smt::MachineConfig fine;
  fine.thread_count = 2;
  EXPECT_NO_THROW(fine.validate());
}

TEST(Validation, ErrorsAreActionable) {
  sim::RunConfig cfg;
  try {
    cfg.validate();
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("benchmarks="), std::string::npos);
  }
}

// ---- stats plumbing --------------------------------------------------------

TEST(RobustStats, FaultCountersAppearInRegistryAndResetCleanly) {
  robust::FaultPlan plan;
  plan.seed = 5;
  plan.ndi_storm_p = 0.5;
  plan.iq_exhaust_p = 0.3;
  plan.latency_p = 0.3;
  plan.latency_max = 4;
  const robust::FaultInjector injector(plan);
  sim::RunConfig cfg = faulted_config(core::DeadlockMode::kAvoidanceBuffer);
  cfg.faults = &injector;
  const sim::RunResult r = sim::run_simulation(cfg);

  bool found_forced = false, found_latency = false;
  for (const obs::MetricSnapshot& m : r.metrics) {
    if (m.name == "scheduler.dispatch.fault_forced_ndis") {
      found_forced = true;
      EXPECT_DOUBLE_EQ(m.value,
                       static_cast<double>(r.dispatch.fault_forced_ndis));
      EXPECT_GT(m.value, 0.0);
    }
    if (m.name == "pipeline.fault.extra_latency_cycles") {
      found_latency = true;
      EXPECT_GT(m.value, 0.0);
    }
  }
  EXPECT_TRUE(found_forced);
  EXPECT_TRUE(found_latency);

  // run_simulation resets stats after warm-up: a fault-free measurement
  // window reports zero fault activity even after a faulted warm-up.
  smt::MachineConfig mc = cfg.machine();
  const auto session = injector.session(cfg.seed);
  mc.fault_hooks = session.get();
  std::vector<trace::BenchmarkProfile> profiles;
  for (const std::string& b : cfg.benchmarks) {
    profiles.push_back(trace::profile_or_throw(b));
  }
  smt::Pipeline pipe(mc, profiles, cfg.seed);
  pipe.run(1000, 0);
  EXPECT_GT(pipe.scheduler().dispatch_stats().fault_forced_ndis, 0u);
  pipe.reset_stats();
  EXPECT_EQ(pipe.scheduler().dispatch_stats().fault_forced_ndis, 0u);
  EXPECT_EQ(pipe.scheduler().dispatch_stats().fault_iq_denials, 0u);
  EXPECT_EQ(pipe.stats().fault_extra_latency_cycles, 0u);
  EXPECT_EQ(pipe.stats().fault_rob_denials, 0u);
}

}  // namespace
}  // namespace msim
