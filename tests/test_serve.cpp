// End-to-end coverage of the msim_serve daemon over real TCP sockets: the
// byte-identity contract against the offline engine, every documented
// error status, queue backpressure, cancellation (including mid-sweep with
// a resumable journal), slow/truncated clients, and graceful drain.
// docs/SERVICE.md documents the behaviours exercised here.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/config.hpp"
#include "common/json.hpp"
#include "serve/http.hpp"
#include "serve/ledger.hpp"
#include "serve/server.hpp"
#include "sim/config_build.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/run.hpp"
#include "sim/sampled.hpp"

namespace msim {
namespace {

using serve::ExperimentServer;
using serve::Listener;
using serve::ServerConfig;
using serve::Socket;

struct HttpResult {
  int status = 0;
  std::string body;  ///< bytes after the blank line (raw for chunked)
  std::string raw;
};

/// One request/response exchange.  Sends Connection: close and reads to
/// EOF, so `body` is complete for both fixed and chunked responses.
HttpResult http(std::uint16_t port, const std::string& method,
                const std::string& target, const std::string& body = "") {
  Socket sock = Listener::connect("127.0.0.1", port, /*timeout_ms=*/5000);
  EXPECT_TRUE(sock.valid());
  std::string req = method + " " + target + " HTTP/1.1\r\n";
  req += "Host: localhost\r\nConnection: close\r\n";
  if (!body.empty()) {
    req += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  req += "\r\n" + body;
  EXPECT_TRUE(sock.write_all(req, 5000));

  HttpResult out;
  // Generous overall budget: jobs are tiny but CI machines are slow.
  for (int spins = 0; spins < 600; ++spins) {
    const serve::IoStatus status = sock.read_some(out.raw, 65536, 200);
    if (status == serve::IoStatus::kEof) break;
    if (status == serve::IoStatus::kError) break;
  }
  if (out.raw.size() > 12) out.status = std::stoi(out.raw.substr(9, 3));
  const std::size_t split = out.raw.find("\r\n\r\n");
  if (split != std::string::npos) out.body = out.raw.substr(split + 4);
  return out;
}

std::unique_ptr<ExperimentServer> start_server(ServerConfig config = {}) {
  auto server = std::make_unique<ExperimentServer>(config);
  server->start();
  return server;
}

/// Submits {"config": <config_json>} and returns the job id.
std::uint64_t submit(std::uint16_t port, const std::string& config_json,
                     int expected_status = 202) {
  const HttpResult r =
      http(port, "POST", "/v1/jobs", "{\"config\":" + config_json + "}");
  EXPECT_EQ(r.status, expected_status) << r.body;
  if (r.status != 202) return 0;
  return static_cast<std::uint64_t>(
      JsonValue::parse(r.body).at("id").as_number());
}

JsonValue job_status(std::uint16_t port, std::uint64_t id) {
  const HttpResult r =
      http(port, "GET", "/v1/jobs/" + std::to_string(id));
  EXPECT_EQ(r.status, 200) << r.body;
  return JsonValue::parse(r.body);
}

std::string wait_state(std::uint16_t port, std::uint64_t id,
                       const std::vector<std::string>& terminal) {
  for (int spins = 0; spins < 1200; ++spins) {
    const std::string state =
        job_status(port, id).at("state").as_string();
    for (const std::string& t : terminal) {
      if (state == t) return state;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return "timeout";
}

KvConfig make_kv(
    std::initializer_list<std::pair<const char*, const char*>> pairs) {
  KvConfig kv;
  for (const auto& [k, v] : pairs) kv.set(k, v);
  return kv;
}

/// What msim_cli --stats-json would write for this config.
std::string offline_run_json(const KvConfig& kv) {
  sim::BuiltRun built = sim::build_run_config(kv);
  const sim::RunResult result = sim::run_simulation(built.config);
  std::ostringstream os;
  sim::write_run_json(os, built.config, result);
  return os.str();
}

/// What msim_cli --sweep-json would write, at `jobs` concurrency.
std::string offline_sweep_json(const KvConfig& kv, unsigned jobs,
                               const std::string& journal = "",
                               bool resume = false) {
  sim::BuiltRun built = sim::build_run_config(kv);
  sim::SweepRequest req = sim::build_sweep_request(
      kv, built.config,
      static_cast<unsigned>(kv.get_uint("sweep", 2)), jobs);
  req.journal_path = journal;
  req.resume = resume;
  sim::BaselineCache baselines(built.config);
  const std::vector<sim::SweepCell> cells = sim::run_sweep(req, baselines);
  std::ostringstream os;
  sim::write_sweep_json(os, cells);
  return os.str();
}

std::string temp_dir(const std::string& stem) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       (stem + "-" + std::to_string(::getpid())))
          .string();
  std::filesystem::create_directories(path);
  return path;
}

// A config whose single run takes long enough to cancel but finishes fast
// when left alone is hard to pin down on arbitrary CI machines, so "long"
// jobs here use an enormous horizon and are always cancelled.
constexpr const char* kLongRun =
    R"({"benchmarks":"gcc","warmup":0,"horizon":500000000})";

TEST(Serve, HealthzAndStatsRespond) {
  const auto server = start_server();
  const HttpResult health = http(server->port(), "GET", "/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "{\"ok\":true}\n");

  const HttpResult stats = http(server->port(), "GET", "/v1/stats");
  EXPECT_EQ(stats.status, 200);
  const JsonValue doc = JsonValue::parse(stats.body);
  EXPECT_EQ(doc.at("jobs").at("submitted").as_number(), 0.0);
  EXPECT_FALSE(doc.at("draining").as_bool());
}

TEST(Serve, SingleRunIsByteIdenticalToTheOfflineEngine) {
  const auto server = start_server();
  const std::uint64_t id = submit(
      server->port(),
      R"({"benchmarks":"gcc,gzip","warmup":1000,"horizon":4000,"seed":7})");
  ASSERT_EQ(wait_state(server->port(), id, {"done", "failed"}), "done");

  const HttpResult result =
      http(server->port(), "GET", "/v1/jobs/" + std::to_string(id) + "/result");
  EXPECT_EQ(result.status, 200);
  const std::string offline = offline_run_json(make_kv({{"benchmarks",
                                                         "gcc,gzip"},
                                                        {"warmup", "1000"},
                                                        {"horizon", "4000"},
                                                        {"seed", "7"}}));
  EXPECT_EQ(result.body, offline)
      << "served bytes must match msim_cli --stats-json exactly";
}

TEST(Serve, SweepIsByteIdenticalAtAnyConcurrency) {
  ServerConfig config;
  config.max_inflight = 2;
  const auto server = start_server(config);
  const std::string cfg =
      R"({"sweep":2,"sched":"2op_block_ooo","iq":"32,64",)"
      R"("warmup":200,"horizon":1000,"jobs":2})";
  // Two identical jobs in flight at once: they share one pooled baseline
  // cache and must serve identical bytes.
  const std::uint64_t a = submit(server->port(), cfg);
  const std::uint64_t b = submit(server->port(), cfg);
  ASSERT_EQ(wait_state(server->port(), a, {"done", "failed"}), "done");
  ASSERT_EQ(wait_state(server->port(), b, {"done", "failed"}), "done");

  const std::string ra =
      http(server->port(), "GET", "/v1/jobs/" + std::to_string(a) + "/result")
          .body;
  const std::string rb =
      http(server->port(), "GET", "/v1/jobs/" + std::to_string(b) + "/result")
          .body;
  EXPECT_EQ(ra, rb);

  // The offline engine at a *different* worker count (serial here, jobs=2
  // on the server) produces the same bytes.
  const KvConfig kv = make_kv({{"sweep", "2"},
                               {"sched", "2op_block_ooo"},
                               {"iq", "32,64"},
                               {"warmup", "200"},
                               {"horizon", "1000"},
                               {"jobs", "2"}});
  EXPECT_EQ(ra, offline_sweep_json(kv, /*jobs=*/1));

  const JsonValue stats = JsonValue::parse(
      http(server->port(), "GET", "/v1/stats").body);
  EXPECT_EQ(stats.at("baseline_caches").as_number(), 1.0)
      << "identical configs must share one pooled baseline cache";

  // Events replay after completion: the stream ends with the terminating
  // chunk and contains the sweep lifecycle.
  const HttpResult events =
      http(server->port(), "GET", "/v1/jobs/" + std::to_string(a) + "/events");
  EXPECT_EQ(events.status, 200);
  EXPECT_NE(events.raw.find("Transfer-Encoding: chunked"), std::string::npos);
  EXPECT_NE(events.body.find("sweep_start"), std::string::npos);
  EXPECT_NE(events.body.find("sweep_finish"), std::string::npos);
  EXPECT_GE(events.body.size(), 5u);
  EXPECT_EQ(events.body.substr(events.body.size() - 5), "0\r\n\r\n");
}

TEST(Serve, BadSubmissionsGetActionable400s) {
  const auto server = start_server();
  const auto post = [&](const std::string& body) {
    return http(server->port(), "POST", "/v1/jobs", body);
  };

  HttpResult r = post("{not json");
  EXPECT_EQ(r.status, 400);
  EXPECT_NE(r.body.find("not valid JSON"), std::string::npos);

  r = post("[1,2]");
  EXPECT_EQ(r.status, 400);

  r = post(R"({"priority":1})");
  EXPECT_EQ(r.status, 400);
  EXPECT_NE(r.body.find("config"), std::string::npos);

  r = post(R"({"config":{},"extra":1})");
  EXPECT_EQ(r.status, 400);
  EXPECT_NE(r.body.find("extra"), std::string::npos);

  r = post(R"({"config":{"iqq":64}})");  // unknown knob: named back
  EXPECT_EQ(r.status, 400);
  EXPECT_NE(r.body.find("iqq"), std::string::npos);

  // A server-incompatible CLI knob is rejected with its documented reason.
  r = post(R"({"config":{"stats_json":"/tmp/x.json"}})");
  EXPECT_EQ(r.status, 400);
  EXPECT_NE(r.body.find("/v1/jobs/<id>/result"), std::string::npos);

  r = post(R"({"config":{"sched":"bogus"}})");  // builder's own message
  EXPECT_EQ(r.status, 400);
  EXPECT_NE(r.body.find("bogus"), std::string::npos);

  r = post(R"({"config":{"sweep":7}})");
  EXPECT_EQ(r.status, 400);
  EXPECT_NE(r.body.find("sweep"), std::string::npos);
}

TEST(Serve, RoutingErrorsUseTheRightStatusCodes) {
  const auto server = start_server();
  EXPECT_EQ(http(server->port(), "GET", "/nope").status, 404);
  EXPECT_EQ(http(server->port(), "GET", "/v1/jobs/999").status, 404);
  EXPECT_EQ(http(server->port(), "GET", "/v1/jobs/abc").status, 400);
  EXPECT_EQ(http(server->port(), "DELETE", "/healthz").status, 405);
  EXPECT_EQ(http(server->port(), "GET", "/v1/shutdown").status, 405);
  const HttpResult parse_err = http(server->port(), "BAD REQUEST", "LINE");
  EXPECT_EQ(parse_err.status, 400);
}

TEST(Serve, QueueOverflowRejectsWith429AndResultBeforeDoneIs409) {
  ServerConfig config;
  config.queue_depth = 1;
  config.max_inflight = 1;
  const auto server = start_server(config);

  const std::uint64_t running = submit(server->port(), kLongRun);
  ASSERT_EQ(wait_state(server->port(), running, {"running"}), "running");
  const std::uint64_t queued = submit(server->port(), kLongRun);

  // Queue full: backpressure, not buffering.
  const HttpResult overflow = http(server->port(), "POST", "/v1/jobs",
                                   std::string("{\"config\":") + kLongRun +
                                       "}");
  EXPECT_EQ(overflow.status, 429);
  EXPECT_NE(overflow.body.find("queue"), std::string::npos);

  // A job that has not finished serves 409 from .../result.
  const HttpResult early = http(
      server->port(), "GET", "/v1/jobs/" + std::to_string(queued) + "/result");
  EXPECT_EQ(early.status, 409);
  EXPECT_NE(early.body.find("queued"), std::string::npos);

  // Cancelling the queued job is immediate; the running one is cooperative.
  EXPECT_EQ(http(server->port(), "POST",
                 "/v1/jobs/" + std::to_string(queued) + "/cancel")
                .status,
            200);
  EXPECT_EQ(job_status(server->port(), queued).at("state").as_string(),
            "cancelled");
  EXPECT_EQ(http(server->port(), "POST",
                 "/v1/jobs/" + std::to_string(running) + "/cancel")
                .status,
            200);
  EXPECT_EQ(wait_state(server->port(), running, {"cancelled", "failed"}),
            "cancelled");
  const HttpResult after = http(
      server->port(), "GET",
      "/v1/jobs/" + std::to_string(running) + "/result");
  EXPECT_EQ(after.status, 409);
  EXPECT_NE(after.body.find("cancelled"), std::string::npos);
}

TEST(Serve, CancelMidSweepLeavesTheJournalResumable) {
  const std::string dir = temp_dir("msim-serve-journal");
  ServerConfig config;
  config.journal_dir = dir;
  const auto server = start_server(config);

  // Big enough that cancellation lands mid-grid on any machine.
  const std::string cfg =
      R"({"sweep":2,"iq":"32,48,64","warmup":2000,"horizon":30000})";
  const std::uint64_t id = submit(server->port(), cfg);

  // Wait until at least one cell finished (so the journal has content),
  // then cancel.
  for (int spins = 0; spins < 1200; ++spins) {
    const JsonValue status = job_status(server->port(), id);
    if (status.at("state").as_string() != "queued" &&
        status.at("events").as_number() >= 3.0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_EQ(http(server->port(), "POST",
                 "/v1/jobs/" + std::to_string(id) + "/cancel")
                .status,
            200);
  const std::string state =
      wait_state(server->port(), id, {"cancelled", "done"});

  const std::string journal = dir + "/job" + std::to_string(id) + ".jsonl";
  const KvConfig kv = make_kv({{"sweep", "2"},
                               {"iq", "32,48,64"},
                               {"warmup", "2000"},
                               {"horizon", "30000"}});
  if (state == "cancelled") {
    const JsonValue status = job_status(server->port(), id);
    EXPECT_NE(status.at("error").as_string().find("resumable"),
              std::string::npos);
    ASSERT_TRUE(std::filesystem::exists(journal))
        << "a cancelled sweep must leave its journal behind";
    // Resuming the server-side journal offline completes the grid and
    // produces the same bytes as a fresh offline sweep.
    const std::string resumed =
        offline_sweep_json(kv, /*jobs=*/1, journal, /*resume=*/true);
    EXPECT_EQ(resumed, offline_sweep_json(kv, /*jobs=*/1));
  } else {
    // The grid beat the cancel on a fast machine: the served result must
    // still match the offline engine.
    const std::string served = http(server->port(), "GET",
                                    "/v1/jobs/" + std::to_string(id) +
                                        "/result")
                                   .body;
    EXPECT_EQ(served, offline_sweep_json(kv, /*jobs=*/1));
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(Serve, SlowAndTruncatedClientsCannotPinTheDaemon) {
  ServerConfig config;
  config.io_timeout_ms = 600;
  const auto server = start_server(config);

  // A stalled mid-request client gets 408 once the inactivity budget is
  // spent.
  {
    Socket sock = Listener::connect("127.0.0.1", server->port(), 5000);
    ASSERT_TRUE(sock.valid());
    ASSERT_TRUE(sock.write_all(
        "POST /v1/jobs HTTP/1.1\r\nContent-Length: 60\r\n\r\n{\"conf", 5000));
    std::string raw;
    for (int spins = 0; spins < 50; ++spins) {
      if (sock.read_some(raw, 4096, 200) == serve::IoStatus::kEof) break;
    }
    EXPECT_NE(raw.find("408"), std::string::npos) << raw;
  }

  // A truncated frame (client hangs up mid-request) is dropped silently...
  {
    Socket sock = Listener::connect("127.0.0.1", server->port(), 5000);
    ASSERT_TRUE(sock.valid());
    ASSERT_TRUE(sock.write_all("GET /healthz HT", 5000));
    sock.close();
  }
  // ...and the daemon keeps serving.
  EXPECT_EQ(http(server->port(), "GET", "/healthz").status, 200);
}

// ---------------------------------------------------------------------------
// Durability & recovery (docs/SERVICE.md "Durability & recovery"): the
// crash-recovering job ledger, idempotent resubmission, TTL expiry, the
// readiness endpoint and mode=sampled over the wire.

/// Exactly what msim_cli --sampled-json writes for this config.
std::string offline_sampled_json(const KvConfig& kv) {
  sim::BuiltRun built = sim::build_run_config(kv);
  sim::SampledConfig scfg;
  scfg.region_length = kv.get_uint("region", scfg.region_length);
  scfg.detail_warmup = kv.get_uint("detail_warmup", scfg.detail_warmup);
  scfg.pilot = kv.get_uint("pilot", scfg.pilot);
  scfg.jobs = static_cast<unsigned>(kv.get_uint("jobs", 1));
  const sim::SampledResult r = sim::run_sampled(built.config, scfg);
  std::ostringstream os;
  sim::write_sampled_json(os, built.config, scfg, r);
  return os.str();
}

TEST(Serve, RestartReservesCompletedJobsAndNeverReissuesIds) {
  const std::string dir = temp_dir("msim-serve-restart");
  ServerConfig config;
  config.journal_dir = dir;
  const char* cfg = R"({"benchmarks":"gcc,gzip","warmup":500,"horizon":2000,"seed":3})";

  std::uint64_t id = 0;
  std::string first_bytes;
  {
    const auto server = start_server(config);
    id = submit(server->port(), cfg);
    ASSERT_EQ(wait_state(server->port(), id, {"done", "failed"}), "done");
    first_bytes = http(server->port(), "GET",
                       "/v1/jobs/" + std::to_string(id) + "/result")
                      .body;
    ASSERT_FALSE(first_bytes.empty());
  }  // daemon gone; only the --journal-dir ledger survives

  const auto server = start_server(config);
  // The readiness endpoint reports what the ledger replay found.
  const HttpResult hz = http(server->port(), "GET", "/v1/healthz");
  ASSERT_EQ(hz.status, 200);
  const JsonValue doc = JsonValue::parse(hz.body);
  EXPECT_TRUE(doc.at("ready").as_bool());
  EXPECT_TRUE(doc.at("recovery").at("enabled").as_bool());
  EXPECT_EQ(doc.at("recovery").at("replayed").as_number(), 1.0);
  EXPECT_EQ(doc.at("recovery").at("completed").as_number(), 1.0);
  EXPECT_EQ(doc.at("queue").at("depth").as_number(),
            static_cast<double>(config.queue_depth));

  // The completed job re-serves its stored bytes verbatim...
  const HttpResult again = http(
      server->port(), "GET", "/v1/jobs/" + std::to_string(id) + "/result");
  EXPECT_EQ(again.status, 200);
  EXPECT_EQ(again.body, first_bytes)
      << "a restart must not change a served result by one byte";
  EXPECT_EQ(job_status(server->port(), id).at("state").as_string(), "done");

  // ...and the persisted id counter means the recovered daemon never hands
  // the replayed job's id to a new submission.
  const std::uint64_t fresh = submit(server->port(), cfg);
  EXPECT_GT(fresh, id);

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(Serve, RestartResumesAnInterruptedSweepServerSide) {
  const std::string dir = temp_dir("msim-serve-resume");
  const KvConfig kv = make_kv({{"sweep", "2"},
                               {"iq", "32,48"},
                               {"warmup", "200"},
                               {"horizon", "1000"}});
  const std::string offline = offline_sweep_json(kv, /*jobs=*/1);

  // Fabricate the exact on-disk state a kill -9 mid-sweep leaves behind:
  // a ledger whose job 3 is `accepted`+`running` with no terminal record,
  // and a partial sweep journal holding only the first completed cell.
  const std::string journal = dir + "/job3.jsonl";
  (void)offline_sweep_json(kv, /*jobs=*/1, journal);  // full journal...
  {
    std::ifstream in(journal);
    std::string line, partial;
    for (int kept = 0; kept < 2 && std::getline(in, line); ++kept) {
      partial += line + "\n";  // ...cut to header + first cell
    }
    in.close();
    std::ofstream out(journal, std::ios::trunc);
    out << partial;
  }
  {
    serve::JobLedger ledger(dir);
    serve::Job job;
    job.id = 3;
    job.kv = kv;
    job.is_sweep = true;
    ledger.record_accepted(job);
    ledger.record_running(3);
  }

  ServerConfig config;
  config.journal_dir = dir;
  const auto server = start_server(config);
  const JsonValue hz =
      JsonValue::parse(http(server->port(), "GET", "/v1/healthz").body);
  EXPECT_EQ(hz.at("recovery").at("requeued").as_number(), 1.0);
  EXPECT_EQ(hz.at("recovery").at("resumed_sweeps").as_number(), 1.0);

  // The recovered job finishes server-side -- completed cells replayed
  // from the journal, the rest computed -- and serves bytes cmp-identical
  // to an uninterrupted offline run.
  ASSERT_EQ(wait_state(server->port(), 3, {"done", "failed"}), "done");
  const std::string served =
      http(server->port(), "GET", "/v1/jobs/3/result").body;
  EXPECT_EQ(served, offline);

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(Serve, IdempotentResubmissionDedupesAcrossRestart) {
  const std::string dir = temp_dir("msim-serve-idem");
  ServerConfig config;
  config.journal_dir = dir;
  const std::string body =
      R"({"config":{"benchmarks":"gcc","warmup":100,"horizon":500},)"
      R"("idempotency_key":"grid-7"})";

  std::uint64_t id = 0;
  {
    const auto server = start_server(config);
    const HttpResult first = http(server->port(), "POST", "/v1/jobs", body);
    ASSERT_EQ(first.status, 202) << first.body;
    id = static_cast<std::uint64_t>(
        JsonValue::parse(first.body).at("id").as_number());
    ASSERT_EQ(wait_state(server->port(), id, {"done", "failed"}), "done");

    // Resubmission (e.g. after a dropped connection) dedupes to the
    // existing job -- 200, not 202, and no second execution.
    const HttpResult dup = http(server->port(), "POST", "/v1/jobs", body);
    EXPECT_EQ(dup.status, 200) << dup.body;
    const JsonValue doc = JsonValue::parse(dup.body);
    EXPECT_EQ(doc.at("id").as_number(), static_cast<double>(id));
    EXPECT_TRUE(doc.at("deduplicated").as_bool());
    const JsonValue stats =
        JsonValue::parse(http(server->port(), "GET", "/v1/stats").body);
    EXPECT_EQ(stats.at("jobs").at("submitted").as_number(), 1.0);
  }

  // The key survives the restart through the ledger: resubmitting against
  // the recovered daemon still returns the original job.
  const auto server = start_server(config);
  const HttpResult dup = http(server->port(), "POST", "/v1/jobs", body);
  EXPECT_EQ(dup.status, 200) << dup.body;
  EXPECT_EQ(JsonValue::parse(dup.body).at("id").as_number(),
            static_cast<double>(id));

  // Malformed idempotency keys are rejected up front.
  const HttpResult bad = http(
      server->port(), "POST", "/v1/jobs",
      R"({"config":{"horizon":500},"idempotency_key":""})");
  EXPECT_EQ(bad.status, 400);

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(Serve, TtlExpiresAQueuedJobWithA409Result) {
  ServerConfig config;
  config.max_inflight = 1;
  const auto server = start_server(config);

  // Pin the lone executor, then queue a job that may only wait 100 ms.
  const std::uint64_t running = submit(server->port(), kLongRun);
  ASSERT_EQ(wait_state(server->port(), running, {"running"}), "running");
  const HttpResult queued = http(
      server->port(), "POST", "/v1/jobs",
      std::string(R"({"config":)") + kLongRun + R"(,"ttl_ms":100})");
  ASSERT_EQ(queued.status, 202) << queued.body;
  const auto id = static_cast<std::uint64_t>(
      JsonValue::parse(queued.body).at("id").as_number());

  // Status polling observes the expiry (reads enforce TTLs lazily even
  // while every executor is busy).
  EXPECT_EQ(wait_state(server->port(), id, {"expired"}), "expired");
  const JsonValue status = job_status(server->port(), id);
  EXPECT_NE(status.at("error").as_string().find("ttl_ms"),
            std::string::npos);
  const HttpResult result = http(
      server->port(), "GET", "/v1/jobs/" + std::to_string(id) + "/result");
  EXPECT_EQ(result.status, 409);
  EXPECT_NE(result.body.find("expired"), std::string::npos);
  const JsonValue stats =
      JsonValue::parse(http(server->port(), "GET", "/v1/stats").body);
  EXPECT_EQ(stats.at("jobs").at("expired").as_number(), 1.0);

  // A ttl_ms that is not a positive integer is a 400.
  EXPECT_EQ(http(server->port(), "POST", "/v1/jobs",
                 R"({"config":{"horizon":500},"ttl_ms":0})")
                .status,
            400);

  EXPECT_EQ(http(server->port(), "POST",
                 "/v1/jobs/" + std::to_string(running) + "/cancel")
                .status,
            200);
  (void)wait_state(server->port(), running, {"cancelled", "failed"});
}

TEST(Serve, SampledModeServesCliIdenticalBytes) {
  const auto server = start_server();
  const std::uint64_t id = submit(
      server->port(),
      R"({"mode":"sampled","benchmarks":"gcc,gzip","warmup":0,)"
      R"("horizon":30000,"seed":2,"region":10000,"detail_warmup":10000})");
  ASSERT_EQ(wait_state(server->port(), id, {"done", "failed"}), "done");
  const std::string served =
      http(server->port(), "GET", "/v1/jobs/" + std::to_string(id) + "/result")
          .body;
  const std::string offline = offline_sampled_json(
      make_kv({{"mode", "sampled"},
               {"benchmarks", "gcc,gzip"},
               {"warmup", "0"},
               {"horizon", "30000"},
               {"seed", "2"},
               {"region", "10000"},
               {"detail_warmup", "10000"}}));
  EXPECT_EQ(served, offline)
      << "served bytes must match msim_cli --sampled-json exactly";

  // Sampled-mode knob combinations the engine rejects surface as 400s at
  // submission time, not as failed jobs.
  const HttpResult bad = http(
      server->port(), "POST", "/v1/jobs",
      R"({"config":{"mode":"sampled","sweep":2,"horizon":30000}})");
  EXPECT_EQ(bad.status, 400);
  EXPECT_NE(bad.body.find("sampled"), std::string::npos);
  EXPECT_EQ(http(server->port(), "POST", "/v1/jobs",
                 R"({"config":{"mode":"bogus","horizon":500}})")
                .status,
            400);
}

TEST(Serve, ShutdownDrainsAndRejectsNewWork) {
  const auto server = start_server();
  const std::uint64_t id = submit(
      server->port(), R"({"benchmarks":"gcc","warmup":100,"horizon":500})");

  const HttpResult shutdown = http(server->port(), "POST", "/v1/shutdown");
  EXPECT_EQ(shutdown.status, 200);
  EXPECT_EQ(shutdown.body, "{\"draining\":true}\n");

  // New submissions are refused while draining...
  submit(server->port(),
         R"({"benchmarks":"gcc","warmup":100,"horizon":500})",
         /*expected_status=*/503);

  // ...but the accepted job finishes (or was cancelled while queued) and
  // the drain converges.
  const std::string state =
      wait_state(server->port(), id, {"done", "cancelled", "failed"});
  EXPECT_TRUE(state == "done" || state == "cancelled") << state;
  for (int spins = 0; spins < 100 && !server->finished(); ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(server->finished());
}

}  // namespace
}  // namespace msim
