// Statistical-accuracy and equivalence harness for mode=sampled
// (sim/sampled.hpp, docs/SAMPLING.md).
//
// The accuracy matrix is the headline contract: across six golden
// scheduler/mix configurations and three seeds, the sampled estimates must
// land within 3% (IPC) / 5% (MPKI) of a full exact simulation of the same
// span.  Around it: bit-identical results at any job count, golden region
// selections pinned across seeds (the integer clustering makes them
// build-independent), functional-warm-up state-equivalence properties
// against the detailed front end, interval-telemetry composition, and the
// negative path (faults + verify under sampling must abort with a
// diagnostic naming the failing region, never return a silent estimate).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <initializer_list>
#include <set>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "common/archive.hpp"
#include "mem/cache.hpp"
#include "obs/interval.hpp"
#include "robust/diagnostic.hpp"
#include "robust/fault.hpp"
#include "sim/run.hpp"
#include "sim/sampled.hpp"
#include "smt/pipeline.hpp"
#include "trace/profile.hpp"

namespace {

using namespace msim;

sim::RunConfig golden_config(core::SchedulerKind kind,
                             std::vector<std::string> benchmarks,
                             std::uint64_t seed) {
  sim::RunConfig cfg;
  cfg.benchmarks = std::move(benchmarks);
  cfg.kind = kind;
  cfg.iq_entries = 64;
  cfg.seed = seed;
  cfg.warmup = 0;
  cfg.horizon = 30'000;
  return cfg;
}

sim::SampledConfig golden_sampled() {
  sim::SampledConfig scfg;
  scfg.region_length = 10'000;
  scfg.detail_warmup = 10'000;
  return scfg;
}

double pct_error(double est, double exact) {
  return 100.0 * std::abs(est - exact) / exact;
}

struct ExactBaseline {
  double ipc = 0.0;
  double l1d_mpki = 0.0;
  double l2_mpki = 0.0;
};

ExactBaseline exact_baseline(const sim::RunConfig& cfg) {
  const sim::RunResult r = sim::run_simulation(cfg);
  std::uint64_t committed = 0;
  for (const std::uint64_t c : r.per_thread_committed) committed += c;
  ExactBaseline b;
  b.ipc = r.throughput_ipc;
  b.l1d_mpki = 1000.0 * static_cast<double>(r.memory.l1d.misses) /
               static_cast<double>(committed);
  b.l2_mpki = 1000.0 * static_cast<double>(r.memory.l2.misses) /
              static_cast<double>(committed);
  return b;
}

// ---------------------------------------------------------------------------
// Accuracy matrix: six golden configurations x seeds {1,2,3}.

struct MatrixCase {
  const char* label;
  core::SchedulerKind kind;
  std::vector<std::string> benchmarks;
};

const std::vector<MatrixCase>& matrix_cases() {
  static const std::vector<MatrixCase> kCases = {
      {"2T traditional", core::SchedulerKind::kTraditional, {"gzip", "equake"}},
      {"2T 2op_block_ooo", core::SchedulerKind::kTwoOpBlockOoo,
       {"gzip", "equake"}},
      {"4T traditional", core::SchedulerKind::kTraditional,
       {"gzip", "equake", "gcc", "mesa"}},
      {"4T 2op_block", core::SchedulerKind::kTwoOpBlock,
       {"gzip", "equake", "gcc", "mesa"}},
      {"4T 2op_block_ooo", core::SchedulerKind::kTwoOpBlockOoo,
       {"gzip", "equake", "gcc", "mesa"}},
      {"4T tag_elimination", core::SchedulerKind::kTagElimination,
       {"gzip", "equake", "gcc", "mesa"}},
  };
  return kCases;
}

TEST(SampledAccuracy, GoldenMatrixWithinErrorBounds) {
  for (const MatrixCase& mc : matrix_cases()) {
    for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
      const sim::RunConfig cfg = golden_config(mc.kind, mc.benchmarks, seed);
      const ExactBaseline exact = exact_baseline(cfg);
      const sim::SampledResult est = sim::run_sampled(cfg, golden_sampled());
      const std::string at =
          std::string(mc.label) + " seed " + std::to_string(seed);
      EXPECT_LE(pct_error(est.est_ipc, exact.ipc), 3.0) << at;
      EXPECT_LE(pct_error(est.est_l1d_mpki, exact.l1d_mpki), 5.0) << at;
      EXPECT_LE(pct_error(est.est_l2_mpki, exact.l2_mpki), 5.0) << at;
      // The dispersion band is a phase-spread indicator, not a bound, but
      // it must at least be finite and non-negative.
      EXPECT_GE(est.ipc_ci95, 0.0) << at;
    }
  }
}

// ---------------------------------------------------------------------------
// Determinism: the estimate and its JSON report are bit-identical at any
// job count (fixed region order, fixed aggregation order).

TEST(SampledDeterminism, JobCountDoesNotChangeResults) {
  const sim::RunConfig cfg = golden_config(
      core::SchedulerKind::kTwoOpBlockOoo, {"gzip", "equake", "gcc", "mesa"}, 1);
  sim::SampledConfig serial = golden_sampled();
  serial.jobs = 1;
  sim::SampledConfig parallel = golden_sampled();
  parallel.jobs = 4;

  const sim::SampledResult a = sim::run_sampled(cfg, serial);
  const sim::SampledResult b = sim::run_sampled(cfg, parallel);

  EXPECT_EQ(a.sampled_digest, b.sampled_digest);
  EXPECT_EQ(a.est_ipc, b.est_ipc);  // bit-equal, not approximately
  EXPECT_EQ(a.est_l1d_mpki, b.est_l1d_mpki);
  EXPECT_EQ(a.est_l2_mpki, b.est_l2_mpki);
  EXPECT_EQ(a.est_mispredict_rate, b.est_mispredict_rate);
  EXPECT_EQ(a.regions_detailed, b.regions_detailed);
  ASSERT_EQ(a.regions.size(), b.regions.size());
  for (std::size_t i = 0; i < a.regions.size(); ++i) {
    EXPECT_EQ(a.regions[i].cluster, b.regions[i].cluster) << i;
    EXPECT_EQ(a.regions[i].detailed, b.regions[i].detailed) << i;
    EXPECT_EQ(a.regions[i].digest, b.regions[i].digest) << i;
  }

  std::ostringstream ja, jb;
  sim::write_sampled_json(ja, cfg, serial, a);
  sim::write_sampled_json(jb, cfg, parallel, b);
  EXPECT_EQ(ja.str(), jb.str());
}

// ---------------------------------------------------------------------------
// Golden region selections: the integer feature clustering makes the
// selected representatives a pure function of (config, seed) -- pinned here
// so a drive-by change to features or tolerances shows up as a diff, not as
// silent estimate drift.

std::vector<std::uint64_t> selected_regions(const sim::SampledResult& r) {
  std::vector<std::uint64_t> out;
  for (const sim::SampledRegion& region : r.regions) {
    if (region.detailed) out.push_back(region.index);
  }
  return out;
}

// The pinned representative sets (region indices) for the golden selection
// config below.  Update deliberately -- any change here means the clustering
// features, tolerances or medoid rule changed.
std::vector<std::uint64_t> golden_selection(std::uint64_t seed) {
  switch (seed) {
    case 1: return {0, 20, 35};
    case 2: return {0, 1, 9, 12, 24, 28, 32};
    case 3: return {0, 2, 5, 22};
    default: return {};
  }
}

TEST(SampledGolden, RegionSelectionsPinnedAcrossSeeds) {
  // 40 regions of 5k instructions: past Tolerance::kSmallRun, so the
  // default clustering band applies and genuine merging happens -- the pin
  // covers the production tolerance path, not the small-run one.
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    sim::RunConfig cfg = golden_config(
        core::SchedulerKind::kTwoOpBlockOoo, {"gzip", "equake", "gcc", "mesa"},
        seed);
    cfg.horizon = 200'000;
    sim::SampledConfig scfg;
    scfg.region_length = 5'000;
    scfg.detail_warmup = 5'000;
    const sim::SampledResult r = sim::run_sampled(cfg, scfg);
    EXPECT_EQ(r.regions_total, 40u) << seed;
    EXPECT_EQ(selected_regions(r), golden_selection(seed)) << seed;
  }
}

// ---------------------------------------------------------------------------
// Functional warm-up equivalence: after a functional block sized to a
// detailed run's per-thread fetch counts, the long-lived state a region
// checkpoint inherits matches the detailed run's (see the equivalence
// contract in smt/functional.cpp).

std::vector<std::uint8_t> gshare_bytes(const smt::Pipeline& pipe, ThreadId t) {
  persist::Archive ar = persist::Archive::saver();
  pipe.predictor().gshare(t).save_state(ar);
  return ar.bytes();
}

std::vector<std::uint8_t> btb_bytes(const smt::Pipeline& pipe) {
  persist::Archive ar = persist::Archive::saver();
  pipe.predictor().btb().save_state(ar);
  return ar.bytes();
}

std::vector<std::uint8_t> generator_bytes(const smt::Pipeline& pipe,
                                          ThreadId t) {
  persist::Archive ar = persist::Archive::saver();
  pipe.generator(t).save_state(ar);
  return ar.bytes();
}

smt::MachineConfig machine_for(std::initializer_list<const char*> names) {
  smt::MachineConfig mc;
  mc.thread_count = static_cast<unsigned>(names.size());
  mc.scheduler.kind = core::SchedulerKind::kTwoOpBlockOoo;
  mc.scheduler.iq_entries = 64;
  return mc;
}

std::vector<trace::BenchmarkProfile> profiles_for(
    std::initializer_list<const char*> names) {
  std::vector<trace::BenchmarkProfile> out;
  for (const char* n : names) out.push_back(trace::profile_or_throw(n));
  return out;
}

TEST(FunctionalEquivalence, PerThreadPredictorStateMatchesDetailedRun) {
  const auto names = {"gzip", "equake"};
  const smt::MachineConfig mc = machine_for(names);
  const auto profiles = profiles_for(names);

  smt::Pipeline detailed(mc, profiles, 1);
  detailed.run(8'000);

  smt::Pipeline functional(mc, profiles, 1);
  std::vector<std::uint64_t> targets;
  for (ThreadId t = 0; t < detailed.thread_count(); ++t) {
    targets.push_back(detailed.fetched(t));
  }
  functional.run_functional(
      std::span<const std::uint64_t>(targets.data(), targets.size()));
  // The detailed front end keeps a one-instruction generator lookahead;
  // align the functional generators before comparing their state.
  for (ThreadId t = 0; t < detailed.thread_count(); ++t) {
    if (detailed.has_pending_fetch(t)) functional.prime_fetch_lookahead(t);
  }

  for (ThreadId t = 0; t < detailed.thread_count(); ++t) {
    EXPECT_EQ(gshare_bytes(detailed, t), gshare_bytes(functional, t)) << t;
    EXPECT_EQ(generator_bytes(detailed, t), generator_bytes(functional, t))
        << t;
  }
}

TEST(FunctionalEquivalence, SingleThreadSharedStateMatchesDetailedRun) {
  const auto names = {"gcc"};
  const smt::MachineConfig mc = machine_for(names);
  const auto profiles = profiles_for(names);

  smt::Pipeline detailed(mc, profiles, 1);
  detailed.run(10'000);

  smt::Pipeline functional(mc, profiles, 1);
  functional.run_functional(detailed.fetched(0));
  if (detailed.has_pending_fetch(0)) functional.prime_fetch_lookahead(0);

  // With one thread there is no interleaving freedom: the shared BTB sees
  // the identical update sequence, and the L1I the identical line-access
  // order (so the identical LRU victims and resident set -- timestamps
  // differ, tags cannot).
  EXPECT_EQ(btb_bytes(detailed), btb_bytes(functional));
  EXPECT_EQ(generator_bytes(detailed, 0), generator_bytes(functional, 0));
  EXPECT_EQ(detailed.memory().l1i().resident_lines(),
            functional.memory().l1i().resident_lines());
}

TEST(FunctionalEquivalence, MultiThreadCacheContentsLargelyOverlap) {
  // Across threads the functional pass replays the same per-thread access
  // sequences under a different interleaving, so shared-cache contents
  // match only statistically.  Pin a floor on the overlap: the property
  // that makes functionally-warmed checkpoints usable at all.
  const auto names = {"gzip", "equake", "gcc", "mesa"};
  const smt::MachineConfig mc = machine_for(names);
  const auto profiles = profiles_for(names);

  smt::Pipeline detailed(mc, profiles, 1);
  detailed.run(10'000);

  smt::Pipeline functional(mc, profiles, 1);
  std::vector<std::uint64_t> targets;
  for (ThreadId t = 0; t < detailed.thread_count(); ++t) {
    targets.push_back(detailed.fetched(t));
  }
  functional.run_functional(
      std::span<const std::uint64_t>(targets.data(), targets.size()));

  const auto overlap_fraction = [](const std::vector<Addr>& a,
                                   const std::vector<Addr>& b) {
    const std::set<Addr> sa(a.begin(), a.end());
    std::size_t shared = 0;
    for (const Addr line : b) shared += sa.count(line);
    const std::size_t denom = std::max(a.size(), b.size());
    return denom ? static_cast<double>(shared) / static_cast<double>(denom)
                 : 1.0;
  };
  const double l1i = overlap_fraction(detailed.memory().l1i().resident_lines(),
                                      functional.memory().l1i().resident_lines());
  const double l2 = overlap_fraction(detailed.memory().l2().resident_lines(),
                                     functional.memory().l2().resident_lines());
  EXPECT_GE(l1i, 0.5);
  EXPECT_GE(l2, 0.5);
}

// ---------------------------------------------------------------------------
// Interval telemetry composition: records come only from detailed regions,
// tagged with the region id, in region order.

TEST(SampledIntervals, RecordsAreRegionTaggedAndOrdered) {
  sim::RunConfig cfg = golden_config(core::SchedulerKind::kTwoOpBlockOoo,
                                     {"gzip", "equake"}, 1);
  cfg.interval_cycles = 2'000;
  const sim::SampledResult r = sim::run_sampled(cfg, golden_sampled());
  ASSERT_FALSE(r.intervals.empty());

  std::set<std::int64_t> detailed_ids;
  for (const sim::SampledRegion& region : r.regions) {
    if (region.detailed) {
      detailed_ids.insert(static_cast<std::int64_t>(region.index));
    }
  }
  std::int64_t prev = -1;
  for (const obs::IntervalRecord& rec : r.intervals) {
    ASSERT_GE(rec.region_id, 0);
    EXPECT_TRUE(detailed_ids.count(rec.region_id)) << rec.region_id;
    EXPECT_GE(rec.region_id, prev);  // region order, non-decreasing
    prev = rec.region_id;
    EXPECT_NE(obs::format_interval_record(rec).find("\"region\":"),
              std::string::npos);
  }

  // Exact-mode records carry no region tag and format without the key.
  obs::IntervalRecord plain = r.intervals.front();
  plain.region_id = -1;
  EXPECT_EQ(obs::format_interval_record(plain).find("\"region\""),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Negative path: sampling + verify + faults must end in a clean estimate or
// a SimulationAborted naming the failing region -- never a silent estimate.

TEST(SampledNegative, SabotageFaultAbortsWithRegionDiagnostic) {
  sim::RunConfig cfg = golden_config(core::SchedulerKind::kTwoOpBlockOoo,
                                     {"gzip", "equake"}, 1);
  cfg.verify = true;
  cfg.hang_cycles = 3'000;
  robust::FaultPlan plan;
  plan.commit_block_from = 0;  // commit stalls forever in every region sim
  const robust::FaultInjector injector(plan);
  cfg.faults = &injector;

  try {
    (void)sim::run_sampled(cfg, golden_sampled());
    FAIL() << "sabotaged sampled run returned an estimate";
  } catch (const robust::SimulationAborted& e) {
    EXPECT_NE(std::string(e.what()).find("sampled region"), std::string::npos)
        << e.what();
    EXPECT_FALSE(e.bundle().empty());
  }
}

TEST(SampledNegative, SurvivableFaultsStillProduceAnEstimate) {
  sim::RunConfig cfg = golden_config(core::SchedulerKind::kTwoOpBlockOoo,
                                     {"gzip", "equake"}, 1);
  cfg.verify = true;
  const robust::FaultPlan plan = robust::FaultPlan::random(1, 0, 0.05);
  ASSERT_FALSE(plan.sabotage());
  const robust::FaultInjector injector(plan);
  cfg.faults = &injector;

  const sim::SampledResult r = sim::run_sampled(cfg, golden_sampled());
  EXPECT_GT(r.est_ipc, 0.0);
  EXPECT_GE(r.regions_detailed, 1u);
}

// ---------------------------------------------------------------------------
// Knob validation: combinations the sampled engine cannot honor are
// rejected up front with std::invalid_argument, not silently ignored.

TEST(SampledValidate, RejectsUnsupportedKnobs) {
  const sim::RunConfig base = golden_config(
      core::SchedulerKind::kTwoOpBlockOoo, {"gzip", "equake"}, 1);
  const sim::SampledConfig scfg = golden_sampled();

  sim::RunConfig ckpt = base;
  ckpt.checkpoint_path = "x.ckpt";
  EXPECT_THROW((void)sim::run_sampled(ckpt, scfg), std::invalid_argument);

  sim::RunConfig cycles = base;
  cycles.max_cycles = 100'000;
  EXPECT_THROW((void)sim::run_sampled(cycles, scfg), std::invalid_argument);

  sim::RunConfig traced = base;
  traced.trace_capacity = 1024;
  EXPECT_THROW((void)sim::run_sampled(traced, scfg), std::invalid_argument);

  sim::SampledConfig zero = scfg;
  zero.region_length = 0;
  EXPECT_THROW((void)sim::run_sampled(base, zero), std::invalid_argument);
}

}  // namespace
