// Integration tests of the full SMT pipeline.
#include "smt/pipeline.hpp"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "trace/profile.hpp"

namespace msim::smt {
namespace {

std::vector<trace::BenchmarkProfile> workload(std::initializer_list<const char*> names) {
  std::vector<trace::BenchmarkProfile> out;
  for (const char* n : names) out.push_back(trace::profile_or_throw(n));
  return out;
}

MachineConfig config_for(core::SchedulerKind kind, unsigned threads,
                         std::uint32_t iq = 64) {
  MachineConfig mc;
  mc.thread_count = threads;
  mc.scheduler.kind = kind;
  mc.scheduler.iq_entries = iq;
  return mc;
}

TEST(Pipeline, SingleThreadCommitsInstructions) {
  const auto w = workload({"gzip"});
  Pipeline p(config_for(core::SchedulerKind::kTraditional, 1), w, 1);
  p.run(5000);
  EXPECT_GE(p.committed(0), 5000u);
  EXPECT_GT(p.ipc(0), 0.1);
  EXPECT_LT(p.ipc(0), 8.0);  // machine width bound
}

TEST(Pipeline, DeterministicAcrossRuns) {
  const auto w = workload({"gcc", "swim"});
  Pipeline a(config_for(core::SchedulerKind::kTwoOpBlockOoo, 2), w, 7);
  Pipeline b(config_for(core::SchedulerKind::kTwoOpBlockOoo, 2), w, 7);
  a.run(10000);
  b.run(10000);
  EXPECT_EQ(a.cycles(), b.cycles());
  EXPECT_EQ(a.committed(0), b.committed(0));
  EXPECT_EQ(a.committed(1), b.committed(1));
}

TEST(Pipeline, SeedChangesTheRun) {
  const auto w = workload({"gcc"});
  Pipeline a(config_for(core::SchedulerKind::kTraditional, 1), w, 1);
  Pipeline b(config_for(core::SchedulerKind::kTraditional, 1), w, 2);
  a.run(10000);
  b.run(10000);
  EXPECT_NE(a.cycles(), b.cycles());
}

class PipelineAllKinds : public ::testing::TestWithParam<core::SchedulerKind> {};

TEST_P(PipelineAllKinds, TwoThreadsBothMakeProgress) {
  const auto w = workload({"gzip", "equake"});
  Pipeline p(config_for(GetParam(), 2), w, 3);
  p.run(20000, /*max_cycles=*/2'000'000);
  EXPECT_GT(p.committed(0), 1000u);
  EXPECT_GT(p.committed(1), 1000u);
  EXPECT_EQ(p.total_committed(), p.committed(0) + p.committed(1));
  EXPECT_NEAR(p.total_ipc(),
              static_cast<double>(p.total_committed()) /
                  static_cast<double>(p.cycles()),
              1e-12);
}

TEST_P(PipelineAllKinds, TinyIssueQueueStillMakesProgress) {
  // A 4-entry IQ is a brutal stress for the out-of-order dispatch deadlock
  // machinery: the DAB (or watchdog) must keep the machine live.
  const auto w = workload({"twolf", "art"});
  Pipeline p(config_for(GetParam(), 2, /*iq=*/4), w, 11);
  const Cycle used = p.run(3000, /*max_cycles=*/3'000'000);
  EXPECT_LT(used, 3'000'000u) << "machine deadlocked or crawled";
  EXPECT_GE(std::max(p.committed(0), p.committed(1)), 3000u);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, PipelineAllKinds,
    ::testing::Values(core::SchedulerKind::kTraditional,
                      core::SchedulerKind::kTwoOpBlock,
                      core::SchedulerKind::kTwoOpBlockOoo,
                      core::SchedulerKind::kTwoOpBlockOooFiltered,
                      core::SchedulerKind::kTagElimination),
    [](const ::testing::TestParamInfo<core::SchedulerKind>& info) {
      return std::string(core::scheduler_kind_name(info.param));
    });

TEST(Pipeline, WatchdogModeRunsAndRecovers) {
  MachineConfig mc = config_for(core::SchedulerKind::kTwoOpBlockOoo, 2, /*iq=*/8);
  mc.scheduler.deadlock = core::DeadlockMode::kWatchdog;
  mc.scheduler.watchdog_timeout = 64;  // aggressive, to exercise flushes
  const auto w = workload({"art", "lucas"});
  Pipeline p(mc, w, 5);
  const Cycle used = p.run(5000, /*max_cycles=*/3'000'000);
  EXPECT_LT(used, 3'000'000u);
  EXPECT_GE(std::max(p.committed(0), p.committed(1)), 5000u);
  // With so small a timeout on a memory-bound mix, flushes certainly fired.
  EXPECT_GT(p.scheduler().dispatch_stats().watchdog_flushes, 0u);
}

TEST(Pipeline, WatchdogFlushPreservesArchitecturalProgress) {
  // Committed counts must be monotonic through flush/replay cycles.
  MachineConfig mc = config_for(core::SchedulerKind::kTwoOpBlockOoo, 1, /*iq=*/8);
  mc.scheduler.deadlock = core::DeadlockMode::kWatchdog;
  mc.scheduler.watchdog_timeout = 40;
  const auto w = workload({"equake"});
  Pipeline p(mc, w, 9);
  std::uint64_t last = 0;
  for (int chunk = 0; chunk < 20; ++chunk) {
    for (int i = 0; i < 2000; ++i) p.tick();
    EXPECT_GE(p.committed(0), last);
    last = p.committed(0);
  }
  EXPECT_GT(last, 0u);
}

TEST(Pipeline, ResetStatsStartsANewMeasurementWindow) {
  const auto w = workload({"gzip"});
  Pipeline p(config_for(core::SchedulerKind::kTraditional, 1), w, 1);
  p.run(5000);
  p.reset_stats();
  EXPECT_EQ(p.cycles(), 0u);
  EXPECT_EQ(p.committed(0), 0u);
  EXPECT_EQ(p.scheduler().dispatch_stats().cycles, 0u);
  p.run(1000);
  EXPECT_GE(p.committed(0), 1000u);
  EXPECT_GT(p.cycles(), 0u);
}

TEST(Pipeline, RunStopsAtMaxCycles) {
  const auto w = workload({"gzip"});
  Pipeline p(config_for(core::SchedulerKind::kTraditional, 1), w, 1);
  const Cycle used = p.run(100'000'000, /*max_cycles=*/500);
  EXPECT_EQ(used, 500u);
}

TEST(Pipeline, SchedulerKindsDifferInThroughput) {
  // On a 2-LOW mix with a 64-entry queue, the paper's headline ordering:
  // 2OP_BLOCK < traditional <= 2OP_BLOCK+OOO.
  const auto w = workload({"equake", "lucas"});
  auto measure = [&](core::SchedulerKind kind) {
    Pipeline p(config_for(kind, 2), w, 21);
    p.run(10000);   // warm-up
    p.reset_stats();
    p.run(40000);
    return p.total_ipc();
  };
  const double trad = measure(core::SchedulerKind::kTraditional);
  const double block = measure(core::SchedulerKind::kTwoOpBlock);
  const double ooo = measure(core::SchedulerKind::kTwoOpBlockOoo);
  EXPECT_LT(block, trad);
  EXPECT_GT(ooo, block);
}

TEST(Pipeline, MemoryAndPredictorAreExercised) {
  const auto w = workload({"gcc"});
  Pipeline p(config_for(core::SchedulerKind::kTraditional, 1), w, 1);
  p.run(20000);
  EXPECT_GT(p.memory().stats().l1d.accesses, 1000u);
  // The I-cache is consulted once per fetched line (128 B = 32 instructions).
  EXPECT_GT(p.memory().stats().l1i.accesses, 300u);
  EXPECT_GT(p.predictor().total_stats().branches, 1000u);
  EXPECT_GT(p.stats().issued, 20000u);
  EXPECT_GT(p.lsq_stats(0).loads_checked, 1000u);
}

TEST(Pipeline, IcountFetchKeepsThreadsBalanced) {
  // Two identical threads must commit within a reasonable factor of each
  // other under the ICOUNT policy.
  const auto w = workload({"gzip", "gzip"});
  Pipeline p(config_for(core::SchedulerKind::kTraditional, 2), w, 31);
  p.run(30000);
  const double a = static_cast<double>(p.committed(0));
  const double b = static_cast<double>(p.committed(1));
  EXPECT_GT(a / b, 0.7);
  EXPECT_LT(a / b, 1.4);
}

TEST(Pipeline, FilteredAblationDispatchesNoDependentHdis) {
  const auto w = workload({"equake", "lucas"});
  Pipeline p(config_for(core::SchedulerKind::kTwoOpBlockOooFiltered, 2), w, 13);
  p.run(20000, /*max_cycles=*/3'000'000);
  const auto& d = p.scheduler().dispatch_stats();
  EXPECT_EQ(d.ooo_dispatches_dependent, 0u);
  EXPECT_GT(d.filtered_suppressed, 0u);
}

TEST(Pipeline, OooDispatchDependentFractionIsMinority) {
  // Section 4: only ~10% of HDIs dispatched out of order depend on a
  // bypassed NDI.  Assert the qualitative claim (a small minority).
  const auto w = workload({"equake", "lucas"});
  Pipeline p(config_for(core::SchedulerKind::kTwoOpBlockOoo, 2), w, 13);
  p.run(30000, /*max_cycles=*/3'000'000);
  const auto& d = p.scheduler().dispatch_stats();
  ASSERT_GT(d.ooo_dispatches, 1000u);
  EXPECT_LT(d.ooo_dependent_fraction(), 0.35);
}


// ---- fetch policies ----------------------------------------------------------

class PipelineFetchPolicies : public ::testing::TestWithParam<FetchPolicy> {};

TEST_P(PipelineFetchPolicies, MixedWorkloadMakesProgress) {
  MachineConfig mc = config_for(core::SchedulerKind::kTraditional, 2);
  mc.fetch_policy = GetParam();
  const auto w = workload({"art", "gzip"});
  Pipeline p(mc, w, 17);
  const Cycle used = p.run(10000, /*max_cycles=*/4'000'000);
  EXPECT_LT(used, 4'000'000u);
  EXPECT_GT(p.committed(0), 100u);
  EXPECT_GT(p.committed(1), 100u);
}

TEST_P(PipelineFetchPolicies, DeterministicUnderEveryPolicy) {
  MachineConfig mc = config_for(core::SchedulerKind::kTwoOpBlockOoo, 2);
  mc.fetch_policy = GetParam();
  const auto w = workload({"equake", "bzip2"});
  Pipeline a(mc, w, 23), b(mc, w, 23);
  a.run(8000, 4'000'000);
  b.run(8000, 4'000'000);
  EXPECT_EQ(a.cycles(), b.cycles());
  EXPECT_EQ(a.committed(0), b.committed(0));
  EXPECT_EQ(a.committed(1), b.committed(1));
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PipelineFetchPolicies,
    ::testing::Values(FetchPolicy::kIcount, FetchPolicy::kRoundRobin,
                      FetchPolicy::kStall, FetchPolicy::kFlush),
    [](const ::testing::TestParamInfo<FetchPolicy>& info) {
      return std::string(fetch_policy_name(info.param));
    });

TEST(PipelineFetch, StallGatesMemoryBoundThreads) {
  MachineConfig mc = config_for(core::SchedulerKind::kTraditional, 2);
  mc.fetch_policy = FetchPolicy::kStall;
  const auto w = workload({"art", "lucas"});
  Pipeline p(mc, w, 29);
  p.run(10000, 4'000'000);
  EXPECT_GT(p.stats().fetch_l2_gated, 100u);
  EXPECT_EQ(p.stats().policy_flushes, 0u);  // STALL never squashes
}

TEST(PipelineFetch, FlushSquashesAndReplays) {
  MachineConfig mc = config_for(core::SchedulerKind::kTraditional, 2);
  mc.fetch_policy = FetchPolicy::kFlush;
  const auto w = workload({"art", "lucas"});
  Pipeline p(mc, w, 29);
  p.run(10000, 4'000'000);
  EXPECT_GT(p.stats().policy_flushes, 10u);
  EXPECT_GT(p.stats().policy_flushed_instructions, p.stats().policy_flushes);
  // Architectural progress is never lost to squashes.
  EXPECT_GE(std::max(p.committed(0), p.committed(1)), 10000u);
}

TEST(PipelineFetch, FlushCommitsMonotonically) {
  MachineConfig mc = config_for(core::SchedulerKind::kTwoOpBlockOoo, 2);
  mc.fetch_policy = FetchPolicy::kFlush;
  const auto w = workload({"equake", "swim"});
  Pipeline p(mc, w, 31);
  std::uint64_t last = 0;
  for (int chunk = 0; chunk < 30; ++chunk) {
    for (int i = 0; i < 1500; ++i) p.tick();
    const std::uint64_t now_committed = p.total_committed();
    EXPECT_GE(now_committed, last);
    last = now_committed;
  }
  EXPECT_GT(last, 0u);
}

TEST(PipelineFetch, IcountIgnoresL2Misses) {
  MachineConfig mc = config_for(core::SchedulerKind::kTraditional, 2);
  mc.fetch_policy = FetchPolicy::kIcount;
  const auto w = workload({"art", "lucas"});
  Pipeline p(mc, w, 29);
  p.run(10000, 4'000'000);
  EXPECT_EQ(p.stats().fetch_l2_gated, 0u);
}

// ---- tag elimination end to end ----------------------------------------------

TEST(PipelineTagElim, RunsAndDispatchesTwoNonReadyInstructions) {
  const auto w = workload({"gcc", "swim"});
  Pipeline p(config_for(core::SchedulerKind::kTagElimination, 2), w, 37);
  p.run(15000, 4'000'000);
  EXPECT_GT(p.total_committed(), 15000u);
  const auto& d = p.scheduler().dispatch_stats();
  // Unlike 2OP_BLOCK, the partitioned queue admits 2-non-ready instructions.
  EXPECT_GT(d.dispatched_by_nonready[2], 0u);
  EXPECT_EQ(d.ndi_blocked_thread_cycles, 0u);
}

TEST(PipelineTagElim, CamCostMatchesReducedDesigns) {
  const auto w = workload({"gzip"});
  Pipeline trad(config_for(core::SchedulerKind::kTraditional, 1), w, 1);
  Pipeline elim(config_for(core::SchedulerKind::kTagElimination, 1), w, 1);
  EXPECT_EQ(trad.scheduler().iq().layout().comparators(), 128u);
  EXPECT_EQ(elim.scheduler().iq().layout().comparators(), 64u);
}


// ---- wrong-path execution modeling --------------------------------------------

TEST(PipelineWrongPath, FetchesIssuesAndSquashes) {
  MachineConfig mc = config_for(core::SchedulerKind::kTraditional, 1);
  mc.model_wrong_path = true;
  const auto w = workload({"gcc"});  // plenty of mispredicts
  Pipeline p(mc, w, 41);
  p.run(20000, 4'000'000);
  EXPECT_GT(p.stats().wrong_path_fetched, 1000u);
  EXPECT_GT(p.stats().wrong_path_issued, 0u);
  EXPECT_GT(p.stats().wrong_path_squashes, 100u);
}

TEST(PipelineWrongPath, NeverCommitsWrongPathInstructions) {
  // The MSIM_CHECK in commit enforces this; the run completing at all is
  // the assertion.  Also: committed counts must equal the trace stream's
  // architectural order (monotone, gap-free by construction).
  MachineConfig mc = config_for(core::SchedulerKind::kTwoOpBlockOoo, 2);
  mc.model_wrong_path = true;
  const auto w = workload({"crafty", "twolf"});
  Pipeline p(mc, w, 43);
  const Cycle used = p.run(15000, 4'000'000);
  EXPECT_LT(used, 4'000'000u);
  EXPECT_GE(std::max(p.committed(0), p.committed(1)), 15000u);
}

TEST(PipelineWrongPath, DeterministicWithModelingOn) {
  MachineConfig mc = config_for(core::SchedulerKind::kTwoOpBlockOoo, 2);
  mc.model_wrong_path = true;
  const auto w = workload({"gcc", "swim"});
  Pipeline a(mc, w, 47), b(mc, w, 47);
  a.run(10000, 4'000'000);
  b.run(10000, 4'000'000);
  EXPECT_EQ(a.cycles(), b.cycles());
  EXPECT_EQ(a.committed(0), b.committed(0));
}

TEST(PipelineWrongPath, OffByDefaultAndInert) {
  const auto w = workload({"gcc"});
  Pipeline p(config_for(core::SchedulerKind::kTraditional, 1), w, 49);
  p.run(10000);
  EXPECT_EQ(p.stats().wrong_path_fetched, 0u);
  EXPECT_EQ(p.stats().wrong_path_squashes, 0u);
}

TEST(PipelineWrongPath, PollutesTheCaches) {
  // With wrong-path modeling on, the same run performs strictly more
  // I-cache and D-cache accesses.
  MachineConfig mc = config_for(core::SchedulerKind::kTraditional, 1);
  const auto w = workload({"gcc"});
  Pipeline off(mc, w, 51);
  off.run(15000, 4'000'000);
  mc.model_wrong_path = true;
  Pipeline on(mc, w, 51);
  on.run(15000, 4'000'000);
  EXPECT_GT(on.memory().stats().l1d.accesses, off.memory().stats().l1d.accesses);
}

TEST(PipelineWrongPath, ComposesWithWatchdogFlush) {
  MachineConfig mc = config_for(core::SchedulerKind::kTwoOpBlockOoo, 2, /*iq=*/8);
  mc.model_wrong_path = true;
  mc.scheduler.deadlock = core::DeadlockMode::kWatchdog;
  mc.scheduler.watchdog_timeout = 64;
  const auto w = workload({"art", "twolf"});
  Pipeline p(mc, w, 53);
  const Cycle used = p.run(4000, 4'000'000);
  EXPECT_LT(used, 4'000'000u);
}

TEST(PipelineWrongPath, ComposesWithFlushFetchPolicy) {
  MachineConfig mc = config_for(core::SchedulerKind::kTwoOpBlockOoo, 2);
  mc.model_wrong_path = true;
  mc.fetch_policy = FetchPolicy::kFlush;
  const auto w = workload({"art", "gcc"});
  Pipeline p(mc, w, 59);
  const Cycle used = p.run(8000, 4'000'000);
  EXPECT_LT(used, 4'000'000u);
  EXPECT_GT(p.stats().policy_flushes, 0u);
}

}  // namespace
}  // namespace msim::smt
