// Regression tests pinning the paper's qualitative result shapes on small
// mix subsets.  These are the load-bearing claims of the reproduction; if a
// calibration or model change breaks one of them, EXPERIMENTS.md is stale
// and the figures need re-examination.
//
// Deliberately uses subsets of mixes and reduced horizons to stay fast;
// the full-strength versions are the bench binaries.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "sim/experiment.hpp"
#include "trace/mixes.hpp"

namespace msim::sim {
namespace {

RunConfig shape_base() {
  RunConfig cfg;
  cfg.warmup = 8'000;
  cfg.horizon = 30'000;
  return cfg;
}

/// Harmonic-mean throughput over the first `n` mixes of `threads`.
double hmean_ipc(unsigned threads, std::size_t n, core::SchedulerKind kind,
                 std::uint32_t iq, BaselineCache& cache) {
  std::vector<double> ipcs;
  const auto mixes = trace::mixes_for(threads);
  for (std::size_t i = 0; i < n && i < mixes.size(); ++i) {
    ipcs.push_back(run_mix(mixes[i], kind, iq, shape_base(), cache).throughput_ipc);
  }
  return harmonic_mean(ipcs);
}

TEST(PaperShapes, Fig1TwoThreads2OpBlockLosesEverywhere) {
  // Figure 1: for 2-threaded workloads 2OP_BLOCK underperforms the
  // traditional scheduler at every queue size.
  BaselineCache cache(shape_base());
  for (const std::uint32_t iq : {32u, 64u, 128u}) {
    const double trad =
        hmean_ipc(2, 4, core::SchedulerKind::kTraditional, iq, cache);
    const double block = hmean_ipc(2, 4, core::SchedulerKind::kTwoOpBlock, iq, cache);
    EXPECT_LT(block, trad) << "iq=" << iq;
  }
}

TEST(PaperShapes, Fig1FourThreads2OpBlockWinsSmallQueuesOnly) {
  // Figure 1: for 4-threaded workloads 2OP_BLOCK beats the traditional
  // scheduler at small queues and loses at large ones.
  BaselineCache cache(shape_base());
  const double trad32 = hmean_ipc(4, 4, core::SchedulerKind::kTraditional, 32, cache);
  const double block32 = hmean_ipc(4, 4, core::SchedulerKind::kTwoOpBlock, 32, cache);
  EXPECT_GT(block32, trad32);
  const double trad128 =
      hmean_ipc(4, 4, core::SchedulerKind::kTraditional, 128, cache);
  const double block128 =
      hmean_ipc(4, 4, core::SchedulerKind::kTwoOpBlock, 128, cache);
  EXPECT_LT(block128, trad128);
}

TEST(PaperShapes, Fig3OooDispatchRecovers2OpBlockAtTwoThreads) {
  // Figure 3: out-of-order dispatch beats basic 2OP_BLOCK at every size
  // and at least matches the traditional scheduler at 64 entries.
  BaselineCache cache(shape_base());
  for (const std::uint32_t iq : {32u, 64u}) {
    const double block = hmean_ipc(2, 4, core::SchedulerKind::kTwoOpBlock, iq, cache);
    const double ooo = hmean_ipc(2, 4, core::SchedulerKind::kTwoOpBlockOoo, iq, cache);
    EXPECT_GT(ooo, block * 1.02) << "iq=" << iq;
  }
  const double trad = hmean_ipc(2, 4, core::SchedulerKind::kTraditional, 64, cache);
  const double ooo = hmean_ipc(2, 4, core::SchedulerKind::kTwoOpBlockOoo, 64, cache);
  EXPECT_GT(ooo, trad * 0.99);
}

TEST(PaperShapes, Section3StallFractionDropsWithThreadCount) {
  // Section 3: the all-thread NDI stall fraction under 2OP_BLOCK falls
  // steeply from 2 to 4 threads (43% -> 7% in the paper).
  BaselineCache cache(shape_base());
  auto stall = [&cache](unsigned threads) {
    StreamingStat s;
    const auto mixes = trace::mixes_for(threads);
    for (std::size_t i = 0; i < 4; ++i) {
      s.add(run_mix(mixes[i], core::SchedulerKind::kTwoOpBlock, 64, shape_base(),
                    cache)
                .raw.dispatch.all_stall_fraction());
    }
    return s.mean();
  };
  const double two = stall(2);
  const double four = stall(4);
  EXPECT_GT(two, 0.02);
  EXPECT_LT(four, two * 0.5);
}

TEST(PaperShapes, Shape2OooDominates2OpBlockExceptFourThreadsAt32) {
  // DESIGN.md §4 shape 2: OOO dispatch ≥ 2OP_BLOCK everywhere except 4T@32
  // (where the paper shows a slight loss).  Runs the full 12-mix grid per
  // thread count at quick horizons through the parallel sweep engine, so
  // this guard both pins the reproduction's headline ordering and exercises
  // the pool + single-flight cache on every tier-1 run.
  RunConfig base = shape_base();
  base.warmup = 4'000;
  base.horizon = 15'000;
  for (const unsigned threads : {2u, 4u}) {
    SweepRequest req;
    req.thread_count = threads;
    req.kinds = {core::SchedulerKind::kTwoOpBlock,
                 core::SchedulerKind::kTwoOpBlockOoo};
    req.iq_sizes = {32, 64};
    req.base = base;
    req.jobs = 4;
    BaselineCache cache(req.base);
    const auto cells = run_sweep(req, cache);
    for (const std::uint32_t iq : req.iq_sizes) {
      const double block =
          cell_for(cells, core::SchedulerKind::kTwoOpBlock, iq).hmean_ipc;
      const double ooo =
          cell_for(cells, core::SchedulerKind::kTwoOpBlockOoo, iq).hmean_ipc;
      if (threads == 4 && iq == 32) {
        // The one sanctioned exception: OOO may lose slightly, not badly.
        EXPECT_GT(ooo, block * 0.90) << "4T@32";
      } else {
        EXPECT_GE(ooo, block) << threads << "T@" << iq;
      }
    }
  }
}

TEST(PaperShapes, Section4HdiFractionIsLarge) {
  // Section 4: ~90% of the instructions piled up behind a blocking NDI are
  // themselves dispatchable (HDIs).
  BaselineCache cache(shape_base());
  const MixResult r = run_mix(trace::mix_or_throw("2T-mix1"),
                              core::SchedulerKind::kTwoOpBlock, 64, shape_base(),
                              cache);
  EXPECT_GT(r.raw.dispatch.hdi_fraction_behind_ndi(), 0.75);
}

TEST(PaperShapes, Section5ResidencyDropsUnderReducedTagDesigns) {
  // Section 5: the 2OP_BLOCK family uses IQ entries for fewer cycles than
  // the traditional scheduler (21 -> 15 in the paper).
  BaselineCache cache(shape_base());
  const auto residency = [&cache](core::SchedulerKind kind) {
    StreamingStat s;
    const auto mixes = trace::mixes_for(2);
    for (std::size_t i = 0; i < 4; ++i) {
      s.add(run_mix(mixes[i], kind, 64, shape_base(), cache).raw.iq.mean_residency());
    }
    return s.mean();
  };
  EXPECT_LT(residency(core::SchedulerKind::kTwoOpBlock),
            residency(core::SchedulerKind::kTraditional));
}

}  // namespace
}  // namespace msim::sim
