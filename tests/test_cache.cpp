#include "mem/cache.hpp"

#include <string>
#include <tuple>

#include <gtest/gtest.h>

namespace msim::mem {
namespace {

CacheConfig small_cache() {
  // 4 sets x 2 ways x 64-byte lines = 512 bytes.
  return {.name = "t", .size_bytes = 512, .assoc = 2, .line_bytes = 64,
          .hit_extra = 0, .mshr_count = 2};
}

TEST(Cache, MissThenHitAfterFill) {
  Cache c(small_cache());
  const Addr addr = 0x1000;
  auto r = c.access(addr, false, 0);
  EXPECT_FALSE(r.hit);
  c.fill(addr, false, 0, 10);
  // After (or even before) the fill time the tag is present.
  r = c.access(addr, false, 20);
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.extra_latency, 0u);
  EXPECT_TRUE(c.probe(addr));
}

TEST(Cache, SameLineDifferentOffsetsHit) {
  Cache c(small_cache());
  c.fill(0x1000, false, 0, 0);
  EXPECT_TRUE(c.access(0x1004, false, 1).hit);
  EXPECT_TRUE(c.access(0x103F, false, 2).hit);
  EXPECT_FALSE(c.access(0x1040, false, 3).hit);  // next line
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  Cache c(small_cache());
  // Three lines mapping to the same set (set stride = 4 sets * 64 B = 256 B).
  const Addr a = 0x0000, b = 0x0100, d = 0x0200;
  c.fill(a, false, 0, 0);
  c.fill(b, false, 1, 1);
  (void)c.access(a, false, 2);   // touch a -> b becomes LRU
  c.fill(d, false, 3, 3);        // evicts b
  EXPECT_TRUE(c.probe(a));
  EXPECT_FALSE(c.probe(b));
  EXPECT_TRUE(c.probe(d));
}

TEST(Cache, DirtyEvictionCounted) {
  Cache c(small_cache());
  const Addr a = 0x0000, b = 0x0100, d = 0x0200;
  c.fill(a, /*is_store=*/true, 0, 0);
  c.fill(b, false, 1, 1);
  c.fill(d, false, 2, 2);  // evicts dirty a
  EXPECT_EQ(c.stats().dirty_evictions, 1u);
}

TEST(Cache, StoreHitMarksLineDirty) {
  Cache c(small_cache());
  const Addr a = 0x0000, b = 0x0100, d = 0x0200;
  c.fill(a, false, 0, 0);
  (void)c.access(a, /*is_store=*/true, 1);  // dirty via store hit
  c.fill(b, false, 2, 2);
  c.fill(d, false, 3, 3);  // evicts a (LRU)
  EXPECT_EQ(c.stats().dirty_evictions, 1u);
}

TEST(Cache, CoalescesMissesToInFlightLine) {
  Cache c(small_cache());
  const Addr addr = 0x2000;
  auto first = c.access(addr, false, 0);
  EXPECT_FALSE(first.hit);
  c.fill(addr, false, 0, 100);  // fill completes at cycle 100
  // A second access at cycle 40 to the same line coalesces: waits 60 more.
  auto second = c.access(addr + 8, false, 40);
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(second.extra_latency, 60u);
  EXPECT_EQ(c.stats().coalesced_misses, 1u);
}

TEST(Cache, MshrSaturationDelaysMissStart) {
  Cache c(small_cache());  // 2 MSHRs
  c.fill(0x1000, false, 0, 50);
  c.fill(0x2000, false, 0, 80);
  // Third miss at cycle 10: both MSHRs busy; starts when the earliest frees.
  auto r = c.access(0x3000, false, 10);
  EXPECT_FALSE(r.hit);
  EXPECT_EQ(r.miss_start, 50u);
  EXPECT_EQ(c.stats().mshr_stall_cycles, 40u);
}

TEST(Cache, OutstandingMissesExpire) {
  Cache c(small_cache());
  c.fill(0x1000, false, 0, 50);
  c.fill(0x2000, false, 0, 80);
  // At cycle 90 both fills completed; a new miss starts immediately.
  auto r = c.access(0x3000, false, 90);
  EXPECT_FALSE(r.hit);
  EXPECT_EQ(r.miss_start, 90u);
}

TEST(Cache, StatsCountAccessesAndMisses) {
  Cache c(small_cache());
  (void)c.access(0x0, false, 0);
  c.fill(0x0, false, 0, 0);
  (void)c.access(0x0, false, 1);
  EXPECT_EQ(c.stats().accesses, 2u);
  EXPECT_EQ(c.stats().misses, 1u);
  EXPECT_DOUBLE_EQ(c.stats().miss_rate(), 0.5);
  c.reset_stats();
  EXPECT_EQ(c.stats().accesses, 0u);
}

TEST(Cache, HitExtraLatencyReported) {
  CacheConfig cfg = small_cache();
  cfg.hit_extra = 10;
  Cache c(cfg);
  c.fill(0x0, false, 0, 0);
  EXPECT_EQ(c.access(0x0, false, 1).extra_latency, 10u);
}

using GeometryParam = std::tuple<std::uint64_t, std::uint32_t, std::uint32_t>;

class CacheGeometry : public ::testing::TestWithParam<GeometryParam> {};

TEST_P(CacheGeometry, FillThenProbeAcrossWholeCapacity) {
  const auto [size, assoc, line] = GetParam();
  Cache c({.name = "g", .size_bytes = size, .assoc = assoc, .line_bytes = line,
           .hit_extra = 0, .mshr_count = 4});
  const std::uint64_t lines = size / line;
  // Fill exactly to capacity with distinct lines; everything must survive.
  for (std::uint64_t i = 0; i < lines; ++i) {
    c.fill(i * line, false, i, i);
  }
  for (std::uint64_t i = 0; i < lines; ++i) {
    EXPECT_TRUE(c.probe(i * line)) << "line " << i;
  }
  // One more line into any set evicts exactly one of them.
  c.fill(lines * line, false, lines, lines);
  std::uint64_t present = 0;
  for (std::uint64_t i = 0; i <= lines; ++i) {
    if (c.probe(i * line)) ++present;
  }
  EXPECT_EQ(present, lines);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(GeometryParam{1024, 1, 64},    // direct mapped
                      GeometryParam{1024, 2, 64},
                      GeometryParam{2048, 4, 128},
                      GeometryParam{4096, 8, 256},   // paper-style long lines
                      GeometryParam{512, 2, 256}));  // single set (fully assoc)

// The paper's exact cache geometries must be constructible.
TEST(CacheGeometryTable1, PaperConfigsConstruct) {
  const CacheConfig l1i{.name = "L1I", .size_bytes = 64 * 1024, .assoc = 2,
                        .line_bytes = 128};
  const CacheConfig l1d{.name = "L1D", .size_bytes = 32 * 1024, .assoc = 4,
                        .line_bytes = 256};
  const CacheConfig l2{.name = "L2", .size_bytes = 2 * 1024 * 1024, .assoc = 8,
                       .line_bytes = 512};
  EXPECT_EQ(Cache(l1i).config().set_count(), 256u);
  EXPECT_EQ(Cache(l1d).config().set_count(), 32u);
  EXPECT_EQ(Cache(l2).config().set_count(), 512u);
}

}  // namespace
}  // namespace msim::mem
