#include "bpred/btb.hpp"

#include <gtest/gtest.h>

namespace msim::bpred {
namespace {

TEST(Btb, MissOnColdLookup) {
  Btb btb;
  EXPECT_FALSE(btb.lookup(0, 0x4000).has_value());
  EXPECT_EQ(btb.stats().lookups, 1u);
  EXPECT_EQ(btb.stats().hits, 0u);
}

TEST(Btb, HitAfterUpdate) {
  Btb btb;
  btb.update(0, 0x4000, 0x5000);
  const auto target = btb.lookup(0, 0x4000);
  ASSERT_TRUE(target.has_value());
  EXPECT_EQ(*target, 0x5000u);
  EXPECT_DOUBLE_EQ(btb.stats().hit_rate(), 1.0);
}

TEST(Btb, UpdateOverwritesTarget) {
  Btb btb;
  btb.update(0, 0x4000, 0x5000);
  btb.update(0, 0x4000, 0x6000);
  EXPECT_EQ(*btb.lookup(0, 0x4000), 0x6000u);
}

TEST(Btb, ThreadsDoNotAlias) {
  Btb btb;
  btb.update(0, 0x4000, 0x5000);
  EXPECT_FALSE(btb.lookup(1, 0x4000).has_value());
  btb.update(1, 0x4000, 0x7000);
  EXPECT_EQ(*btb.lookup(0, 0x4000), 0x5000u);
  EXPECT_EQ(*btb.lookup(1, 0x4000), 0x7000u);
}

TEST(Btb, LruReplacementWithinSet) {
  // 4 entries, 2-way -> 2 sets. PCs with the same tag-low bits land in the
  // same set; pc>>2 selects the set, so use a stride of 2 sets * 4 bytes.
  Btb btb({.entries = 4, .assoc = 2});
  const Addr a = 0x0, b = 0x8, c = 0x10;  // all map to set 0
  btb.update(0, a, 0x100);
  btb.update(0, b, 0x200);
  (void)btb.lookup(0, a);     // refresh a; b is now LRU
  btb.update(0, c, 0x300);    // evicts b
  EXPECT_TRUE(btb.lookup(0, a).has_value());
  EXPECT_FALSE(btb.lookup(0, b).has_value());
  EXPECT_TRUE(btb.lookup(0, c).has_value());
}

TEST(Btb, DefaultConfigMatchesPaperTable1) {
  const BtbConfig cfg;
  EXPECT_EQ(cfg.entries, 2048u);
  EXPECT_EQ(cfg.assoc, 2u);
}

TEST(Btb, ResetStatsPreservesEntries) {
  Btb btb;
  btb.update(0, 0x4000, 0x5000);
  (void)btb.lookup(0, 0x4000);
  btb.reset_stats();
  EXPECT_EQ(btb.stats().lookups, 0u);
  EXPECT_TRUE(btb.lookup(0, 0x4000).has_value());
}

}  // namespace
}  // namespace msim::bpred
