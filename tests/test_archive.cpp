// persist::Archive: the versioned, endian-stable serializer every
// checkpointable structure rides on (docs/CHECKPOINT.md).
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/archive.hpp"

namespace msim::persist {
namespace {

TEST(Archive, RoundTripsScalarsStringsAndContainers) {
  Archive save = Archive::saver();
  std::uint8_t u8 = 0xab;
  std::uint32_t u32 = 0xdeadbeef;
  std::uint64_t u64 = 0x0123456789abcdefULL;
  std::int64_t i64 = -42;
  bool flag = true;
  double d = 3.14159;
  std::string s = "hello checkpoint";
  std::vector<std::uint64_t> vec{1, 2, 3};
  std::deque<std::uint32_t> deq{9, 8};
  save.io(u8);
  save.io(u32);
  save.io(u64);
  save.io(i64);
  save.io(flag);
  save.io(d);
  save.io(s);
  save.io(vec);
  save.io(deq);

  Archive load = Archive::loader(save.bytes());
  std::uint8_t r8 = 0;
  std::uint32_t r32 = 0;
  std::uint64_t r64 = 0;
  std::int64_t ri64 = 0;
  bool rflag = false;
  double rd = 0.0;
  std::string rs;
  std::vector<std::uint64_t> rvec;
  std::deque<std::uint32_t> rdeq;
  load.io(r8);
  load.io(r32);
  load.io(r64);
  load.io(ri64);
  load.io(rflag);
  load.io(rd);
  load.io(rs);
  load.io(rvec);
  load.io(rdeq);
  load.expect_end();

  EXPECT_EQ(r8, u8);
  EXPECT_EQ(r32, u32);
  EXPECT_EQ(r64, u64);
  EXPECT_EQ(ri64, i64);
  EXPECT_EQ(rflag, flag);
  EXPECT_DOUBLE_EQ(rd, d);
  EXPECT_EQ(rs, s);
  EXPECT_EQ(rvec, vec);
  EXPECT_EQ(rdeq, deq);
}

TEST(Archive, FixedLittleEndianEncoding) {
  // The on-disk format is the contract: little-endian fixed-width integers,
  // so a checkpoint written on any host loads on any other.
  Archive save = Archive::saver();
  std::uint32_t v = 0x01020304;
  save.io(v);
  const std::vector<std::uint8_t> bytes = save.bytes();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(bytes[0], 0x04);
  EXPECT_EQ(bytes[1], 0x03);
  EXPECT_EQ(bytes[2], 0x02);
  EXPECT_EQ(bytes[3], 0x01);
}

TEST(Archive, RoundTripsOptionalAndMap) {
  Archive save = Archive::saver();
  std::optional<std::uint64_t> some = 7;
  std::optional<std::uint64_t> none;
  std::map<std::uint32_t, std::string> m{{1, "one"}, {2, "two"}};
  auto per_u64 = [](Archive& a, std::uint64_t& x) { a.io(x); };
  save.io_optional(some, per_u64);
  save.io_optional(none, per_u64);
  save.io_map(m, [](Archive& a, std::string& x) { a.io(x); });

  Archive load = Archive::loader(save.bytes());
  std::optional<std::uint64_t> rsome;
  std::optional<std::uint64_t> rnone = 99;  // must be cleared by load
  std::map<std::uint32_t, std::string> rm;
  load.io_optional(rsome, per_u64);
  load.io_optional(rnone, per_u64);
  load.io_map(rm, [](Archive& a, std::string& x) { a.io(x); });
  load.expect_end();

  ASSERT_TRUE(rsome.has_value());
  EXPECT_EQ(*rsome, 7u);
  EXPECT_FALSE(rnone.has_value());
  EXPECT_EQ(rm, m);
}

TEST(Archive, SectionTagMismatchThrows) {
  Archive save = Archive::saver();
  save.section("pipeline");
  std::uint64_t v = 1;
  save.io(v);

  Archive load = Archive::loader(save.bytes());
  EXPECT_THROW(load.section("scheduler"), PersistError);
}

TEST(Archive, TruncatedPayloadThrows) {
  Archive save = Archive::saver();
  std::uint64_t v = 0x1122334455667788ULL;
  save.io(v);
  std::vector<std::uint8_t> bytes = save.bytes();
  bytes.resize(bytes.size() - 3);

  Archive load = Archive::loader(std::move(bytes));
  std::uint64_t r = 0;
  EXPECT_THROW(load.io(r), PersistError);
}

TEST(Archive, CorruptBoolByteThrows) {
  // bool is stored as u8 in {0,1}; anything else is corruption, not "true".
  Archive load = Archive::loader({0x02});
  bool b = false;
  EXPECT_THROW(load.io(b), PersistError);
}

TEST(Archive, CorruptCountPrefixThrows) {
  // A length prefix larger than the remaining payload must be rejected up
  // front, not allocate terabytes and then hit end-of-stream.
  Archive save = Archive::saver();
  std::uint64_t huge = ~std::uint64_t{0} / 2;
  save.io(huge);  // masquerades as a vector<u64> count

  Archive load = Archive::loader(save.bytes());
  std::vector<std::uint64_t> v;
  EXPECT_THROW(load.io(v), PersistError);
}

TEST(Archive, TrailingBytesFailExpectEnd) {
  Archive save = Archive::saver();
  std::uint64_t v = 5;
  save.io(v);
  std::uint8_t extra = 1;
  save.io(extra);

  Archive load = Archive::loader(save.bytes());
  std::uint64_t r = 0;
  load.io(r);
  EXPECT_THROW(load.expect_end(), PersistError);
}

TEST(Archive, IoSequenceReplacesLoadTargetContents) {
  Archive save = Archive::saver();
  std::vector<std::string> src{"a", "bb", "ccc"};
  auto per = [](Archive& a, std::string& s) { a.io(s); };
  save.io_sequence(src, per);

  Archive load = Archive::loader(save.bytes());
  std::vector<std::string> dst{"stale", "contents", "must", "vanish"};
  load.io_sequence(dst, per);
  load.expect_end();
  EXPECT_EQ(dst, src);
}

TEST(Archive, EnumsTravelAsUnderlyingType) {
  enum class Phase : std::uint8_t { kWarm = 0, kMeasure = 1 };
  Archive save = Archive::saver();
  Phase p = Phase::kMeasure;
  save.io(p);
  EXPECT_EQ(save.bytes().size(), 1u);

  Archive load = Archive::loader(save.bytes());
  Phase r = Phase::kWarm;
  load.io(r);
  load.expect_end();
  EXPECT_EQ(r, Phase::kMeasure);
}

}  // namespace
}  // namespace msim::persist
