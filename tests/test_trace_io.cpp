#include "trace/trace_io.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "trace/generator.hpp"
#include "trace/profile.hpp"

namespace msim::trace {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("msim_trace_io_test_" +
              std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
              "_" + std::string(::testing::UnitTest::GetInstance()
                                    ->current_test_info()
                                    ->name()) +
              ".trc"))
                .string();
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

std::vector<isa::DynInst> sample_trace(std::size_t n, const char* bench = "gcc") {
  TraceGenerator gen(profile_or_throw(bench), 5);
  std::vector<isa::DynInst> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(gen.next());
  return out;
}

TEST_F(TraceIoTest, RoundTripPreservesEveryField) {
  const auto original = sample_trace(5000);
  write_trace(path_, original);
  const auto loaded = read_trace(path_);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    ASSERT_EQ(loaded[i].seq, original[i].seq) << i;
    ASSERT_EQ(loaded[i].pc, original[i].pc) << i;
    ASSERT_EQ(loaded[i].next_pc, original[i].next_pc) << i;
    ASSERT_EQ(loaded[i].mem_addr, original[i].mem_addr) << i;
    ASSERT_EQ(loaded[i].op, original[i].op) << i;
    ASSERT_EQ(loaded[i].dest, original[i].dest) << i;
    ASSERT_EQ(loaded[i].src[0], original[i].src[0]) << i;
    ASSERT_EQ(loaded[i].src[1], original[i].src[1]) << i;
    ASSERT_EQ(loaded[i].taken, original[i].taken) << i;
  }
}

TEST_F(TraceIoTest, EmptyTraceRoundTrips) {
  write_trace(path_, {});
  EXPECT_TRUE(read_trace(path_).empty());
}

TEST_F(TraceIoTest, RejectsBadMagic) {
  std::ofstream(path_, std::ios::binary) << "NOTATRACEFILE_AT_ALL";
  EXPECT_THROW((void)read_trace(path_), std::runtime_error);
}

TEST_F(TraceIoTest, RejectsTruncatedBody) {
  const auto original = sample_trace(100);
  write_trace(path_, original);
  std::filesystem::resize_file(path_, std::filesystem::file_size(path_) - 13u);
  EXPECT_THROW((void)read_trace(path_), std::runtime_error);
}

TEST_F(TraceIoTest, MissingFileThrows) {
  EXPECT_THROW((void)read_trace("/nonexistent/dir/x.trc"), std::runtime_error);
}

TEST(TraceSummary, CountsMatchDirectScan) {
  const auto insts = sample_trace(20000, "equake");
  const TraceSummary s = summarize_trace(insts);
  EXPECT_EQ(s.instructions, insts.size());
  std::uint64_t branches = 0, loads = 0;
  for (const auto& inst : insts) {
    branches += inst.is_branch() ? 1 : 0;
    loads += inst.is_load() ? 1 : 0;
  }
  EXPECT_EQ(s.branches, branches);
  EXPECT_EQ(s.loads, loads);
  EXPECT_GT(s.unique_pcs, 100u);
  EXPECT_GT(s.mean_block_length, 1.0);
  EXPECT_LE(s.taken_branches, s.branches);
}

TEST(TraceSummary, EmptyTrace) {
  const TraceSummary s = summarize_trace({});
  EXPECT_EQ(s.instructions, 0u);
  EXPECT_EQ(s.branches, 0u);
}

}  // namespace
}  // namespace msim::trace
