#include "sim/report.hpp"

#include <gtest/gtest.h>

namespace msim::sim {
namespace {

SweepCell cell(core::SchedulerKind kind, std::uint32_t iq, double speedup,
               double fairness_gain) {
  SweepCell c;
  c.kind = kind;
  c.iq_entries = iq;
  c.hmean_ipc = 1.5;
  c.hmean_fairness = 0.7;
  c.ipc_speedup_vs_trad = speedup;
  c.fairness_gain_vs_trad = fairness_gain;
  c.mean_all_stall_fraction = 0.25;
  c.mean_iq_residency = 14.5;
  return c;
}

TEST(MetricValue, SelectsTheRightAggregate) {
  const SweepCell c = cell(core::SchedulerKind::kTwoOpBlock, 64, 1.1, 1.2);
  EXPECT_DOUBLE_EQ(metric_value(c, FigureMetric::kIpcSpeedup), 1.1);
  EXPECT_DOUBLE_EQ(metric_value(c, FigureMetric::kFairnessGain), 1.2);
  EXPECT_DOUBLE_EQ(metric_value(c, FigureMetric::kThroughputIpc), 1.5);
  EXPECT_DOUBLE_EQ(metric_value(c, FigureMetric::kAllStallFraction), 0.25);
  EXPECT_DOUBLE_EQ(metric_value(c, FigureMetric::kIqResidency), 14.5);
}

TEST(FigureTable, SpeedupsRenderedAsSignedPercent) {
  const std::vector<SweepCell> cells{
      cell(core::SchedulerKind::kTraditional, 64, 1.0, 1.0),
      cell(core::SchedulerKind::kTwoOpBlock, 64, 0.89, 0.85),
  };
  const std::array<core::SchedulerKind, 2> kinds{
      core::SchedulerKind::kTraditional, core::SchedulerKind::kTwoOpBlock};
  const std::array<std::uint32_t, 1> sizes{64};
  const TextTable t = figure_table(cells, {kinds.data(), kinds.size()},
                                   {sizes.data(), sizes.size()},
                                   FigureMetric::kIpcSpeedup);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("+0.0%"), std::string::npos);
  EXPECT_NE(csv.find("-11.0%"), std::string::npos);
  EXPECT_NE(csv.find("iq_entries"), std::string::npos);
  EXPECT_NE(csv.find("2op_block"), std::string::npos);
}

TEST(FigureTable, RawMetricsRenderedAsNumbers) {
  const std::vector<SweepCell> cells{
      cell(core::SchedulerKind::kTraditional, 32, 1.0, 1.0)};
  const std::array<core::SchedulerKind, 1> kinds{core::SchedulerKind::kTraditional};
  const std::array<std::uint32_t, 1> sizes{32};
  const TextTable t = figure_table(cells, {kinds.data(), kinds.size()},
                                   {sizes.data(), sizes.size()},
                                   FigureMetric::kThroughputIpc);
  EXPECT_NE(t.to_csv().find("1.500"), std::string::npos);
}

TEST(FigureTable, OneRowPerIqSize) {
  std::vector<SweepCell> cells;
  for (std::uint32_t iq : {32u, 64u, 96u}) {
    cells.push_back(cell(core::SchedulerKind::kTraditional, iq, 1.0, 1.0));
  }
  const std::array<core::SchedulerKind, 1> kinds{core::SchedulerKind::kTraditional};
  const std::array<std::uint32_t, 3> sizes{32, 64, 96};
  const TextTable t = figure_table(cells, {kinds.data(), kinds.size()},
                                   {sizes.data(), sizes.size()},
                                   FigureMetric::kIpcSpeedup);
  EXPECT_EQ(t.row_count(), 3u);
}

TEST(MixTable, OneRowPerMix) {
  SweepCell c = cell(core::SchedulerKind::kTwoOpBlock, 64, 1.0, 1.0);
  MixResult m;
  m.mix_name = "2T-mix1";
  m.throughput_ipc = 0.8;
  m.fairness = 0.6;
  c.mixes = {m, m, m};
  const TextTable t = mix_table(c);
  EXPECT_EQ(t.row_count(), 3u);
  EXPECT_NE(t.to_csv().find("2T-mix1"), std::string::npos);
}

}  // namespace
}  // namespace msim::sim
