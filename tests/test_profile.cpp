#include "trace/profile.hpp"

#include <set>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

namespace msim::trace {
namespace {

TEST(Profiles, TwentyFourBenchmarks) {
  EXPECT_EQ(all_profiles().size(), 24u);
}

TEST(Profiles, NamesAreUnique) {
  std::set<std::string_view> names;
  for (const auto& p : all_profiles()) names.insert(p.name);
  EXPECT_EQ(names.size(), all_profiles().size());
}

TEST(Profiles, LookupFindsEveryProfile) {
  for (const auto& p : all_profiles()) {
    const auto found = find_profile(p.name);
    ASSERT_TRUE(found.has_value()) << p.name;
    EXPECT_EQ(found->name, p.name);
    EXPECT_EQ(&profile_or_throw(p.name), &p);
  }
}

TEST(Profiles, UnknownNameHandling) {
  EXPECT_FALSE(find_profile("nonexistent").has_value());
  EXPECT_THROW((void)profile_or_throw("nonexistent"), std::invalid_argument);
}

TEST(Profiles, ClassDistributionMatchesInference) {
  // 7 LOW + 8 MEDIUM + 9 HIGH, per the inference from Tables 2-4.
  unsigned counts[3] = {0, 0, 0};
  for (const auto& p : all_profiles()) ++counts[static_cast<unsigned>(p.ilp)];
  EXPECT_EQ(counts[0], 7u);
  EXPECT_EQ(counts[1], 8u);
  EXPECT_EQ(counts[2], 9u);
}

TEST(Profiles, SpecificClassAssignments) {
  // Anchor cases pinned directly by the paper's Table 3 groupings.
  EXPECT_EQ(profile_or_throw("equake").ilp, IlpClass::kLow);
  EXPECT_EQ(profile_or_throw("lucas").ilp, IlpClass::kLow);
  EXPECT_EQ(profile_or_throw("twolf").ilp, IlpClass::kLow);
  EXPECT_EQ(profile_or_throw("vpr").ilp, IlpClass::kLow);
  EXPECT_EQ(profile_or_throw("parser").ilp, IlpClass::kLow);
  EXPECT_EQ(profile_or_throw("swim").ilp, IlpClass::kLow);
  EXPECT_EQ(profile_or_throw("vortex").ilp, IlpClass::kHigh);
  EXPECT_EQ(profile_or_throw("gap").ilp, IlpClass::kHigh);
  EXPECT_EQ(profile_or_throw("mesa").ilp, IlpClass::kHigh);
  EXPECT_EQ(profile_or_throw("bzip2").ilp, IlpClass::kMedium);
  EXPECT_EQ(profile_or_throw("gcc").ilp, IlpClass::kMedium);
  EXPECT_EQ(profile_or_throw("applu").ilp, IlpClass::kMedium);
}

class ProfileValidity : public ::testing::TestWithParam<BenchmarkProfile> {};

TEST_P(ProfileValidity, ParametersAreWellFormed) {
  const BenchmarkProfile& p = GetParam();
  double weight_sum = 0.0;
  for (double w : p.op_weights) {
    EXPECT_GE(w, 0.0) << p.name;
    weight_sum += w;
  }
  EXPECT_NEAR(weight_sum, 1.0, 0.05) << p.name << " op weights should be ~normalized";
  EXPECT_GT(p.branch_weight(), 0.0) << p.name;
  EXPECT_LT(p.branch_weight(), 0.5) << p.name;

  for (double f : {p.two_source_frac, p.far_operand_frac, p.dep_near_frac,
                   p.fp_load_frac, p.fp_store_frac, p.hot_frac, p.warm_frac,
                   p.stream_frac, p.branch_predictable_frac, p.branch_uncond_frac,
                   p.load_addr_old_frac}) {
    EXPECT_GE(f, 0.0) << p.name;
    EXPECT_LE(f, 1.0) << p.name;
  }
  EXPECT_LE(p.hot_frac + p.warm_frac + p.stream_frac, 1.0) << p.name;
  EXPECT_GT(p.dep_near_p, 0.0) << p.name;
  EXPECT_LE(p.dep_near_p, 1.0) << p.name;
  EXPECT_GT(p.dep_far_p, 0.0) << p.name;
  EXPECT_GE(p.data_footprint, 64u * 1024) << p.name;
  EXPECT_GE(p.code_footprint, 4u * 1024) << p.name;
  EXPECT_GE(p.stream_stride, 4u) << p.name;
  EXPECT_GE(p.stream_count, 1u) << p.name;
  EXPECT_GE(p.mean_loop_trip, 2.0) << p.name;
}

TEST_P(ProfileValidity, ClassCorrelatesWithMemoryBoundedness) {
  // LOW = memory bound: larger footprints than HIGH (execution bound).
  const BenchmarkProfile& p = GetParam();
  if (p.ilp == IlpClass::kLow) {
    EXPECT_GE(p.data_footprint, 4u * 1024 * 1024) << p.name;
  }
  if (p.ilp == IlpClass::kHigh) {
    EXPECT_LE(p.data_footprint, 1u * 1024 * 1024) << p.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, ProfileValidity,
    ::testing::ValuesIn(all_profiles().begin(), all_profiles().end()),
    [](const ::testing::TestParamInfo<BenchmarkProfile>& param_info) {
      return std::string(param_info.param.name);
    });

TEST(IlpClassNames, AllNamed) {
  EXPECT_EQ(ilp_class_name(IlpClass::kLow), "low");
  EXPECT_EQ(ilp_class_name(IlpClass::kMedium), "medium");
  EXPECT_EQ(ilp_class_name(IlpClass::kHigh), "high");
}

}  // namespace
}  // namespace msim::trace
