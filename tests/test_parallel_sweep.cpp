// The parallel sweep engine's contract: fanning the (mix, kind, iq) grid
// out across a thread pool changes wall-clock time and *nothing else*.
// These tests pin that contract from three sides — the pool itself, the
// single-flight BaselineCache, and end-to-end parallel-equals-serial
// determinism of run_sweep across several seeds.
//
// Double comparisons here deliberately use EXPECT_EQ, not EXPECT_DOUBLE_EQ:
// the guarantee is bit-identical results, not results within a few ULPs.
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.hpp"
#include "sim/experiment.hpp"

namespace msim::sim {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool unit tests
// ---------------------------------------------------------------------------

TEST(ThreadPool, ClampsZeroThreadsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> counter{0};
  ThreadPool pool(4);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, PropagatesTaskExceptionsThroughTheFuture) {
  ThreadPool pool(2);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);  // single worker => tasks queue up behind each other
    for (int i = 0; i < 32; ++i) {
      (void)pool.submit([&counter] { ++counter; });
    }
  }  // destruction must run the backlog before joining
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, DefaultParallelismIsAtLeastOne) {
  EXPECT_GE(ThreadPool::default_parallelism(), 1u);
}

// ---------------------------------------------------------------------------
// BaselineCache single-flight concurrency
// ---------------------------------------------------------------------------

RunConfig tiny_base() {
  RunConfig cfg;
  cfg.warmup = 1000;
  cfg.horizon = 4000;
  return cfg;
}

TEST(BaselineCacheConcurrency, OverlappingKeysSimulateExactlyOnce) {
  BaselineCache cache(tiny_base());
  struct Key {
    const char* benchmark;
    std::uint32_t iq;
  };
  const std::vector<Key> keys{{"gzip", 32}, {"gzip", 64}, {"gcc", 32}, {"eon", 64}};

  constexpr unsigned kThreads = 8;
  std::vector<std::vector<double>> observed(kThreads,
                                            std::vector<double>(keys.size()));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread walks the keys starting at a different offset, so every
      // key sees racing first-requesters across runs of this test.
      for (std::size_t i = 0; i < keys.size(); ++i) {
        const Key& k = keys[(i + t) % keys.size()];
        observed[t][(i + t) % keys.size()] = cache.alone_ipc(k.benchmark, k.iq);
      }
    });
  }
  for (std::thread& th : threads) th.join();

  // Single-flight: racing requesters blocked on the winner instead of
  // re-simulating, so exactly one computation per distinct key.
  EXPECT_EQ(cache.computations(), keys.size());
  EXPECT_EQ(cache.entries(), keys.size());
  for (unsigned t = 1; t < kThreads; ++t) {
    for (std::size_t i = 0; i < keys.size(); ++i) {
      EXPECT_EQ(observed[t][i], observed[0][i])
          << "thread " << t << " saw a different IPC for key " << i;
    }
  }
}

TEST(BaselineCacheConcurrency, RepeatRequestsNeverRecompute) {
  BaselineCache cache(tiny_base());
  const double first = cache.alone_ipc("gzip", 64);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(cache.alone_ipc("gzip", 64), first);
  }
  EXPECT_EQ(cache.computations(), 1u);
}

// ---------------------------------------------------------------------------
// Parallel-equals-serial determinism of run_sweep
// ---------------------------------------------------------------------------

SweepRequest small_request(std::uint64_t seed) {
  SweepRequest req;
  req.thread_count = 2;
  req.kinds = {core::SchedulerKind::kTraditional,
               core::SchedulerKind::kTwoOpBlockOoo};
  req.iq_sizes = {32, 64};
  req.base = tiny_base();
  req.base.seed = seed;
  return req;
}

void expect_bit_identical(const std::vector<SweepCell>& serial,
                          const std::vector<SweepCell>& parallel) {
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t c = 0; c < serial.size(); ++c) {
    const SweepCell& a = serial[c];
    const SweepCell& b = parallel[c];
    SCOPED_TRACE("cell " + std::to_string(c));
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.iq_entries, b.iq_entries);
    EXPECT_EQ(a.hmean_ipc, b.hmean_ipc);
    EXPECT_EQ(a.hmean_fairness, b.hmean_fairness);
    EXPECT_EQ(a.ipc_speedup_vs_trad, b.ipc_speedup_vs_trad);
    EXPECT_EQ(a.fairness_gain_vs_trad, b.fairness_gain_vs_trad);
    EXPECT_EQ(a.mean_all_stall_fraction, b.mean_all_stall_fraction);
    EXPECT_EQ(a.mean_iq_residency, b.mean_iq_residency);
    ASSERT_EQ(a.mixes.size(), b.mixes.size());
    for (std::size_t m = 0; m < a.mixes.size(); ++m) {
      SCOPED_TRACE("mix " + a.mixes[m].mix_name);
      EXPECT_EQ(a.mixes[m].mix_name, b.mixes[m].mix_name);
      EXPECT_EQ(a.mixes[m].throughput_ipc, b.mixes[m].throughput_ipc);
      EXPECT_EQ(a.mixes[m].fairness, b.mixes[m].fairness);
      EXPECT_EQ(a.mixes[m].raw.cycles, b.mixes[m].raw.cycles);
      EXPECT_EQ(a.mixes[m].raw.per_thread_ipc, b.mixes[m].raw.per_thread_ipc);
      EXPECT_EQ(a.mixes[m].raw.per_thread_committed,
                b.mixes[m].raw.per_thread_committed);
    }
  }
}

TEST(ParallelSweep, BitIdenticalToSerialAcrossSeeds) {
  for (const std::uint64_t seed : {1u, 7u, 20260806u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));

    SweepRequest serial_req = small_request(seed);
    serial_req.jobs = 1;
    BaselineCache serial_cache(serial_req.base);
    const auto serial = run_sweep(serial_req, serial_cache);

    SweepRequest parallel_req = small_request(seed);
    parallel_req.jobs = 4;
    BaselineCache parallel_cache(parallel_req.base);
    const auto parallel = run_sweep(parallel_req, parallel_cache);

    expect_bit_identical(serial, parallel);

    // The caches converged on identical contents: same keys, same IPCs,
    // in the same deterministic (benchmark, iq) order.
    EXPECT_EQ(serial_cache.snapshot(), parallel_cache.snapshot());
  }
}

TEST(ParallelSweep, JobCountBeyondGridSizeIsHarmless) {
  SweepRequest req = small_request(3);
  req.kinds = {core::SchedulerKind::kTwoOpBlock};
  req.iq_sizes = {32};
  req.jobs = 32;  // far more workers than the 12-cell grid
  BaselineCache cache(req.base);
  const auto cells = run_sweep(req, cache);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].mixes.size(), 12u);
  EXPECT_GT(cells[0].hmean_ipc, 0.0);
}

TEST(ParallelSweep, ProgressFiresOncePerMixWhenParallel) {
  SweepRequest req = small_request(1);
  req.kinds = {core::SchedulerKind::kTraditional};
  req.iq_sizes = {32};
  req.jobs = 4;
  std::atomic<unsigned> calls{0};
  req.progress = [&calls](std::string_view) { ++calls; };
  BaselineCache cache(req.base);
  (void)run_sweep(req, cache);
  EXPECT_EQ(calls.load(), 12u);  // one per mix, regardless of worker count
}

}  // namespace
}  // namespace msim::sim
