#include "sim/run.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace msim::sim {
namespace {

RunConfig small_config() {
  RunConfig cfg;
  cfg.benchmarks = {"gzip", "equake"};
  cfg.warmup = 2000;
  cfg.horizon = 8000;
  return cfg;
}

TEST(RunSimulation, PopulatesAllResultFields) {
  const RunResult r = run_simulation(small_config());
  EXPECT_GT(r.cycles, 0u);
  ASSERT_EQ(r.per_thread_ipc.size(), 2u);
  ASSERT_EQ(r.per_thread_committed.size(), 2u);
  EXPECT_GT(r.per_thread_ipc[0], 0.0);
  EXPECT_GT(r.per_thread_ipc[1], 0.0);
  EXPECT_NEAR(r.throughput_ipc, r.per_thread_ipc[0] + r.per_thread_ipc[1], 1e-9);
  EXPECT_GT(r.dispatch.dispatched, 0u);
  EXPECT_GT(r.iq.issued, 0u);
  EXPECT_GT(r.memory.l1d.accesses, 0u);
  EXPECT_GT(r.bpred.branches, 0u);
  EXPECT_FALSE(r.truncated);
}

TEST(RunSimulation, HonorsHorizonStopRule) {
  const RunResult r = run_simulation(small_config());
  // Stop when ANY thread reaches the horizon (the paper's rule).
  const auto max_committed =
      std::max(r.per_thread_committed[0], r.per_thread_committed[1]);
  EXPECT_GE(max_committed, 8000u);
  EXPECT_LT(max_committed, 8000u + 64u);  // one cycle's worth of overshoot
}

TEST(RunSimulation, DeterministicForSameConfig) {
  const RunResult a = run_simulation(small_config());
  const RunResult b = run_simulation(small_config());
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.per_thread_committed, b.per_thread_committed);
  EXPECT_DOUBLE_EQ(a.throughput_ipc, b.throughput_ipc);
}

TEST(RunSimulation, TruncatedFlagOnMaxCycles) {
  RunConfig cfg = small_config();
  cfg.max_cycles = 200;
  cfg.horizon = 100'000'000;
  const RunResult r = run_simulation(cfg);
  EXPECT_TRUE(r.truncated);
}

TEST(RunSimulation, UnknownBenchmarkThrows) {
  RunConfig cfg = small_config();
  cfg.benchmarks = {"not_a_benchmark"};
  EXPECT_THROW(run_simulation(cfg), std::invalid_argument);
}

TEST(RunSimulation, MachineConfigCarriesSchedulerKnobs) {
  RunConfig cfg = small_config();
  cfg.kind = core::SchedulerKind::kTwoOpBlockOoo;
  cfg.iq_entries = 48;
  cfg.scan_depth = 4;
  cfg.deadlock = core::DeadlockMode::kWatchdog;
  cfg.watchdog_timeout = 999;
  cfg.dab_exclusive = false;
  cfg.oracle_disambiguation = false;
  const smt::MachineConfig mc = cfg.machine();
  EXPECT_EQ(mc.thread_count, 2u);
  EXPECT_EQ(mc.scheduler.kind, core::SchedulerKind::kTwoOpBlockOoo);
  EXPECT_EQ(mc.scheduler.iq_entries, 48u);
  EXPECT_EQ(mc.scheduler.scan_depth, 4u);
  EXPECT_EQ(mc.scheduler.deadlock, core::DeadlockMode::kWatchdog);
  EXPECT_EQ(mc.scheduler.watchdog_timeout, 999u);
  EXPECT_FALSE(mc.scheduler.dab_exclusive);
  EXPECT_FALSE(mc.oracle_disambiguation);
}

TEST(RunSimulation, SchedulerKindChangesBehaviour) {
  RunConfig cfg = small_config();
  cfg.benchmarks = {"equake", "lucas"};
  cfg.kind = core::SchedulerKind::kTraditional;
  const RunResult trad = run_simulation(cfg);
  cfg.kind = core::SchedulerKind::kTwoOpBlock;
  const RunResult block = run_simulation(cfg);
  // The reduced-tag in-order design stalls dispatch; traditional never
  // reports NDI stalls.
  EXPECT_EQ(trad.dispatch.all_threads_ndi_stall_cycles, 0u);
  EXPECT_GT(block.dispatch.all_threads_ndi_stall_cycles, 0u);
}

}  // namespace
}  // namespace msim::sim
