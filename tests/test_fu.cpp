#include "smt/fu.hpp"

#include <gtest/gtest.h>

namespace msim::smt {
namespace {

TEST(Fu, PoolSizeBoundsConcurrentIssue) {
  FuPools fu;
  // 8 integer ALUs: the 9th same-cycle allocation fails.
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(fu.try_allocate(isa::OpClass::kIntAlu, 0)) << i;
  }
  EXPECT_FALSE(fu.try_allocate(isa::OpClass::kIntAlu, 0));
  // Fully pipelined: all 8 are free again next cycle.
  EXPECT_TRUE(fu.try_allocate(isa::OpClass::kIntAlu, 1));
}

TEST(Fu, NonPipelinedDividerBlocksForIssueInterval) {
  FuPools fu;
  // 4 int mult/div units; divide has issue interval 19.
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(fu.try_allocate(isa::OpClass::kIntDiv, 0));
  }
  EXPECT_FALSE(fu.try_allocate(isa::OpClass::kIntDiv, 0));
  EXPECT_FALSE(fu.try_allocate(isa::OpClass::kIntDiv, 18));
  EXPECT_TRUE(fu.try_allocate(isa::OpClass::kIntDiv, 19));
}

TEST(Fu, MultAndDivShareAPool) {
  FuPools fu;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(fu.try_allocate(isa::OpClass::kIntMult, 0));
  }
  EXPECT_FALSE(fu.try_allocate(isa::OpClass::kIntDiv, 0));
}

TEST(Fu, BranchesUseIntAlus) {
  FuPools fu;
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(fu.try_allocate(isa::OpClass::kBranch, 0));
  }
  EXPECT_FALSE(fu.try_allocate(isa::OpClass::kIntAlu, 0));
}

TEST(Fu, LoadsAndStoresShareFourPorts) {
  FuPools fu;
  EXPECT_TRUE(fu.try_allocate(isa::OpClass::kLoad, 0));
  EXPECT_TRUE(fu.try_allocate(isa::OpClass::kStore, 0));
  EXPECT_TRUE(fu.try_allocate(isa::OpClass::kLoad, 0));
  EXPECT_TRUE(fu.try_allocate(isa::OpClass::kStore, 0));
  EXPECT_FALSE(fu.try_allocate(isa::OpClass::kLoad, 0));
}

TEST(Fu, FailedAllocationHasNoSideEffects) {
  FuPools fu;
  for (int i = 0; i < 4; ++i) (void)fu.try_allocate(isa::OpClass::kFpDiv, 0);
  // 12-cycle issue interval; a rejected attempt at cycle 5 must not extend it.
  EXPECT_FALSE(fu.try_allocate(isa::OpClass::kFpDiv, 5));
  EXPECT_TRUE(fu.try_allocate(isa::OpClass::kFpDiv, 12));
}

TEST(Fu, StatsCountIssuesAndRejects) {
  FuPools fu;
  (void)fu.try_allocate(isa::OpClass::kFpAdd, 0);
  for (int i = 0; i < 8; ++i) (void)fu.try_allocate(isa::OpClass::kFpAdd, 0);
  const auto& s = fu.stats();
  const auto kind = static_cast<std::size_t>(isa::FuKind::kFpAdd);
  EXPECT_EQ(s.issues[kind], 8u);
  EXPECT_EQ(s.structural_rejects[kind], 1u);
  fu.reset_stats();
  EXPECT_EQ(fu.stats().issues[kind], 0u);
}

TEST(Fu, ClearFreesAllUnits) {
  FuPools fu;
  for (int i = 0; i < 4; ++i) (void)fu.try_allocate(isa::OpClass::kFpSqrt, 0);
  EXPECT_FALSE(fu.try_allocate(isa::OpClass::kFpSqrt, 1));
  fu.clear();
  EXPECT_TRUE(fu.try_allocate(isa::OpClass::kFpSqrt, 1));
}

}  // namespace
}  // namespace msim::smt
