#include "isa/opclass.hpp"

#include <gtest/gtest.h>

#include "isa/instruction.hpp"

namespace msim::isa {
namespace {

// Table 1 of the paper: latencies and issue intervals per unit.
TEST(OpTiming, MatchesPaperTable1) {
  EXPECT_EQ(op_timing(OpClass::kIntAlu).latency, 1u);
  EXPECT_EQ(op_timing(OpClass::kIntAlu).issue_interval, 1u);
  EXPECT_EQ(op_timing(OpClass::kIntMult).latency, 3u);
  EXPECT_EQ(op_timing(OpClass::kIntMult).issue_interval, 1u);
  EXPECT_EQ(op_timing(OpClass::kIntDiv).latency, 20u);
  EXPECT_EQ(op_timing(OpClass::kIntDiv).issue_interval, 19u);
  EXPECT_EQ(op_timing(OpClass::kLoad).latency, 2u);
  EXPECT_EQ(op_timing(OpClass::kStore).latency, 2u);
  EXPECT_EQ(op_timing(OpClass::kFpAdd).latency, 2u);
  EXPECT_EQ(op_timing(OpClass::kFpMult).latency, 4u);
  EXPECT_EQ(op_timing(OpClass::kFpMult).issue_interval, 1u);
  EXPECT_EQ(op_timing(OpClass::kFpDiv).latency, 12u);
  EXPECT_EQ(op_timing(OpClass::kFpDiv).issue_interval, 12u);
  EXPECT_EQ(op_timing(OpClass::kFpSqrt).latency, 24u);
  EXPECT_EQ(op_timing(OpClass::kFpSqrt).issue_interval, 24u);
  EXPECT_EQ(op_timing(OpClass::kBranch).latency, 1u);
}

TEST(FuPoolSizes, MatchPaperTable1) {
  EXPECT_EQ(fu_pool_size(FuKind::kIntAlu), 8u);
  EXPECT_EQ(fu_pool_size(FuKind::kIntMultDiv), 4u);
  EXPECT_EQ(fu_pool_size(FuKind::kLoadStore), 4u);
  EXPECT_EQ(fu_pool_size(FuKind::kFpAdd), 8u);
  EXPECT_EQ(fu_pool_size(FuKind::kFpMultDiv), 4u);
}

TEST(FuKindMapping, OpsRouteToCorrectPools) {
  EXPECT_EQ(fu_kind(OpClass::kIntAlu), FuKind::kIntAlu);
  EXPECT_EQ(fu_kind(OpClass::kBranch), FuKind::kIntAlu);
  EXPECT_EQ(fu_kind(OpClass::kIntMult), FuKind::kIntMultDiv);
  EXPECT_EQ(fu_kind(OpClass::kIntDiv), FuKind::kIntMultDiv);
  EXPECT_EQ(fu_kind(OpClass::kLoad), FuKind::kLoadStore);
  EXPECT_EQ(fu_kind(OpClass::kStore), FuKind::kLoadStore);
  EXPECT_EQ(fu_kind(OpClass::kFpAdd), FuKind::kFpAdd);
  EXPECT_EQ(fu_kind(OpClass::kFpMult), FuKind::kFpMultDiv);
  EXPECT_EQ(fu_kind(OpClass::kFpDiv), FuKind::kFpMultDiv);
  EXPECT_EQ(fu_kind(OpClass::kFpSqrt), FuKind::kFpMultDiv);
}

TEST(RegClasses, FpDestinationsForFpOps) {
  EXPECT_TRUE(writes_fp_reg(OpClass::kFpAdd));
  EXPECT_TRUE(writes_fp_reg(OpClass::kFpMult));
  EXPECT_TRUE(writes_fp_reg(OpClass::kFpDiv));
  EXPECT_TRUE(writes_fp_reg(OpClass::kFpSqrt));
  EXPECT_FALSE(writes_fp_reg(OpClass::kIntAlu));
  EXPECT_FALSE(writes_fp_reg(OpClass::kLoad));  // class chosen by dest register
}

TEST(Names, AllOpClassesNamed) {
  for (unsigned i = 0; i < kOpClassCount; ++i) {
    EXPECT_NE(op_class_name(static_cast<OpClass>(i)), "unknown");
  }
  for (unsigned i = 0; i < kFuKindCount; ++i) {
    EXPECT_NE(fu_kind_name(static_cast<FuKind>(i)), "unknown");
  }
}

TEST(ArchRegs, ClassBoundary) {
  EXPECT_FALSE(is_fp_arch_reg(0));
  EXPECT_FALSE(is_fp_arch_reg(kIntArchRegs - 1));
  EXPECT_TRUE(is_fp_arch_reg(kIntArchRegs));
  EXPECT_TRUE(is_fp_arch_reg(kArchRegCount - 1));
  EXPECT_FALSE(is_fp_arch_reg(kNoArchReg));
}

TEST(DynInst, Helpers) {
  DynInst inst;
  EXPECT_FALSE(inst.is_load());
  EXPECT_FALSE(inst.has_dest());
  EXPECT_EQ(inst.source_count(), 0u);

  inst.op = OpClass::kLoad;
  inst.dest = 3;
  inst.src[0] = 1;
  EXPECT_TRUE(inst.is_load());
  EXPECT_TRUE(inst.is_mem());
  EXPECT_FALSE(inst.is_store());
  EXPECT_TRUE(inst.has_dest());
  EXPECT_EQ(inst.source_count(), 1u);

  inst.op = OpClass::kStore;
  inst.src[1] = 2;
  EXPECT_TRUE(inst.is_store());
  EXPECT_TRUE(inst.is_mem());
  EXPECT_EQ(inst.source_count(), 2u);

  inst.op = OpClass::kBranch;
  EXPECT_TRUE(inst.is_branch());
  EXPECT_FALSE(inst.is_mem());
}

}  // namespace
}  // namespace msim::isa
