// Wire-layer units of the msim_serve daemon: HTTP framing, the JSON->
// KvConfig codec, the request-key partition against the CLI surface, the
// event log, the bounded priority queue (idempotency keys, TTL expiry)
// and the crash-recovering job ledger (torn tails, format versioning,
// restart-safe ids, recovery ordering).  End-to-end socket coverage lives
// in test_serve.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/archive.hpp"
#include "common/json.hpp"
#include "persist/atomic_file.hpp"
#include "serve/codec.hpp"
#include "serve/http.hpp"
#include "serve/ledger.hpp"
#include "serve/queue.hpp"
#include "sim/cli_spec.hpp"

namespace msim::serve {
namespace {

// ---------------------------------------------------------------------------
// HTTP framing

TEST(HttpParser, ParsesSimpleGet) {
  HttpRequestParser p;
  EXPECT_TRUE(p.consume("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"));
  const HttpRequest req = p.take();
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.target, "/healthz");
  EXPECT_EQ(req.headers.at("host"), "x");
  EXPECT_TRUE(req.body.empty());
  EXPECT_FALSE(p.complete());
}

TEST(HttpParser, ParsesPostBodyFedByteByByte) {
  const std::string raw =
      "POST /v1/jobs HTTP/1.1\r\nContent-Length: 13\r\n\r\n{\"config\":{}}";
  HttpRequestParser p;
  bool complete = false;
  for (const char c : raw) complete = p.consume(std::string_view(&c, 1));
  ASSERT_TRUE(complete);
  const HttpRequest req = p.take();
  EXPECT_EQ(req.method, "POST");
  EXPECT_EQ(req.body, "{\"config\":{}}");
}

TEST(HttpParser, KeepsPipelinedBytesForTheNextRequest) {
  HttpRequestParser p;
  ASSERT_TRUE(
      p.consume("GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n"));
  EXPECT_EQ(p.take().target, "/a");
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.take().target, "/b");
}

TEST(HttpParser, RejectsMalformedRequestLine) {
  HttpRequestParser p;
  try {
    p.consume("NONSENSE\r\n\r\n");
    FAIL() << "expected HttpError";
  } catch (const HttpError& e) {
    EXPECT_EQ(e.status(), 400);
    EXPECT_NE(std::string(e.what()).find("request line"), std::string::npos);
  }
}

TEST(HttpParser, RejectsMalformedHeaderAndContentLength) {
  {
    HttpRequestParser p;
    EXPECT_THROW(p.consume("GET / HTTP/1.1\r\nbogus header\r\n\r\n"),
                 HttpError);
  }
  {
    HttpRequestParser p;
    try {
      p.consume("GET / HTTP/1.1\r\nContent-Length: ten\r\n\r\n");
      FAIL() << "expected HttpError";
    } catch (const HttpError& e) {
      EXPECT_EQ(e.status(), 400);
    }
  }
}

TEST(HttpParser, RejectsOversizedBodyDeclarationWith413) {
  HttpRequestParser p(/*max_head_bytes=*/1024, /*max_body_bytes=*/64);
  try {
    p.consume("POST / HTTP/1.1\r\nContent-Length: 65\r\n\r\n");
    FAIL() << "expected HttpError";
  } catch (const HttpError& e) {
    EXPECT_EQ(e.status(), 413);
  }
}

TEST(HttpParser, RejectsOversizedHeadWith413) {
  HttpRequestParser p(/*max_head_bytes=*/64, /*max_body_bytes=*/64);
  const std::string junk(200, 'x');
  EXPECT_THROW(p.consume("GET / HTTP/1.1\r\nX: " + junk), HttpError);
}

TEST(HttpParser, RejectsChunkedRequestBodies) {
  HttpRequestParser p;
  try {
    p.consume("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
    FAIL() << "expected HttpError";
  } catch (const HttpError& e) {
    EXPECT_EQ(e.status(), 400);
    EXPECT_NE(std::string(e.what()).find("Content-Length"),
              std::string::npos);
  }
}

TEST(HttpFormat, ResponseAndChunkFraming) {
  const std::string resp =
      format_response(200, "application/json", "{}", /*keep_alive=*/true);
  EXPECT_EQ(resp.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_NE(resp.find("Content-Length: 2\r\n"), std::string::npos);
  EXPECT_NE(resp.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_EQ(resp.substr(resp.size() - 2), "{}");

  EXPECT_EQ(format_chunk("hello"), "5\r\nhello\r\n");
  const std::string head = format_stream_head(200, "application/x-ndjson");
  EXPECT_NE(head.find("Transfer-Encoding: chunked\r\n"), std::string::npos);

  const std::string err = error_body(429, "queue full");
  const JsonValue doc = JsonValue::parse(err);
  EXPECT_EQ(doc.at("error").at("status").as_number(), 429.0);
  EXPECT_EQ(doc.at("error").at("message").as_string(), "queue full");
}

// ---------------------------------------------------------------------------
// JSON -> KvConfig codec

TEST(Codec, ScalarsBecomeCliSpellings) {
  const JsonValue doc = JsonValue::parse(
      R"({"benchmarks":"gcc,gzip","iq":64,"verify":true,)"
      R"("fault_intensity":0.25,"wrong_path":false})");
  const KvConfig kv = kv_from_json(doc);
  EXPECT_EQ(kv.get_string("benchmarks", ""), "gcc,gzip");
  EXPECT_EQ(kv.get_string("iq", ""), "64");  // integral: no decimal point
  EXPECT_EQ(kv.get_string("verify", ""), "1");
  EXPECT_EQ(kv.get_string("wrong_path", ""), "0");
  EXPECT_EQ(kv.get_double("fault_intensity", 0.0), 0.25);
}

TEST(Codec, RejectsNestedValuesWithTheOffendingKey) {
  const JsonValue doc = JsonValue::parse(R"({"iq":{"nested":1}})");
  try {
    (void)kv_from_json(doc);
    FAIL() << "expected HttpError";
  } catch (const HttpError& e) {
    EXPECT_EQ(e.status(), 400);
    EXPECT_NE(std::string(e.what()).find("config.iq"), std::string::npos);
  }
  EXPECT_THROW((void)kv_from_json(JsonValue::parse(R"({"iq":null})")),
               HttpError);
  EXPECT_THROW((void)kv_from_json(JsonValue::parse(R"({"iq":[1,2]})")),
               HttpError);
}

TEST(Codec, AcceptsEveryRequestKeyRejectsTheRest) {
  KvConfig ok;
  ok.set("sweep", "2");
  ok.set("iq", "32,64");
  ok.set("workers", "2");
  EXPECT_NO_THROW(validate_request_keys(ok));

  KvConfig rejected;
  rejected.set("stats_json", "/tmp/x.json");
  try {
    validate_request_keys(rejected);
    FAIL() << "expected HttpError";
  } catch (const HttpError& e) {
    EXPECT_EQ(e.status(), 400);
    // The documented reason from serve_rejected_keys() is echoed.
    EXPECT_NE(std::string(e.what()).find("/v1/jobs/<id>/result"),
              std::string::npos);
  }

  KvConfig unknown;
  unknown.set("iqq", "64");
  try {
    validate_request_keys(unknown);
    FAIL() << "expected HttpError";
  } catch (const HttpError& e) {
    EXPECT_EQ(e.status(), 400);
    EXPECT_NE(std::string(e.what()).find("iqq"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// The serve surface cannot drift from the CLI surface (the same pattern as
// the cli_usage cross-checks in test_intervals.cpp).

TEST(ServeSpec, RequestAndRejectedKeysPartitionTheCliKeys) {
  std::set<std::string_view> cli(sim::cli_known_keys().begin(),
                                 sim::cli_known_keys().end());
  std::set<std::string_view> request(sim::serve_request_keys().begin(),
                                     sim::serve_request_keys().end());
  std::set<std::string_view> rejected;
  for (const sim::RejectedKey& r : sim::serve_rejected_keys()) {
    EXPECT_FALSE(r.reason.empty()) << r.key;
    rejected.insert(r.key);
  }
  // Disjoint...
  for (const auto& k : request) {
    EXPECT_FALSE(rejected.contains(k)) << k << " is both accepted and rejected";
  }
  // ...and together exactly the CLI key set.
  std::set<std::string_view> united = request;
  united.insert(rejected.begin(), rejected.end());
  EXPECT_EQ(united, cli)
      << "serve_request_keys + serve_rejected_keys must cover "
         "cli_known_keys exactly: a new CLI knob needs a wire decision";
}

TEST(ServeSpec, DaemonKeysAreDocumentedInServeUsage) {
  const std::string_view usage = sim::serve_usage();
  for (const std::string_view key : sim::serve_known_keys()) {
    if (key == "help") continue;  // spelled --help in the text
    std::string flag = "--" + std::string(key);
    std::replace(flag.begin(), flag.end(), '_', '-');
    EXPECT_NE(usage.find(flag), std::string_view::npos)
        << flag << " missing from serve_usage()";
  }
  for (const std::string_view flag : sim::serve_value_flags()) {
    EXPECT_NE(std::find(sim::serve_known_keys().begin(),
                        sim::serve_known_keys().end(), flag),
              sim::serve_known_keys().end())
        << flag << " takes a value but is not a known key";
  }
}

TEST(ServeSpec, RequestKeysAreValidCliKeys) {
  const auto cli = sim::cli_known_keys();
  for (const std::string_view key : sim::serve_request_keys()) {
    EXPECT_NE(std::find(cli.begin(), cli.end(), key), cli.end())
        << key << " accepted over the wire but unknown to msim_cli";
  }
}

// ---------------------------------------------------------------------------
// EventLog

TEST(EventLog, ReplayThenFollowThenClose) {
  EventLog log;
  log.append("a");
  log.append("b");
  std::string line;
  EXPECT_EQ(log.fetch(0, 10, line), EventLog::Fetch::kLine);
  EXPECT_EQ(line, "a");
  EXPECT_EQ(log.fetch(1, 10, line), EventLog::Fetch::kLine);
  EXPECT_EQ(line, "b");
  EXPECT_EQ(log.fetch(2, 10, line), EventLog::Fetch::kTimeout);

  std::thread writer([&] {
    log.append("c");
    log.close();
  });
  EXPECT_EQ(log.fetch(2, 5000, line), EventLog::Fetch::kLine);
  EXPECT_EQ(line, "c");
  EXPECT_EQ(log.fetch(3, 5000, line), EventLog::Fetch::kClosed);
  writer.join();
  log.append("after close is dropped");
  EXPECT_EQ(log.size(), 3u);
}

TEST(EventLog, OverflowDropsWithOneTruncationMarker) {
  EventLog log;
  for (std::size_t i = 0; i < EventLog::kMaxLines + 100; ++i) {
    log.append("x");
  }
  EXPECT_EQ(log.size(), EventLog::kMaxLines + 1);
  std::string line;
  ASSERT_EQ(log.fetch(EventLog::kMaxLines, 10, line), EventLog::Fetch::kLine);
  EXPECT_NE(line.find("events_truncated"), std::string::npos);
}

// ---------------------------------------------------------------------------
// JobQueue

std::shared_ptr<Job> make_job(JobQueue& q, int priority) {
  auto job = std::make_shared<Job>();
  job->id = q.allocate_id();
  job->priority = priority;
  return q.enqueue(std::move(job));
}

TEST(JobQueue, PriorityFirstFifoWithin) {
  JobQueue q(16);
  const auto low = make_job(q, 0);
  const auto high = make_job(q, 5);
  const auto low2 = make_job(q, 0);
  EXPECT_EQ(q.next_runnable()->id, high->id);
  EXPECT_EQ(q.next_runnable()->id, low->id);
  EXPECT_EQ(q.next_runnable()->id, low2->id);
}

TEST(JobQueue, DepthBoundRejectsWith429) {
  JobQueue q(2);
  (void)make_job(q, 0);
  (void)make_job(q, 0);
  try {
    (void)make_job(q, 0);
    FAIL() << "expected HttpError";
  } catch (const HttpError& e) {
    EXPECT_EQ(e.status(), 429);
    EXPECT_NE(std::string(e.what()).find("queue-depth"), std::string::npos);
  }
}

TEST(JobQueue, CancelQueuedIsImmediateCancelRunningRaisesTheFlag) {
  JobQueue q(16);
  const auto a = make_job(q, 0);
  const auto b = make_job(q, 0);
  EXPECT_TRUE(q.cancel(b->id));
  EXPECT_EQ(q.snapshot(*b).state, JobState::kCancelled);
  EXPECT_TRUE(b->events.closed());

  const auto running = q.next_runnable();
  ASSERT_EQ(running->id, a->id);
  EXPECT_TRUE(q.cancel(a->id));
  EXPECT_EQ(q.snapshot(*a).state, JobState::kRunning);
  EXPECT_TRUE(a->cancel.load());
  q.finish(*a, JobState::kCancelled, "", "cancelled while running");
  EXPECT_EQ(q.snapshot(*a).state, JobState::kCancelled);

  EXPECT_FALSE(q.cancel(999));
}

TEST(JobQueue, DrainCancelsQueuedAndRejectsNewSubmissions) {
  JobQueue q(16);
  const auto queued = make_job(q, 0);
  q.drain(/*cancel_running=*/false);
  EXPECT_EQ(q.snapshot(*queued).state, JobState::kCancelled);
  EXPECT_TRUE(q.draining());
  EXPECT_TRUE(q.idle());
  try {
    (void)make_job(q, 0);
    FAIL() << "expected HttpError";
  } catch (const HttpError& e) {
    EXPECT_EQ(e.status(), 503);
  }
  EXPECT_EQ(q.next_runnable(), nullptr);  // draining + empty: executors exit
}

TEST(JobQueue, StatsCountStates) {
  JobQueue q(16);
  const auto a = make_job(q, 0);
  (void)make_job(q, 0);
  (void)q.next_runnable();
  q.finish(*a, JobState::kDone, "{}", "");
  const QueueStats s = q.stats();
  EXPECT_EQ(s.submitted, 2u);
  EXPECT_EQ(s.done, 1u);
  EXPECT_EQ(s.queued, 1u);
  EXPECT_EQ(s.running, 0u);
}

// ---------------------------------------------------------------------------
// Idempotency keys and TTL expiry

TEST(JobQueue, IdempotencyKeyDedupesToTheExistingJob) {
  JobQueue q(16);
  auto first = std::make_shared<Job>();
  first->id = q.allocate_id();
  first->idempotency_key = "campaign-42";
  ASSERT_EQ(q.enqueue(first), first);

  // A resubmission with the same key returns the *original* job -- nothing
  // is enqueued, so the resubmitted job object is discarded.
  auto dup = std::make_shared<Job>();
  dup->id = q.allocate_id();
  dup->idempotency_key = "campaign-42";
  EXPECT_EQ(q.enqueue(dup), first);
  EXPECT_EQ(q.stats().submitted, 1u);
  EXPECT_EQ(q.stats().queued, 1u);

  // The dedupe holds after the job finished: the client still gets the
  // terminal job back, never a second execution.
  (void)q.next_runnable();
  q.finish(*first, JobState::kDone, "{}", "");
  auto late = std::make_shared<Job>();
  late->id = q.allocate_id();
  late->idempotency_key = "campaign-42";
  EXPECT_EQ(q.enqueue(late), first);
  EXPECT_EQ(q.stats().submitted, 1u);

  // A different key is a different job.
  auto other = std::make_shared<Job>();
  other->id = q.allocate_id();
  other->idempotency_key = "campaign-43";
  EXPECT_EQ(q.enqueue(other), other);
  EXPECT_EQ(q.stats().submitted, 2u);
}

TEST(JobQueue, TtlExpiresQueuedJobsTerminally) {
  JobQueue q(16);
  std::vector<std::pair<std::uint64_t, JobState>> transitions;
  q.set_transition_hook([&](const Job& job, JobState state) {
    transitions.emplace_back(job.id, state);
  });
  auto job = std::make_shared<Job>();
  job->id = q.allocate_id();
  job->ttl_ms = 1;
  ASSERT_EQ(q.enqueue(job), job);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.expire_overdue();

  EXPECT_EQ(q.snapshot(*job).state, JobState::kExpired);
  EXPECT_NE(q.snapshot(*job).error.find("ttl_ms=1"), std::string::npos);
  EXPECT_TRUE(job->events.closed());
  EXPECT_EQ(q.stats().expired, 1u);
  EXPECT_EQ(q.stats().queued, 0u);
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_EQ(transitions[0], std::make_pair(job->id, JobState::kQueued));
  EXPECT_EQ(transitions[1], std::make_pair(job->id, JobState::kExpired));

  // An expired job is terminal: cancel is an idempotent no-op.
  EXPECT_TRUE(q.cancel(job->id));
  EXPECT_EQ(q.snapshot(*job).state, JobState::kExpired);

  // No TTL means no deadline: a fresh job without ttl_ms never expires.
  auto forever = std::make_shared<Job>();
  forever->id = q.allocate_id();
  ASSERT_EQ(q.enqueue(forever), forever);
  q.expire_overdue();
  EXPECT_EQ(q.snapshot(*forever).state, JobState::kQueued);
}

TEST(JobQueue, TransitionHookSeesTheFullLifecycle) {
  JobQueue q(16);
  std::vector<JobState> states;
  q.set_transition_hook(
      [&](const Job&, JobState state) { states.push_back(state); });
  const auto job = make_job(q, 0);
  (void)q.next_runnable();
  q.finish(*job, JobState::kDone, "{}", "");
  ASSERT_EQ(states.size(), 3u);
  EXPECT_EQ(states[0], JobState::kQueued);
  EXPECT_EQ(states[1], JobState::kRunning);
  EXPECT_EQ(states[2], JobState::kDone);
}

TEST(JobQueue, RestorePreservesPriorityFifoAndFiresNoHooks) {
  JobQueue q(2);  // depth 2: restore must bypass the bound
  std::size_t hook_calls = 0;
  q.set_transition_hook([&](const Job&, JobState) { ++hook_calls; });
  q.set_next_id(9);

  // Replayed out of submission order, with one terminal job in between --
  // exactly what a ledger replay hands the queue.
  const auto restored = [&](std::uint64_t id, int priority, JobState state) {
    auto job = std::make_shared<Job>();
    job->id = id;
    job->priority = priority;
    job->state = state;
    if (state == JobState::kDone) job->result = "{}";
    q.restore(job);
    return job;
  };
  const auto low_late = restored(5, 0, JobState::kQueued);
  const auto done = restored(2, 9, JobState::kDone);
  const auto high = restored(4, 3, JobState::kQueued);
  const auto low_early = restored(3, 0, JobState::kQueued);

  EXPECT_EQ(hook_calls, 0u) << "the compacted ledger already has these";
  EXPECT_TRUE(done->events.closed());
  EXPECT_EQ(q.snapshot(*done).state, JobState::kDone);
  EXPECT_EQ(q.stats().done, 1u);

  // Dispatch order: highest priority first, then FIFO by original id --
  // the restart must not reshuffle the queue.
  EXPECT_EQ(q.next_runnable()->id, high->id);
  EXPECT_EQ(q.next_runnable()->id, low_early->id);
  EXPECT_EQ(q.next_runnable()->id, low_late->id);

  // set_next_id floors allocation above every replayed id: no reissue.
  EXPECT_EQ(q.allocate_id(), 9u);
  q.set_next_id(4);  // lowering is ignored
  EXPECT_EQ(q.allocate_id(), 10u);
}

// ---------------------------------------------------------------------------
// JobLedger

std::string ledger_dir(const std::string& stem) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       (stem + "-" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(path);
  std::filesystem::create_directories(path);
  return path;
}

/// Job is pinned in place (atomics, event-log mutex), so the helper
/// appends the `accepted` record directly instead of returning one.
void record_accepted_job(JobLedger& ledger, std::uint64_t id, int priority,
                         bool sweep, const std::string& key = "",
                         std::uint64_t ttl_ms = 0) {
  Job job;
  job.id = id;
  job.priority = priority;
  job.is_sweep = sweep;
  job.idempotency_key = key;
  job.ttl_ms = ttl_ms;
  job.kv.set("sweep", sweep ? "2" : "0");
  job.kv.set("horizon", "1000");
  ledger.record_accepted(job);
}

TEST(JobLedger, LifecycleRoundTripsAcrossReopen) {
  const std::string dir = ledger_dir("msim-ledger-roundtrip");
  {
    JobLedger ledger(dir);
    EXPECT_TRUE(ledger.recovered().empty());
    EXPECT_EQ(ledger.next_id(), 1u);
    record_accepted_job(ledger, 1, 2, false);
    ledger.record_running(1);
    ledger.record_done(1, JobLedger::result_path(dir, 1));
    record_accepted_job(ledger, 2, 0, true);
    ledger.record_running(2);  // interrupted: no terminal record
    record_accepted_job(ledger, 3, 7, false);  // never started
  }
  JobLedger reopened(dir);
  EXPECT_EQ(reopened.next_id(), 4u) << "ids must never be reissued";
  ASSERT_EQ(reopened.recovered().size(), 3u);

  const LedgerJob& done = reopened.recovered()[0];
  EXPECT_EQ(done.id, 1u);
  EXPECT_EQ(done.priority, 2);
  EXPECT_TRUE(done.terminal);
  EXPECT_EQ(done.state, JobState::kDone);
  EXPECT_EQ(done.result_path, JobLedger::result_path(dir, 1));

  const LedgerJob& interrupted = reopened.recovered()[1];
  EXPECT_FALSE(interrupted.terminal);
  EXPECT_TRUE(interrupted.started);
  EXPECT_TRUE(interrupted.sweep);
  EXPECT_EQ(interrupted.kv.get_string("horizon", ""), "1000");

  const LedgerJob& queued = reopened.recovered()[2];
  EXPECT_FALSE(queued.started);
  EXPECT_EQ(queued.priority, 7);
  std::filesystem::remove_all(dir);
}

TEST(JobLedger, TornTailIsTruncatedOnReplay) {
  const std::string dir = ledger_dir("msim-ledger-torn");
  {
    JobLedger ledger(dir);
    record_accepted_job(ledger, 1, 0, false);
    record_accepted_job(ledger, 2, 0, false);
    ledger.record_done(1, JobLedger::result_path(dir, 1));
  }
  // A kill -9 mid-append can at worst leave a partial final line; every
  // complete record before it must survive the replay.
  {
    std::ofstream out(dir + "/ledger.jsonl", std::ios::app);
    out << "{\"record\":\"done\",\"id\":2,\"resu";  // torn: no close, no \n
  }
  {
    JobLedger ledger(dir);
    ASSERT_EQ(ledger.recovered().size(), 2u);
    EXPECT_TRUE(ledger.recovered()[0].terminal);
    EXPECT_FALSE(ledger.recovered()[1].terminal)
        << "the torn `done` for job 2 must not count";
  }
  // The compaction rewrote the file: a third open sees a clean ledger with
  // no torn bytes (every line parses).
  std::ifstream in(dir + "/ledger.jsonl");
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_NO_THROW((void)JsonValue::parse(line)) << line;
  }
  EXPECT_GE(lines, 3u);  // header + 2 accepted (+ job 1's done)
  std::filesystem::remove_all(dir);
}

TEST(JobLedger, CorruptMidFileRecordKeepsThePrefix) {
  const std::string dir = ledger_dir("msim-ledger-corrupt");
  {
    JobLedger ledger(dir);
    record_accepted_job(ledger, 1, 0, false);
  }
  {
    std::ofstream out(dir + "/ledger.jsonl", std::ios::app);
    out << "NOT JSON AT ALL\n";
    out << "{\"record\":\"accepted\",\"id\":9,\"priority\":0,\"sweep\":false,"
           "\"config\":{}}\n";
  }
  JobLedger ledger(dir);
  // Replay stops at the first malformed line: job 9 (after the corruption)
  // is not trusted, job 1 (before it) is.
  ASSERT_EQ(ledger.recovered().size(), 1u);
  EXPECT_EQ(ledger.recovered()[0].id, 1u);
  std::filesystem::remove_all(dir);
}

TEST(JobLedger, NewerFormatVersionIsRejectedActionably) {
  const std::string dir = ledger_dir("msim-ledger-newer");
  persist::write_text_atomic(
      dir + "/ledger.jsonl",
      "{\"msim_job_ledger\": 99, \"next_id\": 5}\n");
  try {
    JobLedger ledger(dir);
    FAIL() << "expected PersistError";
  } catch (const persist::PersistError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("99"), std::string::npos) << what;
    EXPECT_NE(what.find("newer"), std::string::npos) << what;
  }
  std::filesystem::remove_all(dir);
}

TEST(JobLedger, NonLedgerFileIsRejected) {
  const std::string dir = ledger_dir("msim-ledger-notledger");
  persist::write_text_atomic(dir + "/ledger.jsonl", "hello world\n");
  EXPECT_THROW(JobLedger{dir}, persist::PersistError);
  persist::write_text_atomic(dir + "/ledger.jsonl", "{\"other\": 1}\n");
  EXPECT_THROW(JobLedger{dir}, persist::PersistError);
  std::filesystem::remove_all(dir);
}

TEST(JobLedger, CompactionDropsNothingAndBoundsTheFile) {
  const std::string dir = ledger_dir("msim-ledger-compact");
  {
    JobLedger ledger(dir);
    record_accepted_job(ledger, 1, 1, false, "key-1", 60'000);
    ledger.record_running(1);
    ledger.record_failed(1, "boom");
    // Churn: repeated running/terminal pairs for one more job would grow
    // an append-only file forever; compaction keeps it bounded.
    record_accepted_job(ledger, 2, 0, false);
    ledger.record_running(2);
    ledger.record_cancelled(2, "client asked");
  }
  const auto size_after_first =
      std::filesystem::file_size(dir + "/ledger.jsonl");
  {
    JobLedger ledger(dir);
    ASSERT_EQ(ledger.recovered().size(), 2u);
    const LedgerJob& failed = ledger.recovered()[0];
    EXPECT_EQ(failed.state, JobState::kFailed);
    EXPECT_EQ(failed.error, "boom");
    EXPECT_EQ(failed.idempotency_key, "key-1");
    EXPECT_EQ(failed.ttl_ms, 60'000u);
    EXPECT_EQ(ledger.recovered()[1].state, JobState::kCancelled);
  }
  // Compaction drops the `running` records; reopening never grows the file.
  EXPECT_LE(std::filesystem::file_size(dir + "/ledger.jsonl"),
            size_after_first);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace msim::serve
