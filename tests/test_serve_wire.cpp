// Wire-layer units of the msim_serve daemon: HTTP framing, the JSON->
// KvConfig codec, the request-key partition against the CLI surface, the
// event log, and the bounded priority queue.  End-to-end socket coverage
// lives in test_serve.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "serve/codec.hpp"
#include "serve/http.hpp"
#include "serve/queue.hpp"
#include "sim/cli_spec.hpp"

namespace msim::serve {
namespace {

// ---------------------------------------------------------------------------
// HTTP framing

TEST(HttpParser, ParsesSimpleGet) {
  HttpRequestParser p;
  EXPECT_TRUE(p.consume("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"));
  const HttpRequest req = p.take();
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.target, "/healthz");
  EXPECT_EQ(req.headers.at("host"), "x");
  EXPECT_TRUE(req.body.empty());
  EXPECT_FALSE(p.complete());
}

TEST(HttpParser, ParsesPostBodyFedByteByByte) {
  const std::string raw =
      "POST /v1/jobs HTTP/1.1\r\nContent-Length: 13\r\n\r\n{\"config\":{}}";
  HttpRequestParser p;
  bool complete = false;
  for (const char c : raw) complete = p.consume(std::string_view(&c, 1));
  ASSERT_TRUE(complete);
  const HttpRequest req = p.take();
  EXPECT_EQ(req.method, "POST");
  EXPECT_EQ(req.body, "{\"config\":{}}");
}

TEST(HttpParser, KeepsPipelinedBytesForTheNextRequest) {
  HttpRequestParser p;
  ASSERT_TRUE(
      p.consume("GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n"));
  EXPECT_EQ(p.take().target, "/a");
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.take().target, "/b");
}

TEST(HttpParser, RejectsMalformedRequestLine) {
  HttpRequestParser p;
  try {
    p.consume("NONSENSE\r\n\r\n");
    FAIL() << "expected HttpError";
  } catch (const HttpError& e) {
    EXPECT_EQ(e.status(), 400);
    EXPECT_NE(std::string(e.what()).find("request line"), std::string::npos);
  }
}

TEST(HttpParser, RejectsMalformedHeaderAndContentLength) {
  {
    HttpRequestParser p;
    EXPECT_THROW(p.consume("GET / HTTP/1.1\r\nbogus header\r\n\r\n"),
                 HttpError);
  }
  {
    HttpRequestParser p;
    try {
      p.consume("GET / HTTP/1.1\r\nContent-Length: ten\r\n\r\n");
      FAIL() << "expected HttpError";
    } catch (const HttpError& e) {
      EXPECT_EQ(e.status(), 400);
    }
  }
}

TEST(HttpParser, RejectsOversizedBodyDeclarationWith413) {
  HttpRequestParser p(/*max_head_bytes=*/1024, /*max_body_bytes=*/64);
  try {
    p.consume("POST / HTTP/1.1\r\nContent-Length: 65\r\n\r\n");
    FAIL() << "expected HttpError";
  } catch (const HttpError& e) {
    EXPECT_EQ(e.status(), 413);
  }
}

TEST(HttpParser, RejectsOversizedHeadWith413) {
  HttpRequestParser p(/*max_head_bytes=*/64, /*max_body_bytes=*/64);
  const std::string junk(200, 'x');
  EXPECT_THROW(p.consume("GET / HTTP/1.1\r\nX: " + junk), HttpError);
}

TEST(HttpParser, RejectsChunkedRequestBodies) {
  HttpRequestParser p;
  try {
    p.consume("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
    FAIL() << "expected HttpError";
  } catch (const HttpError& e) {
    EXPECT_EQ(e.status(), 400);
    EXPECT_NE(std::string(e.what()).find("Content-Length"),
              std::string::npos);
  }
}

TEST(HttpFormat, ResponseAndChunkFraming) {
  const std::string resp =
      format_response(200, "application/json", "{}", /*keep_alive=*/true);
  EXPECT_EQ(resp.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_NE(resp.find("Content-Length: 2\r\n"), std::string::npos);
  EXPECT_NE(resp.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_EQ(resp.substr(resp.size() - 2), "{}");

  EXPECT_EQ(format_chunk("hello"), "5\r\nhello\r\n");
  const std::string head = format_stream_head(200, "application/x-ndjson");
  EXPECT_NE(head.find("Transfer-Encoding: chunked\r\n"), std::string::npos);

  const std::string err = error_body(429, "queue full");
  const JsonValue doc = JsonValue::parse(err);
  EXPECT_EQ(doc.at("error").at("status").as_number(), 429.0);
  EXPECT_EQ(doc.at("error").at("message").as_string(), "queue full");
}

// ---------------------------------------------------------------------------
// JSON -> KvConfig codec

TEST(Codec, ScalarsBecomeCliSpellings) {
  const JsonValue doc = JsonValue::parse(
      R"({"benchmarks":"gcc,gzip","iq":64,"verify":true,)"
      R"("fault_intensity":0.25,"wrong_path":false})");
  const KvConfig kv = kv_from_json(doc);
  EXPECT_EQ(kv.get_string("benchmarks", ""), "gcc,gzip");
  EXPECT_EQ(kv.get_string("iq", ""), "64");  // integral: no decimal point
  EXPECT_EQ(kv.get_string("verify", ""), "1");
  EXPECT_EQ(kv.get_string("wrong_path", ""), "0");
  EXPECT_EQ(kv.get_double("fault_intensity", 0.0), 0.25);
}

TEST(Codec, RejectsNestedValuesWithTheOffendingKey) {
  const JsonValue doc = JsonValue::parse(R"({"iq":{"nested":1}})");
  try {
    (void)kv_from_json(doc);
    FAIL() << "expected HttpError";
  } catch (const HttpError& e) {
    EXPECT_EQ(e.status(), 400);
    EXPECT_NE(std::string(e.what()).find("config.iq"), std::string::npos);
  }
  EXPECT_THROW((void)kv_from_json(JsonValue::parse(R"({"iq":null})")),
               HttpError);
  EXPECT_THROW((void)kv_from_json(JsonValue::parse(R"({"iq":[1,2]})")),
               HttpError);
}

TEST(Codec, AcceptsEveryRequestKeyRejectsTheRest) {
  KvConfig ok;
  ok.set("sweep", "2");
  ok.set("iq", "32,64");
  ok.set("workers", "2");
  EXPECT_NO_THROW(validate_request_keys(ok));

  KvConfig rejected;
  rejected.set("stats_json", "/tmp/x.json");
  try {
    validate_request_keys(rejected);
    FAIL() << "expected HttpError";
  } catch (const HttpError& e) {
    EXPECT_EQ(e.status(), 400);
    // The documented reason from serve_rejected_keys() is echoed.
    EXPECT_NE(std::string(e.what()).find("/v1/jobs/<id>/result"),
              std::string::npos);
  }

  KvConfig unknown;
  unknown.set("iqq", "64");
  try {
    validate_request_keys(unknown);
    FAIL() << "expected HttpError";
  } catch (const HttpError& e) {
    EXPECT_EQ(e.status(), 400);
    EXPECT_NE(std::string(e.what()).find("iqq"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// The serve surface cannot drift from the CLI surface (the same pattern as
// the cli_usage cross-checks in test_intervals.cpp).

TEST(ServeSpec, RequestAndRejectedKeysPartitionTheCliKeys) {
  std::set<std::string_view> cli(sim::cli_known_keys().begin(),
                                 sim::cli_known_keys().end());
  std::set<std::string_view> request(sim::serve_request_keys().begin(),
                                     sim::serve_request_keys().end());
  std::set<std::string_view> rejected;
  for (const sim::RejectedKey& r : sim::serve_rejected_keys()) {
    EXPECT_FALSE(r.reason.empty()) << r.key;
    rejected.insert(r.key);
  }
  // Disjoint...
  for (const auto& k : request) {
    EXPECT_FALSE(rejected.contains(k)) << k << " is both accepted and rejected";
  }
  // ...and together exactly the CLI key set.
  std::set<std::string_view> united = request;
  united.insert(rejected.begin(), rejected.end());
  EXPECT_EQ(united, cli)
      << "serve_request_keys + serve_rejected_keys must cover "
         "cli_known_keys exactly: a new CLI knob needs a wire decision";
}

TEST(ServeSpec, DaemonKeysAreDocumentedInServeUsage) {
  const std::string_view usage = sim::serve_usage();
  for (const std::string_view key : sim::serve_known_keys()) {
    if (key == "help") continue;  // spelled --help in the text
    std::string flag = "--" + std::string(key);
    std::replace(flag.begin(), flag.end(), '_', '-');
    EXPECT_NE(usage.find(flag), std::string_view::npos)
        << flag << " missing from serve_usage()";
  }
  for (const std::string_view flag : sim::serve_value_flags()) {
    EXPECT_NE(std::find(sim::serve_known_keys().begin(),
                        sim::serve_known_keys().end(), flag),
              sim::serve_known_keys().end())
        << flag << " takes a value but is not a known key";
  }
}

TEST(ServeSpec, RequestKeysAreValidCliKeys) {
  const auto cli = sim::cli_known_keys();
  for (const std::string_view key : sim::serve_request_keys()) {
    EXPECT_NE(std::find(cli.begin(), cli.end(), key), cli.end())
        << key << " accepted over the wire but unknown to msim_cli";
  }
}

// ---------------------------------------------------------------------------
// EventLog

TEST(EventLog, ReplayThenFollowThenClose) {
  EventLog log;
  log.append("a");
  log.append("b");
  std::string line;
  EXPECT_EQ(log.fetch(0, 10, line), EventLog::Fetch::kLine);
  EXPECT_EQ(line, "a");
  EXPECT_EQ(log.fetch(1, 10, line), EventLog::Fetch::kLine);
  EXPECT_EQ(line, "b");
  EXPECT_EQ(log.fetch(2, 10, line), EventLog::Fetch::kTimeout);

  std::thread writer([&] {
    log.append("c");
    log.close();
  });
  EXPECT_EQ(log.fetch(2, 5000, line), EventLog::Fetch::kLine);
  EXPECT_EQ(line, "c");
  EXPECT_EQ(log.fetch(3, 5000, line), EventLog::Fetch::kClosed);
  writer.join();
  log.append("after close is dropped");
  EXPECT_EQ(log.size(), 3u);
}

TEST(EventLog, OverflowDropsWithOneTruncationMarker) {
  EventLog log;
  for (std::size_t i = 0; i < EventLog::kMaxLines + 100; ++i) {
    log.append("x");
  }
  EXPECT_EQ(log.size(), EventLog::kMaxLines + 1);
  std::string line;
  ASSERT_EQ(log.fetch(EventLog::kMaxLines, 10, line), EventLog::Fetch::kLine);
  EXPECT_NE(line.find("events_truncated"), std::string::npos);
}

// ---------------------------------------------------------------------------
// JobQueue

std::shared_ptr<Job> make_job(JobQueue& q, int priority) {
  auto job = std::make_shared<Job>();
  job->id = q.allocate_id();
  job->priority = priority;
  q.enqueue(job);
  return job;
}

TEST(JobQueue, PriorityFirstFifoWithin) {
  JobQueue q(16);
  const auto low = make_job(q, 0);
  const auto high = make_job(q, 5);
  const auto low2 = make_job(q, 0);
  EXPECT_EQ(q.next_runnable()->id, high->id);
  EXPECT_EQ(q.next_runnable()->id, low->id);
  EXPECT_EQ(q.next_runnable()->id, low2->id);
}

TEST(JobQueue, DepthBoundRejectsWith429) {
  JobQueue q(2);
  (void)make_job(q, 0);
  (void)make_job(q, 0);
  try {
    (void)make_job(q, 0);
    FAIL() << "expected HttpError";
  } catch (const HttpError& e) {
    EXPECT_EQ(e.status(), 429);
    EXPECT_NE(std::string(e.what()).find("queue-depth"), std::string::npos);
  }
}

TEST(JobQueue, CancelQueuedIsImmediateCancelRunningRaisesTheFlag) {
  JobQueue q(16);
  const auto a = make_job(q, 0);
  const auto b = make_job(q, 0);
  EXPECT_TRUE(q.cancel(b->id));
  EXPECT_EQ(q.snapshot(*b).state, JobState::kCancelled);
  EXPECT_TRUE(b->events.closed());

  const auto running = q.next_runnable();
  ASSERT_EQ(running->id, a->id);
  EXPECT_TRUE(q.cancel(a->id));
  EXPECT_EQ(q.snapshot(*a).state, JobState::kRunning);
  EXPECT_TRUE(a->cancel.load());
  q.finish(*a, JobState::kCancelled, "", "cancelled while running");
  EXPECT_EQ(q.snapshot(*a).state, JobState::kCancelled);

  EXPECT_FALSE(q.cancel(999));
}

TEST(JobQueue, DrainCancelsQueuedAndRejectsNewSubmissions) {
  JobQueue q(16);
  const auto queued = make_job(q, 0);
  q.drain(/*cancel_running=*/false);
  EXPECT_EQ(q.snapshot(*queued).state, JobState::kCancelled);
  EXPECT_TRUE(q.draining());
  EXPECT_TRUE(q.idle());
  try {
    (void)make_job(q, 0);
    FAIL() << "expected HttpError";
  } catch (const HttpError& e) {
    EXPECT_EQ(e.status(), 503);
  }
  EXPECT_EQ(q.next_runnable(), nullptr);  // draining + empty: executors exit
}

TEST(JobQueue, StatsCountStates) {
  JobQueue q(16);
  const auto a = make_job(q, 0);
  (void)make_job(q, 0);
  (void)q.next_runnable();
  q.finish(*a, JobState::kDone, "{}", "");
  const QueueStats s = q.stats();
  EXPECT_EQ(s.submitted, 2u);
  EXPECT_EQ(s.done, 1u);
  EXPECT_EQ(s.queued, 1u);
  EXPECT_EQ(s.running, 0u);
}

}  // namespace
}  // namespace msim::serve
