// Process-isolated sweep execution (docs/ROBUSTNESS.md).
//
// The contract under test, from the bottom up:
//
//   1. BackoffPolicy: deterministic, bounded, wall-clock-free respawn
//      delays.
//   2. The worker pipe protocol: framed messages survive arbitrary
//      fragmentation; truncated payloads fail loudly; chaos specs parse.
//   3. SweepSupervisor against a synthetic CellFn: happy path at several
//      worker counts, SIGKILL/SIGSEGV/hang faults detected and retried,
//      persistent faults exhausting retries into SupervisorFailures with
//      diagnostic bundles, per-cell wall-clock timeouts.
//   4. run_sweep(isolation=process): byte-identical to the thread backend
//      at any worker count, chaos-faulted sweeps byte-identical on every
//      surviving cell, failed cells attributed to the exact injected grid
//      index, journal merge + resume.
//   5. The PR's robustness satellites: SweepJournal torn-tail truncation
//      and reset_signals_in_forked_child.
//
// Every forked child here either _exits inside supervisor code or is
// SIGKILLed; no worker process ever returns into gtest.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include "common/archive.hpp"
#include "obs/progress.hpp"
#include "persist/journal.hpp"
#include "persist/signal.hpp"
#include "robust/backoff.hpp"
#include "robust/supervisor.hpp"
#include "robust/worker_protocol.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "trace/mixes.hpp"

namespace msim {
namespace {

std::string temp_path(const std::string& stem) {
  return (std::filesystem::temp_directory_path() /
          (stem + "-" + std::to_string(::getpid())))
      .string();
}

/// Removes a temp file (and any sweep-journal shards beside it) even when
/// an assertion bails out of the test early.
class TempFile {
 public:
  explicit TempFile(const std::string& stem) : path_(temp_path(stem)) {}
  ~TempFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
    for (unsigned k = 0; k < 64; ++k) {
      std::filesystem::remove(robust::SweepSupervisor::shard_path(path_, k), ec);
    }
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

// ---------------------------------------------------------------------------
// 1. BackoffPolicy
// ---------------------------------------------------------------------------

TEST(BackoffPolicy, NoDelayBeforeTheFirstDeath) {
  robust::BackoffPolicy policy;
  EXPECT_EQ(policy.delay_ms(0, 0), 0u);
  EXPECT_EQ(policy.delay_ms(7, 0), 0u);
}

TEST(BackoffPolicy, DeterministicForIdenticalInputs) {
  robust::BackoffPolicy policy;
  for (unsigned slot = 0; slot < 4; ++slot) {
    for (unsigned deaths = 1; deaths < 8; ++deaths) {
      EXPECT_EQ(policy.delay_ms(slot, deaths), policy.delay_ms(slot, deaths));
    }
  }
}

TEST(BackoffPolicy, GrowsExponentiallyAndSaturatesAtMax) {
  robust::BackoffPolicy policy;
  policy.base_ms = 50;
  policy.max_ms = 400;
  policy.jitter_pct = 0;  // isolate the exponential shape
  EXPECT_EQ(policy.delay_ms(0, 1), 50u);
  EXPECT_EQ(policy.delay_ms(0, 2), 100u);
  EXPECT_EQ(policy.delay_ms(0, 3), 200u);
  EXPECT_EQ(policy.delay_ms(0, 4), 400u);
  EXPECT_EQ(policy.delay_ms(0, 5), 400u);   // capped
  EXPECT_EQ(policy.delay_ms(0, 63), 400u);  // shift saturates, no overflow
}

TEST(BackoffPolicy, JitterStaysWithinTheConfiguredBand) {
  robust::BackoffPolicy policy;
  policy.base_ms = 100;
  policy.max_ms = 100'000;
  policy.jitter_pct = 25;
  for (unsigned slot = 0; slot < 8; ++slot) {
    const std::uint64_t base = 100;  // deaths=1
    const std::uint64_t got = policy.delay_ms(slot, 1);
    EXPECT_GE(got, base);
    EXPECT_LE(got, base + base * 25 / 100);
  }
}

TEST(BackoffPolicy, DifferentSlotsJitterDifferently) {
  robust::BackoffPolicy policy;
  policy.base_ms = 1000;
  policy.max_ms = 100'000;
  policy.jitter_pct = 50;
  std::set<std::uint64_t> delays;
  for (unsigned slot = 0; slot < 16; ++slot) delays.insert(policy.delay_ms(slot, 1));
  EXPECT_GT(delays.size(), 1u) << "jitter ignores the slot";
}

// ---------------------------------------------------------------------------
// 2. Worker protocol + chaos plans
// ---------------------------------------------------------------------------

TEST(WorkerProtocol, FramesSurviveByteAtATimeDelivery) {
  std::vector<std::uint8_t> payload;
  robust::put_u64(payload, 42);
  payload.push_back(1);
  robust::put_u32(payload, 3);
  robust::put_string(payload, "err");
  robust::put_bytes(payload, {0xde, 0xad, 0xbe, 0xef});

  std::vector<std::uint8_t> wire;
  robust::encode_frame(robust::WorkerMsg::kCellDone, payload, wire);
  robust::encode_frame(robust::WorkerMsg::kShardDone, {}, wire);

  robust::FrameReader reader;
  std::vector<robust::Frame> frames;
  for (const std::uint8_t byte : wire) {
    reader.feed(&byte, 1);
    while (auto frame = reader.next()) frames.push_back(std::move(*frame));
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, robust::WorkerMsg::kCellDone);
  EXPECT_EQ(frames[1].type, robust::WorkerMsg::kShardDone);

  robust::FieldReader fields(frames[0].payload);
  EXPECT_EQ(fields.u64(), 42u);
  EXPECT_EQ(fields.u8(), 1);
  EXPECT_EQ(fields.u32(), 3u);
  EXPECT_EQ(fields.string(), "err");
  EXPECT_EQ(fields.bytes(), (std::vector<std::uint8_t>{0xde, 0xad, 0xbe, 0xef}));
}

TEST(WorkerProtocol, TruncatedPayloadThrowsInsteadOfReadingGarbage) {
  std::vector<std::uint8_t> payload;
  robust::put_u32(payload, 7);
  robust::FieldReader fields(payload);
  (void)fields.u32();
  EXPECT_THROW((void)fields.u64(), std::runtime_error);
}

TEST(ChaosPlan, ParsesActionsCellsAndPersistence) {
  const auto plan = robust::ChaosPlan::parse("kill@5,segv@13,hang@21,kill@2!");
  ASSERT_EQ(plan.faults.size(), 4u);
  ASSERT_NE(plan.fault_for(5), nullptr);
  EXPECT_EQ(plan.fault_for(5)->action, robust::WorkerFault::Action::kKill);
  EXPECT_FALSE(plan.fault_for(5)->persistent);
  EXPECT_EQ(plan.fault_for(13)->action, robust::WorkerFault::Action::kSegv);
  EXPECT_EQ(plan.fault_for(21)->action, robust::WorkerFault::Action::kHang);
  ASSERT_NE(plan.fault_for(2), nullptr);
  EXPECT_TRUE(plan.fault_for(2)->persistent);
  EXPECT_EQ(plan.fault_for(99), nullptr);
  EXPECT_TRUE(robust::ChaosPlan::parse("").empty());
}

TEST(ChaosPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(robust::ChaosPlan::parse("explode@3"), std::invalid_argument);
  EXPECT_THROW(robust::ChaosPlan::parse("kill@"), std::invalid_argument);
  EXPECT_THROW(robust::ChaosPlan::parse("kill@abc"), std::invalid_argument);
  EXPECT_THROW(robust::ChaosPlan::parse("kill"), std::invalid_argument);
  EXPECT_THROW(robust::ChaosPlan::parse("kill@3,segv@3"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// 3. SweepSupervisor against a synthetic CellFn
// ---------------------------------------------------------------------------

/// Deterministic payload for cell i; any worker at any incarnation must
/// produce exactly these bytes.
std::vector<std::uint8_t> cell_payload(std::size_t i) {
  std::vector<std::uint8_t> out;
  robust::put_u64(out, 0x5eedu + i * 17);
  return out;
}

robust::CellFn synthetic_cells() {
  return [](std::size_t i) {
    robust::CellOutcome out;
    out.payload = cell_payload(i);
    return out;
  };
}

robust::SupervisorConfig base_config(std::size_t cells, unsigned workers) {
  robust::SupervisorConfig config;
  config.total_cells = cells;
  config.workers = workers;
  config.retries = 1;
  // Fast respawns and hang detection: the defaults are tuned for real
  // sweeps, not unit tests.
  config.tuning.heartbeat_interval_ms = 10;
  config.tuning.heartbeat_timeout_ms = 500;
  config.tuning.backoff.base_ms = 10;
  config.tuning.backoff.max_ms = 50;
  return config;
}

void expect_all_cells_ok(const robust::SupervisorReport& report,
                         std::size_t cells) {
  EXPECT_TRUE(report.process_failures.empty());
  ASSERT_EQ(report.outcomes.size(), cells);
  for (std::size_t i = 0; i < cells; ++i) {
    const auto it = report.outcomes.find(i);
    ASSERT_NE(it, report.outcomes.end()) << "cell " << i << " never reported";
    EXPECT_TRUE(it->second.ok);
    EXPECT_EQ(it->second.payload, cell_payload(i)) << "cell " << i;
  }
}

TEST(SweepSupervisor, RunsEveryCellAtAnyWorkerCount) {
  for (const unsigned workers : {1u, 2u, 4u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    robust::SweepSupervisor supervisor(base_config(13, workers));
    const auto report = supervisor.run(synthetic_cells());
    expect_all_cells_ok(report, 13);
    EXPECT_EQ(report.workers_spawned, std::min<std::size_t>(workers, 13));
    EXPECT_EQ(report.worker_deaths, 0u);
  }
}

TEST(SweepSupervisor, CompletedCellsAreNeverRerun) {
  auto config = base_config(8, 2);
  config.completed = {0, 2, 4, 6};
  robust::SweepSupervisor supervisor(std::move(config));
  const auto report = supervisor.run(synthetic_cells());
  EXPECT_TRUE(report.process_failures.empty());
  ASSERT_EQ(report.outcomes.size(), 4u);
  for (const std::size_t i : {1u, 3u, 5u, 7u}) {
    EXPECT_TRUE(report.outcomes.count(i)) << "cell " << i;
  }
  EXPECT_EQ(report.outcomes.count(0), 0u);
}

TEST(SweepSupervisor, InWorkerFailuresAreOutcomesNotProcessFailures) {
  auto config = base_config(6, 2);
  robust::SweepSupervisor supervisor(std::move(config));
  const auto report = supervisor.run([](std::size_t i) {
    robust::CellOutcome out;
    if (i == 3) {
      out.ok = false;
      out.error = "synthetic cell failure";
      out.attempts = 2;
    } else {
      out.payload = cell_payload(i);
    }
    return out;
  });
  EXPECT_TRUE(report.process_failures.empty());
  EXPECT_EQ(report.worker_deaths, 0u);
  ASSERT_EQ(report.outcomes.size(), 6u);
  EXPECT_FALSE(report.outcomes.at(3).ok);
  EXPECT_EQ(report.outcomes.at(3).error, "synthetic cell failure");
  EXPECT_EQ(report.outcomes.at(3).attempts, 2u);
}

TEST(SweepSupervisor, SigkilledWorkerIsRespawnedAndTheCellRetried) {
  auto config = base_config(9, 3);
  config.chaos = robust::ChaosPlan::parse("kill@4");
  robust::SweepSupervisor supervisor(std::move(config));
  const auto report = supervisor.run(synthetic_cells());
  expect_all_cells_ok(report, 9);
  EXPECT_GE(report.worker_deaths, 1u);
  EXPECT_GE(report.workers_spawned, 4u);  // 3 initial + >=1 respawn
}

TEST(SweepSupervisor, SegvIsJustAnotherDeath) {
  auto config = base_config(5, 2);
  config.chaos = robust::ChaosPlan::parse("segv@1");
  robust::SweepSupervisor supervisor(std::move(config));
  const auto report = supervisor.run(synthetic_cells());
  expect_all_cells_ok(report, 5);
  EXPECT_GE(report.worker_deaths, 1u);
}

TEST(SweepSupervisor, HangingWorkerIsDetectedByMissedHeartbeats) {
  auto config = base_config(6, 2);
  config.chaos = robust::ChaosPlan::parse("hang@2");
  robust::SweepSupervisor supervisor(std::move(config));
  const auto report = supervisor.run(synthetic_cells());
  expect_all_cells_ok(report, 6);
  EXPECT_GE(report.worker_deaths, 1u);
}

TEST(SweepSupervisor, PersistentFaultExhaustsRetriesIntoADiagnosedFailure) {
  auto config = base_config(7, 2);
  config.retries = 1;
  config.chaos = robust::ChaosPlan::parse("kill@3!");
  config.cell_label = [](std::size_t i) { return "cell#" + std::to_string(i); };
  robust::SweepSupervisor supervisor(std::move(config));
  const auto report = supervisor.run(synthetic_cells());

  ASSERT_EQ(report.process_failures.size(), 1u);
  const robust::SupervisorFailure& failure = report.process_failures[0];
  EXPECT_EQ(failure.cell, 3u);
  EXPECT_EQ(failure.attempts, 2u);  // retries + 1
  EXPECT_NE(failure.error.find("killed by signal 9"), std::string::npos)
      << failure.error;
  EXPECT_NE(failure.diag.find("\"slot\""), std::string::npos) << failure.diag;
  EXPECT_NE(failure.diag.find("cell#3"), std::string::npos) << failure.diag;

  // Every other cell still completed, bit-exactly.
  EXPECT_EQ(report.outcomes.size(), 6u);
  EXPECT_EQ(report.outcomes.count(3), 0u);
  for (const auto& [i, outcome] : report.outcomes) {
    EXPECT_EQ(outcome.payload, cell_payload(i)) << "cell " << i;
  }
}

TEST(SweepSupervisor, CellTimeoutKillsTheWorkerAndFailsTheCell) {
  auto config = base_config(4, 2);
  config.retries = 0;
  config.cell_timeout_ms = 150;
  robust::SweepSupervisor supervisor(std::move(config));
  const auto report = supervisor.run([](std::size_t i) {
    if (i == 1) {
      for (;;) ::usleep(50'000);  // never finishes; heartbeats keep flowing
    }
    robust::CellOutcome out;
    out.payload = cell_payload(i);
    return out;
  });
  ASSERT_EQ(report.process_failures.size(), 1u);
  EXPECT_EQ(report.process_failures[0].cell, 1u);
  EXPECT_NE(report.process_failures[0].error.find("cell_timeout_ms"),
            std::string::npos)
      << report.process_failures[0].error;
  EXPECT_EQ(report.outcomes.size(), 3u);
}

TEST(SweepSupervisor, ShardJournalSavesCompletedWorkAcrossADeath) {
  TempFile journal("msim-supervisor-shard");
  auto config = base_config(6, 1);
  config.journal_path = journal.path();
  config.journal_fingerprint = 0x1234;
  // The worker completes cells 0-3 (journaling each), then dies at 4; the
  // respawned incarnation must replay 0-3 from its shard rather than rerun
  // them.  Reruns are observable: the cell function appends to a side file,
  // so a rerun would double a line.
  TempFile side_effects("msim-supervisor-ran");
  config.chaos = robust::ChaosPlan::parse("kill@4");
  const std::string side_path = side_effects.path();
  robust::SweepSupervisor supervisor(std::move(config));
  const auto report = supervisor.run([side_path](std::size_t i) {
    std::ofstream(side_path, std::ios::app) << i << "\n";
    robust::CellOutcome out;
    out.payload = cell_payload(i);
    return out;
  });
  expect_all_cells_ok(report, 6);

  std::ifstream in(side_path);
  std::vector<std::string> ran;
  for (std::string line; std::getline(in, line);) ran.push_back(line);
  EXPECT_EQ(ran, (std::vector<std::string>{"0", "1", "2", "3", "4", "5"}))
      << "a cell ran twice: shard replay failed";
}

// ---------------------------------------------------------------------------
// 4. run_sweep(isolation=process)
// ---------------------------------------------------------------------------

sim::RunConfig tiny_base() {
  sim::RunConfig cfg;
  cfg.warmup = 1000;
  cfg.horizon = 4000;
  return cfg;
}

sim::SweepRequest small_request(std::uint64_t seed) {
  sim::SweepRequest req;
  req.thread_count = 2;
  req.kinds = {core::SchedulerKind::kTraditional,
               core::SchedulerKind::kTwoOpBlockOoo};
  req.iq_sizes = {32, 64};
  req.base = tiny_base();
  req.base.seed = seed;
  return req;
}

std::string sweep_json_of(const std::vector<sim::SweepCell>& cells) {
  std::ostringstream out;
  sim::write_sweep_json(out, cells);
  return out.str();
}

std::vector<sim::SweepCell> run_with(sim::SweepRequest req) {
  sim::BaselineCache baselines(req.base);
  return run_sweep(req, baselines);
}

sim::SweepRequest process_request(std::uint64_t seed, unsigned workers) {
  sim::SweepRequest req = small_request(seed);
  req.isolation = sim::SweepIsolation::kProcess;
  req.workers = workers;
  req.worker_heartbeat_timeout_ms = 500;
  return req;
}

TEST(ProcessSweep, ByteIdenticalToTheThreadBackendAtAnyWorkerCount) {
  const std::string thread_json = sweep_json_of(run_with(small_request(11)));
  for (const unsigned workers : {1u, 4u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const std::string process_json =
        sweep_json_of(run_with(process_request(11, workers)));
    EXPECT_EQ(thread_json, process_json);
  }
}

TEST(ProcessSweep, RejectsProcessOnlyKnobsOnTheThreadBackend) {
  sim::BaselineCache baselines(tiny_base());
  {
    sim::SweepRequest req = small_request(1);
    req.workers = 4;
    EXPECT_THROW((void)run_sweep(req, baselines), std::invalid_argument);
  }
  {
    sim::SweepRequest req = small_request(1);
    req.cell_timeout_ms = 1000;
    EXPECT_THROW((void)run_sweep(req, baselines), std::invalid_argument);
  }
  {
    sim::SweepRequest req = small_request(1);
    req.chaos = "kill@0";
    EXPECT_THROW((void)run_sweep(req, baselines), std::invalid_argument);
  }
  {
    sim::SweepRequest req = process_request(1, 2);
    req.isolate_failures = false;
    EXPECT_THROW((void)run_sweep(req, baselines), std::invalid_argument);
  }
  {
    sim::SweepRequest req = process_request(1, 2);
    req.chaos = "kill@100000";  // outside the grid
    EXPECT_THROW((void)run_sweep(req, baselines), std::invalid_argument);
  }
}

TEST(ProcessSweep, SurvivingCellsAreByteIdenticalUnderTransientChaos) {
  // Transient faults (first incarnation only): a SIGKILL and a hang, on
  // cells owned by different workers.  Every cell eventually succeeds, so
  // the whole report — attempts included — must match the fault-free run.
  const std::string clean_json = sweep_json_of(run_with(process_request(5, 4)));
  sim::SweepRequest chaotic = process_request(5, 4);
  chaotic.chaos = "kill@3,hang@10";
  const std::string chaos_json = sweep_json_of(run_with(chaotic));
  EXPECT_EQ(clean_json, chaos_json);
}

TEST(ProcessSweep, PersistentFaultIsAttributedToTheExactInjectedCell) {
  // Grid order is kind-major: cell 17 = kind 0 (traditional), iq index 1
  // (64), mix index 5 of the 2T mix list.
  const auto mixes = trace::mixes_for(2);
  const std::size_t injected = 12 + 5;  // traditional, iq=64, mix 5
  sim::SweepRequest chaotic = process_request(7, 4);
  chaotic.retries = 1;
  chaotic.chaos = "kill@" + std::to_string(injected) + "!";
  const auto cells = run_with(chaotic);

  const auto failures = sim::sweep_failures(cells);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].kind, core::SchedulerKind::kTraditional);
  EXPECT_EQ(failures[0].iq_entries, 64u);
  EXPECT_EQ(failures[0].mix_name, mixes[5].name);
  EXPECT_EQ(failures[0].attempts, 2u);
  EXPECT_NE(failures[0].error.find("killed by signal 9"), std::string::npos);
  EXPECT_NE(failures[0].diag.find("\"slot\""), std::string::npos)
      << "failed cell carries no diagnostic bundle: " << failures[0].diag;

  // Every surviving mix matches the fault-free sweep bit for bit.
  const auto clean = run_with(process_request(7, 4));
  ASSERT_EQ(clean.size(), cells.size());
  for (std::size_t c = 0; c < clean.size(); ++c) {
    ASSERT_EQ(clean[c].mixes.size(), cells[c].mixes.size());
    for (std::size_t m = 0; m < clean[c].mixes.size(); ++m) {
      const sim::MixResult& a = clean[c].mixes[m];
      const sim::MixResult& b = cells[c].mixes[m];
      if (!b.ok) continue;  // the injected cell
      SCOPED_TRACE("cell " + std::to_string(c) + " mix " + a.mix_name);
      EXPECT_EQ(a.throughput_ipc, b.throughput_ipc);
      EXPECT_EQ(a.fairness, b.fairness);
      EXPECT_EQ(a.attempts, b.attempts);
      EXPECT_EQ(a.raw.commit_digest, b.raw.commit_digest);
    }
  }
}

TEST(ProcessSweep, JournalMergesToTheMainFileAndResumesByteIdentically) {
  TempFile journal("msim-process-journal");
  sim::SweepRequest first = process_request(3, 4);
  first.journal_path = journal.path();
  const std::string first_json = sweep_json_of(run_with(first));

  // The merge retired every shard and left one well-formed main journal.
  EXPECT_TRUE(std::filesystem::exists(journal.path()));
  EXPECT_FALSE(std::filesystem::exists(
      robust::SweepSupervisor::shard_path(journal.path(), 0)));

  // A resume replays everything from the merged journal: identical bytes,
  // zero new simulations (the journal was written by worker processes, so
  // a replayed parent computes no baselines either).
  sim::SweepRequest again = process_request(3, 2);  // different worker count
  again.journal_path = journal.path();
  again.resume = true;
  sim::BaselineCache baselines(again.base);
  const std::string resumed_json = sweep_json_of(run_sweep(again, baselines));
  EXPECT_EQ(first_json, resumed_json);
  EXPECT_EQ(baselines.computations(), 0u);
}

TEST(ProcessSweep, ResumeUnionsSurvivingShardsAfterASupervisorCrash) {
  // Simulate "kill -9 of the supervisor mid-sweep": a completed run's
  // journal demoted to one worker's shard.  The resume must union the
  // shard in, replay its cells, run only the rest, and merge everything
  // back into the main journal.
  TempFile journal("msim-shard-union");
  sim::SweepRequest full = process_request(9, 1);
  full.journal_path = journal.path();
  const std::string want_json = sweep_json_of(run_with(full));

  std::filesystem::rename(journal.path(),
                          robust::SweepSupervisor::shard_path(journal.path(), 0));
  sim::SweepRequest resumed = process_request(9, 3);
  resumed.journal_path = journal.path();
  resumed.resume = true;
  sim::BaselineCache baselines(resumed.base);
  const std::string got_json = sweep_json_of(run_sweep(resumed, baselines));
  EXPECT_EQ(want_json, got_json);
  EXPECT_EQ(baselines.computations(), 0u) << "shard cells were re-simulated";
  EXPECT_TRUE(std::filesystem::exists(journal.path()));
  EXPECT_FALSE(std::filesystem::exists(
      robust::SweepSupervisor::shard_path(journal.path(), 0)));
}

// ---------------------------------------------------------------------------
// 5a. Journal torn-tail truncation (the crash window of an append)
// ---------------------------------------------------------------------------

TEST(JournalTornTail, ResumeTruncatesTheTornRecordSoTheNextAppendIsClean) {
  TempFile journal("msim-torn-tail");
  constexpr std::uint64_t kFp = 0xfeed;
  {
    persist::SweepJournal j(journal.path(), kFp, /*resume=*/false);
    j.append("cell-a", {1, 2, 3});
    j.append("cell-b", {4, 5, 6});
  }
  // SIGKILL mid-append: the tail of the file is half a record.
  const auto full_size = std::filesystem::file_size(journal.path());
  std::filesystem::resize_file(journal.path(), full_size - 10);

  {
    persist::SweepJournal j(journal.path(), kFp, /*resume=*/true);
    EXPECT_EQ(j.loaded_entries(), 1u);
    EXPECT_NE(j.find("cell-a"), nullptr);
    EXPECT_EQ(j.find("cell-b"), nullptr) << "the torn record must not replay";
    // The torn bytes are gone from disk, so this append starts a fresh
    // line.  Without the truncation it would glue onto the torn tail and a
    // later load would lose *both* records.
    j.append("cell-b", {7, 8, 9});
  }
  {
    persist::SweepJournal j(journal.path(), kFp, /*resume=*/true);
    EXPECT_EQ(j.loaded_entries(), 2u);
    ASSERT_NE(j.find("cell-b"), nullptr);
    EXPECT_EQ(*j.find("cell-b"), (std::vector<std::uint8_t>{7, 8, 9}));
  }
}

TEST(JournalTornTail, SweepResumeRerunsExactlyTheTornCell) {
  TempFile journal("msim-torn-sweep");
  sim::SweepRequest first = small_request(13);
  first.journal_path = journal.path();
  const std::string want_json = sweep_json_of(run_with(first));

  // Tear the final record mid-line, as a SIGKILL mid-append would.
  const auto full_size = std::filesystem::file_size(journal.path());
  std::filesystem::resize_file(journal.path(), full_size - 25);

  sim::SweepRequest resumed = small_request(13);
  resumed.journal_path = journal.path();
  resumed.resume = true;
  obs::ProgressBus bus;
  resumed.progress_bus = &bus;
  sim::BaselineCache baselines(resumed.base);
  const std::string got_json = sweep_json_of(run_sweep(resumed, baselines));

  EXPECT_EQ(want_json, got_json);
  // Replayed cells never publish kCellStart; only genuinely re-run cells
  // do.  Exactly one record was torn, so exactly one cell re-runs.
  EXPECT_EQ(bus.published(obs::ProgressKind::kCellStart), 1u);
}

TEST(JournalStatics, ReadCompletedToleratesMissingFilesAndChecksFingerprints) {
  TempFile journal("msim-read-completed");
  EXPECT_TRUE(persist::SweepJournal::read_completed(journal.path(), 1).empty());
  EXPECT_FALSE(std::filesystem::exists(journal.path()))
      << "a read-only probe must not create the file";

  persist::SweepJournal::write_merged(journal.path(), 1,
                                      {{"k1", {9}}, {"k2", {8, 7}}});
  const auto entries = persist::SweepJournal::read_completed(journal.path(), 1);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries.at("k1"), std::vector<std::uint8_t>{9});
  EXPECT_THROW((void)persist::SweepJournal::read_completed(journal.path(), 2),
               persist::PersistError);
}

// ---------------------------------------------------------------------------
// 5b. Signal hygiene in forked workers
// ---------------------------------------------------------------------------

TEST(ForkedSignals, ChildResetsDispositionsAndDropsTheParentsPendingFlag) {
  const persist::SignalGuard guard;
  ASSERT_EQ(::raise(SIGTERM), 0);  // flag-handler installed: records, no kill
  ASSERT_NE(persist::signal_pending(), 0);

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    persist::reset_signals_in_forked_child();
    // The parent's pending flag must not leak into the worker: it would
    // trigger the parent's cooperative save-and-flush paths down here.
    if (persist::signal_pending() != 0) _exit(7);
    // Dispositions are back to default, so SIGTERM now actually kills.
    (void)::raise(SIGTERM);
    _exit(8);  // unreachable unless the handler is still installed
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFSIGNALED(status))
      << "child exited " << (WIFEXITED(status) ? WEXITSTATUS(status) : -1)
      << " instead of dying by SIGTERM";
  if (WIFSIGNALED(status)) {
    EXPECT_EQ(WTERMSIG(status), SIGTERM);
  }
  persist::clear_pending_signal();  // do not leak the flag into other tests
}

}  // namespace
}  // namespace msim
