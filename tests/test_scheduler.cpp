// Behavioural tests of the four dispatch policies, the deadlock-avoidance
// buffer and the watchdog -- the paper's core mechanisms.
#include "core/scheduler.hpp"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace msim::core {
namespace {

/// Test double: readiness is an explicit set; "oldest in ROB" is an
/// explicit (tid -> seq) map.
class FakeEnv final : public DispatchEnv {
 public:
  [[nodiscard]] bool is_ready(PhysReg reg) const override {
    return ready_.count(reg) > 0;
  }
  [[nodiscard]] bool is_oldest_in_rob(ThreadId tid, SeqNum seq) const override {
    const auto it = oldest_.find(tid);
    return it != oldest_.end() && it->second == seq;
  }
  void set_ready(PhysReg reg) { ready_.insert(reg); }
  void clear_ready(PhysReg reg) { ready_.erase(reg); }
  void set_oldest(ThreadId tid, SeqNum seq) { oldest_[tid] = seq; }

 private:
  std::set<PhysReg> ready_;
  std::map<ThreadId, SeqNum> oldest_;
};

/// Accepts every offer (or the first N) and records the order.
class RecordingIssueEnv final : public IssueEnv {
 public:
  explicit RecordingIssueEnv(unsigned accept_limit = 1000)
      : limit_(accept_limit) {}
  bool try_issue(const SchedInst& inst, bool from_dab) override {
    if (issued.size() >= limit_) return false;
    issued.push_back(inst);
    from_dab_flags.push_back(from_dab);
    return true;
  }
  std::vector<SchedInst> issued;
  std::vector<bool> from_dab_flags;

 private:
  std::size_t limit_;
};

SchedulerConfig config_for(SchedulerKind kind, std::uint32_t iq = 8) {
  SchedulerConfig cfg;
  cfg.kind = kind;
  cfg.iq_entries = iq;
  cfg.rename_buffer_entries = 16;
  return cfg;
}

SchedInst inst(ThreadId tid, SeqNum seq, PhysReg s0 = kNoPhysReg,
               PhysReg s1 = kNoPhysReg, PhysReg dest = kNoPhysReg) {
  SchedInst si;
  si.tid = tid;
  si.seq = seq;
  si.src[0] = s0;
  si.src[1] = s1;
  si.dest = dest;
  return si;
}

// ---- traditional ------------------------------------------------------------

TEST(TraditionalDispatch, DispatchesTwoNonReadyInstructions) {
  Scheduler s(config_for(SchedulerKind::kTraditional), 1, 8, 8);
  FakeEnv env;
  s.insert(inst(0, 0, /*s0=*/10, /*s1=*/11));  // both sources non-ready
  const auto result = s.run_dispatch(1, env);
  EXPECT_EQ(result.dispatched, 1u);
  EXPECT_EQ(s.dispatch_stats().dispatched_by_nonready[2], 1u);
}

TEST(TraditionalDispatch, InOrderWithinThread) {
  Scheduler s(config_for(SchedulerKind::kTraditional), 1, 2, 8);
  FakeEnv env;
  for (SeqNum q = 0; q < 4; ++q) s.insert(inst(0, q));
  (void)s.run_dispatch(1, env);
  // Width 2: exactly the two oldest went.
  RecordingIssueEnv issue;
  (void)s.run_select(2, issue);
  ASSERT_EQ(issue.issued.size(), 2u);
  EXPECT_EQ(issue.issued[0].seq, 0u);
  EXPECT_EQ(issue.issued[1].seq, 1u);
}

TEST(TraditionalDispatch, StopsWhenIqFull) {
  Scheduler s(config_for(SchedulerKind::kTraditional, /*iq=*/2), 1, 8, 8);
  FakeEnv env;
  for (SeqNum q = 0; q < 4; ++q) s.insert(inst(0, q));
  const auto result = s.run_dispatch(1, env);
  EXPECT_EQ(result.dispatched, 2u);
  EXPECT_EQ(s.dispatch_stats().iq_full_thread_cycles, 1u);
  EXPECT_EQ(s.buffer_size(0), 2u);
}

// ---- 2OP_BLOCK --------------------------------------------------------------

TEST(TwoOpBlock, NdiBlocksWholeThread) {
  Scheduler s(config_for(SchedulerKind::kTwoOpBlock), 1, 8, 8);
  FakeEnv env;
  s.insert(inst(0, 0, 10, 11));  // NDI: two distinct non-ready sources
  s.insert(inst(0, 1));          // dispatchable, but stuck behind the NDI
  const auto result = s.run_dispatch(1, env);
  EXPECT_EQ(result.dispatched, 0u);
  EXPECT_EQ(s.buffer_size(0), 2u);
  EXPECT_EQ(s.dispatch_stats().ndi_blocked_thread_cycles, 1u);
  EXPECT_EQ(s.dispatch_stats().all_threads_ndi_stall_cycles, 1u);
}

TEST(TwoOpBlock, UnblocksWhenOneSourceBecomesReady) {
  Scheduler s(config_for(SchedulerKind::kTwoOpBlock), 1, 8, 8);
  FakeEnv env;
  s.insert(inst(0, 0, 10, 11));
  s.insert(inst(0, 1));
  (void)s.run_dispatch(1, env);
  env.set_ready(10);  // first source arrives
  const auto result = s.run_dispatch(2, env);
  EXPECT_EQ(result.dispatched, 2u);  // the ex-NDI and the one behind it
  EXPECT_EQ(s.dispatch_stats().dispatched_by_nonready[1], 1u);
}

TEST(TwoOpBlock, DuplicateSourceCountsOnce) {
  // Both operands name the same register: one comparator suffices, so this
  // is NOT an NDI.
  Scheduler s(config_for(SchedulerKind::kTwoOpBlock), 1, 8, 8);
  FakeEnv env;
  s.insert(inst(0, 0, /*s0=*/10, /*s1=*/10));
  EXPECT_EQ(s.run_dispatch(1, env).dispatched, 1u);
}

TEST(TwoOpBlock, ReadySourcesDontNeedComparators) {
  Scheduler s(config_for(SchedulerKind::kTwoOpBlock), 1, 8, 8);
  FakeEnv env;
  env.set_ready(10);
  s.insert(inst(0, 0, 10, 11));  // only one non-ready
  EXPECT_EQ(s.run_dispatch(1, env).dispatched, 1u);
}

TEST(TwoOpBlock, OtherThreadsProceedPastABlockedThread) {
  Scheduler s(config_for(SchedulerKind::kTwoOpBlock), 2, 8, 8);
  FakeEnv env;
  s.insert(inst(0, 0, 10, 11));  // thread 0 blocked
  s.insert(inst(1, 0));
  s.insert(inst(1, 1));
  const auto result = s.run_dispatch(1, env);
  EXPECT_EQ(result.dispatched, 2u);
  EXPECT_EQ(s.buffer_size(0), 1u);
  EXPECT_EQ(s.buffer_size(1), 0u);
  // Not an all-thread stall: thread 1 dispatched.
  EXPECT_EQ(s.dispatch_stats().all_threads_ndi_stall_cycles, 0u);
}

TEST(TwoOpBlock, HdiSamplingBehindNdi) {
  Scheduler s(config_for(SchedulerKind::kTwoOpBlock), 1, 8, 8);
  FakeEnv env;
  s.insert(inst(0, 0, 10, 11));  // blocking NDI
  s.insert(inst(0, 1));          // HDI
  s.insert(inst(0, 2, 20, 21));  // another NDI (not an HDI)
  s.insert(inst(0, 3));          // HDI
  (void)s.run_dispatch(1, env);
  EXPECT_EQ(s.dispatch_stats().behind_ndi_examined, 3u);
  EXPECT_EQ(s.dispatch_stats().behind_ndi_hdis, 2u);
}

// ---- 2OP_BLOCK + out-of-order dispatch --------------------------------------

TEST(OooDispatch, HdisBypassTheNdi) {
  Scheduler s(config_for(SchedulerKind::kTwoOpBlockOoo), 1, 8, 8);
  FakeEnv env;
  s.insert(inst(0, 0, 10, 11));  // NDI stays
  s.insert(inst(0, 1));          // HDI dispatches
  s.insert(inst(0, 2));          // HDI dispatches
  const auto result = s.run_dispatch(1, env);
  EXPECT_EQ(result.dispatched, 2u);
  EXPECT_EQ(s.buffer_size(0), 1u);  // only the NDI remains
  EXPECT_EQ(s.dispatch_stats().ooo_dispatches, 2u);
}

TEST(OooDispatch, Figure2Example) {
  // The paper's Figure 2: I1 dispatchable, I2 has two non-ready sources,
  // I3 independent of I2, I4 dependent on I2.  I1, I3 AND I4 dispatch
  // (no filtering); I2 stays.
  Scheduler s(config_for(SchedulerKind::kTwoOpBlockOoo), 1, 8, 8);
  FakeEnv env;
  s.insert(inst(0, 0, kNoPhysReg, kNoPhysReg, /*dest=*/1));      // I1
  s.insert(inst(0, 1, 50, 51, /*dest=*/2));                      // I2 (NDI)
  s.insert(inst(0, 2, kNoPhysReg, kNoPhysReg, /*dest=*/3));      // I3
  s.insert(inst(0, 3, /*s0=*/2, kNoPhysReg, /*dest=*/4));        // I4 reads I2
  const auto result = s.run_dispatch(1, env);
  EXPECT_EQ(result.dispatched, 3u);
  EXPECT_EQ(s.buffer_size(0), 1u);
  // I3 and I4 bypassed the NDI; I4 is the dependent one.
  EXPECT_EQ(s.dispatch_stats().ooo_dispatches, 2u);
  EXPECT_EQ(s.dispatch_stats().ooo_dispatches_dependent, 1u);
}

TEST(OooDispatch, TransitiveDependenceIsTracked) {
  Scheduler s(config_for(SchedulerKind::kTwoOpBlockOoo), 1, 8, 8);
  FakeEnv env;
  s.insert(inst(0, 0, 50, 51, /*dest=*/2));                 // NDI writes r2
  s.insert(inst(0, 1, /*s0=*/2, kNoPhysReg, /*dest=*/3));   // depends on NDI
  s.insert(inst(0, 2, /*s0=*/3, kNoPhysReg, /*dest=*/4));   // transitively dependent
  (void)s.run_dispatch(1, env);
  EXPECT_EQ(s.dispatch_stats().ooo_dispatches, 2u);
  EXPECT_EQ(s.dispatch_stats().ooo_dispatches_dependent, 2u);
}

TEST(OooDispatch, ScanDepthBoundsTheSearch) {
  SchedulerConfig cfg = config_for(SchedulerKind::kTwoOpBlockOoo);
  cfg.scan_depth = 2;
  Scheduler s(cfg, 1, 8, 8);
  FakeEnv env;
  s.insert(inst(0, 0, 10, 11));  // NDI (examined: 1)
  s.insert(inst(0, 1, 12, 13));  // NDI (examined: 2) -> scan stops
  s.insert(inst(0, 2));          // dispatchable but beyond the scan depth
  const auto result = s.run_dispatch(1, env);
  EXPECT_EQ(result.dispatched, 0u);
}

TEST(OooDispatch, NdiDispatchesOnceASourceArrives) {
  Scheduler s(config_for(SchedulerKind::kTwoOpBlockOoo), 1, 8, 8);
  FakeEnv env;
  s.insert(inst(0, 0, 10, 11));
  (void)s.run_dispatch(1, env);
  EXPECT_EQ(s.buffer_size(0), 1u);
  env.set_ready(11);
  EXPECT_EQ(s.run_dispatch(2, env).dispatched, 1u);
  EXPECT_EQ(s.buffer_size(0), 0u);
}

TEST(OooDispatch, WidthIsSharedAcrossThreads) {
  Scheduler s(config_for(SchedulerKind::kTwoOpBlockOoo, /*iq=*/16), 2, 4, 8);
  FakeEnv env;
  for (SeqNum q = 0; q < 4; ++q) {
    s.insert(inst(0, q));
    s.insert(inst(1, q));
  }
  EXPECT_EQ(s.run_dispatch(1, env).dispatched, 4u);
  // Round-robin: each thread got two.
  EXPECT_EQ(s.buffer_size(0), 2u);
  EXPECT_EQ(s.buffer_size(1), 2u);
}

// ---- idealized filtering ablation -------------------------------------------

TEST(FilteredDispatch, SuppressesNdiDependentHdis) {
  Scheduler s(config_for(SchedulerKind::kTwoOpBlockOooFiltered), 1, 8, 8);
  FakeEnv env;
  s.insert(inst(0, 0, 50, 51, /*dest=*/2));                 // NDI
  s.insert(inst(0, 1, /*s0=*/2, kNoPhysReg, /*dest=*/3));   // dependent HDI
  s.insert(inst(0, 2));                                     // independent HDI
  const auto result = s.run_dispatch(1, env);
  EXPECT_EQ(result.dispatched, 1u);  // only the independent one
  EXPECT_EQ(s.dispatch_stats().filtered_suppressed, 1u);
  EXPECT_EQ(s.buffer_size(0), 2u);
}

TEST(FilteredDispatch, TransitiveSuppression) {
  Scheduler s(config_for(SchedulerKind::kTwoOpBlockOooFiltered), 1, 8, 8);
  FakeEnv env;
  s.insert(inst(0, 0, 50, 51, /*dest=*/2));                 // NDI
  s.insert(inst(0, 1, /*s0=*/2, kNoPhysReg, /*dest=*/3));   // dependent
  s.insert(inst(0, 2, /*s0=*/3, kNoPhysReg, /*dest=*/4));   // transitively dep
  EXPECT_EQ(s.run_dispatch(1, env).dispatched, 0u);
  EXPECT_EQ(s.dispatch_stats().filtered_suppressed, 2u);
}

// ---- deadlock-avoidance buffer ----------------------------------------------

TEST(Dab, OldestRobInstructionParksWhenIqFull) {
  Scheduler s(config_for(SchedulerKind::kTwoOpBlockOoo, /*iq=*/1), 1, 8, 8);
  FakeEnv env;
  s.insert(inst(0, 0));
  (void)s.run_dispatch(1, env);  // fills the 1-entry IQ
  s.insert(inst(0, 1));
  env.set_oldest(0, 1);          // seq 0 has committed; 1 is oldest in ROB
  const auto result = s.run_dispatch(2, env);
  EXPECT_EQ(result.dispatched, 1u);
  EXPECT_TRUE(s.dab_occupied(0));
  EXPECT_EQ(s.dispatch_stats().dab_inserts, 1u);
}

TEST(Dab, NonOldestDoesNotPark) {
  Scheduler s(config_for(SchedulerKind::kTwoOpBlockOoo, /*iq=*/1), 1, 8, 8);
  FakeEnv env;
  s.insert(inst(0, 0));
  (void)s.run_dispatch(1, env);
  s.insert(inst(0, 1));
  env.set_oldest(0, 0);  // seq 0 is still in the ROB (in the IQ, unissued)
  EXPECT_EQ(s.run_dispatch(2, env).dispatched, 0u);
  EXPECT_FALSE(s.dab_occupied(0));
  EXPECT_EQ(s.dispatch_stats().iq_full_thread_cycles, 1u);
}

TEST(Dab, IssuesWithPriorityAndExclusively) {
  Scheduler s(config_for(SchedulerKind::kTwoOpBlockOoo, /*iq=*/1), 1, 8, 8);
  FakeEnv env;
  s.insert(inst(0, 0));
  (void)s.run_dispatch(1, env);
  s.insert(inst(0, 1));
  env.set_oldest(0, 1);
  (void)s.run_dispatch(2, env);  // parks seq 1 in the DAB
  RecordingIssueEnv issue;
  (void)s.run_select(3, issue);
  // Exclusive mode: only the DAB instruction may issue this cycle even
  // though the IQ entry (seq 0) is also ready.
  ASSERT_EQ(issue.issued.size(), 1u);
  EXPECT_EQ(issue.issued[0].seq, 1u);
  EXPECT_TRUE(issue.from_dab_flags[0]);
  EXPECT_FALSE(s.dab_occupied(0));
  EXPECT_EQ(s.dispatch_stats().dab_issues, 1u);
}

TEST(Dab, NonExclusiveModeAllowsIqIssueAlongside) {
  SchedulerConfig cfg = config_for(SchedulerKind::kTwoOpBlockOoo, /*iq=*/1);
  cfg.dab_exclusive = false;
  Scheduler s(cfg, 1, 8, 8);
  FakeEnv env;
  s.insert(inst(0, 0));
  (void)s.run_dispatch(1, env);
  s.insert(inst(0, 1));
  env.set_oldest(0, 1);
  (void)s.run_dispatch(2, env);
  RecordingIssueEnv issue;
  (void)s.run_select(3, issue);
  EXPECT_EQ(issue.issued.size(), 2u);
  EXPECT_TRUE(issue.from_dab_flags[0]);   // DAB still offered first
  EXPECT_FALSE(issue.from_dab_flags[1]);
}

TEST(Dab, RejectedOfferKeepsInstructionParked) {
  Scheduler s(config_for(SchedulerKind::kTwoOpBlockOoo, /*iq=*/1), 1, 8, 8);
  FakeEnv env;
  s.insert(inst(0, 0));
  (void)s.run_dispatch(1, env);
  s.insert(inst(0, 1));
  env.set_oldest(0, 1);
  (void)s.run_dispatch(2, env);
  RecordingIssueEnv refuse(0);  // e.g. all function units busy
  EXPECT_EQ(s.run_select(3, refuse), 0u);
  EXPECT_TRUE(s.dab_occupied(0));
}

// ---- watchdog ----------------------------------------------------------------

TEST(Watchdog, FiresAfterTimeoutOfNoDispatchWithWorkWaiting) {
  SchedulerConfig cfg = config_for(SchedulerKind::kTwoOpBlockOoo);
  cfg.deadlock = DeadlockMode::kWatchdog;
  cfg.watchdog_timeout = 3;
  Scheduler s(cfg, 1, 8, 8);
  FakeEnv env;
  s.insert(inst(0, 0, 10, 11));  // permanently blocked NDI
  EXPECT_FALSE(s.run_dispatch(1, env).watchdog_fired);
  EXPECT_FALSE(s.run_dispatch(2, env).watchdog_fired);
  EXPECT_TRUE(s.run_dispatch(3, env).watchdog_fired);
  EXPECT_EQ(s.dispatch_stats().watchdog_flushes, 1u);
}

TEST(Watchdog, DispatchResetsTheCountdown) {
  SchedulerConfig cfg = config_for(SchedulerKind::kTwoOpBlockOoo);
  cfg.deadlock = DeadlockMode::kWatchdog;
  cfg.watchdog_timeout = 3;
  Scheduler s(cfg, 1, 8, 8);
  FakeEnv env;
  s.insert(inst(0, 0, 10, 11));
  (void)s.run_dispatch(1, env);
  (void)s.run_dispatch(2, env);
  s.insert(inst(0, 1));  // an HDI arrives and dispatches -> reset
  EXPECT_FALSE(s.run_dispatch(3, env).watchdog_fired);
  EXPECT_FALSE(s.run_dispatch(4, env).watchdog_fired);
  EXPECT_FALSE(s.run_dispatch(5, env).watchdog_fired);
  EXPECT_TRUE(s.run_dispatch(6, env).watchdog_fired);
}

TEST(Watchdog, IdleMachineNeverFires) {
  SchedulerConfig cfg = config_for(SchedulerKind::kTwoOpBlockOoo);
  cfg.deadlock = DeadlockMode::kWatchdog;
  cfg.watchdog_timeout = 2;
  Scheduler s(cfg, 1, 8, 8);
  FakeEnv env;
  for (Cycle c = 1; c < 20; ++c) {
    EXPECT_FALSE(s.run_dispatch(c, env).watchdog_fired);
  }
}

TEST(Watchdog, InOrderPoliciesNeverFire) {
  SchedulerConfig cfg = config_for(SchedulerKind::kTwoOpBlock);
  cfg.deadlock = DeadlockMode::kWatchdog;
  cfg.watchdog_timeout = 2;
  Scheduler s(cfg, 1, 8, 8);
  FakeEnv env;
  s.insert(inst(0, 0, 10, 11));
  for (Cycle c = 1; c < 20; ++c) {
    EXPECT_FALSE(s.run_dispatch(c, env).watchdog_fired);
  }
}

// ---- flush & bookkeeping -----------------------------------------------------

TEST(SchedulerFlush, ClearsAllState) {
  Scheduler s(config_for(SchedulerKind::kTwoOpBlockOoo, /*iq=*/1), 1, 8, 8);
  FakeEnv env;
  s.insert(inst(0, 0));
  (void)s.run_dispatch(1, env);
  s.insert(inst(0, 1));
  env.set_oldest(0, 1);
  (void)s.run_dispatch(2, env);  // DAB occupied, IQ full
  s.flush();
  EXPECT_EQ(s.buffer_size(0), 0u);
  EXPECT_FALSE(s.dab_occupied(0));
  EXPECT_EQ(s.iq().size(), 0u);
  EXPECT_EQ(s.held_instructions(0), 0u);
  // Replay after a flush restarts at an older sequence number.
  s.insert(inst(0, 0));
  EXPECT_EQ(s.run_dispatch(3, env).dispatched, 1u);
}

TEST(SchedulerBookkeeping, HeldInstructionsCountsAllStations) {
  Scheduler s(config_for(SchedulerKind::kTwoOpBlockOoo, /*iq=*/1), 1, 8, 8);
  FakeEnv env;
  s.insert(inst(0, 0));
  s.insert(inst(0, 1, 10, 11));
  EXPECT_EQ(s.held_instructions(0), 2u);
  (void)s.run_dispatch(1, env);  // seq 0 -> IQ
  EXPECT_EQ(s.held_instructions(0), 2u);
  s.insert(inst(0, 2));
  env.set_oldest(0, 0);
  (void)s.run_dispatch(2, env);
  EXPECT_EQ(s.held_instructions(0), 3u);
}

TEST(SchedulerBookkeeping, OutOfOrderInsertIsRejected) {
  Scheduler s(config_for(SchedulerKind::kTraditional), 1, 8, 8);
  s.insert(inst(0, 0));
  s.insert(inst(0, 1));
  EXPECT_DEATH(s.insert(inst(0, 5)), "MSIM_CHECK");
}

TEST(SchedulerBookkeeping, BufferCapacityEnforced) {
  SchedulerConfig cfg = config_for(SchedulerKind::kTraditional);
  cfg.rename_buffer_entries = 2;
  Scheduler s(cfg, 1, 8, 8);
  s.insert(inst(0, 0));
  EXPECT_TRUE(s.buffer_has_space(0));
  s.insert(inst(0, 1));
  EXPECT_FALSE(s.buffer_has_space(0));
}

// ---- cross-policy conservation property --------------------------------------

class PolicyConservation : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(PolicyConservation, EveryInsertedInstructionIsAccountedFor) {
  SchedulerConfig cfg = config_for(GetParam(), /*iq=*/4);
  Scheduler s(cfg, 2, 4, 4);
  FakeEnv env;
  // Point "oldest in ROB" at a sequence number that never enters the
  // buffers so the DAB path stays cold; this keeps the accounting simple
  // (the DAB invariant requires the pipeline's real commit behaviour).
  env.set_oldest(0, ~SeqNum{0});
  env.set_oldest(1, ~SeqNum{0});
  std::uint64_t inserted = 0, issued = 0;
  SeqNum next_seq[2] = {0, 0};
  std::uint64_t rng = 88172645463325252ULL;
  auto rand = [&rng] {
    rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17;
    return rng;
  };
  for (Cycle c = 1; c <= 300; ++c) {
    for (ThreadId t = 0; t < 2; ++t) {
      if (s.buffer_has_space(t) && rand() % 2) {
        const PhysReg s0 = rand() % 3 ? kNoPhysReg : static_cast<PhysReg>(rand() % 8);
        const PhysReg s1 = rand() % 3 ? kNoPhysReg : static_cast<PhysReg>(rand() % 8);
        s.insert(inst(t, next_seq[t]++, s0, s1));
        ++inserted;
      }
    }
    // Make low registers ready over time so NDIs eventually unblock.
    if (c % 5 == 0) env.set_ready(static_cast<PhysReg>((c / 5) % 8));
    (void)s.run_dispatch(c, env);
    RecordingIssueEnv sink;
    issued += s.run_select(c, sink);
  }
  const std::uint64_t held = s.held_instructions(0) + s.held_instructions(1);
  EXPECT_EQ(inserted, issued + held);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, PolicyConservation,
    ::testing::Values(SchedulerKind::kTraditional, SchedulerKind::kTwoOpBlock,
                      SchedulerKind::kTwoOpBlockOoo,
                      SchedulerKind::kTwoOpBlockOooFiltered),
    [](const ::testing::TestParamInfo<SchedulerKind>& info) {
      return std::string(scheduler_kind_name(info.param));
    });

TEST(SchedulerNames, AllNamed) {
  EXPECT_EQ(scheduler_kind_name(SchedulerKind::kTraditional), "traditional");
  EXPECT_EQ(scheduler_kind_name(SchedulerKind::kTwoOpBlock), "2op_block");
  EXPECT_EQ(scheduler_kind_name(SchedulerKind::kTwoOpBlockOoo), "2op_block_ooo");
  EXPECT_EQ(scheduler_kind_name(SchedulerKind::kTwoOpBlockOooFiltered),
            "2op_block_ooo_filtered");
  EXPECT_EQ(deadlock_mode_name(DeadlockMode::kAvoidanceBuffer), "avoidance_buffer");
  EXPECT_EQ(deadlock_mode_name(DeadlockMode::kWatchdog), "watchdog");
}


// ---- tag elimination (related-work design) ------------------------------------

TEST(TagElimination, TwoNonReadyUsesATwoComparatorEntry) {
  Scheduler s(config_for(SchedulerKind::kTagElimination, /*iq=*/8), 1, 8, 8);
  FakeEnv env;
  s.insert(inst(0, 0, 10, 11));  // needs a 2-cmp entry; layout has 8/4 = 2
  EXPECT_EQ(s.run_dispatch(1, env).dispatched, 1u);
  EXPECT_EQ(s.dispatch_stats().dispatched_by_nonready[2], 1u);
}

TEST(TagElimination, BlocksWhenTwoCmpEntriesExhausted) {
  Scheduler s(config_for(SchedulerKind::kTagElimination, /*iq=*/8), 1, 8, 8);
  FakeEnv env;
  // The 8-entry layout has two 2-comparator entries; fill them.
  s.insert(inst(0, 0, 10, 11));
  s.insert(inst(0, 1, 12, 13));
  s.insert(inst(0, 2, 14, 15));  // no 2-cmp entry left
  s.insert(inst(0, 3));          // would fit a 0/1-cmp entry, but in-order
  const auto result = s.run_dispatch(1, env);
  EXPECT_EQ(result.dispatched, 2u);
  EXPECT_EQ(s.buffer_size(0), 2u);
  EXPECT_EQ(s.dispatch_stats().iq_full_thread_cycles, 1u);
  // Not an NDI in the 2OP_BLOCK sense: the layout CAN hold it.
  EXPECT_EQ(s.dispatch_stats().ndi_blocked_thread_cycles, 0u);
}

TEST(TagElimination, ReadyInstructionsFlowThroughSmallEntries) {
  Scheduler s(config_for(SchedulerKind::kTagElimination, /*iq=*/8), 1, 8, 8);
  FakeEnv env;
  for (SeqNum q = 0; q < 8; ++q) s.insert(inst(0, q));  // all ready
  EXPECT_EQ(s.run_dispatch(1, env).dispatched, 8u);
  EXPECT_TRUE(s.iq().full());
}

TEST(SchedulerSquash, RemovesYoungerFromBufferAndIq) {
  Scheduler s(config_for(SchedulerKind::kTwoOpBlockOoo, /*iq=*/8), 2, 8, 8);
  FakeEnv env;
  s.insert(inst(0, 0));
  s.insert(inst(0, 1));
  (void)s.run_dispatch(1, env);      // both into the IQ
  s.insert(inst(0, 2, 10, 11));      // NDI stays in the buffer
  s.insert(inst(1, 0));
  s.squash_younger(0, 0);
  EXPECT_EQ(s.buffer_size(0), 0u);   // seq 2 squashed from the buffer
  EXPECT_EQ(s.held_instructions(0), 1u);  // only IQ seq 0 remains
  EXPECT_EQ(s.buffer_size(1), 1u);   // other thread untouched
  // Replay re-inserts starting at the squash point.
  s.insert(inst(0, 1));
  EXPECT_EQ(s.buffer_size(0), 1u);
}

}  // namespace
}  // namespace msim::core
