// Guard rails for the event-driven scheduler hot paths (docs/PERFORMANCE.md).
//
// Four layers, from micro to macro:
//   1. Randomized equivalence: the wakeup-list IssueQueue must behave
//      exactly like a brute-force reference scan model under randomized
//      dependency graphs (dispatch/broadcast/issue/squash interleavings).
//   2. Free-list exhaustion & reuse: recycled slots must not be woken by
//      stale wakeup-list nodes left behind by their previous occupant.
//   3. BroadcastSchedule equivalence: the calendar queue (ring + spill
//      map) must drain the same per-cycle tag multisets as the std::map
//      it replaced, across schedule/cancel/drain interleavings including
//      beyond-horizon spills and cancels after the drain point advances.
//   4. Golden bit-identity: committed-instruction digests of full 2T/4T
//      pipeline runs are pinned.  Any optimization that changes a digest
//      changed machine behavior and violated the bit-identity contract.
#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/issue_queue.hpp"
#include "smt/broadcast_schedule.hpp"
#include "smt/pipeline.hpp"
#include "trace/profile.hpp"

namespace msim::core {
namespace {

// ---- 1. randomized equivalence against a reference scan model --------------

/// Executable specification: the pre-wakeup-list IssueQueue algorithm,
/// verbatim.  Free entries come from per-class LIFO lists (identical to the
/// production queue, so both pick the same slot); wakeup is a full-queue
/// CAM scan and ready collection a full-queue sweep.  Obviously correct,
/// deliberately slow.
class ReferenceScanIq {
 public:
  explicit ReferenceScanIq(const IqLayout& layout) {
    std::uint32_t slot = 0;
    for (unsigned cmp = 0; cmp <= isa::kMaxSources; ++cmp) {
      for (std::uint32_t i = 0; i < layout.entries_by_comparators[cmp];
           ++i, ++slot) {
        Entry e;
        e.comparators = static_cast<std::uint8_t>(cmp);
        entries_.push_back(e);
        free_by_cmp_[cmp].push_back(slot);
      }
    }
  }

  [[nodiscard]] bool has_entry_for(unsigned non_ready) const {
    for (unsigned cmp = non_ready; cmp <= isa::kMaxSources; ++cmp) {
      if (!free_by_cmp_[cmp].empty()) return true;
    }
    return false;
  }

  std::uint32_t dispatch(const SchedInst& inst, std::span<const PhysReg> waiting,
                         Cycle now) {
    std::uint32_t slot = static_cast<std::uint32_t>(entries_.size());
    for (unsigned cmp = static_cast<unsigned>(waiting.size());
         cmp <= isa::kMaxSources; ++cmp) {
      if (!free_by_cmp_[cmp].empty()) {
        slot = free_by_cmp_[cmp].back();
        free_by_cmp_[cmp].pop_back();
        break;
      }
    }
    EXPECT_LT(slot, entries_.size());
    Entry& e = entries_[slot];
    e.inst = inst;
    e.pending = 0;
    e.waiting[0] = e.waiting[1] = kNoPhysReg;
    for (std::size_t i = 0; i < waiting.size(); ++i) {
      e.waiting[i] = waiting[i];
      ++e.pending;
    }
    e.dispatched_at = now;
    e.age_stamp = next_stamp_++;
    e.valid = true;
    ++live_;
    ++ref_stats_.dispatched;
    return slot;
  }

  void broadcast(PhysReg tag) {
    ++ref_stats_.broadcasts;
    if (live_ == 0) return;
    for (Entry& e : entries_) {
      if (!e.valid) continue;
      ref_stats_.comparator_ops += e.comparators;
      if (e.pending == 0) continue;
      for (PhysReg& w : e.waiting) {
        if (w == tag) {
          w = kNoPhysReg;
          --e.pending;
          ++ref_stats_.wakeups;
        }
      }
    }
  }

  void collect_ready(std::vector<std::uint32_t>& out) const {
    const std::size_t first = out.size();
    for (std::uint32_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].valid && entries_[i].pending == 0) out.push_back(i);
    }
    std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                return entries_[a].age_stamp < entries_[b].age_stamp;
              });
  }

  void issue(std::uint32_t slot) {
    release(slot);
    ++ref_stats_.issued;
  }

  void squash_younger(ThreadId tid, SeqNum after_seq) {
    for (std::uint32_t i = 0; i < entries_.size(); ++i) {
      Entry& e = entries_[i];
      if (e.valid && e.inst.tid == tid && e.inst.seq > after_seq) release(i);
    }
  }

  [[nodiscard]] const SchedInst& at(std::uint32_t slot) const {
    return entries_[slot].inst;
  }

  struct RefStats {
    std::uint64_t dispatched = 0;
    std::uint64_t issued = 0;
    std::uint64_t broadcasts = 0;
    std::uint64_t wakeups = 0;
    std::uint64_t comparator_ops = 0;
  };
  [[nodiscard]] const RefStats& stats() const { return ref_stats_; }

 private:
  struct Entry {
    SchedInst inst{};
    PhysReg waiting[isa::kMaxSources] = {kNoPhysReg, kNoPhysReg};
    std::uint8_t pending = 0;
    std::uint8_t comparators = 0;
    Cycle dispatched_at = 0;
    std::uint64_t age_stamp = 0;
    bool valid = false;
  };

  void release(std::uint32_t slot) {
    Entry& e = entries_[slot];
    e.valid = false;
    free_by_cmp_[e.comparators].push_back(slot);
    --live_;
  }

  std::vector<Entry> entries_;
  std::array<std::vector<std::uint32_t>, isa::kMaxSources + 1> free_by_cmp_;
  std::uint32_t live_ = 0;
  std::uint64_t next_stamp_ = 0;
  RefStats ref_stats_;
};

/// Drives the production IssueQueue and the reference model with the same
/// randomized stream of dispatch / broadcast / issue / squash events and
/// asserts identical observable behavior after every step.
void run_equivalence(std::uint64_t seed, const IqLayout& layout,
                     unsigned tag_space, unsigned steps) {
  IssueQueue iq(layout);
  ReferenceScanIq ref(layout);
  Rng rng(seed);

  SeqNum next_seq[4] = {1, 1, 1, 1};
  Cycle now = 0;
  std::vector<std::uint32_t> got;
  std::vector<std::uint32_t> want;
  /// Tags some dispatched instruction is (or was) waiting on; broadcasting
  /// one models its producer completing.
  std::vector<PhysReg> outstanding;

  for (unsigned step = 0; step < steps; ++step) {
    ++now;
    const double roll = rng.next_double();
    if (roll < 0.45) {
      // Dispatch with 0-2 distinct waiting tags, when an entry exists.
      const auto tid = static_cast<ThreadId>(rng.next_u64() % 4);
      PhysReg waiting[isa::kMaxSources];
      std::size_t n = rng.next_u64() % (isa::kMaxSources + 1);
      const unsigned max_cmp = iq.max_comparators();
      if (n > max_cmp) n = max_cmp;
      if (n >= 1) waiting[0] = static_cast<PhysReg>(rng.next_u64() % tag_space);
      if (n == 2) {
        waiting[1] = static_cast<PhysReg>(rng.next_u64() % tag_space);
        if (waiting[1] == waiting[0]) n = 1;
      }
      ASSERT_EQ(iq.has_entry_for(static_cast<unsigned>(n)),
                ref.has_entry_for(static_cast<unsigned>(n)));
      if (!iq.has_entry_for(static_cast<unsigned>(n))) continue;
      SchedInst inst;
      inst.tid = tid;
      inst.seq = next_seq[tid]++;
      const std::uint32_t a = iq.dispatch(inst, {waiting, n}, now);
      const std::uint32_t b = ref.dispatch(inst, {waiting, n}, now);
      ASSERT_EQ(a, b) << "free-entry choice diverged at step " << step;
      for (std::size_t i = 0; i < n; ++i) outstanding.push_back(waiting[i]);
    } else if (roll < 0.75 && !outstanding.empty()) {
      // Broadcast one outstanding tag (a producer completes; every consumer
      // of that tag wakes at once, so drop all its occurrences).
      const std::size_t pick = rng.next_u64() % outstanding.size();
      const PhysReg tag = outstanding[pick];
      std::erase(outstanding, tag);
      iq.broadcast(tag);
      ref.broadcast(tag);
    } else if (roll < 0.9) {
      // Issue up to issue-width ready entries, oldest first.
      got.clear();
      want.clear();
      iq.collect_ready(got);
      ref.collect_ready(want);
      ASSERT_EQ(got, want) << "ready sets diverged at step " << step;
      const std::size_t width = std::min<std::size_t>(got.size(), 4);
      for (std::size_t i = 0; i < width; ++i) {
        ASSERT_EQ(iq.at(got[i]).seq, ref.at(want[i]).seq);
        ASSERT_EQ(iq.at(got[i]).tid, ref.at(want[i]).tid);
        iq.issue(got[i], now);
        ref.issue(want[i]);
      }
    } else if (roll < 0.95) {
      // Partial squash of one thread (FLUSH fetch policy path).  Both
      // implementations release squashed slots in ascending slot order, so
      // the free lists stay in lockstep.
      const auto tid = static_cast<ThreadId>(rng.next_u64() % 4);
      if (next_seq[tid] <= 1) continue;
      const SeqNum after = rng.next_u64() % next_seq[tid];
      iq.squash_younger(tid, after);
      ref.squash_younger(tid, after);
    }

    got.clear();
    want.clear();
    iq.collect_ready(got);
    ref.collect_ready(want);
    ASSERT_EQ(got, want) << "ready sets diverged after step " << step;
    ASSERT_EQ(iq.stats().wakeups, ref.stats().wakeups) << "step " << step;
    ASSERT_EQ(iq.stats().comparator_ops, ref.stats().comparator_ops)
        << "step " << step;
    ASSERT_EQ(iq.stats().broadcasts, ref.stats().broadcasts);
    ASSERT_EQ(iq.stats().dispatched, ref.stats().dispatched);
    ASSERT_EQ(iq.stats().issued, ref.stats().issued);
  }
}

TEST(WakeupListEquivalence, UniformTwoComparatorQueue) {
  run_equivalence(1, IqLayout::uniform(16, 2), /*tag_space=*/48, /*steps=*/4000);
  run_equivalence(2, IqLayout::uniform(64, 2), /*tag_space=*/160, /*steps=*/4000);
}

TEST(WakeupListEquivalence, UniformOneComparatorQueue) {
  run_equivalence(3, IqLayout::uniform(16, 1), /*tag_space=*/48, /*steps=*/4000);
  run_equivalence(4, IqLayout::uniform(64, 1), /*tag_space=*/160, /*steps=*/4000);
}

TEST(WakeupListEquivalence, TagEliminatedQueue) {
  run_equivalence(5, IqLayout::tag_eliminated(32), /*tag_space=*/96,
                  /*steps=*/4000);
}

TEST(WakeupListEquivalence, TinyQueueHighContention) {
  // A 4-entry queue forces constant exhaustion, reuse and stale-node churn.
  run_equivalence(6, IqLayout::uniform(4, 2), /*tag_space=*/8, /*steps=*/6000);
  run_equivalence(7, IqLayout::uniform(4, 1), /*tag_space=*/6, /*steps=*/6000);
}

// ---- 2. free-list exhaustion and slot reuse --------------------------------

SchedInst make_inst(ThreadId tid, SeqNum seq) {
  SchedInst inst;
  inst.tid = tid;
  inst.seq = seq;
  return inst;
}

TEST(IqFreeList, ExhaustReuseCycle) {
  IssueQueue iq(4, 2);
  std::vector<std::uint32_t> ready;
  // Fill to exhaustion with ready instructions.
  for (SeqNum s = 1; s <= 4; ++s) {
    ASSERT_TRUE(iq.has_entry_for(0));
    iq.dispatch(make_inst(0, s), {}, s);
  }
  EXPECT_TRUE(iq.full());
  EXPECT_FALSE(iq.has_entry_for(0));
  // Drain and refill twice: every slot must be reusable.
  for (int round = 0; round < 2; ++round) {
    ready.clear();
    iq.collect_ready(ready);
    ASSERT_EQ(ready.size(), 4u);
    for (const std::uint32_t slot : ready) iq.issue(slot, 10);
    EXPECT_EQ(iq.size(), 0u);
    for (SeqNum s = 1; s <= 4; ++s) {
      ASSERT_TRUE(iq.has_entry_for(2));
      const PhysReg tags[2] = {static_cast<PhysReg>(s), static_cast<PhysReg>(s + 8)};
      iq.dispatch(make_inst(1, s + 10 * static_cast<SeqNum>(round)), {tags, 2}, 20);
    }
    EXPECT_TRUE(iq.full());
    for (SeqNum s = 1; s <= 4; ++s) {
      iq.broadcast(static_cast<PhysReg>(s));
      iq.broadcast(static_cast<PhysReg>(s + 8));
    }
  }
  EXPECT_EQ(iq.stats().dispatched, 12u);
  EXPECT_EQ(iq.stats().wakeups, 16u);
}

TEST(IqFreeList, StaleWakeupNodeDoesNotWakeReusedSlot) {
  IssueQueue iq(2, 2);
  // A waits on tag 7; squash A before the broadcast.
  const std::uint32_t slot_a =
      iq.dispatch(make_inst(0, 1), std::array<PhysReg, 1>{7}, 1);
  iq.squash_younger(0, 0);
  EXPECT_EQ(iq.size(), 0u);
  // B reuses the slot, also waiting on tag 7; C occupies the other slot
  // waiting on tag 9.  The stale node for A must neither wake B twice nor
  // corrupt the wakeup statistics.
  const std::uint32_t slot_b =
      iq.dispatch(make_inst(1, 1), std::array<PhysReg, 1>{7}, 2);
  EXPECT_EQ(slot_a, slot_b);  // LIFO free list hands the slot straight back
  iq.dispatch(make_inst(1, 2), std::array<PhysReg, 1>{9}, 2);
  iq.broadcast(7);
  EXPECT_EQ(iq.stats().wakeups, 1u);
  EXPECT_TRUE(iq.ready(slot_b));
  std::vector<std::uint32_t> ready;
  iq.collect_ready(ready);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], slot_b);
  // Re-broadcasting an already-consumed tag is a no-op for readiness.
  iq.broadcast(7);
  EXPECT_EQ(iq.stats().wakeups, 1u);
  iq.broadcast(9);
  ready.clear();
  iq.collect_ready(ready);
  EXPECT_EQ(ready.size(), 2u);
}

TEST(IqFreeList, ClearForgetsAllWaiters) {
  IssueQueue iq(4, 2);
  iq.dispatch(make_inst(0, 1), std::array<PhysReg, 2>{3, 4}, 1);
  iq.dispatch(make_inst(0, 2), std::array<PhysReg, 1>{3}, 1);
  iq.clear();
  EXPECT_EQ(iq.size(), 0u);
  // Post-clear, a fresh consumer of tag 3 must see exactly one wakeup.
  iq.dispatch(make_inst(1, 1), std::array<PhysReg, 1>{3}, 2);
  iq.broadcast(3);
  EXPECT_EQ(iq.stats().wakeups, 1u);
  std::vector<std::uint32_t> ready;
  iq.collect_ready(ready);
  EXPECT_EQ(ready.size(), 1u);
}

// ---- 3. BroadcastSchedule calendar queue vs. ordered-map reference ---------

/// Executable specification: the std::map<Cycle, vector> the calendar
/// queue replaced.  Placement is trivially correct, so any divergence in
/// drained tags or pending counts is a calendar-queue bug.
class ReferenceBroadcastMap {
 public:
  void schedule(Cycle when, PhysReg tag) {
    map_[when].push_back(tag);
    ++pending_;
  }

  void cancel(Cycle when, PhysReg tag) {
    const auto it = map_.find(when);
    if (it == map_.end()) return;
    pending_ -= std::erase(it->second, tag);
    if (it->second.empty()) map_.erase(it);
  }

  template <typename Fn>
  void drain_due(Cycle now, Fn&& fn) {
    while (!map_.empty() && map_.begin()->first <= now) {
      for (const PhysReg tag : map_.begin()->second) {
        fn(tag);
        --pending_;
      }
      map_.erase(map_.begin());
    }
  }

  [[nodiscard]] std::uint64_t pending() const { return pending_; }

 private:
  std::map<Cycle, std::vector<PhysReg>> map_;
  std::uint64_t pending_ = 0;
};

/// Drives BroadcastSchedule and the reference map with an identical
/// randomized stream of schedule (including beyond the ring horizon, so
/// the spill map is exercised), cancel and per-cycle drain events,
/// asserting identical drained multisets per cycle and pending counts.
/// Ring and spill entries for one cycle may drain in a different relative
/// order than pure insertion order (documented as unobservable), hence
/// multiset comparison.
void run_broadcast_equivalence(std::uint64_t seed, std::uint32_t horizon,
                               unsigned steps) {
  smt::BroadcastSchedule bs(horizon);
  ReferenceBroadcastMap ref;
  Rng rng(seed);
  Cycle now = 0;
  std::vector<std::pair<Cycle, PhysReg>> live;  // not yet drained or canceled
  std::vector<PhysReg> got;
  std::vector<PhysReg> want;

  const auto drain_one_cycle = [&](Cycle c) {
    got.clear();
    want.clear();
    bs.drain_due(c, [&](PhysReg t) { got.push_back(t); });
    ref.drain_due(c, [&](PhysReg t) { want.push_back(t); });
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    ASSERT_EQ(got, want) << "drained multiset diverged at cycle " << c
                         << " (seed " << seed << ")";
    ASSERT_EQ(bs.pending(), ref.pending()) << "cycle " << c;
  };

  for (unsigned step = 0; step < steps; ++step) {
    const double roll = rng.next_double();
    if (roll < 0.5) {
      // Mostly near-future completions; every ~8th lands far beyond the
      // ring horizon and must take the spill-map path.
      const Cycle offset = (rng.next_u64() % 8 == 0)
                               ? 1 + horizon + rng.next_u64() % (4 * horizon + 8)
                               : 1 + rng.next_u64() % 6;
      const Cycle when = now + offset;
      const auto tag = static_cast<PhysReg>(rng.next_u64() % 32);
      bs.schedule(when, tag);
      ref.schedule(when, tag);
      live.emplace_back(when, tag);
    } else if (roll < 0.65 && !live.empty()) {
      // Squash a not-yet-due broadcast.  cancel() drops every occurrence
      // of the (cycle, tag) pair in both implementations.
      const auto [when, tag] = live[rng.next_u64() % live.size()];
      bs.cancel(when, tag);
      ref.cancel(when, tag);
      std::erase_if(live, [when, tag](const std::pair<Cycle, PhysReg>& p) {
        return p.first == when && p.second == tag;
      });
    } else {
      // Advance time cycle by cycle so per-cycle multisets are compared.
      const Cycle until = now + 1 + rng.next_u64() % 10;
      for (Cycle c = now + 1; c <= until; ++c) drain_one_cycle(c);
      now = until;
      std::erase_if(live, [now](const std::pair<Cycle, PhysReg>& p) {
        return p.first <= now;
      });
    }
    ASSERT_EQ(bs.pending(), ref.pending()) << "step " << step;
    ASSERT_EQ(bs.empty(), ref.pending() == 0);
  }
  // Flush: everything still pending must drain identically too.
  while (bs.pending() != 0 || ref.pending() != 0) drain_one_cycle(++now);
}

TEST(BroadcastScheduleEquivalence, RandomizedVsMap) {
  run_broadcast_equivalence(1, /*horizon=*/8, /*steps=*/4000);
  run_broadcast_equivalence(2, /*horizon=*/8, /*steps=*/4000);
  run_broadcast_equivalence(3, /*horizon=*/64, /*steps=*/4000);
}

TEST(BroadcastScheduleEquivalence, DegenerateOneBucketRing) {
  // horizon_hint=1 gives a single-bucket ring: all but same-cycle inserts
  // spill, so the spill map and its interaction with cancel dominate.
  run_broadcast_equivalence(4, /*horizon=*/1, /*steps=*/3000);
}

// Regression: a tag scheduled beyond the ring horizon lives in the spill
// map.  Once the drain point advances far enough that `when` falls within
// horizon of the *current* base, cancel() must still find it in the spill
// map — looking only in the (empty) ring bucket would let the squashed
// broadcast fire later against a rewound/reallocated phys reg.
TEST(BroadcastSchedule, CancelFindsSpilledTagAfterBaseAdvances) {
  smt::BroadcastSchedule bs(/*horizon_hint=*/8);
  bs.schedule(100, 7);  // 100 cycles out: beyond the 8-deep ring, spills
  EXPECT_EQ(bs.pending(), 1u);
  unsigned fired = 0;
  bs.drain_due(95, [&](PhysReg) { ++fired; });
  EXPECT_EQ(fired, 0u);
  bs.cancel(100, 7);  // now within ring horizon of base, but stored in spill
  EXPECT_EQ(bs.pending(), 0u);
  bs.drain_due(100, [&](PhysReg) { ++fired; });
  EXPECT_EQ(fired, 0u) << "squashed broadcast must not fire";
  EXPECT_TRUE(bs.empty());
}

TEST(BroadcastSchedule, CancelInRingAndDrainOrder) {
  smt::BroadcastSchedule bs(/*horizon_hint=*/8);
  bs.schedule(2, 10);
  bs.schedule(1, 11);
  bs.schedule(2, 12);
  bs.cancel(2, 10);
  std::vector<PhysReg> fired;
  bs.drain_due(3, [&](PhysReg t) { fired.push_back(t); });
  EXPECT_EQ(fired, (std::vector<PhysReg>{11, 12}));  // ascending cycle order
  EXPECT_TRUE(bs.empty());
}

TEST(BroadcastSchedule, DrainCallbackMayScheduleAheadButNotSameCycle) {
  // The pipeline always schedules completions at least one cycle ahead;
  // schedule() now enforces that contract while a drain is in progress
  // (a same-cycle insert would append to the bucket being walked).
  smt::BroadcastSchedule ok(/*horizon_hint=*/8);
  ok.schedule(3, 1);
  std::vector<PhysReg> fired;
  ok.drain_due(3, [&](PhysReg t) {
    fired.push_back(t);
    if (t == 1) ok.schedule(4, 2);
  });
  ok.drain_due(4, [&](PhysReg t) { fired.push_back(t); });
  EXPECT_EQ(fired, (std::vector<PhysReg>{1, 2}));
  EXPECT_TRUE(ok.empty());

  ScopedCheckThrow guard;
  smt::BroadcastSchedule bad(/*horizon_hint=*/8);
  bad.schedule(5, 1);
  EXPECT_THROW(
      bad.drain_due(5, [&](PhysReg) { bad.schedule(5, 2); }), CheckError);
}

// ---- 4. golden bit-identity digests ----------------------------------------

std::vector<trace::BenchmarkProfile> workload(
    std::initializer_list<const char*> names) {
  std::vector<trace::BenchmarkProfile> out;
  for (const char* n : names) out.push_back(trace::profile_or_throw(n));
  return out;
}

/// FNV-1a over every committed (tid, seq, cycle) triple, in commit order.
class CommitDigest final : public smt::PipelineObserver {
 public:
  void on_commit(ThreadId tid, SeqNum seq, Cycle now) override {
    mix(tid);
    mix(seq);
    mix(now);
  }
  void on_cycle_end(const smt::Pipeline&, Cycle) override {}

  [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

 private:
  void mix(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xff;
      hash_ *= 0x100000001b3ULL;
    }
  }
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

struct GoldenRun {
  std::uint64_t digest = 0;
  Cycle cycles = 0;
  std::uint64_t committed = 0;
  std::uint64_t iq_wakeups = 0;
  std::uint64_t iq_comparator_ops = 0;
  std::uint64_t dispatched = 0;
};

GoldenRun run_digest(SchedulerKind kind, std::initializer_list<const char*> names,
                     std::uint64_t seed) {
  const auto w = workload(names);
  smt::MachineConfig mc;
  mc.thread_count = static_cast<unsigned>(w.size());
  mc.scheduler.kind = kind;
  mc.scheduler.iq_entries = 64;
  smt::Pipeline pipe(mc, w, seed);
  CommitDigest digest;
  pipe.set_observer(&digest);
  pipe.run(30'000);
  pipe.set_observer(nullptr);
  GoldenRun g;
  g.digest = digest.value();
  g.cycles = pipe.cycles();
  g.committed = pipe.total_committed();
  g.iq_wakeups = pipe.scheduler().iq().stats().wakeups;
  g.iq_comparator_ops = pipe.scheduler().iq().stats().comparator_ops;
  g.dispatched = pipe.scheduler().dispatch_stats().dispatched;
  return g;
}

void expect_golden(const GoldenRun& got, const GoldenRun& want) {
  EXPECT_EQ(got.digest, want.digest) << "committed-instruction stream changed";
  EXPECT_EQ(got.cycles, want.cycles);
  EXPECT_EQ(got.committed, want.committed);
  EXPECT_EQ(got.iq_wakeups, want.iq_wakeups);
  EXPECT_EQ(got.iq_comparator_ops, want.iq_comparator_ops);
  EXPECT_EQ(got.dispatched, want.dispatched);
}

// The constants below were produced by the pre-optimization (PR-3)
// scheduler and pin the machine's architectural behavior: the event-driven
// hot paths must reproduce them bit for bit.  If a change moves one of
// these on purpose (a modeling change, not an optimization), re-derive the
// constants and say so loudly in the PR; docs/PERFORMANCE.md explains the
// contract.
TEST(GoldenBitIdentity, TwoThreadTraditional) {
  expect_golden(run_digest(SchedulerKind::kTraditional, {"gzip", "equake"}, 1),
                GoldenRun{10830539571080912323ULL, 37241, 46411, 28340, 2082294, 46589});
}

TEST(GoldenBitIdentity, TwoThreadTwoOpBlockOoo) {
  expect_golden(run_digest(SchedulerKind::kTwoOpBlockOoo, {"gzip", "equake"}, 1),
                GoldenRun{12392273267717430596ULL, 37112, 46411, 24695, 936831, 46585});
}

TEST(GoldenBitIdentity, FourThreadTraditional) {
  expect_golden(
      run_digest(SchedulerKind::kTraditional, {"gzip", "equake", "gcc", "mesa"}, 1),
      GoldenRun{15374823743679590000ULL, 33632, 74292, 39443, 5085728, 74521});
}

TEST(GoldenBitIdentity, FourThreadTwoOpBlock) {
  expect_golden(
      run_digest(SchedulerKind::kTwoOpBlock, {"gzip", "equake", "gcc", "mesa"}, 1),
      GoldenRun{6333350359642444287ULL, 33461, 70535, 32252, 1518349, 70658});
}

TEST(GoldenBitIdentity, FourThreadTwoOpBlockOoo) {
  expect_golden(
      run_digest(SchedulerKind::kTwoOpBlockOoo, {"gzip", "equake", "gcc", "mesa"}, 1),
      GoldenRun{17558748911921286022ULL, 33087, 73790, 34823, 2434789, 74016});
}

TEST(GoldenBitIdentity, FourThreadTagElimination) {
  expect_golden(
      run_digest(SchedulerKind::kTagElimination, {"gzip", "equake", "gcc", "mesa"}, 1),
      GoldenRun{15796738916688664714ULL, 33844, 74460, 36158, 2863349, 74692});
}

}  // namespace
}  // namespace msim::core
