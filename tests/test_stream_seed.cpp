// derive_stream_seed: the keystone of reproducibility (common/rng.hpp).
//
// Every simulation in a sweep draws its RNG stream from
// derive_stream_seed(base, tag, salts) and nothing else, so parallel
// sweeps reproduce serial ones and resumed sweeps reproduce uninterrupted
// ones (docs/CHECKPOINT.md).  That puts two obligations on the derivation:
//
//   1. Stability: the mapping is part of the persistence contract.  A
//      journal or checkpoint written yesterday replays against streams
//      derived today, so the golden values pinned here must never move.
//      If the derivation changes, every journal and checkpoint in the
//      wild silently stops matching its fingerprint's promise.
//   2. Injectivity in practice: no two cells of the real experiment grid
//      (every paper mix x every IQ size, plus every baseline run) may
//      collide, or two "independent" simulations would see identical
//      randomness.
#include <cstdint>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "trace/mixes.hpp"

namespace msim {
namespace {

// ---- 1. golden values ------------------------------------------------------

// Pinned outputs for representative (base, tag, salt) tuples, including the
// exact tags the sweep engine uses ("mix:<name>" with the IQ size as salt,
// "baseline:<benchmark>", "fault-plan").  These are format constants, like
// the checkpoint magic: re-deriving them on purpose requires bumping the
// checkpoint format version and saying so loudly in the PR.
TEST(DeriveStreamSeed, GoldenValues) {
  EXPECT_EQ(derive_stream_seed(1, "mix:2T-mix1", 32), 5557445103353952034ULL);
  EXPECT_EQ(derive_stream_seed(1, "mix:2T-mix1", 48), 3893186423063461089ULL);
  EXPECT_EQ(derive_stream_seed(1, "mix:4T-mix12", 128), 18042748078130919044ULL);
  EXPECT_EQ(derive_stream_seed(1, "baseline:gzip", 64), 3649044868911724390ULL);
  EXPECT_EQ(derive_stream_seed(2, "mix:2T-mix1", 32), 13012115030404616103ULL);
  EXPECT_EQ(derive_stream_seed(1, "fault-plan", 0), 2923411709266606703ULL);
  EXPECT_EQ(derive_stream_seed(1, "mix:2T-mix1", 0, 7), 18212964507244902709ULL);
}

TEST(DeriveStreamSeed, EveryIngredientMatters) {
  const std::uint64_t ref = derive_stream_seed(1, "mix:2T-mix1", 32);
  EXPECT_NE(derive_stream_seed(2, "mix:2T-mix1", 32), ref);  // base
  EXPECT_NE(derive_stream_seed(1, "mix:2T-mix2", 32), ref);  // tag
  EXPECT_NE(derive_stream_seed(1, "mix:2T-mix1", 33), ref);  // salt0
  EXPECT_NE(derive_stream_seed(1, "mix:2T-mix1", 32, 1), ref);  // salt1
  EXPECT_NE(ref, 1u);  // derived stream is not the base seed itself
}

TEST(DeriveStreamSeed, TagIsOrderSensitive) {
  // An order-insensitive digest would make "ab"+"c" collide with "a"+"bc".
  EXPECT_NE(derive_stream_seed(1, "ab"), derive_stream_seed(1, "ba"));
  EXPECT_NE(derive_stream_seed(1, "mix:x"), derive_stream_seed(1, "x:mix"));
}

// ---- 2. no collisions across the full experiment grid ----------------------

TEST(DeriveStreamSeed, NoCollisionsAcrossFullSweepGrid) {
  // Exactly the streams the experiment harness derives: one per (mix, iq)
  // across all 36 paper mixes (2T + 3T + 4T) and the standard IQ ladder,
  // plus one per (benchmark, iq) baseline.  Every stream must be unique --
  // a collision would silently correlate two "independent" simulations.
  static constexpr std::uint32_t kIqSizes[] = {32, 48, 64, 96, 128};
  static constexpr std::uint64_t kBaseSeeds[] = {1, 2, 42};

  for (const std::uint64_t base : kBaseSeeds) {
    std::set<std::uint64_t> seen;
    std::size_t derived = 0;
    std::set<std::string> benchmarks;
    for (const trace::WorkloadMix& mix : trace::all_mixes()) {
      for (const std::uint32_t iq : kIqSizes) {
        seen.insert(
            derive_stream_seed(base, std::string("mix:").append(mix.name), iq));
        ++derived;
      }
      for (const std::string_view bench : mix.threads()) {
        benchmarks.emplace(bench);
      }
    }
    for (const std::string& bench : benchmarks) {
      for (const std::uint32_t iq : kIqSizes) {
        seen.insert(derive_stream_seed(base, "baseline:" + bench, iq));
        ++derived;
      }
    }
    EXPECT_EQ(seen.size(), derived)
        << "stream-seed collision within the grid at base seed " << base;
    EXPECT_EQ(seen.count(base), 0u)
        << "a derived stream collided with the base seed itself";
  }
}

TEST(DeriveStreamSeed, NoCollisionsAcrossNearbyBaseSeeds) {
  // Users pick small adjacent seeds (seed=1, seed=2, ...).  Streams derived
  // from nearby bases must not collide either: the SplitMix64 finalizer is
  // there precisely so +1 in any ingredient lands far away.
  std::set<std::uint64_t> seen;
  std::size_t derived = 0;
  for (std::uint64_t base = 0; base < 64; ++base) {
    for (const trace::WorkloadMix& mix : trace::mixes_for(2)) {
      seen.insert(
          derive_stream_seed(base, std::string("mix:").append(mix.name), 64));
      ++derived;
    }
  }
  EXPECT_EQ(seen.size(), derived);
}

}  // namespace
}  // namespace msim
