// Checkpoint/restore bit-identity (docs/CHECKPOINT.md).
//
// The contract under test: a pipeline suspended mid-run, serialized,
// restored into a freshly constructed pipeline in what might as well be a
// different process, and run to completion is indistinguishable from one
// that never stopped — same commit-stream digest, same cycle count, same
// statistics, same JSON reports.  Four layers:
//
//   1. Pipeline save_state/load_state against the pinned golden digests of
//      tests/test_perf_paths.cpp: a mid-run round-trip must land on the
//      exact constants the uninterrupted run pins.
//   2. The checkpoint file container: magic/version/fingerprint checking,
//      corruption rejection.
//   3. run_simulation with checkpoint_exit_cycles / resume_path: the
//      interrupt-resume-interrupt-resume chain must reproduce the straight
//      run's RunResult and stats JSON byte for byte, including with
//      verify=1 across the boundary.
//   4. run_sweep with a cell journal: a sweep killed mid-grid resumes from
//      its write-ahead journal to byte-identical aggregate JSON at any
//      jobs count.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <unistd.h>

#include "common/archive.hpp"
#include "common/rng.hpp"
#include "persist/checkpoint.hpp"
#include "persist/signal.hpp"
#include "robust/diagnostic.hpp"
#include "robust/fault.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/run.hpp"
#include "smt/pipeline.hpp"
#include "trace/mixes.hpp"
#include "trace/profile.hpp"

namespace msim {
namespace {

std::string temp_path(const std::string& stem) {
  return (std::filesystem::temp_directory_path() /
          (stem + "-" + std::to_string(::getpid())))
      .string();
}

/// Removes a temp file even when an assertion bails out of the test early.
class TempFile {
 public:
  explicit TempFile(const std::string& stem) : path_(temp_path(stem)) {}
  ~TempFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

// ---- 1. pipeline round-trip vs the pinned golden constants -----------------

std::vector<trace::BenchmarkProfile> workload(
    std::initializer_list<const char*> names) {
  std::vector<trace::BenchmarkProfile> out;
  for (const char* n : names) out.push_back(trace::profile_or_throw(n));
  return out;
}

smt::MachineConfig golden_machine(core::SchedulerKind kind, unsigned threads) {
  smt::MachineConfig mc;
  mc.thread_count = threads;
  mc.scheduler.kind = kind;
  mc.scheduler.iq_entries = 64;
  return mc;
}

/// The uninterrupted-run constants pinned by test_perf_paths.cpp
/// (GoldenBitIdentity).  A checkpointed run must land on the same ones.
struct Golden {
  std::uint64_t digest;
  Cycle cycles;
  std::uint64_t committed;
};

/// Runs to `pause_at` committed instructions, serializes, restores into a
/// fresh pipeline, finishes the standard 30k-commit golden run there, and
/// expects the uninterrupted run's constants bit for bit.
void expect_resume_hits_golden(core::SchedulerKind kind,
                               std::initializer_list<const char*> names,
                               const Golden& want, std::uint64_t pause_at) {
  const auto w = workload(names);
  const auto mc = golden_machine(kind, static_cast<unsigned>(w.size()));

  smt::Pipeline first(mc, w, /*seed=*/1);
  first.run(pause_at);
  ASSERT_LT(first.cycles(), want.cycles) << "pause point is not mid-run";

  persist::Archive save = persist::Archive::saver();
  first.save_state(save);

  smt::Pipeline resumed(mc, w, /*seed=*/1);
  persist::Archive load = persist::Archive::loader(save.bytes());
  resumed.load_state(load);
  load.expect_end();

  resumed.run(30'000);
  EXPECT_EQ(resumed.commit_digest(), want.digest)
      << "committed-instruction stream diverged after restore";
  EXPECT_EQ(resumed.cycles(), want.cycles);
  EXPECT_EQ(resumed.total_committed(), want.committed);

  // The digest is intrinsic to the pipeline now; the uninterrupted run must
  // agree with both the constant and the resumed run.
  smt::Pipeline straight(mc, w, /*seed=*/1);
  straight.run(30'000);
  EXPECT_EQ(straight.commit_digest(), want.digest)
      << "straight run no longer matches the pinned golden digest";
}

TEST(CheckpointBitIdentity, TwoThreadTraditional) {
  expect_resume_hits_golden(core::SchedulerKind::kTraditional,
                            {"gzip", "equake"},
                            {10830539571080912323ULL, 37241, 46411}, 11'000);
}

TEST(CheckpointBitIdentity, TwoThreadTwoOpBlockOoo) {
  expect_resume_hits_golden(core::SchedulerKind::kTwoOpBlockOoo,
                            {"gzip", "equake"},
                            {12392273267717430596ULL, 37112, 46411}, 11'000);
}

TEST(CheckpointBitIdentity, FourThreadTraditional) {
  expect_resume_hits_golden(core::SchedulerKind::kTraditional,
                            {"gzip", "equake", "gcc", "mesa"},
                            {15374823743679590000ULL, 33632, 74292}, 13'000);
}

TEST(CheckpointBitIdentity, FourThreadTwoOpBlock) {
  expect_resume_hits_golden(core::SchedulerKind::kTwoOpBlock,
                            {"gzip", "equake", "gcc", "mesa"},
                            {6333350359642444287ULL, 33461, 70535}, 13'000);
}

TEST(CheckpointBitIdentity, FourThreadTwoOpBlockOoo) {
  expect_resume_hits_golden(core::SchedulerKind::kTwoOpBlockOoo,
                            {"gzip", "equake", "gcc", "mesa"},
                            {17558748911921286022ULL, 33087, 73790}, 13'000);
}

TEST(CheckpointBitIdentity, FourThreadTagElimination) {
  expect_resume_hits_golden(core::SchedulerKind::kTagElimination,
                            {"gzip", "equake", "gcc", "mesa"},
                            {15796738916688664714ULL, 33844, 74460}, 13'000);
}

TEST(CheckpointBitIdentity, DoubleRoundTripIsStillExact) {
  // Two suspend/restore hops, at different pause points, through two
  // different archives: restore must be a fixed point, not "close enough".
  const auto w = workload({"gzip", "equake"});
  const auto mc = golden_machine(core::SchedulerKind::kTwoOpBlockOoo, 2);

  smt::Pipeline pipe(mc, w, /*seed=*/1);
  pipe.run(7'000);
  persist::Archive s1 = persist::Archive::saver();
  pipe.save_state(s1);

  smt::Pipeline hop1(mc, w, /*seed=*/1);
  persist::Archive l1 = persist::Archive::loader(s1.bytes());
  hop1.load_state(l1);
  l1.expect_end();
  hop1.run(19'000);
  persist::Archive s2 = persist::Archive::saver();
  hop1.save_state(s2);

  smt::Pipeline hop2(mc, w, /*seed=*/1);
  persist::Archive l2 = persist::Archive::loader(s2.bytes());
  hop2.load_state(l2);
  l2.expect_end();
  hop2.run(30'000);

  EXPECT_EQ(hop2.commit_digest(), 12392273267717430596ULL);
  EXPECT_EQ(hop2.cycles(), 37112u);
  EXPECT_EQ(hop2.total_committed(), 46411u);
}

TEST(CheckpointBitIdentity, IntervalEngineRoundTripsInsidePipelineState) {
  // With interval telemetry on, the engine's ring, phase tables and stream
  // cursor are pipeline state like any other: a mid-run round-trip must
  // reproduce the uninterrupted run's interval records exactly.
  const auto w = workload({"gzip", "equake"});
  auto mc = golden_machine(core::SchedulerKind::kTwoOpBlockOoo, 2);
  mc.interval_cycles = 1'000;

  smt::Pipeline straight(mc, w, /*seed=*/1);
  straight.run(30'000);
  ASSERT_FALSE(straight.interval_engine().records().empty());

  smt::Pipeline first(mc, w, /*seed=*/1);
  first.run(11'000);
  persist::Archive save = persist::Archive::saver();
  first.save_state(save);

  smt::Pipeline resumed(mc, w, /*seed=*/1);
  persist::Archive load = persist::Archive::loader(save.bytes());
  resumed.load_state(load);
  load.expect_end();
  EXPECT_EQ(resumed.interval_engine().captured_total(),
            first.interval_engine().captured_total());

  resumed.run(30'000);
  EXPECT_EQ(resumed.commit_digest(), straight.commit_digest());
  const auto& a = resumed.interval_engine().records();
  const auto& b = straight.interval_engine().records();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(obs::format_interval_record(a[i]),
              obs::format_interval_record(b[i]))
        << "interval " << i << " diverged after restore";
  }
  EXPECT_EQ(resumed.interval_engine().captured_total(),
            straight.interval_engine().captured_total());
  EXPECT_EQ(resumed.interval_engine().unique_phases(0),
            straight.interval_engine().unique_phases(0));
}

// ---- 2. the checkpoint file container --------------------------------------

TEST(CheckpointFile, RoundTripsMetaAndRejectsMismatchedFingerprint) {
  const auto w = workload({"gzip", "equake"});
  const auto mc = golden_machine(core::SchedulerKind::kTraditional, 2);
  smt::Pipeline pipe(mc, w, /*seed=*/1);
  pipe.run(2'000);

  const TempFile file("msim-test-ckpt");
  persist::save_checkpoint(file.path(), pipe,
                           {/*config_fingerprint=*/0x1234, persist::RunPhase::kMeasure});

  smt::Pipeline fresh(mc, w, /*seed=*/1);
  const persist::CheckpointMeta meta =
      persist::load_checkpoint(file.path(), fresh, 0x1234);
  EXPECT_EQ(meta.config_fingerprint, 0x1234u);
  EXPECT_EQ(meta.phase, persist::RunPhase::kMeasure);
  EXPECT_EQ(fresh.absolute_cycle(), pipe.absolute_cycle());
  EXPECT_EQ(fresh.commit_digest(), pipe.commit_digest());

  smt::Pipeline other(mc, w, /*seed=*/1);
  EXPECT_THROW((void)persist::load_checkpoint(file.path(), other, 0x9999),
               persist::PersistError);
}

TEST(CheckpointFile, RejectsTruncationAndGarbage) {
  const auto w = workload({"gzip", "equake"});
  const auto mc = golden_machine(core::SchedulerKind::kTraditional, 2);
  smt::Pipeline pipe(mc, w, /*seed=*/1);
  pipe.run(2'000);

  const TempFile file("msim-test-ckpt-corrupt");
  persist::save_checkpoint(file.path(), pipe, {0x1234, persist::RunPhase::kWarmup});

  // Chop the tail off: load must fail loudly, not "succeed" with state from
  // half a pipeline.
  const auto size = std::filesystem::file_size(file.path());
  std::filesystem::resize_file(file.path(), size / 2);
  smt::Pipeline victim(mc, w, /*seed=*/1);
  EXPECT_THROW((void)persist::load_checkpoint(file.path(), victim, 0x1234),
               persist::PersistError);

  // Not a checkpoint at all.
  {
    std::ofstream os(file.path(), std::ios::trunc | std::ios::binary);
    os << "definitely not a checkpoint";
  }
  EXPECT_THROW((void)persist::load_checkpoint(file.path(), victim, 0x1234),
               persist::PersistError);

  EXPECT_THROW((void)persist::load_checkpoint(temp_path("msim-test-missing"),
                                              victim, 0x1234),
               persist::PersistError);
}

// ---- 3. run_simulation: interrupt / resume ---------------------------------

sim::RunConfig small_run_config() {
  sim::RunConfig cfg;
  cfg.benchmarks = {"gzip", "equake"};
  cfg.kind = core::SchedulerKind::kTwoOpBlockOoo;
  cfg.iq_entries = 64;
  cfg.seed = 1;
  cfg.warmup = 5'000;
  cfg.horizon = 20'000;
  return cfg;
}

std::string run_json(const sim::RunConfig& cfg, const sim::RunResult& result) {
  std::ostringstream os;
  sim::write_run_json(os, cfg, result);
  return os.str();
}

TEST(RunSimulationResume, InterruptedChainMatchesStraightRunByteForByte) {
  const sim::RunConfig base = small_run_config();
  const sim::RunResult straight = sim::run_simulation(base);
  ASSERT_NE(straight.commit_digest, 0u);
  const std::string want = run_json(base, straight);

  const TempFile ckpt("msim-test-resume");

  // Leg 1: deterministic interrupt mid-warm-up.
  sim::RunConfig leg1 = base;
  leg1.checkpoint_path = ckpt.path();
  leg1.checkpoint_exit_cycles = 3'000;
  try {
    (void)sim::run_simulation(leg1);
    FAIL() << "expected persist::Interrupted";
  } catch (const persist::Interrupted& e) {
    EXPECT_EQ(e.exit_code(), 130);  // 128 + SIGINT
  }

  // Leg 2: resume, interrupt again mid-measurement.  The second leg both
  // restores and re-saves through the same file.
  sim::RunConfig leg2 = base;
  leg2.resume_path = ckpt.path();
  leg2.checkpoint_path = ckpt.path();
  leg2.checkpoint_exit_cycles = 11'000;
  EXPECT_THROW((void)sim::run_simulation(leg2), persist::Interrupted);

  // Leg 3: resume to completion.
  sim::RunConfig leg3 = base;
  leg3.resume_path = ckpt.path();
  const sim::RunResult resumed = sim::run_simulation(leg3);

  EXPECT_EQ(resumed.commit_digest, straight.commit_digest);
  EXPECT_EQ(resumed.cycles, straight.cycles);
  EXPECT_EQ(resumed.per_thread_committed, straight.per_thread_committed);
  EXPECT_EQ(run_json(base, resumed), want)
      << "resumed stats JSON differs from the uninterrupted run";
}

TEST(RunSimulationResume, PeriodicCheckpointsDoNotPerturbTheRun) {
  const sim::RunConfig base = small_run_config();
  const sim::RunResult straight = sim::run_simulation(base);

  const TempFile ckpt("msim-test-periodic");
  sim::RunConfig periodic = base;
  periodic.checkpoint_path = ckpt.path();
  periodic.checkpoint_every = 2'048;
  const sim::RunResult chunked = sim::run_simulation(periodic);

  // Chunked execution (the run is carved at every checkpoint boundary) must
  // still be the same simulation.
  EXPECT_EQ(chunked.commit_digest, straight.commit_digest);
  EXPECT_EQ(run_json(base, chunked), run_json(base, straight));

  // The file left behind is itself a valid resume point: resuming it runs
  // only the remaining span and still lands on the straight run's results.
  ASSERT_TRUE(std::filesystem::exists(ckpt.path()));
  sim::RunConfig tail = base;
  tail.resume_path = ckpt.path();
  const sim::RunResult resumed = sim::run_simulation(tail);
  EXPECT_EQ(resumed.commit_digest, straight.commit_digest);
  EXPECT_EQ(run_json(base, resumed), run_json(base, straight));
}

TEST(RunSimulationResume, VerifyHoldsAcrossTheResumeBoundary) {
  sim::RunConfig base = small_run_config();
  base.verify = true;  // cycle-level invariant checking in both legs
  base.warmup = 3'000;
  base.horizon = 9'000;
  const sim::RunResult straight = sim::run_simulation(base);

  const TempFile ckpt("msim-test-verify");
  sim::RunConfig leg1 = base;
  leg1.checkpoint_path = ckpt.path();
  leg1.checkpoint_exit_cycles = 4'000;
  EXPECT_THROW((void)sim::run_simulation(leg1), persist::Interrupted);

  sim::RunConfig leg2 = base;
  leg2.resume_path = ckpt.path();
  const sim::RunResult resumed = sim::run_simulation(leg2);
  EXPECT_EQ(resumed.commit_digest, straight.commit_digest);
  EXPECT_EQ(run_json(base, resumed), run_json(base, straight));
}

TEST(RunSimulationResume, MismatchedConfigIsRefused) {
  const sim::RunConfig base = small_run_config();
  const TempFile ckpt("msim-test-fpr");
  sim::RunConfig leg1 = base;
  leg1.checkpoint_path = ckpt.path();
  leg1.checkpoint_exit_cycles = 3'000;
  EXPECT_THROW((void)sim::run_simulation(leg1), persist::Interrupted);

  // Same workload, different seed: the fingerprint must catch it before the
  // pipeline touches a single byte of mismatched state.
  sim::RunConfig other = base;
  other.seed = 2;
  other.resume_path = ckpt.path();
  EXPECT_THROW((void)sim::run_simulation(other), persist::PersistError);

  // Different scheduler: also refused.
  sim::RunConfig sched = base;
  sched.kind = core::SchedulerKind::kTraditional;
  sched.resume_path = ckpt.path();
  EXPECT_THROW((void)sim::run_simulation(sched), persist::PersistError);
}

TEST(RunConfigValidate, CheckpointKnobsNeedAPath) {
  sim::RunConfig cfg = small_run_config();
  cfg.checkpoint_every = 1'000;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.checkpoint_every = 0;
  cfg.checkpoint_exit_cycles = 1'000;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.checkpoint_path = "somewhere.ckpt";
  cfg.checkpoint_every = 1'000;
  cfg.checkpoint_exit_cycles = 2'000;
  EXPECT_NO_THROW(cfg.validate());
}

// ---- 4. run_sweep: kill / resume via the cell journal ----------------------

sim::SweepRequest small_sweep_request() {
  sim::SweepRequest req;
  req.thread_count = 2;
  req.kinds = {core::SchedulerKind::kTraditional,
               core::SchedulerKind::kTwoOpBlockOoo};
  req.iq_sizes = {32, 48};
  req.base.warmup = 4'000;
  req.base.horizon = 10'000;
  req.base.seed = 1;
  req.base.hang_cycles = 3'000;
  return req;
}

std::string sweep_json(const std::vector<sim::SweepCell>& cells) {
  std::ostringstream os;
  sim::write_sweep_json(os, cells);
  return os.str();
}

TEST(SweepJournalResume, KilledSweepResumesByteIdenticallyAtAnyJobCount) {
  sim::SweepRequest req = small_sweep_request();

  // Poison one cell's RNG stream with a commit blockade so the grid dies at
  // a deterministic cell once crash isolation is off.  The injector stays
  // installed for every run below: the fault plan is part of the sweep's
  // fingerprint, and identical inputs are what make the JSONs comparable.
  const std::string victim(trace::mixes_for(2).front().name);
  robust::FaultPlan plan;
  plan.commit_block_from = 0;
  plan.target_stream = derive_stream_seed(req.base.seed, "mix:" + victim, 48);
  const robust::FaultInjector injector(plan);
  req.base.faults = &injector;

  // Reference: one uninterrupted crash-isolated sweep.
  std::string want;
  {
    sim::SweepRequest ref = req;
    sim::BaselineCache baselines(ref.base);
    want = sweep_json(run_sweep(ref, baselines));
  }

  const TempFile journal("msim-test-journal");

  // Kill: serial, isolation off, journaling on — the victim's hang-watchdog
  // abort terminates the sweep mid-grid with completed cells journaled.
  {
    sim::SweepRequest killed = req;
    killed.jobs = 1;
    killed.isolate_failures = false;
    killed.journal_path = journal.path();
    sim::BaselineCache baselines(killed.base);
    EXPECT_THROW((void)run_sweep(killed, baselines), robust::SimulationAborted);
  }

  // Resume serially: journaled cells replay, the rest (victim included,
  // now isolated) run fresh.
  std::size_t replayed = 0;
  {
    sim::SweepRequest resumed = req;
    resumed.jobs = 1;
    resumed.journal_path = journal.path();
    resumed.resume = true;
    resumed.progress = [&replayed](std::string_view msg) {
      if (msg.find("journal: replaying") != std::string_view::npos) ++replayed;
    };
    sim::BaselineCache baselines(resumed.base);
    EXPECT_EQ(sweep_json(run_sweep(resumed, baselines)), want);
  }
  EXPECT_GT(replayed, 0u) << "the killed sweep journaled nothing to replay";

  // Resume again at jobs=3: by now the journal holds every successful cell,
  // and replay order must not depend on the worker count.
  {
    sim::SweepRequest wide = req;
    wide.jobs = 3;
    wide.journal_path = journal.path();
    wide.resume = true;
    sim::BaselineCache baselines(wide.base);
    EXPECT_EQ(sweep_json(run_sweep(wide, baselines)), want);
  }

  // A journal is bound to its sweep: a request with a different seed must
  // be refused, not silently fed another configuration's cells.
  {
    sim::SweepRequest mismatched = req;
    mismatched.base.seed = 2;
    mismatched.journal_path = journal.path();
    mismatched.resume = true;
    sim::BaselineCache baselines(mismatched.base);
    EXPECT_THROW((void)run_sweep(mismatched, baselines), persist::PersistError);
  }
}

}  // namespace
}  // namespace msim
