#include "mem/hierarchy.hpp"

#include <gtest/gtest.h>

namespace msim::mem {
namespace {

TEST(Hierarchy, L1HitCostsNothingExtra) {
  MemoryHierarchy m;
  (void)m.access_data(0x1000, false, 0);          // cold miss, installs line
  const Cycle later = 1000;                       // well past the fill
  EXPECT_EQ(m.access_data(0x1000, false, later), 0u);
}

TEST(Hierarchy, ColdMissPaysL2PlusMemory) {
  MemoryHierarchy m;
  const std::uint32_t extra = m.access_data(0x5000, false, 0);
  // L2 hit time (10) + memory latency (150).
  EXPECT_EQ(extra, 160u);
}

TEST(Hierarchy, L1MissL2HitPaysL2Time) {
  MemoryHierarchy m;
  // Two addresses in the same 512-byte L2 line but different 256-byte L1
  // lines: the second access misses L1 but hits L2.
  (void)m.access_data(0x8000, false, 0);
  const std::uint32_t extra = m.access_data(0x8100, false, 1000);
  EXPECT_EQ(extra, 10u);
}

TEST(Hierarchy, InstructionPathMirrorsDataPath) {
  MemoryHierarchy m;
  EXPECT_EQ(m.access_inst(0x40'0000, 0), 160u);   // cold
  EXPECT_EQ(m.access_inst(0x40'0000, 1000), 0u);  // warm
  EXPECT_EQ(m.stats().l1i.accesses, 2u);
  EXPECT_EQ(m.stats().l1i.misses, 1u);
}

TEST(Hierarchy, SeparateL1sShareL2) {
  MemoryHierarchy m;
  (void)m.access_inst(0x9000, 0);
  // Data access to the same L2 line: L1D misses, L2 hits.
  EXPECT_EQ(m.access_data(0x9000, false, 1000), 10u);
}

TEST(Hierarchy, MemoryAccessesCounted) {
  MemoryHierarchy m;
  (void)m.access_data(0x1000, false, 0);
  (void)m.access_data(0x2000, false, 0);
  (void)m.access_data(0x1000, false, 1000);  // L1 hit, no memory access
  EXPECT_EQ(m.stats().memory_accesses, 2u);
}

TEST(Hierarchy, StoresInstallDirtyLines) {
  MemoryHierarchy m;
  (void)m.access_data(0x1000, true, 0);
  EXPECT_EQ(m.stats().l1d.misses, 1u);
  EXPECT_EQ(m.access_data(0x1000, true, 1000), 0u);  // write hit
}

TEST(Hierarchy, ResetStatsPreservesContents) {
  MemoryHierarchy m;
  (void)m.access_data(0x1000, false, 0);
  m.reset_stats();
  EXPECT_EQ(m.stats().l1d.accesses, 0u);
  EXPECT_EQ(m.stats().memory_accesses, 0u);
  // The line itself is still cached.
  EXPECT_EQ(m.access_data(0x1000, false, 1000), 0u);
}

TEST(Hierarchy, DefaultConfigMatchesPaperTable1) {
  const HierarchyConfig cfg;
  EXPECT_EQ(cfg.l1i.size_bytes, 64u * 1024);
  EXPECT_EQ(cfg.l1i.assoc, 2u);
  EXPECT_EQ(cfg.l1i.line_bytes, 128u);
  EXPECT_EQ(cfg.l1d.size_bytes, 32u * 1024);
  EXPECT_EQ(cfg.l1d.assoc, 4u);
  EXPECT_EQ(cfg.l1d.line_bytes, 256u);
  EXPECT_EQ(cfg.l2.size_bytes, 2u * 1024 * 1024);
  EXPECT_EQ(cfg.l2.assoc, 8u);
  EXPECT_EQ(cfg.l2.line_bytes, 512u);
  EXPECT_EQ(cfg.l2.hit_extra, 10u);
  EXPECT_EQ(cfg.memory_latency, 150u);
}

TEST(Hierarchy, CapacityEvictionFromL2) {
  // Touch more distinct lines than the L2 holds in one set's reach by
  // sweeping a region larger than the whole L2; early lines get evicted.
  MemoryHierarchy m;
  const std::uint64_t l2_bytes = m.config().l2.size_bytes;
  for (Addr a = 0; a < 2 * l2_bytes; a += m.config().l2.line_bytes) {
    (void)m.access_data(a, false, a);
  }
  const auto misses_before = m.stats().l1d.misses;
  // The very first line should long be gone from both levels: full charge.
  EXPECT_EQ(m.access_data(0, false, 100'000'000), 160u);
  EXPECT_GT(m.stats().l1d.misses, misses_before);
}

}  // namespace
}  // namespace msim::mem
