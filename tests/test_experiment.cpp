#include "sim/experiment.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace msim::sim {
namespace {

RunConfig tiny_base() {
  RunConfig cfg;
  cfg.warmup = 1000;
  cfg.horizon = 4000;
  return cfg;
}

TEST(BaselineCache, MemoizesRuns) {
  BaselineCache cache(tiny_base());
  const double a = cache.alone_ipc("gzip", 64);
  EXPECT_GT(a, 0.0);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_DOUBLE_EQ(cache.alone_ipc("gzip", 64), a);
  EXPECT_EQ(cache.entries(), 1u);
  (void)cache.alone_ipc("gzip", 32);  // different IQ size -> new entry
  EXPECT_EQ(cache.entries(), 2u);
}

TEST(RunMix, ComputesFairnessFromWeightedIpcs) {
  BaselineCache cache(tiny_base());
  const trace::WorkloadMix& mix = trace::mix_or_throw("2T-mix6");
  const MixResult r = run_mix(mix, core::SchedulerKind::kTraditional, 64,
                              tiny_base(), cache);
  EXPECT_EQ(r.mix_name, "2T-mix6");
  EXPECT_GT(r.throughput_ipc, 0.0);
  EXPECT_GT(r.fairness, 0.0);
  // Weighted IPCs are <= ~1 per thread, so the harmonic mean is bounded.
  EXPECT_LT(r.fairness, 1.5);
  ASSERT_EQ(r.raw.per_thread_ipc.size(), 2u);
}

TEST(RunSweep, ProducesOneCellPerKindAndSize) {
  SweepRequest req;
  req.thread_count = 2;
  req.kinds = {core::SchedulerKind::kTraditional, core::SchedulerKind::kTwoOpBlock};
  req.iq_sizes = {32, 64};
  req.base = tiny_base();
  BaselineCache cache(req.base);
  const auto cells = run_sweep(req, cache);
  ASSERT_EQ(cells.size(), 4u);
  for (const SweepCell& cell : cells) {
    EXPECT_EQ(cell.mixes.size(), 12u);
    EXPECT_GT(cell.hmean_ipc, 0.0);
    EXPECT_GT(cell.hmean_fairness, 0.0);
  }
}

TEST(RunSweep, TraditionalAnchorsSpeedupsAtOne) {
  SweepRequest req;
  req.thread_count = 2;
  req.kinds = {core::SchedulerKind::kTraditional};
  req.iq_sizes = {32};
  req.base = tiny_base();
  BaselineCache cache(req.base);
  const auto cells = run_sweep(req, cache);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_DOUBLE_EQ(cells[0].ipc_speedup_vs_trad, 1.0);
  EXPECT_DOUBLE_EQ(cells[0].fairness_gain_vs_trad, 1.0);
}

TEST(RunSweep, ImplicitTraditionalIsExcludedWhenNotRequested) {
  SweepRequest req;
  req.thread_count = 2;
  req.kinds = {core::SchedulerKind::kTwoOpBlock};
  req.iq_sizes = {32};
  req.base = tiny_base();
  BaselineCache cache(req.base);
  const auto cells = run_sweep(req, cache);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].kind, core::SchedulerKind::kTwoOpBlock);
  // The speedup is still computed against the (internally run) traditional.
  EXPECT_NE(cells[0].ipc_speedup_vs_trad, 1.0);
}

TEST(RunSweep, ProgressCallbackFires) {
  SweepRequest req;
  req.thread_count = 2;
  req.kinds = {core::SchedulerKind::kTraditional};
  req.iq_sizes = {32};
  req.base = tiny_base();
  unsigned calls = 0;
  req.progress = [&calls](std::string_view) { ++calls; };
  BaselineCache cache(req.base);
  (void)run_sweep(req, cache);
  EXPECT_EQ(calls, 12u);  // one per mix
}

TEST(CellFor, FindsAndThrows) {
  SweepCell cell;
  cell.kind = core::SchedulerKind::kTwoOpBlock;
  cell.iq_entries = 48;
  const std::vector<SweepCell> cells{cell};
  EXPECT_EQ(&cell_for(cells, core::SchedulerKind::kTwoOpBlock, 48), &cells[0]);
  EXPECT_THROW(cell_for(cells, core::SchedulerKind::kTraditional, 48),
               std::invalid_argument);
  EXPECT_THROW(cell_for(cells, core::SchedulerKind::kTwoOpBlock, 64),
               std::invalid_argument);
}


TEST(RunSweep, DeterministicAcrossInvocations) {
  SweepRequest req;
  req.thread_count = 2;
  req.kinds = {core::SchedulerKind::kTwoOpBlock};
  req.iq_sizes = {48};
  req.base = tiny_base();
  BaselineCache cache_a(req.base);
  BaselineCache cache_b(req.base);
  const auto a = run_sweep(req, cache_a);
  const auto b = run_sweep(req, cache_b);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_DOUBLE_EQ(a[0].hmean_ipc, b[0].hmean_ipc);
  EXPECT_DOUBLE_EQ(a[0].ipc_speedup_vs_trad, b[0].ipc_speedup_vs_trad);
}

TEST(RunMix, IlpClassesSeparateInSingleThreadIpc) {
  // The Section-2 classification must be visible in the substrate: a HIGH
  // benchmark runs much faster alone than a LOW one.  This needs a window
  // long enough to warm the caches (the tiny sweep horizons are not).
  RunConfig base = tiny_base();
  base.warmup = 15'000;
  base.horizon = 30'000;
  BaselineCache cache(base);
  const double low = cache.alone_ipc("equake", 64);
  const double high = cache.alone_ipc("eon", 64);
  EXPECT_GT(high, low * 2.0);
}

}  // namespace
}  // namespace msim::sim
