// Tests for the observability layer: the stat registry, the lifecycle
// tracer and its exporters, the self-profiling timers, and their
// integration with the full pipeline (machine-readable run reports,
// DAB-rescue reconstruction, warm-up reset coverage).
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.hpp"
#include "obs/registry.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "sim/report.hpp"
#include "sim/run.hpp"
#include "smt/pipeline.hpp"
#include "trace/profile.hpp"

namespace msim {
namespace {

using obs::InstLifecycle;
using obs::InstTracer;
using obs::MetricKind;
using obs::MetricSnapshot;
using obs::StatRegistry;
using obs::TraceEvent;
using obs::TraceStage;

// ---- StatRegistry ---------------------------------------------------------

TEST(StatRegistry, CounterGaugeRatioReadLazily) {
  StatRegistry reg;
  std::uint64_t hits = 0;
  std::uint64_t tries = 0;
  double level = 0.0;
  reg.counter("x.hits", [&] { return hits; });
  reg.gauge("x.level", [&] { return level; });
  reg.ratio("x.hit_rate", [&] { return hits; }, [&] { return tries; });
  EXPECT_EQ(reg.size(), 3u);

  // Ratio with zero opportunities reads as 0, not NaN.
  EXPECT_DOUBLE_EQ(reg.read("x.hit_rate").value, 0.0);

  hits = 3;
  tries = 4;
  level = 2.5;
  const MetricSnapshot rate = reg.read("x.hit_rate");
  EXPECT_EQ(rate.kind, MetricKind::kRatio);
  EXPECT_EQ(rate.events, 3u);
  EXPECT_EQ(rate.opportunities, 4u);
  EXPECT_DOUBLE_EQ(rate.value, 0.75);
  EXPECT_DOUBLE_EQ(reg.read("x.hits").value, 3.0);
  EXPECT_DOUBLE_EQ(reg.read("x.level").value, 2.5);
}

TEST(StatRegistry, SnapshotIsSortedByName) {
  StatRegistry reg;
  reg.counter("b", [] { return std::uint64_t{2}; });
  reg.counter("a.z", [] { return std::uint64_t{1}; });
  reg.counter("a.a", [] { return std::uint64_t{0}; });
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a.a");
  EXPECT_EQ(snap[1].name, "a.z");
  EXPECT_EQ(snap[2].name, "b");
}

TEST(StatRegistry, SampledGaugeResetsIndependently) {
  StatRegistry reg;
  std::uint64_t count = 7;
  reg.counter("events", [&] { return count; });
  StreamingStat& occ = reg.sampled("occ");
  occ.add(2.0);
  occ.add(4.0);

  MetricSnapshot s = reg.read("occ");
  EXPECT_EQ(s.kind, MetricKind::kSampled);
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.value, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);

  reg.reset_sampled();
  EXPECT_EQ(reg.read("occ").count, 0u);
  // Callback-backed metrics are untouched by reset_sampled().
  EXPECT_DOUBLE_EQ(reg.read("events").value, 7.0);
  // The returned reference stays valid across the reset.
  occ.add(9.0);
  EXPECT_EQ(reg.read("occ").count, 1u);
}

TEST(StatRegistry, HistogramSnapshotCarriesQuantiles) {
  StatRegistry reg;
  Histogram h(10, 1.0);
  for (int i = 0; i < 9; ++i) h.add(0.5);
  h.add(8.5);
  reg.histogram("lat", &h);
  const MetricSnapshot s = reg.read("lat");
  EXPECT_EQ(s.kind, MetricKind::kHistogram);
  EXPECT_EQ(s.count, 10u);
  EXPECT_DOUBLE_EQ(s.p50, 1.0);
  EXPECT_DOUBLE_EQ(s.p99, 9.0);
}

TEST(StatRegistry, UnknownNameThrows) {
  StatRegistry reg;
  EXPECT_THROW((void)reg.read("missing"), std::invalid_argument);
}

TEST(StatRegistry, MetricsJsonParsesBack) {
  StatRegistry reg;
  std::uint64_t n = 5;
  reg.counter("group.count", [&] { return n; });
  reg.ratio("group.rate", [&] { return n; }, [] { return std::uint64_t{10}; });
  const auto snap = reg.snapshot();
  std::ostringstream os;
  obs::write_metrics_json(os, snap);

  const JsonValue doc = JsonValue::parse(os.str());
  EXPECT_DOUBLE_EQ(doc.at("metric_count").as_number(), 2.0);
  const JsonValue& count = doc.at("metrics").at("group.count");
  EXPECT_EQ(count.at("kind").as_string(), "counter");
  EXPECT_DOUBLE_EQ(count.at("value").as_number(), 5.0);
  const JsonValue& rate = doc.at("metrics").at("group.rate");
  EXPECT_DOUBLE_EQ(rate.at("events").as_number(), 5.0);
  EXPECT_DOUBLE_EQ(rate.at("opportunities").as_number(), 10.0);
}

// ---- InstTracer -----------------------------------------------------------

TEST(InstTracer, DisabledRecordIsANoOp) {
  InstTracer tr;
  EXPECT_FALSE(tr.enabled());
  tr.record(1, 0, 0, TraceStage::kFetch);
  EXPECT_EQ(tr.size(), 0u);
  EXPECT_TRUE(tr.events().empty());
}

TEST(InstTracer, RingKeepsMostRecentAndCountsDrops) {
  InstTracer tr;
  tr.enable(4);
  ASSERT_TRUE(tr.enabled());
  for (std::uint64_t i = 0; i < 6; ++i) {
    tr.record(static_cast<Cycle>(i), 0, i, TraceStage::kFetch);
  }
  EXPECT_EQ(tr.size(), 4u);
  EXPECT_EQ(tr.dropped(), 2u);
  const auto evs = tr.events();
  ASSERT_EQ(evs.size(), 4u);
  // Oldest first; the two earliest events were overwritten.
  EXPECT_EQ(evs.front().seq, 2u);
  EXPECT_EQ(evs.back().seq, 5u);
}

// ---- lifecycle reconstruction --------------------------------------------

std::vector<TraceEvent> synthetic_trace() {
  // TraceEvent is {cycle, seq, tid, stage, flags}.
  return {
      {0, 0, 0, TraceStage::kFetch, 0},
      {1, 0, 0, TraceStage::kRename, 0},
      {2, 0, 0, TraceStage::kDispatch, obs::kTraceFlagOooBypass},
      {3, 0, 0, TraceStage::kIssue, 0},
      {5, 0, 0, TraceStage::kWriteback, 0},
      {6, 0, 0, TraceStage::kCommit, 0},
      {0, 1, 1, TraceStage::kFetch, 0},
      {1, 1, 1, TraceStage::kRename, 0},
      {2, 1, 1, TraceStage::kDabInsert, 0},
      {4, 1, 1, TraceStage::kIssue, obs::kTraceFlagFromDab},
      {6, 1, 1, TraceStage::kWriteback, 0},
      {7, 1, 1, TraceStage::kSquash, obs::kTraceFlagWrongPath},
  };
}

TEST(Lifecycles, FoldsStagesAndFlags) {
  const auto lcs = obs::reconstruct_lifecycles(synthetic_trace());
  ASSERT_EQ(lcs.size(), 2u);

  const InstLifecycle& a = lcs[0];
  EXPECT_EQ(a.tid, 0u);
  EXPECT_EQ(a.seq, 0u);
  EXPECT_TRUE(a.committed());
  EXPECT_TRUE(a.complete());
  EXPECT_TRUE(a.ooo_bypass);
  EXPECT_FALSE(a.dab_rescued);
  EXPECT_EQ(a.fetch, 0u);
  EXPECT_EQ(a.commit, 6u);

  const InstLifecycle& b = lcs[1];
  EXPECT_TRUE(b.dab_rescued);
  EXPECT_TRUE(b.squashed());
  EXPECT_FALSE(b.committed());
  EXPECT_TRUE(b.wrong_path);
  EXPECT_EQ(b.dispatch, 2u);  // the DAB insert counts as dispatch
  EXPECT_EQ(b.squash, 7u);
}

TEST(Lifecycles, RefetchAfterSquashOpensFreshRecord) {
  const std::vector<TraceEvent> evs{
      {0, 5, 0, TraceStage::kFetch, 0},
      {1, 5, 0, TraceStage::kRename, 0},
      {2, 5, 0, TraceStage::kSquash, 0},
      {10, 5, 0, TraceStage::kFetch, 0},  // watchdog / FLUSH replay
      {11, 5, 0, TraceStage::kRename, 0},
      {12, 5, 0, TraceStage::kDispatch, 0},
      {13, 5, 0, TraceStage::kIssue, 0},
      {14, 5, 0, TraceStage::kWriteback, 0},
      {15, 5, 0, TraceStage::kCommit, 0},
  };
  const auto lcs = obs::reconstruct_lifecycles(evs);
  ASSERT_EQ(lcs.size(), 2u);
  EXPECT_TRUE(lcs[0].squashed());
  EXPECT_FALSE(lcs[0].committed());
  EXPECT_TRUE(lcs[1].complete());
  EXPECT_EQ(lcs[1].fetch, 10u);
}

// ---- exporters ------------------------------------------------------------

TEST(Konata, EmitsHeaderStagesAndRetirements) {
  std::ostringstream os;
  obs::write_konata(os, synthetic_trace());
  const std::string out = os.str();
  EXPECT_EQ(out.rfind("Kanata\t0004\n", 0), 0u);
  EXPECT_NE(out.find("C=\t0\n"), std::string::npos);
  EXPECT_NE(out.find("I\t0\t0\t0\n"), std::string::npos);
  EXPECT_NE(out.find("S\t0\t0\tIs\n"), std::string::npos);
  EXPECT_NE(out.find("S\t1\t0\tDAB\n"), std::string::npos);
  EXPECT_NE(out.find("[DAB]"), std::string::npos);
  // One commit retirement (type 0) and one flush retirement (type 1).
  EXPECT_NE(out.find("R\t0\t1\t0\n"), std::string::npos);
  EXPECT_NE(out.find("R\t1\t2\t1\n"), std::string::npos);
}

TEST(Konata, EmptyTraceIsJustTheHeader) {
  std::ostringstream os;
  obs::write_konata(os, {});
  EXPECT_EQ(os.str(), "Kanata\t0004\n");
}

TEST(Gantt, RendersOneRowPerInstruction) {
  std::ostringstream os;
  obs::write_gantt(os, synthetic_trace());
  const std::string out = os.str();
  EXPECT_NE(out.find("2 instruction(s)"), std::string::npos);
  EXPECT_NE(out.find('F'), std::string::npos);
  EXPECT_NE(out.find('C'), std::string::npos);
  EXPECT_NE(out.find('B'), std::string::npos);  // DAB insert
  EXPECT_NE(out.find('x'), std::string::npos);  // squash
}

// ---- timers ---------------------------------------------------------------

TEST(Timers, ScopeTimerAccumulatesIntoStages) {
  obs::TimerRegistry timers;
  for (int i = 0; i < 3; ++i) {
    obs::ScopeTimer t(timers, "work");
  }
  ASSERT_EQ(timers.stages().size(), 1u);
  EXPECT_EQ(timers.stages()[0].calls, 3u);
  EXPECT_GE(timers.seconds("work"), 0.0);
  EXPECT_DOUBLE_EQ(timers.seconds("absent"), 0.0);
  timers.clear();
  EXPECT_TRUE(timers.stages().empty());
}

TEST(Timers, SimulatedKips) {
  EXPECT_DOUBLE_EQ(obs::simulated_kips(2'000'000, 2.0), 1000.0);
  EXPECT_DOUBLE_EQ(obs::simulated_kips(100, 0.0), 0.0);
}

// ---- pipeline integration -------------------------------------------------

sim::RunConfig dab_heavy_config() {
  // Empirically: 2OP_BLOCK_OOO with a 16-entry IQ on equake+art exercises
  // the deadlock-avoidance buffer (hundreds of DAB inserts per 20k-cycle
  // run), which the DAB-rescue reconstruction test depends on.
  sim::RunConfig cfg;
  cfg.benchmarks = {"equake", "art"};
  cfg.kind = core::SchedulerKind::kTwoOpBlockOoo;
  cfg.iq_entries = 16;
  cfg.warmup = 2'000;
  cfg.horizon = 15'000;
  return cfg;
}

TEST(RunReport, StatsJsonHasThirtyPlusMetricsAcrossGroups) {
  const sim::RunConfig cfg = dab_heavy_config();
  const sim::RunResult result = sim::run_simulation(cfg);
  std::ostringstream os;
  sim::write_run_json(os, cfg, result);

  const JsonValue doc = JsonValue::parse(os.str());
  const auto& metrics = doc.at("metrics").as_object();
  EXPECT_GE(metrics.size(), 30u);
  EXPECT_DOUBLE_EQ(doc.at("metric_count").as_number(),
                   static_cast<double>(metrics.size()));

  // The report spans every component group.
  for (const char* name :
       {"scheduler.dispatch.dispatched", "scheduler.iq.issued",
        "scheduler.dispatch.dab_inserts", "mem.l1d.miss_rate", "mem.l2.accesses",
        "bpred.mispredict_rate", "pipeline.cycles", "fu.load_store.issues",
        "thread.0.stall.ndi_blocked_cycles", "thread.1.stall.iq_full_cycles",
        "thread.0.lsq.loads_checked", "occupancy.iq", "occupancy.rob.1"}) {
    EXPECT_TRUE(metrics.contains(name)) << name;
  }

  // Registry values agree with the struct-level result.
  EXPECT_DOUBLE_EQ(metrics.at("pipeline.cycles").at("value").as_number(),
                   static_cast<double>(result.cycles));
  EXPECT_DOUBLE_EQ(
      metrics.at("scheduler.dispatch.dab_inserts").at("value").as_number(),
      static_cast<double>(result.dispatch.dab_inserts));

  // Config echo and per-thread summary round-trip too.
  EXPECT_EQ(doc.at("config").at("scheduler").as_string(), "2op_block_ooo");
  EXPECT_DOUBLE_EQ(doc.at("config").at("iq_entries").as_number(), 16.0);
  EXPECT_EQ(doc.at("per_thread_ipc").as_array().size(), 2u);
  EXPECT_EQ(doc.at("per_thread_committed").as_array().size(), 2u);

  // The per-cycle sampled occupancy gauge covered the measured window.
  EXPECT_DOUBLE_EQ(metrics.at("occupancy.iq").at("count").as_number(),
                   static_cast<double>(result.cycles));
}

TEST(RunReport, ReconstructsADabRescuedLifecycle) {
  sim::RunConfig cfg = dab_heavy_config();
  cfg.trace_capacity = std::size_t{1} << 21;
  const sim::RunResult result = sim::run_simulation(cfg);
  ASSERT_GT(result.dispatch.dab_inserts, 0u);
  ASSERT_FALSE(result.trace.empty());

  const auto lifecycles = obs::reconstruct_lifecycles(result.trace);
  const InstLifecycle* rescued = nullptr;
  for (const InstLifecycle& lc : lifecycles) {
    if (lc.dab_rescued && lc.complete()) {
      rescued = &lc;
      break;
    }
  }
  ASSERT_NE(rescued, nullptr)
      << "no DAB-rescued instruction completed within the trace window";
  // The full lifecycle is causally ordered: fetch -> rename -> DAB insert
  // (recorded as dispatch) -> issue from the DAB -> writeback -> commit.
  EXPECT_LE(rescued->fetch, rescued->rename);
  EXPECT_LE(rescued->rename, rescued->dispatch);
  EXPECT_LE(rescued->dispatch, rescued->issue);
  EXPECT_LT(rescued->issue, rescued->writeback);
  EXPECT_LE(rescued->writeback, rescued->commit);
  EXPECT_FALSE(rescued->squashed());
}

TEST(RunReport, SweepJsonParsesBack) {
  // A run report is exercised above; here exercise the sweep writer with a
  // hand-built cell so the test stays fast.
  std::vector<sim::SweepCell> cells;
  sim::SweepCell cell;
  cell.kind = core::SchedulerKind::kTwoOpBlock;
  cell.iq_entries = 32;
  cell.hmean_ipc = 1.5;
  cells.push_back(cell);
  std::ostringstream os;
  sim::write_sweep_json(os, cells);
  const JsonValue doc = JsonValue::parse(os.str());
  EXPECT_DOUBLE_EQ(doc.at("cell_count").as_number(), 1.0);
  const auto& c = doc.at("cells").as_array().at(0);
  EXPECT_EQ(c.at("scheduler").as_string(), "2op_block");
  EXPECT_DOUBLE_EQ(c.at("iq_entries").as_number(), 32.0);
  EXPECT_DOUBLE_EQ(c.at("hmean_ipc").as_number(), 1.5);
}

TEST(PipelineObservability, WarmupNeverLeaksIntoPostResetMetrics) {
  std::vector<trace::BenchmarkProfile> workload{trace::profile_or_throw("equake"),
                                                trace::profile_or_throw("art")};
  smt::MachineConfig mc;
  mc.thread_count = 2;
  mc.scheduler.kind = core::SchedulerKind::kTwoOpBlockOoo;
  mc.scheduler.iq_entries = 16;
  mc.interval_cycles = 500;  // interval telemetry is part of the contract
  smt::Pipeline pipe(mc, workload, 1);

  pipe.run(3'000);  // warm-up
  const obs::StatRegistry& reg = pipe.registry();
  ASSERT_GT(reg.read("pipeline.cycles").value, 0.0);
  ASSERT_GT(reg.read("occupancy.iq").count, 0u);
  ASSERT_FALSE(pipe.interval_engine().records().empty());
  const std::uint64_t streamed_before_reset =
      pipe.interval_engine().captured_total();
  ASSERT_GT(streamed_before_reset, 0u);

  pipe.reset_stats();

  // The interval ring and phase tables are statistics too: a post-warm-up
  // reset empties them (only the stream cursor, an I/O position, survives).
  EXPECT_TRUE(pipe.interval_engine().records().empty());
  EXPECT_EQ(pipe.interval_engine().captured(), 0u);
  EXPECT_EQ(pipe.interval_engine().unique_phases(0), 0u);
  EXPECT_EQ(pipe.interval_engine().phase_changes(1), 0u);
  EXPECT_EQ(pipe.interval_engine().captured_total(), streamed_before_reset);

  // Every counter-like metric in every group reads zero after the reset.
  for (const MetricSnapshot& m : reg.snapshot()) {
    if (m.kind == MetricKind::kCounter) {
      EXPECT_DOUBLE_EQ(m.value, 0.0) << m.name;
    } else if (m.kind == MetricKind::kRatio) {
      EXPECT_EQ(m.events, 0u) << m.name;
      EXPECT_EQ(m.opportunities, 0u) << m.name;
    } else if (m.kind == MetricKind::kSampled ||
               m.kind == MetricKind::kHistogram) {
      EXPECT_EQ(m.count, 0u) << m.name;
    }
  }

  // The measured window after the reset is self-consistent: the sampled
  // occupancy gauges saw exactly one sample per measured cycle.
  pipe.run(2'000);
  EXPECT_EQ(reg.read("occupancy.iq").count, pipe.cycles());
  EXPECT_EQ(reg.read("occupancy.rob.0").count, pipe.cycles());
  EXPECT_DOUBLE_EQ(reg.read("pipeline.cycles").value,
                   static_cast<double>(pipe.cycles()));
  EXPECT_GT(reg.read("pipeline.committed").value, 0.0);
}

}  // namespace
}  // namespace msim
