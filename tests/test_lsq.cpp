#include "smt/lsq.hpp"

#include <set>

#include <gtest/gtest.h>

namespace msim::smt {
namespace {

/// Readiness oracle backed by a set.
struct Ready {
  std::set<PhysReg> regs;
  bool operator()(PhysReg r) const { return regs.count(r) > 0; }
};

TEST(Lsq, LoadWithNoOlderStoresAccessesCache) {
  LoadStoreQueue lsq(8);
  lsq.allocate(0, /*is_store=*/false, 0x100, 1, kNoPhysReg);
  Ready ready;
  EXPECT_EQ(lsq.check_load(0, 0x100, ready), LoadVerdict::kAccess);
}

TEST(Lsq, ForwardsFromMatchingStoreWithReadyData) {
  LoadStoreQueue lsq(8);
  lsq.allocate(0, /*is_store=*/true, 0x100, 1, /*data_src=*/5);
  lsq.allocate(1, /*is_store=*/false, 0x100, 2, kNoPhysReg);
  Ready ready;
  ready.regs = {1, 5};
  EXPECT_EQ(lsq.check_load(1, 0x100, ready), LoadVerdict::kForward);
  EXPECT_EQ(lsq.stats().forwards, 1u);
}

TEST(Lsq, BlocksWhenMatchingStoreDataNotReady) {
  LoadStoreQueue lsq(8);
  lsq.allocate(0, /*is_store=*/true, 0x100, 1, /*data_src=*/5);
  lsq.allocate(1, /*is_store=*/false, 0x100, 2, kNoPhysReg);
  Ready ready;  // reg 5 not ready
  EXPECT_EQ(lsq.check_load(1, 0x100, ready), LoadVerdict::kBlocked);
  EXPECT_EQ(lsq.stats().blocked_checks, 1u);
}

TEST(Lsq, StoreWithImmediateDataForwards) {
  LoadStoreQueue lsq(8);
  lsq.allocate(0, /*is_store=*/true, 0x100, kNoPhysReg, kNoPhysReg);
  lsq.allocate(1, /*is_store=*/false, 0x100, kNoPhysReg, kNoPhysReg);
  Ready ready;
  EXPECT_EQ(lsq.check_load(1, 0x100, ready), LoadVerdict::kForward);
}

TEST(Lsq, YoungestMatchingStoreWins) {
  LoadStoreQueue lsq(8);
  lsq.allocate(0, /*is_store=*/true, 0x100, kNoPhysReg, /*data=*/5);  // ready? no
  lsq.allocate(1, /*is_store=*/true, 0x100, kNoPhysReg, /*data=*/6);  // ready
  lsq.allocate(2, /*is_store=*/false, 0x100, kNoPhysReg, kNoPhysReg);
  Ready ready;
  ready.regs = {6};
  // The younger store (seq 1) supplies the value; its data is ready.
  EXPECT_EQ(lsq.check_load(2, 0x100, ready), LoadVerdict::kForward);
}

TEST(Lsq, OracleIgnoresUnresolvedNonMatchingStores) {
  LoadStoreQueue lsq(8, /*oracle_disambiguation=*/true);
  lsq.allocate(0, /*is_store=*/true, 0x200, /*addr_src=*/9, /*data=*/5);
  lsq.allocate(1, /*is_store=*/false, 0x100, kNoPhysReg, kNoPhysReg);
  Ready ready;  // reg 9 (store address) NOT ready, but the address differs
  EXPECT_EQ(lsq.check_load(1, 0x100, ready), LoadVerdict::kAccess);
}

TEST(Lsq, ConservativeBlocksOnUnresolvedStoreAddress) {
  LoadStoreQueue lsq(8, /*oracle_disambiguation=*/false);
  lsq.allocate(0, /*is_store=*/true, 0x200, /*addr_src=*/9, /*data=*/5);
  lsq.allocate(1, /*is_store=*/false, 0x100, kNoPhysReg, kNoPhysReg);
  Ready ready;
  EXPECT_EQ(lsq.check_load(1, 0x100, ready), LoadVerdict::kBlocked);
  ready.regs = {9, 5};
  EXPECT_EQ(lsq.check_load(1, 0x100, ready), LoadVerdict::kAccess);
}

TEST(Lsq, YoungerStoresDoNotAffectTheLoad) {
  LoadStoreQueue lsq(8);
  lsq.allocate(0, /*is_store=*/false, 0x100, kNoPhysReg, kNoPhysReg);
  lsq.allocate(1, /*is_store=*/true, 0x100, kNoPhysReg, /*data=*/5);
  Ready ready;  // younger store's data not ready -- irrelevant
  EXPECT_EQ(lsq.check_load(0, 0x100, ready), LoadVerdict::kAccess);
}

TEST(Lsq, CapacityAndPopOrder) {
  LoadStoreQueue lsq(2);
  lsq.allocate(0, false, 0x0, kNoPhysReg, kNoPhysReg);
  lsq.allocate(1, true, 0x8, kNoPhysReg, kNoPhysReg);
  EXPECT_TRUE(lsq.full());
  lsq.pop(0);
  EXPECT_FALSE(lsq.full());
  lsq.pop(1);
  EXPECT_EQ(lsq.size(), 0u);
}

TEST(Lsq, OutOfOrderPopDies) {
  LoadStoreQueue lsq(4);
  lsq.allocate(0, false, 0x0, kNoPhysReg, kNoPhysReg);
  lsq.allocate(1, false, 0x8, kNoPhysReg, kNoPhysReg);
  EXPECT_DEATH(lsq.pop(1), "MSIM_CHECK");
}

TEST(Lsq, NonMonotonicAllocateDies) {
  LoadStoreQueue lsq(4);
  lsq.allocate(5, false, 0x0, kNoPhysReg, kNoPhysReg);
  EXPECT_DEATH(lsq.allocate(3, false, 0x8, kNoPhysReg, kNoPhysReg), "MSIM_CHECK");
}

TEST(Lsq, ClearResetsEntries) {
  LoadStoreQueue lsq(2);
  lsq.allocate(0, true, 0x0, kNoPhysReg, kNoPhysReg);
  lsq.clear();
  EXPECT_EQ(lsq.size(), 0u);
  // After a flush, replayed sequence numbers restart.
  lsq.allocate(0, false, 0x0, kNoPhysReg, kNoPhysReg);
  EXPECT_EQ(lsq.size(), 1u);
}


TEST(Lsq, SquashYoungerDropsTail) {
  LoadStoreQueue lsq(8);
  lsq.allocate(0, false, 0x0, kNoPhysReg, kNoPhysReg);
  lsq.allocate(3, true, 0x8, kNoPhysReg, kNoPhysReg);
  lsq.allocate(5, false, 0x10, kNoPhysReg, kNoPhysReg);
  lsq.squash_younger(3);
  EXPECT_EQ(lsq.size(), 2u);
  lsq.pop(0);
  lsq.pop(3);
  EXPECT_EQ(lsq.size(), 0u);
  // Replayed younger entries can be re-allocated.
  lsq.allocate(4, false, 0x18, kNoPhysReg, kNoPhysReg);
  EXPECT_EQ(lsq.size(), 1u);
}

TEST(Lsq, SquashAllWhenEverythingIsYounger) {
  LoadStoreQueue lsq(4);
  lsq.allocate(7, true, 0x0, kNoPhysReg, kNoPhysReg);
  lsq.squash_younger(3);
  EXPECT_EQ(lsq.size(), 0u);
}

}  // namespace
}  // namespace msim::smt
