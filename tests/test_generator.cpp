#include "trace/generator.hpp"

#include <array>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "trace/profile.hpp"

namespace msim::trace {
namespace {

std::vector<isa::DynInst> take(TraceGenerator& gen, std::size_t n) {
  std::vector<isa::DynInst> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(gen.next());
  return out;
}

TEST(Generator, DeterministicForSameSeed) {
  const BenchmarkProfile& p = profile_or_throw("gcc");
  TraceGenerator a(p, 99), b(p, 99);
  for (int i = 0; i < 5000; ++i) {
    const isa::DynInst ia = a.next();
    const isa::DynInst ib = b.next();
    ASSERT_EQ(ia.pc, ib.pc);
    ASSERT_EQ(ia.op, ib.op);
    ASSERT_EQ(ia.dest, ib.dest);
    ASSERT_EQ(ia.src[0], ib.src[0]);
    ASSERT_EQ(ia.src[1], ib.src[1]);
    ASSERT_EQ(ia.mem_addr, ib.mem_addr);
    ASSERT_EQ(ia.taken, ib.taken);
    ASSERT_EQ(ia.next_pc, ib.next_pc);
  }
}

TEST(Generator, SequenceNumbersAreConsecutive) {
  TraceGenerator gen(profile_or_throw("gzip"), 1);
  for (SeqNum i = 0; i < 2000; ++i) {
    EXPECT_EQ(gen.next().seq, i);
  }
  EXPECT_EQ(gen.generated(), 2000u);
}

TEST(Generator, ControlFlowIsConsistent) {
  TraceGenerator gen(profile_or_throw("crafty"), 5);
  isa::DynInst prev = gen.next();
  for (int i = 0; i < 20000; ++i) {
    const isa::DynInst cur = gen.next();
    // The stream must follow the previous instruction's declared successor.
    ASSERT_EQ(cur.pc, prev.next_pc);
    if (!prev.is_branch()) {
      ASSERT_EQ(prev.next_pc, prev.pc + 4);
    } else if (!prev.taken) {
      // Not-taken branches may fall through (or wrap at the last block).
      // Fall-through is by far the common case; just check the flag logic.
      SUCCEED();
    }
    prev = cur;
  }
}

TEST(Generator, TakenBranchesJumpNotTakenFallThrough) {
  TraceGenerator gen(profile_or_throw("bzip2"), 6);
  int taken_jumps = 0;
  for (int i = 0; i < 20000; ++i) {
    const isa::DynInst inst = gen.next();
    if (!inst.is_branch()) continue;
    if (inst.taken) {
      if (inst.next_pc != inst.pc + 4) ++taken_jumps;
    } else {
      // A not-taken branch always falls through, except at the very last
      // block where the walk wraps.
      EXPECT_TRUE(inst.next_pc == inst.pc + 4 || inst.next_pc < inst.pc);
    }
  }
  EXPECT_GT(taken_jumps, 100);
}

class GeneratorPerProfile : public ::testing::TestWithParam<BenchmarkProfile> {};

TEST_P(GeneratorPerProfile, OpMixTracksProfileWeights) {
  const BenchmarkProfile& p = GetParam();
  TraceGenerator gen(p, 17);
  std::array<std::uint64_t, isa::kOpClassCount> counts{};
  constexpr int kSamples = 60000;
  for (int i = 0; i < kSamples; ++i) {
    ++counts[static_cast<std::size_t>(gen.next().op)];
  }
  // Branch frequency is structural (geometric block lengths with a cap),
  // so check it loosely; the remaining classes are sampled directly from
  // the profile mix and must track it conditioned on "not a branch".
  double weight_sum = 0.0;
  for (double w : p.op_weights) weight_sum += w;
  const auto branch_idx = static_cast<std::size_t>(isa::OpClass::kBranch);
  const double branch_expected = p.op_weights[branch_idx] / weight_sum;
  const double branch_actual = static_cast<double>(counts[branch_idx]) / kSamples;
  EXPECT_NEAR(branch_actual, branch_expected, branch_expected * 0.45 + 0.01) << p.name;

  const double non_branch_weight = weight_sum - p.op_weights[branch_idx];
  const double non_branch_samples = kSamples - static_cast<double>(counts[branch_idx]);
  for (std::size_t c = 0; c < isa::kOpClassCount; ++c) {
    if (c == branch_idx) continue;
    const double expected = p.op_weights[c] / non_branch_weight;
    const double actual = static_cast<double>(counts[c]) / non_branch_samples;
    EXPECT_NEAR(actual, expected, expected * 0.1 + 0.005)
        << p.name << " op " << isa::op_class_name(static_cast<isa::OpClass>(c));
  }
}

TEST_P(GeneratorPerProfile, AddressesStayInDeclaredRegions) {
  const BenchmarkProfile& p = GetParam();
  const AddressSpace layout = AddressSpace::for_thread(2);
  TraceGenerator gen(p, 23, layout);
  for (int i = 0; i < 20000; ++i) {
    const isa::DynInst inst = gen.next();
    ASSERT_GE(inst.pc, layout.code_base) << p.name;
    ASSERT_LT(inst.pc, layout.code_base + p.code_footprint + 4096) << p.name;
    if (inst.is_mem()) {
      ASSERT_EQ(inst.mem_addr % 8, 0u) << p.name;
      ASSERT_GE(inst.mem_addr, layout.data_base) << p.name;
      ASSERT_LT(inst.mem_addr, layout.data_base + p.data_footprint) << p.name;
    }
  }
}

TEST_P(GeneratorPerProfile, RegisterClassesAreConsistent) {
  const BenchmarkProfile& p = GetParam();
  TraceGenerator gen(p, 29);
  for (int i = 0; i < 20000; ++i) {
    const isa::DynInst inst = gen.next();
    using isa::OpClass;
    switch (inst.op) {
      case OpClass::kIntAlu:
      case OpClass::kIntMult:
      case OpClass::kIntDiv:
        ASSERT_TRUE(inst.has_dest());
        ASSERT_FALSE(isa::is_fp_arch_reg(inst.dest)) << p.name;
        break;
      case OpClass::kFpAdd:
      case OpClass::kFpMult:
      case OpClass::kFpDiv:
      case OpClass::kFpSqrt:
        ASSERT_TRUE(inst.has_dest());
        ASSERT_TRUE(isa::is_fp_arch_reg(inst.dest)) << p.name;
        for (ArchReg s : inst.src) {
          if (s != kNoArchReg) {
            ASSERT_TRUE(isa::is_fp_arch_reg(s)) << p.name;
          }
        }
        break;
      case OpClass::kStore:
        ASSERT_FALSE(inst.has_dest()) << p.name;
        break;
      case OpClass::kBranch:
        ASSERT_FALSE(inst.has_dest()) << p.name;
        break;
      case OpClass::kLoad:
        ASSERT_TRUE(inst.has_dest()) << p.name;
        // Address base is an integer register (or far/ready).
        if (inst.src[0] != kNoArchReg) {
          ASSERT_FALSE(isa::is_fp_arch_reg(inst.src[0])) << p.name;
        }
        break;
    }
    // At most two sources, never more (the 2OP_BLOCK premise).
    ASSERT_LE(inst.source_count(), 2u) << p.name;
  }
}

TEST_P(GeneratorPerProfile, SourceRegistersReferenceLiveProducers) {
  // A near source must name a register written within the last kDestPool
  // producers of its class; we verify the weaker invariant that it is a
  // valid architectural register of the right class and never the reserved
  // register 0.
  const BenchmarkProfile& p = GetParam();
  TraceGenerator gen(p, 31);
  for (int i = 0; i < 10000; ++i) {
    const isa::DynInst inst = gen.next();
    for (ArchReg s : inst.src) {
      if (s == kNoArchReg) continue;
      ASSERT_LT(s, isa::kArchRegCount) << p.name;
      ASSERT_NE(s % isa::kIntArchRegs, 0u) << p.name;  // reg 0 reserved
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, GeneratorPerProfile,
    ::testing::ValuesIn(all_profiles().begin(), all_profiles().end()),
    [](const ::testing::TestParamInfo<BenchmarkProfile>& param_info) {
      return std::string(param_info.param.name);
    });

TEST(Generator, BranchOutcomesAreSkewedPredictable) {
  // With a high predictable fraction, per-static-branch outcomes should be
  // heavily skewed toward one direction on average.
  TraceGenerator gen(profile_or_throw("swim"), 37);
  std::map<Addr, std::pair<std::uint64_t, std::uint64_t>> per_branch;  // taken/total
  for (int i = 0; i < 100000; ++i) {
    const isa::DynInst inst = gen.next();
    if (!inst.is_branch()) continue;
    auto& [taken, total] = per_branch[inst.pc];
    taken += inst.taken ? 1 : 0;
    ++total;
  }
  std::uint64_t skewed = 0, measured = 0;
  for (const auto& [pc, counts] : per_branch) {
    const auto& [taken, total] = counts;
    if (total < 20) continue;
    ++measured;
    const double frac = static_cast<double>(taken) / static_cast<double>(total);
    if (frac > 0.75 || frac < 0.25) ++skewed;
  }
  ASSERT_GT(measured, 10u);
  EXPECT_GT(static_cast<double>(skewed) / static_cast<double>(measured), 0.7);
}

TEST(Generator, DistinctThreadsGetDistinctAddressSpaces) {
  const AddressSpace a = AddressSpace::for_thread(0);
  const AddressSpace b = AddressSpace::for_thread(1);
  EXPECT_NE(a.code_base, b.code_base);
  EXPECT_NE(a.data_base, b.data_base);
}

TEST(Generator, StaticCfgScalesWithCodeFootprint) {
  BenchmarkProfile small = profile_or_throw("swim");
  BenchmarkProfile large = small;
  large.code_footprint = small.code_footprint * 4;
  TraceGenerator gs(small, 1), gl(large, 1);
  EXPECT_GT(gl.static_block_count(), gs.static_block_count() * 3);
}


// ---- wrong-path synthesis ------------------------------------------------------

TEST(WrongPath, SynthesisDoesNotDisturbTheArchitecturalWalk) {
  const BenchmarkProfile& p = profile_or_throw("gcc");
  TraceGenerator a(p, 77), b(p, 77);
  Rng wp_rng(123);
  for (int i = 0; i < 2000; ++i) {
    const isa::DynInst ia = a.next();
    if (i % 7 == 0) {
      (void)a.synthesize_wrong_path(ia.pc + 64, wp_rng);
    }
    const isa::DynInst ib = b.next();
    ASSERT_EQ(ia.pc, ib.pc);
    ASSERT_EQ(ia.src[0], ib.src[0]);
    ASSERT_EQ(ia.mem_addr, ib.mem_addr);
  }
}

TEST(WrongPath, SynthesizedInstructionsAreWellFormed) {
  const BenchmarkProfile& p = profile_or_throw("equake");
  const AddressSpace layout = AddressSpace::for_thread(1);
  TraceGenerator gen(p, 78, layout);
  Rng wp_rng(9);
  Addr pc = layout.code_base;
  for (int i = 0; i < 5000; ++i) {
    const isa::DynInst wi = gen.synthesize_wrong_path(pc, wp_rng);
    ASSERT_GE(wi.pc, layout.code_base);
    ASSERT_LE(wi.source_count(), 2u);
    if (wi.is_mem()) {
      ASSERT_GE(wi.mem_addr, layout.data_base);
      ASSERT_EQ(wi.mem_addr % 8, 0u);
    }
    pc = wi.is_branch() ? layout.code_base + (wp_rng.next_below(p.code_footprint) & ~Addr{3})
                        : wi.next_pc;
  }
}

TEST(WrongPath, BranchSlotsMatchTheRealStream) {
  // Every branch emitted by the real walk must sit on a branch slot, and
  // its synthesized twin at the same pc must also be a branch.
  const BenchmarkProfile& p = profile_or_throw("bzip2");
  TraceGenerator gen(p, 79);
  TraceGenerator probe(p, 79);
  Rng wp_rng(1);
  for (int i = 0; i < 5000; ++i) {
    const isa::DynInst inst = gen.next();
    EXPECT_EQ(probe.is_branch_slot(inst.pc), inst.is_branch()) << i;
    const isa::DynInst twin = probe.synthesize_wrong_path(inst.pc, wp_rng);
    EXPECT_EQ(twin.is_branch(), inst.is_branch()) << i;
    if (!inst.is_branch()) {
      EXPECT_EQ(probe.fallthrough_of(inst.pc), inst.pc + 4);
    }
  }
}

TEST(WrongPath, OutOfRangePcIsFolded) {
  const BenchmarkProfile& p = profile_or_throw("swim");
  TraceGenerator gen(p, 80);
  Rng wp_rng(2);
  const isa::DynInst wi = gen.synthesize_wrong_path(0xdead'beef'0000'0000, wp_rng);
  EXPECT_GE(wi.pc, AddressSpace{}.code_base);
}

}  // namespace
}  // namespace msim::trace
