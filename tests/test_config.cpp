#include "common/config.hpp"

#include <array>
#include <stdexcept>

#include <gtest/gtest.h>

namespace msim {
namespace {

KvConfig parse(std::initializer_list<std::string> words) {
  std::vector<std::string> v(words);
  return KvConfig::parse_strings(v);
}

TEST(KvConfig, ParsesKeyValuePairs) {
  const KvConfig c = parse({"iq=64", "name=foo"});
  EXPECT_TRUE(c.has("iq"));
  EXPECT_TRUE(c.has("name"));
  EXPECT_FALSE(c.has("missing"));
  EXPECT_EQ(c.get_string("name", ""), "foo");
}

TEST(KvConfig, RejectsBareWords) {
  EXPECT_THROW(parse({"novalue"}), std::invalid_argument);
  EXPECT_THROW(parse({"=value"}), std::invalid_argument);
}

TEST(KvConfig, TypedGettersWithFallbacks) {
  const KvConfig c = parse({"i=-5", "u=7", "d=2.5", "b=true"});
  EXPECT_EQ(c.get_int("i", 0), -5);
  EXPECT_EQ(c.get_uint("u", 0), 7u);
  EXPECT_DOUBLE_EQ(c.get_double("d", 0.0), 2.5);
  EXPECT_TRUE(c.get_bool("b", false));
  EXPECT_EQ(c.get_int("absent", 42), 42);
  EXPECT_EQ(c.get_uint("absent", 43), 43u);
  EXPECT_DOUBLE_EQ(c.get_double("absent", 4.5), 4.5);
  EXPECT_FALSE(c.get_bool("absent", false));
}

TEST(KvConfig, BooleanSpellings) {
  const KvConfig c = parse({"a=1", "b=yes", "c=on", "d=0", "e=no", "f=off"});
  EXPECT_TRUE(c.get_bool("a", false));
  EXPECT_TRUE(c.get_bool("b", false));
  EXPECT_TRUE(c.get_bool("c", false));
  EXPECT_FALSE(c.get_bool("d", true));
  EXPECT_FALSE(c.get_bool("e", true));
  EXPECT_FALSE(c.get_bool("f", true));
}

TEST(KvConfig, MalformedNumbersThrow) {
  const KvConfig c = parse({"x=12abc", "b=maybe"});
  EXPECT_THROW((void)c.get_int("x", 0), std::invalid_argument);
  EXPECT_THROW((void)c.get_bool("b", false), std::invalid_argument);
}

TEST(KvConfig, UintListParsing) {
  const KvConfig c = parse({"sizes=32,48,64"});
  const auto sizes = c.get_uint_list("sizes", {});
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 32u);
  EXPECT_EQ(sizes[1], 48u);
  EXPECT_EQ(sizes[2], 64u);
  const auto fallback = c.get_uint_list("absent", {1, 2});
  ASSERT_EQ(fallback.size(), 2u);
}

TEST(KvConfig, UintListRejectsEmptyElements) {
  const KvConfig c = parse({"sizes=32,,64"});
  EXPECT_THROW((void)c.get_uint_list("sizes", {}), std::invalid_argument);
}

TEST(KvConfig, LastDuplicateWins) {
  const KvConfig c = parse({"k=1", "k=2"});
  EXPECT_EQ(c.get_int("k", 0), 2);
}

TEST(KvConfig, UnknownKeysDetection) {
  const KvConfig c = parse({"iq=64", "typo=1"});
  const std::array<std::string_view, 2> known{"iq", "horizon"};
  const auto unknown = c.unknown_keys({known.data(), known.size()});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(KvConfig, ParseFromArgv) {
  const char* argv[] = {"a=1", "b=two"};
  const KvConfig c = KvConfig::parse({argv, 2});
  EXPECT_EQ(c.get_int("a", 0), 1);
  EXPECT_EQ(c.get_string("b", ""), "two");
}

}  // namespace
}  // namespace msim
