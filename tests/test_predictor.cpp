#include "bpred/predictor.hpp"

#include <gtest/gtest.h>

namespace msim::bpred {
namespace {

TEST(Predictor, NotTakenBranchNeedsNoBtb) {
  BranchPredictor bp({}, 1);
  // Counters initialize weakly-taken, so a not-taken branch is initially a
  // wrong-path event; after training it becomes correct without any BTB entry.
  for (int i = 0; i < 4; ++i) {
    (void)bp.predict_and_train(0, 0x4000, false, 0);
  }
  EXPECT_TRUE(bp.predict_and_train(0, 0x4000, false, 0));
}

TEST(Predictor, TakenBranchNeedsCorrectBtbTarget) {
  BranchPredictor bp({}, 1);
  // First encounter: direction predicts taken (weak init) but the BTB has
  // no target, so the path is wrong.
  EXPECT_FALSE(bp.predict_and_train(0, 0x4000, true, 0x8000));
  // Second encounter: direction right AND the BTB now has the target.
  EXPECT_TRUE(bp.predict_and_train(0, 0x4000, true, 0x8000));
}

TEST(Predictor, ChangedTargetIsAMiss) {
  BranchPredictor bp({}, 1);
  (void)bp.predict_and_train(0, 0x4000, true, 0x8000);
  // Same branch, different actual target (e.g. indirect jump).
  EXPECT_FALSE(bp.predict_and_train(0, 0x4000, true, 0x9000));
  EXPECT_TRUE(bp.predict_and_train(0, 0x4000, true, 0x9000));
}

TEST(Predictor, PerThreadStats) {
  BranchPredictor bp({}, 2);
  (void)bp.predict_and_train(0, 0x4000, true, 0x8000);   // miss (BTB cold)
  (void)bp.predict_and_train(1, 0x4000, true, 0x8000);   // miss (own gshare+BTB tag)
  (void)bp.predict_and_train(0, 0x4000, true, 0x8000);   // hit
  EXPECT_EQ(bp.stats(0).branches, 2u);
  EXPECT_EQ(bp.stats(0).mispredicts, 1u);
  EXPECT_EQ(bp.stats(1).branches, 1u);
  const PredictorStats total = bp.total_stats();
  EXPECT_EQ(total.branches, 3u);
  EXPECT_EQ(total.mispredicts, 2u);
}

TEST(Predictor, ThreadsHaveIndependentDirectionState) {
  BranchPredictor bp({}, 2);
  // Train thread 0 strongly not-taken on this pc.
  for (int i = 0; i < 8; ++i) (void)bp.predict_and_train(0, 0x100, false, 0);
  // Thread 1's gshare is untouched: still predicts taken (weak init), so a
  // not-taken branch from thread 1 is a mispredict.
  const auto before = bp.stats(1).mispredicts;
  (void)bp.predict_and_train(1, 0x100, false, 0);
  EXPECT_EQ(bp.stats(1).mispredicts, before + 1);
}

TEST(Predictor, ResetStatsKeepsTraining) {
  BranchPredictor bp({}, 1);
  (void)bp.predict_and_train(0, 0x4000, true, 0x8000);
  bp.reset_stats();
  EXPECT_EQ(bp.total_stats().branches, 0u);
  // Training survived: the next encounter is a correct path.
  EXPECT_TRUE(bp.predict_and_train(0, 0x4000, true, 0x8000));
}

TEST(Predictor, MispredictRateOnRandomStreamIsHigh) {
  BranchPredictor bp({}, 1);
  std::uint64_t state = 12345;
  for (int i = 0; i < 5000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const bool taken = (state >> 62) & 1;
    (void)bp.predict_and_train(0, 0x4000 + static_cast<Addr>((i % 16) * 4), taken,
                               0x8000);
  }
  EXPECT_GT(bp.total_stats().mispredict_rate(), 0.3);
}


TEST(Predictor, FullOutcomeReportsPredictedTarget) {
  BranchPredictor bp({}, 1);
  bool correct = false;
  auto pred = bp.predict_and_train_full(0, 0x4000, true, 0x8000, &correct);
  EXPECT_FALSE(correct);          // BTB cold
  EXPECT_TRUE(pred.taken);        // counters initialize weakly taken
  EXPECT_FALSE(pred.have_target);
  pred = bp.predict_and_train_full(0, 0x4000, true, 0x8000, &correct);
  EXPECT_TRUE(correct);
  EXPECT_TRUE(pred.have_target);
  EXPECT_EQ(pred.target, 0x8000u);
}

TEST(Predictor, PredictOnlyDoesNotTrainOrCount) {
  BranchPredictor bp({}, 1);
  (void)bp.predict_and_train(0, 0x4000, true, 0x8000);
  const auto before = bp.total_stats().branches;
  const auto pred = bp.predict_only(0, 0x4000);
  EXPECT_TRUE(pred.taken);
  EXPECT_TRUE(pred.have_target);
  EXPECT_EQ(pred.target, 0x8000u);
  EXPECT_EQ(bp.total_stats().branches, before);
}

}  // namespace
}  // namespace msim::bpred
