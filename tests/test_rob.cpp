#include "smt/rob.hpp"

#include <vector>

#include <gtest/gtest.h>

namespace msim::smt {
namespace {

TEST(Rob, AllocateAndCommitInOrder) {
  ReorderBuffer rob(4);
  EXPECT_TRUE(rob.empty());
  rob.allocate(0);
  rob.allocate(1);
  EXPECT_EQ(rob.size(), 2u);
  EXPECT_EQ(rob.head_seq(), 0u);
  rob.pop_head();
  EXPECT_EQ(rob.head_seq(), 1u);
  rob.pop_head();
  EXPECT_TRUE(rob.empty());
}

TEST(Rob, ContainsTracksWindow) {
  ReorderBuffer rob(4);
  rob.allocate(0);
  rob.allocate(1);
  EXPECT_TRUE(rob.contains(0));
  EXPECT_TRUE(rob.contains(1));
  EXPECT_FALSE(rob.contains(2));
  rob.pop_head();
  EXPECT_FALSE(rob.contains(0));
}

TEST(Rob, EntriesPersistUntilCommit) {
  ReorderBuffer rob(4);
  RobEntry& e = rob.allocate(0);
  e.issued = true;
  e.complete_at = 42;
  rob.allocate(1);
  EXPECT_TRUE(rob.entry(0).issued);
  EXPECT_EQ(rob.entry(0).complete_at, 42u);
  EXPECT_FALSE(rob.entry(1).issued);
}

TEST(Rob, AllocateResetsSlotState) {
  ReorderBuffer rob(2);
  rob.allocate(0).issued = true;
  rob.pop_head();
  // Seq 2 reuses slot 0; it must come back clean.
  rob.allocate(1);
  RobEntry& e = rob.allocate(2);
  EXPECT_FALSE(e.issued);
  EXPECT_EQ(e.complete_at, kCycleNever);
}

TEST(Rob, WrapsAroundRing) {
  ReorderBuffer rob(3);
  for (SeqNum s = 0; s < 100; ++s) {
    rob.allocate(s);
    EXPECT_EQ(rob.head_seq(), s);
    rob.pop_head();
  }
  EXPECT_TRUE(rob.empty());
}

TEST(Rob, FullAtCapacity) {
  ReorderBuffer rob(3);
  for (SeqNum s = 0; s < 3; ++s) rob.allocate(s);
  EXPECT_TRUE(rob.full());
  rob.pop_head();
  EXPECT_FALSE(rob.full());
  rob.allocate(3);
  EXPECT_TRUE(rob.full());
}

TEST(Rob, ForEachVisitsOldestFirst) {
  ReorderBuffer rob(4);
  for (SeqNum s = 0; s < 4; ++s) rob.allocate(s).inst.seq = s;
  rob.pop_head();
  rob.allocate(4).inst.seq = 4;  // wraps into slot 0
  std::vector<SeqNum> order;
  rob.for_each([&](const RobEntry& e) { order.push_back(e.inst.seq); });
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), 1u);
  EXPECT_EQ(order.back(), 4u);
}

TEST(Rob, DoneRequiresIssueAndCompletion) {
  RobEntry e;
  EXPECT_FALSE(e.done(100));
  e.issued = true;
  e.complete_at = 50;
  EXPECT_FALSE(e.done(49));
  EXPECT_TRUE(e.done(50));
  EXPECT_TRUE(e.done(51));
}

TEST(Rob, NonConsecutiveAllocationDies) {
  ReorderBuffer rob(4);
  rob.allocate(0);
  EXPECT_DEATH(rob.allocate(2), "MSIM_CHECK");
}

TEST(Rob, ClearEmptiesWindow) {
  ReorderBuffer rob(4);
  rob.allocate(0);
  rob.allocate(1);
  rob.clear();
  EXPECT_TRUE(rob.empty());
  // After a clear (flush) allocation restarts from any sequence number.
  rob.allocate(0);
  EXPECT_EQ(rob.head_seq(), 0u);
}


TEST(Rob, TruncateToDropsTheSuffix) {
  ReorderBuffer rob(8);
  for (SeqNum s = 0; s < 6; ++s) rob.allocate(s);
  rob.truncate_to(2);
  EXPECT_EQ(rob.size(), 3u);
  EXPECT_TRUE(rob.contains(2));
  EXPECT_FALSE(rob.contains(3));
  // Allocation resumes right after the kept suffix.
  rob.allocate(3);
  EXPECT_TRUE(rob.contains(3));
}

TEST(Rob, TruncateToHeadKeepsOne) {
  ReorderBuffer rob(4);
  rob.allocate(0);
  rob.allocate(1);
  rob.truncate_to(0);
  EXPECT_EQ(rob.size(), 1u);
  EXPECT_EQ(rob.head_seq(), 0u);
}

TEST(Rob, TruncateToOutsideWindowDies) {
  ReorderBuffer rob(4);
  rob.allocate(0);
  EXPECT_DEATH(rob.truncate_to(5), "MSIM_CHECK");
}

}  // namespace
}  // namespace msim::smt
