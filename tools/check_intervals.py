#!/usr/bin/env python3
"""Validate an interval-telemetry JSONL stream (schema msim.intervals.v1).

Usage:
    check_intervals.py INTERVALS.jsonl [--threads N] [--interval N]
                       [--min-records N]

The file is produced by `msim_cli --interval-json PATH` (see
docs/OBSERVABILITY.md).  Line 1 is a header object; every following line
is one interval record.  The check fails (exit 1) on:

  * missing/any other schema, or header/record field mismatches
  * non-monotone interval windows (`start` before the previous `end`), or
    an index that is neither previous+1 nor a reset back to 0 (a stats
    reset -- e.g. the end of warmup -- legitimately rebases the stream:
    the index restarts and the first rebased window may be short)
  * a `region` key (mode=sampled streams tag every record with the
    detailed region that produced it) that is negative, non-integer, or
    decreasing across records
  * per-record invariants: window no wider than interval_cycles and ending
    on an interval boundary, thread count matching the header, negative
    rates, IPC inconsistent with committed / window width, phase
    fingerprints not 0x-prefixed 16-hex-digit strings, `changed` true on
    a record whose fingerprint equals the previous record's for that
    thread

CI runs this against a short 4-thread run to keep the stream format and
its invariants pinned.
"""

import argparse
import json
import re
import sys

SCHEMA = "msim.intervals.v1"
FP_RE = re.compile(r"^0x[0-9a-f]{16}$")

RECORD_KEYS = {
    "i", "start", "end", "committed", "fetched", "dispatched", "issued",
    "ipc", "iq_occ", "dab_occ", "l1d_mpki", "l2_mpki", "mispredict_rate",
    "threads",
}
THREAD_KEYS = {
    "committed", "fetched", "ipc", "fetch_rate", "ndi_blocked", "iq_full",
    "rob_full", "lsq_full", "fetch_starved", "rob_occ", "lsq_occ", "loads",
    "fp", "phase", "changed",
}


def fail(lineno, msg):
    sys.exit(f"error: line {lineno}: {msg}")


def check_thread(lineno, t, idx):
    missing = THREAD_KEYS - t.keys()
    extra = t.keys() - THREAD_KEYS
    if missing or extra:
        fail(lineno, f"thread {idx}: missing keys {sorted(missing)}, "
             f"unexpected keys {sorted(extra)}")
    for k in ("ipc", "fetch_rate", "rob_occ", "lsq_occ"):
        if t[k] < 0:
            fail(lineno, f"thread {idx}: negative {k}: {t[k]}")
    if not FP_RE.match(t["fp"]):
        fail(lineno, f"thread {idx}: malformed fingerprint {t['fp']!r}")
    if not 0 <= t["phase"] <= 255:
        fail(lineno, f"thread {idx}: phase id {t['phase']} out of range")


def main():
    ap = argparse.ArgumentParser(
        description="validate msim.intervals.v1 JSONL")
    ap.add_argument("path")
    ap.add_argument("--threads", type=int, default=0,
                    help="require exactly N threads (0 = header's value)")
    ap.add_argument("--interval", type=int, default=0,
                    help="require this interval_cycles (0 = header's value)")
    ap.add_argument("--min-records", type=int, default=1,
                    help="require at least N interval records")
    args = ap.parse_args()

    with open(args.path, "r", encoding="utf-8") as f:
        lines = f.read().splitlines()
    if not lines:
        sys.exit(f"error: {args.path}: empty file")

    header = json.loads(lines[0])
    if header.get("schema") != SCHEMA:
        fail(1, f"expected schema {SCHEMA}, got {header.get('schema')!r}")
    interval = args.interval or header.get("interval_cycles", 0)
    if interval <= 0:
        fail(1, f"bad interval_cycles {header.get('interval_cycles')!r}")
    if header.get("interval_cycles") != interval:
        fail(1, f"header interval_cycles {header.get('interval_cycles')} "
             f"!= required {interval}")
    threads = args.threads or header.get("threads", 0)
    if threads <= 0:
        fail(1, f"bad thread count {header.get('threads')!r}")
    if header.get("threads") != threads:
        fail(1, f"header threads {header.get('threads')} != required {threads}")

    prev = None
    records = 0
    prev_fp = {}
    prev_region = None
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            r = json.loads(line)
        except json.JSONDecodeError as e:
            fail(lineno, f"not valid JSON: {e}")
        missing = RECORD_KEYS - r.keys()
        # mode=sampled streams tag each record with its detailed region.
        extra = r.keys() - RECORD_KEYS - {"region"}
        if missing or extra:
            fail(lineno, f"missing keys {sorted(missing)}, "
                 f"unexpected keys {sorted(extra)}")
        region = r.get("region")
        if region is not None:
            if not isinstance(region, int) or region < 0:
                fail(lineno, f"bad region id {region!r}")
            if prev_region is not None and region < prev_region:
                fail(lineno, f"region {region} after region {prev_region} "
                     f"(records must be in region order)")
            if region != prev_region:
                # Each detailed region is an independent replay: its index,
                # window and fingerprint chains restart.
                prev = None
                prev_fp = {}
            prev_region = region
        width = r["end"] - r["start"]
        if not 0 < width <= interval:
            fail(lineno, f"window [{r['start']},{r['end']}) is wider than "
                 f"{interval} cycles (or empty)")
        if r["end"] % interval != 0:
            fail(lineno, f"end {r['end']} is not an interval boundary")
        if width != interval and not (prev is None or r["i"] == 0):
            fail(lineno, f"short window [{r['start']},{r['end']}) without a "
                 f"stats reset (index did not restart)")
        if prev is not None:
            if r["i"] != prev["i"] + 1 and r["i"] != 0:
                fail(lineno, f"index {r['i']} is neither {prev['i'] + 1} nor "
                     f"a reset to 0")
            if r["start"] < prev["end"]:
                fail(lineno, f"window start {r['start']} overlaps previous "
                     f"end {prev['end']}")
        if len(r["threads"]) != threads:
            fail(lineno, f"{len(r['threads'])} thread entries, "
                 f"expected {threads}")
        total_committed = 0
        for idx, t in enumerate(r["threads"]):
            check_thread(lineno, t, idx)
            total_committed += t["committed"]
            # A stats reset between records legitimately rebases the
            # fingerprint chain, so only flag a *false positive* change.
            if t["changed"] and prev_fp.get(idx) == t["fp"]:
                fail(lineno, f"thread {idx}: changed=true but fingerprint "
                     f"{t['fp']} equals the previous record's")
            prev_fp[idx] = t["fp"]
        if total_committed != r["committed"]:
            fail(lineno, f"per-thread committed sums to {total_committed}, "
                 f"record says {r['committed']}")
        if abs(r["ipc"] - r["committed"] / width) > 1e-9:
            fail(lineno, f"ipc {r['ipc']} != committed/width "
                 f"{r['committed'] / width}")
        prev = r
        records += 1

    if records < args.min_records:
        sys.exit(f"error: {args.path}: only {records} record(s), "
                 f"need at least {args.min_records}")
    print(f"OK: {args.path}: {records} record(s), {threads} thread(s), "
          f"interval {interval} cycles")
    return 0


if __name__ == "__main__":
    sys.exit(main())
