#!/usr/bin/env python3
"""Gate a sampled-simulation report against an exact run of the same config.

Usage:
    check_sampled.py SAMPLED.json EXACT.json [--ipc-tolerance 0.03]
                     [--mpki-tolerance 0.05]

SAMPLED.json uses the msim.sampled.v1 schema written by
`msim_cli mode=sampled --sampled-json PATH`; EXACT.json is the
--stats-json report of the same configuration run in exact mode.  The
check fails (exit 1) when:

  * either report is structurally invalid (wrong schema, missing keys,
    non-finite estimates, region bookkeeping that does not add up), or
  * the sampled IPC estimate deviates from the exact throughput IPC by
    more than --ipc-tolerance (default 3%), or
  * a sampled L1D/L2 MPKI estimate deviates from the exact value by more
    than --mpki-tolerance (default 5%).

The tolerances are the accuracy contract of docs/SAMPLING.md, enforced
across the golden matrix by tests/test_sampled.cpp; this script is the
CI smoke gate over a real CLI round trip.
"""

import argparse
import json
import math
import sys


def load_json(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def fail(msg):
    sys.exit(f"error: {msg}")


def finite(doc, path, key):
    value = doc.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        fail(f"{path}: {key} is {value!r}, expected a number")
    if not math.isfinite(value):
        fail(f"{path}: {key} is not finite")
    return float(value)


def load_sampled(path):
    doc = load_json(path)
    if doc.get("schema") != "msim.sampled.v1":
        fail(f"{path}: expected schema msim.sampled.v1, got {doc.get('schema')!r}")
    estimates = doc.get("estimates")
    if not isinstance(estimates, dict):
        fail(f"{path}: missing estimates block")

    regions = doc.get("regions")
    if not isinstance(regions, list) or not regions:
        fail(f"{path}: missing regions array")
    detailed = [r for r in regions if r.get("detailed")]
    if len(regions) != doc.get("regions_total"):
        fail(f"{path}: regions_total={doc.get('regions_total')} but "
             f"{len(regions)} regions listed")
    if len(detailed) != doc.get("regions_detailed"):
        fail(f"{path}: regions_detailed={doc.get('regions_detailed')} but "
             f"{len(detailed)} regions flagged detailed")
    clusters = {r.get("cluster") for r in regions}
    if len(clusters) != doc.get("clusters"):
        fail(f"{path}: clusters={doc.get('clusters')} but {len(clusters)} "
             f"distinct cluster ids in regions")
    for r in detailed:
        if not r.get("digest"):
            fail(f"{path}: detailed region {r.get('index')} has no digest")

    return {
        "ipc": finite(estimates, path, "ipc"),
        "l1d_mpki": finite(estimates, path, "l1d_mpki"),
        "l2_mpki": finite(estimates, path, "l2_mpki"),
        "regions_detailed": len(detailed),
        "regions_total": len(regions),
    }


def metric(metrics, path, key):
    entry = metrics.get(key)
    if not isinstance(entry, dict):
        fail(f"{path}: missing metric {key}")
    return finite(entry, f"{path}:{key}", "value")


def load_exact(path):
    doc = load_json(path)
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        fail(f"{path}: missing metrics block (is this a --stats-json report?)")
    ipc = finite(doc, path, "throughput_ipc")
    committed = metric(metrics, path, "pipeline.committed")
    if committed <= 0:
        fail(f"{path}: pipeline.committed is {committed}")
    l1d = metric(metrics, path, "mem.l1d.misses")
    l2 = metric(metrics, path, "mem.l2.misses")
    return {
        "ipc": ipc,
        "l1d_mpki": 1000.0 * l1d / committed,
        "l2_mpki": 1000.0 * l2 / committed,
    }


def check(label, est, exact, tolerance, failures):
    if exact == 0.0:
        # A zero exact value cannot anchor a relative error; require the
        # estimate to agree exactly (integer-counter quantities only).
        rel = 0.0 if est == 0.0 else math.inf
    else:
        rel = abs(est - exact) / abs(exact)
    status = "ok" if rel <= tolerance else "FAIL"
    print(f"  {label:<10} sampled {est:10.4f}  exact {exact:10.4f}  "
          f"error {100.0 * rel:5.2f}% (limit {100.0 * tolerance:.0f}%)  {status}")
    if rel > tolerance:
        failures.append(label)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("sampled")
    parser.add_argument("exact")
    parser.add_argument("--ipc-tolerance", type=float, default=0.03,
                        help="max relative IPC error (default 0.03)")
    parser.add_argument("--mpki-tolerance", type=float, default=0.05,
                        help="max relative MPKI error (default 0.05)")
    args = parser.parse_args()

    sampled = load_sampled(args.sampled)
    exact = load_exact(args.exact)

    print(f"sampled estimate vs exact "
          f"({sampled['regions_detailed']}/{sampled['regions_total']} "
          f"regions detailed):")
    failures = []
    check("IPC", sampled["ipc"], exact["ipc"], args.ipc_tolerance, failures)
    check("L1D MPKI", sampled["l1d_mpki"], exact["l1d_mpki"],
          args.mpki_tolerance, failures)
    check("L2 MPKI", sampled["l2_mpki"], exact["l2_mpki"],
          args.mpki_tolerance, failures)

    if failures:
        sys.exit(f"error: sampled estimates out of tolerance: "
                 f"{', '.join(failures)}")
    print("sampled accuracy gate passed")


if __name__ == "__main__":
    main()
