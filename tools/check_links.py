#!/usr/bin/env python3
"""Fail on dead intra-repo links in the repository's Markdown files.

Usage:
    check_links.py [ROOT]

Scans every *.md file under ROOT (default: the repo root containing this
script) for Markdown links and inline references to repository paths, and
exits 1 if any relative link target does not exist.  External links
(http/https/mailto) are ignored; anchors are stripped before the
existence check.
"""

import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_DIRS = {".git", "build", "build-prof", ".github"}
SKIP_SCHEMES = ("http://", "https://", "mailto:")


def md_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else
                           os.path.join(os.path.dirname(__file__), os.pardir))
    dead = []
    checked = 0
    for path in sorted(md_files(root)):
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), target))
            checked += 1
            if not os.path.exists(resolved):
                rel = os.path.relpath(path, root)
                dead.append(f"{rel}: dead link -> {match.group(1)}")
    for line in dead:
        print(line)
    print(f"checked {checked} intra-repo links, {len(dead)} dead")
    return 1 if dead else 0


if __name__ == "__main__":
    sys.exit(main())
