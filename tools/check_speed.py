#!/usr/bin/env python3
"""Gate simulator speed against the committed baseline.

Usage:
    check_speed.py BASELINE.json CURRENT.json [--tolerance 0.30]

Both files use the msim.bench_sim_speed.v1 schema written by
`bench_sim_speed json=PATH`.  The check fails (exit 1) when any
benchmark's simulated_kips drops more than --tolerance below the
baseline, or when a baseline benchmark is missing from the current run.
Large improvements only print a hint to refresh the baseline.

Absolute KIPS depend on host hardware; see the triage checklist in
docs/PERFORMANCE.md before acting on a failure.
"""

import argparse
import json
import sys


def load_rows(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "msim.bench_sim_speed.v1":
        sys.exit(f"error: {path}: expected schema msim.bench_sim_speed.v1, "
                 f"got {doc.get('schema')!r}")
    rows = {}
    for row in doc.get("benchmarks", []):
        rows[row["name"]] = float(row["simulated_kips"])
    if not rows:
        sys.exit(f"error: {path}: no benchmark rows")
    return rows


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional regression (default 0.30)")
    args = parser.parse_args()

    baseline = load_rows(args.baseline)
    current = load_rows(args.current)

    regressed = []  # (name, human-readable reason) per failing row
    floor = 1.0 - args.tolerance
    for name, base_kips in sorted(baseline.items()):
        if name not in current:
            print(f"FAIL {name}: missing from {args.current}")
            regressed.append((name, "missing"))
            continue
        cur_kips = current[name]
        ratio = cur_kips / base_kips if base_kips > 0 else float("inf")
        verdict = "FAIL" if ratio < floor else "ok"
        print(f"{verdict:4} {name}: {cur_kips:.0f} KIPS vs baseline "
              f"{base_kips:.0f} ({ratio:.2f}x, floor {floor:.2f}x)")
        if ratio < floor:
            regressed.append((name, f"{ratio:.2f}x"))
        elif ratio > 1.0 + args.tolerance:
            print(f"     note: {name} is >{args.tolerance:.0%} above baseline; "
                  f"consider refreshing BENCH_sim_speed.json")

    for name in sorted(set(current) - set(baseline)):
        print(f"note {name}: not in baseline (new benchmark?)")

    if regressed:
        # Name the offenders in the summary: CI folds the per-row output, so
        # the last line has to carry the whole verdict on its own.
        rows = ", ".join(f"{name} ({reason})" for name, reason in regressed)
        print(f"\nspeed gate FAILED, {len(regressed)} row(s) below the "
              f"{floor:.2f}x floor: {rows} -- see docs/PERFORMANCE.md triage "
              f"checklist")
        return 1
    print(f"\nspeed gate passed ({len(baseline)} rows at or above "
          f"{floor:.2f}x of baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
