#!/usr/bin/env python3
"""Render an interval-telemetry JSONL stream as a standalone HTML report.

Usage:
    report_intervals.py INTERVALS.jsonl [-o report.html] [--title TEXT]

Input is the msim.intervals.v1 stream written by `msim_cli --interval-json`
(validate it first with check_intervals.py).  The output is one
self-contained HTML file -- inline SVG charts, no JavaScript, no external
assets -- so it can be archived as a CI artifact and opened anywhere:

  * throughput IPC and per-thread IPC over time
  * shared-structure occupancy (IQ, DAB) and cache MPKI / mispredict rate
  * a phase track per thread: one colored band per detected phase, with
    fingerprint and dwell time in the hover title
  * a per-thread summary table (committed, mean IPC, phases seen)
"""

import argparse
import html
import json
import sys

PALETTE = ["#4c78a8", "#f58518", "#54a24b", "#e45756", "#72b7b2",
           "#b279a2", "#eeca3b", "#9d755d"]
PHASE_PALETTE = ["#4c78a8", "#f58518", "#54a24b", "#e45756", "#72b7b2",
                 "#b279a2", "#eeca3b", "#9d755d", "#bab0ac", "#ff9da6"]

W, H, PAD = 720, 160, 36


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        lines = f.read().splitlines()
    if not lines:
        sys.exit(f"error: {path}: empty file")
    header = json.loads(lines[0])
    if header.get("schema") != "msim.intervals.v1":
        sys.exit(f"error: {path}: expected schema msim.intervals.v1, "
                 f"got {header.get('schema')!r}")
    records = [json.loads(l) for l in lines[1:]]
    if not records:
        sys.exit(f"error: {path}: no interval records")
    return header, records


def svg_chart(title, series, y_label, y_max=None):
    """One line chart: series is a list of (name, color, [(x, y)])."""
    xs = [x for _, _, pts in series for x, _ in pts]
    ys = [y for _, _, pts in series for _, y in pts]
    if not xs:
        return ""
    x_lo, x_hi = min(xs), max(xs)
    y_hi = y_max if y_max is not None else max(ys + [1e-12])
    x_span = max(x_hi - x_lo, 1)

    def sx(x):
        return PAD + (x - x_lo) / x_span * (W - 2 * PAD)

    def sy(y):
        return H - PAD / 2 - min(y / y_hi, 1.0) * (H - PAD)

    parts = [f'<svg viewBox="0 0 {W} {H}" class="chart" '
             f'role="img" aria-label="{html.escape(title)}">']
    parts.append(f'<text x="{PAD}" y="14" class="ctitle">'
                 f'{html.escape(title)}</text>')
    # Axes and y gridlines at 0, half, max.
    for frac in (0.0, 0.5, 1.0):
        y = sy(frac * y_hi)
        parts.append(f'<line x1="{PAD}" y1="{y:.1f}" x2="{W - PAD}" '
                     f'y2="{y:.1f}" class="grid"/>')
        parts.append(f'<text x="{PAD - 4}" y="{y + 3:.1f}" class="ylab">'
                     f'{frac * y_hi:.3g}</text>')
    parts.append(f'<text x="{W - PAD}" y="{H - 4}" class="xlab">cycle '
                 f'{x_hi:,}</text>')
    parts.append(f'<text x="{PAD}" y="{H - 4}" class="xlab2">'
                 f'{html.escape(y_label)}; cycle {x_lo:,}</text>')
    for name, color, pts in series:
        path = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in pts)
        parts.append(f'<polyline points="{path}" fill="none" '
                     f'stroke="{color}" stroke-width="1.5">'
                     f'<title>{html.escape(name)}</title></polyline>')
    # Legend.
    lx = PAD
    for name, color, _ in series:
        parts.append(f'<rect x="{lx}" y="20" width="10" height="3" '
                     f'fill="{color}"/>')
        parts.append(f'<text x="{lx + 13}" y="25" class="leg">'
                     f'{html.escape(name)}</text>')
        lx += 13 + 7 * len(name) + 14
    parts.append("</svg>")
    return "".join(parts)


def svg_phase_track(records, threads):
    """One row per thread; each interval is a band colored by phase id."""
    xs = [r["start"] for r in records] + [records[-1]["end"]]
    x_lo, x_hi = min(xs), max(xs)
    x_span = max(x_hi - x_lo, 1)
    row_h, gap = 22, 8
    height = 30 + threads * (row_h + gap)

    def sx(x):
        return PAD + (x - x_lo) / x_span * (W - 2 * PAD)

    parts = [f'<svg viewBox="0 0 {W} {height}" class="chart" role="img" '
             f'aria-label="phase track">']
    parts.append(f'<text x="{PAD}" y="14" class="ctitle">phase track '
                 f'(one band per interval, colored by phase id)</text>')
    for t in range(threads):
        y = 24 + t * (row_h + gap)
        parts.append(f'<text x="{PAD - 6}" y="{y + row_h / 2 + 3}" '
                     f'class="ylab">T{t}</text>')
        for r in records:
            th = r["threads"][t]
            color = PHASE_PALETTE[th["phase"] % len(PHASE_PALETTE)]
            x0, x1 = sx(r["start"]), sx(r["end"])
            tip = (f"T{t} [{r['start']:,},{r['end']:,}) phase "
                   f"{th['phase']} fp {th['fp']} ipc {th['ipc']:.3f}")
            stroke = ' stroke="#222" stroke-width="1"' if th["changed"] else ""
            parts.append(
                f'<rect x="{x0:.1f}" y="{y}" width="{max(x1 - x0, 1):.1f}" '
                f'height="{row_h}" fill="{color}"{stroke}>'
                f'<title>{html.escape(tip)}</title></rect>')
    parts.append("</svg>")
    return "".join(parts)


def main():
    ap = argparse.ArgumentParser(
        description="render msim.intervals.v1 JSONL as standalone HTML")
    ap.add_argument("path")
    ap.add_argument("-o", "--output", default="intervals.html")
    ap.add_argument("--title", default="msim interval telemetry")
    args = ap.parse_args()

    header, records = load(args.path)
    threads = header["threads"]
    interval = header["interval_cycles"]
    mid = [(r["start"] + r["end"]) / 2 for r in records]

    charts = []
    charts.append(svg_chart(
        "throughput IPC",
        [("all threads", "#333", list(zip(mid, (r["ipc"] for r in records))))],
        "IPC"))
    charts.append(svg_chart(
        "per-thread IPC",
        [(f"T{t}", PALETTE[t % len(PALETTE)],
          [(m, r["threads"][t]["ipc"]) for m, r in zip(mid, records)])
         for t in range(threads)],
        "IPC"))
    charts.append(svg_phase_track(records, threads))
    charts.append(svg_chart(
        "shared-structure occupancy",
        [("IQ", "#4c78a8",
          list(zip(mid, (r["iq_occ"] for r in records)))),
         ("DAB", "#e45756",
          list(zip(mid, (r["dab_occ"] for r in records))))],
        "mean entries"))
    charts.append(svg_chart(
        "cache MPKI",
        [("L1D", "#4c78a8",
          list(zip(mid, (r["l1d_mpki"] for r in records)))),
         ("L2", "#f58518",
          list(zip(mid, (r["l2_mpki"] for r in records))))],
        "misses / 1k committed"))
    charts.append(svg_chart(
        "branch mispredict rate",
        [("mispredict", "#b279a2",
          list(zip(mid, (r["mispredict_rate"] for r in records))))],
        "fraction", y_max=max(
            (r["mispredict_rate"] for r in records), default=0.0) or 1.0))

    rows = []
    for t in range(threads):
        committed = sum(r["threads"][t]["committed"] for r in records)
        cycles = sum(r["end"] - r["start"] for r in records)
        phases = {r["threads"][t]["phase"] for r in records}
        changes = sum(1 for r in records if r["threads"][t]["changed"])
        rows.append(
            f"<tr><td>T{t}</td><td>{committed:,}</td>"
            f"<td>{committed / max(cycles, 1):.3f}</td>"
            f"<td>{len(phases)}</td><td>{changes}</td></tr>")

    doc = f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>{html.escape(args.title)}</title>
<style>
body {{ font: 14px/1.5 system-ui, sans-serif; margin: 24px auto;
       max-width: {W + 40}px; color: #222; }}
h1 {{ font-size: 20px; }} .meta {{ color: #666; }}
svg.chart {{ width: 100%; height: auto; display: block; margin: 18px 0;
             background: #fafafa; border: 1px solid #e5e5e5; }}
.ctitle {{ font: 600 12px sans-serif; }} .leg, .ylab, .xlab, .xlab2
{{ font: 10px sans-serif; fill: #555; }}
.ylab {{ text-anchor: end; }} .xlab {{ text-anchor: end; }}
.grid {{ stroke: #ddd; stroke-width: 0.5; }}
table {{ border-collapse: collapse; }} td, th {{ border: 1px solid #ccc;
padding: 3px 10px; text-align: right; }}
</style></head><body>
<h1>{html.escape(args.title)}</h1>
<p class="meta">schema {html.escape(header["schema"])} &middot;
{len(records)} records &middot; {threads} thread(s) &middot;
interval {interval:,} cycles &middot; source
{html.escape(args.path)}</p>
{"".join(charts)}
<table><tr><th>thread</th><th>committed</th><th>mean IPC</th>
<th>phases</th><th>changes</th></tr>{"".join(rows)}</table>
</body></html>
"""
    with open(args.output, "w", encoding="utf-8") as f:
        f.write(doc)
    print(f"wrote {args.output}: {len(records)} record(s), "
          f"{threads} thread(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
