#!/usr/bin/env python3
"""Compare two sweep JSON reports cell by cell.

Usage:
    diff_sweep.py CLEAN.json OTHER.json [--expect-failed N]
                  [--expect-failed-mix SCHED:IQ:MIX]... [--require-diag]

Either positional argument may also be a ledger spec `ledger:DIR:JOBID`:
DIR is an msim_serve --journal-dir, and the spec resolves to the result
file DIR/ledger.jsonl records for the `done` job JOBID -- after checking
the ledger really marks that job done and the recorded file exists.  This
lets CI diff a daemon's ledger-stored bytes without re-fetching them over
the wire (docs/SERVICE.md, "Durability & recovery").

Both files use the sweep schema written by `msim_cli --sweep-json` /
`bench_* json=PATH` (sim::write_sweep_json).  The check enforces the
chaos-sweep contract from docs/ROBUSTNESS.md:

  * the two grids have the same (scheduler, iq) cells in the same order;
  * every mix that succeeded in OTHER is *identical* to the same mix in
    CLEAN -- every field, attempts included.  Faults absorbed by the
    supervisor must leave no trace on surviving cells;
  * mixes that failed in OTHER match the expected failure set:
    --expect-failed N pins the count, and each --expect-failed-mix
    SCHED:IQ:MIX (e.g. 2op_block_ooo:64:4T-mix3) pins one identity;
  * with --require-diag, every failed mix carries a diagnostic bundle
    naming the worker slot that died.

Exit 0 when all checks pass, 1 otherwise (one line per violation).
"""

import argparse
import json
import os
import sys


def resolve_path(spec):
    """Resolves `ledger:DIR:JOBID` to the job's recorded result file.

    Plain paths pass through untouched.  The resolver replays the ledger
    the same way the daemon does -- last record for the id wins -- and
    refuses jobs the ledger does not mark `done`.
    """
    if not spec.startswith("ledger:"):
        return spec
    try:
        _, ledger_dir, job_id = spec.split(":", 2)
        job_id = int(job_id)
    except ValueError:
        sys.exit(f"error: bad ledger spec '{spec}' (want ledger:DIR:JOBID)")
    ledger_path = os.path.join(ledger_dir, "ledger.jsonl")
    state, result_path = None, None
    try:
        with open(ledger_path, "r", encoding="utf-8") as f:
            header = json.loads(f.readline())
            if "msim_job_ledger" not in header:
                sys.exit(f"error: {ledger_path} is not a msim job ledger")
            for line in f:
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    break  # torn tail: trust the prefix, like the daemon
                if rec.get("id") != job_id:
                    continue
                state = rec.get("record", state)
                if state == "done":
                    result_path = rec.get("result_path")
    except OSError as e:
        sys.exit(f"error: cannot read {ledger_path}: {e}")
    if state is None:
        sys.exit(f"error: job {job_id} does not appear in {ledger_path}")
    if state != "done" or not result_path:
        sys.exit(f"error: job {job_id} is '{state}' in {ledger_path}, "
                 f"not done; no result bytes to diff")
    if not os.path.exists(result_path):
        sys.exit(f"error: ledger records {result_path} for job {job_id} "
                 f"but the file is missing")
    return result_path


def load_cells(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        sys.exit(f"error: {path}: no sweep cells")
    return doc


def cell_key(cell):
    return (cell.get("scheduler"), cell.get("iq_entries"))


def mix_id(cell, mix):
    return f"{cell.get('scheduler')}:{cell.get('iq_entries')}:{mix.get('mix')}"


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("clean", help="fault-free reference sweep JSON, or "
                                      "ledger:DIR:JOBID")
    parser.add_argument("other", help="sweep JSON to validate (e.g. chaos "
                                      "run), or ledger:DIR:JOBID")
    parser.add_argument("--expect-failed", type=int, default=0, metavar="N",
                        help="exact number of failed mixes expected in OTHER "
                             "(default 0: OTHER must equal CLEAN everywhere)")
    parser.add_argument("--expect-failed-mix", action="append", default=[],
                        metavar="SCHED:IQ:MIX",
                        help="identity of one expected failure; repeatable")
    parser.add_argument("--require-diag", action="store_true",
                        help="failed mixes must carry a diag bundle naming "
                             "the worker slot")
    args = parser.parse_args()

    clean = load_cells(resolve_path(args.clean))
    other = load_cells(resolve_path(args.other))

    problems = []
    if len(clean["cells"]) != len(other["cells"]):
        sys.exit(f"error: grid shape differs: {len(clean['cells'])} cells in "
                 f"{args.clean} vs {len(other['cells'])} in {args.other}")

    failed = []
    survivors = 0
    for c_cell, o_cell in zip(clean["cells"], other["cells"]):
        if cell_key(c_cell) != cell_key(o_cell):
            problems.append(f"cell order differs: {cell_key(c_cell)} vs "
                            f"{cell_key(o_cell)}")
            continue
        c_mixes = c_cell.get("mixes", [])
        o_mixes = o_cell.get("mixes", [])
        if len(c_mixes) != len(o_mixes):
            problems.append(f"{cell_key(c_cell)}: mix count differs")
            continue
        any_failed = any(not m.get("ok", False) for m in o_mixes)
        for c_mix, o_mix in zip(c_mixes, o_mixes):
            if c_mix.get("mix") != o_mix.get("mix"):
                problems.append(f"{cell_key(c_cell)}: mix order differs: "
                                f"{c_mix.get('mix')} vs {o_mix.get('mix')}")
                continue
            if not o_mix.get("ok", False):
                failed.append((cell_key(c_cell), o_mix))
                continue
            survivors += 1
            if c_mix != o_mix:
                drift = [k for k in sorted(set(c_mix) | set(o_mix))
                         if c_mix.get(k) != o_mix.get(k)]
                problems.append(
                    f"survivor {mix_id(c_cell, o_mix)} differs from the "
                    f"fault-free run in: {', '.join(drift)}")
        if not any_failed:
            # Within-cell aggregates are pure functions of this cell's own
            # mixes; check them so a merge bug in the harmonic means cannot
            # hide.  The speedup/fairness-gain aggregates are deliberately
            # excluded: they are paired against the traditional cell of the
            # same iq, so a failure *there* legitimately shifts them here.
            for field in ("hmean_ipc", "hmean_fairness",
                          "mean_all_stall_fraction", "mean_iq_residency"):
                if c_cell.get(field) != o_cell.get(field):
                    problems.append(f"{cell_key(c_cell)}: aggregate {field} "
                                    f"differs with no failed mix")

    if len(failed) != args.expect_failed:
        names = ", ".join(mix_id({"scheduler": k[0], "iq_entries": k[1]}, m)
                          for k, m in failed) or "none"
        problems.append(f"expected exactly {args.expect_failed} failed "
                        f"mix(es), found {len(failed)}: {names}")

    found_ids = {f"{k[0]}:{k[1]}:{m.get('mix')}" for k, m in failed}
    for want in args.expect_failed_mix:
        if want not in found_ids:
            problems.append(f"expected failed mix {want} did not fail "
                            f"(failed: {sorted(found_ids) or 'none'})")

    for key, mix in failed:
        ident = f"{key[0]}:{key[1]}:{mix.get('mix')}"
        if not mix.get("error"):
            problems.append(f"failed mix {ident} has no error message")
        if mix.get("attempts", 0) < 1:
            problems.append(f"failed mix {ident} reports zero attempts")

    if args.require_diag:
        # diag bundles live in the top-level failed_cells index.
        diag_by_mix = {}
        for f in other.get("failed_cells", []):
            ident = f"{f.get('scheduler')}:{f.get('iq_entries')}:{f.get('mix')}"
            diag_by_mix[ident] = f.get("diag", "")
        for key, mix in failed:
            ident = f"{key[0]}:{key[1]}:{mix.get('mix')}"
            diag = diag_by_mix.get(ident, "")
            if not diag:
                problems.append(f"failed mix {ident} carries no diag bundle")
                continue
            try:
                bundle = json.loads(diag)
            except json.JSONDecodeError as e:
                problems.append(f"failed mix {ident}: diag is not JSON: {e}")
                continue
            if "slot" not in bundle:
                problems.append(f"failed mix {ident}: diag names no worker slot")

    if other.get("failed_count") != len(failed):
        problems.append(f"failed_count={other.get('failed_count')} but "
                        f"{len(failed)} mixes are not ok")

    for p in problems:
        print(f"FAIL {p}")
    if problems:
        print(f"\nsweep diff FAILED ({len(problems)} problem(s))")
        return 1
    print(f"sweep diff passed: {survivors} surviving mix(es) identical, "
          f"{len(failed)} expected failure(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
