#!/usr/bin/env python3
"""Restart-chaos harness for the msim_serve daemon (docs/SERVICE.md,
"Durability & recovery").

Usage:
    chaos_restart.py --serve BUILD/examples/msim_serve \
                     --cli BUILD/examples/msim_cli \
                     --dir ARTIFACTS [--quick]

Exercises both supervision layers in one run:

  1. computes the offline reference bytes with `msim_cli --sweep-json`
     (process isolation, a *different* worker count than the daemon uses);
  2. starts the daemon with a --journal-dir, completes a small single-run
     job, and submits a 4T process-isolated sweep whose chaos= plan
     SIGKILLs a forked worker mid-grid (the PR-8 layer);
  3. waits until the sweep is demonstrably mid-flight, then SIGKILLs the
     *daemon* itself (the ledger layer);
  4. restarts the daemon on the same --journal-dir and demands:
     the readiness endpoint reports the replay, the completed job
     re-serves byte-identically, the interrupted sweep resumes
     server-side and its eventually-served bytes are cmp-identical to the
     offline reference (also via diff_sweep.py's ledger: resolver), and a
     POST /v1/shutdown drain exits 0.

Artifacts (logs, journals, served/offline JSON) are left under --dir for
upload on failure.  Exit 0 when every check passes, 1 otherwise.  Only
the Python standard library is used.
"""

import argparse
import http.client
import json
import os
import pathlib
import re
import signal
import subprocess
import sys
import time


def fail(msg):
    print(f"FAIL {msg}", file=sys.stderr)
    sys.exit(1)


def log(msg):
    print(f"chaos_restart: {msg}", flush=True)


class Daemon:
    """One msim_serve incarnation bound to an ephemeral port."""

    def __init__(self, serve_bin, journal_dir, log_path):
        self.log_path = log_path
        self.log_file = open(log_path, "ab")
        self.proc = subprocess.Popen(
            [serve_bin, "--port", "0", "--max-inflight", "2",
             "--journal-dir", str(journal_dir)],
            stdout=self.log_file, stderr=subprocess.STDOUT)
        self.port = self._wait_for_port()

    def _wait_for_port(self):
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                fail(f"daemon exited with {self.proc.returncode} before "
                     f"listening (see {self.log_path})")
            text = pathlib.Path(self.log_path).read_text(errors="replace")
            m = re.search(r"^listening on [0-9.]+:(\d+)$", text, re.M)
            if m:
                return int(m.group(1))
            time.sleep(0.1)
        fail(f"daemon never reported its port (see {self.log_path})")

    def request(self, method, target, body=None, timeout=30):
        conn = http.client.HTTPConnection("127.0.0.1", self.port,
                                          timeout=timeout)
        try:
            conn.request(method, target, body=body)
            resp = conn.getresponse()
            return resp.status, resp.read()
        finally:
            conn.close()

    def sigkill(self):
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait()
        self.log_file.close()

    def shutdown_clean(self):
        status, _ = self.request("POST", "/v1/shutdown")
        if status != 200:
            fail(f"POST /v1/shutdown returned {status}")
        code = self.proc.wait(timeout=120)
        self.log_file.close()
        if code != 0:
            fail(f"daemon exited {code} after /v1/shutdown, expected 0")


def submit(daemon, config, extra=None):
    body = {"config": config}
    body.update(extra or {})
    status, payload = daemon.request("POST", "/v1/jobs", json.dumps(body))
    if status not in (200, 202):
        fail(f"submit returned {status}: {payload.decode(errors='replace')}")
    return json.loads(payload)["id"]


def job_status(daemon, job_id):
    status, payload = daemon.request("GET", f"/v1/jobs/{job_id}")
    if status != 200:
        fail(f"GET /v1/jobs/{job_id} returned {status}")
    return json.loads(payload)


def wait_done(daemon, job_id, budget_s):
    deadline = time.monotonic() + budget_s
    while time.monotonic() < deadline:
        state = job_status(daemon, job_id)["state"]
        if state in ("done", "failed", "cancelled", "expired"):
            return state
        time.sleep(0.5)
    fail(f"job {job_id} did not finish within {budget_s}s")


def fetch_result(daemon, job_id):
    status, payload = daemon.request("GET", f"/v1/jobs/{job_id}/result")
    if status != 200:
        fail(f"GET /v1/jobs/{job_id}/result returned {status}: "
             f"{payload.decode(errors='replace')}")
    return payload


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--serve", required=True, help="msim_serve binary")
    parser.add_argument("--cli", required=True, help="msim_cli binary")
    parser.add_argument("--dir", required=True,
                        help="artifact directory (created; kept on failure)")
    parser.add_argument("--quick", action="store_true",
                        help="smaller grid for fast local runs")
    args = parser.parse_args()

    art = pathlib.Path(args.dir)
    journals = art / "journals"
    journals.mkdir(parents=True, exist_ok=True)

    warmup, horizon = (1000, 4000) if args.quick else (2500, 10000)
    sweep_knobs = {
        "sweep": 4, "sched": "traditional,2op_block_ooo", "iq": "32",
        "warmup": warmup, "horizon": horizon, "seed": 1, "jobs": 4,
    }
    run_config = {"benchmarks": "gcc,gzip", "warmup": 500,
                  "horizon": 2000, "seed": 3}

    # 1. Offline reference (workers=3 here, workers=2 on the daemon: the
    #    bytes must be identical at any worker count).
    offline = art / "offline.json"
    log("computing offline reference sweep")
    cli_args = [args.cli] + [f"{k}={v}" for k, v in sweep_knobs.items()]
    cli_args += ["isolation=process", "workers=3",
                 "--sweep-json", str(offline)]
    res = subprocess.run(cli_args, stdout=subprocess.DEVNULL,
                         stderr=subprocess.PIPE)
    if res.returncode != 0:
        fail(f"offline msim_cli run failed: {res.stderr.decode()}")

    # 2. First incarnation: one completed job, one chaos sweep.
    daemon = Daemon(args.serve, journals, art / "serve-1.log")
    log(f"daemon up on port {daemon.port}")
    done_id = submit(daemon, run_config)
    if wait_done(daemon, done_id, 300) != "done":
        fail(f"job {done_id} did not complete")
    completed_bytes = fetch_result(daemon, done_id)
    (art / "completed.json").write_bytes(completed_bytes)

    sweep_config = dict(sweep_knobs)
    sweep_config.update({"isolation": "process", "workers": 2,
                         "chaos": "kill@3"})
    sweep_id = submit(daemon, sweep_config,
                      extra={"idempotency_key": "chaos-grid"})
    log(f"sweep job {sweep_id} submitted (worker chaos=kill@3)")

    # 3. Wait until the sweep is demonstrably mid-flight -- running, with
    #    journal bytes on disk -- then SIGKILL the daemon.
    main_journal = journals / f"job{sweep_id}.jsonl"
    mid_flight = False
    deadline = time.monotonic() + 300
    while time.monotonic() < deadline:
        status = job_status(daemon, sweep_id)
        if status["state"] in ("done", "failed"):
            break
        journal_bytes = sum(
            p.stat().st_size
            for p in journals.glob(f"job{sweep_id}.jsonl*"))
        if status["state"] == "running" and journal_bytes > 200:
            mid_flight = True
            break
        time.sleep(0.1)
    state_at_kill = job_status(daemon, sweep_id)["state"]
    log(f"SIGKILL daemon (sweep state: {state_at_kill}, "
        f"mid_flight={mid_flight})")
    daemon.sigkill()
    # Orphaned sweep workers die on their next heartbeat write (EPIPE);
    # give them a beat so the restarted supervisor owns the shard journals.
    time.sleep(1.0)

    # 4. Second incarnation: replay, re-serve, resume, verify.
    daemon = Daemon(args.serve, journals, art / "serve-2.log")
    log(f"daemon restarted on port {daemon.port}")
    status, payload = daemon.request("GET", "/v1/healthz")
    if status != 200:
        fail(f"GET /v1/healthz returned {status}")
    health = json.loads(payload)
    (art / "healthz.json").write_bytes(payload)
    recovery = health.get("recovery", {})
    if not recovery.get("enabled"):
        fail("healthz does not report ledger recovery as enabled")
    if recovery.get("replayed", 0) < 2:
        fail(f"expected >= 2 replayed jobs, healthz says {recovery}")
    if recovery.get("completed", 0) < 1:
        fail(f"expected >= 1 recovered completed job: {recovery}")
    log(f"recovery: {recovery}")

    # Completed jobs re-serve their stored bytes verbatim.
    reserved = fetch_result(daemon, done_id)
    if reserved != completed_bytes:
        (art / "reserved.json").write_bytes(reserved)
        fail(f"job {done_id} re-served different bytes after restart")
    log(f"job {done_id} re-served byte-identically")

    # Idempotent resubmission dedupes to the recovered job, whatever state
    # it is in -- never a second execution.
    dup_id = submit(daemon, sweep_config,
                    extra={"idempotency_key": "chaos-grid"})
    if dup_id != sweep_id:
        fail(f"resubmission created job {dup_id}, expected dedupe to "
             f"{sweep_id}")
    log("idempotent resubmission deduped to the recovered sweep")

    # The interrupted sweep resumes server-side and serves bytes
    # cmp-identical to the uninterrupted offline run.
    if wait_done(daemon, sweep_id, 600) != "done":
        fail(f"recovered sweep {sweep_id} did not complete")
    served = fetch_result(daemon, sweep_id)
    (art / "served.json").write_bytes(served)
    if served != offline.read_bytes():
        fail("served sweep bytes differ from the offline engine "
             f"(cmp {offline} {art / 'served.json'})")
    log("served sweep is byte-identical to the offline reference")

    # The ledger-stored result file holds the same bytes; diff_sweep.py
    # resolves it through the ledger: spec.
    diff_tool = pathlib.Path(__file__).with_name("diff_sweep.py")
    res = subprocess.run(
        [sys.executable, str(diff_tool), str(offline),
         f"ledger:{journals}:{sweep_id}"])
    if res.returncode != 0:
        fail("diff_sweep.py rejects the ledger-stored result")

    daemon.shutdown_clean()
    log("PASS: restart-chaos contract holds "
        f"(mid_flight={mid_flight}, state_at_kill={state_at_kill})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
