#include "trace/trace_io.hpp"

#include <array>
#include <cstdio>
#include <cstring>
#include <memory>
#include <set>
#include <stdexcept>

namespace msim::trace {
namespace {

constexpr char kMagic[8] = {'M', 'S', 'I', 'M', 'T', 'R', 'C', '1'};

/// On-disk record: explicit little-endian packing, independent of the
/// in-memory DynInst layout.
struct PackedInst {
  std::uint64_t seq;
  std::uint64_t pc;
  std::uint64_t next_pc;
  std::uint64_t mem_addr;
  std::uint8_t op;
  std::uint8_t dest;
  std::uint8_t src0;
  std::uint8_t src1;
  std::uint8_t taken;
  std::uint8_t pad[3];
};
static_assert(sizeof(PackedInst) == 40);

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + ": '" + path + "'");
}

PackedInst pack(const isa::DynInst& inst) {
  PackedInst p{};
  p.seq = inst.seq;
  p.pc = inst.pc;
  p.next_pc = inst.next_pc;
  p.mem_addr = inst.mem_addr;
  p.op = static_cast<std::uint8_t>(inst.op);
  p.dest = inst.dest;
  p.src0 = inst.src[0];
  p.src1 = inst.src[1];
  p.taken = inst.taken ? 1 : 0;
  return p;
}

isa::DynInst unpack(const PackedInst& p, const std::string& path) {
  if (p.op >= isa::kOpClassCount) fail("corrupt trace record (bad op)", path);
  isa::DynInst inst;
  inst.seq = p.seq;
  inst.pc = p.pc;
  inst.next_pc = p.next_pc;
  inst.mem_addr = p.mem_addr;
  inst.op = static_cast<isa::OpClass>(p.op);
  inst.dest = p.dest;
  inst.src[0] = p.src0;
  inst.src[1] = p.src1;
  inst.taken = p.taken != 0;
  return inst;
}

}  // namespace

void write_trace(const std::string& path,
                 std::span<const isa::DynInst> instructions) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) fail("cannot open trace for writing", path);
  const std::uint64_t count = instructions.size();
  if (std::fwrite(kMagic, sizeof kMagic, 1, f.get()) != 1 ||
      std::fwrite(&count, sizeof count, 1, f.get()) != 1) {
    fail("trace header write failed", path);
  }
  for (const isa::DynInst& inst : instructions) {
    const PackedInst p = pack(inst);
    if (std::fwrite(&p, sizeof p, 1, f.get()) != 1) {
      fail("trace record write failed", path);
    }
  }
  if (std::fflush(f.get()) != 0) fail("trace flush failed", path);
}

std::vector<isa::DynInst> read_trace(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) fail("cannot open trace for reading", path);
  char magic[8];
  std::uint64_t count = 0;
  if (std::fread(magic, sizeof magic, 1, f.get()) != 1 ||
      std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    fail("not an msim trace (bad magic)", path);
  }
  if (std::fread(&count, sizeof count, 1, f.get()) != 1) {
    fail("truncated trace header", path);
  }
  std::vector<isa::DynInst> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    PackedInst p{};
    if (std::fread(&p, sizeof p, 1, f.get()) != 1) {
      fail("truncated trace body", path);
    }
    out.push_back(unpack(p, path));
  }
  return out;
}

TraceSummary summarize_trace(std::span<const isa::DynInst> instructions) {
  TraceSummary s;
  s.instructions = instructions.size();
  std::set<Addr> pcs;
  for (const isa::DynInst& inst : instructions) {
    pcs.insert(inst.pc);
    if (inst.is_branch()) {
      ++s.branches;
      if (inst.taken) ++s.taken_branches;
    }
    if (inst.is_load()) ++s.loads;
    if (inst.is_store()) ++s.stores;
    if (inst.source_count() == 2) ++s.with_two_sources;
  }
  s.unique_pcs = pcs.size();
  s.mean_block_length =
      s.branches ? static_cast<double>(s.instructions) / static_cast<double>(s.branches)
                 : static_cast<double>(s.instructions);
  return s;
}

}  // namespace msim::trace
