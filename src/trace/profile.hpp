// Statistical benchmark profiles: the synthetic stand-ins for the SPEC
// CPU2000 binaries the paper simulates (which are licensing-gated).
//
// Each profile parameterizes the trace generator: instruction-class mix,
// register dependency distances, operand readiness, memory footprint and
// locality, code footprint, and branch predictability.  Profiles are
// calibrated so that single-threaded IPC ranks the benchmarks into the
// low / medium / high ILP classes the paper's workload tables use
// (low = memory-bound, high = execution-bound).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "isa/opclass.hpp"

namespace msim::trace {

/// The paper's three-way benchmark classification (Section 2).
enum class IlpClass : std::uint8_t { kLow, kMedium, kHigh };

[[nodiscard]] std::string_view ilp_class_name(IlpClass c) noexcept;

/// Statistical description of one benchmark's dynamic behaviour.
struct BenchmarkProfile {
  std::string_view name;
  IlpClass ilp = IlpClass::kMedium;

  /// Relative dynamic frequency of each OpClass (indexed by OpClass value).
  /// kBranch weight determines the mean basic-block length.
  std::array<double, isa::kOpClassCount> op_weights{};

  /// Probability that an ALU-type instruction carries a second register
  /// source operand (first operand probability is implicit: see
  /// far_operand_frac).
  double two_source_frac = 0.6;

  /// Fraction of register source operands that reference a value produced
  /// long ago (effectively always ready at dispatch: immediates, loop
  /// invariants, globals).
  double far_operand_frac = 0.35;

  /// Of the remaining (near) operands: probability the dependence distance
  /// is drawn from the short geometric component.
  double dep_near_frac = 0.7;
  /// Geometric success parameter of the short component; mean distance is
  /// 1 + (1-p)/p producer instructions.
  double dep_near_p = 0.45;
  /// Geometric parameter of the long component.
  double dep_far_p = 0.12;

  /// Probability that a load's address operand is an old (long-distance or
  /// loop-invariant) value.  High for array/streaming codes whose indices
  /// are known early -- these expose memory-level parallelism to deep
  /// windows -- and low for pointer-chasing codes whose address depends on
  /// the previous load.
  double load_addr_old_frac = 0.5;

  /// Fraction of loads whose destination is a floating-point register.
  double fp_load_frac = 0.0;
  /// Fraction of stores whose data operand is a floating-point register.
  double fp_store_frac = 0.0;

  /// Data working-set size in bytes; accesses outside the hot/warm/stream
  /// components are uniform over this region.
  std::uint64_t data_footprint = 1u << 20;
  /// Fraction of memory accesses hitting a small (4 KB) hot region (stack,
  /// locals).  High values keep L1D miss rates low.
  double hot_frac = 0.45;
  /// Fraction of accesses to a warm, mostly-L1-resident region (current
  /// objects / rows).
  double warm_frac = 0.25;
  /// Size of the warm region (clamped to the footprint).
  std::uint64_t warm_bytes = 24u << 10;
  /// Fraction of accesses following sequential streams through the
  /// footprint (unit-stride array sweeps).
  double stream_frac = 0.2;
  /// Stream stride in bytes.
  std::uint32_t stream_stride = 8;
  /// Number of concurrent streams.
  std::uint32_t stream_count = 4;

  /// Unique code bytes; determines I-cache behaviour (4 bytes/instruction).
  std::uint64_t code_footprint = 64u << 10;

  /// Fraction of static conditional branches that are predictable: half of
  /// them loop-style (deterministic trip patterns), half statically biased
  /// (0.97 toward their preferred direction).  The rest get a bias drawn
  /// uniformly from [0.35, 0.65] and are genuinely hard to predict.
  double branch_predictable_frac = 0.85;
  /// Mean loop trip count for loop-style branches: one predictor miss per
  /// trip, so long trips (FP loop nests) predict much better than short
  /// ones (integer control flow).
  double mean_loop_trip = 16.0;
  /// Fraction of static branches that are unconditional (always taken,
  /// fixed target: jumps/calls folded together).
  double branch_uncond_frac = 0.15;

  [[nodiscard]] double branch_weight() const noexcept {
    return op_weights[static_cast<std::size_t>(isa::OpClass::kBranch)];
  }
};

/// All benchmark profiles, in a fixed order.  24 entries named after the
/// SPEC CPU2000 benchmarks appearing in the paper's Tables 2-4.
[[nodiscard]] std::span<const BenchmarkProfile> all_profiles() noexcept;

/// Looks up a profile by name; nullopt when unknown.
[[nodiscard]] std::optional<BenchmarkProfile> find_profile(std::string_view name) noexcept;

/// Like find_profile but throws std::invalid_argument for unknown names.
[[nodiscard]] const BenchmarkProfile& profile_or_throw(std::string_view name);

}  // namespace msim::trace
