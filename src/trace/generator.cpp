#include "trace/generator.hpp"

#include <algorithm>

#include "common/archive.hpp"
#include "common/check.hpp"

namespace msim::trace {
namespace {

constexpr Addr kInstBytes = 4;
constexpr Addr kHotRegionBytes = 4096;
constexpr std::uint32_t kMaxBlockLen = 48;

}  // namespace

TraceGenerator::TraceGenerator(const BenchmarkProfile& profile, std::uint64_t seed,
                               AddressSpace layout)
    : profile_(profile), layout_(layout), rng_(seed) {
  MSIM_CHECK(profile_.branch_weight() > 0.0);
  MSIM_CHECK(profile_.code_footprint >= 1024);
  MSIM_CHECK(profile_.data_footprint >= kHotRegionBytes);

  // Cumulative op mix over the non-branch classes; branches are emitted
  // structurally at block ends.
  double weight_sum = 0.0;
  for (double w : profile_.op_weights) weight_sum += w;
  MSIM_CHECK(weight_sum > 0.0);
  double running = 0.0;
  for (std::size_t i = 0; i < isa::kOpClassCount; ++i) {
    const auto op = static_cast<isa::OpClass>(i);
    if (op == isa::OpClass::kBranch) continue;
    const double w = profile_.op_weights[i];
    if (w <= 0.0) continue;
    MSIM_CHECK(non_branch_count_ < non_branch_ops_.size());
    running += w;
    non_branch_cum_[non_branch_count_] = running;
    non_branch_ops_[non_branch_count_] = op;
    ++non_branch_count_;
  }
  MSIM_CHECK(non_branch_count_ > 0);

  // Seed the producer rings with always-live low registers so that early
  // dependence samples resolve to *some* architectural register.
  for (unsigned i = 0; i < kRingSize; ++i) {
    int_ring_[i] = static_cast<ArchReg>(1 + (i % kDestPool));
    fp_ring_[i] = static_cast<ArchReg>(isa::kIntArchRegs + 1 + (i % kDestPool));
  }

  stream_pos_.resize(std::max<std::uint32_t>(1, profile_.stream_count));
  for (std::size_t s = 0; s < stream_pos_.size(); ++s) {
    stream_pos_[s] = profile_.data_footprint * s / stream_pos_.size();
  }

  build_static_cfg();
}

void TraceGenerator::build_static_cfg() {
  // Normalize branch frequency to derive the mean basic-block length.
  double weight_sum = 0.0;
  for (double w : profile_.op_weights) weight_sum += w;
  const double branch_frac = profile_.branch_weight() / weight_sum;
  MSIM_CHECK(branch_frac > 0.0 && branch_frac < 1.0);

  const auto static_insts =
      std::max<std::uint64_t>(64, profile_.code_footprint / kInstBytes);

  // Block lengths are drawn uniformly from [mean/2, 3*mean/2].  A uniform
  // band (rather than a geometric draw) keeps the *dynamic* branch
  // frequency close to the profile weight: jump targets are uniform over
  // blocks, so a heavy tail of very short blocks would otherwise be
  // over-visited and inflate the branch rate.
  const double mean_len = 1.0 / branch_frac;
  const auto len_base = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(mean_len / 2.0 + 0.5));
  const auto len_span = std::max<std::uint64_t>(1, static_cast<std::uint64_t>(mean_len));

  Addr pc = layout_.code_base;
  std::uint64_t emitted = 0;
  while (emitted < static_insts) {
    Block b;
    b.start_pc = pc;
    b.length = std::min<std::uint32_t>(
        kMaxBlockLen,
        len_base + static_cast<std::uint32_t>(rng_.next_below(len_span + 1)));
    b.unconditional = rng_.chance(profile_.branch_uncond_frac);
    if (b.unconditional) {
      b.taken_bias = 1.0f;
      b.prefer_taken = true;
    } else if (rng_.chance(profile_.branch_predictable_frac)) {
      b.prefer_taken = rng_.chance(0.6);
      if (rng_.chance(0.5)) {
        // Loop-style branch: a deterministic trip pattern (the preferred
        // direction `trip - 1` times, then once the other way).  The
        // predictor mispredicts about once per trip, so the profile's mean
        // trip count sets the loop-exit miss rate, as in real codes.
        const double p = 1.0 / std::max(1.0, profile_.mean_loop_trip - 2.0);
        b.trip = 2 + static_cast<std::uint32_t>(
                         std::min<std::uint64_t>(rng_.next_geometric(p), 511));
        b.trip_count = static_cast<std::uint32_t>(rng_.next_below(b.trip));
      } else {
        // Statically biased branch (guard conditions, error paths): the
        // 2-bit counters alone predict these well.
        b.taken_bias = b.prefer_taken ? 0.97f : 0.03f;
      }
    } else {
      b.taken_bias = static_cast<float>(0.35 + 0.30 * rng_.next_double());
    }
    pc += b.length * kInstBytes;
    emitted += b.length;
    blocks_.push_back(b);
  }

  // Fix up taken targets now that the block count is known.  Code locality
  // is hierarchical, like real programs: blocks are grouped into regions
  // (loop nests / functions).  Most taken branches stay within their region
  // -- short backward jumps forming loops -- while a small fraction of
  // "exit" blocks jump to a random other region (calls / phase changes).
  // This gives the branch predictor and the I-cache a realistic, loop-heavy
  // reference stream while the walk still covers the whole code footprint.
  const auto n = static_cast<std::uint32_t>(blocks_.size());
  MSIM_CHECK(n >= 2);
  const std::uint32_t region = std::min<std::uint32_t>(n, kRegionBlocks);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t region_base = (i / region) * region;
    const std::uint32_t region_size = std::min(region, n - region_base);
    std::uint32_t target;
    if (rng_.chance(kRegionExitFrac)) {
      target = static_cast<std::uint32_t>(rng_.next_below(n));
    } else if (rng_.chance(0.7)) {
      // Loop-shaped: jump a short distance backward within the region.
      const auto back = 1 + static_cast<std::uint32_t>(rng_.next_below(8));
      target = region_base +
               (i - region_base + region_size - std::min(back, region_size - 1)) %
                   region_size;
    } else {
      target = region_base + static_cast<std::uint32_t>(rng_.next_below(region_size));
    }
    if (target == i) target = (i + 1) % n;
    blocks_[i].target = target;
  }
}

ArchReg TraceGenerator::sample_source(bool fp, bool older) {
  const double far_chance = older
                                ? std::min(1.0, profile_.far_operand_frac + 0.10)
                                : profile_.far_operand_frac;
  if (rng_.chance(far_chance)) {
    return kNoArchReg;  // produced long ago; ready by dispatch time
  }
  const double p = (!older && rng_.chance(profile_.dep_near_frac))
                       ? profile_.dep_near_p
                       : profile_.dep_far_p;
  auto distance = static_cast<unsigned>(1 + rng_.next_geometric(p));
  distance = std::min(distance, kRingSize);
  const auto& ring = fp ? fp_ring_ : int_ring_;
  const unsigned head = fp ? fp_ring_head_ : int_ring_head_;
  return ring[(head + kRingSize - distance) % kRingSize];
}

ArchReg TraceGenerator::alloc_dest(bool fp) {
  unsigned& rr = fp ? fp_rr_ : int_rr_;
  const auto base = static_cast<ArchReg>(fp ? isa::kIntArchRegs + 1 : 1);
  const auto reg = static_cast<ArchReg>(base + rr);
  rr = (rr + 1) % kDestPool;
  auto& ring = fp ? fp_ring_ : int_ring_;
  unsigned& head = fp ? fp_ring_head_ : int_ring_head_;
  ring[head] = reg;
  head = (head + 1) % kRingSize;
  return reg;
}

Addr TraceGenerator::sample_mem_addr() {
  const double u = rng_.next_double();
  Addr offset;
  if (u < profile_.hot_frac) {
    // Stack / scalar locals: a tiny region that always stays cached.
    offset = rng_.next_below(kHotRegionBytes);
  } else if (u < profile_.hot_frac + profile_.warm_frac) {
    // Current working objects: mostly L1-resident.  The warm window drifts
    // slowly through the footprint so the L2 also sees reuse and turnover.
    const Addr warm = std::min<Addr>(profile_.warm_bytes, profile_.data_footprint);
    if (rng_.chance(1e-4)) {
      warm_base_ = rng_.next_below(profile_.data_footprint);
    }
    offset = (warm_base_ + rng_.next_below(warm)) % profile_.data_footprint;
  } else if (u < profile_.hot_frac + profile_.warm_frac + profile_.stream_frac) {
    Addr& pos = stream_pos_[next_stream_];
    next_stream_ = (next_stream_ + 1) % stream_pos_.size();
    pos += profile_.stream_stride;
    if (pos >= profile_.data_footprint) pos = 0;
    offset = pos;
  } else {
    offset = rng_.next_below(profile_.data_footprint);
  }
  return (layout_.data_base + offset) & ~Addr{7};
}

isa::DynInst TraceGenerator::make_non_branch(Addr pc) {
  isa::DynInst inst;
  inst.pc = pc;
  inst.next_pc = pc + kInstBytes;
  const std::size_t pick =
      rng_.next_index({non_branch_cum_.data(), non_branch_count_});
  inst.op = non_branch_ops_[pick];

  using isa::OpClass;
  switch (inst.op) {
    case OpClass::kLoad: {
      inst.src[0] = sample_source(/*fp=*/false,
                                  rng_.chance(profile_.load_addr_old_frac));
      const bool fp_dest = rng_.chance(profile_.fp_load_frac);
      inst.dest = alloc_dest(fp_dest);
      inst.mem_addr = sample_mem_addr();
      break;
    }
    case OpClass::kStore: {
      inst.src[0] = sample_source(/*fp=*/false,
                                  rng_.chance(profile_.load_addr_old_frac));
      const bool fp_data = rng_.chance(profile_.fp_store_frac);
      inst.src[1] = sample_source(fp_data);       // store data
      inst.mem_addr = sample_mem_addr();
      break;
    }
    case OpClass::kFpSqrt: {
      inst.src[0] = sample_source(/*fp=*/true);
      inst.dest = alloc_dest(/*fp=*/true);
      break;
    }
    case OpClass::kFpAdd:
    case OpClass::kFpMult:
    case OpClass::kFpDiv: {
      inst.src[0] = sample_source(/*fp=*/true);
      if (rng_.chance(profile_.two_source_frac)) {
        inst.src[1] = sample_source(/*fp=*/true, /*older=*/true);
      }
      inst.dest = alloc_dest(/*fp=*/true);
      break;
    }
    default: {  // integer ALU / mult / div
      inst.src[0] = sample_source(/*fp=*/false);
      if (rng_.chance(profile_.two_source_frac)) {
        inst.src[1] = sample_source(/*fp=*/false, /*older=*/true);
      }
      inst.dest = alloc_dest(/*fp=*/false);
      break;
    }
  }
  return inst;
}

isa::DynInst TraceGenerator::make_branch(Block& block, Addr pc) {
  isa::DynInst inst;
  inst.pc = pc;
  inst.op = isa::OpClass::kBranch;
  if (!block.unconditional) {
    inst.src[0] = sample_source(/*fp=*/false);
    if (rng_.chance(0.5 * profile_.two_source_frac)) {
      inst.src[1] = sample_source(/*fp=*/false);
    }
  }
  if (block.unconditional) {
    inst.taken = true;
  } else if (block.trip > 0) {
    ++block.trip_count;
    const bool preferred = block.trip_count % block.trip != 0;
    inst.taken = preferred == block.prefer_taken;
  } else {
    inst.taken = rng_.chance(block.taken_bias);
  }
  const std::uint32_t next_block =
      inst.taken ? block.target
                 : (cur_block_ + 1) % static_cast<std::uint32_t>(blocks_.size());
  inst.next_pc = blocks_[next_block].start_pc;
  cur_block_ = next_block;
  pos_in_block_ = 0;
  return inst;
}

std::size_t TraceGenerator::block_of(Addr pc) const {
  const Addr code_end = blocks_.back().start_pc + blocks_.back().length * kInstBytes;
  if (pc < layout_.code_base || pc >= code_end) {
    pc = layout_.code_base + (pc % (code_end - layout_.code_base)) / kInstBytes *
                                 kInstBytes;
  }
  // First block whose start_pc is greater than pc, minus one.
  std::size_t lo = 0, hi = blocks_.size();
  while (lo + 1 < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (blocks_[mid].start_pc <= pc) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

bool TraceGenerator::is_branch_slot(Addr pc) const {
  const Block& b = blocks_[block_of(pc)];
  return pc >= b.start_pc && pc == b.start_pc + (b.length - 1) * kInstBytes;
}

Addr TraceGenerator::fallthrough_of(Addr pc) const {
  const std::size_t idx = block_of(pc);
  const Block& b = blocks_[idx];
  const Addr next = pc + kInstBytes;
  const Addr block_end = b.start_pc + b.length * kInstBytes;
  if (next < block_end) return next;
  return blocks_[(idx + 1) % blocks_.size()].start_pc;
}

isa::DynInst TraceGenerator::synthesize_wrong_path(Addr pc, Rng& rng) const {
  const std::size_t idx = block_of(pc);
  const Block& b = blocks_[idx];
  const Addr folded =
      pc >= b.start_pc && pc < b.start_pc + b.length * kInstBytes ? pc : b.start_pc;

  isa::DynInst inst;
  inst.pc = folded;
  inst.next_pc = fallthrough_of(folded);
  if (is_branch_slot(folded)) {
    inst.op = isa::OpClass::kBranch;
    if (!b.unconditional) {
      inst.src[0] = static_cast<ArchReg>(1 + rng.next_below(kDestPool));
    }
    // Direction and target are the front end's (predictor's) business on
    // the wrong path; `taken` is never consulted for these instructions.
    return inst;
  }

  // Sample a plausible non-branch operation and operands.  Dependencies are
  // drawn over the recently-writable register window; actual readiness is
  // whatever the rename map says, which is exactly the point: wrong-path
  // instructions compete for real resources.
  const std::size_t pick = rng.next_index({non_branch_cum_.data(), non_branch_count_});
  inst.op = non_branch_ops_[pick];
  const bool fp = isa::writes_fp_reg(inst.op) ||
                  (inst.op == isa::OpClass::kLoad && rng.chance(profile_.fp_load_frac));
  const auto reg_of = [&rng](bool want_fp) {
    const auto base = static_cast<ArchReg>(want_fp ? isa::kIntArchRegs + 1 : 1);
    return static_cast<ArchReg>(base + rng.next_below(kDestPool));
  };
  switch (inst.op) {
    case isa::OpClass::kLoad:
      inst.src[0] = reg_of(false);
      inst.dest = reg_of(fp);
      inst.mem_addr =
          (layout_.data_base + rng.next_below(profile_.data_footprint)) & ~Addr{7};
      break;
    case isa::OpClass::kStore:
      inst.src[0] = reg_of(false);
      inst.src[1] = reg_of(rng.chance(profile_.fp_store_frac));
      inst.mem_addr =
          (layout_.data_base + rng.next_below(profile_.data_footprint)) & ~Addr{7};
      break;
    default:
      inst.src[0] = reg_of(isa::writes_fp_reg(inst.op));
      if (rng.chance(profile_.two_source_frac)) {
        inst.src[1] = reg_of(isa::writes_fp_reg(inst.op));
      }
      inst.dest = reg_of(isa::writes_fp_reg(inst.op));
      break;
  }
  return inst;
}

isa::DynInst TraceGenerator::next() {
  Block& block = blocks_[cur_block_];
  const Addr pc = block.start_pc + Addr{pos_in_block_} * kInstBytes;
  isa::DynInst inst;
  if (pos_in_block_ + 1 >= block.length) {
    inst = make_branch(block, pc);  // resets cur_block_/pos_in_block_
  } else {
    inst = make_non_branch(pc);
    ++pos_in_block_;
  }
  inst.seq = next_seq_++;
  return inst;
}

void TraceGenerator::state_io(persist::Archive& ar) {
  ar.section("trace-generator");
  if (ar.saving()) rng_.save_state(ar); else rng_.load_state(ar);
  // Static CFG shape is reconstructed from (profile, seed); only the
  // per-block walk counters are dynamic.
  std::uint64_t block_count = blocks_.size();
  ar.io(block_count);
  if (!ar.saving() && block_count != blocks_.size()) {
    throw persist::PersistError(
        "checkpoint: static CFG shape mismatch (different profile or seed)");
  }
  for (Block& b : blocks_) ar.io(b.trip_count);
  ar.io(cur_block_);
  ar.io(pos_in_block_);
  ar.io(next_seq_);
  for (ArchReg& r : int_ring_) ar.io(r);
  for (ArchReg& r : fp_ring_) ar.io(r);
  ar.io(int_ring_head_);
  ar.io(fp_ring_head_);
  ar.io(int_rr_);
  ar.io(fp_rr_);
  ar.io(stream_pos_);
  std::uint64_t next_stream = next_stream_;
  ar.io(next_stream);
  next_stream_ = static_cast<std::size_t>(next_stream);
  ar.io(warm_base_);
}

MSIM_PERSIST_VIA_STATE_IO(TraceGenerator)

}  // namespace msim::trace
