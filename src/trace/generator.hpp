// Synthetic dynamic instruction stream generator.
//
// Replaces SPEC CPU2000 binary execution (licensing-gated; see DESIGN.md).
// At construction the generator materializes a *static program*: a control
// flow graph of basic blocks with fixed branch biases and fixed taken
// targets laid out over the profile's code footprint.  The dynamic stream
// is a walk of that CFG, so downstream structures observe realistic
// behaviour:
//   * the branch predictor sees per-static-branch biased outcome streams,
//   * the BTB sees stable targets,
//   * the I-cache sees the real code footprint with loop locality,
//   * register dependencies follow the profile's distance distribution, and
//   * data addresses follow the profile's hot/stream/random locality mix.
//
// Everything is deterministic given (profile, seed).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "isa/instruction.hpp"
#include "trace/profile.hpp"

namespace msim::persist {
class Archive;
}

namespace msim::trace {

/// Per-thread address-space layout.  Threads get disjoint virtual regions;
/// interference still happens where it should (in the shared caches, via
/// index conflicts and capacity pressure).
struct AddressSpace {
  Addr code_base = 0x0040'0000;
  Addr data_base = 0x1000'0000;

  /// Conventional layout for hardware thread `tid`.
  static AddressSpace for_thread(ThreadId tid) noexcept {
    const Addr stride = Addr{1} << 40;
    return {.code_base = 0x0040'0000 + stride * tid,
            .data_base = 0x1000'0000 + stride * tid};
  }
};

/// Generates the dynamic instruction stream for one thread context.
class TraceGenerator {
 public:
  TraceGenerator(const BenchmarkProfile& profile, std::uint64_t seed,
                 AddressSpace layout = {});

  /// Next instruction in program order.  The stream is infinite.
  isa::DynInst next();

  /// Synthesizes a plausible instruction at `pc` for wrong-path execution
  /// (after a branch misprediction the front end runs down the predicted
  /// path until the branch resolves).  The architectural walk is not
  /// disturbed: randomness comes from the caller's `rng`, operand and
  /// address choices are sampled fresh, and control flow is left to the
  /// caller (wrong-path direction comes from the predictor).  `pc` values
  /// outside the code region are folded back into it.
  isa::DynInst synthesize_wrong_path(Addr pc, Rng& rng) const;

  /// True when `pc` falls on the final (branch) slot of its basic block.
  [[nodiscard]] bool is_branch_slot(Addr pc) const;
  /// The fall-through successor of the instruction at `pc`.
  [[nodiscard]] Addr fallthrough_of(Addr pc) const;

  [[nodiscard]] const BenchmarkProfile& profile() const noexcept { return profile_; }
  [[nodiscard]] SeqNum generated() const noexcept { return next_seq_; }
  [[nodiscard]] std::size_t static_block_count() const noexcept { return blocks_.size(); }

  /// Checkpoint support.  The static CFG is rebuilt deterministically from
  /// (profile, seed) at construction; only the walk state (RNG, block
  /// cursor, per-block trip counters, dependence rings, stream cursors) is
  /// serialized, and it is loaded over a freshly constructed generator with
  /// the same profile and seed.
  void save_state(persist::Archive& ar) const;
  void load_state(persist::Archive& ar);

 private:
  void state_io(persist::Archive& ar);

  struct Block {
    Addr start_pc = 0;          ///< address of the first instruction
    std::uint32_t length = 1;   ///< instructions, including the final branch
    std::uint32_t target = 0;   ///< taken-path successor block index
    /// Loop-style branches repeat a deterministic trip pattern: `trip - 1`
    /// occurrences of the preferred direction, then one of the other.
    /// 0 marks an unpredictable branch driven by `taken_bias` instead.
    std::uint32_t trip = 0;
    std::uint32_t trip_count = 0;   ///< walk state for the pattern
    float taken_bias = 0.5f;        ///< P(taken) for unpredictable branches
    bool prefer_taken = true;       ///< pattern's dominant direction
    bool unconditional = false;     ///< always taken (jump/call)
  };

  void build_static_cfg();
  /// Index of the block containing `pc` (pc folded into the code region).
  [[nodiscard]] std::size_t block_of(Addr pc) const;
  isa::DynInst make_non_branch(Addr pc);
  isa::DynInst make_branch(Block& block, Addr pc);

  /// Samples a register source operand of the given class, or kNoArchReg
  /// for a "far" (always-ready) operand.  With `older`, the operand is
  /// biased toward long-distance producers (accumulators, indices computed
  /// well in advance), as is typical of second operands and array address
  /// bases in real code.
  ArchReg sample_source(bool fp, bool older = false);
  /// Allocates the next destination register of the given class and records
  /// it in the recent-producer ring.
  ArchReg alloc_dest(bool fp);
  Addr sample_mem_addr();

  BenchmarkProfile profile_;
  AddressSpace layout_;
  Rng rng_;

  // Static program.
  std::vector<Block> blocks_;
  std::array<double, isa::kOpClassCount - 1> non_branch_cum_{};  ///< cumulative op-mix, branch excluded
  std::array<isa::OpClass, isa::kOpClassCount - 1> non_branch_ops_{};
  std::size_t non_branch_count_ = 0;

  // Walk state.
  std::uint32_t cur_block_ = 0;
  std::uint32_t pos_in_block_ = 0;
  SeqNum next_seq_ = 0;

  // Register dependence state: ring buffers of the most recent destination
  // registers of each class.  Destinations are allocated round-robin over a
  // pool larger than the ring, so "the register written d instructions ago"
  // is still architecturally live for every representable distance d.
  static constexpr unsigned kRingSize = 24;
  static constexpr unsigned kDestPool = 28;  ///< regs 1..28 (and fp mirror)
  std::array<ArchReg, kRingSize> int_ring_{};
  std::array<ArchReg, kRingSize> fp_ring_{};
  unsigned int_ring_head_ = 0;
  unsigned fp_ring_head_ = 0;
  unsigned int_rr_ = 0;
  unsigned fp_rr_ = 0;

  // Code-locality structure (see build_static_cfg).
  static constexpr std::uint32_t kRegionBlocks = 64;
  static constexpr double kRegionExitFrac = 0.08;

  // Data-address state.
  std::vector<Addr> stream_pos_;
  std::size_t next_stream_ = 0;
  Addr warm_base_ = 0;
};

}  // namespace msim::trace
