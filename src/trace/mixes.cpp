#include "trace/mixes.hpp"

#include <stdexcept>

#include "common/check.hpp"
#include "trace/profile.hpp"

namespace msim::trace {
namespace {

// Paper Table 3 (2-threaded workloads).
constexpr WorkloadMix k2T[] = {
    {"2T-mix1", 2, {"equake", "lucas"}},
    {"2T-mix2", 2, {"twolf", "vpr"}},
    {"2T-mix3", 2, {"gcc", "bzip2"}},
    {"2T-mix4", 2, {"mgrid", "galgel"}},
    {"2T-mix5", 2, {"facerec", "wupwise"}},
    {"2T-mix6", 2, {"crafty", "gzip"}},
    {"2T-mix7", 2, {"parser", "vortex"}},
    {"2T-mix8", 2, {"swim", "gap"}},
    {"2T-mix9", 2, {"twolf", "bzip2"}},
    {"2T-mix10", 2, {"equake", "gcc"}},
    {"2T-mix11", 2, {"applu", "mesa"}},
    {"2T-mix12", 2, {"ammp", "gzip"}},
};

// Paper Table 4 (3-threaded workloads).
constexpr WorkloadMix k3T[] = {
    {"3T-mix1", 3, {"mgrid", "equake", "art"}},
    {"3T-mix2", 3, {"twolf", "vpr", "swim"}},
    {"3T-mix3", 3, {"applu", "ammp", "mgrid"}},
    {"3T-mix4", 3, {"gcc", "bzip2", "eon"}},
    {"3T-mix5", 3, {"facerec", "crafty", "perlbmk"}},
    {"3T-mix6", 3, {"wupwise", "gzip", "vortex"}},
    {"3T-mix7", 3, {"parser", "equake", "mesa"}},
    {"3T-mix8", 3, {"perlbmk", "parser", "crafty"}},
    {"3T-mix9", 3, {"art", "lucas", "galgel"}},
    {"3T-mix10", 3, {"parser", "bzip2", "gcc"}},
    {"3T-mix11", 3, {"gzip", "wupwise", "fma3d"}},
    {"3T-mix12", 3, {"vortex", "eon", "mgrid"}},
};

// Paper Table 2 (4-threaded workloads).
constexpr WorkloadMix k4T[] = {
    {"4T-mix1", 4, {"mgrid", "equake", "art", "lucas"}},
    {"4T-mix2", 4, {"twolf", "vpr", "swim", "parser"}},
    {"4T-mix3", 4, {"applu", "ammp", "mgrid", "galgel"}},
    {"4T-mix4", 4, {"gcc", "bzip2", "eon", "apsi"}},
    {"4T-mix5", 4, {"facerec", "crafty", "perlbmk", "gap"}},
    {"4T-mix6", 4, {"wupwise", "gzip", "vortex", "mesa"}},
    {"4T-mix7", 4, {"parser", "equake", "mesa", "vortex"}},
    {"4T-mix8", 4, {"parser", "swim", "crafty", "perlbmk"}},
    {"4T-mix9", 4, {"art", "lucas", "galgel", "gcc"}},
    {"4T-mix10", 4, {"parser", "swim", "gcc", "bzip2"}},
    {"4T-mix11", 4, {"gzip", "wupwise", "fma3d", "apsi"}},
    {"4T-mix12", 4, {"vortex", "mesa", "mgrid", "eon"}},
};

std::vector<WorkloadMix> build_all() {
  std::vector<WorkloadMix> all;
  all.insert(all.end(), std::begin(k2T), std::end(k2T));
  all.insert(all.end(), std::begin(k3T), std::end(k3T));
  all.insert(all.end(), std::begin(k4T), std::end(k4T));
  return all;
}

}  // namespace

std::span<const WorkloadMix> mixes_for(unsigned thread_count) {
  switch (thread_count) {
    case 2: return k2T;
    case 3: return k3T;
    case 4: return k4T;
    default:
      throw std::invalid_argument("mixes are defined for 2, 3 or 4 threads");
  }
}

std::span<const WorkloadMix> all_mixes() noexcept {
  static const std::vector<WorkloadMix> all = build_all();
  return all;
}

const WorkloadMix& mix_or_throw(std::string_view name) {
  for (const WorkloadMix& mix : all_mixes()) {
    if (mix.name == name) return mix;
  }
  throw std::invalid_argument("unknown workload mix: '" + std::string(name) + "'");
}

std::string describe_mix(const WorkloadMix& mix) {
  unsigned counts[3] = {0, 0, 0};
  for (std::string_view bench : mix.threads()) {
    const BenchmarkProfile& p = profile_or_throw(bench);
    ++counts[static_cast<unsigned>(p.ilp)];
  }
  std::string out;
  static constexpr std::string_view kNames[] = {"LOW", "MED", "HIGH"};
  for (unsigned c = 0; c < 3; ++c) {
    if (counts[c] == 0) continue;
    if (!out.empty()) out += " + ";
    out += std::to_string(counts[c]);
    out += ' ';
    out += kNames[c];
  }
  return out;
}

}  // namespace msim::trace
