#include "trace/profile.hpp"

#include <stdexcept>
#include <string>

namespace msim::trace {
namespace {

/// Builds the op-weight array in OpClass order (weights are relative;
/// the generator normalizes).
constexpr std::array<double, isa::kOpClassCount> weights(
    double int_alu, double int_mult, double int_div, double load, double store,
    double fp_add, double fp_mult, double fp_div, double fp_sqrt, double branch) {
  return {int_alu, int_mult, int_div, load, store,
          fp_add,  fp_mult,  fp_div,  fp_sqrt, branch};
}

constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = 1024 * kKiB;

// Profile conventions, by ILP class (Section 2 of the paper classifies the
// benchmarks by single-threaded IPC: low = memory bound, high = execution
// bound):
//
//   LOW    : multi-MiB-to-tens-of-MiB footprints with a large share of
//            cache-hostile accesses that miss into L2 and memory, short
//            dependence distances (pointer chasing / serial recurrences),
//            and -- for the integer codes -- hard-to-predict branches.
//   MEDIUM : footprints around the L2 capacity with moderate L1 missing
//            and middling dependence distances.
//   HIGH   : L1-friendly working sets, long dependence distances (wide
//            independent work), highly predictable control flow.
//
// The class membership below is inferred from the paper's own mix tables
// (Tables 2-4): e.g. Table 3 Mix 1 "2 LOW" = {equake, lucas}, Mix 7
// "1 LOW + 1 HIGH" = {parser, vortex}, Mix 9 "1 LOW + 1 MED" =
// {twolf, bzip2}, Mix 11 "1 MED + 1 HIGH" = {applu, mesa}, etc.
constexpr BenchmarkProfile kProfiles[] = {
    // ---------------------------------------------------------- LOW ILP --
    {.name = "art", .ilp = IlpClass::kLow,
     .op_weights = weights(0.24, 0.004, 0.001, 0.30, 0.09, 0.20, 0.11, 0.006, 0.0, 0.059),
     .two_source_frac = 0.62, .far_operand_frac = 0.22,
     .dep_near_frac = 0.82, .dep_near_p = 0.52, .dep_far_p = 0.14,
     .load_addr_old_frac = 0.7,
     .fp_load_frac = 0.65, .fp_store_frac = 0.6,
     .data_footprint = 24 * kMiB,
     .hot_frac = 0.25, .warm_frac = 0.14, .warm_bytes = 16 * kKiB,
     .stream_frac = 0.36, .stream_stride = 8, .stream_count = 4,
     .code_footprint = 16 * kKiB,
     .branch_predictable_frac = 0.92, .mean_loop_trip = 48, .branch_uncond_frac = 0.10},
    {.name = "equake", .ilp = IlpClass::kLow,
     .op_weights = weights(0.22, 0.004, 0.001, 0.31, 0.08, 0.19, 0.13, 0.010, 0.0, 0.055),
     .two_source_frac = 0.64, .far_operand_frac = 0.22,
     .dep_near_frac = 0.8, .dep_near_p = 0.5, .dep_far_p = 0.14,
     .load_addr_old_frac = 0.65,
     .fp_load_frac = 0.7, .fp_store_frac = 0.65,
     .data_footprint = 40 * kMiB,
     .hot_frac = 0.28, .warm_frac = 0.16, .warm_bytes = 16 * kKiB,
     .stream_frac = 0.32, .stream_stride = 24, .stream_count = 3,
     .code_footprint = 24 * kKiB,
     .branch_predictable_frac = 0.92, .mean_loop_trip = 48, .branch_uncond_frac = 0.10},
    {.name = "lucas", .ilp = IlpClass::kLow,
     .op_weights = weights(0.18, 0.003, 0.0, 0.30, 0.12, 0.20, 0.15, 0.004, 0.0, 0.043),
     .two_source_frac = 0.66, .far_operand_frac = 0.24,
     .dep_near_frac = 0.78, .dep_near_p = 0.48, .dep_far_p = 0.13,
     .load_addr_old_frac = 0.8,
     .fp_load_frac = 0.8, .fp_store_frac = 0.8,
     .data_footprint = 96 * kMiB,
     .hot_frac = 0.22, .warm_frac = 0.12, .warm_bytes = 16 * kKiB,
     .stream_frac = 0.50, .stream_stride = 64, .stream_count = 2,
     .code_footprint = 12 * kKiB,
     .branch_predictable_frac = 0.95, .mean_loop_trip = 80, .branch_uncond_frac = 0.08},
    {.name = "swim", .ilp = IlpClass::kLow,
     .op_weights = weights(0.16, 0.002, 0.0, 0.31, 0.13, 0.22, 0.13, 0.004, 0.0, 0.034),
     .two_source_frac = 0.66, .far_operand_frac = 0.24,
     .dep_near_frac = 0.78, .dep_near_p = 0.46, .dep_far_p = 0.13,
     .load_addr_old_frac = 0.85,
     .fp_load_frac = 0.85, .fp_store_frac = 0.85,
     .data_footprint = 64 * kMiB,
     .hot_frac = 0.18, .warm_frac = 0.12, .warm_bytes = 16 * kKiB,
     .stream_frac = 0.58, .stream_stride = 8, .stream_count = 6,
     .code_footprint = 10 * kKiB,
     .branch_predictable_frac = 0.96, .mean_loop_trip = 96, .branch_uncond_frac = 0.06},
    {.name = "parser", .ilp = IlpClass::kLow,
     .op_weights = weights(0.42, 0.006, 0.002, 0.27, 0.10, 0.0, 0.0, 0.0, 0.0, 0.202),
     .two_source_frac = 0.55, .far_operand_frac = 0.24,
     .dep_near_frac = 0.84, .dep_near_p = 0.55, .dep_far_p = 0.15,
     .load_addr_old_frac = 0.15,
     .data_footprint = 30 * kMiB,
     .hot_frac = 0.48, .warm_frac = 0.24, .warm_bytes = 32 * kKiB,
     .stream_frac = 0.06, .stream_stride = 8, .stream_count = 2,
     .code_footprint = 96 * kKiB,
     .branch_predictable_frac = 0.80, .mean_loop_trip = 10, .branch_uncond_frac = 0.18},
    {.name = "twolf", .ilp = IlpClass::kLow,
     .op_weights = weights(0.43, 0.010, 0.003, 0.26, 0.09, 0.004, 0.003, 0.001, 0.0, 0.199),
     .two_source_frac = 0.56, .far_operand_frac = 0.24,
     .dep_near_frac = 0.84, .dep_near_p = 0.55, .dep_far_p = 0.15,
     .load_addr_old_frac = 0.12,
     .data_footprint = 8 * kMiB,
     .hot_frac = 0.46, .warm_frac = 0.24, .warm_bytes = 32 * kKiB,
     .stream_frac = 0.04, .stream_stride = 8, .stream_count = 2,
     .code_footprint = 72 * kKiB,
     .branch_predictable_frac = 0.76, .mean_loop_trip = 10, .branch_uncond_frac = 0.14},
    {.name = "vpr", .ilp = IlpClass::kLow,
     .op_weights = weights(0.40, 0.008, 0.002, 0.27, 0.10, 0.02, 0.01, 0.004, 0.0, 0.186),
     .two_source_frac = 0.56, .far_operand_frac = 0.24,
     .dep_near_frac = 0.83, .dep_near_p = 0.54, .dep_far_p = 0.15,
     .load_addr_old_frac = 0.15,
     .fp_load_frac = 0.06, .fp_store_frac = 0.05,
     .data_footprint = 12 * kMiB,
     .hot_frac = 0.47, .warm_frac = 0.25, .warm_bytes = 32 * kKiB,
     .stream_frac = 0.05, .stream_stride = 8, .stream_count = 2,
     .code_footprint = 80 * kKiB,
     .branch_predictable_frac = 0.78, .mean_loop_trip = 10, .branch_uncond_frac = 0.15},
    // ------------------------------------------------------- MEDIUM ILP --
    {.name = "ammp", .ilp = IlpClass::kMedium,
     .op_weights = weights(0.22, 0.004, 0.001, 0.28, 0.08, 0.19, 0.15, 0.016, 0.004, 0.055),
     .two_source_frac = 0.62, .far_operand_frac = 0.28,
     .dep_near_frac = 0.68, .dep_near_p = 0.44, .dep_far_p = 0.11,
     .load_addr_old_frac = 0.55,
     .fp_load_frac = 0.7, .fp_store_frac = 0.65,
     .data_footprint = 3 * kMiB,
     .hot_frac = 0.46, .warm_frac = 0.26, .warm_bytes = 24 * kKiB,
     .stream_frac = 0.20, .stream_stride = 16, .stream_count = 4,
     .code_footprint = 32 * kKiB,
     .branch_predictable_frac = 0.92, .mean_loop_trip = 40, .branch_uncond_frac = 0.10},
    {.name = "applu", .ilp = IlpClass::kMedium,
     .op_weights = weights(0.18, 0.003, 0.0, 0.28, 0.10, 0.22, 0.17, 0.012, 0.0, 0.035),
     .two_source_frac = 0.66, .far_operand_frac = 0.28,
     .dep_near_frac = 0.64, .dep_near_p = 0.42, .dep_far_p = 0.10,
     .load_addr_old_frac = 0.75,
     .fp_load_frac = 0.8, .fp_store_frac = 0.8,
     .data_footprint = 4 * kMiB,
     .hot_frac = 0.40, .warm_frac = 0.24, .warm_bytes = 24 * kKiB,
     .stream_frac = 0.32, .stream_stride = 8, .stream_count = 5,
     .code_footprint = 24 * kKiB,
     .branch_predictable_frac = 0.95, .mean_loop_trip = 80, .branch_uncond_frac = 0.06},
    {.name = "bzip2", .ilp = IlpClass::kMedium,
     .op_weights = weights(0.46, 0.008, 0.002, 0.25, 0.10, 0.0, 0.0, 0.0, 0.0, 0.180),
     .two_source_frac = 0.58, .far_operand_frac = 0.28,
     .dep_near_frac = 0.7, .dep_near_p = 0.46, .dep_far_p = 0.12,
     .load_addr_old_frac = 0.45,
     .data_footprint = 2 * kMiB,
     .hot_frac = 0.50, .warm_frac = 0.26, .warm_bytes = 32 * kKiB,
     .stream_frac = 0.16, .stream_stride = 4, .stream_count = 3,
     .code_footprint = 40 * kKiB,
     .branch_predictable_frac = 0.86, .mean_loop_trip = 14, .branch_uncond_frac = 0.12},
    {.name = "fma3d", .ilp = IlpClass::kMedium,
     .op_weights = weights(0.21, 0.004, 0.001, 0.27, 0.09, 0.21, 0.15, 0.012, 0.002, 0.051),
     .two_source_frac = 0.64, .far_operand_frac = 0.28,
     .dep_near_frac = 0.64, .dep_near_p = 0.42, .dep_far_p = 0.10,
     .load_addr_old_frac = 0.6,
     .fp_load_frac = 0.72, .fp_store_frac = 0.7,
     .data_footprint = 5 * kMiB,
     .hot_frac = 0.44, .warm_frac = 0.24, .warm_bytes = 24 * kKiB,
     .stream_frac = 0.24, .stream_stride = 24, .stream_count = 4,
     .code_footprint = 128 * kKiB,
     .branch_predictable_frac = 0.93, .mean_loop_trip = 48, .branch_uncond_frac = 0.10},
    {.name = "galgel", .ilp = IlpClass::kMedium,
     .op_weights = weights(0.17, 0.003, 0.0, 0.28, 0.09, 0.23, 0.18, 0.008, 0.0, 0.039),
     .two_source_frac = 0.66, .far_operand_frac = 0.3,
     .dep_near_frac = 0.62, .dep_near_p = 0.4, .dep_far_p = 0.10,
     .load_addr_old_frac = 0.75,
     .fp_load_frac = 0.82, .fp_store_frac = 0.8,
     .data_footprint = 2 * kMiB,
     .hot_frac = 0.42, .warm_frac = 0.24, .warm_bytes = 24 * kKiB,
     .stream_frac = 0.32, .stream_stride = 8, .stream_count = 6,
     .code_footprint = 20 * kKiB,
     .branch_predictable_frac = 0.95, .mean_loop_trip = 80, .branch_uncond_frac = 0.06},
    {.name = "gcc", .ilp = IlpClass::kMedium,
     .op_weights = weights(0.45, 0.006, 0.002, 0.25, 0.12, 0.0, 0.0, 0.0, 0.0, 0.172),
     .two_source_frac = 0.54, .far_operand_frac = 0.28,
     .dep_near_frac = 0.72, .dep_near_p = 0.48, .dep_far_p = 0.12,
     .load_addr_old_frac = 0.35,
     .data_footprint = 3 * kMiB,
     .hot_frac = 0.52, .warm_frac = 0.28, .warm_bytes = 32 * kKiB,
     .stream_frac = 0.08, .stream_stride = 8, .stream_count = 2,
     .code_footprint = 320 * kKiB,
     .branch_predictable_frac = 0.86, .mean_loop_trip = 12, .branch_uncond_frac = 0.20},
    {.name = "mgrid", .ilp = IlpClass::kMedium,
     .op_weights = weights(0.15, 0.002, 0.0, 0.30, 0.08, 0.24, 0.18, 0.006, 0.0, 0.032),
     .two_source_frac = 0.68, .far_operand_frac = 0.3,
     .dep_near_frac = 0.62, .dep_near_p = 0.4, .dep_far_p = 0.10,
     .load_addr_old_frac = 0.85,
     .fp_load_frac = 0.85, .fp_store_frac = 0.85,
     .data_footprint = 6 * kMiB,
     .hot_frac = 0.34, .warm_frac = 0.22, .warm_bytes = 24 * kKiB,
     .stream_frac = 0.40, .stream_stride = 8, .stream_count = 6,
     .code_footprint = 12 * kKiB,
     .branch_predictable_frac = 0.97, .mean_loop_trip = 96, .branch_uncond_frac = 0.05},
    {.name = "wupwise", .ilp = IlpClass::kMedium,
     .op_weights = weights(0.19, 0.003, 0.0, 0.27, 0.09, 0.22, 0.18, 0.006, 0.0, 0.041),
     .two_source_frac = 0.66, .far_operand_frac = 0.3,
     .dep_near_frac = 0.62, .dep_near_p = 0.4, .dep_far_p = 0.10,
     .load_addr_old_frac = 0.7,
     .fp_load_frac = 0.8, .fp_store_frac = 0.78,
     .data_footprint = 2 * kMiB,
     .hot_frac = 0.44, .warm_frac = 0.26, .warm_bytes = 24 * kKiB,
     .stream_frac = 0.26, .stream_stride = 16, .stream_count = 4,
     .code_footprint = 24 * kKiB,
     .branch_predictable_frac = 0.95, .mean_loop_trip = 64, .branch_uncond_frac = 0.08},
    // --------------------------------------------------------- HIGH ILP --
    {.name = "apsi", .ilp = IlpClass::kHigh,
     .op_weights = weights(0.20, 0.004, 0.001, 0.26, 0.09, 0.22, 0.17, 0.008, 0.001, 0.046),
     .two_source_frac = 0.64, .far_operand_frac = 0.32,
     .dep_near_frac = 0.52, .dep_near_p = 0.5, .dep_far_p = 0.08,
     .load_addr_old_frac = 0.65,
     .fp_load_frac = 0.75, .fp_store_frac = 0.72,
     .data_footprint = 384 * kKiB,
     .hot_frac = 0.52, .warm_frac = 0.30, .warm_bytes = 24 * kKiB,
     .stream_frac = 0.15, .stream_stride = 8, .stream_count = 4,
     .code_footprint = 48 * kKiB,
     .branch_predictable_frac = 0.94, .mean_loop_trip = 48, .branch_uncond_frac = 0.08},
    {.name = "crafty", .ilp = IlpClass::kHigh,
     .op_weights = weights(0.50, 0.010, 0.002, 0.23, 0.08, 0.0, 0.0, 0.0, 0.0, 0.178),
     .two_source_frac = 0.60, .far_operand_frac = 0.32,
     .dep_near_frac = 0.54, .dep_near_p = 0.52, .dep_far_p = 0.08,
     .load_addr_old_frac = 0.5,
     .data_footprint = 256 * kKiB,
     .hot_frac = 0.56, .warm_frac = 0.30, .warm_bytes = 24 * kKiB,
     .stream_frac = 0.06, .stream_stride = 8, .stream_count = 2,
     .code_footprint = 160 * kKiB,
     .branch_predictable_frac = 0.91, .mean_loop_trip = 12, .branch_uncond_frac = 0.14},
    {.name = "eon", .ilp = IlpClass::kHigh,
     .op_weights = weights(0.38, 0.008, 0.002, 0.24, 0.10, 0.12, 0.08, 0.010, 0.002, 0.058),
     .two_source_frac = 0.60, .far_operand_frac = 0.32,
     .dep_near_frac = 0.52, .dep_near_p = 0.5, .dep_far_p = 0.08,
     .load_addr_old_frac = 0.55,
     .fp_load_frac = 0.3, .fp_store_frac = 0.28,
     .data_footprint = 128 * kKiB,
     .hot_frac = 0.58, .warm_frac = 0.30, .warm_bytes = 24 * kKiB,
     .stream_frac = 0.08, .stream_stride = 8, .stream_count = 2,
     .code_footprint = 128 * kKiB,
     .branch_predictable_frac = 0.94, .mean_loop_trip = 16, .branch_uncond_frac = 0.18},
    {.name = "facerec", .ilp = IlpClass::kHigh,
     .op_weights = weights(0.19, 0.003, 0.0, 0.27, 0.08, 0.23, 0.18, 0.006, 0.001, 0.040),
     .two_source_frac = 0.66, .far_operand_frac = 0.32,
     .dep_near_frac = 0.52, .dep_near_p = 0.5, .dep_far_p = 0.08,
     .load_addr_old_frac = 0.75,
     .fp_load_frac = 0.8, .fp_store_frac = 0.78,
     .data_footprint = 512 * kKiB,
     .hot_frac = 0.48, .warm_frac = 0.28, .warm_bytes = 24 * kKiB,
     .stream_frac = 0.22, .stream_stride = 8, .stream_count = 5,
     .code_footprint = 28 * kKiB,
     .branch_predictable_frac = 0.96, .mean_loop_trip = 80, .branch_uncond_frac = 0.06},
    {.name = "gap", .ilp = IlpClass::kHigh,
     .op_weights = weights(0.48, 0.012, 0.003, 0.24, 0.09, 0.0, 0.0, 0.0, 0.0, 0.175),
     .two_source_frac = 0.58, .far_operand_frac = 0.32,
     .dep_near_frac = 0.56, .dep_near_p = 0.52, .dep_far_p = 0.09,
     .load_addr_old_frac = 0.4,
     .data_footprint = 384 * kKiB,
     .hot_frac = 0.54, .warm_frac = 0.30, .warm_bytes = 24 * kKiB,
     .stream_frac = 0.10, .stream_stride = 8, .stream_count = 2,
     .code_footprint = 96 * kKiB,
     .branch_predictable_frac = 0.91, .mean_loop_trip = 14, .branch_uncond_frac = 0.16},
    {.name = "gzip", .ilp = IlpClass::kHigh,
     .op_weights = weights(0.49, 0.006, 0.001, 0.24, 0.09, 0.0, 0.0, 0.0, 0.0, 0.173),
     .two_source_frac = 0.58, .far_operand_frac = 0.32,
     .dep_near_frac = 0.56, .dep_near_p = 0.52, .dep_far_p = 0.09,
     .load_addr_old_frac = 0.5,
     .data_footprint = 192 * kKiB,
     .hot_frac = 0.54, .warm_frac = 0.28, .warm_bytes = 32 * kKiB,
     .stream_frac = 0.14, .stream_stride = 4, .stream_count = 3,
     .code_footprint = 32 * kKiB,
     .branch_predictable_frac = 0.90, .mean_loop_trip = 16, .branch_uncond_frac = 0.10},
    {.name = "mesa", .ilp = IlpClass::kHigh,
     .op_weights = weights(0.30, 0.006, 0.001, 0.25, 0.10, 0.16, 0.12, 0.008, 0.002, 0.053),
     .two_source_frac = 0.62, .far_operand_frac = 0.32,
     .dep_near_frac = 0.52, .dep_near_p = 0.5, .dep_far_p = 0.08,
     .load_addr_old_frac = 0.6,
     .fp_load_frac = 0.5, .fp_store_frac = 0.45,
     .data_footprint = 256 * kKiB,
     .hot_frac = 0.54, .warm_frac = 0.28, .warm_bytes = 24 * kKiB,
     .stream_frac = 0.14, .stream_stride = 16, .stream_count = 4,
     .code_footprint = 96 * kKiB,
     .branch_predictable_frac = 0.94, .mean_loop_trip = 24, .branch_uncond_frac = 0.12},
    {.name = "perlbmk", .ilp = IlpClass::kHigh,
     .op_weights = weights(0.47, 0.008, 0.002, 0.25, 0.10, 0.0, 0.0, 0.0, 0.0, 0.170),
     .two_source_frac = 0.56, .far_operand_frac = 0.32,
     .dep_near_frac = 0.56, .dep_near_p = 0.52, .dep_far_p = 0.09,
     .load_addr_old_frac = 0.45,
     .data_footprint = 320 * kKiB,
     .hot_frac = 0.54, .warm_frac = 0.28, .warm_bytes = 32 * kKiB,
     .stream_frac = 0.08, .stream_stride = 8, .stream_count = 2,
     .code_footprint = 224 * kKiB,
     .branch_predictable_frac = 0.91, .mean_loop_trip = 14, .branch_uncond_frac = 0.22},
    {.name = "vortex", .ilp = IlpClass::kHigh,
     .op_weights = weights(0.44, 0.006, 0.001, 0.26, 0.12, 0.0, 0.0, 0.0, 0.0, 0.173),
     .two_source_frac = 0.56, .far_operand_frac = 0.32,
     .dep_near_frac = 0.54, .dep_near_p = 0.52, .dep_far_p = 0.08,
     .load_addr_old_frac = 0.45,
     .data_footprint = 448 * kKiB,
     .hot_frac = 0.52, .warm_frac = 0.28, .warm_bytes = 32 * kKiB,
     .stream_frac = 0.10, .stream_stride = 8, .stream_count = 2,
     .code_footprint = 256 * kKiB,
     .branch_predictable_frac = 0.95, .mean_loop_trip = 16, .branch_uncond_frac = 0.20},
};

}  // namespace

std::string_view ilp_class_name(IlpClass c) noexcept {
  switch (c) {
    case IlpClass::kLow:    return "low";
    case IlpClass::kMedium: return "medium";
    case IlpClass::kHigh:   return "high";
  }
  return "unknown";
}

std::span<const BenchmarkProfile> all_profiles() noexcept { return kProfiles; }

std::optional<BenchmarkProfile> find_profile(std::string_view name) noexcept {
  for (const BenchmarkProfile& p : kProfiles) {
    if (p.name == name) return p;
  }
  return std::nullopt;
}

const BenchmarkProfile& profile_or_throw(std::string_view name) {
  for (const BenchmarkProfile& p : kProfiles) {
    if (p.name == name) return p;
  }
  throw std::invalid_argument("unknown benchmark profile: '" + std::string(name) + "'");
}

}  // namespace msim::trace
