// Binary trace serialization: record synthetic instruction streams to disk
// and load them back, for offline analysis, debugging, and interchange with
// external tools.
//
// Format (little-endian, fixed-size records):
//   8-byte magic "MSIMTRC1"
//   u64 instruction count
//   count records of PackedInst (see below)
//
// The format is self-contained and versioned by the magic; readers reject
// anything else.  Traces are analysis artifacts -- the simulator itself
// remains generator-driven (wrong-path synthesis needs the static CFG,
// which a flat trace cannot provide).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "isa/instruction.hpp"

namespace msim::trace {

/// Writes `instructions` to `path`.  Throws std::runtime_error on I/O
/// failure.
void write_trace(const std::string& path, std::span<const isa::DynInst> instructions);

/// Reads a trace written by write_trace.  Throws std::runtime_error on I/O
/// failure or format mismatch.
[[nodiscard]] std::vector<isa::DynInst> read_trace(const std::string& path);

/// Summary statistics of a recorded trace (the `trace_tool` example prints
/// these; they are also handy in tests).
struct TraceSummary {
  std::uint64_t instructions = 0;
  std::uint64_t branches = 0;
  std::uint64_t taken_branches = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t with_two_sources = 0;
  std::uint64_t unique_pcs = 0;
  double mean_block_length = 0.0;  ///< instructions per branch
};

[[nodiscard]] TraceSummary summarize_trace(std::span<const isa::DynInst> instructions);

}  // namespace msim::trace
