// The paper's multithreaded workloads (Tables 2, 3 and 4): 12 mixes each of
// 4, 3 and 2 threads, combining benchmarks of different ILP classes.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace msim::trace {

/// One multithreaded workload: an ordered set of benchmark names, one per
/// hardware thread context.
struct WorkloadMix {
  std::string_view name;          ///< e.g. "4T-mix3"
  std::uint8_t thread_count = 0;  ///< 2, 3 or 4
  std::array<std::string_view, 4> benchmarks{};  ///< first `thread_count` used

  [[nodiscard]] std::span<const std::string_view> threads() const noexcept {
    return {benchmarks.data(), thread_count};
  }
};

/// The 12 mixes with `thread_count` threads (2, 3 or 4), exactly as listed
/// in the paper's Tables 4, 3 and 2 respectively.
[[nodiscard]] std::span<const WorkloadMix> mixes_for(unsigned thread_count);

/// All 36 mixes (2T, then 3T, then 4T).
[[nodiscard]] std::span<const WorkloadMix> all_mixes() noexcept;

/// Looks up a mix by name; throws std::invalid_argument when unknown.
[[nodiscard]] const WorkloadMix& mix_or_throw(std::string_view name);

/// Human-readable classification of a mix ("2 LOW + 2 HIGH" etc.) derived
/// from the profiles' ILP classes.
[[nodiscard]] std::string describe_mix(const WorkloadMix& mix);

}  // namespace msim::trace
