#include "serve/ledger.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <map>
#include <sstream>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

#include "common/archive.hpp"  // PersistError
#include "common/json.hpp"
#include "persist/atomic_file.hpp"

namespace msim::serve {

namespace {

std::string header_line(std::uint64_t next_id) {
  return "{\"msim_job_ledger\": " + std::to_string(kLedgerFormatVersion) +
         ", \"next_id\": " + std::to_string(next_id) + "}\n";
}

std::string accepted_line(const LedgerJob& job) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.begin_object();
  w.kv("record", "accepted");
  w.kv("id", job.id);
  w.kv("priority", std::int64_t{job.priority});
  w.kv("sweep", job.sweep);
  if (!job.idempotency_key.empty()) {
    w.kv("idempotency_key", job.idempotency_key);
  }
  if (job.ttl_ms != 0) w.kv("ttl_ms", job.ttl_ms);
  w.key("config");
  w.begin_object();
  for (const auto& [key, value] : job.kv.entries()) w.kv(key, value);
  w.end_object();
  w.end_object();
  os << '\n';
  return os.str();
}

std::string transition_line(std::string_view record, std::uint64_t id,
                            std::string_view field, std::string_view text) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.begin_object();
  w.kv("record", record);
  w.kv("id", id);
  if (!field.empty()) w.kv(field, text);
  w.end_object();
  os << '\n';
  return os.str();
}

/// Applies one parsed record to the per-id merge.  Records can reach the
/// file in near-but-not-exact submission order (appends are serialized,
/// but a transition for job A may land before job B's `accepted`), so the
/// merge is keyed by id and tolerant of any inter-job interleaving.
void apply_record(std::map<std::uint64_t, LedgerJob>& jobs,
                  const JsonValue& rec) {
  const std::string& kind = rec.at("record").as_string();
  const auto id = static_cast<std::uint64_t>(rec.at("id").as_number());
  LedgerJob& job = jobs[id];
  job.id = id;
  if (kind == "accepted") {
    job.priority = static_cast<int>(rec.at("priority").as_number());
    job.sweep = rec.at("sweep").as_bool();
    if (rec.contains("idempotency_key")) {
      job.idempotency_key = rec.at("idempotency_key").as_string();
    }
    if (rec.contains("ttl_ms")) {
      job.ttl_ms = static_cast<std::uint64_t>(rec.at("ttl_ms").as_number());
    }
    KvConfig kv;
    for (const auto& [key, value] : rec.at("config").as_object()) {
      kv.set(key, value.as_string());
    }
    job.kv = std::move(kv);
  } else if (kind == "running") {
    job.started = true;
  } else if (kind == "done") {
    job.terminal = true;
    job.state = JobState::kDone;
    job.result_path = rec.at("result_path").as_string();
  } else if (kind == "failed" || kind == "cancelled" || kind == "expired") {
    job.terminal = true;
    job.state = kind == "failed"     ? JobState::kFailed
                : kind == "expired" ? JobState::kExpired
                                     : JobState::kCancelled;
    if (rec.contains("error")) job.error = rec.at("error").as_string();
  } else {
    throw std::invalid_argument("unknown ledger record kind '" + kind + "'");
  }
}

}  // namespace

std::string JobLedger::result_path(const std::string& dir, std::uint64_t id) {
  return dir + "/job" + std::to_string(id) + ".result.json";
}

JobLedger::JobLedger(std::string dir)
    : dir_(std::move(dir)), path_(dir_ + "/ledger.jsonl") {
  std::string existing;
  bool have_file = true;
  try {
    existing = persist::read_file(path_);
  } catch (const std::runtime_error&) {
    have_file = false;  // first start in this directory
  }

  if (have_file) {
    // Replay: strict header, then records until the first malformed line
    // (a torn tail from a crash mid-append -- everything before it counts).
    std::map<std::uint64_t, LedgerJob> jobs;
    std::size_t pos = 0;
    bool first = true;
    while (pos < existing.size()) {
      const std::size_t eol = existing.find('\n', pos);
      if (eol == std::string::npos) break;  // torn tail: no newline
      const std::string line = existing.substr(pos, eol - pos);
      pos = eol + 1;
      if (line.empty()) continue;
      if (first) {
        first = false;
        JsonValue header;
        try {
          header = JsonValue::parse(line);
        } catch (const std::invalid_argument&) {
          throw persist::PersistError("'" + path_ + "' is not a msim job ledger");
        }
        if (!header.is_object() || !header.contains("msim_job_ledger")) {
          throw persist::PersistError("'" + path_ + "' is not a msim job ledger");
        }
        const auto version = static_cast<std::uint32_t>(
            header.at("msim_job_ledger").as_number());
        if (version > kLedgerFormatVersion) {
          throw persist::PersistError(
              "'" + path_ + "' was written by ledger format version " +
              std::to_string(version) + " but this binary understands up to " +
              std::to_string(kLedgerFormatVersion) +
              "; run a newer msim_serve on this --journal-dir, or point this "
              "one at a fresh directory");
        }
        next_id_ = static_cast<std::uint64_t>(header.at("next_id").as_number());
        continue;
      }
      try {
        const JsonValue rec = JsonValue::parse(line);
        apply_record(jobs, rec);
      } catch (const std::invalid_argument&) {
        break;  // torn or corrupt record: stop here, keep the prefix
      }
    }
    if (first) {
      throw persist::PersistError("'" + path_ + "' is empty or has no ledger header");
    }
    recovered_.reserve(jobs.size());
    for (auto& [id, job] : jobs) {
      next_id_ = std::max(next_id_, id + 1);
      recovered_.push_back(std::move(job));
    }
  }

  // Compact: rewrite the merged state atomically (fresh header carrying the
  // persisted id counter, one `accepted` per live job plus its terminal
  // record), then reopen for appends.  This both bounds the file's size and
  // cuts any torn tail in one step -- the rename is the commit point.
  std::string compacted = header_line(next_id_);
  for (const LedgerJob& job : recovered_) {
    compacted += accepted_line(job);
    if (job.terminal) {
      switch (job.state) {
        case JobState::kDone:
          compacted += transition_line("done", job.id, "result_path",
                                       job.result_path);
          break;
        case JobState::kFailed:
          compacted += transition_line("failed", job.id, "error", job.error);
          break;
        case JobState::kExpired:
          compacted += transition_line("expired", job.id, "error", job.error);
          break;
        default:
          compacted += transition_line("cancelled", job.id, "error",
                                       job.error);
          break;
      }
    }
    // `running` records are deliberately dropped: a non-terminal job is
    // re-enqueued by recovery, and its journal (not the ledger) knows which
    // sweep cells finished.
  }
  persist::write_text_atomic(path_, compacted);

  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd_ < 0) {
    throw std::runtime_error("cannot open job ledger '" + path_ +
                             "' for appending: " + std::strerror(errno));
  }
}

JobLedger::~JobLedger() {
  if (fd_ >= 0) (void)::close(fd_);
}

void JobLedger::append_line(const std::string& line) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t written = 0;
  while (written < line.size()) {
    const ::ssize_t n =
        ::write(fd_, line.data() + written, line.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("ledger append failed for '" + path_ +
                               "': " + std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) {
    throw std::runtime_error("ledger fsync failed for '" + path_ +
                             "': " + std::strerror(errno));
  }
}

void JobLedger::record_accepted(const Job& job) {
  LedgerJob rec;
  rec.id = job.id;
  rec.priority = job.priority;
  rec.idempotency_key = job.idempotency_key;
  rec.ttl_ms = job.ttl_ms;
  rec.sweep = job.is_sweep;
  rec.kv = job.kv;
  append_line(accepted_line(rec));
}

void JobLedger::record_running(std::uint64_t id) {
  append_line(transition_line("running", id, "", ""));
}

void JobLedger::record_done(std::uint64_t id, const std::string& result_path) {
  append_line(transition_line("done", id, "result_path", result_path));
}

void JobLedger::record_failed(std::uint64_t id, const std::string& error) {
  append_line(transition_line("failed", id, "error", error));
}

void JobLedger::record_cancelled(std::uint64_t id, const std::string& error) {
  append_line(transition_line("cancelled", id, "error", error));
}

void JobLedger::record_expired(std::uint64_t id, const std::string& error) {
  append_line(transition_line("expired", id, "error", error));
}

}  // namespace msim::serve
