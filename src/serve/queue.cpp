#include "serve/queue.hpp"

#include <chrono>

#include "serve/http.hpp"

namespace msim::serve {

std::string_view job_state_name(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

void EventLog::append(std::string line) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;
    if (lines_.size() >= kMaxLines) {
      if (truncated_) return;
      truncated_ = true;
      lines_.push_back(
          R"({"kind":"events_truncated","detail":"event cap reached; further events dropped"})");
    } else {
      lines_.push_back(std::move(line));
    }
  }
  cv_.notify_all();
}

void EventLog::close() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

EventLog::Fetch EventLog::fetch(std::size_t index, int timeout_ms,
                                std::string& line) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
               [&] { return closed_ || index < lines_.size(); });
  if (index < lines_.size()) {
    line = lines_[index];
    return Fetch::kLine;
  }
  return closed_ ? Fetch::kClosed : Fetch::kTimeout;
}

std::size_t EventLog::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return lines_.size();
}

bool EventLog::closed() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::uint64_t JobQueue::allocate_id() {
  return next_id_.fetch_add(1, std::memory_order_relaxed);
}

void JobQueue::enqueue(std::shared_ptr<Job> job) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (draining_ || stopped_) {
      throw HttpError(503, "server is draining; not accepting new jobs");
    }
    if (ready_.size() >= depth_) {
      throw HttpError(429, "job queue is full (" + std::to_string(depth_) +
                               " queued); retry after a job finishes or "
                               "raise --queue-depth");
    }
    job->state = JobState::kQueued;
    ++accepted_;
    jobs_.emplace(job->id, job);
    ready_.emplace(std::make_pair(-job->priority, job->id), job);
  }
  cv_.notify_one();
}

std::shared_ptr<Job> JobQueue::next_runnable() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return stopped_ || draining_ || !ready_.empty(); });
  if (stopped_ || ready_.empty()) return nullptr;
  auto it = ready_.begin();
  std::shared_ptr<Job> job = it->second;
  ready_.erase(it);
  job->state = JobState::kRunning;
  ++running_;
  return job;
}

std::shared_ptr<Job> JobQueue::find(std::uint64_t id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second;
}

JobSnapshot JobQueue::snapshot(const Job& job) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return JobSnapshot{job.state, job.error, !job.result.empty()};
}

std::string JobQueue::result_bytes(const Job& job) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return job.result;
}

void JobQueue::finish(Job& job, JobState state, std::string result,
                      std::string error) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    job.state = state;
    job.result = std::move(result);
    job.error = std::move(error);
    --running_;
    switch (state) {
      case JobState::kDone: ++done_; break;
      case JobState::kFailed: ++failed_; break;
      case JobState::kCancelled: ++cancelled_; break;
      default: break;
    }
  }
  job.events.close();
  cv_.notify_all();
}

bool JobQueue::cancel(std::uint64_t id) {
  std::shared_ptr<Job> to_close;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return false;
    Job& job = *it->second;
    switch (job.state) {
      case JobState::kQueued:
        ready_.erase(std::make_pair(-job.priority, job.id));
        job.state = JobState::kCancelled;
        job.error = "cancelled while queued";
        ++cancelled_;
        to_close = it->second;
        break;
      case JobState::kRunning:
        job.cancel.store(true, std::memory_order_relaxed);
        break;
      default:
        break;  // already terminal: cancel is an idempotent no-op
    }
  }
  if (to_close) to_close->events.close();
  return true;
}

void JobQueue::drain(bool cancel_running) {
  std::vector<std::shared_ptr<Job>> to_close;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
    for (auto& [key, job] : ready_) {
      job->state = JobState::kCancelled;
      job->error = "cancelled: server draining";
      ++cancelled_;
      to_close.push_back(job);
    }
    ready_.clear();
    if (cancel_running) {
      for (auto& [id, job] : jobs_) {
        if (job->state == JobState::kRunning) {
          job->cancel.store(true, std::memory_order_relaxed);
        }
      }
    }
  }
  for (const auto& job : to_close) job->events.close();
  cv_.notify_all();
}

bool JobQueue::draining() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

bool JobQueue::idle() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return ready_.empty() && running_ == 0;
}

void JobQueue::stop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  cv_.notify_all();
}

QueueStats JobQueue::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  QueueStats s;
  s.submitted = accepted_;
  s.done = done_;
  s.failed = failed_;
  s.cancelled = cancelled_;
  s.queued = ready_.size();
  s.running = running_;
  return s;
}

}  // namespace msim::serve
