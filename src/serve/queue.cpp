#include "serve/queue.hpp"

#include <algorithm>

#include "serve/http.hpp"

namespace msim::serve {

std::string_view job_state_name(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kExpired: return "expired";
  }
  return "unknown";
}

void EventLog::append(std::string line) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;
    if (lines_.size() >= kMaxLines) {
      if (truncated_) return;
      truncated_ = true;
      lines_.push_back(
          R"({"kind":"events_truncated","detail":"event cap reached; further events dropped"})");
    } else {
      lines_.push_back(std::move(line));
    }
  }
  cv_.notify_all();
}

void EventLog::close() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

EventLog::Fetch EventLog::fetch(std::size_t index, int timeout_ms,
                                std::string& line) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
               [&] { return closed_ || index < lines_.size(); });
  if (index < lines_.size()) {
    line = lines_[index];
    return Fetch::kLine;
  }
  return closed_ ? Fetch::kClosed : Fetch::kTimeout;
}

std::size_t EventLog::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return lines_.size();
}

bool EventLog::closed() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

void JobQueue::set_next_id(std::uint64_t next_id) {
  std::uint64_t current = next_id_.load(std::memory_order_relaxed);
  while (current < next_id &&
         !next_id_.compare_exchange_weak(current, next_id,
                                         std::memory_order_relaxed)) {
  }
}

std::uint64_t JobQueue::allocate_id() {
  return next_id_.fetch_add(1, std::memory_order_relaxed);
}

void JobQueue::fire_hook(const Job& job, JobState state) const {
  if (hook_) hook_(job, state);
}

std::shared_ptr<Job> JobQueue::enqueue(std::shared_ptr<Job> job) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!job->idempotency_key.empty()) {
      const auto it = by_key_.find(job->idempotency_key);
      if (it != by_key_.end()) return it->second;  // dedupe: nothing enqueued
    }
    if (draining_ || stopped_) {
      throw HttpError(503, "server is draining; not accepting new jobs");
    }
    if (ready_.size() >= depth_) {
      throw HttpError(429, "job queue is full (" + std::to_string(depth_) +
                               " queued); retry after a job finishes or "
                               "raise --queue-depth");
    }
    job->state = JobState::kQueued;
    if (job->ttl_ms != 0) {
      job->deadline = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(job->ttl_ms);
    }
    ++accepted_;
    jobs_.emplace(job->id, job);
    if (!job->idempotency_key.empty()) by_key_.emplace(job->idempotency_key, job);
    ready_.emplace(std::make_pair(-job->priority, job->id), job);
  }
  cv_.notify_one();
  fire_hook(*job, JobState::kQueued);
  return job;
}

void JobQueue::restore(std::shared_ptr<Job> job) {
  bool terminal = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++accepted_;
    jobs_.emplace(job->id, job);
    if (!job->idempotency_key.empty()) {
      by_key_.emplace(job->idempotency_key, job);
    }
    switch (job->state) {
      case JobState::kDone: ++done_; terminal = true; break;
      case JobState::kFailed: ++failed_; terminal = true; break;
      case JobState::kCancelled: ++cancelled_; terminal = true; break;
      case JobState::kExpired: ++expired_; terminal = true; break;
      default:
        // Re-enqueued past the depth bound on purpose: the job was already
        // accepted by the previous incarnation.  The TTL clock restarts at
        // recovery (wall time while the daemon was down is not counted).
        job->state = JobState::kQueued;
        if (job->ttl_ms != 0) {
          job->deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(job->ttl_ms);
        }
        ready_.emplace(std::make_pair(-job->priority, job->id), job);
        break;
    }
  }
  if (terminal) {
    job->events.close();
  } else {
    cv_.notify_one();
  }
}

std::shared_ptr<Job> JobQueue::next_runnable() {
  while (true) {
    std::shared_ptr<Job> job;
    std::vector<std::shared_ptr<Job>> expired;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Bounded wait so queued TTLs are enforced even when no submission
      // or shutdown wakes the executors.
      cv_.wait_for(lock, std::chrono::milliseconds(200), [&] {
        return stopped_ || draining_ || !ready_.empty();
      });
      expired = collect_expired_locked(std::chrono::steady_clock::now());
      if (stopped_ || (draining_ && ready_.empty())) {
        lock.unlock();
        for (const auto& e : expired) e->events.close();
        for (const auto& e : expired) fire_hook(*e, JobState::kExpired);
        return nullptr;
      }
      if (!ready_.empty()) {
        auto it = ready_.begin();
        job = it->second;
        ready_.erase(it);
        job->state = JobState::kRunning;
        ++running_;
      }
    }
    for (const auto& e : expired) e->events.close();
    for (const auto& e : expired) fire_hook(*e, JobState::kExpired);
    if (job) {
      fire_hook(*job, JobState::kRunning);
      return job;
    }
  }
}

std::vector<std::shared_ptr<Job>> JobQueue::collect_expired_locked(
    std::chrono::steady_clock::time_point now) {
  std::vector<std::shared_ptr<Job>> expired;
  for (auto it = ready_.begin(); it != ready_.end();) {
    Job& job = *it->second;
    if (job.ttl_ms != 0 && job.deadline <= now) {
      job.state = JobState::kExpired;
      job.error = "expired: queued longer than ttl_ms=" +
                  std::to_string(job.ttl_ms);
      ++expired_;
      expired.push_back(it->second);
      it = ready_.erase(it);
    } else {
      ++it;
    }
  }
  return expired;
}

void JobQueue::expire_overdue() {
  std::vector<std::shared_ptr<Job>> expired;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    expired = collect_expired_locked(std::chrono::steady_clock::now());
  }
  for (const auto& e : expired) e->events.close();
  for (const auto& e : expired) fire_hook(*e, JobState::kExpired);
}

std::shared_ptr<Job> JobQueue::find(std::uint64_t id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second;
}

JobSnapshot JobQueue::snapshot(const Job& job) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return JobSnapshot{job.state, job.error, !job.result.empty()};
}

std::string JobQueue::result_bytes(const Job& job) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return job.result;
}

void JobQueue::finish(Job& job, JobState state, std::string result,
                      std::string error) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    job.state = state;
    job.result = std::move(result);
    job.error = std::move(error);
    --running_;
    switch (state) {
      case JobState::kDone: ++done_; break;
      case JobState::kFailed: ++failed_; break;
      case JobState::kCancelled: ++cancelled_; break;
      default: break;
    }
  }
  job.events.close();
  cv_.notify_all();
  fire_hook(job, state);
}

bool JobQueue::cancel(std::uint64_t id) {
  std::shared_ptr<Job> to_close;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return false;
    Job& job = *it->second;
    switch (job.state) {
      case JobState::kQueued:
        ready_.erase(std::make_pair(-job.priority, job.id));
        job.state = JobState::kCancelled;
        job.error = "cancelled while queued";
        ++cancelled_;
        to_close = it->second;
        break;
      case JobState::kRunning:
        job.cancel.store(true, std::memory_order_relaxed);
        break;
      default:
        break;  // already terminal: cancel is an idempotent no-op
    }
  }
  if (to_close) {
    to_close->events.close();
    fire_hook(*to_close, JobState::kCancelled);
  }
  return true;
}

void JobQueue::drain(bool cancel_running) {
  std::vector<std::shared_ptr<Job>> to_close;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
    for (auto& [key, job] : ready_) {
      job->state = JobState::kCancelled;
      job->error = "cancelled: server draining";
      ++cancelled_;
      to_close.push_back(job);
    }
    ready_.clear();
    if (cancel_running) {
      for (auto& [id, job] : jobs_) {
        if (job->state == JobState::kRunning) {
          job->cancel.store(true, std::memory_order_relaxed);
        }
      }
    }
  }
  for (const auto& job : to_close) job->events.close();
  for (const auto& job : to_close) fire_hook(*job, JobState::kCancelled);
  cv_.notify_all();
}

bool JobQueue::draining() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

bool JobQueue::idle() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return ready_.empty() && running_ == 0;
}

void JobQueue::stop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  cv_.notify_all();
}

QueueStats JobQueue::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  QueueStats s;
  s.submitted = accepted_;
  s.done = done_;
  s.failed = failed_;
  s.cancelled = cancelled_;
  s.expired = expired_;
  s.queued = ready_.size();
  s.running = running_;
  return s;
}

}  // namespace msim::serve
