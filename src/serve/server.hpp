// msim_serve's engine: a TCP listener, a bounded priority queue, a fixed
// executor pool, and a shared baseline cache pool.
//
// Request flow (docs/ARCHITECTURE.md has the full diagram): the listener
// thread accepts sockets and hands each to a session thread; sessions
// parse HTTP requests (serve/http.hpp) and route them (serve/session.cpp);
// POST /v1/jobs validates the config synchronously -- JSON to KvConfig
// (serve/codec.hpp), key partition check against sim/cli_spec.hpp, then a
// trial sim::build_run_config -- so every rejection is a 400 with the
// builder's own message, and only well-formed jobs enter the queue.
// Executor threads pull jobs and run them through the very same engine
// msim_cli uses (sim::run_simulation / sim::run_sweep), which is why a
// served result is byte-identical to the offline run of the same config.
//
// Sweep jobs inherit the whole robustness stack: isolation=process shards
// the grid across robust::SweepSupervisor's forked workers, each worker
// appends to its own journal shard under --journal-dir, and a cancelled
// job leaves its journal resumable by an offline `msim_cli --resume`.
//
// Durability (docs/SERVICE.md "Durability & recovery"): with
// --journal-dir set, every accepted job and every lifecycle transition is
// appended -- one fsync'd line at a time -- to the serve::JobLedger in
// that directory.  start() replays the ledger before accepting traffic:
// done jobs re-serve their stored result bytes verbatim, pending jobs
// re-enter the queue in their original priority/FIFO order, and a sweep
// that was running when the daemon died resumes from its own sweep
// journal (main + process-isolation shards), so a kill -9 costs only the
// in-flight cells.
//
// Determinism contract: every simulation byte a client receives is
// produced by sim::write_run_json / sim::write_sweep_json from a config
// built by sim::build_run_config -- the daemon adds no fields, no
// timestamps, no reordering, at any --max-inflight or workers= count.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/http.hpp"
#include "serve/ledger.hpp"
#include "serve/queue.hpp"
#include "sim/config_build.hpp"
#include "sim/experiment.hpp"

namespace msim::serve {

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read back with port()
  std::size_t queue_depth = 64;
  unsigned max_inflight = 2;  ///< executor threads (concurrent jobs)
  /// Durability root ("" = in-memory only): holds the crash-recovering
  /// job ledger DIR/ledger.jsonl, per-sweep-job journals
  /// DIR/job<id>.jsonl and done jobs' result files
  /// DIR/job<id>.result.json.  Paths are always assigned server-side;
  /// clients never name files on the server.
  std::string journal_dir;
  int io_timeout_ms = 10'000;  ///< per-socket inactivity budget
  std::size_t max_body_bytes = 1u << 20;
};

/// Shares sim::BaselineCache instances across jobs whose baselines are
/// interchangeable: keyed by the fingerprint of a canonicalized base
/// config (benchmarks/kind/iq cleared -- BaselineCache overrides them per
/// key -- pointers nulled) plus the fault knobs, which shape baseline
/// runs but are outside RunConfig::fingerprint().  Two concurrent sweep
/// jobs with the same horizon knobs thus compute each (benchmark, iq)
/// baseline once, single-flight.
class BaselineCachePool {
 public:
  /// The cache for `kv`'s equivalence class (created on first use).
  [[nodiscard]] sim::BaselineCache& get(const KvConfig& kv);

  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    sim::BuiltRun canonical;  ///< owns the fault injector the cache uses
    std::unique_ptr<sim::BaselineCache> cache;
  };
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

/// What start()'s ledger replay found, reported by GET /v1/healthz.
struct RecoveryStats {
  bool enabled = false;       ///< a --journal-dir ledger was replayed
  std::uint64_t replayed = 0;  ///< jobs in the ledger
  std::uint64_t completed = 0; ///< terminal jobs restored verbatim
  std::uint64_t requeued = 0;  ///< pending jobs re-enqueued
  std::uint64_t resumed_sweeps = 0;  ///< requeued sweeps resuming a journal
};

class ExperimentServer {
 public:
  explicit ExperimentServer(ServerConfig config);
  ~ExperimentServer();
  ExperimentServer(const ExperimentServer&) = delete;
  ExperimentServer& operator=(const ExperimentServer&) = delete;

  /// Binds the listener and spawns the listener + executor threads.
  /// Throws std::runtime_error when the address cannot be bound.
  void start();

  /// The bound port (after start(); resolves port 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Graceful drain: stop accepting jobs (submissions get 503), cancel
  /// queued jobs, let running jobs finish -- or cancel them too when
  /// `cancel_running` (the second-signal path).  Status/result reads keep
  /// working until stop().
  void request_shutdown(bool cancel_running);

  [[nodiscard]] bool shutdown_requested() const noexcept {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// Drain complete: shutdown requested and no job queued or running.
  [[nodiscard]] bool finished() const;

  /// Full teardown; joins every thread.  Idempotent; the destructor calls
  /// it.
  void stop();

  [[nodiscard]] std::uint64_t connections() const noexcept {
    return connections_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const ServerConfig& config() const noexcept { return config_; }

  [[nodiscard]] const RecoveryStats& recovery() const noexcept {
    return recovery_;
  }

 private:
  void recover_from_ledger();
  void listen_loop();
  void executor_loop();
  void run_job(const std::shared_ptr<Job>& job);
  void session(Socket sock);

  // serve/session.cpp: HTTP routing.  Returns whether to keep the
  // connection alive for another request.
  bool handle_request(Socket& sock, const HttpRequest& request);
  bool respond(Socket& sock, int status, std::string_view body,
               bool keep_alive);
  bool handle_submit(Socket& sock, const HttpRequest& request);
  bool handle_job_get(Socket& sock, const Job& job);
  bool handle_result(Socket& sock, const Job& job);
  bool handle_cancel(Socket& sock, std::uint64_t id);
  bool handle_events(Socket& sock, Job& job);
  bool handle_stats(Socket& sock);
  bool handle_readiness(Socket& sock);
  [[nodiscard]] std::string job_status_json(const Job& job) const;

  ServerConfig config_;
  JobQueue queue_;
  std::unique_ptr<JobLedger> ledger_;
  RecoveryStats recovery_;
  BaselineCachePool baselines_;
  std::unique_ptr<Listener> listener_;
  std::uint16_t port_ = 0;
  std::thread listen_thread_;
  std::vector<std::thread> executors_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<int> sessions_{0};
};

}  // namespace msim::serve
