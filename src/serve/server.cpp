#include "serve/server.hpp"

#include <chrono>
#include <iostream>
#include <sstream>

#include "obs/progress.hpp"
#include "persist/atomic_file.hpp"
#include "persist/signal.hpp"
#include "sim/report.hpp"
#include "sim/run.hpp"
#include "sim/sampled.hpp"

namespace msim::serve {

namespace {

/// Bridges a job's progress bus onto its EventLog: one deterministic JSONL
/// line per event (obs::JsonlProgressSink::format), which the events
/// endpoint replays and follows.
class EventLogSink final : public obs::ProgressSink {
 public:
  explicit EventLogSink(EventLog& log) : log_(log) {}
  void on_event(const obs::ProgressEvent& event) override {
    log_.append(obs::JsonlProgressSink::format(event));
  }

 private:
  EventLog& log_;
};

}  // namespace

sim::BaselineCache& BaselineCachePool::get(const KvConfig& kv) {
  sim::BuiltRun built = sim::build_run_config(kv);
  sim::RunConfig& canon = built.config;
  // BaselineCache overrides benchmarks/kind/iq per (benchmark, iq) key, so
  // canonicalize them out of the pool key; null the per-job surfaces a
  // shared cache must not capture.
  canon.benchmarks.clear();
  canon.kind = core::SchedulerKind::kTraditional;
  canon.iq_entries = 0;
  canon.progress_bus = nullptr;
  canon.cancel = nullptr;
  canon.watch_signals = false;
  std::string key = std::to_string(canon.fingerprint());
  key += '|';
  key += kv.get_string("fault_intensity", "0");
  key += ',';
  key += kv.get_string("fault_seed", "1");
  key += ',';
  key += kv.get_string("fault_index", "0");

  const std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    Entry entry;
    entry.canonical = std::move(built);
    entry.cache =
        std::make_unique<sim::BaselineCache>(entry.canonical.config);
    it = entries_.emplace(std::move(key), std::move(entry)).first;
  }
  return *it->second.cache;
}

std::size_t BaselineCachePool::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

ExperimentServer::ExperimentServer(ServerConfig config)
    : config_(std::move(config)), queue_(config_.queue_depth) {}

void ExperimentServer::recover_from_ledger() {
  recovery_.enabled = true;
  queue_.set_next_id(ledger_->next_id());
  for (const LedgerJob& rec : ledger_->recovered()) {
    ++recovery_.replayed;
    auto job = std::make_shared<Job>();
    job->id = rec.id;
    job->priority = rec.priority;
    job->kv = rec.kv;
    job->is_sweep = rec.sweep;
    job->idempotency_key = rec.idempotency_key;
    job->ttl_ms = rec.ttl_ms;
    if (job->is_sweep) {
      job->journal_path = config_.journal_dir + "/job" +
                          std::to_string(job->id) + ".jsonl";
    }
    job->result_path = JobLedger::result_path(config_.journal_dir, job->id);
    if (rec.terminal) {
      job->state = rec.state;
      job->error = rec.error;
      if (rec.state == JobState::kDone) {
        // Load eagerly so GET .../result keeps its contract (the stored
        // bytes, verbatim) without touching the disk per request.
        try {
          job->result = persist::read_file(rec.result_path);
        } catch (const std::exception& e) {
          job->state = JobState::kFailed;
          job->error = std::string("recovered job's result file is "
                                   "unreadable: ") + e.what();
        }
      }
      ++recovery_.completed;
    } else {
      // Queued or interrupted mid-run: both re-run.  A sweep resumes from
      // its journal (completed cells replay byte-identically; only
      // in-flight cells are recomputed), a single run or sampled estimate
      // simply re-runs -- deterministically, to the same bytes.
      job->resume_sweep = job->is_sweep;
      if (rec.started && job->is_sweep) ++recovery_.resumed_sweeps;
      ++recovery_.requeued;
    }
    queue_.restore(std::move(job));
  }
}

ExperimentServer::~ExperimentServer() { stop(); }

void ExperimentServer::start() {
  if (!config_.journal_dir.empty()) {
    // Replay + compact the job ledger before anything can bind the port or
    // pull work: a newer-format ledger throws here (msim_serve exits 2)
    // and a recovered pending job is back in the ready queue -- in its
    // original priority/FIFO slot, since ids are preserved and the queue
    // orders by (-priority, id) -- before the first executor starts.
    ledger_ = std::make_unique<JobLedger>(config_.journal_dir);
    recover_from_ledger();
    queue_.set_transition_hook([this](const Job& job, JobState state) {
      // Ledger appends must never take the daemon down mid-flight: a
      // failed fsync loses durability for this transition (recovery
      // re-runs the job, deterministically), which beats crashing the
      // executors.
      try {
        switch (state) {
          case JobState::kQueued: ledger_->record_accepted(job); break;
          case JobState::kRunning: ledger_->record_running(job.id); break;
          case JobState::kDone:
            ledger_->record_done(job.id, job.result_path);
            break;
          case JobState::kFailed:
            ledger_->record_failed(job.id, job.error);
            break;
          case JobState::kCancelled:
            ledger_->record_cancelled(job.id, job.error);
            break;
          case JobState::kExpired:
            ledger_->record_expired(job.id, job.error);
            break;
        }
      } catch (const std::exception& e) {
        std::cerr << "msim_serve: ledger append failed: " << e.what() << "\n";
      }
    });
  }
  listener_ = std::make_unique<Listener>(config_.host, config_.port);
  port_ = listener_->port();
  listen_thread_ = std::thread(&ExperimentServer::listen_loop, this);
  executors_.reserve(config_.max_inflight);
  for (unsigned i = 0; i < config_.max_inflight; ++i) {
    executors_.emplace_back(&ExperimentServer::executor_loop, this);
  }
}

void ExperimentServer::request_shutdown(bool cancel_running) {
  shutdown_.store(true, std::memory_order_release);
  queue_.drain(cancel_running);
}

bool ExperimentServer::finished() const {
  return shutdown_requested() && queue_.idle();
}

void ExperimentServer::stop() {
  if (stopping_.exchange(true)) return;
  if (listener_) listener_->close();
  if (listen_thread_.joinable()) listen_thread_.join();
  queue_.stop();
  for (std::thread& t : executors_) {
    if (t.joinable()) t.join();
  }
  executors_.clear();
  // Sessions poll stopping_ between bounded reads; wait them out.
  while (sessions_.load(std::memory_order_acquire) != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

void ExperimentServer::listen_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    Socket sock = listener_->accept(/*timeout_ms=*/200);
    if (!sock.valid()) continue;
    connections_.fetch_add(1, std::memory_order_relaxed);
    sessions_.fetch_add(1, std::memory_order_acq_rel);
    std::thread([this, s = std::move(sock)]() mutable {
      session(std::move(s));
      sessions_.fetch_sub(1, std::memory_order_acq_rel);
    }).detach();
  }
}

void ExperimentServer::session(Socket sock) {
  HttpRequestParser parser(16 * 1024, config_.max_body_bytes);
  while (!stopping_.load(std::memory_order_acquire)) {
    // Read one full request in bounded slices so stop() never waits long.
    int waited_ms = 0;
    bool fatal = false;
    try {
      while (!parser.complete()) {
        if (stopping_.load(std::memory_order_acquire)) return;
        std::string bytes;
        constexpr int kSliceMs = 200;
        const IoStatus status = sock.read_some(bytes, 4096, kSliceMs);
        if (status == IoStatus::kEof || status == IoStatus::kError) return;
        if (status == IoStatus::kTimeout) {
          waited_ms += kSliceMs;
          if (waited_ms >= config_.io_timeout_ms) {
            if (parser.idle()) return;  // idle keep-alive: just drop
            (void)sock.write_all(
                format_response(408, "application/json",
                                error_body(408,
                                           "timed out waiting for the rest "
                                           "of the request"),
                                /*keep_alive=*/false),
                config_.io_timeout_ms);
            return;
          }
          continue;
        }
        waited_ms = 0;
        parser.consume(bytes);
      }
    } catch (const HttpError& e) {
      (void)sock.write_all(
          format_response(e.status(), "application/json",
                          error_body(e.status(), e.what()),
                          /*keep_alive=*/false),
          config_.io_timeout_ms);
      return;
    }
    HttpRequest request = parser.take();
    const bool close_after = request.wants_close();
    try {
      fatal = !handle_request(sock, request);
    } catch (const HttpError& e) {
      (void)respond(sock, e.status(), error_body(e.status(), e.what()),
                    /*keep_alive=*/false);
      fatal = true;
    } catch (const std::exception& e) {
      (void)respond(sock, 500, error_body(500, e.what()),
                    /*keep_alive=*/false);
      fatal = true;
    }
    if (fatal || close_after) return;
  }
}

void ExperimentServer::executor_loop() {
  while (std::shared_ptr<Job> job = queue_.next_runnable()) {
    run_job(job);
  }
}

void ExperimentServer::run_job(const std::shared_ptr<Job>& job) {
  obs::ProgressBus bus;
  EventLogSink sink(job->events);
  bus.subscribe(&sink);

  JobState final_state = JobState::kDone;
  std::string result;
  std::string error;
  try {
    sim::BuiltRun built = sim::build_run_config(job->kv);
    sim::RunConfig& cfg = built.config;
    cfg.progress_bus = &bus;
    cfg.cancel = &job->cancel;
    if (!job->is_sweep &&
        job->kv.get_string("mode", "exact") == "sampled") {
      // mode=sampled over the wire: the same engine and the same report
      // writer msim_cli --sampled-json uses, so the served bytes equal the
      // offline file exactly (write_sampled_json embeds no job count; the
      // estimate is bit-identical at any jobs= value).
      sim::SampledConfig scfg;
      scfg.region_length = job->kv.get_uint("region", scfg.region_length);
      scfg.detail_warmup =
          job->kv.get_uint("detail_warmup", scfg.detail_warmup);
      scfg.pilot = job->kv.get_uint("pilot", scfg.pilot);
      scfg.jobs = static_cast<unsigned>(job->kv.get_uint("jobs", 1));
      const sim::SampledResult r = sim::run_sampled(cfg, scfg);
      std::ostringstream out;
      sim::write_sampled_json(out, cfg, scfg, r);
      result = out.str();
    } else if (!job->is_sweep) {
      const sim::RunResult r = sim::run_simulation(cfg);
      std::ostringstream out;
      sim::write_run_json(out, cfg, r);
      result = out.str();
    } else {
      const auto threads =
          static_cast<unsigned>(job->kv.get_uint("sweep", 0));
      const auto jobs = static_cast<unsigned>(job->kv.get_uint("jobs", 1));
      sim::SweepRequest req =
          sim::build_sweep_request(job->kv, cfg, threads, jobs);
      req.journal_path = job->journal_path;
      // A job recovered mid-sweep resumes from its own journal: completed
      // cells (main journal + any process-isolation shards, unioned by
      // run_sweep) replay byte-identically, the rest are computed.
      req.resume = job->resume_sweep && !job->journal_path.empty();
      req.progress_bus = &bus;
      const std::vector<sim::SweepCell> cells =
          sim::run_sweep(req, baselines_.get(job->kv));
      std::ostringstream out;
      sim::write_sweep_json(out, cells);
      result = out.str();
      // Per-cell failures (crash isolation) degrade the grid, they do not
      // fail the job: the served JSON records them per mix exactly as the
      // offline engine would.
    }
  } catch (const persist::Cancelled&) {
    final_state = JobState::kCancelled;
    error = job->journal_path.empty()
                ? "cancelled while running"
                : "cancelled while running; journal '" + job->journal_path +
                      "' holds the completed cells (resumable offline with "
                      "msim_cli --resume)";
  } catch (const std::exception& e) {
    final_state = JobState::kFailed;
    error = e.what();
  }
  if (final_state == JobState::kDone && !job->result_path.empty()) {
    // Persist the result bytes *before* the finish hook appends the `done`
    // ledger record: a crash between the two re-runs the job on recovery
    // (deterministically, to the same bytes) instead of recording a result
    // that does not exist.
    try {
      persist::write_text_atomic(job->result_path, result);
    } catch (const std::exception& e) {
      std::cerr << "msim_serve: cannot persist result for job " << job->id
                << ": " << e.what() << "\n";
    }
  }
  queue_.finish(*job, final_state, std::move(result), std::move(error));
}

}  // namespace msim::serve
