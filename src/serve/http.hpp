// Minimal HTTP/1.1 framing for the msim_serve experiment daemon.
//
// This is deliberately a small subset of HTTP, not a web server: enough for
// `curl` and the load generator to speak to the daemon.  Requests are a
// request line, headers, and an optional Content-Length body; responses are
// either a fixed body or a chunked stream (the progress-event endpoint).
// The incremental HttpRequestParser never trusts the peer: head and body
// sizes are capped, malformed framing throws HttpError(400) with an
// actionable message (served back verbatim as the 4xx body), and oversized
// payloads throw HttpError(413) before the daemon buffers them.
//
// Socket/Listener wrap POSIX TCP sockets with poll-based timeouts so a slow
// or stalled client can never pin a session thread (docs/SERVICE.md,
// "Slow clients").
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>

namespace msim::serve {

/// A request the daemon refuses, carrying the HTTP status to serve.  The
/// what() text becomes the JSON error body.
class HttpError : public std::runtime_error {
 public:
  HttpError(int status, const std::string& message)
      : std::runtime_error(message), status_(status) {}

  [[nodiscard]] int status() const noexcept { return status_; }

 private:
  int status_;
};

/// One parsed request.  Header names are lowercased; the target keeps its
/// raw spelling (routing strips any query string).
struct HttpRequest {
  std::string method;
  std::string target;
  std::map<std::string, std::string> headers;
  std::string body;

  /// True when the client asked to drop the connection after the response.
  [[nodiscard]] bool wants_close() const;
};

/// Incremental request parser for one connection.  Feed bytes as they
/// arrive; once complete() is true, take() yields the request and the
/// parser is ready for the next one (leftover pipelined bytes are kept).
class HttpRequestParser {
 public:
  explicit HttpRequestParser(std::size_t max_head_bytes = 16 * 1024,
                             std::size_t max_body_bytes = 1u << 20);

  /// Appends bytes and parses as far as possible.  Returns complete().
  /// Throws HttpError(400) on malformed framing and HttpError(413) when
  /// the head or the declared body exceeds its cap.
  bool consume(std::string_view bytes);

  /// A full request is buffered and take() may be called.
  [[nodiscard]] bool complete() const noexcept { return complete_; }

  /// No bytes of a next request have arrived (an idle keep-alive
  /// connection can be dropped without an error response).
  [[nodiscard]] bool idle() const noexcept {
    return buffer_.empty() && !complete_;
  }

  /// Extracts the parsed request and re-arms for the next one.
  [[nodiscard]] HttpRequest take();

 private:
  void parse_head();

  std::size_t max_head_bytes_;
  std::size_t max_body_bytes_;
  std::string buffer_;
  HttpRequest request_;
  bool head_done_ = false;
  bool complete_ = false;
  std::size_t body_start_ = 0;
  std::size_t content_length_ = 0;
};

/// Canonical reason phrase for the status codes the daemon serves.
[[nodiscard]] std::string_view status_reason(int status) noexcept;

/// A full fixed-length response: status line, Content-Type/-Length and
/// Connection headers, blank line, body.
[[nodiscard]] std::string format_response(int status,
                                          std::string_view content_type,
                                          std::string_view body,
                                          bool keep_alive);

/// The head of a chunked streaming response (Transfer-Encoding: chunked,
/// Connection: close); follow with format_chunk() frames and end with
/// kLastChunk.
[[nodiscard]] std::string format_stream_head(int status,
                                             std::string_view content_type);

/// One chunked-transfer frame around `data`.
[[nodiscard]] std::string format_chunk(std::string_view data);

/// The terminating zero-length chunk of a stream.
inline constexpr std::string_view kLastChunk = "0\r\n\r\n";

/// The JSON error body served with a 4xx/5xx status:
/// {"error":{"status":N,"message":"..."}}.
[[nodiscard]] std::string error_body(int status, std::string_view message);

/// Outcome of one socket read attempt.
enum class IoStatus : std::uint8_t { kOk, kEof, kTimeout, kError };

/// RAII TCP socket with poll-bounded blocking I/O.  Move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  void close() noexcept;

  /// Appends up to `max` bytes to `out`, waiting at most `timeout_ms`.
  IoStatus read_some(std::string& out, std::size_t max, int timeout_ms);

  /// Writes all of `data`, waiting at most `timeout_ms` per poll round;
  /// false on timeout, peer reset, or error.
  bool write_all(std::string_view data, int timeout_ms);

 private:
  int fd_ = -1;
};

/// Listening TCP socket.  Construction binds and listens; port 0 picks an
/// ephemeral port (read it back with port()).
class Listener {
 public:
  /// Throws std::runtime_error with the errno text when the address cannot
  /// be bound (daemon exit code 2).
  Listener(const std::string& host, std::uint16_t port);

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Accepts one connection, waiting at most `timeout_ms`; an invalid
  /// Socket on timeout or when the listener was closed.
  [[nodiscard]] Socket accept(int timeout_ms);

  void close() noexcept { socket_.close(); }

  /// Dials the listener's own address (tests and the load generator).
  [[nodiscard]] static Socket connect(const std::string& host,
                                      std::uint16_t port, int timeout_ms);

 private:
  Socket socket_;
  std::uint16_t port_ = 0;
};

}  // namespace msim::serve
