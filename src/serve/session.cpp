// HTTP routing for ExperimentServer: one function per endpoint.  The wire
// schema (URL shapes, status codes, body formats) is documented in
// docs/SERVICE.md -- keep the two in sync.
#include <algorithm>
#include <cctype>
#include <optional>
#include <sstream>
#include <vector>

#include "common/json.hpp"
#include "serve/codec.hpp"
#include "serve/server.hpp"
#include "sim/cli_spec.hpp"
#include "sim/sampled.hpp"

namespace msim::serve {

namespace {

/// "/v1/jobs/7/result" -> {"v1", "jobs", "7", "result"}.
std::vector<std::string> split_path(std::string_view target) {
  const std::size_t query = target.find('?');
  if (query != std::string_view::npos) target = target.substr(0, query);
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= target.size()) {
    const std::size_t slash = target.find('/', start);
    const std::size_t end =
        slash == std::string_view::npos ? target.size() : slash;
    if (end > start) out.emplace_back(target.substr(start, end - start));
    if (slash == std::string_view::npos) break;
    start = slash + 1;
  }
  return out;
}

std::optional<std::uint64_t> parse_id(const std::string& s) {
  if (s.empty() || !std::all_of(s.begin(), s.end(), [](unsigned char c) {
        return std::isdigit(c);
      })) {
    return std::nullopt;
  }
  return std::stoull(s);
}

[[noreturn]] void method_not_allowed(const std::string& method,
                                     std::string_view allowed) {
  throw HttpError(405, "method " + method + " not allowed here (use " +
                           std::string(allowed) + ")");
}

}  // namespace

bool ExperimentServer::respond(Socket& sock, int status, std::string_view body,
                               bool keep_alive) {
  return sock.write_all(
      format_response(status, "application/json", body, keep_alive),
      config_.io_timeout_ms);
}

bool ExperimentServer::handle_request(Socket& sock,
                                      const HttpRequest& request) {
  const std::vector<std::string> path = split_path(request.target);

  if (path.size() == 1 && path[0] == "healthz") {
    if (request.method != "GET") method_not_allowed(request.method, "GET");
    return respond(sock, 200, "{\"ok\":true}\n", /*keep_alive=*/true);
  }
  if (path.size() == 2 && path[0] == "v1" && path[1] == "healthz") {
    if (request.method != "GET") method_not_allowed(request.method, "GET");
    return handle_readiness(sock);
  }
  if (path.size() == 2 && path[0] == "v1" && path[1] == "stats") {
    if (request.method != "GET") method_not_allowed(request.method, "GET");
    return handle_stats(sock);
  }
  if (path.size() == 2 && path[0] == "v1" && path[1] == "shutdown") {
    if (request.method != "POST") method_not_allowed(request.method, "POST");
    request_shutdown(/*cancel_running=*/false);
    return respond(sock, 200, "{\"draining\":true}\n", /*keep_alive=*/true);
  }
  if (path.size() == 2 && path[0] == "v1" && path[1] == "jobs") {
    if (request.method != "POST") method_not_allowed(request.method, "POST");
    return handle_submit(sock, request);
  }
  if ((path.size() == 3 || path.size() == 4) && path[0] == "v1" &&
      path[1] == "jobs") {
    const std::optional<std::uint64_t> id = parse_id(path[2]);
    if (!id) {
      throw HttpError(400, "job id must be a decimal integer, got '" +
                               path[2] + "'");
    }
    const std::shared_ptr<Job> job = queue_.find(*id);
    if (!job) {
      throw HttpError(404, "no job " + path[2] +
                               " (ids are returned by POST /v1/jobs)");
    }
    if (path.size() == 3) {
      if (request.method != "GET") method_not_allowed(request.method, "GET");
      return handle_job_get(sock, *job);
    }
    if (path[3] == "result") {
      if (request.method != "GET") method_not_allowed(request.method, "GET");
      return handle_result(sock, *job);
    }
    if (path[3] == "events") {
      if (request.method != "GET") method_not_allowed(request.method, "GET");
      return handle_events(sock, *job);
    }
    if (path[3] == "cancel") {
      if (request.method != "POST") {
        method_not_allowed(request.method, "POST");
      }
      return handle_cancel(sock, *id);
    }
  }
  throw HttpError(404, "no such endpoint: " + request.method + " " +
                           request.target + " (see docs/SERVICE.md)");
}

bool ExperimentServer::handle_submit(Socket& sock,
                                     const HttpRequest& request) {
  if (queue_.draining()) {
    throw HttpError(503, "server is draining; not accepting new jobs");
  }
  JsonValue doc = [&] {
    try {
      return JsonValue::parse(request.body);
    } catch (const std::exception& e) {
      throw HttpError(400, std::string("request body is not valid JSON: ") +
                               e.what());
    }
  }();
  if (!doc.is_object()) {
    throw HttpError(400,
                    "request body must be a JSON object: "
                    "{\"config\": {...}, \"priority\": N}");
  }
  for (const auto& [key, value] : doc.as_object()) {
    if (key != "config" && key != "priority" && key != "idempotency_key" &&
        key != "ttl_ms") {
      throw HttpError(400, "unknown request field \"" + key +
                               "\" (accepted: \"config\", \"priority\", "
                               "\"idempotency_key\", \"ttl_ms\")");
    }
  }
  if (!doc.contains("config")) {
    throw HttpError(400, "missing \"config\": the simulation knobs object");
  }
  int priority = 0;
  if (doc.contains("priority")) {
    const JsonValue& p = doc.at("priority");
    if (p.type() != JsonValue::Type::kNumber) {
      throw HttpError(400, "\"priority\" must be an integer");
    }
    priority = static_cast<int>(p.as_number());
  }
  std::string idempotency_key;
  if (doc.contains("idempotency_key")) {
    const JsonValue& k = doc.at("idempotency_key");
    if (k.type() != JsonValue::Type::kString || k.as_string().empty()) {
      throw HttpError(400, "\"idempotency_key\" must be a non-empty string");
    }
    idempotency_key = k.as_string();
  }
  std::uint64_t ttl_ms = 0;
  if (doc.contains("ttl_ms")) {
    const JsonValue& t = doc.at("ttl_ms");
    if (t.type() != JsonValue::Type::kNumber || t.as_number() < 1) {
      throw HttpError(400,
                      "\"ttl_ms\" must be a positive integer (milliseconds "
                      "the job may wait in the queue before expiring)");
    }
    ttl_ms = static_cast<std::uint64_t>(t.as_number());
  }

  KvConfig kv = kv_from_json(doc.at("config"));
  validate_request_keys(kv);

  // Build (and for single runs validate) the config now, so a broken knob
  // is a synchronous 400 with the builder's message instead of a job that
  // fails later.
  const auto sweep = static_cast<unsigned>(kv.get_uint("sweep", 0));
  const std::string mode = kv.get_string("mode", "exact");
  if (mode != "exact" && mode != "sampled") {
    throw HttpError(400, "unknown mode: '" + mode + "' (exact | sampled)");
  }
  try {
    sim::BuiltRun probe = sim::build_run_config(kv);
    if (mode == "sampled") {
      if (sweep != 0) {
        throw std::invalid_argument(
            "mode=sampled is single-run only; sweep cells are exact by "
            "design");
      }
      sim::SampledConfig scfg;
      scfg.region_length = kv.get_uint("region", scfg.region_length);
      scfg.detail_warmup = kv.get_uint("detail_warmup", scfg.detail_warmup);
      scfg.pilot = kv.get_uint("pilot", scfg.pilot);
      scfg.validate(probe.config);
    } else if (sweep == 0) {
      probe.config.validate();
    } else {
      if (sweep < 2 || sweep > 4) {
        throw std::invalid_argument(
            "sweep=" + std::to_string(sweep) +
            " is invalid: the figure sweeps cover thread counts 2, 3 and 4");
      }
      const std::uint64_t jobs = kv.get_uint("jobs", 1);
      if (jobs == 0) {
        throw std::invalid_argument("jobs=0 is invalid: use jobs>=1");
      }
      (void)sim::build_sweep_request(kv, probe.config,
                                     /*thread_count=*/sweep,
                                     static_cast<unsigned>(jobs));
    }
  } catch (const HttpError&) {
    throw;
  } catch (const std::exception& e) {
    throw HttpError(400, std::string("invalid config: ") + e.what());
  }

  auto job = std::make_shared<Job>();
  job->id = queue_.allocate_id();
  job->priority = priority;
  job->kv = std::move(kv);
  job->is_sweep = sweep != 0;
  job->idempotency_key = idempotency_key;
  job->ttl_ms = ttl_ms;
  if (!config_.journal_dir.empty()) {
    if (job->is_sweep) {
      job->journal_path =
          config_.journal_dir + "/job" + std::to_string(job->id) + ".jsonl";
    }
    job->result_path = JobLedger::result_path(config_.journal_dir, job->id);
  }
  // HttpError(429) when full; returns the already-registered job when the
  // idempotency key was seen before (dedupe happens atomically under the
  // queue mutex, so two racing resubmissions still yield one job).
  const std::shared_ptr<Job> accepted = queue_.enqueue(job);

  std::ostringstream body;
  if (accepted != job) {
    const JobSnapshot snap = queue_.snapshot(*accepted);
    body << "{\"id\":" << accepted->id << ",\"state\":\""
         << job_state_name(snap.state) << "\",\"deduplicated\":true}\n";
    return respond(sock, 200, body.str(), /*keep_alive=*/true);
  }
  body << "{\"id\":" << job->id << ",\"state\":\"queued\"}\n";
  return respond(sock, 202, body.str(), /*keep_alive=*/true);
}

std::string ExperimentServer::job_status_json(const Job& job) const {
  const JobSnapshot snap = queue_.snapshot(job);
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.begin_object();
  w.kv("id", job.id);
  w.kv("state", job_state_name(snap.state));
  w.kv("sweep", job.is_sweep);
  w.kv("priority", std::int64_t{job.priority});
  w.kv("events", static_cast<std::uint64_t>(job.events.size()));
  if (!snap.error.empty()) w.kv("error", snap.error);
  w.end_object();
  os << '\n';
  return os.str();
}

bool ExperimentServer::handle_job_get(Socket& sock, const Job& job) {
  // Lazy TTL enforcement: expiry is observable from status reads even
  // while every executor is busy with long sweeps.
  queue_.expire_overdue();
  return respond(sock, 200, job_status_json(job), /*keep_alive=*/true);
}

bool ExperimentServer::handle_result(Socket& sock, const Job& job) {
  queue_.expire_overdue();
  const JobSnapshot snap = queue_.snapshot(job);
  if (snap.state != JobState::kDone) {
    std::string message = "job " + std::to_string(job.id) +
                          " has no result: state is " +
                          std::string(job_state_name(snap.state));
    if (!snap.error.empty()) message += " (" + snap.error + ")";
    throw HttpError(409, message);
  }
  // The stored bytes are exactly what sim::write_run_json /
  // sim::write_sweep_json produced -- served untouched, so a client-side
  // `cmp` against the offline engine's file passes.
  return respond(sock, 200, queue_.result_bytes(job), /*keep_alive=*/true);
}

bool ExperimentServer::handle_cancel(Socket& sock, std::uint64_t id) {
  (void)queue_.cancel(id);  // the id was resolved by the router
  const std::shared_ptr<Job> job = queue_.find(id);
  return respond(sock, 200, job_status_json(*job), /*keep_alive=*/true);
}

bool ExperimentServer::handle_events(Socket& sock, Job& job) {
  if (!sock.write_all(format_stream_head(200, "application/x-ndjson"),
                      config_.io_timeout_ms)) {
    return false;
  }
  std::size_t index = 0;
  while (true) {
    std::string line;
    const EventLog::Fetch fetched =
        job.events.fetch(index, /*timeout_ms=*/200, line);
    if (fetched == EventLog::Fetch::kClosed) break;
    if (fetched == EventLog::Fetch::kTimeout) {
      if (stopping_.load(std::memory_order_acquire)) break;
      continue;
    }
    ++index;
    line += '\n';
    if (!sock.write_all(format_chunk(line), config_.io_timeout_ms)) {
      return false;  // client gone or too slow: drop, the job runs on
    }
  }
  (void)sock.write_all(std::string(kLastChunk), config_.io_timeout_ms);
  return false;  // chunked streams always close the connection
}

bool ExperimentServer::handle_readiness(Socket& sock) {
  // Readiness (vs the byte-stable /healthz liveness probe): recovery is
  // synchronous in start(), so a daemon answering here has already
  // replayed its ledger -- the counters say what that replay found.
  queue_.expire_overdue();
  const QueueStats qs = queue_.stats();
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.begin_object();
  w.kv("ok", true);
  w.kv("ready", true);
  w.key("recovery");
  w.begin_object();
  w.kv("enabled", recovery_.enabled);
  w.kv("replayed", recovery_.replayed);
  w.kv("completed", recovery_.completed);
  w.kv("requeued", recovery_.requeued);
  w.kv("resumed_sweeps", recovery_.resumed_sweeps);
  w.end_object();
  w.key("queue");
  w.begin_object();
  w.kv("queued", static_cast<std::uint64_t>(qs.queued));
  w.kv("running", static_cast<std::uint64_t>(qs.running));
  w.kv("depth", static_cast<std::uint64_t>(config_.queue_depth));
  w.kv("draining", queue_.draining());
  w.end_object();
  w.end_object();
  os << '\n';
  return respond(sock, 200, os.str(), /*keep_alive=*/true);
}

bool ExperimentServer::handle_stats(Socket& sock) {
  queue_.expire_overdue();
  const QueueStats qs = queue_.stats();
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.begin_object();
  w.key("jobs");
  w.begin_object();
  w.kv("submitted", qs.submitted);
  w.kv("queued", static_cast<std::uint64_t>(qs.queued));
  w.kv("running", static_cast<std::uint64_t>(qs.running));
  w.kv("done", qs.done);
  w.kv("failed", qs.failed);
  w.kv("cancelled", qs.cancelled);
  w.kv("expired", qs.expired);
  w.end_object();
  w.kv("connections", connections());
  w.kv("baseline_caches", static_cast<std::uint64_t>(baselines_.size()));
  w.kv("queue_depth", static_cast<std::uint64_t>(config_.queue_depth));
  w.kv("max_inflight", std::uint64_t{config_.max_inflight});
  w.kv("draining", queue_.draining());
  w.end_object();
  os << '\n';
  return respond(sock, 200, os.str(), /*keep_alive=*/true);
}

}  // namespace msim::serve
