// The daemon's crash-recovering job ledger (docs/SERVICE.md, "Durability
// & recovery").
//
// A write-ahead JSONL file DIR/ledger.jsonl records every job the daemon
// ever accepted -- the full request (config knobs, priority, idempotency
// key, TTL) plus each lifecycle transition (accepted -> running ->
// done/failed/cancelled/expired, with the result file for done jobs).
// Every append is one whole line followed by fsync, the same convention
// persist::SweepJournal uses, so a kill -9 can at worst tear the final
// line; replay stops at the first malformed line and the constructor
// truncates the torn tail before reopening for append.
//
// On startup the daemon replays the ledger (JobLedger::recovered()):
// terminal jobs are restored verbatim -- a done job's result file is
// re-served byte-identically -- and everything else is re-enqueued in its
// original priority/FIFO order; interrupted sweeps resume from their own
// sweep journal.  The header persists the id counter (next_id) so a
// restarted daemon never reissues a job id, and replay compacts the file:
// the merged state is rewritten atomically (persist::write_text_atomic)
// with a fresh header, so the ledger's size is bounded by the live job
// set, not the daemon's lifetime.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "serve/queue.hpp"

namespace msim::serve {

/// Bumped on incompatible record changes.  A ledger written by a NEWER
/// version is rejected with an actionable error (msim_serve exits 2)
/// instead of being silently misread.
inline constexpr std::uint32_t kLedgerFormatVersion = 1;

/// One job's merged ledger state after replay.
struct LedgerJob {
  std::uint64_t id = 0;
  int priority = 0;
  std::string idempotency_key;  ///< "" = none
  std::uint64_t ttl_ms = 0;     ///< 0 = no deadline
  bool sweep = false;
  KvConfig kv;
  bool started = false;  ///< saw a `running` record (interrupted if not terminal)
  bool terminal = false;
  JobState state = JobState::kQueued;  ///< terminal state when `terminal`
  std::string error;
  std::string result_path;  ///< done jobs: atomic file holding the result bytes
};

class JobLedger {
 public:
  /// Opens (replaying and compacting) or creates `dir`/ledger.jsonl.
  /// Throws PersistError when the file is not a job ledger or was written
  /// by a newer format version, std::runtime_error on I/O failure.
  explicit JobLedger(std::string dir);
  ~JobLedger();
  JobLedger(const JobLedger&) = delete;
  JobLedger& operator=(const JobLedger&) = delete;

  /// Jobs replayed from the previous incarnation, ordered by id.  Valid
  /// (and immutable) after construction.
  [[nodiscard]] const std::vector<LedgerJob>& recovered() const noexcept {
    return recovered_;
  }

  /// max(header next_id, max replayed id + 1): the first id this
  /// incarnation may issue.
  [[nodiscard]] std::uint64_t next_id() const noexcept { return next_id_; }

  // Lifecycle appends: one fsync'd line each, serialized by an internal
  // mutex so concurrent executor threads never interleave partial lines.
  void record_accepted(const Job& job);
  void record_running(std::uint64_t id);
  void record_done(std::uint64_t id, const std::string& result_path);
  void record_failed(std::uint64_t id, const std::string& error);
  void record_cancelled(std::uint64_t id, const std::string& error);
  void record_expired(std::uint64_t id, const std::string& error);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Where a done job's result bytes live: DIR/job<id>.result.json,
  /// written atomically *before* the `done` record is appended, so a crash
  /// between the two at worst re-runs the job (deterministically, to the
  /// same bytes).
  [[nodiscard]] static std::string result_path(const std::string& dir,
                                               std::uint64_t id);

 private:
  void append_line(const std::string& line);

  std::string dir_;
  std::string path_;
  std::uint64_t next_id_ = 1;
  std::vector<LedgerJob> recovered_;
  std::mutex mu_;
  int fd_ = -1;
};

}  // namespace msim::serve
