#include "serve/codec.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <string>

#include "serve/http.hpp"
#include "sim/cli_spec.hpp"

namespace msim::serve {

namespace {

/// Shortest round-trip text for a JSON number, matching what a user would
/// have typed on the CLI: integral values print without a decimal point.
std::string number_text(double value) {
  if (std::floor(value) == value && std::abs(value) <= 9.007199254740992e15) {
    const auto n = static_cast<long long>(value);
    return std::to_string(n);
  }
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc{}) {
    throw HttpError(400, "unrepresentable number in config");
  }
  return std::string(buf, end);
}

}  // namespace

KvConfig kv_from_json(const JsonValue& object) {
  if (!object.is_object()) {
    throw HttpError(400, "\"config\" must be a JSON object of scalar knobs");
  }
  KvConfig kv;
  for (const auto& [key, value] : object.as_object()) {
    switch (value.type()) {
      case JsonValue::Type::kString:
        kv.set(key, value.as_string());
        break;
      case JsonValue::Type::kBool:
        kv.set(key, value.as_bool() ? "1" : "0");
        break;
      case JsonValue::Type::kNumber:
        kv.set(key, number_text(value.as_number()));
        break;
      default:
        throw HttpError(400, "config." + key +
                                 " must be a scalar (string, number or "
                                 "boolean); nested values are not knobs");
    }
  }
  return kv;
}

void validate_request_keys(const KvConfig& kv) {
  const auto accepted = sim::serve_request_keys();
  const auto rejected = sim::serve_rejected_keys();
  for (const auto& [key, value] : kv.entries()) {
    if (std::find(accepted.begin(), accepted.end(), key) != accepted.end()) {
      continue;
    }
    const auto it =
        std::find_if(rejected.begin(), rejected.end(),
                     [&key = key](const sim::RejectedKey& r) {
                       return r.key == key;
                     });
    if (it != rejected.end()) {
      throw HttpError(400, "config." + key +
                               " is not accepted over the wire: " +
                               std::string(it->reason));
    }
    throw HttpError(400, "unknown config key '" + key +
                             "' (accepted keys are the msim_cli simulation "
                             "knobs; see docs/SERVICE.md)");
  }
}

}  // namespace msim::serve
