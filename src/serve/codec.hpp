// Request codec: a job's JSON "config" object -> the same KvConfig the CLI
// builds from its command line, plus validation of the keys against the
// serve request surface (sim/cli_spec.hpp).
//
// The wire accepts exactly the knobs msim_cli accepts, minus the ones that
// make no sense on a shared daemon (local output paths, CLI-only modes);
// serve_request_keys()/serve_rejected_keys() partition the CLI key set and
// every rejection is served back with its documented reason, so a client
// pasting a working msim_cli invocation learns precisely which knob to
// drop (docs/SERVICE.md).
#pragma once

#include "common/config.hpp"
#include "common/json.hpp"

namespace msim::serve {

/// Converts a parsed JSON object of scalars into a KvConfig with the same
/// value spellings the CLI would have received: strings verbatim, booleans
/// as "1"/"0", numbers in shortest round-trip form (integral values
/// without a decimal point, so `"iq": 64` becomes iq=64).  Throws
/// HttpError(400) for nested objects/arrays/null values.
[[nodiscard]] KvConfig kv_from_json(const JsonValue& object);

/// Rejects keys outside sim::serve_request_keys() with HttpError(400):
/// knobs on the rejected list quote their documented reason, unknown keys
/// point at docs/SERVICE.md.
void validate_request_keys(const KvConfig& kv);

}  // namespace msim::serve
