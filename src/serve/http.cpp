#include "serve/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <sstream>

#include "common/json.hpp"

namespace msim::serve {

namespace {

std::string lowercase(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

bool HttpRequest::wants_close() const {
  const auto it = headers.find("connection");
  return it != headers.end() && lowercase(it->second) == "close";
}

HttpRequestParser::HttpRequestParser(std::size_t max_head_bytes,
                                     std::size_t max_body_bytes)
    : max_head_bytes_(max_head_bytes), max_body_bytes_(max_body_bytes) {}

bool HttpRequestParser::consume(std::string_view bytes) {
  if (complete_) return true;
  buffer_.append(bytes);
  if (!head_done_) parse_head();
  if (head_done_ && buffer_.size() >= body_start_ + content_length_) {
    complete_ = true;
  }
  return complete_;
}

void HttpRequestParser::parse_head() {
  // The head ends at the first blank line; tolerate bare-LF clients.
  std::size_t head_end = buffer_.find("\r\n\r\n");
  std::size_t sep = 4;
  if (const std::size_t lf = buffer_.find("\n\n");
      lf != std::string::npos && (head_end == std::string::npos || lf < head_end)) {
    head_end = lf;
    sep = 2;
  }
  if (head_end == std::string::npos) {
    if (buffer_.size() > max_head_bytes_) {
      throw HttpError(413, "request head exceeds " +
                               std::to_string(max_head_bytes_) + " bytes");
    }
    return;
  }
  if (head_end > max_head_bytes_) {
    throw HttpError(413, "request head exceeds " +
                             std::to_string(max_head_bytes_) + " bytes");
  }

  request_ = HttpRequest{};
  std::istringstream head(buffer_.substr(0, head_end));
  std::string line;
  if (!std::getline(head, line)) {
    throw HttpError(400, "empty request head");
  }
  {
    std::istringstream rl{std::string(trim(line))};
    std::string version;
    if (!(rl >> request_.method >> request_.target >> version) ||
        version.rfind("HTTP/", 0) != 0) {
      throw HttpError(400,
                      "malformed request line (expected 'METHOD /path "
                      "HTTP/1.1'): '" +
                          std::string(trim(line)) + "'");
    }
  }
  while (std::getline(head, line)) {
    const std::string_view sv = trim(line);
    if (sv.empty()) continue;
    const std::size_t colon = sv.find(':');
    if (colon == std::string_view::npos) {
      throw HttpError(400, "malformed header line (expected 'Name: value'): '" +
                               std::string(sv) + "'");
    }
    request_.headers[lowercase(std::string(sv.substr(0, colon)))] =
        std::string(trim(sv.substr(colon + 1)));
  }

  if (request_.headers.contains("transfer_encoding") ||
      request_.headers.contains("transfer-encoding")) {
    throw HttpError(400,
                    "chunked request bodies are not supported; send "
                    "Content-Length");
  }
  content_length_ = 0;
  if (const auto it = request_.headers.find("content-length");
      it != request_.headers.end()) {
    const std::string& v = it->second;
    if (v.empty() ||
        !std::all_of(v.begin(), v.end(),
                     [](unsigned char c) { return std::isdigit(c); })) {
      throw HttpError(400, "malformed Content-Length: '" + v + "'");
    }
    content_length_ = std::stoull(v);
    if (content_length_ > max_body_bytes_) {
      throw HttpError(413, "request body of " + std::to_string(content_length_) +
                               " bytes exceeds the " +
                               std::to_string(max_body_bytes_) + "-byte limit");
    }
  }
  body_start_ = head_end + sep;
  head_done_ = true;
}

HttpRequest HttpRequestParser::take() {
  HttpRequest out = std::move(request_);
  out.body = buffer_.substr(body_start_, content_length_);
  buffer_.erase(0, body_start_ + content_length_);
  request_ = HttpRequest{};
  head_done_ = false;
  complete_ = false;
  body_start_ = 0;
  content_length_ = 0;
  // Re-parse any pipelined bytes already buffered.
  if (!buffer_.empty()) consume({});
  return out;
}

std::string_view status_reason(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string format_response(int status, std::string_view content_type,
                            std::string_view body, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " ";
  out += status_reason(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += keep_alive ? "\r\nConnection: keep-alive" : "\r\nConnection: close";
  out += "\r\n\r\n";
  out += body;
  return out;
}

std::string format_stream_head(int status, std::string_view content_type) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " ";
  out += status_reason(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n";
  return out;
}

std::string format_chunk(std::string_view data) {
  std::ostringstream os;
  os << std::hex << data.size() << "\r\n" << data << "\r\n";
  return os.str();
}

std::string error_body(int status, std::string_view message) {
  std::string out = "{\"error\":{\"status\":" + std::to_string(status) +
                    ",\"message\":" + json_escape(message) + "}}\n";
  return out;
}

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

IoStatus Socket::read_some(std::string& out, std::size_t max, int timeout_ms) {
  if (fd_ < 0) return IoStatus::kError;
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready == 0) return IoStatus::kTimeout;
  if (ready < 0) return errno == EINTR ? IoStatus::kTimeout : IoStatus::kError;
  std::string chunk(max, '\0');
  const ssize_t n = ::recv(fd_, chunk.data(), chunk.size(), 0);
  if (n == 0) return IoStatus::kEof;
  if (n < 0) return errno == EINTR ? IoStatus::kTimeout : IoStatus::kError;
  out.append(chunk.data(), static_cast<std::size_t>(n));
  return IoStatus::kOk;
}

bool Socket::write_all(std::string_view data, int timeout_ms) {
  if (fd_ < 0) return false;
  while (!data.empty()) {
    pollfd pfd{fd_, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready == 0) return false;
    if (ready < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

namespace {

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("invalid IPv4 bind address: '" + host + "'");
  }
  return addr;
}

}  // namespace

Listener::Listener(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("socket(): ") + std::strerror(errno));
  }
  socket_ = Socket(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_addr(host, port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw std::runtime_error("cannot bind " + host + ":" +
                             std::to_string(port) + ": " +
                             std::strerror(errno));
  }
  if (::listen(fd, 64) != 0) {
    throw std::runtime_error(std::string("listen(): ") + std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    throw std::runtime_error(std::string("getsockname(): ") +
                             std::strerror(errno));
  }
  port_ = ntohs(bound.sin_port);
}

Socket Listener::accept(int timeout_ms) {
  if (!socket_.valid()) return Socket{};
  pollfd pfd{socket_.fd(), POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0) return Socket{};
  const int fd = ::accept(socket_.fd(), nullptr, nullptr);
  if (fd < 0) return Socket{};
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(fd);
}

Socket Listener::connect(const std::string& host, std::uint16_t port,
                         int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Socket{};
  Socket sock(fd);
  sockaddr_in addr = make_addr(host, port);
  // A blocking connect to localhost either succeeds or fails fast; the
  // timeout parameter exists for interface symmetry with accept().
  (void)timeout_ms;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Socket{};
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

}  // namespace msim::serve
