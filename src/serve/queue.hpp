// The daemon's work queue: bounded, prioritized, cancellable.
//
// Submissions enter a priority queue (higher priority first, FIFO within a
// priority) with a hard depth bound -- a full queue rejects with 429
// instead of buffering unboundedly.  Executor threads pull jobs with
// next_runnable(); every state transition happens under the queue's one
// mutex, so status snapshots are always consistent.  Cancellation is
// two-faced: a queued job is removed and marked kCancelled immediately,
// a running job gets its cooperative cancel flag raised
// (sim::RunConfig::cancel) and stops at the simulator's next poll
// boundary -- its sweep journal stays resumable (docs/SERVICE.md).
//
// Durability hooks (docs/SERVICE.md "Durability & recovery"): a
// transition hook observes every state change *outside* the queue mutex,
// so the server can append fsync'd ledger records without serializing
// status reads behind disk writes.  Jobs may carry an idempotency key
// (enqueue dedupes a resubmission to the existing job) and a TTL
// (queued-too-long jobs transition to the terminal kExpired state instead
// of running stale).  restore() re-inserts jobs replayed from the ledger
// after a restart without firing hooks -- the compacted ledger already
// holds their records.
//
// Each job owns an EventLog: the runner appends formatted progress lines
// (obs::JsonlProgressSink::format) and any number of streaming readers
// replay-then-follow it, so a client can attach to a job's event stream
// before, during, or after the run.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/config.hpp"

namespace msim::serve {

enum class JobState : std::uint8_t {
  kQueued = 0,
  kRunning,
  kDone,
  kFailed,
  kCancelled,
  kExpired,
};

[[nodiscard]] std::string_view job_state_name(JobState state) noexcept;

/// Append-only, thread-safe line log with blocking readers.  Closed when
/// the producing job finishes; readers then drain the remaining lines and
/// see kClosed.  Capped at kMaxLines to bound daemon memory -- overflow
/// drops further lines after a single truncation marker.
class EventLog {
 public:
  static constexpr std::size_t kMaxLines = 65'536;

  enum class Fetch : std::uint8_t { kLine, kClosed, kTimeout };

  void append(std::string line);
  void close();

  /// Fetches the line at `index` into `line`, waiting up to `timeout_ms`:
  /// kLine on success, kClosed when the log ended before `index`,
  /// kTimeout when the line may still arrive.
  Fetch fetch(std::size_t index, int timeout_ms, std::string& line);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool closed() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::string> lines_;
  bool closed_ = false;
  bool truncated_ = false;
};

/// One submitted experiment.  `kv`, `is_sweep`, `journal_path`,
/// `priority`, `idempotency_key`, `ttl_ms`, `resume_sweep` and
/// `result_path` are immutable after enqueue; `state`/`result`/`error`
/// are guarded by the owning JobQueue's mutex (read them through
/// snapshot()); `cancel` is the cooperative flag the simulator polls;
/// `events` has its own lock.
struct Job {
  std::uint64_t id = 0;
  int priority = 0;
  KvConfig kv;
  bool is_sweep = false;
  std::string journal_path;  ///< server-assigned; "" = unjournaled
  std::string idempotency_key;  ///< "" = no dedupe
  std::uint64_t ttl_ms = 0;     ///< max time queued; 0 = forever
  std::chrono::steady_clock::time_point deadline{};  ///< set when ttl_ms != 0
  bool resume_sweep = false;  ///< recovered job: resume from its journal
  std::string result_path;    ///< ledger-backed result file; "" = memory only
  std::atomic<bool> cancel{false};
  EventLog events;

  JobState state = JobState::kQueued;
  std::string result;  ///< exact bytes served by GET .../result (kDone)
  std::string error;   ///< failure text (kFailed / kCancelled / kExpired)
};

/// Consistent view of a job's mutable fields.
struct JobSnapshot {
  JobState state = JobState::kQueued;
  std::string error;
  bool has_result = false;
};

/// Aggregate queue counters for GET /v1/stats.
struct QueueStats {
  std::uint64_t submitted = 0;
  std::uint64_t done = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t expired = 0;
  std::size_t queued = 0;
  std::size_t running = 0;
};

class JobQueue {
 public:
  /// Observes every state change: kQueued on accept, kRunning on
  /// dispatch, then exactly one terminal state.  Always invoked outside
  /// the queue mutex (it may fsync); transitions of *different* jobs may
  /// therefore reach the hook slightly out of submission order.
  using TransitionHook = std::function<void(const Job&, JobState)>;

  explicit JobQueue(std::size_t depth) : depth_(depth) {}

  /// Installs the transition hook.  Call before any executor starts.
  void set_transition_hook(TransitionHook hook) { hook_ = std::move(hook); }

  /// Raises the id floor (ledger recovery: never reissue a replayed id).
  void set_next_id(std::uint64_t next_id);

  /// The next job id; ids are dense and start at 1.
  [[nodiscard]] std::uint64_t allocate_id();

  /// Enqueues a fully populated job and returns it -- unless the job
  /// carries an idempotency key already registered, in which case the
  /// *existing* job is returned and nothing is enqueued (the dedupe
  /// contract; compare the returned pointer).  Throws HttpError(429) when
  /// `depth` jobs are already queued and HttpError(503) once draining.
  [[nodiscard]] std::shared_ptr<Job> enqueue(std::shared_ptr<Job> job);

  /// Re-inserts a job replayed from the ledger: terminal jobs (state
  /// pre-set, result loaded) are registered finished; anything else is
  /// re-enqueued bypassing the depth bound (it was already accepted).
  /// Fires no hooks -- the compacted ledger already records these jobs.
  void restore(std::shared_ptr<Job> job);

  /// Blocks until a job is runnable; nullptr once stop() was called or
  /// draining started and the queue is empty (the executor should exit).
  /// The returned job is already marked kRunning.  Jobs whose TTL lapsed
  /// while queued are expired instead of dispatched.
  [[nodiscard]] std::shared_ptr<Job> next_runnable();

  /// Expires every queued job whose deadline passed (also done lazily by
  /// next_runnable; status endpoints call this so expiry is observable
  /// even while all executors are busy).
  void expire_overdue();

  [[nodiscard]] std::shared_ptr<Job> find(std::uint64_t id) const;

  [[nodiscard]] JobSnapshot snapshot(const Job& job) const;

  /// Copy of a finished job's result bytes (empty unless kDone).
  [[nodiscard]] std::string result_bytes(const Job& job) const;

  /// Terminal transition; also closes the job's event log.
  void finish(Job& job, JobState state, std::string result,
              std::string error);

  /// Queued -> kCancelled (dequeued, event log closed); running -> cancel
  /// flag raised.  False when the id is unknown.
  bool cancel(std::uint64_t id);

  /// Stops accepting work (enqueue -> 503) and cancels every queued job;
  /// running jobs keep going (pass cancel_running to stop them too).
  void drain(bool cancel_running);

  [[nodiscard]] bool draining() const;

  /// True when nothing is queued or running.
  [[nodiscard]] bool idle() const;

  /// Wakes every executor for shutdown; next_runnable() returns nullptr.
  void stop();

  [[nodiscard]] QueueStats stats() const;

 private:
  /// Removes overdue jobs from ready_ and marks them kExpired; the caller
  /// holds mu_ and must fire hooks / close event logs for the returned
  /// jobs after unlocking.
  std::vector<std::shared_ptr<Job>> collect_expired_locked(
      std::chrono::steady_clock::time_point now);

  void fire_hook(const Job& job, JobState state) const;

  std::size_t depth_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<std::uint64_t> next_id_{1};
  TransitionHook hook_;
  /// Runnable jobs keyed (-priority, id): begin() is the highest priority,
  /// oldest submission.
  std::map<std::pair<int, std::uint64_t>, std::shared_ptr<Job>> ready_;
  std::map<std::uint64_t, std::shared_ptr<Job>> jobs_;
  std::map<std::string, std::shared_ptr<Job>, std::less<>> by_key_;
  std::size_t running_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t done_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t expired_ = 0;
  bool draining_ = false;
  bool stopped_ = false;
};

}  // namespace msim::serve
