// The daemon's work queue: bounded, prioritized, cancellable.
//
// Submissions enter a priority queue (higher priority first, FIFO within a
// priority) with a hard depth bound -- a full queue rejects with 429
// instead of buffering unboundedly.  Executor threads pull jobs with
// next_runnable(); every state transition happens under the queue's one
// mutex, so status snapshots are always consistent.  Cancellation is
// two-faced: a queued job is removed and marked kCancelled immediately,
// a running job gets its cooperative cancel flag raised
// (sim::RunConfig::cancel) and stops at the simulator's next poll
// boundary -- its sweep journal stays resumable (docs/SERVICE.md).
//
// Each job owns an EventLog: the runner appends formatted progress lines
// (obs::JsonlProgressSink::format) and any number of streaming readers
// replay-then-follow it, so a client can attach to a job's event stream
// before, during, or after the run.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/config.hpp"

namespace msim::serve {

enum class JobState : std::uint8_t {
  kQueued = 0,
  kRunning,
  kDone,
  kFailed,
  kCancelled,
};

[[nodiscard]] std::string_view job_state_name(JobState state) noexcept;

/// Append-only, thread-safe line log with blocking readers.  Closed when
/// the producing job finishes; readers then drain the remaining lines and
/// see kClosed.  Capped at kMaxLines to bound daemon memory -- overflow
/// drops further lines after a single truncation marker.
class EventLog {
 public:
  static constexpr std::size_t kMaxLines = 65'536;

  enum class Fetch : std::uint8_t { kLine, kClosed, kTimeout };

  void append(std::string line);
  void close();

  /// Fetches the line at `index` into `line`, waiting up to `timeout_ms`:
  /// kLine on success, kClosed when the log ended before `index`,
  /// kTimeout when the line may still arrive.
  Fetch fetch(std::size_t index, int timeout_ms, std::string& line);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool closed() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::string> lines_;
  bool closed_ = false;
  bool truncated_ = false;
};

/// One submitted experiment.  `kv`, `is_sweep`, `journal_path` and
/// `priority` are immutable after enqueue; `state`/`result`/`error` are
/// guarded by the owning JobQueue's mutex (read them through snapshot());
/// `cancel` is the cooperative flag the simulator polls; `events` has its
/// own lock.
struct Job {
  std::uint64_t id = 0;
  int priority = 0;
  KvConfig kv;
  bool is_sweep = false;
  std::string journal_path;  ///< server-assigned; "" = unjournaled
  std::atomic<bool> cancel{false};
  EventLog events;

  JobState state = JobState::kQueued;
  std::string result;  ///< exact bytes served by GET .../result (kDone)
  std::string error;   ///< failure text (kFailed / kCancelled)
};

/// Consistent view of a job's mutable fields.
struct JobSnapshot {
  JobState state = JobState::kQueued;
  std::string error;
  bool has_result = false;
};

/// Aggregate queue counters for GET /v1/stats.
struct QueueStats {
  std::uint64_t submitted = 0;
  std::uint64_t done = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::size_t queued = 0;
  std::size_t running = 0;
};

class JobQueue {
 public:
  explicit JobQueue(std::size_t depth) : depth_(depth) {}

  /// The next job id; ids are dense and start at 1.
  [[nodiscard]] std::uint64_t allocate_id();

  /// Enqueues a fully populated job.  Throws HttpError(429) when `depth`
  /// jobs are already queued and HttpError(503) once draining.
  void enqueue(std::shared_ptr<Job> job);

  /// Blocks until a job is runnable; nullptr once stop() was called or
  /// draining started and the queue is empty (the executor should exit).
  /// The returned job is already marked kRunning.
  [[nodiscard]] std::shared_ptr<Job> next_runnable();

  [[nodiscard]] std::shared_ptr<Job> find(std::uint64_t id) const;

  [[nodiscard]] JobSnapshot snapshot(const Job& job) const;

  /// Copy of a finished job's result bytes (empty unless kDone).
  [[nodiscard]] std::string result_bytes(const Job& job) const;

  /// Terminal transition; also closes the job's event log.
  void finish(Job& job, JobState state, std::string result,
              std::string error);

  /// Queued -> kCancelled (dequeued, event log closed); running -> cancel
  /// flag raised.  False when the id is unknown.
  bool cancel(std::uint64_t id);

  /// Stops accepting work (enqueue -> 503) and cancels every queued job;
  /// running jobs keep going (pass cancel_running to stop them too).
  void drain(bool cancel_running);

  [[nodiscard]] bool draining() const;

  /// True when nothing is queued or running.
  [[nodiscard]] bool idle() const;

  /// Wakes every executor for shutdown; next_runnable() returns nullptr.
  void stop();

  [[nodiscard]] QueueStats stats() const;

 private:
  std::size_t depth_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<std::uint64_t> next_id_{1};
  /// Runnable jobs keyed (-priority, id): begin() is the highest priority,
  /// oldest submission.
  std::map<std::pair<int, std::uint64_t>, std::shared_ptr<Job>> ready_;
  std::map<std::uint64_t, std::shared_ptr<Job>> jobs_;
  std::size_t running_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t done_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t cancelled_ = 0;
  bool draining_ = false;
  bool stopped_ = false;
};

}  // namespace msim::serve
