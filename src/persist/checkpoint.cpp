#include "persist/checkpoint.hpp"

#include <cstdint>
#include <vector>

#include "common/archive.hpp"
#include "persist/atomic_file.hpp"
#include "smt/pipeline.hpp"

namespace msim::persist {

namespace {

constexpr const char* kMagic = "msim-checkpoint";

std::string hex_u64(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out = "0x";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out += kDigits[(v >> shift) & 0xf];
  }
  return out;
}

}  // namespace

void save_checkpoint(const std::string& path, const smt::Pipeline& pipe,
                     const CheckpointMeta& meta) {
  Archive ar = Archive::saver();
  std::string magic = kMagic;
  ar.io(magic);
  std::uint32_t version = kCheckpointFormatVersion;
  ar.io(version);
  std::uint64_t fingerprint = meta.config_fingerprint;
  ar.io(fingerprint);
  auto phase = static_cast<std::uint8_t>(meta.phase);
  ar.io(phase);
  pipe.save_state(ar);
  write_file_atomic(path, ar.bytes());
}

CheckpointMeta load_checkpoint(const std::string& path, smt::Pipeline& pipe,
                               std::uint64_t expected_fingerprint) {
  std::string raw;
  try {
    raw = read_file(path);
  } catch (const std::exception& e) {
    // Unreadable resume file is a persistence failure like any other: same
    // exception type, so callers triage one way (docs/CHECKPOINT.md).
    throw PersistError(std::string("cannot read checkpoint: ") + e.what());
  }
  Archive ar = Archive::loader(
      std::vector<std::uint8_t>(raw.begin(), raw.end()));
  std::string magic;
  ar.io(magic);
  if (magic != kMagic) {
    throw PersistError("'" + path + "' is not a msim checkpoint file");
  }
  std::uint32_t version = 0;
  ar.io(version);
  if (version != kCheckpointFormatVersion) {
    throw PersistError(
        "'" + path + "' has checkpoint format version " +
        std::to_string(version) + " but this binary writes version " +
        std::to_string(kCheckpointFormatVersion) +
        "; re-run from scratch or use a matching build (docs/CHECKPOINT.md)");
  }
  std::uint64_t fingerprint = 0;
  ar.io(fingerprint);
  if (fingerprint != expected_fingerprint) {
    throw PersistError(
        "'" + path + "' was written for configuration fingerprint " +
        hex_u64(fingerprint) + " but the current run has " +
        hex_u64(expected_fingerprint) +
        "; a checkpoint only resumes the exact configuration, workload and "
        "seed it was saved from (docs/CHECKPOINT.md)");
  }
  std::uint8_t phase = 0;
  ar.io(phase);
  if (phase > static_cast<std::uint8_t>(RunPhase::kMeasure)) {
    throw PersistError("'" + path + "' has an invalid run phase byte");
  }
  pipe.load_state(ar);
  ar.expect_end();
  return CheckpointMeta{fingerprint, static_cast<RunPhase>(phase)};
}

}  // namespace msim::persist
