// Pipeline checkpoint files: a versioned container around the Archive
// payload of smt::Pipeline::save_state.
//
// Layout (all via persist::Archive, little-endian):
//   magic "msim-checkpoint"   -- file type
//   format_version u32        -- kCheckpointFormatVersion
//   config_fingerprint u64    -- hash of the run configuration + workload
//   phase u8                  -- 0 = warming up, 1 = measuring
//   pipeline payload          -- Pipeline::save_state
//
// A load verifies magic, version and fingerprint before touching the
// pipeline, and every mismatch names what differed so triage is mechanical
// (see docs/CHECKPOINT.md).  Files are written atomically (temp + rename).
#pragma once

#include <cstdint>
#include <string>

namespace msim::smt {
class Pipeline;
}

namespace msim::persist {

/// v2: the pipeline payload gained the interval-telemetry engine section
/// (ring, phase tables, stream cursor) after the sampled-gauge block.
/// v3: interval records carry a region_id (sampled mode, docs/SAMPLING.md).
inline constexpr std::uint32_t kCheckpointFormatVersion = 3;

/// Run phase recorded in a checkpoint, so resume knows whether the
/// post-warm-up stats reset already happened.
enum class RunPhase : std::uint8_t { kWarmup = 0, kMeasure = 1 };

struct CheckpointMeta {
  std::uint64_t config_fingerprint = 0;
  RunPhase phase = RunPhase::kWarmup;
};

/// Serializes `pipe` (plus `meta`) and atomically replaces `path`.
void save_checkpoint(const std::string& path, const smt::Pipeline& pipe,
                     const CheckpointMeta& meta);

/// Restores `pipe` from `path`.  `pipe` must be freshly constructed with
/// the same configuration, workload and seed as the saver's; the caller
/// passes that configuration's fingerprint in `expected_fingerprint`.
/// Throws PersistError on malformed content or any mismatch.
[[nodiscard]] CheckpointMeta load_checkpoint(const std::string& path,
                                             smt::Pipeline& pipe,
                                             std::uint64_t expected_fingerprint);

}  // namespace msim::persist
