// Streaming JSONL export of interval telemetry (schema msim.intervals.v1).
//
// The writer appends to `<path>.part` -- header line first, then one
// compact JSON line per obs::IntervalRecord, fsynced in batches like the
// sweep journal -- and a clean finalize() fsyncs and atomically renames to
// `path`.  An interrupted run leaves the .part behind; the resuming run's
// constructor validates its header and truncates it to the checkpoint's
// stream cursor (obs::IntervalEngine::captured_total), dropping any records
// the killed run captured after its last checkpoint, so the resumed
// stream's final bytes match an uninterrupted run's exactly.
#pragma once

#include <cstdint>
#include <string>

#include "obs/interval.hpp"

namespace msim::persist {

class IntervalStreamWriter {
 public:
  /// `already_streamed` = 0 starts a fresh stream; > 0 resumes the .part
  /// left by an interrupted run (PersistError when it is missing, has a
  /// different header, or holds fewer complete records than the cursor).
  IntervalStreamWriter(std::string path, const obs::IntervalConfig& config,
                       unsigned thread_count, std::uint64_t already_streamed);
  ~IntervalStreamWriter();

  IntervalStreamWriter(const IntervalStreamWriter&) = delete;
  IntervalStreamWriter& operator=(const IntervalStreamWriter&) = delete;

  void append(const obs::IntervalRecord& record);

  /// Flush + fsync + rename .part over `path`.  Call on clean completion
  /// only; after finalize() the writer is closed.
  void finalize();

  /// Records appended by this writer (excludes resumed-over lines).
  [[nodiscard]] std::uint64_t written() const noexcept { return written_; }

  /// Appends are fsynced every this many lines (and on finalize).
  static constexpr std::uint64_t kFsyncBatch = 64;

 private:
  void write_all(std::string_view text);
  void sync();

  std::string path_;
  int fd_ = -1;
  std::uint64_t written_ = 0;
  std::uint64_t unsynced_ = 0;
};

}  // namespace msim::persist
