#include "persist/atomic_file.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

namespace msim::persist {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " '" + path + "': " + std::strerror(errno));
}

/// fsync the directory containing `path` so a completed rename is durable.
void sync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  if (fd < 0) return;  // best-effort: some filesystems refuse O_RDONLY dirs
  (void)::fsync(fd);
  (void)::close(fd);
}

}  // namespace

void write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> bytes) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("cannot create", tmp);
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ::ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      (void)::close(fd);
      (void)::unlink(tmp.c_str());
      fail("write failed for", tmp);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    (void)::close(fd);
    (void)::unlink(tmp.c_str());
    fail("fsync failed for", tmp);
  }
  if (::close(fd) != 0) {
    (void)::unlink(tmp.c_str());
    fail("close failed for", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    (void)::unlink(tmp.c_str());
    fail("rename failed onto", path);
  }
  sync_parent_dir(path);
}

void write_text_atomic(const std::string& path, std::string_view text) {
  write_file_atomic(path,
                    {reinterpret_cast<const std::uint8_t*>(text.data()),
                     text.size()});
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open '" + path + "' for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) throw std::runtime_error("read failed for '" + path + "'");
  return std::move(buf).str();
}

}  // namespace msim::persist
