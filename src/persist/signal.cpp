#include "persist/signal.hpp"

#include <csignal>

namespace msim::persist {

namespace {

volatile std::sig_atomic_t g_pending_signal = 0;

void flag_handler(int signum) { g_pending_signal = signum; }

struct sigaction g_prev_int;
struct sigaction g_prev_term;

}  // namespace

SignalGuard::SignalGuard() {
  struct sigaction sa = {};
  sa.sa_handler = &flag_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: let blocking IO see the interruption
  (void)sigaction(SIGINT, &sa, &g_prev_int);
  (void)sigaction(SIGTERM, &sa, &g_prev_term);
}

SignalGuard::~SignalGuard() {
  (void)sigaction(SIGINT, &g_prev_int, nullptr);
  (void)sigaction(SIGTERM, &g_prev_term, nullptr);
}

int signal_pending() noexcept { return static_cast<int>(g_pending_signal); }

void clear_pending_signal() noexcept { g_pending_signal = 0; }

void reset_signals_in_forked_child() noexcept {
  struct sigaction dfl = {};
  dfl.sa_handler = SIG_DFL;
  sigemptyset(&dfl.sa_mask);
  (void)sigaction(SIGINT, &dfl, nullptr);
  (void)sigaction(SIGTERM, &dfl, nullptr);
  g_pending_signal = 0;
}

void throw_if_interrupted() {
  const int signum = signal_pending();
  if (signum != 0) throw Interrupted(signum);
}

}  // namespace msim::persist
