// Write-ahead journal for crash-recoverable sweeps.
//
// Append-only JSONL: the first line is a header carrying the journal format
// version and the sweep-request fingerprint; each subsequent line records
// one completed sweep cell run as {"cell": key, "payload": hex}.  Appends
// are one whole line plus fsync, so a crash can lose at most the line being
// written; the loader stops at the first malformed line (a torn tail),
// truncates the file back to the last whole line, and resumes with
// everything before it (without the truncation, the next append would be
// glued onto the torn bytes and a later load would discard *both* records).
// The payload is an opaque hex-encoded persist::Archive blob -- the journal
// does not know what a MixResult is.
//
// Process-isolated sweeps (robust::SweepSupervisor) give every worker its
// own journal shard at `<path>.shard<slot>` in this same format; the
// supervisor merges the shards back into `<path>` in fixed grid order once
// the sweep completes, so a resume — even after `kill -9` of the supervisor
// itself — replays the union of the merged journal and any surviving
// shards byte-identically.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace msim::persist {

/// v2: the RunResult payload gained interval records + drop count.
/// v3: interval records carry a region_id (sampled mode, docs/SAMPLING.md).
/// v4: MixResult payloads gained the failure-diagnostic field.
inline constexpr std::uint32_t kJournalFormatVersion = 4;

class SweepJournal {
 public:
  /// Opens `path` for appending.  With `resume`, an existing file is
  /// validated (format version + fingerprint, PersistError on mismatch)
  /// and its completed entries are loaded; without it, any existing file
  /// is replaced by a fresh header (atomic).  A missing file starts fresh
  /// either way, so `resume` against a journal that never got written
  /// simply runs the whole sweep.
  SweepJournal(std::string path, std::uint64_t fingerprint, bool resume);
  ~SweepJournal();

  SweepJournal(const SweepJournal&) = delete;
  SweepJournal& operator=(const SweepJournal&) = delete;

  /// The payload recorded for `key`, or nullptr.  Loaded entries only;
  /// lookups do not see keys appended by this process (callers do not
  /// re-run what they just ran).
  [[nodiscard]] const std::vector<std::uint8_t>* find(const std::string& key) const;

  [[nodiscard]] std::size_t loaded_entries() const noexcept { return entries_.size(); }

  /// All loaded entries, keyed by cell.  Like find(), this reflects the
  /// load-time state only, never this process's own appends.
  [[nodiscard]] const std::map<std::string, std::vector<std::uint8_t>>& entries()
      const noexcept {
    return entries_;
  }

  /// Durably appends one completed-cell record.  NOT thread-safe: callers
  /// running cells in parallel serialize appends under their own mutex.
  void append(const std::string& key, const std::vector<std::uint8_t>& payload);

  /// Read-only load of a journal's completed entries: validates the header
  /// (PersistError on version/fingerprint mismatch), tolerates a torn tail
  /// without modifying the file, and returns empty for a missing file.
  /// Used by the sweep supervisor to union the merged journal with worker
  /// shards without holding any of them open for appending.
  [[nodiscard]] static std::map<std::string, std::vector<std::uint8_t>>
  read_completed(const std::string& path, std::uint64_t fingerprint);

  /// Atomically replaces `path` with a fresh journal holding `entries` in
  /// the given order (the supervisor's fixed-grid-order merge).  Readers
  /// see either the old journal or the complete merged one, never a mix.
  static void write_merged(
      const std::string& path, std::uint64_t fingerprint,
      const std::vector<std::pair<std::string, std::vector<std::uint8_t>>>& entries);

 private:
  std::string path_;
  int fd_ = -1;
  std::map<std::string, std::vector<std::uint8_t>> entries_;
};

}  // namespace msim::persist
