// Write-ahead journal for crash-recoverable sweeps.
//
// Append-only JSONL: the first line is a header carrying the journal format
// version and the sweep-request fingerprint; each subsequent line records
// one completed sweep cell run as {"cell": key, "payload": hex}.  Appends
// are one whole line plus fsync, so a crash can lose at most the line being
// written; the loader stops at the first malformed line (a torn tail) and
// resumes with everything before it.  The payload is an opaque hex-encoded
// persist::Archive blob -- the journal does not know what a MixResult is.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace msim::persist {

/// v2: the RunResult payload gained interval records + drop count.
/// v3: interval records carry a region_id (sampled mode, docs/SAMPLING.md).
inline constexpr std::uint32_t kJournalFormatVersion = 3;

class SweepJournal {
 public:
  /// Opens `path` for appending.  With `resume`, an existing file is
  /// validated (format version + fingerprint, PersistError on mismatch)
  /// and its completed entries are loaded; without it, any existing file
  /// is replaced by a fresh header (atomic).  A missing file starts fresh
  /// either way, so `resume` against a journal that never got written
  /// simply runs the whole sweep.
  SweepJournal(std::string path, std::uint64_t fingerprint, bool resume);
  ~SweepJournal();

  SweepJournal(const SweepJournal&) = delete;
  SweepJournal& operator=(const SweepJournal&) = delete;

  /// The payload recorded for `key`, or nullptr.  Loaded entries only;
  /// lookups do not see keys appended by this process (callers do not
  /// re-run what they just ran).
  [[nodiscard]] const std::vector<std::uint8_t>* find(const std::string& key) const;

  [[nodiscard]] std::size_t loaded_entries() const noexcept { return entries_.size(); }

  /// Durably appends one completed-cell record.  NOT thread-safe: callers
  /// running cells in parallel serialize appends under their own mutex.
  void append(const std::string& key, const std::vector<std::uint8_t>& payload);

 private:
  std::string path_;
  int fd_ = -1;
  std::map<std::string, std::vector<std::uint8_t>> entries_;
};

}  // namespace msim::persist
