// Crash-safe file replacement: write-temp + fsync + atomic rename.
//
// Every artefact the simulator leaves on disk (stats JSON, sweep JSON,
// diagnostic bundles, checkpoints) goes through here, so a crash or signal
// mid-write can never leave a truncated, unparseable file under the final
// name: readers either see the complete old content or the complete new
// content.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace msim::persist {

/// Atomically replaces `path` with `bytes`: writes `path` + ".tmp.<pid>",
/// fsyncs it, renames it over `path`, then fsyncs the directory so the
/// rename itself survives a power cut.  Throws std::runtime_error with the
/// errno text on any failure (the temp file is unlinked best-effort).
void write_file_atomic(const std::string& path, std::span<const std::uint8_t> bytes);

/// write_file_atomic for text content.
void write_text_atomic(const std::string& path, std::string_view text);

/// Reads the whole file; throws std::runtime_error when unreadable.
[[nodiscard]] std::string read_file(const std::string& path);

}  // namespace msim::persist
