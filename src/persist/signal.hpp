// Cooperative SIGINT/SIGTERM handling for checkpointable runs.
//
// The handlers only set a flag; simulation loops poll it at safe points
// (cycle-chunk and sweep-cell boundaries), write a final checkpoint /
// journal flush, and throw Interrupted.  main() catches it and exits with
// the conventional 128+signum, so shells and CI see the usual "killed by
// signal N" status while the on-disk state stays resumable.
#pragma once

#include <stdexcept>
#include <string>

namespace msim::persist {

/// A run was interrupted by a signal (or by the deterministic
/// checkpoint_exit test knob, which reports SIGINT).  State has already
/// been saved by the thrower where a checkpoint path was configured.
class Interrupted : public std::runtime_error {
 public:
  explicit Interrupted(int signum)
      : std::runtime_error("interrupted by signal " + std::to_string(signum)),
        signum_(signum) {}

  [[nodiscard]] int signum() const noexcept { return signum_; }
  /// Conventional shell exit status for death-by-signal.
  [[nodiscard]] int exit_code() const noexcept { return 128 + signum_; }

 private:
  int signum_;
};

/// A run or sweep was cancelled through a cooperative per-run cancel flag
/// (sim::RunConfig::cancel — the serve daemon's per-job cancellation path,
/// docs/SERVICE.md).  Unlike Interrupted this carries no signal: only the
/// one run observing its flag stops; the rest of the process is unaffected.
/// Like Interrupted, resumable state (checkpoint / sweep journal) has
/// already been flushed by the thrower where it was configured.
class Cancelled : public std::runtime_error {
 public:
  Cancelled() : std::runtime_error("cancelled by request") {}
};

/// RAII installer for the SIGINT/SIGTERM flag handlers; restores the
/// previous handlers on destruction.  Install one per process (guards do
/// not nest meaningfully); the flag is process-wide.
class SignalGuard {
 public:
  SignalGuard();
  ~SignalGuard();
  SignalGuard(const SignalGuard&) = delete;
  SignalGuard& operator=(const SignalGuard&) = delete;
};

/// The signal number observed since the last clear, or 0.
[[nodiscard]] int signal_pending() noexcept;

/// Resets the pending-signal flag (tests).
void clear_pending_signal() noexcept;

/// Must be called first thing in a forked worker process (before any other
/// work).  A child inherits the parent's SignalGuard handler and possibly
/// its pending flag, so without this a supervisor's SIGTERM would be
/// converted into the parent's cooperative save-and-flush path — the worker
/// would run the *parent's* final-checkpoint/journal-flush logic against
/// the parent's paths (a double flush) instead of dying.  Restores SIGINT
/// and SIGTERM to their default dispositions and clears the pending flag;
/// the supervisor alone owns graceful shutdown.
void reset_signals_in_forked_child() noexcept;

/// Throws Interrupted when a signal is pending.
void throw_if_interrupted();

}  // namespace msim::persist
