#include "persist/interval_stream.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

#include "common/archive.hpp"  // PersistError
#include "common/check.hpp"
#include "persist/atomic_file.hpp"

namespace msim::persist {

IntervalStreamWriter::IntervalStreamWriter(std::string path,
                                           const obs::IntervalConfig& config,
                                           unsigned thread_count,
                                           std::uint64_t already_streamed)
    : path_(std::move(path)) {
  const std::string part = path_ + ".part";
  const std::string header = obs::format_interval_header(config, thread_count);
  if (already_streamed == 0) {
    write_text_atomic(part, header + "\n");
  } else {
    // Resume: keep the interrupted run's header plus its first
    // already_streamed complete record lines.  Anything past that was
    // captured after the checkpoint being resumed and will be re-captured
    // byte-identically; a torn final line is dropped the same way.
    std::string existing;
    try {
      existing = read_file(part);
    } catch (const std::runtime_error&) {
      throw PersistError(
          "interval stream: resume expects the interrupted run's '" + part +
          "' (" + std::to_string(already_streamed) +
          " record(s) already streamed) but it is missing or unreadable; "
          "rerun without --resume to regenerate the stream from scratch");
    }
    std::string kept;
    kept.reserve(existing.size());
    std::size_t pos = 0;
    std::uint64_t records = 0;
    bool have_header = false;
    while (pos < existing.size() && records < already_streamed) {
      const std::size_t eol = existing.find('\n', pos);
      if (eol == std::string::npos) break;  // torn tail: incomplete line
      const std::string_view line(existing.data() + pos, eol - pos);
      if (!have_header) {
        if (line != header) {
          throw PersistError(
              "interval stream: '" + part +
              "' has a different header than this run would write "
              "(interval= or thread count changed?); it cannot be resumed");
        }
        have_header = true;
      } else {
        ++records;
      }
      kept.append(line);
      kept.push_back('\n');
      pos = eol + 1;
    }
    if (!have_header || records < already_streamed) {
      throw PersistError(
          "interval stream: '" + part + "' holds " + std::to_string(records) +
          " complete record(s) but the checkpoint says " +
          std::to_string(already_streamed) +
          " were streamed; the stream and checkpoint do not belong together");
    }
    write_text_atomic(part, kept);
  }
  fd_ = ::open(part.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd_ < 0) {
    throw std::runtime_error("cannot open interval stream '" + part +
                             "' for appending: " + std::strerror(errno));
  }
}

IntervalStreamWriter::~IntervalStreamWriter() {
  // No implicit finalize: an abandoned writer (interrupt, abort) leaves the
  // .part behind for a resume to continue from.
  if (fd_ >= 0) (void)::close(fd_);
}

void IntervalStreamWriter::write_all(std::string_view text) {
  std::size_t written = 0;
  while (written < text.size()) {
    const ::ssize_t n =
        ::write(fd_, text.data() + written, text.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("interval stream append failed for '" + path_ +
                               ".part': " + std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
}

void IntervalStreamWriter::sync() {
  if (::fsync(fd_) != 0) {
    throw std::runtime_error("interval stream fsync failed for '" + path_ +
                             ".part': " + std::strerror(errno));
  }
  unsynced_ = 0;
}

void IntervalStreamWriter::append(const obs::IntervalRecord& record) {
  MSIM_CHECK(fd_ >= 0);
  write_all(obs::format_interval_record(record) + "\n");
  ++written_;
  if (++unsynced_ >= kFsyncBatch) sync();
}

void IntervalStreamWriter::finalize() {
  MSIM_CHECK(fd_ >= 0);
  sync();
  (void)::close(fd_);
  fd_ = -1;
  const std::string part = path_ + ".part";
  if (::rename(part.c_str(), path_.c_str()) != 0) {
    throw std::runtime_error("cannot rename '" + part + "' to '" + path_ +
                             "': " + std::strerror(errno));
  }
  // fsync the directory so the rename itself survives a power cut (same
  // contract as write_file_atomic).
  std::string dir = ".";
  if (const auto slash = path_.find_last_of('/'); slash != std::string::npos) {
    dir = path_.substr(0, slash == 0 ? 1 : slash);
  }
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    (void)::fsync(dfd);
    (void)::close(dfd);
  }
}

}  // namespace msim::persist
