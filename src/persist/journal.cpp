#include "persist/journal.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

#include "common/archive.hpp"  // PersistError
#include "common/json.hpp"
#include "persist/atomic_file.hpp"

namespace msim::persist {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

std::string to_hex(const std::vector<std::uint8_t>& bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const std::uint8_t b : bytes) {
    out += kHexDigits[b >> 4];
    out += kHexDigits[b & 0xf];
  }
  return out;
}

std::vector<std::uint8_t> from_hex(const std::string& hex) {
  if (hex.size() % 2 != 0) throw PersistError("journal: odd-length hex payload");
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    throw PersistError("journal: invalid hex digit in payload");
  };
  std::vector<std::uint8_t> out(hex.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>((nibble(hex[2 * i]) << 4) |
                                       nibble(hex[2 * i + 1]));
  }
  return out;
}

std::string hex_u64(std::uint64_t v) {
  std::string out = "0x";
  for (int shift = 60; shift >= 0; shift -= 4) out += kHexDigits[(v >> shift) & 0xf];
  return out;
}

std::string header_line(std::uint64_t fingerprint) {
  return "{\"msim_sweep_journal\": " + std::to_string(kJournalFormatVersion) +
         ", \"fingerprint\": \"" + hex_u64(fingerprint) + "\"}\n";
}

}  // namespace

SweepJournal::SweepJournal(std::string path, std::uint64_t fingerprint,
                           bool resume)
    : path_(std::move(path)) {
  bool have_file = false;
  std::string existing;
  if (resume) {
    try {
      existing = read_file(path_);
      have_file = true;
    } catch (const std::runtime_error&) {
      have_file = false;  // no journal yet: run the whole sweep
    }
  }
  if (have_file) {
    // Validate the header strictly; tolerate only a torn final line.
    std::size_t pos = 0;
    bool first = true;
    while (pos < existing.size()) {
      std::size_t eol = existing.find('\n', pos);
      if (eol == std::string::npos) break;  // torn tail: ignore
      const std::string line = existing.substr(pos, eol - pos);
      pos = eol + 1;
      if (line.empty()) continue;
      if (first) {
        first = false;
        JsonValue header;
        try {
          header = JsonValue::parse(line);
        } catch (const std::invalid_argument&) {
          throw PersistError("'" + path_ + "' is not a msim sweep journal");
        }
        if (!header.is_object() || !header.contains("msim_sweep_journal")) {
          throw PersistError("'" + path_ + "' is not a msim sweep journal");
        }
        const auto version =
            static_cast<std::uint32_t>(header.at("msim_sweep_journal").as_number());
        if (version != kJournalFormatVersion) {
          throw PersistError("'" + path_ + "' has journal format version " +
                             std::to_string(version) +
                             "; this binary writes version " +
                             std::to_string(kJournalFormatVersion));
        }
        const std::string& fp = header.at("fingerprint").as_string();
        if (fp != hex_u64(fingerprint)) {
          throw PersistError(
              "'" + path_ + "' belongs to sweep fingerprint " + fp +
              " but this sweep has " + hex_u64(fingerprint) +
              "; a journal only resumes the exact sweep request it was "
              "written for (docs/CHECKPOINT.md)");
        }
        continue;
      }
      JsonValue entry;
      try {
        entry = JsonValue::parse(line);
      } catch (const std::invalid_argument&) {
        break;  // torn or corrupt entry: everything before it still counts
      }
      if (!entry.is_object() || !entry.contains("cell") ||
          !entry.contains("payload")) {
        break;
      }
      try {
        entries_[entry.at("cell").as_string()] =
            from_hex(entry.at("payload").as_string());
      } catch (const PersistError&) {
        break;
      }
    }
    if (first) {
      throw PersistError("'" + path_ + "' is empty or has no journal header");
    }
  } else {
    // Fresh journal: atomic header write so a crash here leaves either no
    // journal or a valid one.
    write_text_atomic(path_, header_line(fingerprint));
  }
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd_ < 0) {
    throw std::runtime_error("cannot open journal '" + path_ +
                             "' for appending: " + std::strerror(errno));
  }
}

SweepJournal::~SweepJournal() {
  if (fd_ >= 0) (void)::close(fd_);
}

const std::vector<std::uint8_t>* SweepJournal::find(
    const std::string& key) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

void SweepJournal::append(const std::string& key,
                          const std::vector<std::uint8_t>& payload) {
  const std::string line =
      "{\"cell\": " + json_escape(key) + ", \"payload\": \"" + to_hex(payload) +
      "\"}\n";
  std::size_t written = 0;
  while (written < line.size()) {
    const ::ssize_t n = ::write(fd_, line.data() + written, line.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("journal append failed for '" + path_ +
                               "': " + std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) {
    throw std::runtime_error("journal fsync failed for '" + path_ +
                             "': " + std::strerror(errno));
  }
}

}  // namespace msim::persist
