#include "persist/journal.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

#include "common/archive.hpp"  // PersistError
#include "common/json.hpp"
#include "persist/atomic_file.hpp"

namespace msim::persist {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

std::string to_hex(const std::vector<std::uint8_t>& bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const std::uint8_t b : bytes) {
    out += kHexDigits[b >> 4];
    out += kHexDigits[b & 0xf];
  }
  return out;
}

std::vector<std::uint8_t> from_hex(const std::string& hex) {
  if (hex.size() % 2 != 0) throw PersistError("journal: odd-length hex payload");
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    throw PersistError("journal: invalid hex digit in payload");
  };
  std::vector<std::uint8_t> out(hex.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>((nibble(hex[2 * i]) << 4) |
                                       nibble(hex[2 * i + 1]));
  }
  return out;
}

std::string hex_u64(std::uint64_t v) {
  std::string out = "0x";
  for (int shift = 60; shift >= 0; shift -= 4) out += kHexDigits[(v >> shift) & 0xf];
  return out;
}

std::string header_line(std::uint64_t fingerprint) {
  return "{\"msim_sweep_journal\": " + std::to_string(kJournalFormatVersion) +
         ", \"fingerprint\": \"" + hex_u64(fingerprint) + "\"}\n";
}

std::string entry_line(const std::string& key,
                       const std::vector<std::uint8_t>& payload) {
  return "{\"cell\": " + json_escape(key) + ", \"payload\": \"" +
         to_hex(payload) + "\"}\n";
}

/// Parses journal `content`: validates the header strictly, loads entries
/// until the first malformed line (a torn tail), and reports in
/// `valid_bytes` how far the well-formed prefix reaches — the truncation
/// point that makes the file safe to append to again.
std::map<std::string, std::vector<std::uint8_t>> parse_journal(
    const std::string& content, const std::string& path,
    std::uint64_t fingerprint, std::size_t& valid_bytes) {
  std::map<std::string, std::vector<std::uint8_t>> entries;
  std::size_t pos = 0;
  bool first = true;
  valid_bytes = 0;
  while (pos < content.size()) {
    std::size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) break;  // torn tail: ignore
    const std::string line = content.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) {
      valid_bytes = pos;
      continue;
    }
    if (first) {
      first = false;
      JsonValue header;
      try {
        header = JsonValue::parse(line);
      } catch (const std::invalid_argument&) {
        throw PersistError("'" + path + "' is not a msim sweep journal");
      }
      if (!header.is_object() || !header.contains("msim_sweep_journal")) {
        throw PersistError("'" + path + "' is not a msim sweep journal");
      }
      const auto version =
          static_cast<std::uint32_t>(header.at("msim_sweep_journal").as_number());
      if (version != kJournalFormatVersion) {
        throw PersistError("'" + path + "' has journal format version " +
                           std::to_string(version) +
                           "; this binary writes version " +
                           std::to_string(kJournalFormatVersion));
      }
      const std::string& fp = header.at("fingerprint").as_string();
      if (fp != hex_u64(fingerprint)) {
        throw PersistError(
            "'" + path + "' belongs to sweep fingerprint " + fp +
            " but this sweep has " + hex_u64(fingerprint) +
            "; a journal only resumes the exact sweep request it was "
            "written for (docs/CHECKPOINT.md)");
      }
      valid_bytes = pos;
      continue;
    }
    JsonValue entry;
    try {
      entry = JsonValue::parse(line);
    } catch (const std::invalid_argument&) {
      break;  // torn or corrupt entry: everything before it still counts
    }
    if (!entry.is_object() || !entry.contains("cell") ||
        !entry.contains("payload")) {
      break;
    }
    try {
      entries[entry.at("cell").as_string()] =
          from_hex(entry.at("payload").as_string());
    } catch (const PersistError&) {
      break;
    }
    valid_bytes = pos;
  }
  if (first) {
    throw PersistError("'" + path + "' is empty or has no journal header");
  }
  return entries;
}

}  // namespace

SweepJournal::SweepJournal(std::string path, std::uint64_t fingerprint,
                           bool resume)
    : path_(std::move(path)) {
  bool have_file = false;
  std::string existing;
  if (resume) {
    try {
      existing = read_file(path_);
      have_file = true;
    } catch (const std::runtime_error&) {
      have_file = false;  // no journal yet: run the whole sweep
    }
  }
  if (have_file) {
    std::size_t valid_bytes = 0;
    entries_ = parse_journal(existing, path_, fingerprint, valid_bytes);
    if (valid_bytes < existing.size()) {
      // Torn tail: cut it off before reopening for append.  The fd below is
      // O_APPEND, so without this the next record would be glued onto the
      // torn bytes and a later load would discard both.
      if (::truncate(path_.c_str(), static_cast<::off_t>(valid_bytes)) != 0) {
        throw std::runtime_error("cannot truncate torn tail of journal '" +
                                 path_ + "': " + std::strerror(errno));
      }
    }
  } else {
    // Fresh journal: atomic header write so a crash here leaves either no
    // journal or a valid one.
    write_text_atomic(path_, header_line(fingerprint));
  }
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd_ < 0) {
    throw std::runtime_error("cannot open journal '" + path_ +
                             "' for appending: " + std::strerror(errno));
  }
}

SweepJournal::~SweepJournal() {
  if (fd_ >= 0) (void)::close(fd_);
}

const std::vector<std::uint8_t>* SweepJournal::find(
    const std::string& key) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

void SweepJournal::append(const std::string& key,
                          const std::vector<std::uint8_t>& payload) {
  const std::string line = entry_line(key, payload);
  std::size_t written = 0;
  while (written < line.size()) {
    const ::ssize_t n = ::write(fd_, line.data() + written, line.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("journal append failed for '" + path_ +
                               "': " + std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) {
    throw std::runtime_error("journal fsync failed for '" + path_ +
                             "': " + std::strerror(errno));
  }
}

std::map<std::string, std::vector<std::uint8_t>> SweepJournal::read_completed(
    const std::string& path, std::uint64_t fingerprint) {
  std::string content;
  try {
    content = read_file(path);
  } catch (const std::runtime_error&) {
    return {};  // no journal: nothing completed
  }
  std::size_t valid_bytes = 0;
  return parse_journal(content, path, fingerprint, valid_bytes);
}

void SweepJournal::write_merged(
    const std::string& path, std::uint64_t fingerprint,
    const std::vector<std::pair<std::string, std::vector<std::uint8_t>>>&
        entries) {
  std::string content = header_line(fingerprint);
  for (const auto& [key, payload] : entries) {
    content += entry_line(key, payload);
  }
  write_text_atomic(path, content);
}

}  // namespace msim::persist
