// Opt-in per-instruction lifecycle tracing.
//
// The pipeline (and scheduler, for dispatch-side events) record one compact
// event per stage transition into a bounded ring buffer:
//
//   fetch -> rename -> dispatch (or DAB insert) -> issue -> writeback ->
//   commit | squash
//
// Tracing is off by default (capacity 0): record() is an inlinable
// early-return, so the hot path pays one predictable branch.  When enabled,
// the ring holds the most recent `capacity` events; exporters turn the
// window into a Konata-compatible pipeline log ("Kanata\t0004", viewable in
// https://github.com/shioyadan/Konata) or a plain-text Gantt chart, and
// reconstruct_lifecycles() folds events back into per-instruction records
// so a blocked-dispatch episode or a DAB rescue can be inspected in tests.
#pragma once

#include <cstdint>
#include <ostream>
#include <span>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace msim::persist {
class Archive;
}

namespace msim::obs {

enum class TraceStage : std::uint8_t {
  kFetch,
  kRename,
  kDispatch,   ///< entered the issue queue
  kDabInsert,  ///< parked in the deadlock-avoidance buffer instead
  kIssue,
  kWriteback,  ///< result broadcast (scheduled at issue time)
  kCommit,
  kSquash,     ///< removed by a flush (wrong path, FLUSH policy, watchdog)
};

[[nodiscard]] std::string_view trace_stage_name(TraceStage stage) noexcept;

/// Event flag bits (OR-ed into TraceEvent::flags).
inline constexpr std::uint8_t kTraceFlagWrongPath = 1u << 0;
/// Dispatch bypassed at least one older NDI (out-of-order dispatch).
inline constexpr std::uint8_t kTraceFlagOooBypass = 1u << 1;
/// Issue was served from the deadlock-avoidance buffer.
inline constexpr std::uint8_t kTraceFlagFromDab = 1u << 2;
/// The instruction is a mispredicted branch.
inline constexpr std::uint8_t kTraceFlagMispredict = 1u << 3;

struct TraceEvent {
  Cycle cycle = 0;
  SeqNum seq = 0;
  ThreadId tid = 0;
  TraceStage stage = TraceStage::kFetch;
  std::uint8_t flags = 0;
};

class InstTracer {
 public:
  InstTracer() = default;

  /// Enables tracing with a ring of `capacity` events (0 disables).
  void enable(std::size_t capacity) {
    ring_.assign(capacity, TraceEvent{});
    head_ = 0;
    live_ = 0;
    dropped_ = 0;
  }

  [[nodiscard]] bool enabled() const noexcept { return !ring_.empty(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return live_; }
  /// Events overwritten because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// Hot path: no-op unless enabled.
  void record(Cycle cycle, ThreadId tid, SeqNum seq, TraceStage stage,
              std::uint8_t flags = 0) noexcept {
    if (ring_.empty()) return;
    ring_[head_] = TraceEvent{cycle, seq, tid, stage, flags};
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    if (live_ < ring_.size()) {
      ++live_;
    } else {
      ++dropped_;
    }
  }

  void clear() noexcept {
    head_ = 0;
    live_ = 0;
    dropped_ = 0;
  }

  /// The retained window in recording order (oldest first).
  [[nodiscard]] std::vector<TraceEvent> events() const;

  void save_state(persist::Archive& ar) const;
  void load_state(persist::Archive& ar);

 private:
  void state_io(persist::Archive& ar);

  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;
  std::size_t live_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Per-instruction lifecycle folded out of a trace window.  kCycleNever
/// marks stages the window did not capture.
struct InstLifecycle {
  ThreadId tid = 0;
  SeqNum seq = 0;
  Cycle fetch = kCycleNever;
  Cycle rename = kCycleNever;
  Cycle dispatch = kCycleNever;
  Cycle issue = kCycleNever;
  Cycle writeback = kCycleNever;
  Cycle commit = kCycleNever;
  Cycle squash = kCycleNever;
  bool dab_rescued = false;   ///< went through the deadlock-avoidance buffer
  bool ooo_bypass = false;    ///< dispatched past at least one older NDI
  bool wrong_path = false;
  bool mispredict = false;

  [[nodiscard]] bool committed() const noexcept { return commit != kCycleNever; }
  [[nodiscard]] bool squashed() const noexcept { return squash != kCycleNever; }
  /// Every stage from fetch through commit was captured.
  [[nodiscard]] bool complete() const noexcept {
    return fetch != kCycleNever && rename != kCycleNever &&
           dispatch != kCycleNever && issue != kCycleNever &&
           writeback != kCycleNever && commit != kCycleNever;
  }
};

/// Folds events into per-instruction lifecycles, ordered by first
/// appearance.  A re-fetch of a (tid, seq) already observed to commit or
/// squash (watchdog / FLUSH replay) starts a fresh record.
[[nodiscard]] std::vector<InstLifecycle> reconstruct_lifecycles(
    std::span<const TraceEvent> events);

/// Writes a Konata-compatible pipeline log ("Kanata\t0004" header; stages
/// F/R/Dp/Is/Wb with retire/flush records).
void write_konata(std::ostream& os, std::span<const TraceEvent> events);

/// Plain-text Gantt fallback: one row per instruction, one column per cycle
/// (F=fetch, R=rename, D=dispatch wait, I=issue..writeback, C=commit,
/// x=squashed, b=DAB residency).
void write_gantt(std::ostream& os, std::span<const TraceEvent> events,
                 std::size_t max_rows = 64);

}  // namespace msim::obs
