#include "obs/progress.hpp"

#include <sstream>

#include "common/check.hpp"
#include "common/json.hpp"

namespace msim::obs {

std::string_view progress_kind_name(ProgressKind kind) noexcept {
  switch (kind) {
    case ProgressKind::kRunStart:        return "run_start";
    case ProgressKind::kIntervalTick:    return "interval_tick";
    case ProgressKind::kCheckpointSaved: return "checkpoint_saved";
    case ProgressKind::kRunFinish:       return "run_finish";
    case ProgressKind::kSweepStart:      return "sweep_start";
    case ProgressKind::kCellStart:       return "cell_start";
    case ProgressKind::kCellRetry:       return "cell_retry";
    case ProgressKind::kCellFinish:      return "cell_finish";
    case ProgressKind::kSweepFinish:     return "sweep_finish";
    case ProgressKind::kWorkerSpawn:     return "worker_spawn";
    case ProgressKind::kWorkerDeath:     return "worker_death";
    case ProgressKind::kWorkerExit:      return "worker_exit";
  }
  return "unknown";
}

void ProgressBus::subscribe(ProgressSink* sink) {
  MSIM_CHECK(sink != nullptr);
  const std::lock_guard<std::mutex> lock(mu_);
  sinks_.push_back(sink);
}

void ProgressBus::publish(const ProgressEvent& event) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++counts_[static_cast<std::size_t>(event.kind)];
  for (ProgressSink* sink : sinks_) sink->on_event(event);
}

std::uint64_t ProgressBus::published() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts_) total += c;
  return total;
}

std::uint64_t ProgressBus::published(ProgressKind kind) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return counts_[static_cast<std::size_t>(kind)];
}

void ProgressBus::reset_counters() {
  const std::lock_guard<std::mutex> lock(mu_);
  counts_.fill(0);
}

std::string JsonlProgressSink::format(const ProgressEvent& e) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.begin_object();
  w.kv("event", progress_kind_name(e.kind));
  if (!e.label.empty()) w.kv("label", e.label);
  if (e.cycle != 0) w.kv("cycle", e.cycle);
  if (e.committed != 0) w.kv("committed", e.committed);
  if (e.ipc != 0.0) w.kv("ipc", e.ipc);
  if (e.total != 0) {
    w.kv("done", e.done);
    w.kv("total", e.total);
  }
  if (!e.ok) w.kv("ok", e.ok);
  if (!e.detail.empty()) w.kv("detail", e.detail);
  w.end_object();
  return os.str();
}

void JsonlProgressSink::on_event(const ProgressEvent& event) {
  os_ << format(event) << '\n';
  os_.flush();  // one durable line per event, like the sweep journal's tail
}

void TerminalProgressSink::on_event(const ProgressEvent& e) {
  os_ << "[" << progress_kind_name(e.kind) << "]";
  if (!e.label.empty()) os_ << " " << e.label;
  if (e.kind == ProgressKind::kIntervalTick) {
    os_ << " cycle " << e.cycle << " committed " << e.committed << " ipc "
        << e.ipc;
  } else if (e.cycle != 0) {
    os_ << " cycle " << e.cycle;
  }
  if (e.total != 0) os_ << " (" << e.done << "/" << e.total << ")";
  if (!e.ok) os_ << " FAILED";
  if (!e.detail.empty()) os_ << ": " << e.detail;
  os_ << '\n';
}

}  // namespace msim::obs
