#include "obs/timer.hpp"

#include <cstdio>

namespace msim::obs {

void TimerRegistry::print(std::ostream& os) const {
  for (const Stage& s : stages()) {
    char line[160];
    std::snprintf(line, sizeof line, "%-24s %10.3f s  %8llu call(s)  %10.3f ms/call",
                  s.name.c_str(), s.seconds,
                  static_cast<unsigned long long>(s.calls),
                  s.calls != 0 ? s.seconds * 1e3 / static_cast<double>(s.calls) : 0.0);
    os << line << "\n";
  }
}

}  // namespace msim::obs
