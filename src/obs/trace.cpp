#include "obs/trace.hpp"

#include "common/archive.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>

namespace msim::obs {

std::string_view trace_stage_name(TraceStage stage) noexcept {
  switch (stage) {
    case TraceStage::kFetch:     return "fetch";
    case TraceStage::kRename:    return "rename";
    case TraceStage::kDispatch:  return "dispatch";
    case TraceStage::kDabInsert: return "dab_insert";
    case TraceStage::kIssue:     return "issue";
    case TraceStage::kWriteback: return "writeback";
    case TraceStage::kCommit:    return "commit";
    case TraceStage::kSquash:    return "squash";
  }
  return "unknown";
}

std::vector<TraceEvent> InstTracer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(live_);
  // Oldest retained event sits at head_ once the ring has wrapped.
  const std::size_t start = live_ < ring_.size() ? 0 : head_;
  for (std::size_t i = 0; i < live_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::vector<InstLifecycle> reconstruct_lifecycles(std::span<const TraceEvent> events) {
  std::vector<InstLifecycle> out;
  // (tid, seq) -> index of the open record in `out`.
  std::map<std::pair<ThreadId, SeqNum>, std::size_t> open;

  for (const TraceEvent& ev : events) {
    const auto key = std::make_pair(ev.tid, ev.seq);
    auto it = open.find(key);
    // A watchdog or FLUSH replay re-fetches the same sequence number: a
    // fetch after a terminal event (or a duplicate fetch) opens a fresh
    // lifecycle for the new attempt.
    const bool reopen =
        it != open.end() && ev.stage == TraceStage::kFetch &&
        (out[it->second].committed() || out[it->second].squashed() ||
         out[it->second].fetch != kCycleNever);
    if (it == open.end() || reopen) {
      InstLifecycle fresh;
      fresh.tid = ev.tid;
      fresh.seq = ev.seq;
      out.push_back(fresh);
      if (it == open.end()) {
        it = open.emplace(key, out.size() - 1).first;
      } else {
        it->second = out.size() - 1;
      }
    }
    InstLifecycle& lc = out[it->second];
    if (ev.flags & kTraceFlagWrongPath) lc.wrong_path = true;
    if (ev.flags & kTraceFlagMispredict) lc.mispredict = true;
    switch (ev.stage) {
      case TraceStage::kFetch:     lc.fetch = ev.cycle; break;
      case TraceStage::kRename:    lc.rename = ev.cycle; break;
      case TraceStage::kDispatch:
        lc.dispatch = ev.cycle;
        if (ev.flags & kTraceFlagOooBypass) lc.ooo_bypass = true;
        break;
      case TraceStage::kDabInsert:
        lc.dispatch = ev.cycle;
        lc.dab_rescued = true;
        break;
      case TraceStage::kIssue:
        lc.issue = ev.cycle;
        if (ev.flags & kTraceFlagFromDab) lc.dab_rescued = true;
        break;
      case TraceStage::kWriteback: lc.writeback = ev.cycle; break;
      case TraceStage::kCommit:    lc.commit = ev.cycle; break;
      case TraceStage::kSquash:    lc.squash = ev.cycle; break;
    }
  }
  return out;
}

namespace {

/// One Konata output line pinned to a cycle; `order` breaks ties so stage
/// starts precede retirements recorded in the same cycle.
struct KonataCmd {
  Cycle cycle;
  int order;
  std::string text;
};

void add_stage(std::vector<KonataCmd>& cmds, Cycle cycle, std::size_t id,
               std::string_view stage) {
  cmds.push_back({cycle, 1,
                  "S\t" + std::to_string(id) + "\t0\t" + std::string(stage)});
}

}  // namespace

void write_konata(std::ostream& os, std::span<const TraceEvent> events) {
  const std::vector<InstLifecycle> lifecycles = reconstruct_lifecycles(events);
  std::vector<KonataCmd> cmds;

  // Retirement ids must be unique and ordered; sort terminals by cycle.
  std::vector<std::size_t> terminal_order;
  for (std::size_t i = 0; i < lifecycles.size(); ++i) {
    if (lifecycles[i].committed() || lifecycles[i].squashed()) {
      terminal_order.push_back(i);
    }
  }
  std::sort(terminal_order.begin(), terminal_order.end(),
            [&](std::size_t a, std::size_t b) {
              const Cycle ca = lifecycles[a].committed() ? lifecycles[a].commit
                                                         : lifecycles[a].squash;
              const Cycle cb = lifecycles[b].committed() ? lifecycles[b].commit
                                                         : lifecycles[b].squash;
              return ca != cb ? ca < cb : a < b;
            });
  std::vector<std::size_t> retire_id(lifecycles.size(), 0);
  for (std::size_t r = 0; r < terminal_order.size(); ++r) {
    retire_id[terminal_order[r]] = r + 1;
  }

  for (std::size_t id = 0; id < lifecycles.size(); ++id) {
    const InstLifecycle& lc = lifecycles[id];
    const Cycle first = std::min({lc.fetch, lc.rename, lc.dispatch, lc.issue,
                                  lc.writeback, lc.commit, lc.squash});
    if (first == kCycleNever) continue;
    cmds.push_back({first, 0,
                    "I\t" + std::to_string(id) + "\t" + std::to_string(lc.seq) +
                        "\t" + std::to_string(lc.tid)});
    std::string label = "T" + std::to_string(lc.tid) + " #" + std::to_string(lc.seq);
    if (lc.dab_rescued) label += " [DAB]";
    if (lc.ooo_bypass) label += " [OOO]";
    if (lc.wrong_path) label += " [WP]";
    if (lc.mispredict) label += " [MISP]";
    cmds.push_back({first, 0, "L\t" + std::to_string(id) + "\t0\t" + label});

    if (lc.fetch != kCycleNever) add_stage(cmds, lc.fetch, id, "F");
    if (lc.rename != kCycleNever) add_stage(cmds, lc.rename, id, "R");
    if (lc.dispatch != kCycleNever) {
      add_stage(cmds, lc.dispatch, id, lc.dab_rescued ? "DAB" : "Dp");
    }
    if (lc.issue != kCycleNever) add_stage(cmds, lc.issue, id, "Is");
    if (lc.writeback != kCycleNever) add_stage(cmds, lc.writeback, id, "Wb");
    if (lc.committed()) {
      cmds.push_back({lc.commit, 2,
                      "R\t" + std::to_string(id) + "\t" +
                          std::to_string(retire_id[id]) + "\t0"});
    } else if (lc.squashed()) {
      cmds.push_back({lc.squash, 2,
                      "R\t" + std::to_string(id) + "\t" +
                          std::to_string(retire_id[id]) + "\t1"});
    }
  }

  std::stable_sort(cmds.begin(), cmds.end(), [](const KonataCmd& a, const KonataCmd& b) {
    return a.cycle != b.cycle ? a.cycle < b.cycle : a.order < b.order;
  });

  os << "Kanata\t0004\n";
  if (cmds.empty()) return;
  Cycle current = cmds.front().cycle;
  os << "C=\t" << current << "\n";
  for (const KonataCmd& cmd : cmds) {
    if (cmd.cycle > current) {
      os << "C\t" << (cmd.cycle - current) << "\n";
      current = cmd.cycle;
    }
    os << cmd.text << "\n";
  }
}

void write_gantt(std::ostream& os, std::span<const TraceEvent> events,
                 std::size_t max_rows) {
  const std::vector<InstLifecycle> lifecycles = reconstruct_lifecycles(events);
  if (lifecycles.empty()) {
    os << "(empty trace)\n";
    return;
  }
  Cycle lo = kCycleNever;
  Cycle hi = 0;
  for (const InstLifecycle& lc : lifecycles) {
    for (const Cycle c : {lc.fetch, lc.rename, lc.dispatch, lc.issue, lc.writeback,
                          lc.commit, lc.squash}) {
      if (c == kCycleNever) continue;
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
  }
  constexpr std::size_t kMaxCols = 160;
  const std::size_t span = static_cast<std::size_t>(hi - lo) + 1;
  const std::size_t cols = std::min(span, kMaxCols);
  os << "cycles " << lo << ".." << (lo + cols - 1)
     << (span > cols ? " (window truncated)" : "") << ", "
     << lifecycles.size() << " instruction(s)"
     << (lifecycles.size() > max_rows ? " (rows truncated)" : "") << "\n";
  os << "F=fetch R=rename D=dispatch B=DAB-insert I=issue ==in-flight "
        "W=writeback C=commit x=squash\n";

  std::size_t rows = 0;
  for (const InstLifecycle& lc : lifecycles) {
    if (rows++ >= max_rows) break;
    std::string row(cols, '.');
    auto put = [&](Cycle c, char ch) {
      if (c == kCycleNever || c < lo) return;
      const auto col = static_cast<std::size_t>(c - lo);
      if (col < cols) row[col] = ch;
    };
    // Fill issue -> writeback first so the stage letters overwrite it.
    if (lc.issue != kCycleNever && lc.writeback != kCycleNever) {
      for (Cycle c = lc.issue; c <= lc.writeback; ++c) put(c, '=');
    }
    put(lc.fetch, 'F');
    put(lc.rename, 'R');
    put(lc.dispatch, lc.dab_rescued ? 'B' : 'D');
    put(lc.issue, 'I');
    put(lc.writeback, 'W');
    put(lc.commit, 'C');
    put(lc.squash, 'x');
    char meta[64];
    std::snprintf(meta, sizeof meta, "T%u #%-8llu %s", unsigned{lc.tid},
                  static_cast<unsigned long long>(lc.seq),
                  lc.dab_rescued ? "DAB " : (lc.ooo_bypass ? "OOO " : "    "));
    os << meta << row << "\n";
  }
}

void InstTracer::state_io(persist::Archive& ar) {
  ar.section("inst-tracer");
  ar.io_sequence(ring_, [](persist::Archive& a, TraceEvent& e) {
    a.io(e.cycle);
    a.io(e.seq);
    a.io(e.tid);
    a.io(e.stage);
    a.io(e.flags);
  });
  std::uint64_t head = head_;
  std::uint64_t live = live_;
  ar.io(head);
  ar.io(live);
  head_ = static_cast<std::size_t>(head);
  live_ = static_cast<std::size_t>(live);
  ar.io(dropped_);
}

MSIM_PERSIST_VIA_STATE_IO(InstTracer)

}  // namespace msim::obs
