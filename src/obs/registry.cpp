#include "obs/registry.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/archive.hpp"
#include "common/check.hpp"
#include "common/json.hpp"

namespace msim::obs {

std::string_view metric_kind_name(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::kCounter:   return "counter";
    case MetricKind::kGauge:     return "gauge";
    case MetricKind::kRatio:     return "ratio";
    case MetricKind::kSampled:   return "sampled";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

void StatRegistry::add(Metric m) {
  MSIM_CHECK(!m.name.empty());
  for (const Metric& existing : metrics_) {
    MSIM_CHECK(existing.name != m.name);  // duplicate metric registration
  }
  metrics_.push_back(std::move(m));
}

void StatRegistry::counter(std::string name, CounterFn read) {
  MSIM_CHECK(static_cast<bool>(read));
  Metric m;
  m.name = std::move(name);
  m.kind = MetricKind::kCounter;
  m.read_counter = std::move(read);
  add(std::move(m));
}

void StatRegistry::gauge(std::string name, GaugeFn read) {
  MSIM_CHECK(static_cast<bool>(read));
  Metric m;
  m.name = std::move(name);
  m.kind = MetricKind::kGauge;
  m.read_gauge = std::move(read);
  add(std::move(m));
}

void StatRegistry::ratio(std::string name, CounterFn events, CounterFn opportunities) {
  MSIM_CHECK(static_cast<bool>(events) && static_cast<bool>(opportunities));
  Metric m;
  m.name = std::move(name);
  m.kind = MetricKind::kRatio;
  m.read_counter = std::move(events);
  m.read_opportunities = std::move(opportunities);
  add(std::move(m));
}

void StatRegistry::histogram(std::string name, const Histogram* hist) {
  MSIM_CHECK(hist != nullptr);
  Metric m;
  m.name = std::move(name);
  m.kind = MetricKind::kHistogram;
  m.hist = hist;
  add(std::move(m));
}

StreamingStat& StatRegistry::sampled(std::string name) {
  Metric m;
  m.name = std::move(name);
  m.kind = MetricKind::kSampled;
  m.owned = std::make_unique<StreamingStat>();
  StreamingStat& ref = *m.owned;
  add(std::move(m));
  return ref;
}

void StatRegistry::reset_sampled() noexcept {
  for (Metric& m : metrics_) {
    if (m.owned) *m.owned = StreamingStat{};
  }
}

MetricSnapshot StatRegistry::snapshot_of(const Metric& m) const {
  MetricSnapshot s;
  s.name = m.name;
  s.kind = m.kind;
  switch (m.kind) {
    case MetricKind::kCounter:
      s.count = m.read_counter();
      s.value = static_cast<double>(s.count);
      break;
    case MetricKind::kGauge:
      s.value = m.read_gauge();
      break;
    case MetricKind::kRatio: {
      s.events = m.read_counter();
      s.opportunities = m.read_opportunities();
      s.value = s.opportunities != 0 ? static_cast<double>(s.events) /
                                           static_cast<double>(s.opportunities)
                                     : 0.0;
      break;
    }
    case MetricKind::kSampled: {
      const StreamingStat& st = *m.owned;
      s.value = st.mean();
      s.count = st.count();
      s.min = st.min();
      s.max = st.max();
      s.stddev = st.stddev();
      break;
    }
    case MetricKind::kHistogram: {
      s.value = m.hist->approximate_mean();
      s.count = m.hist->total();
      s.p50 = m.hist->approximate_quantile(0.50);
      s.p90 = m.hist->approximate_quantile(0.90);
      s.p99 = m.hist->approximate_quantile(0.99);
      break;
    }
  }
  return s;
}

std::vector<MetricSnapshot> StatRegistry::snapshot() const {
  std::vector<MetricSnapshot> out;
  out.reserve(metrics_.size());
  for (const Metric& m : metrics_) out.push_back(snapshot_of(m));
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

MetricSnapshot StatRegistry::read(std::string_view name) const {
  for (const Metric& m : metrics_) {
    if (m.name == name) return snapshot_of(m);
  }
  throw std::invalid_argument("no metric named '" + std::string(name) + "'");
}

void write_metrics_json(std::ostream& os, std::span<const MetricSnapshot> metrics,
                        int indent) {
  JsonWriter w(os, indent);
  w.begin_object();
  write_metrics_fields(w, metrics);
  w.end_object();
  os << '\n';
}

void write_metrics_fields(JsonWriter& w, std::span<const MetricSnapshot> metrics) {
  w.kv("metric_count", static_cast<std::uint64_t>(metrics.size()));
  w.key("metrics");
  w.begin_object();
  for (const MetricSnapshot& m : metrics) {
    w.key(m.name);
    w.begin_object();
    w.kv("kind", metric_kind_name(m.kind));
    w.kv("value", m.value);
    switch (m.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        break;
      case MetricKind::kRatio:
        w.kv("events", m.events);
        w.kv("opportunities", m.opportunities);
        break;
      case MetricKind::kSampled:
        w.kv("count", m.count);
        w.kv("min", m.min);
        w.kv("max", m.max);
        w.kv("stddev", m.stddev);
        break;
      case MetricKind::kHistogram:
        w.kv("count", m.count);
        w.kv("p50", m.p50);
        w.kv("p90", m.p90);
        w.kv("p99", m.p99);
        break;
    }
    w.end_object();
  }
  w.end_object();
}

void StatRegistry::sampled_io(persist::Archive& ar) {
  ar.section("stat-registry");
  std::uint64_t sampled_count = 0;
  for (const Metric& m : metrics_) {
    if (m.kind == MetricKind::kSampled) ++sampled_count;
  }
  const std::uint64_t expected = sampled_count;
  ar.io(sampled_count);
  if (!ar.saving() && sampled_count != expected) {
    throw persist::PersistError(
        "checkpoint: sampled-gauge count mismatch (" +
        std::to_string(sampled_count) + " in stream, " +
        std::to_string(expected) + " registered)");
  }
  for (Metric& m : metrics_) {
    if (m.kind != MetricKind::kSampled) continue;
    std::string name = m.name;
    ar.io(name);
    if (!ar.saving() && name != m.name) {
      throw persist::PersistError("checkpoint: sampled gauge '" + m.name +
                                  "' does not match stream entry '" + name +
                                  "' (metric renamed or reordered)");
    }
    if (ar.saving()) m.owned->save_state(ar); else m.owned->load_state(ar);
  }
}

void StatRegistry::save_sampled(persist::Archive& ar) const {
  persist::detail::require_saving(ar);
  const_cast<StatRegistry*>(this)->sampled_io(ar);
}

void StatRegistry::load_sampled(persist::Archive& ar) {
  persist::detail::require_loading(ar);
  sampled_io(ar);
}

}  // namespace msim::obs
