// Region profiles and phase-fingerprint clustering for sampled simulation
// (mode=sampled, docs/SAMPLING.md).
//
// The functional fast path (smt::Pipeline::run_functional) carves the run
// into fixed-length per-thread instruction regions and summarizes each one
// with the rate features below.  Regions are clustered by a quantized
// FNV-1a fingerprint -- the same first-seen scheme the interval engine uses
// for per-thread phase ids -- and one representative per cluster is then
// simulated in detail, weighted by how many measured instructions its
// cluster covers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace msim::obs {

/// Per-thread event counts for one region of the functional profile pass.
struct RegionThreadProfile {
  std::uint64_t instructions = 0;
  std::uint64_t branches = 0;
  std::uint64_t mispredicts = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
};

/// One fixed-length region of the functional profile pass: per-thread
/// instruction-mix rates plus the shared-cache miss deltas over the region.
struct RegionProfile {
  std::uint64_t index = 0;
  /// Per-thread instructions of this region that fall inside the measured
  /// window [warmup, warmup + horizon); 0 for warm-up-only regions.
  std::uint64_t weight = 0;
  std::uint64_t l1i_misses = 0;
  std::uint64_t l1d_misses = 0;
  std::uint64_t l2_misses = 0;
  std::vector<RegionThreadProfile> threads;

  [[nodiscard]] std::uint64_t total_instructions() const noexcept {
    std::uint64_t total = 0;
    for (const RegionThreadProfile& t : threads) total += t.instructions;
    return total;
  }
};

/// FNV-1a hash over the region's quantized feature vector: per thread the
/// branch / mispredict / load / store rates in 1/16 steps, plus the global
/// L1I/L1D/L2 misses per kilo-instruction in 16-MPKI steps.  Used as a
/// compact region identity in reports and digests; clustering uses the
/// continuous features below instead, because hashing quantized bins
/// fragments stationary regions whose features sit on a bin boundary.
[[nodiscard]] std::uint64_t region_fingerprint(const RegionProfile& profile);

/// The region's feature vector in exact fixed-point units, so clustering
/// involves no floating point at all and is bit-identical across builds
/// and optimization levels: per thread the branch / load / store rates in
/// per-mille, then the global mispredicts and L1I/L1D/L2 misses in
/// milli-MPKI (misses * 10^6 / instructions).
[[nodiscard]] std::vector<std::uint64_t> region_features(
    const RegionProfile& profile);

/// First-seen leader clustering: the first region whose features match no
/// existing cluster leader founds a new cluster; later regions join the
/// first (lowest-id) cluster whose *leader* is within tolerance on every
/// feature.  Comparing against the fixed leader (not a drifting centroid)
/// keeps assignment deterministic and order-stable, and bounds every
/// member's distance from its representative.  Cluster ids are dense and
/// assigned in region order.
class RegionClusters {
 public:
  /// Per-feature match tolerance in feature units: rate features (per-mille)
  /// use `rate_atol` only; MPKI features (milli-MPKI) use
  /// `mpki_atol + leader / mpki_rtol_div`.  The defaults are several times
  /// the Poisson noise of a few-thousand-instruction region at the traces'
  /// miss rates, so statistically stationary regions collapse into one
  /// cluster instead of one cluster per noise realization, while genuine
  /// phase changes (several MPKI or whole percentage points of rate) still
  /// separate.
  struct Tolerance {
    std::uint64_t rate_atol = 50;       ///< 0.05 in per-mille units
    std::uint64_t mpki_atol = 4000;     ///< 4 MPKI in milli-MPKI units
    std::uint64_t mpki_rtol_div = 4;    ///< +25% of the leader's value

    /// Tolerance for a run carved into `region_count` regions.  Merging
    /// exists only to bound detailed-simulation work: on a short run
    /// (at most kSmallRun regions) replaying every distinct region is
    /// affordable, so the band drops to near the measurement noise and no
    /// merge error is paid -- in particular a cold-start region is never
    /// folded into a warm one it superficially resembles.  Long runs keep
    /// the default band, which is what makes sampling pay for itself.
    static constexpr std::uint64_t kSmallRun = 32;
    [[nodiscard]] static Tolerance for_region_count(std::uint64_t region_count) {
      Tolerance tol;
      if (region_count <= kSmallRun) {
        tol.rate_atol = 10;     // 0.01 per-mille
        tol.mpki_atol = 500;    // 0.5 MPKI
        tol.mpki_rtol_div = 16; // +6.25%
      }
      return tol;
    }
  };

  RegionClusters() = default;
  explicit RegionClusters(const Tolerance& tol) : tol_(tol) {}

  /// Cluster id for `profile`, allocating a new id (with `profile` as the
  /// cluster leader) when no leader is within tolerance.  Call once per
  /// region, in region order.
  std::size_t assign(const RegionProfile& profile);

  [[nodiscard]] std::size_t size() const noexcept { return leaders_.size(); }

  /// The member of `cluster` (chosen among `candidates`, region indices in
  /// assignment order) whose features are closest to the cluster centroid
  /// over those candidates, in tolerance-normalized L1 distance; ties break
  /// to the lowest region index.  A first-seen cluster *leader* sits at the
  /// edge of its tolerance band by construction -- under a slowly drifting
  /// feature (e.g. the L2 miss rate while the cache fills) it is a biased
  /// stand-in for the band, whereas the medoid is central.
  [[nodiscard]] std::size_t medoid(std::size_t cluster,
                                   const std::vector<std::uint64_t>& candidates)
      const;

 private:
  [[nodiscard]] bool matches(const std::vector<std::uint64_t>& leader,
                             const std::vector<std::uint64_t>& features) const;
  [[nodiscard]] std::uint64_t tolerance_of(std::size_t index,
                                           std::uint64_t reference) const;

  Tolerance tol_;
  std::size_t rate_count_ = 0;  ///< leading per-mille features per vector
  std::vector<std::vector<std::uint64_t>> leaders_;  ///< features by cluster id
  std::vector<std::vector<std::uint64_t>> features_;  ///< features by region
  std::vector<std::size_t> clusters_;                 ///< cluster id by region
};

}  // namespace msim::obs
