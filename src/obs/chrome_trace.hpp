// Chrome trace-event export of TimerRegistry spans.
//
// Emits the "traceEvents" JSON array format consumed by chrome://tracing
// and https://ui.perfetto.dev: one complete ("ph":"X") event per recorded
// span, timestamps and durations in integer microseconds relative to the
// registry's enable_spans() epoch.  Spans from different host threads land
// on different trace rows via the registry's dense tid mapping.
#pragma once

#include <ostream>
#include <string>

#include "obs/timer.hpp"

namespace msim::obs {

/// Writes the full trace-event JSON document for `timers`' recorded spans.
void write_chrome_trace(std::ostream& os, const TimerRegistry& timers);

/// Convenience: the same document as a string.
[[nodiscard]] std::string format_chrome_trace(const TimerRegistry& timers);

}  // namespace msim::obs
