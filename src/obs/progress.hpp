// Live progress event bus: the seam between long-running work (single runs,
// sweeps) and whoever wants to watch it (a terminal status line, a JSONL
// log, and eventually the sweep daemon's socket sink).
//
// Publishers (sim::run_simulation, sim::run_sweep) post ProgressEvents;
// the bus fans each event out to every subscribed ProgressSink under one
// mutex, so sweep workers can publish concurrently and sinks always see
// whole events in a consistent order.  Events carry simulated progress
// only (cycles, committed, cell counts) -- never wall-clock time -- so a
// JSONL progress log from a deterministic run is itself deterministic.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace msim::obs {

enum class ProgressKind : std::uint8_t {
  kRunStart = 0,      ///< a simulation begins (label = workload/scheduler)
  kIntervalTick,      ///< one interval captured (cycle, committed, ipc)
  kCheckpointSaved,   ///< a checkpoint reached disk (cycle)
  kRunFinish,         ///< a simulation completed (ok = not aborted)
  kSweepStart,        ///< a sweep begins (total = grid cells)
  kCellStart,         ///< one sweep cell begins (label = cell key)
  kCellRetry,         ///< an isolated cell failed and will retry (detail)
  kCellFinish,        ///< one sweep cell done (done/total, ok)
  kSweepFinish,       ///< the sweep completed (done/total)
  kWorkerSpawn,       ///< a sweep worker process forked (label = slot,
                      ///< total = incarnation)
  kWorkerDeath,       ///< a worker died unexpectedly (detail = diagnosis)
  kWorkerExit,        ///< a worker finished its shard and exited cleanly
};
inline constexpr std::size_t kProgressKindCount = 12;

[[nodiscard]] std::string_view progress_kind_name(ProgressKind kind) noexcept;

struct ProgressEvent {
  ProgressEvent() = default;
  explicit ProgressEvent(ProgressKind k) : kind(k) {}

  ProgressKind kind = ProgressKind::kRunStart;
  std::string label;            ///< run description or sweep-cell key
  std::uint64_t cycle = 0;      ///< absolute cycle (run-scoped events)
  std::uint64_t committed = 0;  ///< committed instructions so far
  double ipc = 0.0;             ///< interval IPC (kIntervalTick)
  std::uint64_t done = 0;       ///< completed cells (sweep-scoped events)
  std::uint64_t total = 0;      ///< grid size (sweep-scoped events)
  bool ok = true;               ///< false on failed cells / aborted runs
  std::string detail;           ///< error text (kCellRetry, failures)
};

/// Receives events synchronously, under the bus lock: implementations must
/// be fast and must not publish back into the bus.
class ProgressSink {
 public:
  virtual ~ProgressSink() = default;
  virtual void on_event(const ProgressEvent& event) = 0;
};

/// Thread-safe fan-out with per-kind publish counters.
class ProgressBus {
 public:
  ProgressBus() = default;
  ProgressBus(const ProgressBus&) = delete;
  ProgressBus& operator=(const ProgressBus&) = delete;

  /// Sinks are not owned and must outlive the bus's publishers.
  void subscribe(ProgressSink* sink);

  void publish(const ProgressEvent& event);

  [[nodiscard]] std::uint64_t published() const;
  [[nodiscard]] std::uint64_t published(ProgressKind kind) const;

  /// Zeroes the publish counters (the sinks' output is not retractable).
  void reset_counters();

 private:
  mutable std::mutex mu_;
  std::vector<ProgressSink*> sinks_;
  std::array<std::uint64_t, kProgressKindCount> counts_{};
};

/// One compact JSON object per event, one event per line.  Deterministic:
/// only event fields are written, never timestamps.  Zero-valued optional
/// fields are omitted, so run events stay small.
class JsonlProgressSink final : public ProgressSink {
 public:
  explicit JsonlProgressSink(std::ostream& os) : os_(os) {}
  void on_event(const ProgressEvent& event) override;

  /// The line written for `event` (no newline) -- exposed for tests.
  [[nodiscard]] static std::string format(const ProgressEvent& event);

 private:
  std::ostream& os_;
};

/// Human-oriented one-line-per-event status for a terminal (stderr).
class TerminalProgressSink final : public ProgressSink {
 public:
  explicit TerminalProgressSink(std::ostream& os) : os_(os) {}
  void on_event(const ProgressEvent& event) override;

 private:
  std::ostream& os_;
};

}  // namespace msim::obs
