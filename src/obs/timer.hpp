// Wall-clock self-profiling for the simulator's own host performance.
//
// TimerRegistry accumulates host seconds per named stage; ScopeTimer is the
// RAII front end.  Benches use these to report host-time-per-stage and
// simulated-KIPS (thousands of simulated instructions per host second)
// alongside their simulated metrics.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace msim::obs {

class TimerRegistry {
 public:
  struct Stage {
    std::string name;
    double seconds = 0.0;
    std::uint64_t calls = 0;
  };

  /// One timed scope instance, for Chrome trace-event export: start is
  /// seconds since enable_spans(), tid is a dense per-registry thread
  /// index (0 = the first thread that recorded).  Only recorded while
  /// spans are enabled (off by default: aggregation-only costs no memory).
  struct Span {
    std::string name;
    std::uint32_t tid = 0;
    double start_s = 0.0;
    double dur_s = 0.0;
  };

  /// Thread-safe: sweep workers time their cells concurrently.
  void add(std::string_view name, double seconds) {
    const std::lock_guard<std::mutex> lock(mu_);
    for (Stage& s : stages_) {
      if (s.name == name) {
        s.seconds += seconds;
        ++s.calls;
        return;
      }
    }
    stages_.push_back({std::string(name), seconds, 1});
  }

  /// Starts span recording; the call instant becomes the trace epoch
  /// (ts = 0).  Idempotent: later calls keep the original epoch.
  void enable_spans() {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!spans_enabled_) {
      spans_enabled_ = true;
      epoch_ = std::chrono::steady_clock::now();
    }
  }
  [[nodiscard]] bool spans_enabled() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return spans_enabled_;
  }

  /// Records one completed scope (no-op unless spans are enabled).  The
  /// calling thread is mapped to a dense tid on first use.
  void record_span(std::string_view name,
                   std::chrono::steady_clock::time_point start,
                   std::chrono::steady_clock::time_point end) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!spans_enabled_) return;
    const auto [it, inserted] = thread_ids_.try_emplace(
        std::this_thread::get_id(),
        static_cast<std::uint32_t>(thread_ids_.size()));
    spans_.push_back(
        {std::string(name), it->second,
         std::chrono::duration<double>(start - epoch_).count(),
         std::chrono::duration<double>(end - start).count()});
  }

  [[nodiscard]] double seconds(std::string_view name) const noexcept {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const Stage& s : stages_) {
      if (s.name == name) return s.seconds;
    }
    return 0.0;
  }

  /// Snapshots (copies) -- safe to call while other threads still record.
  [[nodiscard]] std::vector<Stage> stages() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return stages_;
  }
  [[nodiscard]] std::vector<Span> spans() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return spans_;
  }

  void clear() {
    const std::lock_guard<std::mutex> lock(mu_);
    stages_.clear();
    spans_.clear();
    thread_ids_.clear();
  }

  /// One line per stage: name, total seconds, calls, mean ms/call.
  void print(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::vector<Stage> stages_;  ///< insertion order (stable for reports)
  std::vector<Span> spans_;    ///< completion order
  std::map<std::thread::id, std::uint32_t> thread_ids_;
  std::chrono::steady_clock::time_point epoch_{};
  bool spans_enabled_ = false;
};

/// Accumulates the scope's wall-clock duration into a TimerRegistry stage
/// (and, when span recording is enabled, logs the scope as a trace span).
class ScopeTimer {
 public:
  ScopeTimer(TimerRegistry& registry, std::string name)
      : registry_(registry),
        name_(std::move(name)),
        start_(std::chrono::steady_clock::now()) {}

  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;

  /// Seconds elapsed so far without stopping the timer.
  [[nodiscard]] double elapsed() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

  ~ScopeTimer() {
    const auto end = std::chrono::steady_clock::now();
    registry_.add(name_, std::chrono::duration<double>(end - start_).count());
    registry_.record_span(name_, start_, end);
  }

 private:
  TimerRegistry& registry_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

/// simulated-KIPS helper: thousands of simulated instructions per host
/// second (0 when no time elapsed).
[[nodiscard]] inline double simulated_kips(std::uint64_t instructions,
                                           double host_seconds) noexcept {
  return host_seconds > 0.0
             ? static_cast<double>(instructions) / host_seconds / 1000.0
             : 0.0;
}

}  // namespace msim::obs
