// Wall-clock self-profiling for the simulator's own host performance.
//
// TimerRegistry accumulates host seconds per named stage; ScopeTimer is the
// RAII front end.  Benches use these to report host-time-per-stage and
// simulated-KIPS (thousands of simulated instructions per host second)
// alongside their simulated metrics.
#pragma once

#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace msim::obs {

class TimerRegistry {
 public:
  struct Stage {
    std::string name;
    double seconds = 0.0;
    std::uint64_t calls = 0;
  };

  void add(std::string_view name, double seconds) {
    for (Stage& s : stages_) {
      if (s.name == name) {
        s.seconds += seconds;
        ++s.calls;
        return;
      }
    }
    stages_.push_back({std::string(name), seconds, 1});
  }

  [[nodiscard]] double seconds(std::string_view name) const noexcept {
    for (const Stage& s : stages_) {
      if (s.name == name) return s.seconds;
    }
    return 0.0;
  }

  [[nodiscard]] const std::vector<Stage>& stages() const noexcept { return stages_; }

  void clear() noexcept { stages_.clear(); }

  /// One line per stage: name, total seconds, calls, mean ms/call.
  void print(std::ostream& os) const;

 private:
  std::vector<Stage> stages_;  ///< insertion order (stable for reports)
};

/// Accumulates the scope's wall-clock duration into a TimerRegistry stage.
class ScopeTimer {
 public:
  ScopeTimer(TimerRegistry& registry, std::string name)
      : registry_(registry),
        name_(std::move(name)),
        start_(std::chrono::steady_clock::now()) {}

  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;

  /// Seconds elapsed so far without stopping the timer.
  [[nodiscard]] double elapsed() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

  ~ScopeTimer() { registry_.add(name_, elapsed()); }

 private:
  TimerRegistry& registry_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

/// simulated-KIPS helper: thousands of simulated instructions per host
/// second (0 when no time elapsed).
[[nodiscard]] inline double simulated_kips(std::uint64_t instructions,
                                           double host_seconds) noexcept {
  return host_seconds > 0.0
             ? static_cast<double>(instructions) / host_seconds / 1000.0
             : 0.0;
}

}  // namespace msim::obs
