// Interval telemetry: periodic delta snapshots of the pipeline's statistics.
//
// The pipeline feeds IntervalEngine a CumulativeSample (running totals of
// every tracked counter) at each interval boundary; the engine diffs it
// against the previous boundary's sample, producing one IntervalRecord per
// interval -- a time-series view of a run that the end-of-run StatRegistry
// snapshot cannot provide.  Records land in a bounded ring (oldest evicted
// first) and, when a sink is attached, stream out as they are captured.
//
// Each record also carries a per-thread *phase fingerprint*: an FNV-1a hash
// of a quantized feature vector (IPC, fetch rate, stall attribution, memory
// intensity).  Identical program phases hash identically, so a simple
// first-seen table assigns stable small phase ids and an online detector
// counts phase changes -- the groundwork for sampled simulation.
//
// All engine state threads through persist::Archive, so interval history,
// phase tables and the stream cursor survive checkpoint/resume
// bit-identically.  See docs/OBSERVABILITY.md, "Interval telemetry".
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

namespace msim::persist {
class Archive;
}

namespace msim::obs {

/// JSONL schema identifier written into every interval stream header.
inline constexpr std::string_view kIntervalSchema = "msim.intervals.v1";

/// Phase ids are capped: the table keeps the first kMaxPhases distinct
/// fingerprints; anything later collapses into kPhaseOverflow.
inline constexpr std::uint32_t kMaxPhases = 256;
inline constexpr std::uint32_t kPhaseOverflow = kMaxPhases - 1;

struct IntervalConfig {
  /// Cycles per interval (0 = telemetry off; the hot path then reduces to
  /// one predictable branch per cycle).
  std::uint64_t interval_cycles = 0;
  /// Bounded record ring: oldest records are evicted (and counted as
  /// dropped) once this many are held.
  std::size_t ring_capacity = 4096;
};

/// Running totals at one interval boundary.  The pipeline builds this from
/// its live counters; the engine only ever diffs two of them, so the
/// pipeline's per-cycle hot paths keep their plain increments.
struct CumulativeSample {
  std::uint64_t cycle = 0;  ///< absolute cycle at the boundary
  std::uint64_t committed = 0;
  std::uint64_t fetched = 0;
  std::uint64_t dispatched = 0;
  std::uint64_t issued = 0;
  /// Occupancy integrals (sum over sampled cycles) and sample counts.
  double iq_occ_sum = 0.0;
  std::uint64_t iq_occ_count = 0;
  double dab_occ_sum = 0.0;
  std::uint64_t dab_occ_count = 0;
  std::uint64_t l1d_misses = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t branches = 0;
  std::uint64_t mispredicts = 0;

  struct Thread {
    std::uint64_t committed = 0;
    std::uint64_t fetched = 0;
    std::uint64_t ndi_blocked_cycles = 0;
    std::uint64_t iq_full_cycles = 0;
    std::uint64_t rob_full_cycles = 0;
    std::uint64_t lsq_full_cycles = 0;
    std::uint64_t fetch_starved_cycles = 0;
    double rob_occ_sum = 0.0;
    std::uint64_t rob_occ_count = 0;
    double lsq_occ_sum = 0.0;
    std::uint64_t lsq_occ_count = 0;
    std::uint64_t loads = 0;  ///< LSQ loads checked (memory intensity)
  };
  std::vector<Thread> threads;
};

/// One thread's slice of one interval.
struct ThreadIntervalSample {
  std::uint64_t committed = 0;
  std::uint64_t fetched = 0;
  double ipc = 0.0;
  double fetch_rate = 0.0;
  std::uint64_t ndi_blocked_cycles = 0;
  std::uint64_t iq_full_cycles = 0;
  std::uint64_t rob_full_cycles = 0;
  std::uint64_t lsq_full_cycles = 0;
  std::uint64_t fetch_starved_cycles = 0;
  double rob_occupancy = 0.0;  ///< mean over the interval
  double lsq_occupancy = 0.0;
  std::uint64_t loads = 0;
  /// FNV-1a hash of the quantized feature vector (see phase_fingerprint).
  std::uint64_t phase_fingerprint = 0;
  /// First-seen index of the fingerprint (kPhaseOverflow once the table
  /// is full).
  std::uint32_t phase_id = 0;
  /// Fingerprint differs from the previous interval's (false on the first
  /// interval after construction or reset).
  bool phase_changed = false;
};

/// One interval's delta snapshot.
struct IntervalRecord {
  std::uint64_t index = 0;        ///< ordinal since construction / reset
  std::uint64_t start_cycle = 0;  ///< absolute, inclusive
  std::uint64_t end_cycle = 0;    ///< absolute, exclusive
  std::uint64_t committed = 0;
  std::uint64_t fetched = 0;
  std::uint64_t dispatched = 0;
  std::uint64_t issued = 0;
  double ipc = 0.0;
  double iq_occupancy = 0.0;   ///< mean over the interval
  double dab_occupancy = 0.0;
  double l1d_mpki = 0.0;       ///< misses per 1000 committed instructions
  double l2_mpki = 0.0;
  double mispredict_rate = 0.0;
  /// Sampled mode (docs/SAMPLING.md): index of the detailed region this
  /// record was measured in.  -1 (the default) means a normal exact run;
  /// the JSON formatter only emits the field when it is set.
  std::int64_t region_id = -1;
  std::vector<ThreadIntervalSample> threads;
};

/// Quantized-feature phase fingerprint of one thread sample over an
/// interval of `cycles`.  Pure and deterministic: the same deltas always
/// hash the same, on any host and at any sweep job count.
[[nodiscard]] std::uint64_t phase_fingerprint(const ThreadIntervalSample& s,
                                              std::uint64_t cycles);

/// Archive codec for one record (shared by the engine's checkpoint state
/// and the sweep journal's RunResult payload).
void io_interval_record(persist::Archive& ar, IntervalRecord& r);

class IntervalEngine {
 public:
  /// Sizes the per-thread phase state; call once before the first capture
  /// (the pipeline constructor does).  interval_cycles == 0 disables.
  void configure(const IntervalConfig& config, unsigned thread_count);

  [[nodiscard]] bool enabled() const noexcept {
    return config_.interval_cycles != 0;
  }
  [[nodiscard]] const IntervalConfig& config() const noexcept { return config_; }
  [[nodiscard]] unsigned thread_count() const noexcept {
    return static_cast<unsigned>(phases_.size());
  }

  /// Captures the interval ending at `cum.cycle`: diffs against the
  /// previous boundary, fingerprints each thread, pushes the record into
  /// the ring and invokes the sink (if any).
  void capture(const CumulativeSample& cum);

  /// Streaming sink, invoked synchronously per captured record.  Not
  /// persisted: the runner re-attaches after a checkpoint restore.
  using Sink = std::function<void(const IntervalRecord&)>;
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  [[nodiscard]] const std::deque<IntervalRecord>& records() const noexcept {
    return ring_;
  }
  /// Records captured since construction / reset_stats (ring eviction does
  /// not decrement this).
  [[nodiscard]] std::uint64_t captured() const noexcept { return captured_; }
  /// Records evicted from the ring since construction / reset_stats.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// Stream cursor: records captured since *construction*, never reset --
  /// exactly the number of JSONL record lines a continuously streaming run
  /// would have written.  A resume truncates its .part stream to this many
  /// records before appending (see persist::IntervalStreamWriter).
  [[nodiscard]] std::uint64_t captured_total() const noexcept {
    return captured_total_;
  }

  // Per-thread phase statistics (for the registry's closures).
  [[nodiscard]] std::uint32_t phase_id(unsigned tid) const {
    return phases_.at(tid).current_id;
  }
  [[nodiscard]] std::uint64_t phase_changes(unsigned tid) const {
    return phases_.at(tid).changes;
  }
  [[nodiscard]] std::uint64_t unique_phases(unsigned tid) const {
    return phases_.at(tid).table.size();
  }

  /// Post-warm-up reset: clears the ring, the phase tables and every
  /// stat-visible counter, and rebases the delta baseline to `now` (the
  /// totals immediately after the owning pipeline zeroed its stats).  The
  /// captured_total stream cursor is an I/O cursor, not a statistic, and
  /// survives (like the pipeline's commit digest).
  void reset_stats(const CumulativeSample& now);

  /// Checkpoint support: ring, phase tables, baseline sample and stream
  /// cursor all round-trip (the sink does not).
  void save_state(persist::Archive& ar) const;
  void load_state(persist::Archive& ar);

 private:
  void state_io(persist::Archive& ar);

  struct PhaseState {
    std::vector<std::uint64_t> table;  ///< fingerprint -> first-seen index
    std::uint64_t last_fingerprint = 0;
    std::uint32_t current_id = 0;
    std::uint64_t changes = 0;
    bool have_last = false;
  };

  IntervalConfig config_{};
  CumulativeSample prev_{};
  std::deque<IntervalRecord> ring_;
  std::vector<PhaseState> phases_;
  std::uint64_t captured_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t captured_total_ = 0;
  Sink sink_;
};

/// One record as a compact single-line JSON document (no newline).  The
/// byte-for-byte line format is the msim.intervals.v1 schema contract; the
/// streaming writer (persist::IntervalStreamWriter) appends exactly these.
[[nodiscard]] std::string format_interval_record(const IntervalRecord& record);

/// The stream's header line (no newline): schema id, interval_cycles,
/// thread count.
[[nodiscard]] std::string format_interval_header(const IntervalConfig& config,
                                                 unsigned thread_count);

}  // namespace msim::obs
