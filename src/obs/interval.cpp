#include "obs/interval.hpp"

#include <cmath>
#include <sstream>

#include "common/archive.hpp"
#include "common/check.hpp"
#include "common/json.hpp"

namespace msim::obs {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

std::string hex_u64(std::uint64_t v) {
  std::string out = "0x";
  for (int shift = 60; shift >= 0; shift -= 4) out += kHexDigits[(v >> shift) & 0xf];
  return out;
}

/// Quantizes a rate in [0, ~16) to 1/16th steps, saturating at 255.  Coarse
/// enough that run-to-run noise inside one program phase maps to the same
/// bucket, fine enough that distinct phases do not.
std::uint8_t q16(double x) noexcept {
  if (!(x > 0.0)) return 0;
  const double scaled = std::nearbyint(x * 16.0);
  return scaled >= 255.0 ? std::uint8_t{255} : static_cast<std::uint8_t>(scaled);
}

/// Quantizes an occupancy (entries) to whole entries, saturating at 255.
std::uint8_t q_occ(double x) noexcept {
  if (!(x > 0.0)) return 0;
  const double scaled = std::nearbyint(x);
  return scaled >= 255.0 ? std::uint8_t{255} : static_cast<std::uint8_t>(scaled);
}

void io_cumulative_thread(persist::Archive& ar, CumulativeSample::Thread& t) {
  ar.io(t.committed);
  ar.io(t.fetched);
  ar.io(t.ndi_blocked_cycles);
  ar.io(t.iq_full_cycles);
  ar.io(t.rob_full_cycles);
  ar.io(t.lsq_full_cycles);
  ar.io(t.fetch_starved_cycles);
  ar.io(t.rob_occ_sum);
  ar.io(t.rob_occ_count);
  ar.io(t.lsq_occ_sum);
  ar.io(t.lsq_occ_count);
  ar.io(t.loads);
}

void io_cumulative_sample(persist::Archive& ar, CumulativeSample& s) {
  ar.io(s.cycle);
  ar.io(s.committed);
  ar.io(s.fetched);
  ar.io(s.dispatched);
  ar.io(s.issued);
  ar.io(s.iq_occ_sum);
  ar.io(s.iq_occ_count);
  ar.io(s.dab_occ_sum);
  ar.io(s.dab_occ_count);
  ar.io(s.l1d_misses);
  ar.io(s.l2_misses);
  ar.io(s.branches);
  ar.io(s.mispredicts);
  ar.io_sequence(s.threads, io_cumulative_thread);
}

/// Mean of an occupancy-integral delta; 0 when no cycles were sampled.
double mean_delta(double sum_now, double sum_prev, std::uint64_t n_now,
                  std::uint64_t n_prev) noexcept {
  const std::uint64_t n = n_now - n_prev;
  return n ? (sum_now - sum_prev) / static_cast<double>(n) : 0.0;
}

}  // namespace

std::uint64_t phase_fingerprint(const ThreadIntervalSample& s,
                                std::uint64_t cycles) {
  const double c = cycles ? static_cast<double>(cycles) : 1.0;
  const std::uint8_t features[] = {
      q16(s.ipc),
      q16(s.fetch_rate),
      q16(static_cast<double>(s.ndi_blocked_cycles) / c),
      q16(static_cast<double>(s.iq_full_cycles) / c),
      q16(static_cast<double>(s.rob_full_cycles) / c),
      q16(static_cast<double>(s.lsq_full_cycles) / c),
      q16(static_cast<double>(s.fetch_starved_cycles) / c),
      q_occ(s.rob_occupancy),
      q_occ(s.lsq_occupancy),
      q16(s.committed ? static_cast<double>(s.loads) /
                            static_cast<double>(s.committed)
                      : 0.0),
  };
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t b : features) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

void io_interval_record(persist::Archive& ar, IntervalRecord& r) {
  ar.io(r.index);
  ar.io(r.start_cycle);
  ar.io(r.end_cycle);
  ar.io(r.committed);
  ar.io(r.fetched);
  ar.io(r.dispatched);
  ar.io(r.issued);
  ar.io(r.ipc);
  ar.io(r.iq_occupancy);
  ar.io(r.dab_occupancy);
  ar.io(r.l1d_mpki);
  ar.io(r.l2_mpki);
  ar.io(r.mispredict_rate);
  ar.io(r.region_id);
  ar.io_sequence(r.threads, [](persist::Archive& a, ThreadIntervalSample& t) {
    a.io(t.committed);
    a.io(t.fetched);
    a.io(t.ipc);
    a.io(t.fetch_rate);
    a.io(t.ndi_blocked_cycles);
    a.io(t.iq_full_cycles);
    a.io(t.rob_full_cycles);
    a.io(t.lsq_full_cycles);
    a.io(t.fetch_starved_cycles);
    a.io(t.rob_occupancy);
    a.io(t.lsq_occupancy);
    a.io(t.loads);
    a.io(t.phase_fingerprint);
    a.io(t.phase_id);
    a.io(t.phase_changed);
  });
}

// ---- IntervalEngine ---------------------------------------------------------

void IntervalEngine::configure(const IntervalConfig& config,
                               unsigned thread_count) {
  MSIM_CHECK(config.ring_capacity >= 1);
  config_ = config;
  phases_.assign(thread_count, PhaseState{});
  prev_ = CumulativeSample{};
  prev_.threads.resize(thread_count);
  ring_.clear();
  captured_ = dropped_ = captured_total_ = 0;
}

void IntervalEngine::capture(const CumulativeSample& cum) {
  MSIM_CHECK(cum.threads.size() == phases_.size());
  MSIM_CHECK(cum.cycle >= prev_.cycle);
  const std::uint64_t cycles = cum.cycle - prev_.cycle;
  const double c = cycles ? static_cast<double>(cycles) : 1.0;

  IntervalRecord r;
  r.index = captured_;
  r.start_cycle = prev_.cycle;
  r.end_cycle = cum.cycle;
  r.committed = cum.committed - prev_.committed;
  r.fetched = cum.fetched - prev_.fetched;
  r.dispatched = cum.dispatched - prev_.dispatched;
  r.issued = cum.issued - prev_.issued;
  r.ipc = static_cast<double>(r.committed) / c;
  r.iq_occupancy =
      mean_delta(cum.iq_occ_sum, prev_.iq_occ_sum, cum.iq_occ_count,
                 prev_.iq_occ_count);
  r.dab_occupancy =
      mean_delta(cum.dab_occ_sum, prev_.dab_occ_sum, cum.dab_occ_count,
                 prev_.dab_occ_count);
  const auto mpki = [&r](std::uint64_t now, std::uint64_t prev) {
    return r.committed ? 1000.0 * static_cast<double>(now - prev) /
                             static_cast<double>(r.committed)
                       : 0.0;
  };
  r.l1d_mpki = mpki(cum.l1d_misses, prev_.l1d_misses);
  r.l2_mpki = mpki(cum.l2_misses, prev_.l2_misses);
  const std::uint64_t branches = cum.branches - prev_.branches;
  r.mispredict_rate =
      branches ? static_cast<double>(cum.mispredicts - prev_.mispredicts) /
                     static_cast<double>(branches)
               : 0.0;

  r.threads.resize(cum.threads.size());
  for (std::size_t t = 0; t < cum.threads.size(); ++t) {
    const CumulativeSample::Thread& now = cum.threads[t];
    const CumulativeSample::Thread& prev = prev_.threads[t];
    ThreadIntervalSample& s = r.threads[t];
    s.committed = now.committed - prev.committed;
    s.fetched = now.fetched - prev.fetched;
    s.ipc = static_cast<double>(s.committed) / c;
    s.fetch_rate = static_cast<double>(s.fetched) / c;
    s.ndi_blocked_cycles = now.ndi_blocked_cycles - prev.ndi_blocked_cycles;
    s.iq_full_cycles = now.iq_full_cycles - prev.iq_full_cycles;
    s.rob_full_cycles = now.rob_full_cycles - prev.rob_full_cycles;
    s.lsq_full_cycles = now.lsq_full_cycles - prev.lsq_full_cycles;
    s.fetch_starved_cycles =
        now.fetch_starved_cycles - prev.fetch_starved_cycles;
    s.rob_occupancy = mean_delta(now.rob_occ_sum, prev.rob_occ_sum,
                                 now.rob_occ_count, prev.rob_occ_count);
    s.lsq_occupancy = mean_delta(now.lsq_occ_sum, prev.lsq_occ_sum,
                                 now.lsq_occ_count, prev.lsq_occ_count);
    s.loads = now.loads - prev.loads;

    s.phase_fingerprint = phase_fingerprint(s, cycles);
    PhaseState& ps = phases_[t];
    std::uint32_t id = kPhaseOverflow;
    bool known = false;
    for (std::size_t i = 0; i < ps.table.size(); ++i) {
      if (ps.table[i] == s.phase_fingerprint) {
        id = static_cast<std::uint32_t>(i);
        known = true;
        break;
      }
    }
    if (!known && ps.table.size() < kMaxPhases) {
      id = static_cast<std::uint32_t>(ps.table.size());
      ps.table.push_back(s.phase_fingerprint);
    }
    s.phase_id = id;
    s.phase_changed = ps.have_last && ps.last_fingerprint != s.phase_fingerprint;
    if (s.phase_changed) ++ps.changes;
    ps.last_fingerprint = s.phase_fingerprint;
    ps.have_last = true;
    ps.current_id = id;
  }

  ring_.push_back(std::move(r));
  while (ring_.size() > config_.ring_capacity) {
    ring_.pop_front();
    ++dropped_;
  }
  ++captured_;
  ++captured_total_;
  prev_ = cum;
  if (sink_) sink_(ring_.back());
}

void IntervalEngine::reset_stats(const CumulativeSample& now) {
  MSIM_CHECK(now.threads.size() == phases_.size());
  ring_.clear();
  captured_ = 0;
  dropped_ = 0;
  for (PhaseState& ps : phases_) ps = PhaseState{};
  // Rebase the delta baseline: the owning pipeline just zeroed its stats,
  // so the next interval's deltas start from these (mostly zero) totals.
  // captured_total_ survives -- it is the JSONL stream cursor.
  prev_ = now;
}

void IntervalEngine::state_io(persist::Archive& ar) {
  ar.section("interval");
  std::uint64_t interval_cycles = config_.interval_cycles;
  std::uint64_t ring_capacity = config_.ring_capacity;
  ar.io(interval_cycles);
  ar.io(ring_capacity);
  if (!ar.saving() && (interval_cycles != config_.interval_cycles ||
                       ring_capacity != config_.ring_capacity)) {
    throw persist::PersistError(
        "checkpoint: interval configuration mismatch (saved interval=" +
        std::to_string(interval_cycles) + " ring=" +
        std::to_string(ring_capacity) + ", this run has interval=" +
        std::to_string(config_.interval_cycles) + " ring=" +
        std::to_string(config_.ring_capacity) + ")");
  }
  io_cumulative_sample(ar, prev_);
  ar.io_sequence(ring_, io_interval_record);
  ar.io_sequence(phases_, [](persist::Archive& a, PhaseState& ps) {
    a.io(ps.table);
    a.io(ps.last_fingerprint);
    a.io(ps.current_id);
    a.io(ps.changes);
    a.io(ps.have_last);
  });
  ar.io(captured_);
  ar.io(dropped_);
  ar.io(captured_total_);
}

MSIM_PERSIST_VIA_STATE_IO(IntervalEngine)

// ---- JSONL formatting (msim.intervals.v1) -----------------------------------

std::string format_interval_header(const IntervalConfig& config,
                                   unsigned thread_count) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.begin_object();
  w.kv("schema", kIntervalSchema);
  w.kv("interval_cycles", config.interval_cycles);
  w.kv("threads", std::uint64_t{thread_count});
  w.end_object();
  return os.str();
}

std::string format_interval_record(const IntervalRecord& r) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.begin_object();
  w.kv("i", r.index);
  w.kv("start", r.start_cycle);
  w.kv("end", r.end_cycle);
  w.kv("committed", r.committed);
  w.kv("fetched", r.fetched);
  w.kv("dispatched", r.dispatched);
  w.kv("issued", r.issued);
  w.kv("ipc", r.ipc);
  w.kv("iq_occ", r.iq_occupancy);
  w.kv("dab_occ", r.dab_occupancy);
  w.kv("l1d_mpki", r.l1d_mpki);
  w.kv("l2_mpki", r.l2_mpki);
  w.kv("mispredict_rate", r.mispredict_rate);
  if (r.region_id >= 0) w.kv("region", static_cast<std::uint64_t>(r.region_id));
  w.key("threads");
  w.begin_array();
  for (const ThreadIntervalSample& t : r.threads) {
    w.begin_object();
    w.kv("committed", t.committed);
    w.kv("fetched", t.fetched);
    w.kv("ipc", t.ipc);
    w.kv("fetch_rate", t.fetch_rate);
    w.kv("ndi_blocked", t.ndi_blocked_cycles);
    w.kv("iq_full", t.iq_full_cycles);
    w.kv("rob_full", t.rob_full_cycles);
    w.kv("lsq_full", t.lsq_full_cycles);
    w.kv("fetch_starved", t.fetch_starved_cycles);
    w.kv("rob_occ", t.rob_occupancy);
    w.kv("lsq_occ", t.lsq_occupancy);
    w.kv("loads", t.loads);
    w.kv("fp", hex_u64(t.phase_fingerprint));
    w.kv("phase", t.phase_id);
    w.kv("changed", t.phase_changed);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return os.str();
}

}  // namespace msim::obs
