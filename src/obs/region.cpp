#include "obs/region.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace msim::obs {

namespace {

/// Quantizes a rate in [0, ~16) to 1/16 steps, saturating at 255 -- the
/// same grain the interval engine uses for phase fingerprints.
std::uint64_t q16(double x) {
  if (!(x > 0.0)) return 0;
  const double q = std::nearbyint(x * 16.0);
  return q >= 255.0 ? 255 : static_cast<std::uint64_t>(q);
}

/// Quantizes misses-per-kilo-instruction to 16-MPKI steps, saturating at
/// 255 (>= 4080 MPKI, far beyond anything the traces produce).  The step
/// is deliberately coarser than the Poisson noise of a few-thousand-
/// instruction region (sigma ~4 MPKI at the traces' miss rates), so
/// statistically stationary regions collapse into one cluster instead of
/// one cluster per noise realization.
std::uint64_t q_mpki(std::uint64_t misses, std::uint64_t instructions) {
  if (instructions == 0) return 0;
  const double mpki =
      1000.0 * static_cast<double>(misses) / static_cast<double>(instructions);
  const double q = std::nearbyint(mpki / 16.0);
  return q >= 255.0 ? 255 : static_cast<std::uint64_t>(q);
}

}  // namespace

std::uint64_t region_fingerprint(const RegionProfile& profile) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a basis
  const auto mix = [&h](std::uint64_t v) {
    h ^= v & 0xff;
    h *= 0x100000001b3ULL;
  };
  for (const RegionThreadProfile& t : profile.threads) {
    const double insts = t.instructions ? static_cast<double>(t.instructions) : 1.0;
    mix(q16(static_cast<double>(t.branches) / insts));
    mix(t.branches ? q16(static_cast<double>(t.mispredicts) /
                         static_cast<double>(t.branches))
                   : 0);
    mix(q16(static_cast<double>(t.loads) / insts));
    mix(q16(static_cast<double>(t.stores) / insts));
  }
  const std::uint64_t total = profile.total_instructions();
  mix(q_mpki(profile.l1i_misses, total));
  mix(q_mpki(profile.l1d_misses, total));
  mix(q_mpki(profile.l2_misses, total));
  return h;
}

std::vector<std::uint64_t> region_features(const RegionProfile& profile) {
  std::vector<std::uint64_t> f;
  f.reserve(3 * profile.threads.size() + 4);
  std::uint64_t mispredicts = 0;
  for (const RegionThreadProfile& t : profile.threads) {
    const std::uint64_t insts = std::max<std::uint64_t>(t.instructions, 1);
    f.push_back(1000 * t.branches / insts);
    f.push_back(1000 * t.loads / insts);
    f.push_back(1000 * t.stores / insts);
    mispredicts += t.mispredicts;
  }
  const std::uint64_t total = std::max<std::uint64_t>(profile.total_instructions(), 1);
  // Mispredicts enter globally, per kilo-instruction, not as a per-thread
  // rate: a thread pacing far behind the leader contributes only a few
  // hundred branches per region, and the per-thread ratio is then almost
  // pure noise -- it fragmented stationary runs into dozens of clusters.
  f.push_back(1'000'000 * mispredicts / total);
  f.push_back(1'000'000 * profile.l1i_misses / total);
  f.push_back(1'000'000 * profile.l1d_misses / total);
  f.push_back(1'000'000 * profile.l2_misses / total);
  return f;
}

std::uint64_t RegionClusters::tolerance_of(std::size_t index,
                                           std::uint64_t reference) const {
  return index < rate_count_
             ? tol_.rate_atol
             : tol_.mpki_atol + reference / tol_.mpki_rtol_div;
}

bool RegionClusters::matches(const std::vector<std::uint64_t>& leader,
                             const std::vector<std::uint64_t>& features) const {
  for (std::size_t i = 0; i < leader.size(); ++i) {
    const std::uint64_t delta = leader[i] > features[i] ? leader[i] - features[i]
                                                        : features[i] - leader[i];
    if (delta > tolerance_of(i, leader[i])) return false;
  }
  return true;
}

std::size_t RegionClusters::assign(const RegionProfile& profile) {
  std::vector<std::uint64_t> features = region_features(profile);
  if (features_.empty()) rate_count_ = 3 * profile.threads.size();
  std::size_t cluster = leaders_.size();
  for (std::size_t i = 0; i < leaders_.size(); ++i) {
    if (leaders_[i].size() == features.size() && matches(leaders_[i], features)) {
      cluster = i;
      break;
    }
  }
  if (cluster == leaders_.size()) leaders_.push_back(features);
  features_.push_back(std::move(features));
  clusters_.push_back(cluster);
  return cluster;
}

std::size_t RegionClusters::medoid(
    std::size_t cluster, const std::vector<std::uint64_t>& candidates) const {
  // Centroid over the candidates (element-wise mean, rounded down).
  std::vector<std::uint64_t> centroid;
  std::size_t count = 0;
  for (const std::uint64_t r : candidates) {
    if (clusters_.at(r) != cluster) continue;
    const std::vector<std::uint64_t>& f = features_[r];
    if (centroid.empty()) centroid.assign(f.size(), 0);
    for (std::size_t i = 0; i < f.size(); ++i) centroid[i] += f[i];
    ++count;
  }
  MSIM_CHECK(count > 0);
  for (std::uint64_t& c : centroid) c /= count;

  // Closest candidate in tolerance-normalized L1 distance, so a per-mille
  // rate step and an MPKI step weigh comparably.
  std::size_t best = candidates.front();
  std::uint64_t best_distance = ~std::uint64_t{0};
  for (const std::uint64_t r : candidates) {
    if (clusters_.at(r) != cluster) continue;
    const std::vector<std::uint64_t>& f = features_[r];
    std::uint64_t distance = 0;
    for (std::size_t i = 0; i < f.size(); ++i) {
      const std::uint64_t delta =
          f[i] > centroid[i] ? f[i] - centroid[i] : centroid[i] - f[i];
      distance += 1000 * delta / tolerance_of(i, centroid[i]);
    }
    if (distance < best_distance) {
      best_distance = distance;
      best = static_cast<std::size_t>(r);
    }
  }
  return best;
}

}  // namespace msim::obs
