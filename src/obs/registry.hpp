// Hierarchical named-metric registry: the simulator's single source of
// machine-readable statistics.
//
// Components register their metrics once at construction under a dotted
// hierarchical name ("scheduler.dispatch.dab_inserts", "mem.l1d.miss_rate",
// "thread.0.stall.ndi_blocked_cycles").  Counters, gauges and ratios are
// registered as closures over the component's existing counters, so the
// per-cycle hot paths keep their plain increments; the registry reads them
// lazily at snapshot time.  Per-cycle *sampled* gauges (structure occupancy)
// are StreamingStats owned by the registry and fed by the pipeline's tick.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"
#include "common/stats.hpp"

namespace msim::persist {
class Archive;
}

namespace msim::obs {

enum class MetricKind : std::uint8_t {
  kCounter,    ///< monotonically increasing event count
  kGauge,      ///< instantaneous or derived scalar
  kRatio,      ///< events / opportunities with both terms preserved
  kSampled,    ///< per-cycle sampled distribution (mean/min/max/stddev)
  kHistogram,  ///< bucketed distribution with approximate quantiles
};

[[nodiscard]] std::string_view metric_kind_name(MetricKind kind) noexcept;

/// One metric read out of the registry.
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  /// Counter / gauge value, ratio quotient, sampled or histogram mean.
  double value = 0.0;
  /// Ratio detail (kRatio only).
  std::uint64_t events = 0;
  std::uint64_t opportunities = 0;
  /// Distribution detail (kSampled / kHistogram).
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double stddev = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

class StatRegistry {
 public:
  using CounterFn = std::function<std::uint64_t()>;
  using GaugeFn = std::function<double()>;

  StatRegistry() = default;
  StatRegistry(const StatRegistry&) = delete;
  StatRegistry& operator=(const StatRegistry&) = delete;

  /// Each name may be registered exactly once (MSIM_CHECK on duplicates).
  void counter(std::string name, CounterFn read);
  void gauge(std::string name, GaugeFn read);
  void ratio(std::string name, CounterFn events, CounterFn opportunities);
  /// The histogram must outlive the registry's snapshots.
  void histogram(std::string name, const Histogram* hist);
  /// Registers and returns a registry-owned per-cycle sampled gauge.  The
  /// returned reference is stable for the registry's lifetime.
  StreamingStat& sampled(std::string name);

  /// Zeroes every registry-owned sampled gauge (post-warm-up reset); the
  /// callback-backed metrics reset with their owning components.
  void reset_sampled() noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return metrics_.size(); }

  /// Reads every metric, sorted by name.
  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const;

  /// Snapshot of the single named metric; throws std::invalid_argument when
  /// the name is not registered.
  [[nodiscard]] MetricSnapshot read(std::string_view name) const;

  /// Checkpoint support for the registry-owned sampled gauges (the
  /// callback-backed metrics persist with their owning components).  Gauges
  /// are streamed tagged by name in registration order; a load verifies
  /// both, so metric renames or reorderings fail loudly.
  void save_sampled(persist::Archive& ar) const;
  void load_sampled(persist::Archive& ar);

 private:
  void sampled_io(persist::Archive& ar);

  struct Metric {
    std::string name;
    MetricKind kind;
    CounterFn read_counter;          // kCounter / kRatio events
    CounterFn read_opportunities;    // kRatio
    GaugeFn read_gauge;              // kGauge
    const Histogram* hist = nullptr; // kHistogram
    std::unique_ptr<StreamingStat> owned;  // kSampled
  };

  void add(Metric m);
  [[nodiscard]] MetricSnapshot snapshot_of(const Metric& m) const;

  std::vector<Metric> metrics_;
};

/// Emits a snapshot as a JSON object:
///   {"metric_count": N, "metrics": {"name": {"kind": ..., "value": ...}}}
void write_metrics_json(std::ostream& os, std::span<const MetricSnapshot> metrics,
                        int indent = 2);

/// Same content as write_metrics_json, but written as two key/value pairs
/// ("metric_count", "metrics") into an object the caller has already opened
/// on `w` — for embedding a snapshot inside a larger report.
void write_metrics_fields(JsonWriter& w, std::span<const MetricSnapshot> metrics);

}  // namespace msim::obs
