#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/json.hpp"

namespace msim::obs {

namespace {

std::uint64_t to_micros(double seconds) {
  return seconds > 0.0 ? static_cast<std::uint64_t>(std::llround(seconds * 1e6))
                       : 0;
}

}  // namespace

void write_chrome_trace(std::ostream& os, const TimerRegistry& timers) {
  JsonWriter w(os, 0);
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  for (const TimerRegistry::Span& s : timers.spans()) {
    w.begin_object();
    w.kv("name", s.name);
    w.kv("cat", "msim");
    w.kv("ph", "X");
    w.kv("ts", to_micros(s.start_s));
    // Complete events need dur >= 1 us or some viewers drop them.
    w.kv("dur", std::max<std::uint64_t>(to_micros(s.dur_s), 1));
    w.kv("pid", std::uint64_t{1});
    w.kv("tid", s.tid);
    w.end_object();
  }
  w.end_array();
  w.kv("displayTimeUnit", "ms");
  w.end_object();
  os << '\n';
}

std::string format_chrome_trace(const TimerRegistry& timers) {
  std::ostringstream os;
  write_chrome_trace(os, timers);
  return os.str();
}

}  // namespace msim::obs
