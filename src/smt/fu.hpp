// Function-unit pools with per-unit issue intervals (Table 1: some units,
// e.g. dividers, are not pipelined).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "isa/opclass.hpp"

namespace msim::persist {
class Archive;
}

namespace msim::smt {

struct FuStats {
  std::array<std::uint64_t, isa::kFuKindCount> issues{};
  std::array<std::uint64_t, isa::kFuKindCount> structural_rejects{};
};

class FuPools {
 public:
  FuPools() {
    for (unsigned k = 0; k < isa::kFuKindCount; ++k) {
      pools_[k].assign(isa::fu_pool_size(static_cast<isa::FuKind>(k)), 0);
    }
  }

  /// Reserves a unit for `op` issuing at `now`; returns false (without side
  /// effects) when every unit of the pool is busy.
  bool try_allocate(isa::OpClass op, Cycle now) {
    const auto kind = static_cast<std::size_t>(isa::fu_kind(op));
    for (Cycle& busy_until : pools_[kind]) {
      if (busy_until <= now) {
        busy_until = now + isa::op_timing(op).issue_interval;
        ++stats_.issues[kind];
        return true;
      }
    }
    ++stats_.structural_rejects[kind];
    return false;
  }

  /// Frees all units (watchdog flush).
  void clear() noexcept {
    for (auto& pool : pools_) {
      for (Cycle& busy_until : pool) busy_until = 0;
    }
  }

  [[nodiscard]] const FuStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = FuStats{}; }

  void save_state(persist::Archive& ar) const;
  void load_state(persist::Archive& ar);

 private:
  void state_io(persist::Archive& ar);

  std::array<std::vector<Cycle>, isa::kFuKindCount> pools_;
  FuStats stats_;
};

}  // namespace msim::smt
