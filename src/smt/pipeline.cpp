#include "smt/pipeline.hpp"

#include <algorithm>

#include <array>

#include "common/archive.hpp"
#include "common/check.hpp"
#include "core/state_io.hpp"
#include "common/rng.hpp"

namespace msim::smt {

std::string_view fetch_policy_name(FetchPolicy p) noexcept {
  switch (p) {
    case FetchPolicy::kIcount:     return "icount";
    case FetchPolicy::kRoundRobin: return "round_robin";
    case FetchPolicy::kStall:      return "stall";
    case FetchPolicy::kFlush:      return "flush";
  }
  return "unknown";
}

// ---- environment adapters --------------------------------------------------

class Pipeline::DispatchEnvImpl final : public core::DispatchEnv {
 public:
  explicit DispatchEnvImpl(Pipeline& self) : self_(self) {}

  [[nodiscard]] bool is_ready(PhysReg reg) const override {
    return self_.rename_.is_ready(reg);
  }

  [[nodiscard]] bool is_oldest_in_rob(ThreadId tid, SeqNum seq) const override {
    const ReorderBuffer& rob = self_.threads_.at(tid)->rob;
    return !rob.empty() && rob.head_seq() == seq;
  }

 private:
  Pipeline& self_;
};

class Pipeline::IssueEnvImpl final : public core::IssueEnv {
 public:
  explicit IssueEnvImpl(Pipeline& self) : self_(self) {}

  void set_cycle(Cycle now) noexcept { now_ = now; }

  bool try_issue(const core::SchedInst& inst, bool from_dab) override {
    Pipeline& p = self_;
    ThreadState& ts = *p.threads_.at(inst.tid);
    RobEntry& e = ts.rob.entry(inst.seq);
    MSIM_CHECK(!e.issued);
    const isa::OpTiming timing = isa::op_timing(e.inst.op);
    const Cycle now = now_;

    Cycle complete;
    if (e.inst.is_load()) {
      const LoadVerdict verdict = ts.lsq.check_load(
          inst.seq, e.inst.mem_addr,
          [&p](PhysReg r) { return p.rename_.is_ready(r); });
      if (verdict == LoadVerdict::kBlocked) {
        ++p.pstats_.load_issue_blocked;
        return false;
      }
      if (!p.fu_.try_allocate(e.inst.op, now)) return false;
      if (verdict == LoadVerdict::kForward) {
        complete = now + timing.latency;
      } else {
        // Address generation takes the first cycle; the D-cache access
        // begins in the next one.
        const std::uint32_t extra =
            p.mem_.access_data(e.inst.mem_addr, /*is_store=*/false, now + 1);
        complete = now + timing.latency + extra;
        // STALL / FLUSH fetch policies react to L2 misses (Tullsen &
        // Brown, MICRO 2001): gate the thread's fetch until the miss
        // returns; FLUSH additionally squashes everything younger.
        const bool l2_miss = extra >= p.config_.memory.memory_latency;
        if (l2_miss && (p.config_.fetch_policy == FetchPolicy::kStall ||
                        p.config_.fetch_policy == FetchPolicy::kFlush)) {
          ts.l2_stall_until = std::max(ts.l2_stall_until, complete);
          // Squashing in reaction to a wrong-path miss would be pointless:
          // the branch resolution squash already covers that suffix.
          if (p.config_.fetch_policy == FetchPolicy::kFlush && !e.wrong_path) {
            auto& pending = p.pending_policy_flush_.at(inst.tid);
            pending = pending ? std::min(*pending, inst.seq) : inst.seq;
          }
        }
      }
    } else {
      if (!p.fu_.try_allocate(e.inst.op, now)) return false;
      complete = now + timing.latency;
    }

    if (p.faults_) {
      const std::uint32_t extra =
          p.faults_->extra_issue_latency(inst.tid, inst.seq, now);
      if (extra != 0) {
        complete += extra;
        p.pstats_.fault_extra_latency_cycles += extra;
      }
    }

    e.issued = true;
    e.issued_at = now;
    e.complete_at = complete;
    ++p.pstats_.issued;
    if (e.wrong_path) ++p.pstats_.wrong_path_issued;
    if (e.dest_phys != kNoPhysReg) {
      p.broadcasts_.schedule(complete, e.dest_phys);
    }
    if (p.tracer_.enabled()) {
      std::uint8_t flags = 0;
      if (from_dab) flags |= obs::kTraceFlagFromDab;
      if (e.wrong_path) flags |= obs::kTraceFlagWrongPath;
      if (e.mispredicted) flags |= obs::kTraceFlagMispredict;
      p.tracer_.record(now, inst.tid, inst.seq, obs::TraceStage::kIssue, flags);
      p.tracer_.record(complete, inst.tid, inst.seq, obs::TraceStage::kWriteback,
                       flags);
    }
    if (e.mispredicted) {
      if (ts.on_wrong_path && ts.wp_branch_seq == inst.seq) {
        // Wrong-path mode: schedule the resolution squash.
        ts.wp_squash_at = complete;
      } else {
        // Stall mode: fetch resumes one cycle after the branch resolves.
        MSIM_CHECK(ts.awaiting_branch && ts.awaited_branch_seq == inst.seq);
        ts.fetch_stalled_until = complete + 1;
        ts.awaiting_branch = false;
      }
    }
    return true;
  }

 private:
  Pipeline& self_;
  Cycle now_ = 0;
};

// ---- construction -----------------------------------------------------------

Pipeline::Pipeline(const MachineConfig& config,
                   std::span<const trace::BenchmarkProfile> workload,
                   std::uint64_t seed)
    : config_(config),
      rename_(config.thread_count, config.int_phys_regs, config.fp_phys_regs),
      mem_(config.memory),
      bpred_(config.predictor, config.thread_count),
      faults_(config.fault_hooks) {
  MSIM_CHECK(workload.size() == config_.thread_count);
  MSIM_CHECK(config_.thread_count >= 1 && config_.thread_count <= kMaxThreads);
  scheduler_ = std::make_unique<core::Scheduler>(
      config_.scheduler, config_.thread_count, config_.dispatch_width,
      config_.issue_width);
  scheduler_->set_fault_hooks(faults_);
  Rng seeder(seed);
  threads_.reserve(config_.thread_count);
  for (ThreadId t = 0; t < config_.thread_count; ++t) {
    threads_.push_back(std::make_unique<ThreadState>(workload[t], seeder.next_u64(),
                                                     t, config_));
  }
  dispatch_env_ = std::make_unique<DispatchEnvImpl>(*this);
  issue_env_ = std::make_unique<IssueEnvImpl>(*this);

  stall_stats_.resize(config_.thread_count);
  if (config_.trace_capacity != 0) {
    tracer_.enable(config_.trace_capacity);
    scheduler_->set_tracer(&tracer_);
  }
  register_metrics();
  interval_.configure({config_.interval_cycles, config_.interval_ring_capacity},
                      config_.thread_count);
}

Pipeline::~Pipeline() = default;

// ---- per-cycle stages --------------------------------------------------------

void Pipeline::do_commit(Cycle now) {
  if (faults_ && faults_->commit_blocked(now)) {
    ++pstats_.fault_commit_blocked_cycles;
    return;
  }
  unsigned remaining = config_.commit_width;
  bool progress = true;
  const unsigned start = static_cast<unsigned>(now % config_.thread_count);
  while (remaining > 0 && progress) {
    progress = false;
    unsigned slot = start;
    for (unsigned i = 0; i < config_.thread_count && remaining > 0;
         ++i, slot = slot + 1 == config_.thread_count ? 0 : slot + 1) {
      const auto tid = static_cast<ThreadId>(slot);
      ThreadState& ts = *threads_[tid];
      if (ts.rob.empty()) continue;
      RobEntry& head = ts.rob.head();
      MSIM_CHECK(!head.wrong_path);
      if (!head.done(now)) continue;
      if (head.inst.is_mem()) {
        if (head.inst.is_store()) {
          // Stores update the data cache at commit; the latency is absorbed
          // by the write buffer and does not stall retirement.
          (void)mem_.access_data(head.inst.mem_addr, /*is_store=*/true, now);
        }
        ts.lsq.pop(head.inst.seq);
      }
      rename_.commit(tid, head.inst.dest, head.dest_phys, head.prev_dest_phys);
      tracer_.record(now, tid, head.inst.seq, obs::TraceStage::kCommit);
      mix_digest(tid);
      mix_digest(head.inst.seq);
      mix_digest(now);
      if (observer_) observer_->on_commit(tid, head.inst.seq, now);
      ts.rob.pop_head();
      ++ts.committed;
      --remaining;
      progress = true;
    }
  }
}

void Pipeline::apply_broadcasts(Cycle now) {
  broadcasts_.drain_due(now, [this](PhysReg tag) {
    rename_.set_ready(tag);
    scheduler_->broadcast(tag);
  });
}

void Pipeline::do_issue(Cycle now) {
  issue_env_->set_cycle(now);
  scheduler_->run_select(now, *issue_env_);
}

void Pipeline::do_dispatch(Cycle now) {
  const core::DispatchCycleResult result = scheduler_->run_dispatch(now, *dispatch_env_);
  if (result.watchdog_fired) watchdog_flush(now);
}

void Pipeline::do_rename(Cycle now) {
  unsigned remaining = config_.rename_width;
  bool progress = true;
  const unsigned start = static_cast<unsigned>(now % config_.thread_count);
  while (remaining > 0 && progress) {
    progress = false;
    unsigned slot = start;
    for (unsigned i = 0; i < config_.thread_count && remaining > 0;
         ++i, slot = slot + 1 == config_.thread_count ? 0 : slot + 1) {
      const auto tid = static_cast<ThreadId>(slot);
      ThreadState& ts = *threads_[tid];
      if (ts.fetch_queue.empty()) continue;
      const FetchedInst& f = ts.fetch_queue.front();
      if (f.fetched_at + config_.front_end_delay() > now) continue;
      const isa::DynInst& di = f.inst;
      if (ts.rob.full()) continue;
      if (faults_ && faults_->rob_exhausted(tid, now)) {
        ++pstats_.fault_rob_denials;
        continue;
      }
      if (di.is_mem() && ts.lsq.full()) continue;
      if (di.is_mem() && faults_ && faults_->lsq_exhausted(tid, now)) {
        ++pstats_.fault_lsq_denials;
        continue;
      }
      if (!scheduler_->buffer_has_space(tid)) continue;
      if (!rename_.can_allocate(di.dest)) continue;

      const RenameResult rr = rename_.rename(tid, di);
      RobEntry& e = ts.rob.allocate(di.seq);
      e.inst = di;
      e.src_phys[0] = rr.src[0];
      e.src_phys[1] = rr.src[1];
      e.dest_phys = rr.dest;
      e.prev_dest_phys = rr.prev_dest;
      e.fetched_at = f.fetched_at;
      e.renamed_at = now;
      e.mispredicted = f.mispredicted;
      e.wrong_path = f.wrong_path;
      if (di.is_mem()) {
        ts.lsq.allocate(di.seq, di.is_store(), di.mem_addr, rr.src[0], rr.src[1]);
      }
      core::SchedInst si;
      si.tid = tid;
      si.seq = di.seq;
      si.op = di.op;
      si.src[0] = rr.src[0];
      si.src[1] = rr.src[1];
      si.dest = rr.dest;
      scheduler_->insert(si);
      tracer_.record(now, tid, di.seq, obs::TraceStage::kRename,
                     e.wrong_path ? obs::kTraceFlagWrongPath : std::uint8_t{0});

      ts.fetch_queue.pop_front();
      --remaining;
      progress = true;
    }
  }
}

std::uint32_t Pipeline::icount(ThreadId tid) const {
  const ThreadState& ts = *threads_[tid];
  return static_cast<std::uint32_t>(ts.fetch_queue.size()) +
         scheduler_->held_instructions(tid);
}

const isa::DynInst& Pipeline::peek_next_inst(ThreadState& ts) {
  if (!ts.pending) {
    if (!ts.replay.empty()) {
      ts.pending = ts.replay.front();
      ts.replay.pop_front();
    } else {
      ts.pending = ts.gen.next();
    }
  }
  return *ts.pending;
}

unsigned Pipeline::fetch_from_thread(ThreadId tid, unsigned budget, Cycle now) {
  ThreadState& ts = *threads_[tid];
  const std::uint64_t line_bytes = config_.memory.l1i.line_bytes;
  unsigned fetched = 0;
  while (fetched < budget && ts.fetch_queue.size() < config_.fetch_queue_entries) {
    const isa::DynInst& di = peek_next_inst(ts);

    const Addr line = di.pc / line_bytes;
    if (line != ts.last_fetch_line) {
      const std::uint32_t extra = mem_.access_inst(di.pc, now);
      ts.last_fetch_line = line;
      if (extra > 0) {
        ts.fetch_stalled_until = now + extra;
        ++pstats_.fetch_icache_stall_cycles;
        break;  // the instruction stays pending and is fetched after the fill
      }
    }

    FetchedInst f{di, now, /*mispredicted=*/false, /*wrong_path=*/false};
    bool stop_after = false;
    if (di.is_branch()) {
      bool correct_path = false;
      const auto prediction =
          bpred_.predict_and_train_full(tid, di.pc, di.taken, di.next_pc,
                                        &correct_path);
      if (!correct_path) {
        f.mispredicted = true;
        stop_after = true;
        // Where would the front end go?  Predicted-taken needs a BTB
        // target; without one (or without wrong-path modeling) the thread
        // simply stalls until the branch resolves (DESIGN.md).
        const bool can_redirect =
            config_.model_wrong_path && (!prediction.taken || prediction.have_target);
        if (can_redirect) {
          ts.on_wrong_path = true;
          ts.wp_fetch_done = false;
          ts.wp_pc = prediction.taken ? prediction.target
                                      : ts.gen.fallthrough_of(di.pc);
          ts.wp_branch_seq = di.seq;
          ts.wp_next_seq = di.seq + 1;
          ts.wp_squash_at = kCycleNever;  // set when the branch issues
        } else {
          ts.awaiting_branch = true;
          ts.awaited_branch_seq = di.seq;
        }
      } else if (di.taken) {
        stop_after = true;  // cannot fetch across a taken branch this cycle
      }
    }
    ts.fetch_queue.push_back(f);
    tracer_.record(now, tid, f.inst.seq, obs::TraceStage::kFetch,
                   f.mispredicted ? obs::kTraceFlagMispredict : std::uint8_t{0});
    ts.pending.reset();
    ++ts.fetched;
    ++fetched;
    if (stop_after) break;
  }
  return fetched;
}

unsigned Pipeline::fetch_wrong_path(ThreadId tid, unsigned budget, Cycle now) {
  ThreadState& ts = *threads_[tid];
  if (ts.wp_fetch_done) return 0;
  const std::uint64_t line_bytes = config_.memory.l1i.line_bytes;
  unsigned fetched = 0;
  while (fetched < budget && ts.fetch_queue.size() < config_.fetch_queue_entries) {
    isa::DynInst wi = ts.gen.synthesize_wrong_path(ts.wp_pc, ts.wp_rng);
    wi.seq = ts.wp_next_seq;

    // Wrong-path fetch misses the I-cache like any other fetch (in fact
    // this is cache pollution: the fills may evict useful lines).
    const Addr line = wi.pc / line_bytes;
    if (line != ts.last_fetch_line) {
      const std::uint32_t extra = mem_.access_inst(wi.pc, now);
      ts.last_fetch_line = line;
      if (extra > 0) {
        ts.fetch_stalled_until = now + extra;
        ++pstats_.fetch_icache_stall_cycles;
        break;
      }
    }

    bool stop_after = false;
    if (wi.is_branch()) {
      // No architectural outcome exists on the wrong path: follow the
      // predictor without training it.
      const auto prediction = bpred_.predict_only(tid, wi.pc);
      if (prediction.taken && !prediction.have_target) {
        ts.wp_fetch_done = true;  // nowhere to go until resolution
      } else if (prediction.taken) {
        ts.wp_pc = prediction.target;
        stop_after = true;  // fetch discontinuity
      } else {
        ts.wp_pc = ts.gen.fallthrough_of(wi.pc);
      }
    } else {
      ts.wp_pc = wi.next_pc;
    }

    ts.fetch_queue.push_back(
        FetchedInst{wi, now, /*mispredicted=*/false, /*wrong_path=*/true});
    tracer_.record(now, tid, wi.seq, obs::TraceStage::kFetch,
                   obs::kTraceFlagWrongPath);
    ++ts.wp_next_seq;
    ++pstats_.wrong_path_fetched;
    ++fetched;
    if (stop_after || ts.wp_fetch_done) break;
  }
  return fetched;
}

void Pipeline::do_fetch(Cycle now) {
  // Priority order: ICOUNT (Section 2) gives the threads with the fewest
  // in-flight front-end instructions first pick; round-robin simply
  // rotates.  STALL and FLUSH use ICOUNT order plus L2-miss gating.
  std::array<ThreadId, kMaxThreads> order;
  for (unsigned t = 0; t < config_.thread_count; ++t) {
    order[t] = static_cast<ThreadId>((now + t) % config_.thread_count);
  }
  if (config_.fetch_policy != FetchPolicy::kRoundRobin) {
    // icount() walks three structures; compute it once per thread and
    // stable-insertion-sort the (tiny) order array on the cached values.
    std::array<std::uint32_t, kMaxThreads> counts;
    for (unsigned t = 0; t < config_.thread_count; ++t) {
      counts[order[t]] = icount(order[t]);
    }
    for (unsigned i = 1; i < config_.thread_count; ++i) {
      const ThreadId tid = order[i];
      const std::uint32_t count = counts[tid];
      unsigned j = i;
      for (; j > 0 && counts[order[j - 1]] > count; --j) order[j] = order[j - 1];
      order[j] = tid;
    }
  }
  const bool l2_gating = config_.fetch_policy == FetchPolicy::kStall ||
                         config_.fetch_policy == FetchPolicy::kFlush;

  unsigned threads_used = 0;
  unsigned total = 0;
  for (unsigned i = 0; i < config_.thread_count; ++i) {
    if (threads_used >= config_.fetch_threads_per_cycle) break;
    if (total >= config_.fetch_width) break;
    const ThreadId tid = order[i];
    ThreadState& ts = *threads_[tid];
    if (ts.awaiting_branch || ts.fetch_stalled_until > now) continue;
    if (l2_gating && ts.l2_stall_until > now) {
      ++pstats_.fetch_l2_gated;
      continue;
    }
    if (ts.fetch_queue.size() >= config_.fetch_queue_entries) continue;
    total += ts.on_wrong_path
                 ? fetch_wrong_path(tid, config_.fetch_width - total, now)
                 : fetch_from_thread(tid, config_.fetch_width - total, now);
    ++threads_used;  // the thread consumed a fetch port even on an I-miss
  }
}

void Pipeline::watchdog_flush(Cycle now) {
  for (ThreadId t = 0; t < config_.thread_count; ++t) {
    ThreadState& ts = *threads_[t];
    trace_squash(t, /*min_seq=*/0, now);
    std::vector<PhysReg> squashed;
    std::deque<isa::DynInst> new_replay;
    ts.rob.for_each([&](const RobEntry& e) {
      if (!e.wrong_path) new_replay.push_back(e.inst);
      if (e.dest_phys != kNoPhysReg) squashed.push_back(e.dest_phys);
    });
    for (const FetchedInst& f : ts.fetch_queue) {
      if (!f.wrong_path) new_replay.push_back(f.inst);
    }
    if (ts.pending) new_replay.push_back(*ts.pending);
    for (const isa::DynInst& di : ts.replay) new_replay.push_back(di);
    pstats_.watchdog_flushed_instructions += new_replay.size() - ts.replay.size();
    ts.replay = std::move(new_replay);

    rename_.flush_thread(t, squashed);
    ts.rob.clear();
    ts.lsq.clear();
    ts.fetch_queue.clear();
    ts.pending.reset();
    ts.awaiting_branch = false;
    ts.on_wrong_path = false;
    ts.wp_fetch_done = false;
    ts.wp_squash_at = kCycleNever;
    ts.fetch_stalled_until = now + 1;
    ts.last_fetch_line = ~Addr{0};
  }
  scheduler_->flush();
  fu_.clear();
  broadcasts_.clear();
}

void Pipeline::apply_pending_policy_flushes(Cycle now) {
  if (config_.fetch_policy != FetchPolicy::kFlush) return;
  for (ThreadId t = 0; t < config_.thread_count; ++t) {
    auto& pending = pending_policy_flush_.at(t);
    if (!pending) continue;
    flush_thread_after(t, *pending, now, /*requeue=*/true);
    pending.reset();
  }
}

void Pipeline::flush_thread_after(ThreadId tid, SeqNum after_seq, Cycle now,
                                  bool requeue) {
  ThreadState& ts = *threads_[tid];
  MSIM_CHECK(ts.rob.contains(after_seq));
  trace_squash(tid, after_seq + 1, now);
  const SeqNum youngest = ts.rob.head_seq() + ts.rob.size() - 1;

  // Rewind the rename map youngest-first along the squashed suffix, recycle
  // the squashed destination registers, and cancel their pending result
  // broadcasts; collect the squashed correct-path instructions for replay
  // (oldest first).  Wrong-path instructions are synthetic and are dropped.
  std::deque<isa::DynInst> refetch;
  for (SeqNum seq = youngest; seq > after_seq; --seq) {
    const RobEntry& e = ts.rob.entry(seq);
    if (e.dest_phys != kNoPhysReg) {
      rename_.rewind_mapping(tid, e.inst.dest, e.dest_phys, e.prev_dest_phys);
      if (e.issued && e.complete_at > now) {
        broadcasts_.cancel(e.complete_at, e.dest_phys);
      }
    }
    if (!e.wrong_path) refetch.push_front(e.inst);
  }
  ts.rob.truncate_to(after_seq);
  ts.lsq.squash_younger(after_seq);
  scheduler_->squash_younger(tid, after_seq);

  // Front-end contents are all younger than anything in the ROB.
  for (const FetchedInst& f : ts.fetch_queue) {
    if (!f.wrong_path) refetch.push_back(f.inst);
  }
  ts.fetch_queue.clear();
  if (requeue) {
    if (ts.pending) {
      refetch.push_back(*ts.pending);
      ts.pending.reset();
    }
    pstats_.policy_flushed_instructions += refetch.size();
    ++pstats_.policy_flushes;
    for (auto it = refetch.rbegin(); it != refetch.rend(); ++it) {
      ts.replay.push_front(*it);
    }
  } else {
    // Branch resolution: the squashed suffix was wrong-path only; the
    // correct-path stream continues from ts.pending / the generator.
    MSIM_CHECK(refetch.empty());
  }

  if (ts.awaiting_branch && ts.awaited_branch_seq > after_seq) {
    ts.awaiting_branch = false;
    ts.fetch_stalled_until = now + 1;
  }
  // If the mispredicted branch itself was squashed (requeue path), leave
  // wrong-path mode; the branch will re-fetch and re-predict.  If the
  // squash keeps the branch (a FLUSH inside the wrong-path suffix), the
  // synthesized stream resumes at the truncation point.
  if (ts.on_wrong_path) {
    if (after_seq < ts.wp_branch_seq) {
      ts.on_wrong_path = false;
      ts.wp_fetch_done = false;
      ts.wp_squash_at = kCycleNever;
    } else {
      ts.wp_next_seq = after_seq + 1;
      ts.wp_fetch_done = false;
    }
  }
  ts.last_fetch_line = ~Addr{0};
}

void Pipeline::apply_wrong_path_squashes(Cycle now) {
  if (!config_.model_wrong_path) return;
  for (ThreadId t = 0; t < config_.thread_count; ++t) {
    ThreadState& ts = *threads_[t];
    if (!ts.on_wrong_path || ts.wp_squash_at > now) continue;
    flush_thread_after(t, ts.wp_branch_seq, now, /*requeue=*/false);
    ts.on_wrong_path = false;
    ts.wp_fetch_done = false;
    ts.wp_squash_at = kCycleNever;
    ts.fetch_stalled_until = std::max(ts.fetch_stalled_until, now + 1);
    ++pstats_.wrong_path_squashes;
  }
}

void Pipeline::tick() {
  const Cycle now = cycle_;
  apply_wrong_path_squashes(now);
  do_commit(now);
  apply_broadcasts(now);
  do_issue(now);
  apply_pending_policy_flushes(now);
  do_dispatch(now);
  do_rename(now);
  do_fetch(now);
  scheduler_->tick_stats();
  sample_observability();
  if (observer_) observer_->on_cycle_end(*this, now);
  ++cycle_;
  // Interval boundaries key on the absolute cycle count, so runs executed
  // in checkpointed chunks capture at exactly the same points as one
  // uninterrupted run.
  if (interval_.enabled() &&
      cycle_ % interval_.config().interval_cycles == 0) {
    interval_.capture(make_cumulative_sample());
  }
}

Cycle Pipeline::run(std::uint64_t horizon, Cycle max_cycles) {
  const Cycle start = cycle_;
  auto reached = [&] {
    for (const auto& ts : threads_) {
      if (ts->committed - ts->committed_base >= horizon) return true;
    }
    return false;
  };
  // Simulator-level hang watchdog: tracks the raw (reset-independent)
  // commit total so a reset_stats between warm-up and measurement cannot
  // fake a stall.
  auto raw_committed = [&] {
    std::uint64_t total = 0;
    for (const auto& ts : threads_) total += ts->committed;
    return total;
  };
  // The tracking state lives in members (hang_last_total_ /
  // hang_last_progress_) so that running in checkpoint-sized chunks, or
  // resuming from a checkpoint, observes the same commit-free spans as one
  // uninterrupted run() call.
  if (raw_committed() != hang_last_total_) {
    hang_last_total_ = raw_committed();
    hang_last_progress_ = cycle_;
  }
  while (!reached()) {
    if (max_cycles != 0 && cycle_ - start >= max_cycles) break;
    tick();
    if (config_.hang_cycles != 0) {
      const std::uint64_t total = raw_committed();
      if (total != hang_last_total_) {
        hang_last_total_ = total;
        hang_last_progress_ = cycle_;
      } else if (cycle_ - hang_last_progress_ >= config_.hang_cycles) {
        const Cycle stalled = cycle_ - hang_last_progress_;
        throw NoForwardProgress(
            "no thread committed an instruction for " + std::to_string(stalled) +
                " cycles (hang declared at cycle " + std::to_string(cycle_) +
                "); the configured deadlock remedy failed to restore progress",
            cycle_, stalled);
      }
    }
  }
  return cycle_ - start;
}

void Pipeline::reset_stats() {
  stats_base_cycle_ = cycle_;
  pstats_ = {};
  for (const auto& ts : threads_) {
    ts->committed_base = ts->committed;
    ts->fetched_base = ts->fetched;
    ts->lsq.reset_stats();
  }
  for (ThreadStallStats& s : stall_stats_) s = {};
  registry_.reset_sampled();
  scheduler_->reset_stats();
  mem_.reset_stats();
  bpred_.reset_stats();
  fu_.reset_stats();
  // Rebase the interval engine's delta baseline to the post-reset totals
  // (mostly zeros, raw per-thread commit/fetch counters excepted), so the
  // first post-warm-up interval's deltas do not underflow.
  interval_.reset_stats(make_cumulative_sample());
}

std::uint64_t Pipeline::committed(ThreadId tid) const {
  const ThreadState& ts = *threads_.at(tid);
  return ts.committed - ts.committed_base;
}

std::uint64_t Pipeline::total_committed() const noexcept {
  std::uint64_t total = 0;
  for (const auto& ts : threads_) total += ts->committed - ts->committed_base;
  return total;
}

double Pipeline::ipc(ThreadId tid) const {
  const Cycle c = cycles();
  return c ? static_cast<double>(committed(tid)) / static_cast<double>(c) : 0.0;
}

double Pipeline::total_ipc() const {
  const Cycle c = cycles();
  return c ? static_cast<double>(total_committed()) / static_cast<double>(c) : 0.0;
}

const LsqStats& Pipeline::lsq_stats(ThreadId tid) const {
  return threads_.at(tid)->lsq.stats();
}

std::uint32_t Pipeline::rob_size(ThreadId tid) const {
  return threads_.at(tid)->rob.size();
}

std::uint32_t Pipeline::lsq_size(ThreadId tid) const {
  return static_cast<std::uint32_t>(threads_.at(tid)->lsq.size());
}

std::uint32_t Pipeline::fetch_queue_size(ThreadId tid) const {
  return static_cast<std::uint32_t>(threads_.at(tid)->fetch_queue.size());
}

std::uint32_t Pipeline::replay_depth(ThreadId tid) const {
  return static_cast<std::uint32_t>(threads_.at(tid)->replay.size());
}

// ---- observability ----------------------------------------------------------

void Pipeline::register_metrics() {
  scheduler_->register_stats(registry_, "scheduler.");
  mem_.register_stats(registry_, "mem.");
  bpred_.register_stats(registry_, "bpred.");

  const Pipeline* self = this;
  registry_.counter("pipeline.cycles", [self] { return self->cycles(); });
  registry_.counter("pipeline.committed", [self] { return self->total_committed(); });
  registry_.gauge("pipeline.total_ipc", [self] { return self->total_ipc(); });

  const PipelineStats* p = &pstats_;
  registry_.counter("pipeline.issued", [p] { return p->issued; });
  registry_.counter("pipeline.load_issue_blocked",
                    [p] { return p->load_issue_blocked; });
  registry_.counter("pipeline.fetch_icache_stall_cycles",
                    [p] { return p->fetch_icache_stall_cycles; });
  registry_.counter("pipeline.watchdog_flushed_instructions",
                    [p] { return p->watchdog_flushed_instructions; });
  registry_.counter("pipeline.fetch_l2_gated", [p] { return p->fetch_l2_gated; });
  registry_.counter("pipeline.policy_flushes", [p] { return p->policy_flushes; });
  registry_.counter("pipeline.policy_flushed_instructions",
                    [p] { return p->policy_flushed_instructions; });
  registry_.counter("pipeline.wrong_path_fetched",
                    [p] { return p->wrong_path_fetched; });
  registry_.counter("pipeline.wrong_path_issued",
                    [p] { return p->wrong_path_issued; });
  registry_.counter("pipeline.wrong_path_squashes",
                    [p] { return p->wrong_path_squashes; });
  registry_.counter("pipeline.fault.commit_blocked_cycles",
                    [p] { return p->fault_commit_blocked_cycles; });
  registry_.counter("pipeline.fault.rob_denials", [p] { return p->fault_rob_denials; });
  registry_.counter("pipeline.fault.lsq_denials", [p] { return p->fault_lsq_denials; });
  registry_.counter("pipeline.fault.extra_latency_cycles",
                    [p] { return p->fault_extra_latency_cycles; });

  const FuStats* fu = &fu_.stats();
  for (unsigned k = 0; k < isa::kFuKindCount; ++k) {
    const std::string fp =
        "fu." + std::string(isa::fu_kind_name(static_cast<isa::FuKind>(k))) + ".";
    registry_.counter(fp + "issues", [fu, k] { return fu->issues[k]; });
    registry_.counter(fp + "structural_rejects",
                      [fu, k] { return fu->structural_rejects[k]; });
  }

  for (ThreadId t = 0; t < config_.thread_count; ++t) {
    const std::string tp = "thread." + std::to_string(t) + ".";
    const ThreadState* ts = threads_[t].get();
    registry_.counter(tp + "committed",
                      [ts] { return ts->committed - ts->committed_base; });
    registry_.counter(tp + "fetched",
                      [ts] { return ts->fetched - ts->fetched_base; });
    registry_.gauge(tp + "ipc", [self, t] { return self->ipc(t); });
    const LsqStats* lsq = &ts->lsq.stats();
    registry_.counter(tp + "lsq.loads_checked",
                      [lsq] { return lsq->loads_checked; });
    registry_.counter(tp + "lsq.forwards", [lsq] { return lsq->forwards; });
    registry_.counter(tp + "lsq.blocked_checks",
                      [lsq] { return lsq->blocked_checks; });
    const ThreadStallStats* ss = &stall_stats_[t];
    registry_.counter(tp + "stall.ndi_blocked_cycles",
                      [ss] { return ss->ndi_blocked_cycles; });
    registry_.counter(tp + "stall.iq_full_cycles",
                      [ss] { return ss->iq_full_cycles; });
    registry_.counter(tp + "stall.rob_full_cycles",
                      [ss] { return ss->rob_full_cycles; });
    registry_.counter(tp + "stall.lsq_full_cycles",
                      [ss] { return ss->lsq_full_cycles; });
    registry_.counter(tp + "stall.fetch_starved_cycles",
                      [ss] { return ss->fetch_starved_cycles; });

    occ_rob_.push_back(&registry_.sampled("occupancy.rob." + std::to_string(t)));
    occ_lsq_.push_back(&registry_.sampled("occupancy.lsq." + std::to_string(t)));
    occ_rename_buffer_.push_back(
        &registry_.sampled("occupancy.rename_buffer." + std::to_string(t)));
  }
  occ_iq_ = &registry_.sampled("occupancy.iq");
  occ_dab_ = &registry_.sampled("occupancy.dab");

  // Interval telemetry (all zero while intervals are disabled).
  const obs::IntervalEngine* iv = &interval_;
  registry_.counter("interval.captured", [iv] { return iv->captured(); });
  registry_.counter("interval.dropped", [iv] { return iv->dropped(); });
  for (ThreadId t = 0; t < config_.thread_count; ++t) {
    const std::string tp = "thread." + std::to_string(t) + ".phase.";
    registry_.gauge(tp + "id",
                    [iv, t] { return static_cast<double>(iv->phase_id(t)); });
    registry_.counter(tp + "changes", [iv, t] { return iv->phase_changes(t); });
    registry_.counter(tp + "unique", [iv, t] { return iv->unique_phases(t); });
  }
}

void Pipeline::sample_observability() {
  occ_iq_->add(static_cast<double>(scheduler_->iq().size()));
  occ_dab_->add(static_cast<double>(scheduler_->dab_occupancy()));
  for (ThreadId t = 0; t < config_.thread_count; ++t) {
    const ThreadState& ts = *threads_[t];
    occ_rob_[t]->add(static_cast<double>(ts.rob.size()));
    occ_lsq_[t]->add(static_cast<double>(ts.lsq.size()));
    occ_rename_buffer_[t]->add(static_cast<double>(scheduler_->buffer_size(t)));

    ThreadStallStats& ss = stall_stats_[t];
    switch (scheduler_->block_reason(t)) {
      case core::DispatchBlock::kTwoNonReady:
        ++ss.ndi_blocked_cycles;
        break;
      case core::DispatchBlock::kIqFull:
        ++ss.iq_full_cycles;
        break;
      case core::DispatchBlock::kEmptyBuffer:
        // Nothing buffered to dispatch: attribute to whichever upstream
        // structure gated rename this cycle, else the front end itself.
        if (ts.rob.full()) {
          ++ss.rob_full_cycles;
        } else if (ts.lsq.full()) {
          ++ss.lsq_full_cycles;
        } else {
          ++ss.fetch_starved_cycles;
        }
        break;
      default:
        break;
    }
  }
}

obs::CumulativeSample Pipeline::make_cumulative_sample() const {
  obs::CumulativeSample cum;
  cum.cycle = cycle_;
  cum.dispatched = scheduler_->dispatch_stats().dispatched;
  cum.issued = pstats_.issued;
  cum.iq_occ_sum = occ_iq_->sum();
  cum.iq_occ_count = occ_iq_->count();
  cum.dab_occ_sum = occ_dab_->sum();
  cum.dab_occ_count = occ_dab_->count();
  const mem::HierarchyStats mem = mem_.stats();
  cum.l1d_misses = mem.l1d.misses;
  cum.l2_misses = mem.l2.misses;
  const bpred::PredictorStats bp = bpred_.total_stats();
  cum.branches = bp.branches;
  cum.mispredicts = bp.mispredicts;
  cum.threads.resize(config_.thread_count);
  for (ThreadId t = 0; t < config_.thread_count; ++t) {
    const ThreadState& ts = *threads_[t];
    obs::CumulativeSample::Thread& out = cum.threads[t];
    // Raw (reset-independent) commit/fetch counters: reset_stats rebases
    // the engine's baseline, so deltas stay consistent either way.
    out.committed = ts.committed;
    out.fetched = ts.fetched;
    cum.committed += ts.committed;
    cum.fetched += ts.fetched;
    const ThreadStallStats& ss = stall_stats_[t];
    out.ndi_blocked_cycles = ss.ndi_blocked_cycles;
    out.iq_full_cycles = ss.iq_full_cycles;
    out.rob_full_cycles = ss.rob_full_cycles;
    out.lsq_full_cycles = ss.lsq_full_cycles;
    out.fetch_starved_cycles = ss.fetch_starved_cycles;
    out.rob_occ_sum = occ_rob_[t]->sum();
    out.rob_occ_count = occ_rob_[t]->count();
    out.lsq_occ_sum = occ_lsq_[t]->sum();
    out.lsq_occ_count = occ_lsq_[t]->count();
    out.loads = ts.lsq.stats().loads_checked;
  }
  return cum;
}

void Pipeline::trace_squash(ThreadId tid, SeqNum min_seq, Cycle now) {
  if (!tracer_.enabled()) return;
  ThreadState& ts = *threads_[tid];
  ts.rob.for_each([&](const RobEntry& e) {
    if (e.inst.seq >= min_seq) {
      tracer_.record(now, tid, e.inst.seq, obs::TraceStage::kSquash,
                     e.wrong_path ? obs::kTraceFlagWrongPath : std::uint8_t{0});
    }
  });
  for (const FetchedInst& f : ts.fetch_queue) {
    if (f.inst.seq >= min_seq) {
      tracer_.record(now, tid, f.inst.seq, obs::TraceStage::kSquash,
                     f.wrong_path ? obs::kTraceFlagWrongPath : std::uint8_t{0});
    }
  }
}

// ---- checkpoint/restore ------------------------------------------------------

void Pipeline::thread_state_io(persist::Archive& ar, ThreadState& ts) {
  ar.section("thread");
  if (ar.saving()) ts.gen.save_state(ar); else ts.gen.load_state(ar);
  ar.io_sequence(ts.replay, core::io_dyn_inst);
  ar.io_optional(ts.pending, core::io_dyn_inst);
  ar.io_sequence(ts.fetch_queue, [](persist::Archive& a, FetchedInst& f) {
    core::io_dyn_inst(a, f.inst);
    a.io(f.fetched_at);
    a.io(f.mispredicted);
    a.io(f.wrong_path);
  });
  if (ar.saving()) ts.rob.save_state(ar); else ts.rob.load_state(ar);
  if (ar.saving()) ts.lsq.save_state(ar); else ts.lsq.load_state(ar);
  ar.io(ts.fetch_stalled_until);
  ar.io(ts.l2_stall_until);
  ar.io(ts.awaiting_branch);
  ar.io(ts.on_wrong_path);
  ar.io(ts.wp_fetch_done);
  ar.io(ts.wp_pc);
  ar.io(ts.wp_branch_seq);
  ar.io(ts.wp_next_seq);
  ar.io(ts.wp_squash_at);
  if (ar.saving()) ts.wp_rng.save_state(ar); else ts.wp_rng.load_state(ar);
  ar.io(ts.awaited_branch_seq);
  ar.io(ts.last_fetch_line);
  ar.io(ts.committed);
  ar.io(ts.committed_base);
  ar.io(ts.fetched);
  ar.io(ts.fetched_base);
}

void Pipeline::state_io(persist::Archive& ar) {
  ar.section("pipeline");
  std::uint32_t thread_count = config_.thread_count;
  ar.io(thread_count);
  if (!ar.saving() && thread_count != config_.thread_count) {
    throw persist::PersistError("checkpoint: thread-count mismatch");
  }
  ar.io(cycle_);
  ar.io(stats_base_cycle_);
  ar.io(hang_last_total_);
  ar.io(hang_last_progress_);
  ar.io(commit_digest_);
  ar.io(pstats_.issued);
  ar.io(pstats_.load_issue_blocked);
  ar.io(pstats_.fetch_icache_stall_cycles);
  ar.io(pstats_.watchdog_flushed_instructions);
  ar.io(pstats_.fetch_l2_gated);
  ar.io(pstats_.policy_flushes);
  ar.io(pstats_.policy_flushed_instructions);
  ar.io(pstats_.wrong_path_fetched);
  ar.io(pstats_.wrong_path_issued);
  ar.io(pstats_.wrong_path_squashes);
  ar.io(pstats_.fault_commit_blocked_cycles);
  ar.io(pstats_.fault_rob_denials);
  ar.io(pstats_.fault_lsq_denials);
  ar.io(pstats_.fault_extra_latency_cycles);
  for (const auto& ts : threads_) thread_state_io(ar, *ts);
  if (ar.saving()) rename_.save_state(ar); else rename_.load_state(ar);
  if (ar.saving()) scheduler_->save_state(ar); else scheduler_->load_state(ar);
  if (ar.saving()) fu_.save_state(ar); else fu_.load_state(ar);
  if (ar.saving()) mem_.save_state(ar); else mem_.load_state(ar);
  if (ar.saving()) bpred_.save_state(ar); else bpred_.load_state(ar);
  if (ar.saving()) broadcasts_.save_state(ar); else broadcasts_.load_state(ar);
  for (std::optional<SeqNum>& f : pending_policy_flush_) {
    ar.io_optional(f, [](persist::Archive& a, SeqNum& seq) { a.io(seq); });
  }
  ar.io_sequence(stall_stats_, [](persist::Archive& a, ThreadStallStats& s) {
    a.io(s.ndi_blocked_cycles);
    a.io(s.iq_full_cycles);
    a.io(s.rob_full_cycles);
    a.io(s.lsq_full_cycles);
    a.io(s.fetch_starved_cycles);
  });
  if (ar.saving()) tracer_.save_state(ar); else tracer_.load_state(ar);
  if (ar.saving()) registry_.save_sampled(ar); else registry_.load_sampled(ar);
  if (ar.saving()) interval_.save_state(ar); else interval_.load_state(ar);
}

MSIM_PERSIST_VIA_STATE_IO(Pipeline)

}  // namespace msim::smt
