#include "smt/rename.hpp"

#include "common/archive.hpp"
#include "common/check.hpp"

namespace msim::smt {

RenameUnit::RenameUnit(unsigned thread_count, unsigned int_phys, unsigned fp_phys)
    : thread_count_(thread_count), int_phys_(int_phys), fp_phys_(fp_phys) {
  MSIM_CHECK(thread_count_ >= 1 && thread_count_ <= kMaxThreads);
  // Every thread needs a committed mapping per architectural register, plus
  // at least one spare for renaming to make progress.
  MSIM_CHECK(int_phys_ > thread_count_ * isa::kIntArchRegs);
  MSIM_CHECK(fp_phys_ > thread_count_ * isa::kFpArchRegs);

  ready_.assign(int_phys_ + fp_phys_, 0);
  map_.assign(thread_count_, std::vector<PhysReg>(isa::kArchRegCount, kNoPhysReg));
  committed_map_ = map_;

  // Hand out initial mappings: integer physical registers are [0, int_phys),
  // floating-point are [int_phys, int_phys + fp_phys).
  PhysReg next_int = 0;
  PhysReg next_fp = static_cast<PhysReg>(int_phys_);
  for (unsigned t = 0; t < thread_count_; ++t) {
    for (ArchReg r = 0; r < isa::kArchRegCount; ++r) {
      const PhysReg p = isa::is_fp_arch_reg(r) ? next_fp++ : next_int++;
      map_[t][r] = p;
      committed_map_[t][r] = p;
      ready_[p] = 1;  // architectural state is available
    }
  }
  for (PhysReg p = next_int; p < int_phys_; ++p) free_int_.push_back(p);
  for (PhysReg p = next_fp; p < int_phys_ + fp_phys_; ++p) free_fp_.push_back(p);
}

std::vector<PhysReg>& RenameUnit::free_list_for(ArchReg arch) {
  return isa::is_fp_arch_reg(arch) ? free_fp_ : free_int_;
}

bool RenameUnit::can_allocate(ArchReg dest_arch) const {
  if (dest_arch == kNoArchReg) return true;
  return isa::is_fp_arch_reg(dest_arch) ? !free_fp_.empty() : !free_int_.empty();
}

RenameResult RenameUnit::rename(ThreadId tid, const isa::DynInst& inst) {
  MSIM_CHECK(tid < thread_count_);
  RenameResult out;
  auto& map = map_[tid];
  for (unsigned i = 0; i < isa::kMaxSources; ++i) {
    const ArchReg src = inst.src[i];
    if (src == kNoArchReg) continue;
    MSIM_CHECK(src < isa::kArchRegCount);
    out.src[i] = map[src];
  }
  if (inst.dest != kNoArchReg) {
    MSIM_CHECK(inst.dest < isa::kArchRegCount);
    auto& free_list = free_list_for(inst.dest);
    MSIM_CHECK(!free_list.empty());
    const PhysReg fresh = free_list.back();
    free_list.pop_back();
    out.prev_dest = map[inst.dest];
    out.dest = fresh;
    map[inst.dest] = fresh;
    ready_[fresh] = 0;
  }
  return out;
}

void RenameUnit::commit(ThreadId tid, ArchReg dest_arch, PhysReg dest,
                        PhysReg prev_dest) {
  MSIM_CHECK(tid < thread_count_);
  if (dest_arch == kNoArchReg) return;
  MSIM_CHECK(dest != kNoPhysReg && prev_dest != kNoPhysReg);
  committed_map_[tid][dest_arch] = dest;
  free_list_for(dest_arch).push_back(prev_dest);
}

void RenameUnit::flush_thread(ThreadId tid, const std::vector<PhysReg>& squashed_dests) {
  MSIM_CHECK(tid < thread_count_);
  map_[tid] = committed_map_[tid];
  for (const PhysReg p : squashed_dests) {
    MSIM_CHECK(p != kNoPhysReg);
    if (p < int_phys_) {
      free_int_.push_back(p);
    } else {
      free_fp_.push_back(p);
    }
  }
}

void RenameUnit::rewind_mapping(ThreadId tid, ArchReg arch, PhysReg current,
                                PhysReg prev) {
  MSIM_CHECK(tid < thread_count_ && arch < isa::kArchRegCount);
  MSIM_CHECK(current != kNoPhysReg && prev != kNoPhysReg);
  auto& map = map_[tid];
  MSIM_CHECK(map[arch] == current);
  map[arch] = prev;
  if (current < int_phys_) {
    free_int_.push_back(current);
  } else {
    free_fp_.push_back(current);
  }
}

PhysReg RenameUnit::committed_mapping(ThreadId tid, ArchReg arch) const {
  MSIM_CHECK(tid < thread_count_ && arch < isa::kArchRegCount);
  return committed_map_[tid][arch];
}

void RenameUnit::state_io(persist::Archive& ar) {
  ar.section("rename-unit");
  for (auto* table : {&map_, &committed_map_}) {
    for (std::vector<PhysReg>& per_thread : *table) ar.io(per_thread);
  }
  ar.io(free_int_);
  ar.io(free_fp_);
  ar.io(ready_);
}

MSIM_PERSIST_VIA_STATE_IO(RenameUnit)

}  // namespace msim::smt
