// The SMT out-of-order pipeline: an execution-driven (synthetic-trace)
// cycle-level model of the processor in Table 1 of the paper.
//
// Stage order within one simulated cycle (younger stages first so that an
// instruction spends at least one cycle in each structure):
//
//   commit -> wakeup(broadcast) -> select/issue -> dispatch -> rename -> fetch
//
// Threads share the issue queue, physical registers, function units and
// caches; each thread has its own rename map, ROB, LSQ, fetch queue and
// gshare predictor, exactly as in the paper's M-Sim configuration.
#pragma once

#include <cstdint>
#include <array>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "bpred/predictor.hpp"
#include "core/scheduler.hpp"
#include "mem/hierarchy.hpp"
#include "obs/interval.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "smt/broadcast_schedule.hpp"
#include "smt/fu.hpp"
#include "smt/lsq.hpp"
#include "smt/machine_config.hpp"
#include "smt/rename.hpp"
#include "smt/rob.hpp"
#include "trace/generator.hpp"

namespace msim::robust {
class InvariantChecker;  // friend of Pipeline; see src/robust/invariant.hpp
}

namespace msim {
class ThreadPool;  // optional producer pool for run_functional
}

namespace msim::persist {
class Archive;
}

namespace msim::smt {

/// Thrown by Pipeline::run when the simulator-level hang watchdog fires:
/// no thread committed anything for MachineConfig::hang_cycles consecutive
/// cycles, so the architectural deadlock remedies (DAB / watchdog flush)
/// have evidently failed and the run would spin forever.
class NoForwardProgress final : public std::runtime_error {
 public:
  NoForwardProgress(const std::string& what, Cycle at_cycle, Cycle stalled_for)
      : std::runtime_error(what), at_cycle_(at_cycle), stalled_for_(stalled_for) {}
  /// Absolute machine cycle at which the hang was declared.
  [[nodiscard]] Cycle at_cycle() const noexcept { return at_cycle_; }
  /// Consecutive commit-free cycles observed.
  [[nodiscard]] Cycle stalled_for() const noexcept { return stalled_for_; }

 private:
  Cycle at_cycle_;
  Cycle stalled_for_;
};

/// Aggregate per-run counters not owned by a sub-component.
struct PipelineStats {
  std::uint64_t issued = 0;
  std::uint64_t load_issue_blocked = 0;  ///< LSQ disambiguation rejections
  std::uint64_t fetch_icache_stall_cycles = 0;
  std::uint64_t watchdog_flushed_instructions = 0;
  /// STALL/FLUSH fetch policies: thread-fetch opportunities gated by an
  /// outstanding L2 miss, FLUSH squashes performed, instructions squashed.
  std::uint64_t fetch_l2_gated = 0;
  std::uint64_t policy_flushes = 0;
  std::uint64_t policy_flushed_instructions = 0;
  /// Wrong-path modeling: synthesized instructions fetched, and those that
  /// actually issued (consuming function units / cache bandwidth) before
  /// the resolution squash.
  std::uint64_t wrong_path_fetched = 0;
  std::uint64_t wrong_path_issued = 0;
  std::uint64_t wrong_path_squashes = 0;
  /// Fault injection (src/robust/): commit cycles stolen by the sabotage
  /// fault, rename admissions denied by transient ROB/LSQ exhaustion, and
  /// total extra execution latency injected.  All zero on a fault-free run.
  std::uint64_t fault_commit_blocked_cycles = 0;
  std::uint64_t fault_rob_denials = 0;
  std::uint64_t fault_lsq_denials = 0;
  std::uint64_t fault_extra_latency_cycles = 0;
};

/// Per-thread dispatch-stall attribution, classified once per cycle for
/// every thread that failed to dispatch: what was the binding constraint?
struct ThreadStallStats {
  std::uint64_t ndi_blocked_cycles = 0;    ///< next instruction is an NDI
  std::uint64_t iq_full_cycles = 0;        ///< no adequate free IQ entry
  std::uint64_t rob_full_cycles = 0;       ///< rename gated by a full ROB
  std::uint64_t lsq_full_cycles = 0;       ///< rename gated by a full LSQ
  std::uint64_t fetch_starved_cycles = 0;  ///< nothing buffered to dispatch
};

class Pipeline;

/// Per-thread event counts returned by Pipeline::run_functional: what the
/// functional fast path executed for one thread (mode=sampled profiling).
struct FunctionalDelta {
  std::uint64_t instructions = 0;
  std::uint64_t branches = 0;
  std::uint64_t mispredicts = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
};

/// Cycle-level observation hook, called synchronously from the pipeline.
/// The robust::InvariantChecker implements this to audit structural
/// invariants after every cycle; implementations may throw to abort a run.
class PipelineObserver {
 public:
  virtual ~PipelineObserver() = default;
  /// An instruction of `tid` retired this cycle (called in commit order).
  virtual void on_commit(ThreadId tid, SeqNum seq, Cycle now) = 0;
  /// All stages of cycle `now` have run; the machine is quiescent.
  virtual void on_cycle_end(const Pipeline& pipe, Cycle now) = 0;
};

class Pipeline {
 public:
  /// One trace generator per hardware thread, in thread order.
  Pipeline(const MachineConfig& config,
           std::span<const trace::BenchmarkProfile> workload, std::uint64_t seed);
  ~Pipeline();

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Advances the machine one cycle.
  void tick();

  /// Runs until some thread has committed `horizon` instructions (the
  /// paper's stop rule) or `max_cycles` elapses; returns cycles executed.
  /// Throws NoForwardProgress if no thread commits for
  /// MachineConfig::hang_cycles consecutive cycles (0 disables).
  Cycle run(std::uint64_t horizon, Cycle max_cycles = 0);

  /// Functional fast path (mode=sampled warm-up): executes instructions in
  /// program order, updating only the long-lived microarchitectural state a
  /// detailed region sim inherits -- caches (same last-fetch-line I-side
  /// rule as fetch), branch predictor + BTB (same train call as fetch), the
  /// trace generators, and the per-thread committed/fetched counters.  No
  /// cycle-level pipeline runs: nothing enters the fetch queue, IQ, ROB or
  /// LSQ, no interval captures fire, and the commit digest is untouched.
  /// Threads advance in chunked round-robin order (a fixed 64-instruction
  /// burst per thread per turn), one clock tick per instruction, so cache
  /// LRU and MSHR pruning see a monotone clock.  Only legal while the
  /// detailed pipeline is empty (fresh machine or directly after a previous
  /// functional block).  `per_thread_targets` gives the instruction count
  /// per thread (size must equal thread_count()); the overload runs every
  /// thread the same distance.  Returns what was executed, per thread.
  ///
  /// With a non-null `pool` (and more than one thread), trace generation
  /// runs as one producer task per thread on the pool while the shared
  /// cache/predictor updates apply on the calling thread in the same
  /// canonical burst order as the serial path -- the result is
  /// bit-identical at any pool size, including none.
  std::vector<FunctionalDelta> run_functional(
      std::span<const std::uint64_t> per_thread_targets,
      ThreadPool* pool = nullptr);
  std::vector<FunctionalDelta> run_functional(std::uint64_t per_thread_instructions,
                                              ThreadPool* pool = nullptr);

  /// Installs a cycle-level observer (invariant checking); nullptr (the
  /// default) disables.  Not owned; must outlive the pipeline or be
  /// detached before destruction.
  void set_observer(PipelineObserver* observer) noexcept { observer_ = observer; }

  /// Zeroes the cycle-counter-relative statistics (post-warm-up reset);
  /// machine state (caches, predictors, in-flight work) is preserved.
  void reset_stats();

  /// Checkpoint support: serializes every stateful structure (threads,
  /// rename maps, scheduler, issue queue, function units, caches,
  /// predictors, broadcast calendar, statistics, sampled gauges) so that a
  /// load into a pipeline freshly constructed with the same configuration,
  /// workload and seed continues bit-identically: same commit-stream
  /// digest, same statistics.  See docs/CHECKPOINT.md.
  void save_state(persist::Archive& ar) const;
  void load_state(persist::Archive& ar);

  // ---- observation -------------------------------------------------------
  [[nodiscard]] Cycle cycles() const noexcept { return cycle_ - stats_base_cycle_; }
  /// Machine cycle since construction, unaffected by reset_stats (and
  /// restored by load_state).
  [[nodiscard]] Cycle absolute_cycle() const noexcept { return cycle_; }
  /// Running FNV-1a digest over the committed-instruction stream
  /// (tid, seq, cycle per commit), never reset: two runs are behaviourally
  /// identical iff their digests match.  Checkpoint/resume preserves it.
  [[nodiscard]] std::uint64_t commit_digest() const noexcept { return commit_digest_; }
  [[nodiscard]] unsigned thread_count() const noexcept { return config_.thread_count; }
  [[nodiscard]] std::uint64_t committed(ThreadId tid) const;
  /// Raw (reset-independent) count of instructions that entered the fetch
  /// queue for `tid`.  Equivalence anchor for the functional fast path: a
  /// functional run of fetched(tid) instructions trains the same per-thread
  /// branch-stream prefix as this detailed run did.
  [[nodiscard]] std::uint64_t fetched(ThreadId tid) const;
  /// True when the one-instruction fetch lookahead holds a generated but
  /// not-yet-fetched instruction (its generator is one ahead of fetched()).
  [[nodiscard]] bool has_pending_fetch(ThreadId tid) const;
  /// Generates the fetch lookahead for `tid` if it is empty (test hook for
  /// aligning generator state with a detailed run whose lookahead engaged).
  void prime_fetch_lookahead(ThreadId tid);
  /// The thread's trace generator (equivalence tests; read-only).
  [[nodiscard]] const trace::TraceGenerator& generator(ThreadId tid) const;
  [[nodiscard]] std::uint64_t total_committed() const noexcept;
  [[nodiscard]] double ipc(ThreadId tid) const;
  [[nodiscard]] double total_ipc() const;

  [[nodiscard]] const core::Scheduler& scheduler() const noexcept { return *scheduler_; }
  [[nodiscard]] const mem::MemoryHierarchy& memory() const noexcept { return mem_; }
  [[nodiscard]] const bpred::BranchPredictor& predictor() const noexcept { return bpred_; }
  [[nodiscard]] const PipelineStats& stats() const noexcept { return pstats_; }
  [[nodiscard]] const LsqStats& lsq_stats(ThreadId tid) const;
  [[nodiscard]] const FuStats& fu_stats() const noexcept { return fu_.stats(); }
  [[nodiscard]] const MachineConfig& config() const noexcept { return config_; }
  [[nodiscard]] const ThreadStallStats& stall_stats(ThreadId tid) const {
    return stall_stats_.at(tid);
  }

  // Structure occupancies (diagnostic bundles, invariant checking).
  [[nodiscard]] std::uint32_t rob_size(ThreadId tid) const;
  [[nodiscard]] std::uint32_t lsq_size(ThreadId tid) const;
  [[nodiscard]] std::uint32_t fetch_queue_size(ThreadId tid) const;
  /// Correct-path instructions queued for refetch after a flush.
  [[nodiscard]] std::uint32_t replay_depth(ThreadId tid) const;

  /// Every metric of every component, registered at construction under
  /// hierarchical names ("scheduler.", "mem.", "bpred.", "pipeline.",
  /// "thread.N.", "occupancy.", "fu.").
  [[nodiscard]] const obs::StatRegistry& registry() const noexcept { return registry_; }

  /// Per-instruction lifecycle tracer; enabled via
  /// MachineConfig::trace_capacity (off by default).
  [[nodiscard]] const obs::InstTracer& tracer() const noexcept { return tracer_; }

  /// Interval telemetry engine; enabled via MachineConfig::interval_cycles
  /// (off by default).  Mutable access exists so a driver can attach a
  /// streaming sink (see persist::IntervalStreamWriter).
  [[nodiscard]] const obs::IntervalEngine& interval_engine() const noexcept {
    return interval_;
  }
  [[nodiscard]] obs::IntervalEngine& interval_engine() noexcept { return interval_; }

 private:
  /// The invariant checker audits internal structures (rename free lists,
  /// per-thread ROB contents, scheduler accounting) read-only each cycle.
  friend class ::msim::robust::InvariantChecker;

  struct FetchedInst {
    isa::DynInst inst;
    Cycle fetched_at = 0;
    bool mispredicted = false;
    bool wrong_path = false;
  };

  struct ThreadState {
    ThreadState(const trace::BenchmarkProfile& profile, std::uint64_t seed,
                ThreadId tid, const MachineConfig& config)
        : gen(profile, seed, trace::AddressSpace::for_thread(tid)),
          rob(config.rob_entries_per_thread),
          lsq(config.lsq_entries_per_thread, config.oracle_disambiguation) {}

    trace::TraceGenerator gen;
    std::deque<isa::DynInst> replay;       ///< refilled by watchdog flushes
    std::optional<isa::DynInst> pending;   ///< one-instruction fetch lookahead
    std::deque<FetchedInst> fetch_queue;
    ReorderBuffer rob;
    LoadStoreQueue lsq;
    Cycle fetch_stalled_until = 0;
    /// STALL/FLUSH policies: fetch gated until the latest outstanding L2
    /// miss returns.
    Cycle l2_stall_until = 0;
    bool awaiting_branch = false;          ///< mispredicted branch unresolved
    // Wrong-path mode (model_wrong_path): the front end is running down a
    // mispredicted path, synthesizing instructions from the static CFG.
    bool on_wrong_path = false;
    bool wp_fetch_done = false;            ///< predicted-taken BTB miss: stop
    Addr wp_pc = 0;
    SeqNum wp_branch_seq = 0;              ///< the mispredicted branch
    SeqNum wp_next_seq = 0;
    Cycle wp_squash_at = kCycleNever;      ///< branch resolution time
    Rng wp_rng{0xdecafbadULL};
    SeqNum awaited_branch_seq = 0;
    Addr last_fetch_line = ~Addr{0};
    std::uint64_t committed = 0;
    std::uint64_t committed_base = 0;      ///< value at last reset_stats
    std::uint64_t fetched = 0;
    std::uint64_t fetched_base = 0;        ///< value at last reset_stats
  };

  class DispatchEnvImpl;
  class IssueEnvImpl;

  void do_commit(Cycle now);
  void apply_broadcasts(Cycle now);
  void do_issue(Cycle now);
  void do_dispatch(Cycle now);
  void do_rename(Cycle now);
  void do_fetch(Cycle now);
  unsigned fetch_from_thread(ThreadId tid, unsigned budget, Cycle now);
  const isa::DynInst& peek_next_inst(ThreadState& ts);
  void watchdog_flush(Cycle now);
  /// Squashes every instruction of `tid` younger than `after_seq` from the
  /// whole machine.  With `requeue` (FLUSH fetch policy) the squashed
  /// correct-path instructions are queued for refetch; without it (branch
  /// resolution) everything squashed is wrong-path garbage and is dropped.
  void flush_thread_after(ThreadId tid, SeqNum after_seq, Cycle now, bool requeue);
  void apply_pending_policy_flushes(Cycle now);
  void apply_wrong_path_squashes(Cycle now);
  unsigned fetch_wrong_path(ThreadId tid, unsigned budget, Cycle now);
  [[nodiscard]] std::uint32_t icount(ThreadId tid) const;
  /// Registers every component's metrics into `registry_` (constructor).
  void register_metrics();
  /// Per-cycle observability: occupancy gauges + stall attribution.
  void sample_observability();
  /// Snapshot of every cumulative counter the interval engine diffs
  /// (tick-hook boundaries, reset_stats rebase).
  [[nodiscard]] obs::CumulativeSample make_cumulative_sample() const;
  /// Records kSquash for every in-flight instruction of `tid` with
  /// seq >= `min_seq` (no-op when tracing is off).
  void trace_squash(ThreadId tid, SeqNum min_seq, Cycle now);

  MachineConfig config_;
  std::vector<std::unique_ptr<ThreadState>> threads_;
  RenameUnit rename_;
  std::unique_ptr<core::Scheduler> scheduler_;
  FuPools fu_;
  mem::MemoryHierarchy mem_;
  bpred::BranchPredictor bpred_;
  /// Scheduled result-tag broadcasts, bucketed by completion cycle.
  BroadcastSchedule broadcasts_;

  /// FLUSH policy: per-thread squash point requested during issue, applied
  /// between the issue and dispatch phases of the same cycle.
  std::array<std::optional<SeqNum>, kMaxThreads> pending_policy_flush_{};

  void state_io(persist::Archive& ar);
  void thread_state_io(persist::Archive& ar, ThreadState& ts);
  /// Folds one value into commit_digest_ (FNV-1a over its 8 bytes, LSB
  /// first -- the byte order is part of the digest contract).
  void mix_digest(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      commit_digest_ ^= (v >> (8 * i)) & 0xff;
      commit_digest_ *= 0x100000001b3ULL;
    }
  }

  Cycle cycle_ = 0;
  Cycle stats_base_cycle_ = 0;
  /// Simulator-level hang watchdog state.  Members (not run()-locals) so
  /// that a run executed in checkpointed chunks -- or resumed in a fresh
  /// process -- observes the same commit-free spans as one long run().
  std::uint64_t hang_last_total_ = 0;
  Cycle hang_last_progress_ = 0;
  std::uint64_t commit_digest_ = 0xcbf29ce484222325ULL;  ///< FNV-1a basis
  PipelineStats pstats_;
  PipelineObserver* observer_ = nullptr;       ///< not owned; nullptr = off
  const core::FaultHooks* faults_ = nullptr;   ///< not owned; nullptr = fault-free
  std::vector<ThreadStallStats> stall_stats_;  ///< one per thread
  std::unique_ptr<DispatchEnvImpl> dispatch_env_;
  std::unique_ptr<IssueEnvImpl> issue_env_;

  // Observability.  The registry holds closures over other members and the
  // scheduler holds a pointer into tracer_; the pipeline is non-copyable,
  // so both stay valid for its lifetime.
  obs::InstTracer tracer_;
  obs::StatRegistry registry_;
  obs::IntervalEngine interval_;
  // Registry-owned per-cycle sampled gauges (reset via reset_sampled()).
  StreamingStat* occ_iq_ = nullptr;
  StreamingStat* occ_dab_ = nullptr;
  std::vector<StreamingStat*> occ_rob_;      ///< per thread
  std::vector<StreamingStat*> occ_lsq_;      ///< per thread
  std::vector<StreamingStat*> occ_rename_buffer_;  ///< per thread
};

}  // namespace msim::smt
