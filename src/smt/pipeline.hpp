// The SMT out-of-order pipeline: an execution-driven (synthetic-trace)
// cycle-level model of the processor in Table 1 of the paper.
//
// Stage order within one simulated cycle (younger stages first so that an
// instruction spends at least one cycle in each structure):
//
//   commit -> wakeup(broadcast) -> select/issue -> dispatch -> rename -> fetch
//
// Threads share the issue queue, physical registers, function units and
// caches; each thread has its own rename map, ROB, LSQ, fetch queue and
// gshare predictor, exactly as in the paper's M-Sim configuration.
#pragma once

#include <cstdint>
#include <array>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "bpred/predictor.hpp"
#include "core/scheduler.hpp"
#include "mem/hierarchy.hpp"
#include "smt/fu.hpp"
#include "smt/lsq.hpp"
#include "smt/machine_config.hpp"
#include "smt/rename.hpp"
#include "smt/rob.hpp"
#include "trace/generator.hpp"

namespace msim::smt {

/// Aggregate per-run counters not owned by a sub-component.
struct PipelineStats {
  std::uint64_t issued = 0;
  std::uint64_t load_issue_blocked = 0;  ///< LSQ disambiguation rejections
  std::uint64_t fetch_icache_stall_cycles = 0;
  std::uint64_t watchdog_flushed_instructions = 0;
  /// STALL/FLUSH fetch policies: thread-fetch opportunities gated by an
  /// outstanding L2 miss, FLUSH squashes performed, instructions squashed.
  std::uint64_t fetch_l2_gated = 0;
  std::uint64_t policy_flushes = 0;
  std::uint64_t policy_flushed_instructions = 0;
  /// Wrong-path modeling: synthesized instructions fetched, and those that
  /// actually issued (consuming function units / cache bandwidth) before
  /// the resolution squash.
  std::uint64_t wrong_path_fetched = 0;
  std::uint64_t wrong_path_issued = 0;
  std::uint64_t wrong_path_squashes = 0;
};

class Pipeline {
 public:
  /// One trace generator per hardware thread, in thread order.
  Pipeline(const MachineConfig& config,
           std::span<const trace::BenchmarkProfile> workload, std::uint64_t seed);
  ~Pipeline();

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Advances the machine one cycle.
  void tick();

  /// Runs until some thread has committed `horizon` instructions (the
  /// paper's stop rule) or `max_cycles` elapses; returns cycles executed.
  Cycle run(std::uint64_t horizon, Cycle max_cycles = 0);

  /// Zeroes the cycle-counter-relative statistics (post-warm-up reset);
  /// machine state (caches, predictors, in-flight work) is preserved.
  void reset_stats();

  // ---- observation -------------------------------------------------------
  [[nodiscard]] Cycle cycles() const noexcept { return cycle_ - stats_base_cycle_; }
  [[nodiscard]] unsigned thread_count() const noexcept { return config_.thread_count; }
  [[nodiscard]] std::uint64_t committed(ThreadId tid) const;
  [[nodiscard]] std::uint64_t total_committed() const noexcept;
  [[nodiscard]] double ipc(ThreadId tid) const;
  [[nodiscard]] double total_ipc() const;

  [[nodiscard]] const core::Scheduler& scheduler() const noexcept { return *scheduler_; }
  [[nodiscard]] const mem::MemoryHierarchy& memory() const noexcept { return mem_; }
  [[nodiscard]] const bpred::BranchPredictor& predictor() const noexcept { return bpred_; }
  [[nodiscard]] const PipelineStats& stats() const noexcept { return pstats_; }
  [[nodiscard]] const LsqStats& lsq_stats(ThreadId tid) const;
  [[nodiscard]] const FuStats& fu_stats() const noexcept { return fu_.stats(); }
  [[nodiscard]] const MachineConfig& config() const noexcept { return config_; }

 private:
  struct FetchedInst {
    isa::DynInst inst;
    Cycle fetched_at = 0;
    bool mispredicted = false;
    bool wrong_path = false;
  };

  struct ThreadState {
    ThreadState(const trace::BenchmarkProfile& profile, std::uint64_t seed,
                ThreadId tid, const MachineConfig& config)
        : gen(profile, seed, trace::AddressSpace::for_thread(tid)),
          rob(config.rob_entries_per_thread),
          lsq(config.lsq_entries_per_thread, config.oracle_disambiguation) {}

    trace::TraceGenerator gen;
    std::deque<isa::DynInst> replay;       ///< refilled by watchdog flushes
    std::optional<isa::DynInst> pending;   ///< one-instruction fetch lookahead
    std::deque<FetchedInst> fetch_queue;
    ReorderBuffer rob;
    LoadStoreQueue lsq;
    Cycle fetch_stalled_until = 0;
    /// STALL/FLUSH policies: fetch gated until the latest outstanding L2
    /// miss returns.
    Cycle l2_stall_until = 0;
    bool awaiting_branch = false;          ///< mispredicted branch unresolved
    // Wrong-path mode (model_wrong_path): the front end is running down a
    // mispredicted path, synthesizing instructions from the static CFG.
    bool on_wrong_path = false;
    bool wp_fetch_done = false;            ///< predicted-taken BTB miss: stop
    Addr wp_pc = 0;
    SeqNum wp_branch_seq = 0;              ///< the mispredicted branch
    SeqNum wp_next_seq = 0;
    Cycle wp_squash_at = kCycleNever;      ///< branch resolution time
    Rng wp_rng{0xdecafbadULL};
    SeqNum awaited_branch_seq = 0;
    Addr last_fetch_line = ~Addr{0};
    std::uint64_t committed = 0;
    std::uint64_t committed_base = 0;      ///< value at last reset_stats
    std::uint64_t fetched = 0;
  };

  class DispatchEnvImpl;
  class IssueEnvImpl;

  void do_commit(Cycle now);
  void apply_broadcasts(Cycle now);
  void do_issue(Cycle now);
  void do_dispatch(Cycle now);
  void do_rename(Cycle now);
  void do_fetch(Cycle now);
  unsigned fetch_from_thread(ThreadId tid, unsigned budget, Cycle now);
  const isa::DynInst& peek_next_inst(ThreadState& ts);
  void watchdog_flush(Cycle now);
  /// Squashes every instruction of `tid` younger than `after_seq` from the
  /// whole machine.  With `requeue` (FLUSH fetch policy) the squashed
  /// correct-path instructions are queued for refetch; without it (branch
  /// resolution) everything squashed is wrong-path garbage and is dropped.
  void flush_thread_after(ThreadId tid, SeqNum after_seq, Cycle now, bool requeue);
  void apply_pending_policy_flushes(Cycle now);
  void apply_wrong_path_squashes(Cycle now);
  unsigned fetch_wrong_path(ThreadId tid, unsigned budget, Cycle now);
  [[nodiscard]] std::uint32_t icount(ThreadId tid) const;

  MachineConfig config_;
  std::vector<std::unique_ptr<ThreadState>> threads_;
  RenameUnit rename_;
  std::unique_ptr<core::Scheduler> scheduler_;
  FuPools fu_;
  mem::MemoryHierarchy mem_;
  bpred::BranchPredictor bpred_;
  /// Scheduled result-tag broadcasts: completion cycle -> tags.
  std::map<Cycle, std::vector<PhysReg>> broadcasts_;

  /// FLUSH policy: per-thread squash point requested during issue, applied
  /// between the issue and dispatch phases of the same cycle.
  std::array<std::optional<SeqNum>, kMaxThreads> pending_policy_flush_{};

  Cycle cycle_ = 0;
  Cycle stats_base_cycle_ = 0;
  PipelineStats pstats_;
  std::unique_ptr<DispatchEnvImpl> dispatch_env_;
  std::unique_ptr<IssueEnvImpl> issue_env_;
};

}  // namespace msim::smt
