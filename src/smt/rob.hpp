// Per-thread reorder buffer (Table 1: 96 entries per thread).
//
// Entries are allocated at rename in program order and released at commit.
// The ROB also serves as the pipeline's central in-flight instruction table:
// the scheduler refers to instructions by (tid, seq) and the pipeline
// resolves that to a RobEntry here.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "isa/instruction.hpp"

namespace msim::persist {
class Archive;
}

namespace msim::smt {

struct RobEntry {
  isa::DynInst inst{};
  PhysReg src_phys[isa::kMaxSources] = {kNoPhysReg, kNoPhysReg};
  PhysReg dest_phys = kNoPhysReg;
  PhysReg prev_dest_phys = kNoPhysReg;
  Cycle fetched_at = 0;
  Cycle renamed_at = 0;
  Cycle issued_at = kCycleNever;
  Cycle complete_at = kCycleNever;
  bool issued = false;
  /// This branch sent the front end down the wrong path; fetch resumes one
  /// cycle after it resolves.
  bool mispredicted = false;
  /// Synthesized wrong-path instruction; squashed at branch resolution and
  /// never committed or replayed.
  bool wrong_path = false;

  [[nodiscard]] bool done(Cycle now) const noexcept {
    return issued && complete_at <= now;
  }
};

class ReorderBuffer {
 public:
  explicit ReorderBuffer(std::uint32_t capacity) : capacity_(capacity) {
    MSIM_CHECK(capacity_ > 0);
    slots_.resize(capacity_);
  }

  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] bool full() const noexcept { return count_ == capacity_; }
  [[nodiscard]] std::uint32_t size() const noexcept { return count_; }
  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }

  /// Allocates the entry for `seq`; sequence numbers must be consecutive.
  RobEntry& allocate(SeqNum seq) {
    MSIM_CHECK(!full());
    MSIM_CHECK(empty() || seq == head_seq_ + count_);
    if (empty()) head_seq_ = seq;
    RobEntry& e = slots_[slot_of(seq)];
    e = RobEntry{};
    ++count_;
    return e;
  }

  [[nodiscard]] bool contains(SeqNum seq) const noexcept {
    return count_ > 0 && seq >= head_seq_ && seq < head_seq_ + count_;
  }

  [[nodiscard]] RobEntry& entry(SeqNum seq) {
    MSIM_CHECK(contains(seq));
    return slots_[slot_of(seq)];
  }
  [[nodiscard]] const RobEntry& entry(SeqNum seq) const {
    MSIM_CHECK(contains(seq));
    return slots_[slot_of(seq)];
  }

  [[nodiscard]] SeqNum head_seq() const {
    MSIM_CHECK(!empty());
    return head_seq_;
  }
  [[nodiscard]] RobEntry& head() { return entry(head_seq()); }

  void pop_head() {
    MSIM_CHECK(!empty());
    ++head_seq_;
    --count_;
  }

  /// Visits live entries oldest-first (watchdog flush path).
  template <typename Visitor>
  void for_each(Visitor&& visit) const {
    for (std::uint32_t i = 0; i < count_; ++i) {
      visit(slots_[slot_of(head_seq_ + i)]);
    }
  }

  /// Drops every entry younger than `last_kept` (partial squash for the
  /// FLUSH fetch policy).  `last_kept` must be in the window.
  void truncate_to(SeqNum last_kept) {
    MSIM_CHECK(contains(last_kept));
    count_ = static_cast<std::uint32_t>(last_kept - head_seq_ + 1);
  }

  void clear() noexcept { count_ = 0; }

  /// Checkpoint support (defined in smt/state.cpp): live entries are
  /// serialized oldest-first and restored into their seq-derived slots.
  void save_state(persist::Archive& ar) const;
  void load_state(persist::Archive& ar);

 private:
  void state_io(persist::Archive& ar);

  [[nodiscard]] std::size_t slot_of(SeqNum seq) const noexcept {
    return static_cast<std::size_t>(seq % capacity_);
  }

  std::uint32_t capacity_;
  std::uint32_t count_ = 0;
  SeqNum head_seq_ = 0;
  std::vector<RobEntry> slots_;
};

}  // namespace msim::smt
