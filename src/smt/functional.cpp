// Functional fast path for mode=sampled (docs/SAMPLING.md): executes the
// synthetic trace in program order, touching only the long-lived state a
// detailed region simulation inherits through a checkpoint -- caches,
// branch predictor, BTB, trace generators and the committed/fetched
// counters.  The cycle-level machinery (fetch queue, rename, IQ, ROB, LSQ,
// broadcasts) is bypassed entirely, which is what makes the pass several
// times faster than Pipeline::run; with a producer pool, trace generation
// (about half the per-instruction cost) overlaps with the state updates.
//
// Equivalence contract (verified by tests/test_sampled.cpp): under the
// default stall-on-mispredict front end (no wrong-path modeling, no FLUSH
// policy, no watchdog flushes), a detailed run fetches each thread's
// instructions in program order and trains the predictor once per fetched
// branch, so after a functional block of fetched(tid) instructions the
// per-thread gshare state and trace-generator state are bit-identical to
// the detailed run's.  Caches see the same access *sequence* but a
// different clock, so their tag contents match only where the interleaving
// matches (exactly for a single-thread L1I; statistically otherwise).
//
// Determinism contract: the shared caches and BTB are updated in one
// canonical order -- a round-robin of 64-instruction bursts over the live
// threads -- regardless of whether the trace was generated inline (serial
// path) or ahead of time by producer tasks (parallel path).  Producers only
// touch their own thread's generator and buffer, so the machine state after
// the call is bit-identical at any pool size.
#include <algorithm>
#include <atomic>
#include <exception>
#include <future>
#include <span>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "smt/pipeline.hpp"

namespace msim::smt {

namespace {

/// Burst length of the canonical round-robin order; also the producer's
/// publication grain, so a waiting consumer wakes exactly when its next
/// burst is complete.
constexpr std::uint64_t kBurst = 64;

/// One producer's output: the thread's next `target` instructions, with
/// `ready` published (release) every kBurst instructions.
struct ProducedStream {
  std::vector<isa::DynInst> buf;
  std::atomic<std::uint64_t> ready{0};
  std::exception_ptr error;
};

}  // namespace

std::vector<FunctionalDelta> Pipeline::run_functional(
    std::uint64_t per_thread_instructions, ThreadPool* pool) {
  const std::vector<std::uint64_t> targets(config_.thread_count,
                                           per_thread_instructions);
  return run_functional(std::span<const std::uint64_t>(targets), pool);
}

std::vector<FunctionalDelta> Pipeline::run_functional(
    std::span<const std::uint64_t> per_thread_targets, ThreadPool* pool) {
  MSIM_CHECK(per_thread_targets.size() == config_.thread_count);
  // Functional execution is only defined on an empty detailed pipeline: an
  // in-flight instruction would otherwise be silently re-executed.
  for (const auto& ts : threads_) {
    MSIM_CHECK(ts->fetch_queue.empty() && ts->rob.empty() &&
               ts->replay.empty() && !ts->pending);
  }

  std::vector<FunctionalDelta> out(config_.thread_count);
  const std::uint64_t line_bytes = config_.memory.l1i.line_bytes;
  const auto apply = [&](ThreadId tid, const isa::DynInst& di) {
    ThreadState& ts = *threads_[tid];
    FunctionalDelta& d = out[tid];
    const Addr line = di.pc / line_bytes;
    if (line != ts.last_fetch_line) {
      (void)mem_.access_inst(di.pc, cycle_);
      ts.last_fetch_line = line;
    }
    if (di.is_branch()) {
      bool correct_path = false;
      (void)bpred_.predict_and_train_full(tid, di.pc, di.taken, di.next_pc,
                                          &correct_path);
      ++d.branches;
      if (!correct_path) ++d.mispredicts;
    } else if (di.is_load()) {
      (void)mem_.access_data(di.mem_addr, /*is_store=*/false, cycle_);
      ++d.loads;
    } else if (di.is_store()) {
      (void)mem_.access_data(di.mem_addr, /*is_store=*/true, cycle_);
      ++d.stores;
    }
    ++ts.fetched;
    ++ts.committed;
    ++d.instructions;
    ++cycle_;
  };

  if (pool == nullptr || config_.thread_count <= 1) {
    // Serial path: generate and apply inline, in the canonical order.
    bool live = true;
    while (live) {
      live = false;
      for (ThreadId tid = 0; tid < config_.thread_count; ++tid) {
        if (out[tid].instructions >= per_thread_targets[tid]) continue;
        live = true;
        ThreadState& ts = *threads_[tid];
        const std::uint64_t burst =
            std::min(kBurst, per_thread_targets[tid] - out[tid].instructions);
        for (std::uint64_t i = 0; i < burst; ++i) apply(tid, ts.gen.next());
      }
    }
    return out;
  }

  // Parallel path: one producer task per thread pre-generates the trace
  // (each mutates only its own generator), while this thread applies the
  // shared-state updates in the canonical order, waiting on the producers'
  // published progress.  Producers always run to completion, so the waits
  // below cannot deadlock even on a single-worker pool.
  std::vector<ProducedStream> streams(config_.thread_count);
  std::vector<std::future<void>> producers;
  producers.reserve(config_.thread_count);
  for (ThreadId tid = 0; tid < config_.thread_count; ++tid) {
    streams[tid].buf.resize(per_thread_targets[tid]);
    producers.push_back(pool->submit([this, tid, &streams, per_thread_targets] {
      ProducedStream& s = streams[tid];
      trace::TraceGenerator& gen = threads_[tid]->gen;
      const std::uint64_t target = per_thread_targets[tid];
      try {
        for (std::uint64_t i = 0; i < target; ++i) {
          s.buf[i] = gen.next();
          if (((i + 1) % kBurst) == 0) {
            s.ready.store(i + 1, std::memory_order_release);
          }
        }
      } catch (...) {
        s.error = std::current_exception();
      }
      // Final (or poison) publication: the consumer never waits forever.
      s.ready.store(target, std::memory_order_release);
    }));
  }

  bool live = true;
  while (live) {
    live = false;
    for (ThreadId tid = 0; tid < config_.thread_count; ++tid) {
      if (out[tid].instructions >= per_thread_targets[tid]) continue;
      live = true;
      ProducedStream& s = streams[tid];
      const std::uint64_t base = out[tid].instructions;
      const std::uint64_t burst =
          std::min(kBurst, per_thread_targets[tid] - base);
      while (s.ready.load(std::memory_order_acquire) < base + burst) {
        std::this_thread::yield();
      }
      for (std::uint64_t i = 0; i < burst; ++i) apply(tid, s.buf[base + i]);
    }
  }
  for (auto& f : producers) f.get();
  for (const ProducedStream& s : streams) {
    if (s.error) std::rethrow_exception(s.error);
  }
  return out;
}

std::uint64_t Pipeline::fetched(ThreadId tid) const {
  return threads_.at(tid)->fetched;
}

bool Pipeline::has_pending_fetch(ThreadId tid) const {
  return threads_.at(tid)->pending.has_value();
}

void Pipeline::prime_fetch_lookahead(ThreadId tid) {
  (void)peek_next_inst(*threads_.at(tid));
}

const trace::TraceGenerator& Pipeline::generator(ThreadId tid) const {
  return threads_.at(tid)->gen;
}

}  // namespace msim::smt
