// Calendar queue for pending result-tag broadcasts.
//
// The pipeline schedules every issued instruction's destination tag for
// broadcast at its completion cycle and drains all due tags once per tick.
// A std::map<Cycle, vector> made that an O(log n) tree walk on the issue
// path (the hottest function in the simulator); since completion times are
// bounded by instruction latency plus memory time, a power-of-two ring of
// per-cycle buckets covers virtually every insert in O(1).  The rare tag
// completing beyond the ring horizon (MSHR pile-ups, injected fault
// latency) spills to an ordered map, preserving correctness for any
// latency.
//
// Drain order — ascending cycle, and insertion order within one cycle's
// bucket — matches the map it replaced.  Ring and spill tags for the same
// cycle may interleave differently than pure insertion order, which is
// unobservable: wakeups of distinct tags are independent, and repeated
// set_ready on the same register is idempotent (see docs/PERFORMANCE.md on
// the bit-identity argument).
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace msim::persist {
class Archive;
}

namespace msim::smt {

class BroadcastSchedule {
 public:
  /// `horizon_hint` sizes the ring; it is rounded up to a power of two.
  /// Completions beyond it still work (via the spill map), just slower.
  explicit BroadcastSchedule(std::uint32_t horizon_hint = 512) {
    std::uint32_t size = 1;
    while (size < horizon_hint) size <<= 1;
    ring_.resize(size);
    mask_ = size - 1;
  }

  /// Schedules `tag` for broadcast at cycle `when`.  `when` must not
  /// precede the most recent drain (the pipeline always schedules at least
  /// one cycle ahead).
  void schedule(Cycle when, PhysReg tag) {
    MSIM_CHECK(when >= base_);
    // While drain_due() walks drain_cycle_'s bucket a same-cycle schedule
    // would append to the vector under iteration; later cycles are safe
    // (within the ring horizon they always map to a different bucket).
    MSIM_CHECK(!draining_ || when > drain_cycle_);
    if (when - base_ <= mask_) {
      ring_[when & mask_].push_back(tag);
    } else {
      spill_[when].push_back(tag);
    }
    ++pending_;
  }

  /// Removes every scheduled broadcast of `tag` at cycle `when` (squash of
  /// an issued-but-incomplete instruction).
  void cancel(Cycle when, PhysReg tag) {
    MSIM_CHECK(!draining_ || when > drain_cycle_);
    // Ring-vs-spill placement was decided against base_ at schedule()
    // time, which may be further in the past: a tag scheduled beyond the
    // ring horizon lives in the spill map even if `when` has since come
    // within horizon of the current base_.  Check both homes.
    std::uint64_t erased = 0;
    if (when >= base_ && when - base_ <= mask_) {
      erased += std::erase(ring_[when & mask_], tag);
    }
    if (const auto it = spill_.find(when); it != spill_.end()) {
      erased += std::erase(it->second, tag);
      if (it->second.empty()) spill_.erase(it);
    }
    MSIM_CHECK(pending_ >= erased);
    pending_ -= erased;
  }

  /// Invokes `fn(tag)` for every broadcast due at or before `now`, in
  /// ascending cycle order, and advances the drain point past `now`.
  template <typename Fn>
  void drain_due(Cycle now, Fn&& fn) {
    if (pending_ == 0) {
      base_ = std::max(base_, now + 1);
      return;
    }
    draining_ = true;
    for (Cycle c = base_; c <= now; ++c) {
      drain_cycle_ = c;
      std::vector<PhysReg>& bucket = ring_[c & mask_];
      for (const PhysReg tag : bucket) {
        fn(tag);
        --pending_;
      }
      bucket.clear();  // keeps capacity for the next lap
      while (!spill_.empty() && spill_.begin()->first <= c) {
        for (const PhysReg tag : spill_.begin()->second) {
          fn(tag);
          --pending_;
        }
        spill_.erase(spill_.begin());
      }
    }
    draining_ = false;
    base_ = now + 1;
  }

  /// Drops every pending broadcast (watchdog flush).
  void clear() noexcept {
    for (auto& bucket : ring_) bucket.clear();
    spill_.clear();
    pending_ = 0;
  }

  [[nodiscard]] bool empty() const noexcept { return pending_ == 0; }
  [[nodiscard]] std::uint64_t pending() const noexcept { return pending_; }

  /// Checkpoint support (defined in smt/state.cpp).  Ring buckets are
  /// serialized by bucket index, not re-derived from cycles: ring-vs-spill
  /// placement was decided against base_ at schedule() time, so re-deriving
  /// it against the restored base_ could move tags between homes and change
  /// cancel() behaviour.
  void save_state(persist::Archive& ar) const;
  void load_state(persist::Archive& ar);

 private:
  void state_io(persist::Archive& ar);

  std::vector<std::vector<PhysReg>> ring_;  ///< bucket per cycle mod ring size
  std::map<Cycle, std::vector<PhysReg>> spill_;
  std::uint32_t mask_ = 0;
  Cycle base_ = 0;      ///< earliest cycle not yet drained
  std::uint64_t pending_ = 0;
  Cycle drain_cycle_ = 0;   ///< cycle whose bucket drain_due() is walking
  bool draining_ = false;
};

}  // namespace msim::smt
