// Checkpoint serialization for the header-only smt structures (ROB, LSQ,
// function-unit pools, broadcast calendar queue).  Kept out of the headers
// so the hot-path inline code does not pull in the archive machinery.
#include "common/archive.hpp"
#include "core/state_io.hpp"
#include "smt/broadcast_schedule.hpp"
#include "smt/fu.hpp"
#include "smt/lsq.hpp"
#include "smt/rob.hpp"

namespace msim::smt {

namespace {

void io_rob_entry(persist::Archive& ar, RobEntry& e) {
  core::io_dyn_inst(ar, e.inst);
  for (PhysReg& s : e.src_phys) ar.io(s);
  ar.io(e.dest_phys);
  ar.io(e.prev_dest_phys);
  ar.io(e.fetched_at);
  ar.io(e.renamed_at);
  ar.io(e.issued_at);
  ar.io(e.complete_at);
  ar.io(e.issued);
  ar.io(e.mispredicted);
  ar.io(e.wrong_path);
}

}  // namespace

void ReorderBuffer::state_io(persist::Archive& ar) {
  ar.section("rob");
  std::uint32_t capacity = capacity_;
  ar.io(capacity);
  if (!ar.saving() && capacity != capacity_) {
    throw persist::PersistError("checkpoint: ROB capacity mismatch");
  }
  ar.io(count_);
  ar.io(head_seq_);
  // Live window only, oldest first; dead slots are unobservable (allocate
  // resets them) and restore as default entries.
  for (std::uint32_t i = 0; i < count_; ++i) {
    io_rob_entry(ar, slots_[slot_of(head_seq_ + i)]);
  }
}

MSIM_PERSIST_VIA_STATE_IO(ReorderBuffer)

void LoadStoreQueue::state_io(persist::Archive& ar) {
  ar.section("lsq");
  ar.io_sequence(entries_, [](persist::Archive& a, Entry& e) {
    a.io(e.seq);
    a.io(e.addr);
    a.io(e.addr_src);
    a.io(e.data_src);
    a.io(e.is_store);
  });
  ar.io(stats_.loads_checked);
  ar.io(stats_.forwards);
  ar.io(stats_.blocked_checks);
}

MSIM_PERSIST_VIA_STATE_IO(LoadStoreQueue)

void FuPools::state_io(persist::Archive& ar) {
  ar.section("fu-pools");
  for (std::vector<Cycle>& pool : pools_) {
    // Pool sizes are fixed by the ISA tables; counts round-trip only so a
    // table change between save and load fails loudly.
    std::uint64_t n = pool.size();
    ar.io(n);
    if (!ar.saving() && n != pool.size()) {
      throw persist::PersistError("checkpoint: function-unit pool size mismatch");
    }
    for (Cycle& busy_until : pool) ar.io(busy_until);
  }
  for (std::uint64_t& n : stats_.issues) ar.io(n);
  for (std::uint64_t& n : stats_.structural_rejects) ar.io(n);
}

MSIM_PERSIST_VIA_STATE_IO(FuPools)

void BroadcastSchedule::state_io(persist::Archive& ar) {
  ar.section("broadcast-schedule");
  std::uint32_t mask = mask_;
  ar.io(mask);
  if (!ar.saving() && mask != mask_) {
    throw persist::PersistError("checkpoint: broadcast ring size mismatch");
  }
  // Buckets verbatim by index (see header comment on ring-vs-spill homes).
  for (std::vector<PhysReg>& bucket : ring_) ar.io(bucket);
  ar.io_map(spill_, [](persist::Archive& a, std::vector<PhysReg>& tags) {
    a.io(tags);
  });
  ar.io(base_);
  ar.io(pending_);
  // drain_cycle_ / draining_ are live only inside drain_due(), which never
  // spans a checkpoint boundary; serialized anyway for completeness.
  ar.io(drain_cycle_);
  ar.io(draining_);
}

MSIM_PERSIST_VIA_STATE_IO(BroadcastSchedule)

}  // namespace msim::smt
