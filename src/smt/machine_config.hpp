// SMT machine configuration, with defaults matching Table 1 of the paper.
#pragma once

#include <cstdint>
#include <string_view>

#include "bpred/predictor.hpp"
#include "core/sched_types.hpp"
#include "mem/hierarchy.hpp"

namespace msim::smt {

/// Instruction fetch policies.  ICOUNT is the paper's baseline (Section 2);
/// the others reproduce the related-work policies its introduction surveys.
enum class FetchPolicy : std::uint8_t {
  kIcount,      ///< priority to the thread with fewest in-flight front-end insts
  kRoundRobin,  ///< rotate fetch priority each cycle
  kStall,       ///< ICOUNT + stop fetching a thread with an outstanding L2 miss
  kFlush,       ///< STALL + squash the thread's post-miss instructions [Tullsen'01]
};

[[nodiscard]] std::string_view fetch_policy_name(FetchPolicy p) noexcept;

struct MachineConfig {
  unsigned thread_count = 2;

  // Machine width (Table 1: 8-wide fetch, 8-wide issue, 8-wide commit).
  unsigned fetch_width = 8;
  unsigned fetch_threads_per_cycle = 2;  ///< ICOUNT.2.8 (Section 2)
  unsigned rename_width = 8;
  unsigned dispatch_width = 8;
  unsigned issue_width = 8;
  unsigned commit_width = 8;

  // Window (Table 1: 48-entry LSQ, 96-entry ROB per thread).
  unsigned rob_entries_per_thread = 96;
  unsigned lsq_entries_per_thread = 48;
  /// Perfect memory disambiguation (see smt::LoadStoreQueue).
  bool oracle_disambiguation = true;

  // Registers (Table 1: 256 integer + 256 floating-point physical).
  unsigned int_phys_regs = 256;
  unsigned fp_phys_regs = 256;

  // Front end (Table 1: 5-stage fetch-to-dispatch pipeline).
  unsigned front_end_stages = 5;
  unsigned fetch_queue_entries = 16;  ///< per thread
  FetchPolicy fetch_policy = FetchPolicy::kIcount;
  /// Model wrong-path execution: on a misprediction the front end follows
  /// the predicted path (synthesized from the static CFG), consuming real
  /// resources and polluting caches until the branch resolves and the
  /// wrong-path suffix is squashed.  Off by default: the baseline
  /// trace-driven model charges the misprediction as a fetch stall instead.
  bool model_wrong_path = false;

  /// Per-instruction lifecycle tracing: ring-buffer capacity in events
  /// (0 = off, the default; the hot paths then reduce to one predictable
  /// branch each).  See obs::InstTracer.
  std::size_t trace_capacity = 0;

  core::SchedulerConfig scheduler{};
  mem::HierarchyConfig memory{};
  bpred::PredictorConfig predictor{};

  /// Cycles an instruction spends between fetch and rename eligibility.
  [[nodiscard]] unsigned front_end_delay() const noexcept {
    return front_end_stages - 1;
  }
};

}  // namespace msim::smt
