// SMT machine configuration, with defaults matching Table 1 of the paper.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "bpred/predictor.hpp"
#include "common/types.hpp"
#include "core/fault_hooks.hpp"
#include "core/sched_types.hpp"
#include "isa/instruction.hpp"
#include "mem/hierarchy.hpp"

namespace msim::smt {

/// Instruction fetch policies.  ICOUNT is the paper's baseline (Section 2);
/// the others reproduce the related-work policies its introduction surveys.
enum class FetchPolicy : std::uint8_t {
  kIcount,      ///< priority to the thread with fewest in-flight front-end insts
  kRoundRobin,  ///< rotate fetch priority each cycle
  kStall,       ///< ICOUNT + stop fetching a thread with an outstanding L2 miss
  kFlush,       ///< STALL + squash the thread's post-miss instructions [Tullsen'01]
};

[[nodiscard]] std::string_view fetch_policy_name(FetchPolicy p) noexcept;

struct MachineConfig {
  unsigned thread_count = 2;

  // Machine width (Table 1: 8-wide fetch, 8-wide issue, 8-wide commit).
  unsigned fetch_width = 8;
  unsigned fetch_threads_per_cycle = 2;  ///< ICOUNT.2.8 (Section 2)
  unsigned rename_width = 8;
  unsigned dispatch_width = 8;
  unsigned issue_width = 8;
  unsigned commit_width = 8;

  // Window (Table 1: 48-entry LSQ, 96-entry ROB per thread).
  unsigned rob_entries_per_thread = 96;
  unsigned lsq_entries_per_thread = 48;
  /// Perfect memory disambiguation (see smt::LoadStoreQueue).
  bool oracle_disambiguation = true;

  // Registers (Table 1: 256 integer + 256 floating-point physical).
  unsigned int_phys_regs = 256;
  unsigned fp_phys_regs = 256;

  // Front end (Table 1: 5-stage fetch-to-dispatch pipeline).
  unsigned front_end_stages = 5;
  unsigned fetch_queue_entries = 16;  ///< per thread
  FetchPolicy fetch_policy = FetchPolicy::kIcount;
  /// Model wrong-path execution: on a misprediction the front end follows
  /// the predicted path (synthesized from the static CFG), consuming real
  /// resources and polluting caches until the branch resolves and the
  /// wrong-path suffix is squashed.  Off by default: the baseline
  /// trace-driven model charges the misprediction as a fetch stall instead.
  bool model_wrong_path = false;

  /// Per-instruction lifecycle tracing: ring-buffer capacity in events
  /// (0 = off, the default; the hot paths then reduce to one predictable
  /// branch each).  See obs::InstTracer.
  std::size_t trace_capacity = 0;

  /// Interval telemetry: capture one obs::IntervalRecord (rates, occupancy,
  /// stall attribution, per-thread phase fingerprints) every this many
  /// cycles (0 = off, the default; the tick path then reduces to one
  /// predictable branch).  See obs::IntervalEngine.
  std::uint64_t interval_cycles = 0;
  /// Bounded in-memory interval ring: oldest records are evicted (and
  /// counted as dropped) past this many.  JSONL streaming is unaffected.
  std::size_t interval_ring_capacity = 4096;

  // Robustness (src/robust/): fault injection and forward-progress checks.
  /// Consulted at hazard-origin points each cycle; nullptr (the default) is
  /// the fault-free machine.  Not owned; must outlive the pipeline.
  const core::FaultHooks* fault_hooks = nullptr;
  /// Simulator-level hang watchdog: if NO thread commits for this many
  /// consecutive cycles, Pipeline::run throws smt::NoForwardProgress
  /// instead of spinning forever.  Must comfortably exceed the in-pipeline
  /// watchdog timeout so the architectural remedy gets to act first.
  /// 0 disables the check.
  Cycle hang_cycles = 500'000;

  core::SchedulerConfig scheduler{};
  mem::HierarchyConfig memory{};
  bpred::PredictorConfig predictor{};

  /// Cycles an instruction spends between fetch and rename eligibility.
  [[nodiscard]] unsigned front_end_delay() const noexcept {
    return front_end_stages - 1;
  }

  /// Rejects configurations the pipeline cannot run (or cannot run
  /// meaningfully) with an actionable std::invalid_argument, instead of
  /// tripping an MSIM_CHECK deep inside construction.
  void validate() const {
    auto fail = [](const std::string& msg) {
      throw std::invalid_argument("machine config: " + msg);
    };
    if (thread_count < 1 || thread_count > kMaxThreads) {
      fail("thread_count must be in [1, " + std::to_string(kMaxThreads) + "], got " +
           std::to_string(thread_count));
    }
    if (fetch_width < 1 || rename_width < 1 || dispatch_width < 1 ||
        issue_width < 1 || commit_width < 1) {
      fail("all machine widths (fetch/rename/dispatch/issue/commit) must be >= 1");
    }
    if (fetch_threads_per_cycle < 1) fail("fetch_threads_per_cycle must be >= 1");
    if (rob_entries_per_thread == 0) {
      fail("rob_entries_per_thread=0: no instruction could ever rename");
    }
    if (lsq_entries_per_thread == 0) {
      fail("lsq_entries_per_thread=0: no load or store could ever rename");
    }
    if (scheduler.iq_entries == 0) {
      fail("scheduler.iq_entries=0: the issue queue needs at least one entry");
    }
    if (scheduler.rename_buffer_entries == 0) {
      fail("scheduler.rename_buffer_entries=0: dispatch buffers need >= 1 entry");
    }
    if (front_end_stages < 1) fail("front_end_stages must be >= 1");
    if (fetch_queue_entries == 0) {
      fail("fetch_queue_entries=0: fetched instructions would have nowhere to go");
    }
    if (int_phys_regs <= thread_count * isa::kIntArchRegs) {
      fail("int_phys_regs=" + std::to_string(int_phys_regs) + " cannot back " +
           std::to_string(thread_count) + " threads x " +
           std::to_string(isa::kIntArchRegs) +
           " architectural registers; raise int_phys_regs or lower thread_count");
    }
    if (fp_phys_regs <= thread_count * isa::kFpArchRegs) {
      fail("fp_phys_regs=" + std::to_string(fp_phys_regs) + " cannot back " +
           std::to_string(thread_count) + " threads x " +
           std::to_string(isa::kFpArchRegs) +
           " architectural registers; raise fp_phys_regs or lower thread_count");
    }
    if (scheduler.deadlock == core::DeadlockMode::kWatchdog &&
        core::ooo_dispatch(scheduler.kind) && scheduler.watchdog_timeout == 0) {
      fail("watchdog_timeout=0 under deadlock=watchdog can never fire and the "
           "machine may deadlock; set a positive timeout (the paper uses a few "
           "hundred cycles)");
    }
    if (interval_cycles != 0 && interval_ring_capacity == 0) {
      fail("interval_ring_capacity=0: interval telemetry needs at least one "
           "ring slot (or set interval_cycles=0 to disable intervals)");
    }
    if (hang_cycles != 0 && hang_cycles <= scheduler.watchdog_timeout) {
      fail("hang_cycles=" + std::to_string(hang_cycles) +
           " must exceed watchdog_timeout=" +
           std::to_string(scheduler.watchdog_timeout) +
           " so the in-pipeline watchdog can rescue the machine before the "
           "simulator declares a hang");
    }
  }
};

}  // namespace msim::smt
