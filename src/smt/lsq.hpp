// Per-thread load/store queue (Table 1: 48 entries per thread) with
// conservative memory disambiguation and store-to-load forwarding.
//
// A load may issue only when every older store in its thread has a resolved
// address (address source register ready).  If the youngest older store
// with a matching address has its data ready the load forwards from it
// (no cache access); if the data is not ready the load must wait.
#pragma once

#include <cstdint>
#include <deque>

#include "common/check.hpp"
#include "common/types.hpp"
#include "isa/instruction.hpp"

namespace msim::persist {
class Archive;
}

namespace msim::smt {

enum class LoadVerdict : std::uint8_t {
  kAccess,   ///< proceed to the data cache
  kForward,  ///< store-to-load forwarding; value bypassed in the LSQ
  kBlocked,  ///< an older store is unresolved or its data is not ready
};

struct LsqStats {
  std::uint64_t loads_checked = 0;
  std::uint64_t forwards = 0;
  std::uint64_t blocked_checks = 0;
};

class LoadStoreQueue {
 public:
  /// With `oracle_disambiguation` (the default, matching the perfect
  /// memory-disambiguation configuration of SimpleScalar-era simulators),
  /// a load is blocked only by an older store to the SAME address whose
  /// data is not ready.  Without it, any older store with an unresolved
  /// address blocks the load (conservative hardware).
  explicit LoadStoreQueue(std::uint32_t capacity, bool oracle_disambiguation = true)
      : capacity_(capacity), oracle_(oracle_disambiguation) {
    MSIM_CHECK(capacity_ > 0);
  }

  [[nodiscard]] bool full() const noexcept { return entries_.size() >= capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Allocates an entry at rename, in program order.
  void allocate(SeqNum seq, bool is_store, Addr addr, PhysReg addr_src,
                PhysReg data_src) {
    MSIM_CHECK(!full());
    MSIM_CHECK(entries_.empty() || seq > entries_.back().seq);
    entries_.push_back({seq, addr, addr_src, data_src, is_store});
  }

  /// Memory-order check for a load about to issue.  `ready` reports
  /// physical-register readiness (kNoPhysReg counts as ready).
  template <typename ReadyFn>
  [[nodiscard]] LoadVerdict check_load(SeqNum load_seq, Addr addr, ReadyFn&& ready) {
    ++stats_.loads_checked;
    const Entry* forward_from = nullptr;
    for (const Entry& e : entries_) {
      if (e.seq >= load_seq) break;
      if (!e.is_store) continue;
      if (!oracle_ && e.addr_src != kNoPhysReg && !ready(e.addr_src)) {
        ++stats_.blocked_checks;
        return LoadVerdict::kBlocked;  // unresolved older store address
      }
      if (e.addr == addr) forward_from = &e;  // youngest match wins
    }
    if (forward_from == nullptr) return LoadVerdict::kAccess;
    if (forward_from->data_src == kNoPhysReg || ready(forward_from->data_src)) {
      ++stats_.forwards;
      return LoadVerdict::kForward;
    }
    ++stats_.blocked_checks;
    return LoadVerdict::kBlocked;  // matching store's data not yet produced
  }

  /// Commit-time release; must match the oldest entry.
  void pop(SeqNum seq) {
    MSIM_CHECK(!entries_.empty() && entries_.front().seq == seq);
    entries_.pop_front();
  }

  /// Drops entries younger than `after_seq` (partial squash; they are at
  /// the tail because allocation is in program order).
  void squash_younger(SeqNum after_seq) noexcept {
    while (!entries_.empty() && entries_.back().seq > after_seq) {
      entries_.pop_back();
    }
  }

  void clear() noexcept { entries_.clear(); }

  [[nodiscard]] const LsqStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

  void save_state(persist::Archive& ar) const;
  void load_state(persist::Archive& ar);

 private:
  void state_io(persist::Archive& ar);

  struct Entry {
    SeqNum seq;
    Addr addr;
    PhysReg addr_src;
    PhysReg data_src;
    bool is_store;
  };

  std::uint32_t capacity_;
  bool oracle_;
  std::deque<Entry> entries_;
  LsqStats stats_;
};

}  // namespace msim::smt
