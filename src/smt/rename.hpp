// Register renaming: per-thread map tables over a shared physical register
// file with per-class free lists and result-ready bits.
//
// Renaming is always in program order within a thread -- that is what makes
// the paper's out-of-order *dispatch* safe (Section 4): dependencies are
// fixed at rename time, so dispatch order cannot change them.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "isa/instruction.hpp"

namespace msim::persist {
class Archive;
}

namespace msim::smt {

struct RenameResult {
  PhysReg src[isa::kMaxSources] = {kNoPhysReg, kNoPhysReg};
  PhysReg dest = kNoPhysReg;
  /// The physical register `dest`'s architectural register mapped to before
  /// this instruction; freed when this instruction commits.
  PhysReg prev_dest = kNoPhysReg;
};

class RenameUnit {
 public:
  RenameUnit(unsigned thread_count, unsigned int_phys, unsigned fp_phys);

  /// True when a free physical register of the class needed by `dest_arch`
  /// is available (always true when the instruction has no destination).
  [[nodiscard]] bool can_allocate(ArchReg dest_arch) const;

  /// Renames one instruction of thread `tid` in program order.
  RenameResult rename(ThreadId tid, const isa::DynInst& inst);

  /// Commit-time bookkeeping: promotes the mapping into the committed map
  /// table and recycles the previous mapping.
  void commit(ThreadId tid, ArchReg dest_arch, PhysReg dest, PhysReg prev_dest);

  /// Watchdog-flush recovery: restores the thread's speculative map table
  /// from the committed one and recycles the destination registers of all
  /// squashed instructions (passed by the caller, oldest first).
  void flush_thread(ThreadId tid, const std::vector<PhysReg>& squashed_dests);

  /// Partial squash (FLUSH fetch policy): undoes ONE rename of thread
  /// `tid`.  Must be applied youngest-first along the squashed suffix;
  /// `current` is the squashed instruction's destination mapping (recycled)
  /// and `prev` the mapping it displaced.
  void rewind_mapping(ThreadId tid, ArchReg arch, PhysReg current, PhysReg prev);

  // Hot path (queried per source per dispatch candidate per cycle):
  // physical register indices are produced by this unit, so plain indexing
  // is safe.
  [[nodiscard]] bool is_ready(PhysReg reg) const noexcept { return ready_[reg] != 0; }
  void set_ready(PhysReg reg) noexcept { ready_[reg] = 1; }

  [[nodiscard]] unsigned free_int_regs() const noexcept {
    return static_cast<unsigned>(free_int_.size());
  }
  [[nodiscard]] unsigned free_fp_regs() const noexcept {
    return static_cast<unsigned>(free_fp_.size());
  }
  [[nodiscard]] PhysReg committed_mapping(ThreadId tid, ArchReg arch) const;

  /// Checkpoint support: map tables, free lists (order matters -- they are
  /// LIFO) and ready bits all round-trip.
  void save_state(persist::Archive& ar) const;
  void load_state(persist::Archive& ar);

 private:
  void state_io(persist::Archive& ar);

  [[nodiscard]] std::vector<PhysReg>& free_list_for(ArchReg arch);

  unsigned thread_count_;
  unsigned int_phys_;
  unsigned fp_phys_;
  /// map_[tid][arch] -> phys (speculative); committed_map_ trails commits.
  std::vector<std::vector<PhysReg>> map_;
  std::vector<std::vector<PhysReg>> committed_map_;
  std::vector<PhysReg> free_int_;
  std::vector<PhysReg> free_fp_;
  std::vector<std::uint8_t> ready_;
};

}  // namespace msim::smt
