// Front-end branch prediction unit: per-thread gshare direction predictors
// over a shared BTB, as configured in Table 1 of the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bpred/btb.hpp"
#include "bpred/gshare.hpp"
#include "common/types.hpp"
#include "obs/registry.hpp"

namespace msim::persist {
class Archive;
}

namespace msim::bpred {

struct PredictorConfig {
  GshareConfig gshare{};
  BtbConfig btb{};
};

struct PredictorStats {
  std::uint64_t branches = 0;
  std::uint64_t mispredicts = 0;

  [[nodiscard]] double mispredict_rate() const noexcept {
    return branches ? static_cast<double>(mispredicts) / static_cast<double>(branches)
                    : 0.0;
  }
};

/// Prediction verdict for one branch, given its *actual* behaviour from the
/// trace.  In the default (stall) model the wrong path is not executed and
/// only correctness matters; with wrong-path modeling the predicted
/// direction and target steer the synthetic wrong-path fetch (see
/// DESIGN.md, "Trace-driven with real front-end effects").
class BranchPredictor {
 public:
  BranchPredictor(const PredictorConfig& config, unsigned thread_count);

  /// What the front end would do at a branch.
  struct Prediction {
    bool taken = false;        ///< predicted direction
    bool have_target = false;  ///< BTB supplied a target (when taken)
    Addr target = 0;           ///< predicted target (valid if have_target)
  };

  /// Predicts the branch at (`tid`, `pc`) and trains with the actual
  /// outcome.  Returns true when the front end followed the correct path:
  /// direction predicted correctly AND (if taken) the BTB supplied the
  /// correct target.
  bool predict_and_train(ThreadId tid, Addr pc, bool taken, Addr target);

  /// Like predict_and_train but also reports what the front end predicted
  /// (used to steer wrong-path fetch).
  Prediction predict_and_train_full(ThreadId tid, Addr pc, bool taken, Addr target,
                                    bool* correct_path);

  /// Pure lookup for wrong-path branches: no training, no stats (there is
  /// no architectural outcome to train with).
  [[nodiscard]] Prediction predict_only(ThreadId tid, Addr pc);

  [[nodiscard]] const PredictorStats& stats(ThreadId tid) const {
    return stats_.at(tid);
  }
  [[nodiscard]] PredictorStats total_stats() const noexcept;

  /// Zeroes counters; predictor training state is preserved.
  void reset_stats() noexcept {
    for (auto& s : stats_) s = {};
    for (auto& g : gshare_) g.reset_stats();
    btb_.reset_stats();
  }
  [[nodiscard]] const Btb& btb() const noexcept { return btb_; }
  [[nodiscard]] const Gshare& gshare(ThreadId tid) const { return gshare_.at(tid); }

  /// Registers aggregate and per-thread metrics under `prefix` (e.g.
  /// "bpred.").  The predictor must outlive the registry's snapshots.
  void register_stats(obs::StatRegistry& registry, const std::string& prefix) const;

  /// Checkpoint support: training state (counters, history, BTB entries,
  /// LRU ticks) and statistics both round-trip.
  void save_state(persist::Archive& ar) const;
  void load_state(persist::Archive& ar);

 private:
  void state_io(persist::Archive& ar);

  std::vector<Gshare> gshare_;  ///< one per thread (Table 1)
  Btb btb_;                     ///< shared
  std::vector<PredictorStats> stats_;
};

}  // namespace msim::bpred
