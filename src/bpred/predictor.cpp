#include "bpred/predictor.hpp"

#include "common/archive.hpp"
#include "common/check.hpp"

namespace msim::bpred {

BranchPredictor::BranchPredictor(const PredictorConfig& config, unsigned thread_count)
    : btb_(config.btb) {
  MSIM_CHECK(thread_count >= 1 && thread_count <= kMaxThreads);
  gshare_.reserve(thread_count);
  stats_.resize(thread_count);
  for (unsigned t = 0; t < thread_count; ++t) {
    gshare_.emplace_back(config.gshare);
  }
}

bool BranchPredictor::predict_and_train(ThreadId tid, Addr pc, bool taken, Addr target) {
  bool correct = false;
  (void)predict_and_train_full(tid, pc, taken, target, &correct);
  return correct;
}

BranchPredictor::Prediction BranchPredictor::predict_and_train_full(
    ThreadId tid, Addr pc, bool taken, Addr target, bool* correct_path) {
  Gshare& dir = gshare_.at(tid);
  Prediction out;
  out.taken = dir.predict(pc);
  dir.update(pc, taken);
  if (out.taken) {
    const auto btb_target = btb_.lookup(tid, pc);
    out.have_target = btb_target.has_value();
    out.target = btb_target.value_or(0);
  }

  bool correct = out.taken == taken;
  if (correct && taken) {
    // Direction right, but the front end also needs the target address.
    correct = out.have_target && out.target == target;
  }
  if (taken) {
    btb_.update(tid, pc, target);
  }

  PredictorStats& s = stats_.at(tid);
  ++s.branches;
  if (!correct) ++s.mispredicts;
  *correct_path = correct;
  return out;
}

BranchPredictor::Prediction BranchPredictor::predict_only(ThreadId tid, Addr pc) {
  Prediction out;
  out.taken = gshare_.at(tid).predict(pc);
  if (out.taken) {
    const auto btb_target = btb_.lookup(tid, pc);
    out.have_target = btb_target.has_value();
    out.target = btb_target.value_or(0);
  }
  return out;
}

void BranchPredictor::register_stats(obs::StatRegistry& registry,
                                     const std::string& prefix) const {
  const BranchPredictor* self = this;
  registry.counter(prefix + "branches",
                   [self] { return self->total_stats().branches; });
  registry.counter(prefix + "mispredicts",
                   [self] { return self->total_stats().mispredicts; });
  registry.ratio(prefix + "mispredict_rate",
                 [self] { return self->total_stats().mispredicts; },
                 [self] { return self->total_stats().branches; });
  for (std::size_t t = 0; t < stats_.size(); ++t) {
    const PredictorStats* s = &stats_[t];
    const std::string p = prefix + "thread." + std::to_string(t) + ".";
    registry.counter(p + "branches", [s] { return s->branches; });
    registry.ratio(p + "mispredict_rate", [s] { return s->mispredicts; },
                   [s] { return s->branches; });
  }
}

PredictorStats BranchPredictor::total_stats() const noexcept {
  PredictorStats total;
  for (const PredictorStats& s : stats_) {
    total.branches += s.branches;
    total.mispredicts += s.mispredicts;
  }
  return total;
}

void BranchPredictor::state_io(persist::Archive& ar) {
  ar.section("bpred");
  // Thread count is construction-time configuration; loading into a
  // predictor of a different shape is a config mismatch, not a resize.
  for (Gshare& g : gshare_) {
    if (ar.saving()) g.save_state(ar); else g.load_state(ar);
  }
  if (ar.saving()) btb_.save_state(ar); else btb_.load_state(ar);
  ar.io_sequence(stats_, [](persist::Archive& a, PredictorStats& s) {
    a.io(s.branches);
    a.io(s.mispredicts);
  });
}

MSIM_PERSIST_VIA_STATE_IO(BranchPredictor)

}  // namespace msim::bpred
