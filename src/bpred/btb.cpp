#include "bpred/btb.hpp"

#include "common/archive.hpp"
#include "common/check.hpp"

namespace msim::bpred {

Btb::Btb(const BtbConfig& config)
    : config_(config), set_count_(config.entries / config.assoc) {
  MSIM_CHECK(config_.assoc > 0);
  MSIM_CHECK(config_.entries % config_.assoc == 0);
  MSIM_CHECK(set_count_ > 0 && (set_count_ & (set_count_ - 1)) == 0);
  entries_.resize(config_.entries);
}

Addr Btb::make_tag(ThreadId tid, Addr pc) const noexcept {
  return (pc >> 2) ^ (static_cast<Addr>(tid) << 40);
}

std::size_t Btb::set_of(Addr tag) const noexcept {
  return static_cast<std::size_t>(tag & (set_count_ - 1));
}

std::optional<Addr> Btb::lookup(ThreadId tid, Addr pc) {
  ++stats_.lookups;
  ++tick_;
  const Addr tag = make_tag(tid, pc);
  Entry* base = &entries_[set_of(tag) * config_.assoc];
  for (std::uint32_t w = 0; w < config_.assoc; ++w) {
    Entry& e = base[w];
    if (e.valid && e.tag == tag) {
      e.last_used = tick_;
      ++stats_.hits;
      return e.target;
    }
  }
  return std::nullopt;
}

void Btb::update(ThreadId tid, Addr pc, Addr target) {
  ++tick_;
  const Addr tag = make_tag(tid, pc);
  Entry* base = &entries_[set_of(tag) * config_.assoc];
  Entry* victim = base;
  for (std::uint32_t w = 0; w < config_.assoc; ++w) {
    Entry& e = base[w];
    if (e.valid && e.tag == tag) {
      e.target = target;
      e.last_used = tick_;
      return;
    }
    if (!e.valid) {
      victim = &e;
    } else if (victim->valid && e.last_used < victim->last_used) {
      victim = &e;
    }
  }
  *victim = {.tag = tag, .target = target, .last_used = tick_, .valid = true};
}

void Btb::state_io(persist::Archive& ar) {
  ar.section("btb");
  ar.io_sequence(entries_, [](persist::Archive& a, Entry& e) {
    a.io(e.tag);
    a.io(e.target);
    a.io(e.last_used);
    a.io(e.valid);
  });
  ar.io(tick_);
  ar.io(stats_.lookups);
  ar.io(stats_.hits);
}

MSIM_PERSIST_VIA_STATE_IO(Btb)

}  // namespace msim::bpred
