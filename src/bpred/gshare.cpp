#include "bpred/gshare.hpp"

#include "common/archive.hpp"
#include "common/check.hpp"

namespace msim::bpred {

Gshare::Gshare(const GshareConfig& config)
    : config_(config),
      counters_(config.table_entries, 2),  // weakly taken
      history_mask_((1u << config.history_bits) - 1) {
  MSIM_CHECK(config_.table_entries > 0 &&
             (config_.table_entries & (config_.table_entries - 1)) == 0);
  MSIM_CHECK(config_.history_bits > 0 && config_.history_bits <= 20);
}

std::size_t Gshare::index(Addr pc) const noexcept {
  // Drop the 2 low (alignment) bits, fold in the history.
  const auto folded = static_cast<std::uint32_t>(pc >> 2) ^ history_;
  return folded & (config_.table_entries - 1);
}

bool Gshare::predict(Addr pc) const noexcept { return counters_[index(pc)] >= 2; }

bool Gshare::update(Addr pc, bool taken) noexcept {
  const std::size_t idx = index(pc);
  const bool predicted = counters_[idx] >= 2;
  ++stats_.lookups;
  if (predicted == taken) ++stats_.correct;
  if (taken) {
    if (counters_[idx] < 3) ++counters_[idx];
  } else {
    if (counters_[idx] > 0) --counters_[idx];
  }
  history_ = ((history_ << 1) | (taken ? 1u : 0u)) & history_mask_;
  return predicted == taken;
}

void Gshare::state_io(persist::Archive& ar) {
  ar.section("gshare");
  ar.io(counters_);
  ar.io(history_);
  ar.io(stats_.lookups);
  ar.io(stats_.correct);
}

MSIM_PERSIST_VIA_STATE_IO(Gshare)

}  // namespace msim::bpred
