// Branch target buffer: set-associative tag/target store shared by all
// threads (Table 1: 2048 entries, 2-way).  Thread id is folded into the tag
// so threads do not alias each other's targets.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace msim::persist {
class Archive;
}

namespace msim::bpred {

struct BtbConfig {
  std::uint32_t entries = 2048;  ///< total entries; must be power of two
  std::uint32_t assoc = 2;
};

struct BtbStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    return lookups ? static_cast<double>(hits) / static_cast<double>(lookups) : 0.0;
  }
};

class Btb {
 public:
  explicit Btb(const BtbConfig& config = {});

  /// Predicted target of the branch at (`tid`, `pc`), or nullopt on miss.
  [[nodiscard]] std::optional<Addr> lookup(ThreadId tid, Addr pc);

  /// Installs / refreshes the target for a taken branch.
  void update(ThreadId tid, Addr pc, Addr target);

  [[nodiscard]] const BtbStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

  void save_state(persist::Archive& ar) const;
  void load_state(persist::Archive& ar);

 private:
  void state_io(persist::Archive& ar);

  struct Entry {
    Addr tag = 0;
    Addr target = 0;
    std::uint64_t last_used = 0;
    bool valid = false;
  };

  [[nodiscard]] Addr make_tag(ThreadId tid, Addr pc) const noexcept;
  [[nodiscard]] std::size_t set_of(Addr tag) const noexcept;

  BtbConfig config_;
  std::uint32_t set_count_;
  std::vector<Entry> entries_;
  std::uint64_t tick_ = 0;  ///< pseudo-time for LRU within a set
  BtbStats stats_;
};

}  // namespace msim::bpred
