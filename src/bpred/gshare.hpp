// gshare direction predictor: 2-bit saturating counters indexed by
// PC xor global-history (Table 1: per-thread 2K-entry, 10-bit history).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace msim::persist {
class Archive;
}

namespace msim::bpred {

struct GshareConfig {
  std::uint32_t table_entries = 2048;  ///< must be a power of two
  std::uint32_t history_bits = 10;
};

struct DirectionStats {
  std::uint64_t lookups = 0;
  std::uint64_t correct = 0;

  [[nodiscard]] double accuracy() const noexcept {
    return lookups ? static_cast<double>(correct) / static_cast<double>(lookups) : 0.0;
  }
};

class Gshare {
 public:
  explicit Gshare(const GshareConfig& config = {});

  /// Predicted direction for the branch at `pc` given current history.
  [[nodiscard]] bool predict(Addr pc) const noexcept;

  /// Trains the counter and shifts `taken` into the global history.
  /// Returns whether the prediction made with the pre-update state was
  /// correct (convenience for stats).
  bool update(Addr pc, bool taken) noexcept;

  [[nodiscard]] const DirectionStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }
  [[nodiscard]] std::uint32_t history() const noexcept { return history_; }

  void save_state(persist::Archive& ar) const;
  void load_state(persist::Archive& ar);

 private:
  void state_io(persist::Archive& ar);

  [[nodiscard]] std::size_t index(Addr pc) const noexcept;

  GshareConfig config_;
  std::vector<std::uint8_t> counters_;  ///< 2-bit, initialized weakly taken
  std::uint32_t history_ = 0;
  std::uint32_t history_mask_;
  DirectionStats stats_;
};

}  // namespace msim::bpred
